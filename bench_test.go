// Benchmarks: one per paper table/figure, per the DESIGN.md experiment
// index. Each benchmark runs the corresponding reproduction at a fixed
// per-iteration instruction budget and reports the headline quantity
// via b.ReportMetric, so `go test -bench=. -benchmem` regenerates every
// result's shape. cmd/zexp prints the full tables.
package zbp

import (
	"io"
	"testing"
	"time"

	"zbp/internal/btb"
	"zbp/internal/core"
	"zbp/internal/dirpred"
	"zbp/internal/exp"
	"zbp/internal/sat"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/verif"
	"zbp/internal/workload"
	"zbp/internal/zarch"
)

const benchInstr = 200_000

// benchRun simulates benchInstr instructions per iteration and returns
// the last result. The workload is materialized into a packed trace
// once, outside the timed region, and every iteration replays a reset
// cursor over the shared buffer — so ns/op and allocs/op reflect the
// simulator hot path for every workload (resettable or not), and the
// one-time materialization cost is reported separately.
func benchRun(b *testing.B, cfg sim.Config, wl string, seed uint64) sim.Result {
	b.Helper()
	b.ReportAllocs()
	t0 := time.Now()
	p, err := workload.MakePacked(wl, seed, benchInstr)
	if err != nil {
		b.Fatal(err)
	}
	matNS := float64(time.Since(t0).Nanoseconds())
	cur := p.Cursor()
	var res sim.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur.Reset()
		res = sim.RunWorkload(cfg, &cur, benchInstr)
	}
	b.ReportMetric(res.MPKI(), "MPKI")
	b.ReportMetric(res.IPC(), "IPC")
	b.ReportMetric(matNS, "materialize-ns")
	return res
}

// BenchmarkTable1CapacitySweep (E1, Table 1): MPKI at the four
// generational BTB1 capacities.
func BenchmarkTable1CapacitySweep(b *testing.B) {
	for _, rowBits := range []uint{9, 10, 11} {
		rowBits := rowBits
		cfg := sim.Z15()
		cfg.Core.BTB1.RowBits = rowBits
		name := map[uint]string{9: "BTB1-4K", 10: "BTB1-8K", 11: "BTB1-16K"}[rowBits]
		b.Run(name, func(b *testing.B) {
			benchRun(b, cfg, "lspr", 42)
		})
	}
}

// BenchmarkFig1RestartPenalty (E2, Figure 1/§II): cycles lost per
// restart event.
func BenchmarkFig1RestartPenalty(b *testing.B) {
	res := benchRun(b, sim.Z15(), "lspr", 42)
	t := res.Threads[0]
	events := t.DynWrongDir + t.DynWrongTarget + t.SurpriseWrong +
		t.SurpriseTakenRel + t.SurpriseTakenInd + t.BadPredictions
	if events > 0 {
		b.ReportMetric(float64(t.RestartStall)/float64(events), "cycles/restart")
	}
}

// takenPeriod mirrors the E3/E4 measurement on a bare core.
func takenPeriod(b *testing.B, cfg core.Config, smt2 bool) float64 {
	b.Helper()
	mk := func(addr, target zarch.Addr) btb.Info {
		return btb.Info{Addr: addr, Len: 4, Kind: zarch.KindUncondRel,
			Target: target, BHT: sat.StrongT, Skoot: btb.SkootUnknown}
	}
	b.ReportAllocs()
	var period float64
	for i := 0; i < b.N; i++ {
		c := core.New(cfg)
		c.Preload(1, mk(0x10008, 0x40000))
		c.Preload(1, mk(0x40008, 0x10000))
		c.Restart(0, 0x10000, 0)
		if smt2 {
			c.Preload(1, mk(0x90008, 0xc0000))
			c.Preload(1, mk(0xc0008, 0x90000))
			c.Restart(1, 0x90000, 1)
		}
		var times []int64
		for len(times) < 160 {
			c.Cycle()
			for {
				p, ok := c.PopPred(0)
				if !ok {
					break
				}
				if p.Taken {
					times = append(times, p.PresentedAt)
				}
			}
			if smt2 {
				for {
					if _, ok := c.PopPred(1); !ok {
						break
					}
				}
			}
		}
		period = float64(times[len(times)-1]-times[40]) / float64(len(times)-1-40)
	}
	return period
}

// BenchmarkFig4PipelineNoCPRED (E3, Figure 4): taken-branch period 5
// (ST) and 6 (SMT2) without CPRED.
func BenchmarkFig4PipelineNoCPRED(b *testing.B) {
	cfg := core.Z15()
	cfg.CPred.Entries = 0
	b.Run("ST", func(b *testing.B) {
		b.ReportMetric(takenPeriod(b, cfg, false), "cycles/taken")
	})
	b.Run("SMT2", func(b *testing.B) {
		b.ReportMetric(takenPeriod(b, cfg, true), "cycles/taken")
	})
}

// BenchmarkFig5CPRED (E4, Figure 5): taken-branch period 2 with CPRED.
func BenchmarkFig5CPRED(b *testing.B) {
	b.ReportMetric(takenPeriod(b, core.Z15(), false), "cycles/taken")
}

// BenchmarkFig7SKOOT (E4, Figures 6-7): searches per instruction with
// and without SKOOT line skipping.
func BenchmarkFig7SKOOT(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sim.Z15()
			cfg.Core.SkootEnabled = on
			res := benchRun(b, cfg, "lspr", 42)
			b.ReportMetric(float64(res.Core.Searches)/float64(res.Instructions()), "searches/instr")
		})
	}
}

// BenchmarkFig8DirectionProviders (E5, Figure 8): share of direction
// predictions carried by the auxiliary predictors.
func BenchmarkFig8DirectionProviders(b *testing.B) {
	res := benchRun(b, sim.Z15(), "patterned", 42)
	var total, aux int64
	for p, v := range res.Dir.Issued {
		total += v
		if p >= int(dirpred.ProvPHTShort) {
			aux += v
		}
	}
	if total > 0 {
		b.ReportMetric(100*float64(aux)/float64(total), "aux-share-%")
	}
}

// BenchmarkFig9TargetProviders (E6, Figure 9): CRS coverage of returns
// on the call/return workload.
func BenchmarkFig9TargetProviders(b *testing.B) {
	res := benchRun(b, sim.Z15(), "callret", 42)
	t := res.Threads[0]
	b.ReportMetric(float64(t.TgtProvided[2]), "crs-predictions")
	if t.TgtProvided[2] > 0 {
		b.ReportMetric(100*float64(t.TgtWrong[2])/float64(t.TgtProvided[2]), "crs-wrong-%")
	}
}

// BenchmarkHeadlineMPKIGenerations (E7, §VIII): MPKI per generation on
// the LSPR workload.
func BenchmarkHeadlineMPKIGenerations(b *testing.B) {
	for _, gen := range core.Generations() {
		gen := gen
		b.Run(gen.Name, func(b *testing.B) {
			benchRun(b, sim.ForGeneration(gen), "lspr", 42)
		})
	}
}

// BenchmarkBTB2Backfill (E8, §III): surprises with and without the
// second level, under capacity pressure.
func BenchmarkBTB2Backfill(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sim.Z15()
			cfg.Core.BTB1.RowBits = 8
			cfg.Core.BTB2Enabled = on
			res := benchRun(b, cfg, "lspr", 42)
			b.ReportMetric(float64(res.Threads[0].Surprises), "surprises")
		})
	}
}

// BenchmarkLookaheadPrefetch (E9, §IV): fetch-stall cycles with and
// without BPL-driven prefetch.
func BenchmarkLookaheadPrefetch(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sim.Z15()
			cfg.Prefetch = on
			res := benchRun(b, cfg, "lspr-large", 42)
			b.ReportMetric(float64(res.Threads[0].FetchStall), "fetch-stall-cycles")
		})
	}
}

// BenchmarkSBHTPathology (E10, §IV): wrong directions on a weak loop
// branch with and without the speculative BHT (BHT-only configuration).
func BenchmarkSBHTPathology(b *testing.B) {
	for _, entries := range []int{8, 0} {
		entries := entries
		name := "sbht-on"
		if entries == 0 {
			name = "sbht-off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sim.Z15()
			cfg.Core.Dir.SpecEntries = entries
			cfg.Core.Dir.PHTEnabled = false
			cfg.Core.Dir.PerceptronEnabled = false
			b.ReportAllocs()
			p, err := trace.Pack(weakLoopSrc(), benchInstr)
			if err != nil {
				b.Fatal(err)
			}
			cur := p.Cursor()
			var res sim.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur.Reset()
				res = sim.RunWorkload(cfg, &cur, benchInstr)
			}
			b.ReportMetric(float64(res.Threads[0].DynWrongDir), "wrong-directions")
		})
	}
}

func weakLoopSrc() trace.Source {
	bld := workload.NewBuilder(0x10000, 1)
	headL := bld.NewLabel()
	head := bld.Block(4)
	bld.Bind(headL, head)
	blk := bld.Block(4)
	blk.CondBias(0.9, headL)
	tail := bld.Block(2)
	tail.Jump(headL)
	return workload.NewExec(bld.MustBuild(head), 2)
}

// BenchmarkAblations (E11): MPKI with one z15 feature removed at a
// time.
func BenchmarkAblations(b *testing.B) {
	variants := []struct {
		name string
		mod  func(*sim.Config)
	}{
		{"full", func(*sim.Config) {}},
		{"no-perceptron", func(c *sim.Config) { c.Core.Dir.PerceptronEnabled = false }},
		{"single-pht", func(c *sim.Config) { c.Core.Dir.TwoTables = false }},
		{"no-pht", func(c *sim.Config) { c.Core.Dir.PHTEnabled = false }},
		{"no-crs", func(c *sim.Config) { c.Core.Tgt.CRSEnabled = false }},
		{"no-ctb", func(c *sim.Config) { c.Core.Tgt.CTBEntries = 0 }},
		{"no-cpred", func(c *sim.Config) { c.Core.CPred.Entries = 0 }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			cfg := sim.Z15()
			v.mod(&cfg)
			benchRun(b, cfg, "mixed", 42)
		})
	}
}

// BenchmarkCPREDPower (E12, §IV/§VI): fraction of searches with the
// PHT/perceptron powered down.
func BenchmarkCPREDPower(b *testing.B) {
	res := benchRun(b, sim.Z15(), "micro", 42)
	if res.Core.Searches > 0 {
		b.ReportMetric(100*float64(res.Core.PowerGatedPHT)/float64(res.Core.Searches), "pht-gated-%")
	}
}

// drain pulls exactly n records from src through the Source interface
// (the hop the simulator front end pays per instruction on streaming
// sources) and returns a checksum so the loop cannot be optimized
// away.
func drain(b *testing.B, src trace.Source, n int) uint64 {
	b.Helper()
	var sum uint64
	for i := 0; i < n; i++ {
		r, ok := src.Next()
		if !ok {
			b.Fatalf("source ended after %d of %d records", i, n)
		}
		sum += uint64(r.Addr) + uint64(r.Len())
	}
	return sum
}

// The packed sub-benchmark of BenchmarkPackedReplay drains the cursor
// in a loop written directly into the benchmark body rather than a
// helper: with the concrete *trace.Cursor.Next inlined into the
// enclosing loop, the compiler keeps the returned Rec in registers
// (four SSA-able fields — see the trace.Rec doc) and drops loads of
// columns the checksum never consumes. Routing the same records
// through drain's Source-interface parameter costs roughly 2x per
// record; the packed-iface variant keeps that dispatch tax measurable.

// BenchmarkPackedReplay is the tentpole's headline microbenchmark: the
// per-record cost of one trace REPLAY, as a sweep job pays it.
//
// In a multi-point campaign every design point needs its own pass over
// the workload. On the streaming path that means what runner.Workload
// does inside each pool job: build the generator (workload.Make —
// program construction, behavior closures, rng) and run it from
// scratch. On the packed path the buffer was materialized once for the
// whole campaign, and a replay is a reset O(1) cursor over flat
// pre-validated columns.
//
// The packed sub-benchmark drains through the concrete cursor — the
// monomorphized path the fast core's front end actually takes; the
// packed-iface variant keeps the old Source-interface hop measurable
// so the dispatch cost stays visible in the BENCH_*.json trajectory.
func BenchmarkPackedReplay(b *testing.B) {
	const n = benchInstr
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src, err := workload.Make("lspr", 42)
			if err != nil {
				b.Fatal(err)
			}
			drain(b, src, n)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/instr")
	})
	b.Run("packed", func(b *testing.B) {
		t0 := time.Now()
		p, err := workload.MakePacked("lspr", 42, n)
		if err != nil {
			b.Fatal(err)
		}
		matNS := float64(time.Since(t0).Nanoseconds())
		b.ReportAllocs()
		cur := p.Cursor()
		b.ResetTimer()
		var sum uint64
		for i := 0; i < b.N; i++ {
			cur.Reset()
			for j := 0; j < n; j++ {
				r, ok := cur.Next()
				if !ok {
					b.Fatalf("cursor ended after %d of %d records", j, n)
				}
				sum += uint64(r.Addr) + uint64(r.Len())
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/instr")
		b.ReportMetric(matNS, "materialize-ns")
		if sum == 0 {
			b.Fatal("replay checksum is zero")
		}
	})
	b.Run("packed-iface", func(b *testing.B) {
		p, err := workload.MakePacked("lspr", 42, n)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		cur := p.Cursor()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur.Reset()
			drain(b, &cur, n)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/instr")
	})
}

// BenchmarkE11AblationEndToEnd runs the whole E11 ablation experiment
// (10 z15 variants over the mixed workload) per iteration, in both
// source modes: the end-to-end wall-clock view of materialize-once vs
// regenerate-per-point for a real multi-point study.
func BenchmarkE11AblationEndToEnd(b *testing.B) {
	const scale = 60_000
	for _, mode := range []string{"streaming", "packed"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o := exp.Options{W: io.Discard, Scale: scale, Seed: 42}
				if mode == "packed" {
					// A fresh materializer per iteration charges the
					// one-time generation cost to the packed side too.
					o.Mat = workload.NewMaterializer()
				}
				exp.E11Ablation(o)
			}
		})
	}
}

// BenchmarkVerificationHarness exercises the §VII constrained-random
// white-box verification flow (not a paper figure; it keeps the
// harness itself under performance scrutiny).
func BenchmarkVerificationHarness(b *testing.B) {
	b.ReportAllocs()
	var rep verif.Report
	for i := 0; i < b.N; i++ {
		p := verif.DefaultParams(uint64(i + 1))
		p.Instructions = 50_000
		rep = verif.RunRandom(p)
		if rep.Failed() {
			b.Fatalf("verification errors: %v", rep.Errors[0])
		}
	}
	b.ReportMetric(float64(rep.Checks), "crosschecks")
}
