# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet bench exp race cover

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test: vet
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem .

exp:
	go run ./cmd/zexp -scale 2000000

cover:
	go test -coverprofile=cover.out ./... && go tool cover -func=cover.out | tail -1
