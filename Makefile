# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet bench bench-smoke bench-allocs bench-nsinstr bench-json exp race cover fuzz golden golden-wchar serve serve-smoke jobs-smoke diff-smoke cluster-smoke zwork-smoke staticcheck

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test: vet
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem .

# Fast CI benchmark smoke: the packed-replay headline and the Table 1
# capacity sweep, one iteration each — catches crashes and gross
# regressions without a long benchmark run.
bench-smoke:
	go test -run '^$$' -bench 'PackedReplay|Table1' -benchtime 1x -benchmem .

# Fail if the capacity-sweep allocs/op exceeds the checked-in ceiling
# (scripts/bench_allocs_ceiling.txt).
bench-allocs:
	sh scripts/bench_allocs.sh

# Fail if packed-replay ns/instr exceeds the checked-in ceiling
# (scripts/bench_nsinstr_ceiling.txt) or the drain allocates.
bench-nsinstr:
	sh scripts/bench_nsinstr.sh

# Regenerate the machine-readable benchmark trajectory document for
# this PR (override PR= to change the filename suffix).
PR ?= 8
bench-json:
	go run ./cmd/zbench -out BENCH_$(PR).json

exp:
	go run ./cmd/zexp -scale 2000000

cover:
	go test -coverprofile=cover.out ./... && go tool cover -func=cover.out | tail -1

# 30s smoke per fuzz target, same as CI.
fuzz:
	go test ./internal/trace -run '^$$' -fuzz '^FuzzReadTrace$$' -fuzztime 30s
	go test ./internal/trace -run '^$$' -fuzz '^FuzzRecordRoundTrip$$' -fuzztime 30s
	go test ./internal/trace -run '^$$' -fuzz '^FuzzIngest$$' -fuzztime 30s
	go test ./internal/equiv -run '^$$' -fuzz '^FuzzEquivCell$$' -fuzztime 30s

# Differential equivalence harness smoke: a small clean grid must show
# zero divergences, and a perturbed cell must be detected.
diff-smoke:
	go run ./cmd/zdiff -scale 4000 -configs z15,zEC12 -workloads lspr-small,callret,indirect,patterned
	go run ./cmd/zdiff -scale 4000 -configs z15 -workloads patterned -perturb

# Refresh the golden stats snapshots after an intentional model change.
golden:
	go test ./internal/sim -run Golden -update

# Refresh the golden characterization sidecars after an intentional
# generator or characterization change.
golden-wchar:
	go test ./internal/wchar -run Golden -update

# Run the simulation service locally.
serve:
	go run ./cmd/zbpd

# Boot zbpd, run one simulate request, check /healthz and /metrics,
# and require a clean SIGTERM drain. Wired into CI.
serve-smoke:
	sh scripts/serve_smoke.sh

# Async job API smoke: submit/poll/stream a sweep job against a
# persistent result cache, prove an identical resubmission simulates
# nothing, then SIGTERM with a job running. Wired into CI.
jobs-smoke:
	sh scripts/jobs_smoke.sh

# Cluster mode smoke: coordinator + 2 backends, the same sweep twice
# (the repeat must be fully coordinator-cache-served: zero backend
# dispatches), a backend registered and one deregistered at runtime
# via zbpctl backends, and a clean SIGTERM fleet drain. Wired into CI.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# External-trace pipeline smoke: generate -> export -> re-ingest ->
# characterize -> simulate (zsim and zbpd -trace-dir), requiring a
# lossless conversion round trip and identical local/served stats.
# Wired into CI.
zwork-smoke:
	sh scripts/zwork_smoke.sh

# Static analysis beyond go vet; staticcheck is installed on demand in
# CI (go run pins the version without touching go.mod).
staticcheck:
	go run honnef.co/go/tools/cmd/staticcheck@2025.1 ./...
