package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"zbp/internal/btb"
	"zbp/internal/core"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

// Timeline renders the search pipeline's schedule the way the paper's
// figures 4-7 draw it: one row per search, one column per cycle, with
// the b0..b5 stage occupying its cycle. It makes the redirect timing
// visible directly: without CPRED the b0 of the target stream lands 5
// cycles after the taken search's b0; with CPRED it lands 2 cycles
// after.
type searchEvent struct {
	b0   int64
	line zarch.Addr
}

// RenderPipelineTimeline runs a two-branch loop on a bare core and
// draws the first nSearches searches after warmup.
func RenderPipelineTimeline(w io.Writer, cfg core.Config, nSearches int) {
	c := core.New(cfg)
	mk := func(addr, target zarch.Addr) btb.Info {
		return btb.Info{Addr: addr, Len: 4, Kind: zarch.KindUncondRel,
			Target: target, BHT: sat.StrongT, Skoot: btb.SkootUnknown}
	}
	a, b := zarch.Addr(0x10000), zarch.Addr(0x40000)
	c.Preload(1, mk(a+8, b))
	c.Preload(1, mk(b+8, a))

	var events []searchEvent
	c.SetSearchHook(func(t int, line zarch.Addr) {
		events = append(events, searchEvent{b0: c.Clock(), line: line})
	})
	c.Restart(0, a, 0)

	// Warm up so CPRED entries exist, then capture.
	warmup := 60
	for i := 0; i < warmup; i++ {
		c.Cycle()
		for {
			if _, ok := c.PopPred(0); !ok {
				break
			}
		}
	}
	events = events[:0]
	for len(events) < nSearches {
		c.Cycle()
		for {
			if _, ok := c.PopPred(0); !ok {
				break
			}
		}
	}
	events = events[:nSearches]
	sort.Slice(events, func(i, j int) bool { return events[i].b0 < events[j].b0 })

	base := events[0].b0
	stages := cfg.PipeStages
	width := int(events[len(events)-1].b0-base) + stages

	fmt.Fprintf(w, "%-14s", "search")
	for cyc := 0; cyc < width; cyc++ {
		fmt.Fprintf(w, "%3d", cyc)
	}
	fmt.Fprintln(w)
	for i, ev := range events {
		fmt.Fprintf(w, "%-14s", fmt.Sprintf("#%d %s", i, ev.line))
		start := int(ev.b0 - base)
		for cyc := 0; cyc < width; cyc++ {
			switch {
			case cyc >= start && cyc < start+stages:
				fmt.Fprintf(w, " b%d", cyc-start)
			default:
				fmt.Fprint(w, "  .")
			}
		}
		fmt.Fprintln(w)
	}
}

// E3 and E4 append the timeline so the figures are visually
// reproduced, not just their periods measured.
func renderTimelines(w io.Writer) {
	fmt.Fprintln(w, "\npipeline schedule without CPRED (figure 4: redirect b0 five cycles after the taken search's b0):")
	noCp := core.Z15()
	noCp.CPred.Entries = 0
	RenderPipelineTimeline(w, noCp, 5)

	fmt.Fprintln(w, "\npipeline schedule with CPRED (figure 5: preemptive re-index at b2, redirect b0 two cycles after):")
	RenderPipelineTimeline(w, core.Z15(), 8)
	fmt.Fprintln(w, strings.Repeat("-", 40))
}
