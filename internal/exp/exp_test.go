package exp

import (
	"bytes"
	"strings"
	"testing"

	"zbp/internal/core"
)

func TestAllExperimentsRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(Options{W: &buf, Scale: 60000, Seed: 3})
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("report missing banner:\n%s", out)
			}
			if len(out) < 200 {
				t.Errorf("suspiciously short report:\n%s", out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("mpki"); !ok {
		t.Error("mpki experiment missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id found")
	}
	if len(All()) != 12 {
		t.Errorf("experiments = %d, want 12", len(All()))
	}
}

func TestTakenPeriodMatchesPaper(t *testing.T) {
	noCp := core.Z15()
	noCp.CPred.Entries = 0
	if p := takenPeriod(noCp, false); p < 4.8 || p > 5.4 {
		t.Errorf("no-CPRED ST period = %.2f, want ~5 (figure 4)", p)
	}
	if p := takenPeriod(core.Z15(), false); p < 1.9 || p > 2.4 {
		t.Errorf("CPRED ST period = %.2f, want ~2 (figure 5)", p)
	}
	if p := takenPeriod(noCp, true); p < 5.7 || p > 6.5 {
		t.Errorf("no-CPRED SMT2 period = %.2f, want ~6 (§IV)", p)
	}
}

func TestWeakLoopPathologyShape(t *testing.T) {
	// The E10 premise must hold: disabling SBHT/SPHT hurts (or at least
	// never helps) on the weak-loop workload.
	var with, without bytes.Buffer
	E10SBHT(Options{W: &with, Scale: 150000, Seed: 3})
	_ = without
	out := with.String()
	if !strings.Contains(out, "SBHT/SPHT disabled") {
		t.Fatalf("report malformed:\n%s", out)
	}
}
