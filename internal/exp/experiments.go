package exp

import (
	"fmt"

	"zbp/internal/core"
	"zbp/internal/dirpred"
	"zbp/internal/metrics"
	"zbp/internal/runner"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// E1Table1 reprints the modeled Table 1 (structure sizes per
// generation) and sweeps BTB1 capacity on a large-footprint workload to
// show the capacity lever of §II.A/§III.
func E1Table1(o Options) {
	e, _ := ByID("table1")
	header(o.W, e)

	tab := metrics.NewTable("machine", "BTB1", "BTB2", "BTBP", "GPV", "PHT", "perceptron", "CRS", "CPRED", "SKOOT", "L1I", "L2I")
	for _, cfg := range core.Generations() {
		sc := sim.ForGeneration(cfg)
		pht := "1 table"
		if cfg.Dir.TwoTables {
			pht = "TAGE 2 tables"
		}
		yn := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		tab.Row(cfg.Name,
			fmt.Sprintf("%dK", cfg.BTB1.Capacity()/1024),
			fmt.Sprintf("%dK", cfg.BTB2.Capacity()/1024),
			cfg.BTBPEntries,
			cfg.GPVDepth,
			pht,
			yn(cfg.Dir.PerceptronEnabled),
			yn(cfg.Tgt.CRSEnabled),
			yn(cfg.CPred.Entries > 0),
			yn(cfg.SkootEnabled),
			fmt.Sprintf("%dKB", sc.ICache.L1Bytes/1024),
			fmt.Sprintf("%dMB", sc.ICache.L2Bytes/(1<<20)),
		)
	}
	tab.Render(o.W)

	fmt.Fprintf(o.W, "\nBTB1 capacity sweep (z15 otherwise, workload lspr, %d instructions):\n", o.scale())
	sweep := metrics.NewTable("BTB1 entries", "MPKI", "surprises", "accuracy")
	rowBitses := []uint{7, 8, 9, 10, 11}
	jobs := make([]runner.Job, len(rowBitses))
	for i, rowBits := range rowBitses {
		cfg := sim.Z15()
		cfg.Core.BTB1.RowBits = rowBits
		jobs[i] = job(o, cfg, "lspr", o.Seed)
	}
	for i, res := range runBatch(o, jobs) {
		cfg := sim.Z15()
		cfg.Core.BTB1.RowBits = rowBitses[i]
		sweep.Row(cfg.Core.BTB1.Capacity(), res.MPKI(), res.Threads[0].Surprises,
			fmt.Sprintf("%.4f", res.Accuracy()))
	}
	sweep.Render(o.W)
	fmt.Fprintln(o.W, "\nexpected shape: MPKI decreases monotonically with BTB1 capacity.")
}

// E2Restart quantifies the restart penalties of §I/§II: the configured
// 26-cycle flush plus queue-refill inefficiency, and the measured
// per-mispredict statistical cost.
func E2Restart(o Options) {
	e, _ := ByID("restart")
	header(o.W, e)
	cfg := sim.Z15()
	fmt.Fprintf(o.W, "configured: restart=%d cycles, queue refill=+%d (paper: 26, up to +10, ~35 statistical)\n\n",
		cfg.Front.RestartPenalty, cfg.Front.QueueRefillPenalty)
	tab := metrics.NewTable("workload", "mispredicts", "restart stall cyc", "stall/mispredict", "IPC")
	names := []string{"lspr", "micro", "indirect"}
	jobs := make([]runner.Job, len(names))
	for i, name := range names {
		jobs[i] = job(o, cfg, name, o.Seed)
	}
	for i, res := range runBatch(o, jobs) {
		name := names[i]
		t := res.Threads[0]
		events := t.DynWrongDir + t.DynWrongTarget + t.SurpriseWrong +
			t.SurpriseTakenRel + t.SurpriseTakenInd + t.BadPredictions
		tab.Row(name, res.Mispredicts(), t.RestartStall,
			fmt.Sprintf("%.1f", metrics.Ratio(t.RestartStall, events)),
			fmt.Sprintf("%.2f", res.IPC()))
	}
	tab.Render(o.W)
	fmt.Fprintln(o.W, "\nexpected shape: ~26-34 cycles lost per restart event.")
}

// E3Fig4 measures the 6-stage pipeline's taken-branch period without
// CPRED: one predicted taken branch every 5 cycles (figure 4).
func E3Fig4(o Options) {
	e, _ := ByID("fig4")
	header(o.W, e)
	cfg := core.Z15()
	cfg.CPred.Entries = 0
	tab := metrics.NewTable("configuration", "taken-branch period (cycles)", "paper")
	tab.Row("z15, no CPRED, single thread", fmt.Sprintf("%.2f", takenPeriod(cfg, false)), "5")
	tab.Row("z15, no CPRED, SMT2", fmt.Sprintf("%.2f", takenPeriod(cfg, true)), "6")
	tab.Render(o.W)
	renderTimelines(o.W)
}

// E4Fig5 measures the CPRED-accelerated period (figure 5: re-index at
// b2, a taken branch every 2 cycles) and SKOOT's search savings
// (figures 6-7).
func E4Fig5(o Options) {
	e, _ := ByID("fig5")
	header(o.W, e)
	tab := metrics.NewTable("configuration", "taken-branch period (cycles)", "paper")
	tab.Row("z15 with CPRED, single thread", fmt.Sprintf("%.2f", takenPeriod(core.Z15(), false)), "2")
	noCp := core.Z15()
	noCp.CPred.Entries = 0
	tab.Row("z15 without CPRED, single thread", fmt.Sprintf("%.2f", takenPeriod(noCp, false)), "5")
	tab.Render(o.W)

	fmt.Fprintf(o.W, "\nSKOOT search savings (workload lspr, %d instructions):\n", o.scale())
	skootTab := metrics.NewTable("SKOOT", "searches", "no-pred searches", "lines skipped", "searches/instr")
	settings := []bool{true, false}
	jobs := make([]runner.Job, len(settings))
	for i, on := range settings {
		cfg := sim.Z15()
		cfg.Core.SkootEnabled = on
		jobs[i] = job(o, cfg, "lspr", o.Seed)
	}
	for i, res := range runBatch(o, jobs) {
		label := "off"
		if settings[i] {
			label = "on"
		}
		skootTab.Row(label, res.Core.Searches, res.Core.NoPredSearches,
			res.Core.SkootLinesSkipped,
			fmt.Sprintf("%.3f", metrics.Ratio(res.Core.Searches, res.Instructions())))
	}
	skootTab.Render(o.W)
	fmt.Fprintln(o.W, "\nexpected shape: SKOOT reduces total and empty searches.")
}

// E5Fig8 reports which structure provided each direction prediction and
// how accurate each provider was (the figure 8 selection tree at work).
func E5Fig8(o Options) {
	e, _ := ByID("fig8")
	header(o.W, e)
	names := []string{"patterned", "lspr"}
	jobs := make([]runner.Job, len(names))
	for i, name := range names {
		jobs[i] = job(o, sim.Z15(), name, o.Seed)
	}
	for i, res := range runBatch(o, jobs) {
		fmt.Fprintf(o.W, "workload %s:\n", names[i])
		tab := metrics.NewTable("provider", "issued", "share", "accuracy")
		var total int64
		for _, v := range res.Dir.Issued {
			total += v
		}
		for p := dirpred.ProvNone; p <= dirpred.ProvPerceptron; p++ {
			iss := res.Dir.Issued[p]
			if iss == 0 {
				continue
			}
			tab.Row(p.String(), iss, metrics.Pct(iss, total), metrics.Pct(res.Dir.Correct[p], iss))
		}
		tab.Render(o.W)
		fmt.Fprintln(o.W)
	}
	fmt.Fprintln(o.W, "expected shape: BHT dominates volume; TAGE/perceptron carry the pattern/correlated branches with high accuracy.")
}

// E6Fig9 reports target-provider shares and wrong-target rates (the
// figure 9 selection tree at work).
func E6Fig9(o Options) {
	e, _ := ByID("fig9")
	header(o.W, e)
	providers := []string{"btb", "ctb", "crs"}
	names := []string{"callret", "indirect", "lspr"}
	jobs := make([]runner.Job, len(names))
	for i, name := range names {
		jobs[i] = job(o, sim.Z15(), name, o.Seed)
	}
	for j, res := range runBatch(o, jobs) {
		t := res.Threads[0]
		fmt.Fprintf(o.W, "workload %s (returns marked: %d, blacklists: %d, amnesties: %d):\n",
			names[j], res.Tgt.ReturnsMarked, res.Tgt.Blacklists, res.Tgt.Amnesties)
		tab := metrics.NewTable("provider", "taken predictions", "wrong target", "wrong rate")
		for i, p := range providers {
			if t.TgtProvided[i] == 0 {
				continue
			}
			tab.Row(p, t.TgtProvided[i], t.TgtWrong[i], metrics.Pct(t.TgtWrong[i], t.TgtProvided[i]))
		}
		tab.Render(o.W)
		fmt.Fprintln(o.W)
	}
	fmt.Fprintln(o.W, "expected shape: CRS covers call/return targets, CTB covers path-correlated switches; BTB alone would mispredict multi-target branches.")
}

// E7MPKI reproduces the headline result's shape: MPKI falls across
// generations, with the z15 step larger than the z14 step (paper §VIII:
// -9.6% z13->z14, -25% z14->z15 on LSPR workloads).
func E7MPKI(o Options) {
	e, _ := ByID("mpki")
	header(o.W, e)
	names := []string{"lspr", "lspr-large", "micro", "mixed"}
	if len(o.Workloads) > 0 {
		names = o.Workloads
	}
	if o.seeds() > 1 {
		fmt.Fprintf(o.W, "averaging over %d workload seeds per cell.\n\n", o.seeds())
	}
	// The full matrix (generations x workloads x seeds) is one flat
	// batch, so the pool keeps every core busy across cell boundaries.
	var jobs []runner.Job
	for _, gen := range core.Generations() {
		for _, name := range names {
			for k := 0; k < o.seeds(); k++ {
				jobs = append(jobs, job(o, sim.ForGeneration(gen), name, o.Seed+uint64(k)*101))
			}
		}
	}
	results := runBatch(o, jobs)
	perGen := map[string][]float64{}
	idx := 0
	for _, gen := range core.Generations() {
		for range names {
			sum := 0.0
			for k := 0; k < o.seeds(); k++ {
				sum += results[idx].MPKI()
				idx++
			}
			perGen[gen.Name] = append(perGen[gen.Name], sum/float64(o.seeds()))
		}
	}
	tab := metrics.NewTable(append([]string{"machine"}, names...)...)
	for _, gen := range core.Generations() {
		row := []interface{}{gen.Name}
		for _, v := range perGen[gen.Name] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		tab.Row(row...)
	}
	tab.Render(o.W)

	avg := func(vs []float64) float64 {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}
	a13, a14, a15 := avg(perGen["z13"]), avg(perGen["z14"]), avg(perGen["z15"])
	fmt.Fprintf(o.W, "\naverage MPKI: z13=%.2f z14=%.2f z15=%.2f\n", a13, a14, a15)
	fmt.Fprintf(o.W, "z13->z14: %s (paper: -9.6%%)\n", metrics.Delta(a13, a14))
	fmt.Fprintf(o.W, "z14->z15: %s (paper: -25%%)\n", metrics.Delta(a14, a15))
	fmt.Fprintln(o.W, "expected shape: both deltas negative, z15 step larger than z14 step.")
}

// E8BTB2 quantifies the two-level BTB (§III): surprises and MPKI with
// the BTB2 disabled, and the periodic-refresh contribution.
func E8BTB2(o Options) {
	e, _ := ByID("btb2")
	header(o.W, e)
	type variant struct {
		name string
		mod  func(*sim.Config)
	}
	variants := []variant{
		{"z15 (BTB2 on)", func(*sim.Config) {}},
		{"no BTB2", func(c *sim.Config) { c.Core.BTB2Enabled = false }},
		{"no periodic refresh", func(c *sim.Config) { c.Core.RefreshRun = 0 }},
		{"no proactive trigger", func(c *sim.Config) { c.Core.SurpriseRun = 0 }},
	}
	section := func(title, wl string, rowBits uint) {
		fmt.Fprintf(o.W, "%s (workload %s, %d instructions):\n", title, wl, o.scale())
		tab := metrics.NewTable("configuration", "surprises", "MPKI", "IPC", "backfill triggers", "refresh writes")
		jobs := make([]runner.Job, len(variants))
		for i, v := range variants {
			cfg := sim.Z15()
			cfg.Core.BTB1.RowBits = rowBits
			v.mod(&cfg)
			jobs[i] = job(o, cfg, wl, o.Seed)
		}
		for i, res := range runBatch(o, jobs) {
			tab.Row(variants[i].name, res.Threads[0].Surprises, fmt.Sprintf("%.2f", res.MPKI()),
				fmt.Sprintf("%.2f", res.IPC()),
				res.Core.BTB2MissTriggers, res.Core.RefreshWrites)
		}
		tab.Render(o.W)
		fmt.Fprintln(o.W)
	}
	section("full-size 16K BTB1, footprint pressure", "lspr-large", 11)
	section("shrunken 2K BTB1, heavy capacity crunch", "lspr", 8)
	fmt.Fprintln(o.W, "expected shape: the BTB2 reduces surprises (its §III job is branch")
	fmt.Fprintln(o.W, "coverage). MPKI stays roughly neutral at simulation scale: backfilled")
	fmt.Fprintln(o.W, "entries predict with install-time counter state, trading cheap static")
	fmt.Fprintln(o.W, "guesses for occasional stale dynamic predictions.")
}

// E9Prefetch shows the lookahead predictor acting as an instruction
// prefetcher (§IV): fetch-stall cycles with and without BPL-driven
// prefetch.
func E9Prefetch(o Options) {
	e, _ := ByID("prefetch")
	header(o.W, e)
	tab := metrics.NewTable("workload", "prefetch", "fetch stall cyc", "IPC", "useful prefetches", "L1 hit rate")
	type cell struct {
		name string
		on   bool
	}
	var cells []cell
	var jobs []runner.Job
	for _, name := range []string{"lspr", "lspr-large", "micro"} {
		for _, on := range []bool{true, false} {
			cfg := sim.Z15()
			cfg.Prefetch = on
			cells = append(cells, cell{name, on})
			jobs = append(jobs, job(o, cfg, name, o.Seed))
		}
	}
	for i, res := range runBatch(o, jobs) {
		label := "off"
		if cells[i].on {
			label = "on"
		}
		tab.Row(cells[i].name, label, res.Threads[0].FetchStall,
			fmt.Sprintf("%.2f", res.IPC()), res.IC.PrefetchUseful,
			metrics.Pct(res.IC.L1Hits, res.IC.Accesses))
	}
	tab.Render(o.W)
	fmt.Fprintln(o.W, "\nexpected shape: prefetch removes most fetch-stall cycles on large footprints.")
}

// E10SBHT reproduces the weak-loop-branch pathology (§IV): with the
// speculative BHT/PHT disabled, delayed GPQ-state-based updates let a
// mostly-taken loop branch's counter be knocked to not-taken, causing
// mispredict storms.
func E10SBHT(o Options) {
	e, _ := ByID("sbht")
	header(o.W, e)
	fmt.Fprintln(o.W, "The BHT-only rows isolate the §IV scenario (a weak-taken loop branch")
	fmt.Fprintln(o.W, "with several in-flight instances); the full-z15 rows show the TAGE")
	fmt.Fprintln(o.W, "PHT absorbing most of the exposure once the branch turns bidirectional.")
	fmt.Fprintln(o.W)
	tab := metrics.NewTable("configuration", "MPKI", "dyn wrong direction", "accuracy")
	variants := []struct {
		label   string
		entries int
		auxOff  bool
	}{
		{"BHT only, SBHT 8 entries", 8, true},
		{"BHT only, SBHT disabled", 0, true},
		{"full z15, SBHT/SPHT 8 entries", 8, false},
		{"full z15, SBHT/SPHT disabled", 0, false},
	}
	// With materialization on, the pathological workload is generated
	// once and every variant replays the shared packed buffer; in
	// streaming mode it is built per job, so every worker owns its own
	// stream state.
	spec := func() ([]trace.Source, error) {
		return []trace.Source{weakLoop(o.Seed)}, nil
	}
	if o.Mat != nil {
		packed, err := trace.Pack(weakLoop(o.Seed), o.scale())
		if err != nil {
			panic(fmt.Errorf("exp: packing weak-loop workload: %w", err))
		}
		spec = runner.Packed(packed)
	}
	jobs := make([]runner.Job, len(variants))
	for i, v := range variants {
		cfg := sim.Z15()
		cfg.Core.Dir.SpecEntries = v.entries
		if v.auxOff {
			cfg.Core.Dir.PHTEnabled = false
			cfg.Core.Dir.PerceptronEnabled = false
		}
		jobs[i] = runner.Job{
			Name:         v.label,
			Config:       cfg,
			Source:       spec,
			Instructions: o.scale(),
		}
	}
	for i, res := range runBatch(o, jobs) {
		tab.Row(variants[i].label, fmt.Sprintf("%.2f", res.MPKI()), res.Threads[0].DynWrongDir,
			fmt.Sprintf("%.4f", res.Accuracy()))
	}
	tab.Render(o.W)
	fmt.Fprintln(o.W, "\nexpected shape: without the speculative trackers, wrong directions rise on the weak loop branch (sharply in the BHT-only rows).")
}

// weakLoop builds the pathological §IV workload: a tight loop around a
// strongly biased (90% taken) conditional, so several in-flight
// instances predict from the same weak counter state.
func weakLoop(seed uint64) trace.Source {
	b := workload.NewBuilder(0x10000, seed)
	headL := b.NewLabel()
	head := b.Block(4)
	b.Bind(headL, head)
	blk := b.Block(4)
	blk.CondBias(0.9, headL)
	tail := b.Block(2)
	tail.Jump(headL)
	return workload.NewExec(b.MustBuild(head), seed+1)
}

// E11Ablation removes one z15 feature at a time (§IV-§VI design
// choices) and reports the damage on a mixed workload.
func E11Ablation(o Options) {
	e, _ := ByID("ablation")
	header(o.W, e)
	type variant struct {
		name string
		mod  func(*sim.Config)
	}
	variants := []variant{
		{"z15 full", func(*sim.Config) {}},
		{"- perceptron", func(c *sim.Config) { c.Core.Dir.PerceptronEnabled = false }},
		{"- TAGE long table (single PHT)", func(c *sim.Config) { c.Core.Dir.TwoTables = false; c.Core.Dir.ShortHist = 17 }},
		{"- PHT entirely", func(c *sim.Config) { c.Core.Dir.PHTEnabled = false }},
		{"- CRS", func(c *sim.Config) { c.Core.Tgt.CRSEnabled = false }},
		{"- CTB", func(c *sim.Config) { c.Core.Tgt.CTBEntries = 0 }},
		{"- CPRED", func(c *sim.Config) { c.Core.CPred.Entries = 0 }},
		{"- SKOOT", func(c *sim.Config) { c.Core.SkootEnabled = false }},
		{"+ way-banked PHT (physical)", func(c *sim.Config) { c.Core.Dir.WayBanked = true }},
		{"- GPV17 (GPV9)", func(c *sim.Config) {
			c.Core.GPVDepth = 9
			c.Core.Dir.LongHist = 9
			c.Core.Tgt.CTBHist = 9
		}},
	}
	tab := metrics.NewTable("variant", "MPKI", "delta vs full", "IPC")
	jobs := make([]runner.Job, len(variants))
	for i, v := range variants {
		cfg := sim.Z15()
		v.mod(&cfg)
		jobs[i] = job(o, cfg, "mixed", o.Seed)
	}
	var base float64
	for i, res := range runBatch(o, jobs) {
		m := res.MPKI()
		if i == 0 {
			base = m
			tab.Row(variants[i].name, fmt.Sprintf("%.2f", m), "--", fmt.Sprintf("%.2f", res.IPC()))
			continue
		}
		tab.Row(variants[i].name, fmt.Sprintf("%.2f", m), metrics.Delta(base, m), fmt.Sprintf("%.2f", res.IPC()))
	}
	tab.Render(o.W)
	fmt.Fprintln(o.W, "\nexpected shape: every removal costs MPKI or IPC; the PHT is the largest single direction contributor.")
}

// E12Power reports how often CPRED's power predictor kept auxiliary
// structures gated off (§IV/§VI).
func E12Power(o Options) {
	e, _ := ByID("power")
	header(o.W, e)
	tab := metrics.NewTable("workload", "searches", "PHT gated", "perceptron gated", "CTB gated", "CPRED hit rate")
	names := []string{"loops", "patterned", "lspr", "micro"}
	jobs := make([]runner.Job, len(names))
	for i, name := range names {
		jobs[i] = job(o, sim.Z15(), name, o.Seed)
	}
	for i, res := range runBatch(o, jobs) {
		s := res.Core.Searches
		tab.Row(names[i], s,
			metrics.Pct(res.Core.PowerGatedPHT, s),
			metrics.Pct(res.Core.PowerGatedPerc, s),
			metrics.Pct(res.Core.PowerGatedCTB, s),
			metrics.Pct(res.CPred.Hits, res.CPred.Lookups))
	}
	tab.Render(o.W)
	fmt.Fprintln(o.W, "\nexpected shape: simple workloads keep auxiliary structures gated most of the time; accuracy is unaffected because gating follows the bidirectional/multi-target bits.")
}
