// Package exp implements the reproduction experiments E1..E12 indexed
// in DESIGN.md: one regenerator per table/figure/result of the paper.
// Each experiment runs simulations and writes a self-describing report;
// cmd/zexp drives them and EXPERIMENTS.md records their output against
// the paper's claims.
package exp

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"zbp/internal/btb"
	"zbp/internal/core"
	"zbp/internal/hashx"
	"zbp/internal/runner"
	"zbp/internal/sat"
	"zbp/internal/sim"
	"zbp/internal/workload"
	"zbp/internal/zarch"
)

// Options control experiment scale.
type Options struct {
	// W receives the report.
	W io.Writer
	// Scale is the instruction budget per simulation (default 1M).
	Scale int
	// Seed makes runs reproducible.
	Seed uint64
	// Seeds is the number of workload seeds the headline experiment
	// averages over (default 1); more seeds reduce layout luck.
	Seeds int
	// Parallelism bounds concurrent simulations within an experiment
	// (0 = all cores). Results are identical at any setting: the
	// runner pool is deterministic and order-preserving.
	Parallelism int
	// ID labels the experiment in stats-file names; cmd/zexp sets it
	// to the experiment's ID before calling Run.
	ID string
	// StatsDir, when non-empty, makes every runner batch serialize each
	// simulation's schema-versioned stats snapshot into this directory
	// as <id>-b<batch>-j<job>-<name>.json, so experiment runs can be
	// diffed in CI. The directory must exist.
	StatsDir string
	// Workloads, when non-empty, overrides the headline MPKI
	// experiment's workload list. Any name the stack accepts works,
	// including file:<path> traces and spec:<path> mixes — the hook for
	// running the generational comparison over ingested external traces.
	Workloads []string
	// Mat, when non-nil, enables the materialize-once pipeline: each
	// (workload, seed, scale) is generated and packed a single time —
	// shared across every experiment handed the same Materializer — and
	// all sweep points replay lock-free cursors over the shared buffer.
	// Results are byte-identical to streaming generation (enforced by
	// the packed-vs-streaming equivalence tests); only wall clock and
	// allocation behavior change.
	Mat *workload.Materializer
	// batchSeq numbers runner batches within one experiment for stable
	// stats-file names; set via WithStats.
	batchSeq *int
}

// WithStats returns o with stats serialization into dir enabled for
// experiment id.
func (o Options) WithStats(dir, id string) Options {
	o.StatsDir = dir
	o.ID = id
	o.batchSeq = new(int)
	return o
}

func (o Options) seeds() int {
	if o.Seeds <= 0 {
		return 1
	}
	return o.Seeds
}

func (o Options) scale() int {
	if o.Scale <= 0 {
		return 1_000_000
	}
	return o.Scale
}

// Experiment is one reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Paper string // what in the paper it reproduces
	Run   func(Options)
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Structure sizes by generation + BTB capacity sweep", "Table 1, §II.A/§III", E1Table1},
		{"restart", "Restart penalty accounting", "Figure 1, §I/§II.B/§II.D", E2Restart},
		{"fig4", "Taken-branch period without CPRED", "Figure 4, §IV", E3Fig4},
		{"fig5", "Taken-branch period with CPRED; SMT2 port sharing", "Figures 5-7, §IV", E4Fig5},
		{"fig8", "Direction-provider shares and accuracy", "Figure 8, §V", E5Fig8},
		{"fig9", "Target-provider shares and wrong-target rates", "Figure 9, §VI", E6Fig9},
		{"mpki", "Generational MPKI (headline result)", "§VIII: z13->z14 -9.6%, z14->z15 -25%", E7MPKI},
		{"btb2", "Two-level BTB value and periodic refresh", "§III", E8BTB2},
		{"prefetch", "Lookahead search as I-cache prefetcher", "§IV", E9Prefetch},
		{"sbht", "Speculative BHT/PHT weak-loop pathology", "§IV", E10SBHT},
		{"ablation", "z15 feature ablations", "§IV-§VI design choices", E11Ablation},
		{"power", "CPRED power gating of auxiliary structures", "§IV/§VI", E12Power},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// job builds one pool job for the named workload at experiment scale.
// With a Materializer set, the job replays a cursor over the shared
// packed trace instead of regenerating the workload in the worker.
// The caller's seed is decorrelated per workload name (see
// hashx.SeedFor) so experiments sweeping several workloads from one
// base seed don't feed every generator the same random stream;
// explicit offsets (E7's per-generation reseeding) compose on top.
func job(o Options, cfg sim.Config, name string, seed uint64) runner.Job {
	seed = hashx.SeedFor(seed, name)
	j := runner.Job{
		Name:         name,
		Config:       cfg,
		Instructions: o.scale(),
	}
	if o.Mat != nil {
		p, err := o.Mat.Get(name, seed, o.scale())
		if err != nil {
			panic(fmt.Errorf("exp: materializing %s: %w", name, err))
		}
		j.Source = runner.Packed(p)
	} else {
		j.Source = runner.Workload(name, seed)
	}
	return j
}

// runBatch fans jobs out across the experiment's runner pool and
// returns results in job order; a failed job (unknown workload, model
// bug) panics, matching runOn. With StatsDir set, every result's
// stats snapshot is serialized for machine diffing.
func runBatch(o Options, jobs []runner.Job) []sim.Result {
	pool := runner.Pool{Parallelism: o.Parallelism}
	results := runner.Results(pool.Run(context.Background(), jobs))
	if o.StatsDir != "" {
		batch := 0
		if o.batchSeq != nil {
			*o.batchSeq++
			batch = *o.batchSeq
		}
		for j, res := range results {
			name := fmt.Sprintf("%s-b%02d-j%02d-%s.json", o.ID, batch, j, sanitizeName(jobs[j].Name))
			if err := writeStatsFile(filepath.Join(o.StatsDir, name), &res); err != nil {
				panic(fmt.Errorf("exp: writing stats %s: %w", name, err))
			}
		}
	}
	return results
}

// sanitizeName maps a job name to a filesystem-safe token.
func sanitizeName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func writeStatsFile(path string, res *sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteStatsJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// header prints a section banner.
func header(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", e.ID, e.Title)
	fmt.Fprintf(w, "reproduces: %s\n\n", e.Paper)
}

// takenPeriod measures the steady-state cycle gap between consecutive
// predicted-taken branches in a two-branch loop on a bare core
// (figures 4-7 timing).
func takenPeriod(cfg core.Config, smt2 bool) float64 {
	c := core.New(cfg)
	mk := func(addr, target zarch.Addr) btb.Info {
		return btb.Info{Addr: addr, Len: 4, Kind: zarch.KindUncondRel,
			Target: target, BHT: sat.StrongT, Skoot: btb.SkootUnknown}
	}
	a, b := zarch.Addr(0x10000), zarch.Addr(0x40000)
	c.Preload(1, mk(a+8, b))
	c.Preload(1, mk(b+8, a))
	c.Restart(0, a, 0)
	if smt2 {
		a2, b2 := zarch.Addr(0x90000), zarch.Addr(0xc0000)
		c.Preload(1, mk(a2+8, b2))
		c.Preload(1, mk(b2+8, a2))
		c.Restart(1, a2, 1)
	}
	var times []int64
	warm, meas := 60, 120
	for len(times) < warm+meas {
		c.Cycle()
		for {
			p, ok := c.PopPred(0)
			if !ok {
				break
			}
			if p.Taken {
				times = append(times, p.PresentedAt)
			}
		}
		if smt2 {
			for {
				if _, ok := c.PopPred(1); !ok {
					break
				}
			}
		}
	}
	return float64(times[len(times)-1]-times[warm]) / float64(len(times)-1-warm)
}
