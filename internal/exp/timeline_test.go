package exp

import (
	"bytes"
	"strings"
	"testing"

	"zbp/internal/core"
)

func TestTimelineShowsRedirectSpacing(t *testing.T) {
	var buf bytes.Buffer
	noCp := core.Z15()
	noCp.CPred.Entries = 0
	RenderPipelineTimeline(&buf, noCp, 3)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 searches
		t.Fatalf("timeline lines = %d:\n%s", len(lines), buf.String())
	}
	// Search #1's b0 must be 5 columns after search #0's (figure 4).
	b0col := func(line string) int {
		return strings.Index(line, "b0")
	}
	d := b0col(lines[2]) - b0col(lines[1])
	if d != 5*3 { // 3 chars per cycle column
		t.Errorf("redirect spacing = %d chars, want %d (5 cycles)", d, 5*3)
	}

	var cp bytes.Buffer
	RenderPipelineTimeline(&cp, core.Z15(), 3)
	cpLines := strings.Split(strings.TrimSpace(cp.String()), "\n")
	d2 := b0col(cpLines[2]) - b0col(cpLines[1])
	if d2 != 2*3 {
		t.Errorf("CPRED redirect spacing = %d chars, want %d (2 cycles)", d2, 2*3)
	}
	// Every search shows all six stages.
	for _, ln := range cpLines[1:] {
		for s := 0; s < 6; s++ {
			if !strings.Contains(ln, "b"+string(rune('0'+s))) {
				t.Errorf("stage b%d missing from %q", s, ln)
			}
		}
	}
}
