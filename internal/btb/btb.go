// Package btb implements the branch target buffer hierarchy of the z15
// predictor (paper §III): the set-associative first-level BTB1 (which
// also embeds the BHT direction state and per-branch metadata), the
// large second-level BTB2 used as backfill, the staging queue between
// them, and the legacy BTBP preload/victim buffer used by the
// zEC12/z13/z14 baseline configurations.
//
// Tags are deliberately partial, as in the hardware: two distinct lines
// can fold to the same row and tag, producing "bad branch predictions"
// on non-branch text that the IDU later detects and removes (§IV).
package btb

import (
	"fmt"

	"zbp/internal/hashx"
	"zbp/internal/metrics"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

// SkootUnknown is the initial SKOOT state: perform no skipping until
// the offset has been learned (paper §IV).
const SkootUnknown = 0xff

// Info is the payload tracked per branch. It is what moves between
// BTB1, BTB2, BTBP and the staging queue.
type Info struct {
	// Addr is the branch instruction address as installed. On a lookup
	// hit the address is reconstructed from the searched line and the
	// stored offset, so an aliased entry reports the aliasing address,
	// exactly as the partial-tagged hardware would.
	Addr zarch.Addr
	// Len is the branch instruction length (2, 4 or 6).
	Len uint8
	// Kind is the branch-type metadata (conditional/unconditional,
	// relative/indirect, loop).
	Kind zarch.BranchKind
	// Target is the predicted target address.
	Target zarch.Addr
	// BHT is the embedded 2-bit direction counter (paper §V).
	BHT sat.Counter2
	// Bidirectional is set once the branch has resolved in both
	// directions; only then may the TAGE PHT and perceptron provide the
	// direction (§V, figure 8).
	Bidirectional bool
	// MultiTarget is set once a dynamically predicted target resolved
	// wrong; only then may CTB/CRS provide the target (§VI, figure 9).
	MultiTarget bool
	// IsReturn marks a detected return-like branch with ReturnOffset
	// the displacement (0,2,4,6,8) from the stacked NSIA (§VI).
	IsReturn     bool
	ReturnOffset uint8
	// CRSBlacklisted marks a branch whose CRS prediction resolved wrong;
	// amnesty can clear it (§VI).
	CRSBlacklisted bool
	// Skoot is the learned number of 64-byte lines that can be skipped
	// after this branch's target before the next predictable branch
	// (§IV). SkootUnknown disables skipping.
	Skoot uint8
}

// Geometry describes a set-associative BTB level.
type Geometry struct {
	RowBits   uint // log2 of logical rows
	Ways      int
	TagBits   uint // partial tag width
	LineShift uint // log2 of bytes covered per row index (6 = 64B)
}

// Rows returns the number of logical rows.
func (g Geometry) Rows() int { return 1 << g.RowBits }

// Capacity returns the total number of branch entries.
func (g Geometry) Capacity() int { return g.Rows() * g.Ways }

// LineBytes returns the bytes covered by one indexed line.
func (g Geometry) LineBytes() int { return 1 << g.LineShift }

// Line returns the line base address of addr under this geometry.
func (g Geometry) Line(addr zarch.Addr) zarch.Addr {
	return addr &^ (zarch.Addr(g.LineBytes()) - 1)
}

func (g Geometry) validate() error {
	if g.RowBits == 0 || g.RowBits > 24 || g.Ways <= 0 || g.Ways > 16 ||
		g.TagBits == 0 || g.TagBits > 32 || g.LineShift < 2 || g.LineShift > 12 {
		return fmt.Errorf("btb: invalid geometry %+v", g)
	}
	return nil
}

// Table entry storage is structure-of-arrays (see Table): the logical
// per-way record is {valid, tag, offset, info, stamp}, split into flat
// parallel slices indexed row*Ways+way.

// Hit is one matching entry from a line search.
type Hit struct {
	Info
	Way int
	// Aliased reports that the reconstructed address differs from the
	// installed one (partial-tag collision). Only the verification
	// harness looks at this; the predictor must treat aliased hits as
	// real, as the hardware does.
	Aliased bool
}

// Stats counts structure events.
type Stats struct {
	Searches    int64
	SearchHits  int64 // searches returning at least one branch
	Lookups     int64
	LookupHits  int64
	Installs    int64
	Updates     int64 // installs that matched an existing entry
	Evictions   int64
	Invalidates int64
	AliasedHits int64
}

// Register exposes every counter under prefix (e.g. "btb1") in the
// registry. The receiver must outlive the registry.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Counter(prefix+".searches", &s.Searches)
	r.Counter(prefix+".search_hits", &s.SearchHits)
	r.Counter(prefix+".lookups", &s.Lookups)
	r.Counter(prefix+".lookup_hits", &s.LookupHits)
	r.Counter(prefix+".installs", &s.Installs)
	r.Counter(prefix+".updates", &s.Updates)
	r.Counter(prefix+".evictions", &s.Evictions)
	r.Counter(prefix+".invalidates", &s.Invalidates)
	r.Counter(prefix+".aliased_hits", &s.AliasedHits)
}

// EventKind classifies a table write event for white-box observers.
type EventKind uint8

// Write-event kinds (paper §VII: reference models are driven by
// internal hardware signals, in lockstep).
const (
	EvInstall EventKind = iota
	EvUpdate
	EvEvict
	EvInvalidate
)

// Event is one observed table write.
type Event struct {
	Kind EventKind
	Row  int
	Way  int
	Info Info
}

// Table is one set-associative BTB level (used for both BTB1 and BTB2).
//
// Entry state is held structure-of-arrays: one flat slice per logical
// field, indexed row*Ways+way. The every-cycle operations (SearchLine,
// Lookup) only consult valid+tag(+offset) to find matching ways, so
// the SoA split means a row scan touches a few bytes per way in
// contiguous memory instead of pulling whole ~72-byte AoS entries
// (most of which is the Info payload, only needed on a hit) through
// the cache. The row base index is computed once per touch and every
// way access is a single-level indexed load off it.
type Table struct {
	geo Geometry
	// Parallel per-way columns, row-major (index row*Ways+way).
	valid  []bool
	tag    []uint64
	offset []uint16 // branch offset within the line, in bytes
	stamp  []uint64 // LRU timestamp, larger = more recent
	info   []Info
	tick     uint64
	stats    Stats
	observer func(Event)
	// searchBuf/regionBuf are the reusable SearchLine/SearchRegion
	// result buffers; searches run every cycle, so returning a fresh
	// slice each time would dominate the simulator's allocation
	// profile.
	searchBuf []Hit
	regionBuf []Info
}

// SetObserver registers a white-box observer of every table write
// (verification harness use, §VII).
func (t *Table) SetObserver(fn func(Event)) { t.observer = fn }

func (t *Table) emit(kind EventKind, row, way int, info Info) {
	if t.observer != nil {
		t.observer(Event{Kind: kind, Row: row, Way: way, Info: info})
	}
}

// New returns an empty table with the given geometry.
func New(geo Geometry) *Table {
	if err := geo.validate(); err != nil {
		panic(err)
	}
	n := geo.Rows() * geo.Ways
	return &Table{
		geo:    geo,
		valid:  make([]bool, n),
		tag:    make([]uint64, n),
		offset: make([]uint16, n),
		stamp:  make([]uint64, n),
		info:   make([]Info, n),
	}
}

// Geometry returns the table geometry.
func (t *Table) Geometry() Geometry { return t.geo }

// Stats returns a copy of the event counters.
func (t *Table) Stats() Stats { return t.stats }

// RegisterMetrics registers the table's live counters plus an
// occupancy gauge under prefix.
func (t *Table) RegisterMetrics(r *metrics.Registry, prefix string) {
	t.stats.Register(r, prefix)
	r.Gauge(prefix+".occupancy", func() float64 { return float64(t.Occupancy()) })
}

func (t *Table) row(addr zarch.Addr) int {
	return int(uint64(addr) >> t.geo.LineShift & uint64(t.geo.Rows()-1))
}

func (t *Table) tagOf(addr zarch.Addr) uint64 {
	return hashx.Fold(uint64(addr)>>(t.geo.LineShift+t.geo.RowBits), t.geo.TagBits)
}

func (t *Table) offsetOf(addr zarch.Addr) uint16 {
	return uint16(uint64(addr) & uint64(t.geo.LineBytes()-1))
}

// SearchLine returns every valid tag-matching branch in the row of
// line, sorted by offset (ascending), with addresses reconstructed from
// the searched line. The matched ways are touched as most recently
// used. The returned slice aliases an internal buffer and is only
// valid until the next SearchLine call on this table.
func (t *Table) SearchLine(line zarch.Addr) []Hit {
	t.stats.Searches++
	line = t.geo.Line(line)
	base := t.row(line) * t.geo.Ways
	tag := t.tagOf(line)
	if t.searchBuf == nil {
		t.searchBuf = make([]Hit, 0, t.geo.Ways)
	}
	hits := t.searchBuf[:0]
	t.tick++
	// Batched row touch: one pass over the row's valid+tag columns
	// finds every matching way; the wide Info payload is only loaded
	// for hits.
	for w := 0; w < t.geo.Ways; w++ {
		i := base + w
		if !t.valid[i] || t.tag[i] != tag {
			continue
		}
		info := t.info[i]
		rec := line + zarch.Addr(t.offset[i])
		aliased := info.Addr != rec
		info.Addr = rec
		if aliased {
			t.stats.AliasedHits++
		}
		t.stamp[i] = t.tick
		hits = append(hits, Hit{Info: info, Way: w, Aliased: aliased})
	}
	if len(hits) > 0 {
		t.stats.SearchHits++
		// Insertion sort by offset: hits are bounded by associativity
		// (a handful), and sort.Slice's closure would allocate.
		mask := uint64(t.geo.LineBytes() - 1)
		for i := 1; i < len(hits); i++ {
			for j := i; j > 0 && uint64(hits[j].Addr)&mask < uint64(hits[j-1].Addr)&mask; j-- {
				hits[j], hits[j-1] = hits[j-1], hits[j]
			}
		}
	}
	t.searchBuf = hits
	return hits
}

// Lookup finds the entry matching addr exactly (row, tag and offset),
// without touching LRU. Used by the write pipeline's read-before-write
// duplicate check and by completion updates.
func (t *Table) Lookup(addr zarch.Addr) (Info, bool) {
	t.stats.Lookups++
	base := t.row(addr) * t.geo.Ways
	tag := t.tagOf(addr)
	off := t.offsetOf(addr)
	for w := 0; w < t.geo.Ways; w++ {
		i := base + w
		if t.valid[i] && t.tag[i] == tag && t.offset[i] == off {
			t.stats.LookupHits++
			info := t.info[i]
			info.Addr = addr
			return info, true
		}
	}
	return Info{}, false
}

// Update applies fn to the entry matching addr, if present. Returns
// whether an entry was found. Does not touch LRU (completion updates
// should not refresh recency in this model).
func (t *Table) Update(addr zarch.Addr, fn func(*Info)) bool {
	base := t.row(addr) * t.geo.Ways
	tag := t.tagOf(addr)
	off := t.offsetOf(addr)
	for w := 0; w < t.geo.Ways; w++ {
		i := base + w
		if t.valid[i] && t.tag[i] == tag && t.offset[i] == off {
			fn(&t.info[i])
			t.emit(EvUpdate, t.row(addr), w, t.info[i])
			return true
		}
	}
	return false
}

// Install writes info into the table. If an entry for the same address
// already exists its payload is replaced (counted as an update, the
// dedup path of §IV). Otherwise an invalid way or the LRU way is used;
// the victim, if any, is returned so a BTBP configuration can capture
// it.
func (t *Table) Install(info Info) (victim Info, evicted bool) {
	t.stats.Installs++
	rowIdx := t.row(info.Addr)
	base := rowIdx * t.geo.Ways
	tag := t.tagOf(info.Addr)
	off := t.offsetOf(info.Addr)
	t.tick++
	// Duplicate check (read before write).
	for w := 0; w < t.geo.Ways; w++ {
		i := base + w
		if t.valid[i] && t.tag[i] == tag && t.offset[i] == off {
			t.info[i] = info
			t.stamp[i] = t.tick
			t.stats.Updates++
			t.emit(EvUpdate, rowIdx, w, info)
			return Info{}, false
		}
	}
	// Free way?
	for w := 0; w < t.geo.Ways; w++ {
		i := base + w
		if !t.valid[i] {
			t.set(i, tag, off, info)
			t.emit(EvInstall, rowIdx, w, info)
			return Info{}, false
		}
	}
	// Evict LRU.
	lru := 0
	for w := 1; w < t.geo.Ways; w++ {
		if t.stamp[base+w] < t.stamp[base+lru] {
			lru = w
		}
	}
	victim = t.info[base+lru]
	t.emit(EvEvict, rowIdx, lru, victim)
	t.set(base+lru, tag, off, info)
	t.stats.Evictions++
	t.emit(EvInstall, rowIdx, lru, info)
	return victim, true
}

// set writes one logical entry across the columns at flat index i.
func (t *Table) set(i int, tag uint64, off uint16, info Info) {
	t.valid[i] = true
	t.tag[i] = tag
	t.offset[i] = off
	t.stamp[i] = t.tick
	t.info[i] = info
}

// Invalidate removes the entry matching addr, reporting whether one
// existed. Used when the IDU detects a bad branch prediction (§IV).
func (t *Table) Invalidate(addr zarch.Addr) bool {
	base := t.row(addr) * t.geo.Ways
	tag := t.tagOf(addr)
	off := t.offsetOf(addr)
	for w := 0; w < t.geo.Ways; w++ {
		i := base + w
		if t.valid[i] && t.tag[i] == tag && t.offset[i] == off {
			t.valid[i] = false
			t.stats.Invalidates++
			t.emit(EvInvalidate, t.row(addr), w, t.info[i])
			return true
		}
	}
	return false
}

// LRUVictim returns the next-to-be-evicted entry of line's row, if the
// row is full. The periodic refresh mechanism writes this entry back to
// the BTB2 (§III).
func (t *Table) LRUVictim(line zarch.Addr) (Info, bool) {
	base := t.row(line) * t.geo.Ways
	lru, found := 0, true
	for w := 0; w < t.geo.Ways; w++ {
		if !t.valid[base+w] {
			found = false
			break
		}
		if t.stamp[base+w] < t.stamp[base+lru] {
			lru = w
		}
	}
	if !found {
		return Info{}, false
	}
	return t.info[base+lru], true
}

// SearchRegion scans consecutive lines starting at from, collecting up
// to maxBranches tag-matching entries; it models the bulk BTB2 search
// that can return "up to 128 branches" (§III). Reconstructed addresses
// use the searched lines. LRU is not touched (the BTB2's own recency is
// not modeled beyond its LRU on install). The returned slice aliases an
// internal buffer and is only valid until the next SearchRegion call.
func (t *Table) SearchRegion(from zarch.Addr, lines, maxBranches int) []Info {
	out := t.regionBuf[:0]
	line := t.geo.Line(from)
	for l := 0; l < lines && len(out) < maxBranches; l++ {
		base := t.row(line) * t.geo.Ways
		tag := t.tagOf(line)
		for w := 0; w < t.geo.Ways; w++ {
			i := base + w
			if !t.valid[i] || t.tag[i] != tag {
				continue
			}
			info := t.info[i]
			info.Addr = line + zarch.Addr(t.offset[i])
			out = append(out, info)
			if len(out) >= maxBranches {
				break
			}
		}
		line += zarch.Addr(t.geo.LineBytes())
	}
	// Insertion sort by address: the scan appends in ascending line
	// order, so the slice is already nearly sorted (only within-row way
	// order can be off), and sort.Slice's closure would allocate.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Addr < out[j-1].Addr; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	t.regionBuf = out
	return out
}

// Occupancy returns the number of valid entries (for tests and the
// verification harness).
func (t *Table) Occupancy() int {
	n := 0
	for _, v := range t.valid {
		if v {
			n++
		}
	}
	return n
}

// Reset invalidates every entry and clears statistics.
func (t *Table) Reset() {
	clear(t.valid)
	clear(t.tag)
	clear(t.offset)
	clear(t.stamp)
	clear(t.info)
	t.tick = 0
	t.stats = Stats{}
}
