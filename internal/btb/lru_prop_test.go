package btb

import (
	"math/rand"
	"testing"

	"zbp/internal/zarch"
)

// TestLRUVictimProperty drives a random Install/SearchLine/Invalidate
// sequence against one row of a small table while mirroring recency in
// a flat model, and asserts the structural LRU contract: whenever the
// table evicts or names a victim, that entry is one of the
// least-recently-touched residents (search hits and installs touch;
// Lookup and Update do not). Ties are legal — one SearchLine touches
// every hit in the same cycle — so the assertion is on the victim's
// touch stamp, not its identity.
func TestLRUVictimProperty(t *testing.T) {
	geo := Geometry{RowBits: 1, Ways: 4, TagBits: 20, LineShift: 6}
	tbl := New(geo)

	// Candidate branches all land in row 0 (bit 6 clear) across five
	// distinct lines with two offsets each, so the row sees capacity
	// pressure, duplicate installs, and multi-hit line searches.
	const base = zarch.Addr(0x4_0000)
	var addrs []zarch.Addr
	var lines []zarch.Addr
	for i := 0; i < 5; i++ {
		line := base + zarch.Addr(i)*2*zarch.Addr(geo.LineBytes())
		lines = append(lines, line)
		addrs = append(addrs, line+6, line+40)
	}

	// Model: per-address last-touch stamp for resident entries.
	touched := map[zarch.Addr]uint64{}
	var tick uint64
	minStamp := func() (zarch.Addr, uint64) {
		var at zarch.Addr
		best := ^uint64(0)
		for a, s := range touched {
			if s < best {
				best, at = s, a
			}
		}
		return at, best
	}

	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // Install
			a := addrs[rng.Intn(len(addrs))]
			tick++
			victim, evicted := tbl.Install(Info{Addr: a, Len: 4, Kind: zarch.KindCondRel, Target: a + 64})
			_, resident := touched[a]
			switch {
			case resident:
				if evicted {
					t.Fatalf("step %d: duplicate install of %#x evicted %#x", step, a, victim.Addr)
				}
			case len(touched) < geo.Ways:
				if evicted {
					t.Fatalf("step %d: install into non-full row evicted %#x", step, victim.Addr)
				}
			default:
				if !evicted {
					t.Fatalf("step %d: install into full row did not evict", step)
				}
				vStamp, ok := touched[victim.Addr]
				if !ok {
					t.Fatalf("step %d: evicted %#x which the model says is not resident", step, victim.Addr)
				}
				if _, min := minStamp(); vStamp != min {
					t.Fatalf("step %d: evicted %#x touched at %d, but least-recently-touched stamp is %d",
						step, victim.Addr, vStamp, min)
				}
				delete(touched, victim.Addr)
			}
			touched[a] = tick
		case op < 8: // SearchLine: touches every hit with one stamp
			line := lines[rng.Intn(len(lines))]
			hits := tbl.SearchLine(line)
			want := 0
			for a := range touched {
				if geo.Line(a) == line {
					want++
				}
			}
			if len(hits) != want {
				t.Fatalf("step %d: SearchLine(%#x) returned %d hits, model has %d residents on that line",
					step, line, len(hits), want)
			}
			tick++
			for _, h := range hits {
				if geo.Line(h.Addr) != line {
					t.Fatalf("step %d: hit %#x outside searched line %#x", step, h.Addr, line)
				}
				touched[h.Addr] = tick
			}
		default: // Invalidate: frees a way without touching others
			a := addrs[rng.Intn(len(addrs))]
			_, resident := touched[a]
			if got := tbl.Invalidate(a); got != resident {
				t.Fatalf("step %d: Invalidate(%#x) = %v, model resident = %v", step, a, got, resident)
			}
			delete(touched, a)
		}

		// Residency cross-check via Lookup, which does not touch LRU.
		for _, a := range addrs {
			if _, hit := tbl.Lookup(a); hit != (touched[a] != 0) {
				t.Fatalf("step %d: Lookup(%#x) = %v disagrees with model", step, a, touched[a] != 0)
			}
		}
		// LRUVictim must name a least-recently-touched entry iff the row
		// is full, and must not perturb recency (checked implicitly by
		// the model staying in sync on later steps).
		info, full := tbl.LRUVictim(base)
		if full != (len(touched) == geo.Ways) {
			t.Fatalf("step %d: LRUVictim full=%v, model residents=%d/%d", step, full, len(touched), geo.Ways)
		}
		if full {
			vStamp, ok := touched[info.Addr]
			if !ok {
				t.Fatalf("step %d: LRUVictim %#x not resident in model", step, info.Addr)
			}
			if _, min := minStamp(); vStamp != min {
				t.Fatalf("step %d: LRUVictim %#x touched at %d, least-recently-touched stamp is %d",
					step, info.Addr, vStamp, min)
			}
		}
	}
}
