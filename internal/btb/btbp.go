package btb

import "zbp/internal/zarch"

// Preload is the BTBP, the preload/filter/victim buffer used before
// z15 (paper §III): all BTB2 hit transfers were written here first,
// predictions were made out of both BTB1 and BTBP, content moved into
// the BTB1 only after a qualified BTBP hit, and BTB1 victims were
// captured here. z15 removed it, spending the area on a larger BTB1;
// it exists in this package so the zEC12/z13/z14 baseline
// configurations are faithful.
//
// The BTBP is modeled as a small fully-associative LRU buffer.
type Preload struct {
	entries []pentry
	tick    uint64
	stats   PreloadStats
	// searchBuf is the reusable SearchLine result buffer (searched
	// every cycle on pre-z15 configurations).
	searchBuf []Info
}

type pentry struct {
	valid bool
	info  Info
	stamp uint64
}

// PreloadStats counts BTBP events.
type PreloadStats struct {
	Installs int64
	Hits     int64
	Promotes int64
}

// NewPreload returns a BTBP with the given capacity.
func NewPreload(capacity int) *Preload {
	if capacity <= 0 {
		panic("btb: BTBP capacity must be positive")
	}
	return &Preload{entries: make([]pentry, capacity)}
}

// Stats returns a copy of the counters.
func (p *Preload) Stats() PreloadStats { return p.stats }

// Install writes info, replacing a same-address entry or the LRU one.
// The displaced victim, if any, is returned: in the semi-exclusive
// pre-z15 designs, BTBP victims flow onward into the BTB2.
func (p *Preload) Install(info Info) (victim Info, evicted bool) {
	p.stats.Installs++
	p.tick++
	lru := 0
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.info.Addr == info.Addr {
			e.info = info
			e.stamp = p.tick
			return Info{}, false
		}
		if !e.valid {
			*e = pentry{valid: true, info: info, stamp: p.tick}
			return Info{}, false
		}
		if e.stamp < p.entries[lru].stamp {
			lru = i
		}
	}
	victim = p.entries[lru].info
	p.entries[lru] = pentry{valid: true, info: info, stamp: p.tick}
	return victim, true
}

// SearchLine returns the branches in the given line (by true address;
// the BTBP is small enough that the model gives it full tags), sorted
// by address. The returned slice aliases an internal buffer and is
// only valid until the next SearchLine call.
func (p *Preload) SearchLine(line zarch.Addr, lineBytes int) []Info {
	base := line &^ zarch.Addr(lineBytes-1)
	out := p.searchBuf[:0]
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.info.Addr >= base && e.info.Addr < base+zarch.Addr(lineBytes) {
			out = append(out, e.info)
		}
	}
	if len(out) > 1 {
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j].Addr < out[j-1].Addr; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
	}
	if len(out) > 0 {
		p.stats.Hits++
	}
	p.searchBuf = out
	return out
}

// Promote removes and returns the entry for addr, if present: a
// qualified BTBP hit moves the branch into the BTB1.
func (p *Preload) Promote(addr zarch.Addr) (Info, bool) {
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.info.Addr == addr {
			e.valid = false
			p.stats.Promotes++
			return e.info, true
		}
	}
	return Info{}, false
}

// Invalidate removes the entry for addr, if present, without counting
// a promote: the IDU found the branch to be bogus (§IV bad prediction).
func (p *Preload) Invalidate(addr zarch.Addr) bool {
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.info.Addr == addr {
			e.valid = false
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid entries.
func (p *Preload) Occupancy() int {
	n := 0
	for i := range p.entries {
		if p.entries[i].valid {
			n++
		}
	}
	return n
}

// Stage is the staging queue between the BTB2 and the BTB1 write port
// (paper §III): BTB2 hits are buffered here and drained one per cycle
// through the read-before-write duplicate check. It is "sized to handle
// the vast statistical majority of BTB2 branch hit transfers"; overflow
// is dropped and counted.
type Stage struct {
	buf      []Info
	capacity int
	drops    int64
	peak     int
}

// NewStage returns a staging queue with the given capacity.
func NewStage(capacity int) *Stage {
	if capacity <= 0 {
		panic("btb: stage capacity must be positive")
	}
	return &Stage{capacity: capacity}
}

// Push enqueues info, dropping it (and counting the drop) when full.
func (s *Stage) Push(info Info) {
	if len(s.buf) >= s.capacity {
		s.drops++
		return
	}
	s.buf = append(s.buf, info)
	if len(s.buf) > s.peak {
		s.peak = len(s.buf)
	}
}

// Pop dequeues the oldest entry.
func (s *Stage) Pop() (Info, bool) {
	if len(s.buf) == 0 {
		return Info{}, false
	}
	info := s.buf[0]
	copy(s.buf, s.buf[1:])
	s.buf = s.buf[:len(s.buf)-1]
	return info, true
}

// Remove discards every queued transfer for addr (an IDU-detected bad
// prediction must not re-enter the BTB1 from an in-flight backfill).
func (s *Stage) Remove(addr zarch.Addr) {
	kept := s.buf[:0]
	for _, info := range s.buf {
		if info.Addr != addr {
			kept = append(kept, info)
		}
	}
	s.buf = kept
}

// Len returns the current queue depth.
func (s *Stage) Len() int { return len(s.buf) }

// Drops returns how many transfers were lost to a full queue.
func (s *Stage) Drops() int64 { return s.drops }

// Peak returns the maximum depth observed.
func (s *Stage) Peak() int { return s.peak }
