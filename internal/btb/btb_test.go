package btb

import (
	"testing"
	"testing/quick"

	"zbp/internal/sat"
	"zbp/internal/zarch"
)

var testGeo = Geometry{RowBits: 11, Ways: 8, TagBits: 16, LineShift: 6}

func info(addr zarch.Addr) Info {
	return Info{Addr: addr, Len: 4, Kind: zarch.KindCondRel,
		Target: addr + 0x40, BHT: sat.WeakT, Skoot: SkootUnknown}
}

func TestGeometry(t *testing.T) {
	if testGeo.Rows() != 2048 || testGeo.Capacity() != 16384 || testGeo.LineBytes() != 64 {
		t.Fatalf("z15 geometry wrong: %d rows, %d cap", testGeo.Rows(), testGeo.Capacity())
	}
	if testGeo.Line(0x12345) != 0x12340 {
		t.Errorf("Line = %s", testGeo.Line(0x12345))
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted invalid geometry")
		}
	}()
	New(Geometry{})
}

func TestInstallSearchLine(t *testing.T) {
	tb := New(testGeo)
	a1, a2 := zarch.Addr(0x10008), zarch.Addr(0x10030)
	tb.Install(info(a1))
	tb.Install(info(a2))
	hits := tb.SearchLine(0x10000)
	if len(hits) != 2 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0].Addr != a1 || hits[1].Addr != a2 {
		t.Errorf("hit order: %s, %s", hits[0].Addr, hits[1].Addr)
	}
	if hits[0].Aliased || hits[1].Aliased {
		t.Error("unexpected aliasing")
	}
	// Other lines see nothing.
	if got := tb.SearchLine(0x20000); len(got) != 0 {
		t.Errorf("foreign line hits = %d", len(got))
	}
}

func TestSearchLineNormalizesAddr(t *testing.T) {
	tb := New(testGeo)
	tb.Install(info(0x10008))
	// Searching mid-line must behave as searching the line base.
	hits := tb.SearchLine(0x10020)
	if len(hits) != 1 || hits[0].Addr != 0x10008 {
		t.Fatalf("mid-line search: %+v", hits)
	}
}

func TestInstallDedup(t *testing.T) {
	tb := New(testGeo)
	tb.Install(info(0x10008))
	i2 := info(0x10008)
	i2.Target = 0x99900
	if _, ev := tb.Install(i2); ev {
		t.Error("duplicate install evicted")
	}
	got, ok := tb.Lookup(0x10008)
	if !ok || got.Target != 0x99900 {
		t.Errorf("payload not replaced: %+v ok=%v", got, ok)
	}
	if tb.Stats().Updates != 1 {
		t.Errorf("Updates = %d", tb.Stats().Updates)
	}
	if tb.Occupancy() != 1 {
		t.Errorf("occupancy = %d", tb.Occupancy())
	}
}

func TestEvictionLRU(t *testing.T) {
	geo := Geometry{RowBits: 4, Ways: 2, TagBits: 16, LineShift: 6}
	tb := New(geo)
	// Three branches in the same row (line stride = rows*linebytes).
	stride := zarch.Addr(geo.Rows() * geo.LineBytes())
	a, b, c := zarch.Addr(0x10000), zarch.Addr(0x10000)+stride, zarch.Addr(0x10000)+2*stride
	tb.Install(info(a))
	tb.Install(info(b))
	// Touch a so b becomes LRU.
	tb.SearchLine(a)
	victim, ev := tb.Install(info(c))
	if !ev {
		t.Fatal("no eviction from full row")
	}
	if victim.Addr != b {
		t.Errorf("victim = %s, want %s", victim.Addr, b)
	}
	if _, ok := tb.Lookup(a); !ok {
		t.Error("recently used entry evicted")
	}
}

func TestPartialTagAliasing(t *testing.T) {
	// With a tiny tag, two different lines mapping to the same row and
	// tag must alias, and the hit must report the searched address.
	geo := Geometry{RowBits: 2, Ways: 2, TagBits: 1, LineShift: 6}
	tb := New(geo)
	base := zarch.Addr(0x10008)
	tb.Install(info(base))
	found := false
	stride := zarch.Addr(geo.Rows() * geo.LineBytes())
	for k := zarch.Addr(1); k < 64 && !found; k++ {
		line := (base + k*stride).Line64()
		hits := tb.SearchLine(line)
		for _, h := range hits {
			if h.Aliased {
				if h.Addr.Line64() != line {
					t.Fatalf("aliased hit reports %s outside searched line %s", h.Addr, line)
				}
				found = true
			}
		}
	}
	if !found {
		t.Error("no aliasing with 1-bit tags; partial tagging is not modeled")
	}
	if tb.Stats().AliasedHits == 0 {
		t.Error("AliasedHits not counted")
	}
}

func TestUpdateInvalidate(t *testing.T) {
	tb := New(testGeo)
	tb.Install(info(0x10008))
	if !tb.Update(0x10008, func(i *Info) { i.Bidirectional = true }) {
		t.Fatal("Update missed existing entry")
	}
	got, _ := tb.Lookup(0x10008)
	if !got.Bidirectional {
		t.Error("Update not applied")
	}
	if tb.Update(0x55500, func(*Info) {}) {
		t.Error("Update hit a missing entry")
	}
	if !tb.Invalidate(0x10008) {
		t.Fatal("Invalidate missed")
	}
	if _, ok := tb.Lookup(0x10008); ok {
		t.Error("entry survived Invalidate")
	}
	if tb.Invalidate(0x10008) {
		t.Error("double Invalidate succeeded")
	}
}

func TestLRUVictimOnlyWhenFull(t *testing.T) {
	geo := Geometry{RowBits: 4, Ways: 2, TagBits: 16, LineShift: 6}
	tb := New(geo)
	a := zarch.Addr(0x10000)
	tb.Install(info(a))
	if _, ok := tb.LRUVictim(a); ok {
		t.Error("LRUVictim on non-full row")
	}
	stride := zarch.Addr(geo.Rows() * geo.LineBytes())
	tb.Install(info(a + stride))
	tb.SearchLine(a + stride) // make the second entry MRU
	v, ok := tb.LRUVictim(a)
	if !ok || v.Addr != a {
		t.Errorf("LRUVictim = %+v, %v", v, ok)
	}
}

func TestSearchRegion(t *testing.T) {
	tb := New(testGeo)
	for i := 0; i < 10; i++ {
		tb.Install(info(zarch.Addr(0x40000 + i*0x40)))
	}
	got := tb.SearchRegion(0x40000, 5, 128)
	if len(got) != 5 {
		t.Fatalf("region found %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Addr <= got[i-1].Addr {
			t.Fatal("region not sorted")
		}
	}
	capped := tb.SearchRegion(0x40000, 10, 3)
	if len(capped) != 3 {
		t.Errorf("maxBranches not honored: %d", len(capped))
	}
}

func TestResetAndOccupancy(t *testing.T) {
	tb := New(testGeo)
	for i := 0; i < 100; i++ {
		tb.Install(info(zarch.Addr(0x10000 + i*0x40)))
	}
	if tb.Occupancy() != 100 {
		t.Errorf("occupancy = %d", tb.Occupancy())
	}
	tb.Reset()
	if tb.Occupancy() != 0 || tb.Stats().Installs != 0 {
		t.Error("Reset incomplete")
	}
}

func TestInstallLookupProperty(t *testing.T) {
	// Installing then looking up (without interference) always hits and
	// round-trips the payload.
	tb := New(testGeo)
	f := func(raw uint64) bool {
		addr := zarch.Addr(raw&^1 | 0x1000)
		in := info(addr)
		tb.Install(in)
		got, ok := tb.Lookup(addr)
		return ok && got.Target == in.Target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPreloadBasics(t *testing.T) {
	p := NewPreload(4)
	p.Install(info(0x10008))
	p.Install(info(0x10030))
	hits := p.SearchLine(0x10000, 64)
	if len(hits) != 2 || hits[0].Addr != 0x10008 {
		t.Fatalf("BTBP search: %+v", hits)
	}
	got, ok := p.Promote(0x10008)
	if !ok || got.Addr != 0x10008 {
		t.Fatal("Promote failed")
	}
	if _, ok := p.Promote(0x10008); ok {
		t.Error("double Promote")
	}
	if p.Occupancy() != 1 {
		t.Errorf("occupancy = %d", p.Occupancy())
	}
}

func TestPreloadLRUReplacement(t *testing.T) {
	p := NewPreload(2)
	p.Install(info(0x100))
	p.Install(info(0x200))
	p.SearchLine(0x100, 64) // no LRU effect, but exercise
	p.Install(info(0x300))  // evicts LRU (0x100)
	if _, ok := p.Promote(0x100); ok {
		t.Error("LRU entry survived")
	}
	if _, ok := p.Promote(0x300); !ok {
		t.Error("new entry missing")
	}
}

func TestPreloadDedup(t *testing.T) {
	p := NewPreload(4)
	p.Install(info(0x100))
	i2 := info(0x100)
	i2.Target = 0x9000
	p.Install(i2)
	if p.Occupancy() != 1 {
		t.Errorf("dup install occupancy = %d", p.Occupancy())
	}
	got, _ := p.Promote(0x100)
	if got.Target != 0x9000 {
		t.Error("dup install did not update payload")
	}
}

func TestStageFIFO(t *testing.T) {
	s := NewStage(3)
	s.Push(info(0x100))
	s.Push(info(0x200))
	s.Push(info(0x300))
	s.Push(info(0x400)) // dropped
	if s.Drops() != 1 || s.Len() != 3 || s.Peak() != 3 {
		t.Fatalf("drops=%d len=%d peak=%d", s.Drops(), s.Len(), s.Peak())
	}
	got, ok := s.Pop()
	if !ok || got.Addr != 0x100 {
		t.Fatal("FIFO order broken")
	}
	s.Pop()
	s.Pop()
	if _, ok := s.Pop(); ok {
		t.Error("Pop on empty stage")
	}
}
