// Package history implements the Global Path Vector (GPV), the taken-
// branch path history used throughout the z15 predictor (paper §V).
//
// As each taken branch is encountered during prediction, select bits of
// its instruction address are hashed down to a 2-bit "branch GPV" which
// is shifted into the main vector; the oldest branch's bits fall out.
// z13 tracked the last 9 taken branches (18 bits); z14 and z15 track 17
// (34 bits). Not-taken predictions do not participate, because the
// search pipeline only re-indexes on taken branches.
package history

import (
	"zbp/internal/hashx"
	"zbp/internal/zarch"
)

// BitsPerBranch is the width of one branch's hashed contribution.
const BitsPerBranch = 2

// Depths of the GPV across generations.
const (
	DepthZ13 = 9  // z13 and earlier: 9 taken branches (18 bits)
	DepthZ15 = 17 // z14/z15: 17 taken branches (34 bits)
)

// GPV is a fixed-depth taken-branch path history. The zero value is an
// empty history of depth 0; use New.
type GPV struct {
	bits  uint64
	depth int
}

// New returns an empty GPV tracking the given number of taken branches.
// depth must be in [1, 32].
func New(depth int) GPV {
	if depth < 1 || depth > 32 {
		panic("history: GPV depth out of range")
	}
	return GPV{depth: depth}
}

// Depth returns the number of taken branches tracked.
func (g GPV) Depth() int { return g.depth }

// Width returns the total number of history bits.
func (g GPV) Width() int { return g.depth * BitsPerBranch }

// mask covers the live history bits.
func (g GPV) mask() uint64 { return uint64(1)<<uint(g.Width()) - 1 }

// BranchGPV hashes a taken branch's instruction address down to its
// 2-bit contribution.
func BranchGPV(addr zarch.Addr) uint64 {
	// Select bits above the halfword bit; fold them to 2 bits. Using
	// low-ish address bits keeps nearby branches distinguishable, as the
	// hardware does.
	return hashx.Fold(uint64(addr)>>1, BitsPerBranch)
}

// Push shifts the 2-bit hash of a taken branch's address into the
// history, returning the updated GPV. GPV is a value type so the GPQ
// can snapshot it per prediction for cheap restart recovery.
func (g GPV) Push(addr zarch.Addr) GPV {
	g.bits = (g.bits<<BitsPerBranch | BranchGPV(addr)) & g.mask()
	return g
}

// Bits returns the raw history bits (youngest branch in the low bits).
func (g GPV) Bits() uint64 { return g.bits }

// Bit returns history bit i (0 = youngest).
func (g GPV) Bit(i int) bool {
	if i < 0 || i >= g.Width() {
		panic("history: GPV bit index out of range")
	}
	return g.bits>>uint(i)&1 == 1
}

// Recent returns the low-order bits covering the most recent n taken
// branches. n must not exceed the depth. This is how the short TAGE
// table's 9-branch index is extracted from the full 17-branch vector.
func (g GPV) Recent(n int) uint64 {
	if n < 0 || n > g.depth {
		panic("history: Recent depth out of range")
	}
	return g.bits & (uint64(1)<<uint(n*BitsPerBranch) - 1)
}

// FoldIndex folds the most recent n branches of history together with
// the branch address into a table index of the given bit width.
func (g GPV) FoldIndex(addr zarch.Addr, n int, width uint) uint64 {
	h := g.Recent(n)
	return hashx.Fold(h^uint64(addr)>>1^uint64(addr)>>7, width)
}

// FoldTag folds history and address into a partial tag of the given
// width, using a different bit mix than FoldIndex so index and tag
// aliasing are decorrelated.
func (g GPV) FoldTag(addr zarch.Addr, n int, width uint) uint64 {
	h := g.Recent(n)
	return hashx.Fold(h*0x9e37&^1^uint64(addr)>>2^h>>3, width)
}
