package history

import (
	"testing"
	"testing/quick"

	"zbp/internal/zarch"
)

func TestNewDepths(t *testing.T) {
	g := New(DepthZ15)
	if g.Depth() != 17 || g.Width() != 34 {
		t.Errorf("z15 GPV depth/width = %d/%d", g.Depth(), g.Width())
	}
	g9 := New(DepthZ13)
	if g9.Width() != 18 {
		t.Errorf("z13 GPV width = %d", g9.Width())
	}
}

func TestNewPanics(t *testing.T) {
	for _, d := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", d)
				}
			}()
			New(d)
		}()
	}
}

func TestPushShiftsOutOldest(t *testing.T) {
	g := New(3)
	addrs := []zarch.Addr{0x1000, 0x2002, 0x3004, 0x4006}
	for _, a := range addrs {
		g = g.Push(a)
	}
	// After 4 pushes into a depth-3 history, only the last 3 remain.
	want := (BranchGPV(0x2002)<<4 | BranchGPV(0x3004)<<2 | BranchGPV(0x4006)) & 0x3f
	if g.Bits() != want {
		t.Errorf("bits = %#x, want %#x", g.Bits(), want)
	}
}

func TestPushValueSemantics(t *testing.T) {
	g := New(5)
	g2 := g.Push(0x1000)
	if g.Bits() != 0 {
		t.Error("Push mutated the receiver")
	}
	if g2.Bits() == 0 && BranchGPV(0x1000) != 0 {
		t.Error("Push result lost the update")
	}
}

func TestBitsStayInWidth(t *testing.T) {
	f := func(addrs []uint64) bool {
		g := New(DepthZ15)
		for _, a := range addrs {
			g = g.Push(zarch.Addr(a &^ 1))
		}
		return g.Bits()>>uint(g.Width()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecentSubset(t *testing.T) {
	g := New(DepthZ15)
	for i := 0; i < 40; i++ {
		g = g.Push(zarch.Addr(0x1000 + i*6))
	}
	r9 := g.Recent(9)
	if r9 != g.Bits()&(1<<18-1) {
		t.Errorf("Recent(9) = %#x", r9)
	}
	if g.Recent(17) != g.Bits() {
		t.Error("Recent(depth) != Bits()")
	}
	if g.Recent(0) != 0 {
		t.Error("Recent(0) != 0")
	}
}

func TestRecentPanics(t *testing.T) {
	g := New(9)
	defer func() {
		if recover() == nil {
			t.Error("Recent(10) on depth-9 GPV did not panic")
		}
	}()
	g.Recent(10)
}

func TestBit(t *testing.T) {
	g := New(4)
	g = g.Push(0x2) // BranchGPV(0x2) = Fold(1,2) = 1
	if BranchGPV(0x2) != 1 {
		t.Skip("hash changed; test assumption invalid")
	}
	if !g.Bit(0) || g.Bit(1) {
		t.Errorf("bits after push = %#x", g.Bits())
	}
	defer func() {
		if recover() == nil {
			t.Error("Bit(999) did not panic")
		}
	}()
	g.Bit(999)
}

func TestPathSensitivity(t *testing.T) {
	// Different taken-branch paths must (usually) give different GPVs:
	// that is the entire point of path history.
	a := New(DepthZ15)
	b := New(DepthZ15)
	for i := 0; i < 17; i++ {
		a = a.Push(zarch.Addr(0x1000 + i*4))
		b = b.Push(zarch.Addr(0x9000 + i*4))
	}
	if a.Bits() == b.Bits() {
		t.Error("distinct paths hashed to identical GPVs")
	}
}

func TestFoldIndexWidthAndSpread(t *testing.T) {
	g := New(DepthZ15)
	seen := map[uint64]bool{}
	for i := 0; i < 512; i++ {
		g = g.Push(zarch.Addr(0x1000 + i*6))
		idx := g.FoldIndex(0x4000, 9, 9)
		if idx >= 512 {
			t.Fatalf("FoldIndex out of width: %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) < 64 {
		t.Errorf("FoldIndex spread: only %d distinct of 512", len(seen))
	}
}

func TestFoldTagDiffersFromIndex(t *testing.T) {
	g := New(DepthZ15)
	for i := 0; i < 17; i++ {
		g = g.Push(zarch.Addr(0x1000 + i*4))
	}
	same := 0
	for i := 0; i < 256; i++ {
		a := zarch.Addr(0x8000 + i*64)
		if g.FoldIndex(a, 9, 8) == g.FoldTag(a, 9, 8) {
			same++
		}
	}
	if same > 40 { // would be ~1/256 each if independent; allow slack
		t.Errorf("index and tag functions coincide on %d/256 addresses", same)
	}
}

func TestShortLongDiverge(t *testing.T) {
	// Two paths identical in the last 9 branches but different before
	// must produce the same short index and (usually) different long
	// index -- the mechanism that lets the long TAGE table disambiguate.
	a, b := New(DepthZ15), New(DepthZ15)
	for i := 0; i < 8; i++ {
		a = a.Push(zarch.Addr(0x1000 + i*4))
		b = b.Push(zarch.Addr(0x7000 + i*4))
	}
	for i := 0; i < 9; i++ {
		shared := zarch.Addr(0x3000 + i*4)
		a = a.Push(shared)
		b = b.Push(shared)
	}
	pc := zarch.Addr(0x5000)
	if a.FoldIndex(pc, 9, 9) != b.FoldIndex(pc, 9, 9) {
		t.Error("short index differs despite identical recent history")
	}
	if a.FoldIndex(pc, 17, 9) == b.FoldIndex(pc, 17, 9) {
		t.Error("long index identical despite different old history")
	}
}
