package history

import (
	"math/rand"
	"testing"

	"zbp/internal/zarch"
)

// randAddrs returns n random halfword-aligned branch addresses.
func randAddrs(rng *rand.Rand, n int) []zarch.Addr {
	out := make([]zarch.Addr, n)
	for i := range out {
		out[i] = zarch.Addr(rng.Uint64() &^ 1)
	}
	return out
}

func pushAll(g GPV, addrs []zarch.Addr) GPV {
	for _, a := range addrs {
		g = g.Push(a)
	}
	return g
}

// TestGPVSnapshotRewindProperty is the GPQ contract: GPV is a value
// type, so snapshotting before a speculative run of pushes and
// restoring the snapshot afterwards (the restart path: gpvSpec =
// gpvArch) must be an exact inverse of any push sequence — that IS the
// rewind mechanism, there is no pop. Verified across random branch
// sequences at every supported depth.
func TestGPVSnapshotRewindProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, depth := range []int{1, 2, DepthZ13, DepthZ15, 32} {
		g := New(depth)
		for trial := 0; trial < 200; trial++ {
			// Advance the architectural history by a random prefix.
			g = pushAll(g, randAddrs(rng, rng.Intn(40)))
			snap := g // architectural snapshot

			// Speculative wrong-path pushes...
			spec := pushAll(snap, randAddrs(rng, 1+rng.Intn(25)))
			if spec.Depth() != snap.Depth() {
				t.Fatalf("depth %d: push changed depth to %d", depth, spec.Depth())
			}
			// ...then a restart restores the snapshot.
			rewound := snap
			if rewound != g {
				t.Fatalf("depth %d trial %d: rewind differs from pre-speculation state:\n%+v\n%+v",
					depth, trial, rewound, g)
			}
			if rewound.Bits() != g.Bits() {
				t.Fatalf("depth %d: bits differ after rewind", depth)
			}
		}
	}
}

// TestGPVLastDepthDeterminesState: the vector is a shift register, so
// its state is fully determined by the most recent depth pushes — any
// prefix must fall out. This is what makes snapshot-rewind cheap: no
// unbounded history needs restoring.
func TestGPVLastDepthDeterminesState(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, depth := range []int{1, 3, DepthZ13, DepthZ15, 32} {
		for trial := 0; trial < 200; trial++ {
			seq := randAddrs(rng, depth+rng.Intn(3*depth+8))
			full := pushAll(New(depth), seq)
			suffix := pushAll(New(depth), seq[len(seq)-depth:])
			if full != suffix {
				t.Fatalf("depth %d trial %d: full-sequence state %x != last-%d state %x",
					depth, trial, full.Bits(), depth, suffix.Bits())
			}
		}
	}
}

// TestGPVRecentIsSuffixProperty: Recent(n) must equal the low n*2 bits
// for every n, and pushing shifts exactly BitsPerBranch bits in.
func TestGPVRecentIsSuffixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(DepthZ15)
	for trial := 0; trial < 500; trial++ {
		addr := zarch.Addr(rng.Uint64() &^ 1)
		prev := g
		g = g.Push(addr)
		// The new low bits are the pushed branch's hash; everything
		// above is the previous history shifted up (truncated to depth).
		wantLow := BranchGPV(addr)
		if g.Recent(1) != wantLow {
			t.Fatalf("Recent(1) = %x, want pushed hash %x", g.Recent(1), wantLow)
		}
		for n := 0; n <= g.Depth(); n++ {
			mask := uint64(1)<<(BitsPerBranch*uint(n)) - 1
			if g.Recent(n) != g.Bits()&mask {
				t.Fatalf("Recent(%d) = %x, want low bits %x", n, g.Recent(n), g.Bits()&mask)
			}
		}
		if shifted := (prev.Bits()<<BitsPerBranch | wantLow) & (uint64(1)<<uint(g.Width()) - 1); g.Bits() != shifted {
			t.Fatalf("push did not shift: got %x want %x", g.Bits(), shifted)
		}
	}
}
