// Package cpred implements the z15 stream-based column predictor
// (CPRED, paper §IV, patent US10430195). The CPRED is indexed upon
// entering a new stream (the instructions between one taken branch's
// target and the next taken branch) and predicts:
//
//   - how many sequential searches the stream needs before the taken
//     branch that leaves it is found,
//   - the BTB1 way of that taken branch (the "column"),
//   - the redirect address of the next stream (the branch target plus
//     the learned SKOOT line-skip offset), and
//   - which auxiliary prediction structures (PHT, perceptron, CTB) the
//     stream needs powered up.
//
// A CPRED hit lets the search pipeline re-index preemptively in the b2
// cycle, sustaining one predicted-taken branch every 2 cycles instead
// of every 5 (figures 5-7).
package cpred

import (
	"zbp/internal/hashx"
	"zbp/internal/metrics"
	"zbp/internal/zarch"
)

// PowerMask says which auxiliary structures a stream needs powered up.
// If the bidirectional / multi-target state of the stream's branches is
// not set, the corresponding structures are subject to power-down
// (paper §VI).
type PowerMask uint8

// Power bits.
const (
	PowerPHT PowerMask = 1 << iota
	PowerPerceptron
	PowerCTB

	// PowerAll is the conservative default used without a CPRED hit.
	PowerAll = PowerPHT | PowerPerceptron | PowerCTB
)

// Has reports whether the mask includes bit b.
func (m PowerMask) Has(b PowerMask) bool { return m&b != 0 }

// Config parameterizes the CPRED.
type Config struct {
	// Entries is the direct-mapped table size (power of two); 0
	// disables the predictor.
	Entries int
	// TagBits is the partial tag width on the stream-start address.
	TagBits uint
	// MaxSearches caps the learnable sequential-search count.
	MaxSearches uint8
}

// DefaultZ15 returns the modeled z15 CPRED parameters (the paper does
// not publish the geometry; 2K entries matches the BTB1 row count).
func DefaultZ15() Config {
	return Config{Entries: 2048, TagBits: 12, MaxSearches: 15}
}

type entry struct {
	valid    bool
	tag      uint64
	searches uint8
	way      uint8
	redirect zarch.Addr
	power    PowerMask
}

// Result is a CPRED lookup outcome.
type Result struct {
	Hit      bool
	Searches uint8
	Way      uint8
	Redirect zarch.Addr
	Power    PowerMask
}

// Stats counts CPRED events.
type Stats struct {
	Lookups   int64
	Hits      int64
	Updates   int64
	Correct   int64 // verified stream predictions
	Incorrect int64
}

// Register exposes every counter under prefix (e.g. "cpred").
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Counter(prefix+".lookups", &s.Lookups)
	r.Counter(prefix+".hits", &s.Hits)
	r.Counter(prefix+".updates", &s.Updates)
	r.Counter(prefix+".correct", &s.Correct)
	r.Counter(prefix+".incorrect", &s.Incorrect)
}

// CPRED is the stream-based column predictor.
type CPRED struct {
	cfg     Config
	entries []entry
	idxBits uint
	stats   Stats
}

// New returns a CPRED; a zero-entry config yields a disabled predictor.
func New(cfg Config) *CPRED {
	c := &CPRED{cfg: cfg}
	if cfg.Entries > 0 {
		if cfg.Entries&(cfg.Entries-1) != 0 {
			panic("cpred: Entries must be a power of two")
		}
		c.entries = make([]entry, cfg.Entries)
		for cfg.Entries>>c.idxBits > 1 {
			c.idxBits++
		}
	}
	return c
}

// Enabled reports whether the predictor is present.
func (c *CPRED) Enabled() bool { return len(c.entries) > 0 }

// Stats returns a copy of the counters.
func (c *CPRED) Stats() Stats { return c.stats }

// RegisterMetrics registers the predictor's live counters under prefix.
func (c *CPRED) RegisterMetrics(r *metrics.Registry, prefix string) {
	c.stats.Register(r, prefix)
}

func (c *CPRED) index(stream zarch.Addr) int {
	return int(hashx.Fold(uint64(stream)>>1, c.idxBits))
}

func (c *CPRED) tag(stream zarch.Addr) uint64 {
	return hashx.Fold(uint64(stream)>>(1+c.idxBits)^uint64(stream)>>3, c.cfg.TagBits)
}

// Lookup consults the predictor at stream entry.
func (c *CPRED) Lookup(stream zarch.Addr) Result {
	if !c.Enabled() {
		return Result{}
	}
	c.stats.Lookups++
	e := &c.entries[c.index(stream)]
	if !e.valid || e.tag != c.tag(stream) {
		return Result{}
	}
	c.stats.Hits++
	return Result{
		Hit: true, Searches: e.searches, Way: e.way,
		Redirect: e.redirect, Power: e.power,
	}
}

// Update learns a stream's outcome at the time its taken branch is
// predicted: the number of sequential searches it took, the hitting
// way, the redirect address (already including any SKOOT skip), and
// the auxiliary structures the stream turned out to need.
func (c *CPRED) Update(stream zarch.Addr, searches int, way int, redirect zarch.Addr, power PowerMask) {
	if !c.Enabled() {
		return
	}
	if searches > int(c.cfg.MaxSearches) {
		// Streams longer than the counter can express are not learned.
		return
	}
	c.stats.Updates++
	e := &c.entries[c.index(stream)]
	*e = entry{
		valid: true, tag: c.tag(stream),
		searches: uint8(searches), way: uint8(way),
		redirect: redirect, power: power,
	}
}

// Verify scores a previous prediction against the observed stream
// outcome (for stats; the pipeline corrects itself regardless).
func (c *CPRED) Verify(predicted Result, searches int, redirect zarch.Addr) {
	if !predicted.Hit {
		return
	}
	if int(predicted.Searches) == searches && predicted.Redirect == redirect {
		c.stats.Correct++
	} else {
		c.stats.Incorrect++
	}
}

// Invalidate drops the entry for a stream (used when a stream's learned
// exit branch was removed from the BTB1).
func (c *CPRED) Invalidate(stream zarch.Addr) {
	if !c.Enabled() {
		return
	}
	e := &c.entries[c.index(stream)]
	if e.valid && e.tag == c.tag(stream) {
		e.valid = false
	}
}
