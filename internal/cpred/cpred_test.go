package cpred

import (
	"testing"

	"zbp/internal/zarch"
)

func TestDisabled(t *testing.T) {
	c := New(Config{})
	if c.Enabled() {
		t.Fatal("zero-entry CPRED enabled")
	}
	if r := c.Lookup(0x1000); r.Hit {
		t.Fatal("disabled CPRED hit")
	}
	c.Update(0x1000, 1, 2, 0x2000, PowerAll) // must not panic
	c.Invalidate(0x1000)
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(DefaultZ15())
	if r := c.Lookup(0x1000); r.Hit {
		t.Fatal("hit on empty table")
	}
	c.Update(0x1000, 3, 5, 0x4040, PowerPHT|PowerCTB)
	r := c.Lookup(0x1000)
	if !r.Hit || r.Searches != 3 || r.Way != 5 || r.Redirect != 0x4040 {
		t.Fatalf("result = %+v", r)
	}
	if !r.Power.Has(PowerPHT) || !r.Power.Has(PowerCTB) || r.Power.Has(PowerPerceptron) {
		t.Errorf("power = %b", r.Power)
	}
}

func TestTagRejectsOtherStream(t *testing.T) {
	c := New(DefaultZ15())
	c.Update(0x1000, 3, 5, 0x4040, PowerAll)
	// A different stream address with a different tag must miss; find
	// one mapping to the same index.
	miss := 0
	for i := 1; i < 200; i++ {
		a := zarch.Addr(0x1000 + i*2)
		if r := c.Lookup(a); !r.Hit {
			miss++
		}
	}
	if miss < 150 {
		t.Errorf("only %d/199 other streams missed", miss)
	}
}

func TestMaxSearchesNotLearned(t *testing.T) {
	cfg := DefaultZ15()
	cfg.MaxSearches = 4
	c := New(cfg)
	c.Update(0x1000, 5, 0, 0x2000, PowerAll)
	if r := c.Lookup(0x1000); r.Hit {
		t.Fatal("over-long stream was learned")
	}
	c.Update(0x1000, 4, 0, 0x2000, PowerAll)
	if r := c.Lookup(0x1000); !r.Hit {
		t.Fatal("max-length stream not learned")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(DefaultZ15())
	c.Update(0x1000, 1, 0, 0x2000, PowerAll)
	c.Invalidate(0x1000)
	if r := c.Lookup(0x1000); r.Hit {
		t.Fatal("entry survived Invalidate")
	}
}

func TestVerifyStats(t *testing.T) {
	c := New(DefaultZ15())
	c.Update(0x1000, 2, 1, 0x2000, PowerAll)
	r := c.Lookup(0x1000)
	c.Verify(r, 2, 0x2000)
	c.Verify(r, 3, 0x2000)
	c.Verify(Result{}, 9, 0x9999) // miss: ignored
	st := c.Stats()
	if st.Correct != 1 || st.Incorrect != 1 {
		t.Errorf("verify stats = %+v", st)
	}
}

func TestNewPanicsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted non-power-of-two")
		}
	}()
	New(Config{Entries: 1000})
}

func TestPowerMask(t *testing.T) {
	if !PowerAll.Has(PowerPHT) || !PowerAll.Has(PowerPerceptron) || !PowerAll.Has(PowerCTB) {
		t.Error("PowerAll incomplete")
	}
	var none PowerMask
	if none.Has(PowerPHT) {
		t.Error("empty mask has PHT")
	}
}
