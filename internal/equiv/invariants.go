package equiv

import (
	"context"

	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/verif"
	"zbp/internal/workload"
)

// The metamorphic invariants. Unlike the exact pairs, a transformed run
// here is allowed to differ — the checks bound the direction and
// magnitude of the difference, catching gross model breakage (a
// capacity knob wired backwards, a prefix that retires more work than
// its budget) without pinning noisy metrics bit-for-bit.

// surpriseEps is the slack allowed on the BTB1 capacity monotonicity
// check: halving the BTB1 may, through aliasing luck, *reduce* the
// surprise rate by up to this much without it being a bug. Anything
// beyond means the capacity lever is wired backwards.
const surpriseEps = 0.02

// surpriseRate is the fraction of retired branches the BPL had no
// dynamic prediction for.
func surpriseRate(r sim.Result) float64 {
	var br, sur int64
	for _, t := range r.Threads {
		br += t.Branches
		sur += t.Surprises
	}
	if br == 0 {
		return 0
	}
	return float64(sur) / float64(br)
}

// checkBTB1Monotonic halves the BTB1 row count and requires the
// surprise rate not to *improve* materially: a strictly smaller BTB1
// can never track more branches. (The mirrored direction — bigger
// never hurts — is implied by comparing the halved run against the
// full-capacity baseline.)
func checkBTB1Monotonic(ctx context.Context, env *cellEnv, rep *verif.DiffReport) error {
	small := env.cfg
	small.Core.BTB1.RowBits--
	cur := env.packed.Cursor()
	res, err := sim.New(small, []trace.Source{&cur}).RunCtx(ctx, 0)
	if err != nil {
		return err
	}
	fullRate, halfRate := surpriseRate(env.base), surpriseRate(res)
	if fullRate > halfRate+surpriseEps {
		rep.Addf("btb1-monotonic", env.cell.Name(), "thread0.surprises",
			"surprise rate %.4f at full BTB1 capacity exceeds %.4f at half capacity (+%.4f slack): capacity lever inverted",
			fullRate, halfRate, surpriseEps)
	}
	return nil
}

// checkWarmupPrefix truncates the cell to half its budget: the prefix
// run must retire exactly its budget, and every cumulative counter
// must be bounded by the full run's — the simulator may never "un-run"
// work as the trace extends.
func checkWarmupPrefix(ctx context.Context, env *cellEnv, rep *verif.DiffReport) error {
	const check = "warmup-prefix"
	half := env.cell.Instructions / 2
	if half == 0 {
		return nil
	}
	cur := env.packed.CursorN(half)
	res, err := sim.New(env.cfg, []trace.Source{&cur}).RunCtx(ctx, 0)
	if err != nil {
		return err
	}
	cell := env.cell.Name()
	if got := res.Instructions(); got != int64(half) {
		rep.Addf(check, cell, "sim.instructions",
			"half-budget prefix retired %d instructions, want exactly %d", got, half)
	}
	type bound struct {
		metric     string
		half, full int64
	}
	for _, b := range []bound{
		{"sim.instructions", res.Instructions(), env.base.Instructions()},
		{"sim.branches", res.Branches(), env.base.Branches()},
		{"sim.mispredicts", res.Mispredicts(), env.base.Mispredicts()},
		{"sim.cycles", res.Cycles, env.base.Cycles},
	} {
		if b.half > b.full {
			rep.Addf(check, cell, b.metric,
				"prefix run's %s = %d exceeds full run's %d: counters are not cumulative",
				b.metric, b.half, b.full)
		}
	}
	return nil
}

// smt2MispredictFactor bounds how far SMT2 co-running may move total
// mispredicts relative to the two single-thread runs. Shared predictor
// state causes real, sometimes severe interference — callret on z15
// goes from ~100 mispredicts (2xST) to ~1400 under SMT2 because the
// interleaved threads trash the shared call/return tracking — so the
// multiplicative factor is joined by a term proportional to the branch
// count (interference can corrupt some fraction of all predictions,
// but not more). The band only catches structural breakage, not tuning
// regressions.
const (
	smt2MispredictFactor = 4.0
	smt2MispredictSlack  = 256
)

// checkSMT2VsST runs the cell's workload on both hardware threads
// (second thread reseeded, mirroring the zbpd convention) and
// crosschecks aggregates against the two single-thread runs: retired
// instruction and branch counts are trace properties and must match
// exactly; mispredicts may move with interference but only within a
// loose band; and the SMT2 run cannot finish faster than the slower
// thread alone would.
func checkSMT2VsST(ctx context.Context, env *cellEnv, rep *verif.DiffReport) error {
	const check = "smt2-vs-2xst"
	cell := env.cell.Name()
	p2, err := workload.MakePacked(env.cell.Workload, env.cell.Seed+1, env.cell.Instructions)
	if err != nil {
		return err
	}
	// Second thread single-thread reference.
	c2 := p2.Cursor()
	st2, err := sim.New(env.cfg, []trace.Source{&c2}).RunCtx(ctx, 0)
	if err != nil {
		return err
	}
	// SMT2 run: one cursor per hardware thread.
	ca, cb := env.packed.Cursor(), p2.Cursor()
	smt, err := sim.New(env.cfg, []trace.Source{&ca, &cb}).RunCtx(ctx, 0)
	if err != nil {
		return err
	}

	wantInstr := env.base.Instructions() + st2.Instructions()
	if got := smt.Instructions(); got != wantInstr {
		rep.Addf(check, cell, "sim.instructions",
			"SMT2 retired %d instructions, the two ST runs retired %d", got, wantInstr)
	}
	wantBr := env.base.Branches() + st2.Branches()
	if got := smt.Branches(); got != wantBr {
		rep.Addf(check, cell, "sim.branches",
			"SMT2 retired %d branches, the two ST runs retired %d", got, wantBr)
	}
	stMiss := env.base.Mispredicts() + st2.Mispredicts()
	smtMiss := smt.Mispredicts()
	hi := int64(float64(stMiss)*smt2MispredictFactor) + wantBr/4 + smt2MispredictSlack
	lo := int64(float64(stMiss)/smt2MispredictFactor) - smt2MispredictSlack
	if smtMiss > hi || smtMiss < lo {
		rep.Addf(check, cell, "sim.mispredicts",
			"SMT2 mispredicts %d outside sanity band [%d, %d] around 2xST total %d",
			smtMiss, lo, hi, stMiss)
	}
	// Cycle band. Co-running CAN beat the slower solo run here — each
	// thread's restart penalties overlap with the other thread's useful
	// work — but the two threads still share one fetch pipe, so the
	// whole SMT2 run cannot beat half the slower solo time (a >2x
	// speedup would mean sharing manufactured bandwidth). The upper
	// side allows the serialized total times a generous interference
	// factor: destructive sharing is real (see the mispredict band
	// comment) and every extra mispredict buys a full restart penalty.
	slower := env.base.Cycles
	if st2.Cycles > slower {
		slower = st2.Cycles
	}
	serial := env.base.Cycles + st2.Cycles
	if smt.Cycles < slower/2 {
		rep.Addf(check, cell, "sim.cycles",
			"SMT2 finished in %d cycles, over 2x faster than the slower ST run alone (%d): port sharing is free?",
			smt.Cycles, slower)
	}
	if smt.Cycles > 4*serial {
		rep.Addf(check, cell, "sim.cycles",
			"SMT2 took %d cycles, over 4x the serialized ST total (%d): co-running livelock?",
			smt.Cycles, serial)
	}
	return nil
}
