package equiv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"zbp/internal/core"
	"zbp/internal/metrics"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/verif"
	"zbp/internal/workload"
)

// AuditCheck names the findings the cache auditor emits, alongside
// the pairwise checks in CheckNames.
const AuditCheck = "cache-audit"

// AuditCell identifies one cached simulation cell: the same content
// address the result cache (internal/rcache) keys on, so a cached
// stats payload can be re-derived from nothing but this spec. By the
// service convention, Workload2 (when set) runs on the second
// hardware thread at Seed+1.
type AuditCell struct {
	Config       string
	Workload     string
	Workload2    string
	Seed         uint64
	Instructions int
}

// Name renders the cell like Cell.Name, with the SMT2 partner when
// present.
func (c AuditCell) Name() string {
	if c.Workload2 != "" {
		return fmt.Sprintf("%s/%s+%s/s%d/n%d", c.Config, c.Workload, c.Workload2, c.Seed, c.Instructions)
	}
	return fmt.Sprintf("%s/%s/s%d/n%d", c.Config, c.Workload, c.Seed, c.Instructions)
}

// Audit is the cache-poisoning detector: it recomputes cell from
// scratch — fresh generator, fresh packed buffer, fresh predictor
// state — and byte-compares the canonical stats JSON against the
// cached payload. The simulator's determinism (enforced by this
// package's exact pairs) is what makes this sound: any byte of
// divergence means the cached value is not what this simulator
// produces for this spec, i.e. a poisoned, stale-schema, or corrupted
// entry. Divergences come back as findings (check "cache-audit");
// a non-nil error means the cell could not be recomputed at all.
func Audit(ctx context.Context, cell AuditCell, cached []byte) ([]verif.Finding, error) {
	if cell.Instructions <= 0 {
		return nil, fmt.Errorf("equiv: audit cell %s needs a positive instruction budget", cell.Name())
	}
	gen, err := core.ByName(cell.Config)
	if err != nil {
		return nil, err
	}
	p, err := workload.MakePacked(cell.Workload, cell.Seed, cell.Instructions)
	if err != nil {
		return nil, err
	}
	cur := p.Cursor()
	srcs := []trace.Source{&cur}
	if cell.Workload2 != "" {
		p2, err := workload.MakePacked(cell.Workload2, cell.Seed+1, cell.Instructions)
		if err != nil {
			return nil, err
		}
		cur2 := p2.Cursor()
		srcs = append(srcs, &cur2)
	}
	res, err := sim.New(sim.ForGeneration(gen), srcs).RunCtx(ctx, 0)
	if err != nil {
		return nil, err
	}
	fresh, err := res.StatsJSON()
	if err != nil {
		return nil, err
	}
	if bytes.Equal(fresh, cached) {
		return nil, nil
	}

	// Attribute the divergence: decode the cached payload as a
	// snapshot and diff metric by metric; an undecodable payload is
	// corruption in its own right.
	f := verif.Finding{Check: AuditCheck, Cell: cell.Name(), Cycle: -1}
	var snap metrics.Snapshot
	if uerr := json.Unmarshal(cached, &snap); uerr != nil {
		f.Detail = fmt.Sprintf("cached stats payload is not valid stats JSON: %v", uerr)
		return []verif.Finding{f}, nil
	}
	diffs := metrics.DiffSnapshots(snap, res.StatsSnapshot())
	if len(diffs) == 0 {
		f.Detail = "cached payload bytes differ from the canonical serialization (non-canonical or corrupted encoding)"
		return []verif.Finding{f}, nil
	}
	metric, first := firstDiff(diffs)
	f.Metric = metric
	f.Detail = fmt.Sprintf("cached result diverges from fresh recomputation: %s (%d metrics differ)",
		first, len(diffs))
	return []verif.Finding{f}, nil
}
