package equiv

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"zbp/internal/core"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

const (
	testSeed  = 42
	testScale = 4000
)

// testGrid is the cell grid the package test sweeps: every workload on
// z15, and a representative workload subset on the other generations
// (the full preset x config grid is zdiff's job, exercised by `make
// diff-smoke`). Short mode trims to one generation.
func testGrid(t *testing.T) []Cell {
	t.Helper()
	cells := Grid([]string{"z15"}, workload.Names(), testSeed, testScale)
	if !testing.Short() {
		cells = append(cells, Grid(
			[]string{"zEC12", "z13", "z14"},
			[]string{"loops", "callret", "indirect", "patterned", "lspr-small"},
			testSeed, testScale)...)
	}
	return cells
}

// TestCheckGridClean is the harness's own tier-1 gate: every cell in
// the grid must pass every registered check with zero findings.
func TestCheckGridClean(t *testing.T) {
	cells := testGrid(t)
	results := CheckGrid(context.Background(), cells, Options{}, 0)
	if len(results) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(results), len(cells))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Cell.Name(), r.Err)
			continue
		}
		if got, want := len(r.Checks), len(Checks()); got != want {
			t.Errorf("%s: ran %d checks, want %d", r.Cell.Name(), got, want)
		}
		for _, f := range r.Findings() {
			t.Errorf("divergence: %s", f)
		}
	}
}

// TestCheckGridDeterministic reruns one cell at different grid
// parallelism and demands identical findings (none) and results.
func TestCheckGridDeterministic(t *testing.T) {
	cells := Grid([]string{"z15", "zEC12"}, []string{"callret", "indirect"}, testSeed, testScale)
	a := CheckGrid(context.Background(), cells, Options{}, 1)
	b := CheckGrid(context.Background(), cells, Options{}, 4)
	for i := range cells {
		if a[i].Cell != b[i].Cell {
			t.Fatalf("cell %d order differs: %s vs %s", i, a[i].Cell.Name(), b[i].Cell.Name())
		}
		if a[i].OK() != b[i].OK() {
			t.Errorf("cell %s verdict differs across parallelism", cells[i].Name())
		}
	}
}

// TestPerturbDetected seeds a deliberate divergence (one BTB1 entry
// preloaded with an inverted BHT counter) and requires the harness to
// detect it, attributing the finding to the right cell and naming the
// first diverging metric — the end-to-end proof the acceptance
// criteria ask for.
func TestPerturbDetected(t *testing.T) {
	cell := Cell{Config: "z15", Workload: "patterned", Seed: testSeed, Instructions: testScale}
	res := CheckCell(context.Background(), cell, Options{
		Perturb: true,
		// Exact pairs that route through the perturbed sim constructor.
		Checks: []string{"packed-vs-streaming", "fast-vs-instrumented", "run-vs-runctx", "fresh-vs-reset", "event-replay"},
	})
	if res.Err != nil {
		t.Fatalf("perturbed cell errored: %v", res.Err)
	}
	findings := res.Findings()
	if len(findings) == 0 {
		t.Fatal("perturbed run reported no divergence: the harness cannot detect real bugs")
	}
	for _, f := range findings {
		if f.Cell != cell.Name() {
			t.Errorf("finding attributed to %q, want %q", f.Cell, cell.Name())
		}
		if f.Check == "" {
			t.Errorf("finding without a check name: %s", f)
		}
	}
	// At least one finding must name the first diverging metric.
	named := false
	for _, f := range findings {
		if f.Metric != "" {
			named = true
			break
		}
	}
	if !named {
		t.Errorf("no finding names a diverging metric: %v", findings)
	}
}

// TestPerturbEachExactPair verifies the divergence knob trips every
// exact pair that reruns the simulator individually, so a regression
// in any single checker's comparison logic is caught.
func TestPerturbEachExactPair(t *testing.T) {
	if testing.Short() {
		t.Skip("per-check perturbation sweep skipped in short mode")
	}
	cell := Cell{Config: "z15", Workload: "patterned", Seed: testSeed, Instructions: testScale}
	for _, name := range []string{"packed-vs-streaming", "fast-vs-instrumented", "run-vs-runctx", "fresh-vs-reset", "event-replay"} {
		res := CheckCell(context.Background(), cell, Options{Perturb: true, Checks: []string{name}})
		if res.Err != nil {
			t.Fatalf("%s: %v", name, res.Err)
		}
		if len(res.Findings()) == 0 {
			t.Errorf("check %s did not flag the perturbed run", name)
		}
	}
}

// TestPerturbOneFindsBranch checks the knob actually poisons state.
func TestPerturbOneFindsBranch(t *testing.T) {
	p, err := workload.MakePacked("loops", testSeed, 1000)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := core.ByName("z15")
	if err != nil {
		t.Fatal(err)
	}
	cur := p.Cursor()
	s := sim.New(sim.ForGeneration(gen), []trace.Source{&cur})
	if !perturbOne(s, p) {
		t.Fatal("perturbOne found no conditional branch in the loops workload")
	}
}

// TestPackedFileRoundTrip materializes a cell, round-trips it through
// the on-disk trace format, and runs the equivalence checks against
// the reloaded buffer — the file I/O path must be as invisible as the
// in-memory one. (Folds the old sim packed-equivalence coverage.)
func TestPackedFileRoundTrip(t *testing.T) {
	p, err := workload.MakePacked("callret", testSeed, testScale)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cell.ztr")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := trace.LoadPackedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := core.ByName("z15")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.ForGeneration(gen)
	run := func(p *trace.Packed) string {
		t.Helper()
		cur := p.Cursor()
		res, err := sim.New(cfg, []trace.Source{&cur}).RunCtx(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.StatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(js)
	}
	if a, b := run(p), run(q); a != b {
		t.Error("stats diverge between in-memory and file-round-tripped packed trace")
	}
}

// TestCheckCellBadInputs exercises the setup error paths.
func TestCheckCellBadInputs(t *testing.T) {
	for _, cell := range []Cell{
		{Config: "z99", Workload: "loops", Seed: 1, Instructions: 100},
		{Config: "z15", Workload: "no-such-workload", Seed: 1, Instructions: 100},
		{Config: "z15", Workload: "loops", Seed: 1, Instructions: 0},
	} {
		if res := CheckCell(context.Background(), cell, Options{}); res.Err == nil {
			t.Errorf("cell %s: want setup error, got none", cell.Name())
		}
	}
}

// TestCheckGridCanceled verifies canceled grids fail closed: every
// unevaluated cell carries the context error rather than passing.
func TestCheckGridCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells := Grid([]string{"z15"}, []string{"loops", "callret"}, testSeed, 1000)
	results := CheckGrid(ctx, cells, Options{}, 1)
	for _, r := range results {
		if r.OK() {
			t.Errorf("cell %s passed under a canceled context", r.Cell.Name())
		}
	}
}

// TestCheckNamesSelect covers subset selection and unknown names.
func TestCheckNamesSelect(t *testing.T) {
	names := CheckNames()
	if len(names) != len(Checks()) {
		t.Fatalf("CheckNames returned %d names for %d checks", len(names), len(Checks()))
	}
	opts := Options{Checks: []string{"warmup-prefix", "bogus-check"}}
	sel := opts.selected()
	if len(sel) != 1 || sel[0].Name != "warmup-prefix" {
		t.Fatalf("selected() = %v, want just warmup-prefix", sel)
	}
	res := CheckCell(context.Background(),
		Cell{Config: "z15", Workload: "loops", Seed: testSeed, Instructions: 1000},
		opts)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Checks) != 1 || res.Checks[0].Name != "warmup-prefix" {
		t.Fatalf("ran %v, want just warmup-prefix", res.Checks)
	}
}

// TestFindingString pins the report line shape other layers parse.
func TestFindingString(t *testing.T) {
	res := CheckCell(context.Background(),
		Cell{Config: "z15", Workload: "patterned", Seed: testSeed, Instructions: testScale},
		Options{Perturb: true, Checks: []string{"packed-vs-streaming"}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	fs := res.Findings()
	if len(fs) == 0 {
		t.Fatal("expected a finding")
	}
	line := fs[0].String()
	for _, want := range []string{"[packed-vs-streaming]", "z15/patterned"} {
		if !strings.Contains(line, want) {
			t.Errorf("finding line %q missing %q", line, want)
		}
	}
}
