package equiv

import (
	"context"
	"testing"

	"zbp/internal/workload"
)

// FuzzEquivCell throws randomized (config, workload, seed, budget)
// cells at a cheap subset of the equivalence checks: any divergence or
// unexpected setup failure is a crash. The corpus seeds pin the cells
// that matter historically (the packed-vs-streaming drift class) plus
// budget edge cases around the run loop's context poll mask.
func FuzzEquivCell(f *testing.F) {
	f.Add(uint8(3), uint8(0), uint64(42), uint16(2000))
	f.Add(uint8(0), uint8(2), uint64(7), uint16(500))
	// Budgets straddling the RunCtx 4096-cycle poll boundary.
	f.Add(uint8(3), uint8(5), uint64(1), uint16(4096))
	f.Add(uint8(1), uint8(8), uint64(0xffffffffffffffff), uint16(4097))
	f.Add(uint8(2), uint8(10), uint64(0), uint16(3999))

	configs := []string{"zEC12", "z13", "z14", "z15"}
	workloads := workload.Names()
	opts := Options{Checks: []string{"packed-vs-streaming", "fast-vs-instrumented", "run-vs-runctx", "warmup-prefix"}}

	f.Fuzz(func(t *testing.T, cfgIdx, wlIdx uint8, seed uint64, scale uint16) {
		cell := Cell{
			Config:   configs[int(cfgIdx)%len(configs)],
			Workload: workloads[int(wlIdx)%len(workloads)],
			Seed:     seed,
			// Keep cells cheap but nontrivial.
			Instructions: 500 + int(scale)%3500,
		}
		res := CheckCell(context.Background(), cell, opts)
		if res.Err != nil {
			t.Fatalf("cell %s failed to evaluate: %v", cell.Name(), res.Err)
		}
		for _, fd := range res.Findings() {
			t.Errorf("divergence: %s", fd)
		}
	})
}
