package equiv

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"zbp/internal/core"
	"zbp/internal/metrics"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// auditFixture recomputes cell the same way a healthy cache fill
// would, returning the canonical stats payload.
func auditFixture(t *testing.T, cell AuditCell) []byte {
	t.Helper()
	gen, err := core.ByName(cell.Config)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.MakePacked(cell.Workload, cell.Seed, cell.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	cur := p.Cursor()
	srcs := []trace.Source{&cur}
	if cell.Workload2 != "" {
		p2, err := workload.MakePacked(cell.Workload2, cell.Seed+1, cell.Instructions)
		if err != nil {
			t.Fatal(err)
		}
		cur2 := p2.Cursor()
		srcs = append(srcs, &cur2)
	}
	res, err := sim.New(sim.ForGeneration(gen), srcs).RunCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

var auditCell = AuditCell{Config: "z15", Workload: "loops", Seed: 42, Instructions: 20_000}

// TestAuditCleanPayload: an honestly cached payload audits clean.
func TestAuditCleanPayload(t *testing.T) {
	payload := auditFixture(t, auditCell)
	findings, err := Audit(context.Background(), auditCell, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean payload flagged: %+v", findings)
	}
}

// TestAuditCleanSMT2: the Workload2/Seed+1 convention round-trips —
// an audit that materialized the second thread any other way would
// flag every SMT2 cell.
func TestAuditCleanSMT2(t *testing.T) {
	cell := AuditCell{Config: "z15", Workload: "loops", Workload2: "micro", Seed: 42, Instructions: 20_000}
	payload := auditFixture(t, cell)
	findings, err := Audit(context.Background(), cell, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean SMT2 payload flagged: %+v", findings)
	}
}

// TestAuditDetectsTamperedMetric: a payload whose sim.cycles was
// nudged by one — the minimal poisoning — is flagged with the
// offending metric named.
func TestAuditDetectsTamperedMetric(t *testing.T) {
	payload := auditFixture(t, auditCell)
	var snap metrics.Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		t.Fatal(err)
	}
	snap.Counters["sim.cycles"]++
	tampered, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	findings, err := Audit(context.Background(), auditCell, tampered)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want exactly one", findings)
	}
	f := findings[0]
	if f.Check != AuditCheck {
		t.Errorf("check %q, want %q", f.Check, AuditCheck)
	}
	if f.Metric != "sim.cycles" {
		t.Errorf("metric %q, want the tampered counter", f.Metric)
	}
	if !strings.Contains(f.Detail, "diverges from fresh recomputation") {
		t.Errorf("detail %q", f.Detail)
	}
}

// TestAuditDetectsGarbagePayload: bytes that are not stats JSON at
// all are corruption, reported as such.
func TestAuditDetectsGarbagePayload(t *testing.T) {
	findings, err := Audit(context.Background(), auditCell, []byte("not json at all"))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Detail, "not valid stats JSON") {
		t.Fatalf("findings = %+v", findings)
	}
}

// TestAuditDetectsNonCanonicalEncoding: same values, different bytes
// — a compact re-marshal of the correct snapshot. Values match, so
// the metric diff is empty, but the byte compare still flags it: the
// cache contract is the canonical serialization, nothing else.
func TestAuditDetectsNonCanonicalEncoding(t *testing.T) {
	payload := auditFixture(t, auditCell)
	var snap metrics.Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		t.Fatal(err)
	}
	compact, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Audit(context.Background(), auditCell, compact)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Detail, "non-canonical or corrupted encoding") {
		t.Fatalf("findings = %+v", findings)
	}
}

// TestAuditBadCell: an unrecomputable cell is an error, not a
// finding — the auditor has no verdict, and the caller counts it
// separately.
func TestAuditBadCell(t *testing.T) {
	cases := []AuditCell{
		{Config: "z15", Workload: "no-such-workload", Seed: 1, Instructions: 1000},
		{Config: "no-such-config", Workload: "loops", Seed: 1, Instructions: 1000},
		{Config: "z15", Workload: "loops", Seed: 1, Instructions: 0},
	}
	for _, cell := range cases {
		if _, err := Audit(context.Background(), cell, []byte("{}")); err == nil {
			t.Errorf("cell %+v: expected an error", cell)
		}
	}
}

// TestAuditCellName pins the spec rendering used in findings and logs.
func TestAuditCellName(t *testing.T) {
	if got := auditCell.Name(); got != "z15/loops/s42/n20000" {
		t.Errorf("name %q", got)
	}
	smt := AuditCell{Config: "z14", Workload: "lspr", Workload2: "micro", Seed: 7, Instructions: 500}
	if got := smt.Name(); got != "z14/lspr+micro/s7/n500" {
		t.Errorf("SMT2 name %q", got)
	}
}
