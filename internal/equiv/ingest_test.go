package equiv

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"zbp/internal/core"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// writeIngestedTrace builds a ChampSim-format file from a generator
// trace and re-ingests it into a .zbpt under dir, returning the .zbpt
// path. The external leg exercises the whole adapter, so the equiv
// tests below run over a genuinely ingested stream.
func writeIngestedTrace(t *testing.T, dir string, seed uint64, n int) string {
	t.Helper()
	p, err := workload.MakePacked("loops", seed, n)
	if err != nil {
		t.Fatal(err)
	}
	champ := filepath.Join(dir, "t.champsim")
	f, err := os.Create(champ)
	if err != nil {
		t.Fatal(err)
	}
	cur := p.Cursor()
	if _, err := trace.ExportChampSim(f, &cur, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ingested, _, err := trace.IngestChampSimFile(champ, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "t.zbpt")
	if err := ingested.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestIngestedTracePackedVsStreaming: simulating an ingested external
// trace must produce byte-identical canonical stats whether the
// records arrive through the materialized packed path or the
// streaming file cursor — the same equivalence contract the
// generators carry.
func TestIngestedTracePackedVsStreaming(t *testing.T) {
	path := writeIngestedTrace(t, t.TempDir(), 42, 30_000)
	name := workload.FilePrefix + path
	gen, err := core.ByName("z15")
	if err != nil {
		t.Fatal(err)
	}

	run := func(src trace.Source) []byte {
		res, err := sim.New(sim.ForGeneration(gen), []trace.Source{src}).RunCtx(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.StatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	p, err := workload.MakePacked(name, 42, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	cur := p.Cursor()
	packed := run(&cur)

	streaming, err := workload.Make(name, 42)
	if err != nil {
		t.Fatal(err)
	}
	stream := run(streaming)

	if !bytes.Equal(packed, stream) {
		t.Fatal("packed and streaming stats diverge for an ingested trace")
	}
}

// TestAuditDetectsSwappedTraceFile is the end-to-end staleness proof:
// cache a file-backed cell's honest stats, swap the file's bytes on
// disk, and the auditor — recomputing from the name — must flag the
// now-stale payload. In production the digest-keyed cache prevents
// the stale read in the first place; the audit is the backstop that
// would catch a regression in that keying.
func TestAuditDetectsSwappedTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := writeIngestedTrace(t, dir, 42, 20_000)
	cell := AuditCell{Config: "z15", Workload: workload.FilePrefix + path, Seed: 42, Instructions: 20_000}

	payload := auditFixture(t, cell)
	findings, err := Audit(context.Background(), cell, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("honest file-backed payload flagged: %+v", findings)
	}

	// Swap the trace's content under the same path.
	swapped := writeIngestedTrace(t, dir, 43, 20_000)
	if swapped != path {
		t.Fatalf("fixture wrote %s, want %s", swapped, path)
	}
	findings, err = Audit(context.Background(), cell, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("audit missed a swapped trace file: stale cached stats audit clean")
	}
}
