package equiv

import (
	"context"
	"runtime"
	"sync"
)

// CheckGrid evaluates every cell, fanning out across at most
// parallelism workers (<=0 means GOMAXPROCS). Results come back in
// cell order and are identical at any parallelism: each cell builds
// all of its own state, exactly like runner.Pool jobs. Cancellation is
// cooperative — cells not yet started return with Err set to ctx.Err(),
// in-flight cells stop at their next simulation poll.
func CheckGrid(ctx context.Context, cells []Cell, opts Options, parallelism int) []CellResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]CellResult, len(cells))
	if len(cells) == 0 {
		return results
	}
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(cells) {
		w = len(cells)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for ; w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = CheckCell(ctx, cells[i], opts)
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case idx <- i:
		case <-ctx.Done():
			for j := i; j < len(cells); j++ {
				results[j] = CellResult{Cell: cells[j], Err: ctx.Err()}
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return results
}

// Divergences counts cells that are not OK.
func Divergences(results []CellResult) int {
	n := 0
	for _, r := range results {
		if !r.OK() {
			n++
		}
	}
	return n
}
