// Package equiv is the differential/metamorphic self-check layer of
// the simulator, the software analogue of the paper's §VII
// crosschecking methodology: instead of trusting any single execution
// path, the same (config, workload, seed, budget) cell is pushed
// through pairs of paths that must agree exactly — packed replay vs
// streaming generation, fast vs instrumented cycle loop, pooled vs
// direct execution, cancellable vs plain run loops, reset-reuse vs
// fresh state, event-log reconstruction
// vs counter aggregation — plus metamorphic invariants (capacity
// monotonicity, prefix bounds, SMT2 aggregation sanity) that need not
// be exact but bound how results may move.
//
// Every perf PR runs this harness (cmd/zdiff, `make diff-smoke`)
// before it lands: the map-order nondeterminism in icache.Tick and the
// packed-vs-streaming drift that earlier PRs caught with one-off tests
// are exactly the class of bug these checks detect systematically.
package equiv

import (
	"context"
	"fmt"

	"zbp/internal/core"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/verif"
	"zbp/internal/workload"
)

// Cell is one differential test point: everything needed to
// reconstruct the identical simulation along every execution path.
type Cell struct {
	// Config is a machine-generation preset name (zEC12, z13, z14,
	// z15).
	Config string
	// Workload names the synthetic workload (see workload.Names).
	Workload string
	// Seed is the workload generator seed.
	Seed uint64
	// Instructions is the per-thread budget; every path materializes or
	// limits to exactly this many records.
	Instructions int
}

// Name renders the cell as "config/workload/s<seed>/n<budget>".
func (c Cell) Name() string {
	return fmt.Sprintf("%s/%s/s%d/n%d", c.Config, c.Workload, c.Seed, c.Instructions)
}

// CheckKind classifies a check's strictness.
type CheckKind uint8

const (
	// Exact checks demand byte-identical stats JSON between two paths.
	Exact CheckKind = iota
	// Invariant checks are metamorphic: they bound how a transformed
	// run's metrics may differ, without demanding equality.
	Invariant
)

func (k CheckKind) String() string {
	if k == Exact {
		return "exact"
	}
	return "invariant"
}

// Check is one registered equivalence check.
type Check struct {
	Name string
	Kind CheckKind
	run  func(ctx context.Context, env *cellEnv, rep *verif.DiffReport) error
}

// Checks returns every registered check in execution order: the six
// exact pairs first, then the metamorphic invariants.
func Checks() []Check {
	return []Check{
		{"packed-vs-streaming", Exact, checkPackedVsStreaming},
		{"fast-vs-instrumented", Exact, checkFastVsInstrumented},
		{"pool-1-vs-n", Exact, checkPool1VsN},
		{"run-vs-runctx", Exact, checkRunVsRunCtx},
		{"fresh-vs-reset", Exact, checkFreshVsReset},
		{"event-replay", Exact, checkEventReplay},
		{"btb1-monotonic", Invariant, checkBTB1Monotonic},
		{"warmup-prefix", Invariant, checkWarmupPrefix},
		{"smt2-vs-2xst", Invariant, checkSMT2VsST},
	}
}

// CheckNames returns the registered check names in execution order.
func CheckNames() []string {
	cs := Checks()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// Options tune one harness run.
type Options struct {
	// Checks selects a subset by name; nil or empty runs every check.
	Checks []string
	// PoolParallelism is the N side of the pool-1-vs-n pair (default 4).
	PoolParallelism int
	// Perturb deliberately corrupts the second side of the exact pairs
	// (one BTB1/BHT entry preloaded before the run) so a harness
	// deployment can prove, end to end, that a real divergence is
	// detected and attributed. A healthy harness run with Perturb set
	// MUST report divergences.
	Perturb bool
}

func (o Options) selected() []Check {
	all := Checks()
	if len(o.Checks) == 0 {
		return all
	}
	want := make(map[string]bool, len(o.Checks))
	for _, n := range o.Checks {
		want[n] = true
	}
	out := make([]Check, 0, len(all))
	for _, c := range all {
		if want[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

// CheckResult is one check's outcome on one cell.
type CheckResult struct {
	Name     string
	Kind     CheckKind
	Findings []verif.Finding
}

// OK reports a clean check.
func (r CheckResult) OK() bool { return len(r.Findings) == 0 }

// CellResult aggregates every check run on one cell.
type CellResult struct {
	Cell   Cell
	Checks []CheckResult
	// Err is set when the cell could not be evaluated at all (unknown
	// config/workload, canceled context); Checks is then empty.
	Err error
}

// OK reports a cell with no findings and no setup error.
func (r CellResult) OK() bool {
	if r.Err != nil {
		return false
	}
	for _, c := range r.Checks {
		if !c.OK() {
			return false
		}
	}
	return true
}

// Findings flattens every check's findings.
func (r CellResult) Findings() []verif.Finding {
	var out []verif.Finding
	for _, c := range r.Checks {
		out = append(out, c.Findings...)
	}
	return out
}

// cellEnv is the shared per-cell state every check runs against: the
// resolved config, the materialized packed trace, and the canonical
// baseline (one packed-cursor run) most pairs compare to.
type cellEnv struct {
	cell   Cell
	cfg    sim.Config
	packed *trace.Packed
	// base is the canonical result: a packed-cursor sim.RunCtx run with
	// no sinks, no pool, no perturbation.
	base     sim.Result
	baseJSON []byte
	opts     Options
}

// CheckCell runs the selected checks on one cell. The context cancels
// long cells cooperatively (every simulation inside runs on the RunCtx
// path); a canceled cell returns with Err set. A non-nil error means
// the cell could not be evaluated; divergences are reported through the
// CellResult's findings, not through the error.
func CheckCell(ctx context.Context, cell Cell, opts Options) CellResult {
	res := CellResult{Cell: cell}
	env, err := newCellEnv(ctx, cell, opts)
	if err != nil {
		res.Err = err
		return res
	}
	for _, ck := range opts.selected() {
		rep := &verif.DiffReport{}
		if err := ck.run(ctx, env, rep); err != nil {
			res.Err = fmt.Errorf("equiv: %s on %s: %w", ck.Name, cell.Name(), err)
			return res
		}
		res.Checks = append(res.Checks, CheckResult{Name: ck.Name, Kind: ck.Kind, Findings: rep.Findings})
	}
	return res
}

func newCellEnv(ctx context.Context, cell Cell, opts Options) (*cellEnv, error) {
	if cell.Instructions <= 0 {
		return nil, fmt.Errorf("equiv: cell %s needs a positive instruction budget", cell.Name())
	}
	gen, err := core.ByName(cell.Config)
	if err != nil {
		return nil, err
	}
	packed, err := workload.MakePacked(cell.Workload, cell.Seed, cell.Instructions)
	if err != nil {
		return nil, err
	}
	env := &cellEnv{cell: cell, cfg: sim.ForGeneration(gen), packed: packed, opts: opts}
	cur := packed.Cursor()
	env.base, err = sim.New(env.cfg, []trace.Source{&cur}).RunCtx(ctx, 0)
	if err != nil {
		return nil, err
	}
	env.baseJSON, err = env.base.StatsJSON()
	if err != nil {
		return nil, err
	}
	return env, nil
}

// Grid builds the cartesian product of configs x workloads as cells.
func Grid(configs, workloads []string, seed uint64, instructions int) []Cell {
	cells := make([]Cell, 0, len(configs)*len(workloads))
	for _, cfg := range configs {
		for _, wl := range workloads {
			cells = append(cells, Cell{Config: cfg, Workload: wl, Seed: seed, Instructions: instructions})
		}
	}
	return cells
}
