package equiv

import (
	"context"
	"fmt"
	"strings"

	"zbp/internal/btb"
	"zbp/internal/metrics"
	"zbp/internal/runner"
	"zbp/internal/sat"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/verif"
	"zbp/internal/workload"
)

// The five exact pairs. Each one re-executes the cell along a
// transformed path and demands byte-identical stats JSON against the
// canonical baseline (a plain packed-cursor RunCtx run). On a mismatch
// the finding names the first diverging metric, so the report reads
// like the golden harness's drift output.

// perturbOne corrupts predictor state before a run: the first
// conditional branch of the trace is preloaded into the BTB1 with its
// BHT counter saturated against the branch's first resolution. This is
// the deliberate-divergence knob (Options.Perturb): a single poisoned
// 2-bit counter must surface as a reported divergence, proving the
// harness end to end. Returns false if the trace has no conditional
// branch to poison.
func perturbOne(s *sim.Sim, p *trace.Packed) bool {
	for i := 0; i < p.Len(); i++ {
		r := p.At(i)
		if !r.Kind().Conditional() {
			continue
		}
		bht := sat.StrongT
		if r.Taken() {
			bht = sat.StrongNT
		}
		tgt := r.Target
		if tgt == 0 {
			tgt = r.Addr + 64
		}
		s.Core().Preload(1, btb.Info{
			Addr: r.Addr, Len: r.Len(), Kind: r.Kind(),
			Target: tgt, BHT: bht, Skoot: btb.SkootUnknown,
		})
		return true
	}
	return false
}

// newSim wires a sim for the transformed side, applying the
// perturbation knob when enabled.
func (env *cellEnv) newSim(srcs []trace.Source) *sim.Sim {
	s := sim.New(env.cfg, srcs)
	if env.opts.Perturb {
		perturbOne(s, env.packed)
	}
	return s
}

// compareExact diffs a transformed run against the baseline and
// reports the first diverging metric.
func (env *cellEnv) compareExact(rep *verif.DiffReport, check, path string, res sim.Result) error {
	js, err := res.StatsJSON()
	if err != nil {
		return err
	}
	if string(js) == string(env.baseJSON) {
		return nil
	}
	diffs := metrics.DiffSnapshots(env.base.StatsSnapshot(), res.StatsSnapshot())
	metric, first := firstDiff(diffs)
	rep.Add(verif.Finding{
		Check: check, Cell: env.cell.Name(), Cycle: -1, Metric: metric,
		Detail: fmt.Sprintf("%s diverges from packed baseline: %s (%d metrics differ)",
			path, first, len(diffs)),
	})
	return nil
}

// firstDiff extracts the metric name from the first DiffSnapshots
// line ("counter sim.cycles: 5 != 6" -> "sim.cycles").
func firstDiff(diffs []string) (metric, detail string) {
	if len(diffs) == 0 {
		// Byte-level difference with no metric drift would mean the
		// serializer itself is nondeterministic.
		return "", "stats JSON bytes differ but no metric drifted (serializer nondeterminism)"
	}
	detail = diffs[0]
	fields := strings.SplitN(detail, " ", 3)
	if len(fields) >= 2 {
		metric = strings.TrimSuffix(fields[1], ":")
	}
	return metric, detail
}

// checkPackedVsStreaming replays the cell from the live generator
// instead of the packed buffer: materialization must be a perfect
// recording (the PR 3 contract, previously a one-off sim test).
func checkPackedVsStreaming(ctx context.Context, env *cellEnv, rep *verif.DiffReport) error {
	src, err := workload.Make(env.cell.Workload, env.cell.Seed)
	if err != nil {
		return err
	}
	s := env.newSim([]trace.Source{trace.Limit(src, env.cell.Instructions)})
	res, err := s.RunCtx(ctx, 0)
	if err != nil {
		return err
	}
	return env.compareExact(rep, "packed-vs-streaming", "streaming generator", res)
}

// checkPool1VsN pushes the cell through runner.Pool at parallelism 1
// and N (several copies, so scheduling actually interleaves): worker
// count must never leak into results, and both must match the direct
// baseline (the old pool determinism test, folded in).
func checkPool1VsN(ctx context.Context, env *cellEnv, rep *verif.DiffReport) error {
	par := env.opts.PoolParallelism
	if par <= 1 {
		par = 4
	}
	const copies = 3
	jobs := make([]runner.Job, copies)
	for i := range jobs {
		jobs[i] = runner.Job{
			Name:         fmt.Sprintf("%s#%d", env.cell.Name(), i),
			Config:       env.cfg,
			Source:       runner.Packed(env.packed),
			Instructions: env.cell.Instructions,
		}
	}
	run := func(p int) ([][]byte, error) {
		results := (&runner.Pool{Parallelism: p}).Run(ctx, jobs)
		out := make([][]byte, len(results))
		for i, r := range results {
			if r.Err != nil {
				return nil, r.Err
			}
			js, err := r.Res.StatsJSON()
			if err != nil {
				return nil, err
			}
			out[i] = js
		}
		return out, nil
	}
	one, err := run(1)
	if err != nil {
		return err
	}
	many, err := run(par)
	if err != nil {
		return err
	}
	for i := range jobs {
		if string(one[i]) != string(many[i]) {
			rep.Addf("pool-1-vs-n", env.cell.Name(), "",
				"job %d differs between Pool{1} and Pool{%d}", i, par)
		}
		if string(one[i]) != string(env.baseJSON) {
			rep.Addf("pool-1-vs-n", env.cell.Name(), "",
				"pooled job %d differs from direct baseline run", i)
		}
	}
	return nil
}

// checkFastVsInstrumented forces the instrumented cycle loop (the one
// EventSink attachment selects) on a run with no sink attached and
// compares it to the fast-core baseline: the specialized replay loop
// in sim/fast.go must be invisible in the stats, byte for byte. This
// is the machine-checked proof the fast core's doc comment points at.
func checkFastVsInstrumented(ctx context.Context, env *cellEnv, rep *verif.DiffReport) error {
	if !env.base.FastCore {
		rep.Addf("fast-vs-instrumented", env.cell.Name(), "",
			"baseline run did not take the fast core despite having no sink")
	}
	cur := env.packed.Cursor()
	s := env.newSim([]trace.Source{&cur})
	s.ForceInstrumentedCore()
	res, err := s.RunCtx(ctx, 0)
	if err != nil {
		return err
	}
	if res.FastCore {
		rep.Addf("fast-vs-instrumented", env.cell.Name(), "",
			"run with ForceInstrumentedCore still reports FastCore")
	}
	return env.compareExact(rep, "fast-vs-instrumented", "instrumented core", res)
}

// checkRunVsRunCtx runs the cell with a live, never-firing cancellable
// context: the ctx-poll branch of the cycle loop must be invisible in
// the results.
func checkRunVsRunCtx(ctx context.Context, env *cellEnv, rep *verif.DiffReport) error {
	// A derived cancelable context has a non-nil Done channel, so the
	// loop actually takes the polling path (unlike context.Background).
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	cur := env.packed.Cursor()
	res, err := env.newSim([]trace.Source{&cur}).RunCtx(cctx, 0)
	if err != nil {
		return err
	}
	if res.Truncated {
		rep.Addf("run-vs-runctx", env.cell.Name(), "",
			"RunCtx with a never-firing context reported Truncated")
	}
	return env.compareExact(rep, "run-vs-runctx", "RunCtx(cancellable ctx)", res)
}

// checkFreshVsReset runs the streaming source once, rewinds it with
// Reset (workload.Exec slot reuse), and runs a fresh simulation over
// the reused source: state reuse must replay the identical stream.
func checkFreshVsReset(ctx context.Context, env *cellEnv, rep *verif.DiffReport) error {
	src, err := workload.Make(env.cell.Workload, env.cell.Seed)
	if err != nil {
		return err
	}
	rsrc, ok := src.(trace.Resetter)
	if !ok {
		// No resettable generator: fall back to cursor reset so the
		// pair still exercises reuse.
		cur := env.packed.Cursor()
		if _, err := sim.New(env.cfg, []trace.Source{&cur}).RunCtx(ctx, 0); err != nil {
			return err
		}
		cur.Reset()
		res, err := env.newSim([]trace.Source{&cur}).RunCtx(ctx, 0)
		if err != nil {
			return err
		}
		return env.compareExact(rep, "fresh-vs-reset", "reset cursor reuse", res)
	}
	// First use: drain the budget through a throwaway run.
	if _, err := sim.New(env.cfg, []trace.Source{trace.Limit(src, env.cell.Instructions)}).RunCtx(ctx, 0); err != nil {
		return err
	}
	rsrc.Reset()
	res, err := env.newSim([]trace.Source{trace.Limit(src, env.cell.Instructions)}).RunCtx(ctx, 0)
	if err != nil {
		return err
	}
	// The reset source must agree with the packed baseline, which was
	// materialized from a fresh generator: reset == fresh.
	return env.compareExact(rep, "fresh-vs-reset", "generator Reset reuse", res)
}

// histTotal sums a histogram's bucket counts (= observations).
func histTotal(h metrics.Hist) int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// countSink tallies the event log by kind and thread.
type countSink struct {
	predicts int64
	fills    int64
	resolves map[int]int64
	wrong    map[int]int64
	dynamic  map[int]int64
	restarts map[int]int64
}

func newCountSink() *countSink {
	return &countSink{
		resolves: map[int]int64{}, wrong: map[int]int64{},
		dynamic: map[int]int64{}, restarts: map[int]int64{},
	}
}

func (s *countSink) Emit(e sim.Event) {
	switch e.Kind {
	case sim.EvPredict:
		s.predicts++
	case sim.EvResolve:
		s.resolves[e.Thread]++
		if !e.Correct {
			s.wrong[e.Thread]++
		}
		if e.Dynamic {
			s.dynamic[e.Thread]++
		}
	case sim.EvRestart:
		s.restarts[e.Thread]++
	case sim.EvFill:
		s.fills++
	}
}

// checkEventReplay attaches an event sink, reruns the cell, and
// crosschecks two ways: attaching the sink must not change the stats
// JSON at all, and the headline counters reconstructed from the event
// stream must equal the Result's aggregates — the decoupled-monitor
// idea of §VII applied to the simulator's own observability layer.
func checkEventReplay(ctx context.Context, env *cellEnv, rep *verif.DiffReport) error {
	const check = "event-replay"
	cur := env.packed.Cursor()
	s := env.newSim([]trace.Source{&cur})
	sink := newCountSink()
	s.SetEventSink(sink)
	res, err := s.RunCtx(ctx, 0)
	if err != nil {
		return err
	}
	if err := env.compareExact(rep, check, "run with event sink attached", res); err != nil {
		return err
	}
	cell := env.cell.Name()
	if sink.predicts != res.Core.Predictions {
		rep.Addf(check, cell, "core.predictions",
			"event log has %d predict events, counters say %d", sink.predicts, res.Core.Predictions)
	}
	for t, st := range res.Threads {
		pfx := fmt.Sprintf("thread%d.", t)
		if sink.resolves[t] != st.Branches {
			rep.Addf(check, cell, pfx+"branches",
				"event log has %d resolves, counters say %d branches", sink.resolves[t], st.Branches)
		}
		if sink.wrong[t] != st.Mispredicts() {
			rep.Addf(check, cell, pfx+"mispredicts",
				"event log has %d incorrect resolves, counters say %d mispredicts", sink.wrong[t], st.Mispredicts())
		}
		if sink.dynamic[t] != st.DynamicPredicted {
			rep.Addf(check, cell, pfx+"dynamic_predicted",
				"event log has %d dynamic resolves, counters say %d", sink.dynamic[t], st.DynamicPredicted)
		}
		if got, want := sink.restarts[t], histTotal(st.RestartHist); got != want {
			rep.Addf(check, cell, pfx+"restart_hist",
				"event log has %d restarts, restart histogram holds %d", got, want)
		}
	}
	return nil
}
