package dirpred

import (
	"testing"

	"zbp/internal/history"
	"zbp/internal/zarch"
)

func gpvFromBits(bits uint64) history.GPV {
	// Build a GPV whose low bits approximate the given pattern by
	// pushing addresses with known 2-bit hashes. BranchGPV(addr) folds
	// addr>>1 to 2 bits, so addresses 0, 2, 4, 6 give hashes 0..3.
	g := history.New(17)
	for i := 16; i >= 0; i-- {
		twoBits := bits >> (2 * i) & 3
		g = g.Push(zarch.Addr(twoBits * 2))
	}
	return g
}

func TestPerceptronLearnsSingleBit(t *testing.T) {
	p := NewPerceptron(DefaultPercConfig())
	addr := zarch.Addr(0x1000)
	if !p.TryInstall(addr) {
		t.Fatal("install failed on empty table")
	}
	// Direction = GPV bit 0 (the youngest branch's low hash bit).
	for i := 0; i < 500; i++ {
		bits := uint64(i) * 0x9e37
		g := gpvFromBits(bits)
		taken := g.Bit(0)
		p.Train(addr, g, taken)
	}
	correct, total := 0, 0
	for i := 500; i < 700; i++ {
		bits := uint64(i) * 0x9e37
		g := gpvFromBits(bits)
		res := p.Lookup(addr, g)
		if !res.Hit {
			t.Fatal("trained entry missing")
		}
		total++
		if res.Taken == g.Bit(0) {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("single-bit accuracy = %.2f", acc)
	}
}

func TestPerceptronProtectionLimit(t *testing.T) {
	cfg := DefaultPercConfig()
	cfg.Protection = 3
	p := NewPerceptron(cfg)
	// Fill one row's two ways.
	base := zarch.Addr(0x1000)
	rowStride := zarch.Addr(1) << (1 + cfg.RowBits) // same row, different tag
	a, b := base, base+rowStride
	p.TryInstall(a)
	p.TryInstall(b)
	// A third branch must fail Protection times before evicting.
	c := base + 2*rowStride
	fails := 0
	for !p.TryInstall(c) {
		fails++
		if fails > 10 {
			t.Fatal("protection never expired")
		}
	}
	if fails != int(cfg.Protection) {
		t.Errorf("install failed %d times, want %d", fails, cfg.Protection)
	}
	if !p.Has(c) {
		t.Error("c not installed after protection expiry")
	}
	if p.Has(a) && p.Has(b) {
		t.Error("no victim was evicted")
	}
}

func TestPerceptronUsefulnessGatesProvider(t *testing.T) {
	p := NewPerceptron(DefaultPercConfig())
	addr := zarch.Addr(0x2000)
	p.TryInstall(addr)
	g := history.New(17).Push(0x10)
	if res := p.Lookup(addr, g); res.Useful {
		t.Fatal("fresh entry already useful")
	}
	// Perceptron right while provider wrong: usefulness climbs to the
	// provider threshold.
	for i := 0; i < 20; i++ {
		p.UsefulDelta(addr, true, false)
	}
	if res := p.Lookup(addr, g); !res.Useful {
		t.Fatal("usefulness never crossed the provider threshold")
	}
	// Demotion: provider right, perceptron wrong.
	for i := 0; i < 20; i++ {
		p.UsefulDelta(addr, false, true)
	}
	if res := p.Lookup(addr, g); res.Useful {
		t.Error("usefulness did not demote")
	}
}

func TestPerceptronLowThresholdLearning(t *testing.T) {
	cfg := DefaultPercConfig()
	p := NewPerceptron(cfg)
	addr := zarch.Addr(0x3000)
	p.TryInstall(addr)
	// Both wrong: usefulness still increments while below LowThreshold.
	for i := 0; i < int(cfg.LowThreshold); i++ {
		p.UsefulDelta(addr, false, false)
	}
	if got := p.Usefulness(addr); got != int(cfg.LowThreshold) {
		t.Errorf("usefulness = %d, want %d", got, cfg.LowThreshold)
	}
	// At the threshold, both-wrong no longer increments.
	p.UsefulDelta(addr, false, false)
	if got := p.Usefulness(addr); got != int(cfg.LowThreshold) {
		t.Errorf("usefulness moved past low threshold: %d", got)
	}
}

func TestPerceptronVirtualizationRetargets(t *testing.T) {
	cfg := DefaultPercConfig()
	cfg.VirtualizePeriod = 8
	p := NewPerceptron(cfg)
	addr := zarch.Addr(0x4000)
	p.TryInstall(addr)
	// Train with a direction correlated to an ODD GPV bit (the
	// alternate candidate of weight 0): before virtualization the
	// watched even bits carry no signal, so weights hover near zero and
	// get re-virtualized; afterwards accuracy improves.
	train := func(n int) {
		for i := 0; i < n; i++ {
			bits := uint64(i) * 0x5bd1e995
			g := gpvFromBits(bits)
			p.Train(addr, g, g.Bit(1))
		}
	}
	train(400)
	correct, total := 0, 0
	for i := 400; i < 600; i++ {
		bits := uint64(i) * 0x5bd1e995
		g := gpvFromBits(bits)
		res := p.Lookup(addr, g)
		total++
		if res.Taken == g.Bit(1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.75 {
		t.Errorf("post-virtualization accuracy = %.2f", acc)
	}
}

func TestPerceptronDuplicateInstall(t *testing.T) {
	p := NewPerceptron(DefaultPercConfig())
	addr := zarch.Addr(0x5000)
	if !p.TryInstall(addr) {
		t.Fatal("first install failed")
	}
	if p.TryInstall(addr) {
		t.Error("duplicate install succeeded")
	}
}

func TestPerceptronEntries(t *testing.T) {
	p := NewPerceptron(DefaultPercConfig())
	if p.Entries() != 32 {
		t.Errorf("Entries = %d, want 32 (paper §V)", p.Entries())
	}
}
