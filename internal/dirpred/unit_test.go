package dirpred

import (
	"testing"

	"zbp/internal/history"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

func z15Unit() *Unit { return New(DefaultZ15()) }

func in(addr zarch.Addr, g history.GPV, seq uint64, bht sat.Counter2, bidir bool) Input {
	return Input{
		Addr: addr, Way: 0, GPV: g, Seq: seq,
		Conditional: true, Bidirectional: bidir, BHT: bht, AllowAux: true,
	}
}

func TestUnconditionalAlwaysTaken(t *testing.T) {
	u := z15Unit()
	sel := u.Select(Input{Addr: 0x1000, Conditional: false, AllowAux: true})
	if !sel.Taken || sel.Provider != ProvNone {
		t.Fatalf("unconditional: %+v", sel)
	}
}

func TestBHTProviderWhenNotBidirectional(t *testing.T) {
	u := z15Unit()
	g := history.New(17)
	sel := u.Select(in(0x1000, g, 1, sat.StrongT, false))
	if sel.Provider != ProvBHT || !sel.Taken {
		t.Fatalf("strong-taken BHT: %+v", sel)
	}
	sel = u.Select(in(0x1000, g, 2, sat.StrongNT, false))
	if sel.Provider != ProvBHT || sel.Taken {
		t.Fatalf("strong-NT BHT: %+v", sel)
	}
}

func TestSBHTStrengthensWeakPrediction(t *testing.T) {
	u := z15Unit()
	g := history.New(17)
	// First weak prediction installs an SBHT entry...
	s1 := u.Select(in(0x1000, g, 1, sat.WeakT, false))
	if s1.Provider != ProvBHT || !s1.Taken {
		t.Fatalf("first weak: %+v", s1)
	}
	// ...the next in-flight instance sees the override.
	s2 := u.Select(in(0x1000, g, 2, sat.WeakT, false))
	if s2.Provider != ProvSBHT || !s2.Taken {
		t.Fatalf("second weak: %+v", s2)
	}
	// Completion of the installer removes the entry.
	u.Resolve(s1, true)
	s3 := u.Select(in(0x1000, g, 3, sat.WeakT, false))
	if s3.Provider != ProvSBHT {
		// s2's own weak-install may still be live; complete it too.
		u.Resolve(s2, true)
		s3 = u.Select(in(0x1000, g, 4, sat.WeakT, false))
		_ = s3
	}
}

func TestSBHTFlush(t *testing.T) {
	u := z15Unit()
	g := history.New(17)
	u.Select(in(0x1000, g, 5, sat.WeakT, false))
	u.Flush(5)
	sel := u.Select(in(0x1000, g, 6, sat.WeakT, false))
	if sel.Provider != ProvBHT {
		t.Fatalf("flushed SBHT still overriding: %+v", sel)
	}
}

func TestAuxGatedByBidirectional(t *testing.T) {
	u := z15Unit()
	g := history.New(17)
	addr := zarch.Addr(0x2000)
	// Mispredict installs PHT entries only when resolution happens; but
	// even with installed entries, non-bidirectional branches must not
	// consult the PHT.
	sel := u.Select(in(addr, g, 1, sat.StrongNT, false))
	u.Resolve(sel, true) // mispredict -> PHT/perceptron install attempts
	sel2 := u.Select(in(addr, g, 2, sat.StrongNT, false))
	if sel2.Provider != ProvBHT {
		t.Fatalf("non-bidirectional consulted aux: %v", sel2.Provider)
	}
	// Bidirectional allows the PHT hit to provide.
	sel3 := u.Select(in(addr, g, 3, sat.StrongNT, true))
	if sel3.Provider != ProvPHTShort && sel3.Provider != ProvPHTLong {
		t.Fatalf("bidirectional did not consult PHT: %v", sel3.Provider)
	}
	if !sel3.Taken {
		t.Error("PHT entry should predict the corrected direction (taken)")
	}
}

func TestAllowAuxFalseForcesBHT(t *testing.T) {
	u := z15Unit()
	g := history.New(17)
	addr := zarch.Addr(0x2000)
	sel := u.Select(in(addr, g, 1, sat.StrongNT, true))
	u.Resolve(sel, true)
	i := in(addr, g, 2, sat.StrongNT, true)
	i.AllowAux = false
	sel2 := u.Select(i)
	if sel2.Provider != ProvBHT {
		t.Fatalf("powered-down aux still provided: %v", sel2.Provider)
	}
}

// trainPattern drives the unit through a repeating direction sequence
// on one branch, mimicking the predict-resolve loop, and returns the
// accuracy over the last half.
func trainPattern(u *Unit, addr zarch.Addr, pattern []bool, iters int) float64 {
	g := history.New(17)
	bht := sat.WeakT
	correct, total := 0, 0
	seq := uint64(0)
	for it := 0; it < iters; it++ {
		for _, taken := range pattern {
			seq++
			sel := u.Select(in(addr, g, seq, bht, true))
			if it >= iters/2 {
				total++
				if sel.Taken == taken {
					correct++
				}
			}
			u.Resolve(sel, taken)
			bht = bht.Update(taken)
			if taken {
				g = g.Push(addr)
			}
		}
		// A second branch's taken outcome keeps the GPV moving even in
		// all-not-taken stretches.
		g = g.Push(addr + 0x40)
	}
	return float64(correct) / float64(total)
}

func TestPHTLearnsPattern(t *testing.T) {
	u := z15Unit()
	// Period-3 pattern is hopeless for a 2-bit BHT but trivial for a
	// history-indexed PHT.
	acc := trainPattern(u, 0x3000, []bool{true, true, false}, 300)
	if acc < 0.95 {
		t.Errorf("PHT accuracy on T-T-N pattern = %.3f, want >= 0.95", acc)
	}
	if u.Stats().PHTInstalls == 0 {
		t.Error("no PHT installs recorded")
	}
}

func TestBHTAloneFailsPattern(t *testing.T) {
	cfg := DefaultZ15()
	cfg.PHTEnabled = false
	cfg.PerceptronEnabled = false
	u := New(cfg)
	acc := trainPattern(u, 0x3000, []bool{true, true, false}, 300)
	if acc > 0.9 {
		t.Errorf("BHT-only accuracy on T-T-N = %.3f, expected poor", acc)
	}
}

func TestSingleTableConfig(t *testing.T) {
	cfg := DefaultZ15()
	cfg.TwoTables = false
	u := New(cfg)
	acc := trainPattern(u, 0x3000, []bool{true, false}, 300)
	if acc < 0.9 {
		t.Errorf("single-PHT accuracy on T-N = %.3f", acc)
	}
	// Long-table provider must never appear.
	if u.Stats().Issued[ProvPHTLong] != 0 {
		t.Error("single-table config issued long-table predictions")
	}
}

func TestProviderStatsAccumulate(t *testing.T) {
	u := z15Unit()
	trainPattern(u, 0x4000, []bool{true, true, false}, 100)
	st := u.Stats()
	var issued int64
	for _, v := range st.Issued {
		issued += v
	}
	if issued == 0 {
		t.Fatal("no issued stats")
	}
	if st.Issued[ProvBHT]+st.Issued[ProvSBHT] == 0 {
		t.Error("BHT never issued")
	}
}

func TestPerceptronLearnsSparseLag(t *testing.T) {
	// Direction = GPV parity-ish signal: taken iff a specific past
	// branch was pushed. Construct: branch B's direction equals whether
	// branch A (address X) was taken 1 step ago. Encode via GPV pushes.
	u := z15Unit()
	g := history.New(17)
	addrA, addrB := zarch.Addr(0x5000), zarch.Addr(0x5100)
	bht := sat.WeakT
	seq := uint64(0)
	correct, total := 0, 0
	rngState := uint64(12345)
	for it := 0; it < 4000; it++ {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		aTaken := rngState>>62&1 == 1
		if aTaken {
			g = g.Push(addrA)
		} else {
			g = g.Push(addrA + 0x40) // different path bit when not taken
		}
		seq++
		sel := u.Select(in(addrB, g, seq, bht, true))
		taken := aTaken
		if it > 3000 {
			total++
			if sel.Taken == taken {
				correct++
			}
		}
		u.Resolve(sel, taken)
		bht = bht.Update(taken)
		if taken {
			g = g.Push(addrB)
		}
	}
	acc := float64(correct) / float64(total)
	// TAGE or perceptron should capture this; accuracy must beat a
	// biased-coin baseline decisively.
	if acc < 0.8 {
		t.Errorf("correlated-branch accuracy = %.3f", acc)
	}
}

func TestPerceptronInstallAndPromotion(t *testing.T) {
	cfg := DefaultZ15()
	cfg.PHTEnabled = false // isolate the perceptron
	u := New(cfg)
	g := history.New(17)
	addr := zarch.Addr(0x6000)
	bht := sat.WeakT
	seq := uint64(0)
	// Alternate directions => BHT mispredicts forever; perceptron should
	// be installed, learn the alternation from its own history bit, gain
	// usefulness, and take over as provider.
	sawPerc := false
	taken := false
	for it := 0; it < 3000; it++ {
		taken = !taken
		seq++
		sel := u.Select(in(addr, g, seq, bht, true))
		if sel.Provider == ProvPerceptron {
			sawPerc = true
		}
		u.Resolve(sel, taken)
		bht = bht.Update(taken)
		if taken {
			g = g.Push(addr)
		} else {
			g = g.Push(addr + 0x80)
		}
	}
	if !u.PercHas(addr) {
		t.Fatal("perceptron never installed the hard branch")
	}
	if !sawPerc {
		t.Error("perceptron never became provider")
	}
}

func TestWeakFilteringCounts(t *testing.T) {
	// Force many weak PHT predictions wrong so the weak counter drops
	// below threshold and filtering kicks in.
	u := z15Unit()
	g := history.New(17)
	addr := zarch.Addr(0x7000)
	bht := sat.StrongT
	seq := uint64(0)
	rngState := uint64(999)
	for it := 0; it < 4000; it++ {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		taken := rngState>>61&3 != 0 // 75% taken, noisy
		seq++
		sel := u.Select(in(addr, g, seq, bht, true))
		u.Resolve(sel, taken)
		bht = bht.Update(taken)
		g = g.Push(zarch.Addr(0x8000 + (rngState>>55&0xff)<<6)) // churn history
	}
	// Not asserting a specific count; just require the machinery moved.
	st := u.Stats()
	if st.PHTInstalls == 0 {
		t.Error("noisy branch never installed into PHT")
	}
}

func TestProviderString(t *testing.T) {
	if ProvPerceptron.String() != "perceptron" || ProvBHT.String() != "bht" {
		t.Error("provider names wrong")
	}
	if Provider(99).String() != "provider(?)" {
		t.Error("out-of-range provider name")
	}
}

func TestNewBHT(t *testing.T) {
	if NewBHT(sat.WeakT, true) != sat.StrongT || NewBHT(sat.WeakT, false) != sat.WeakNT {
		t.Error("NewBHT wrong")
	}
}

func TestSpecDirCapacityAndFlush(t *testing.T) {
	s := NewSpecDir(2)
	s.Install(0x100, true, 1)
	s.Install(0x200, false, 2)
	s.Install(0x300, true, 3) // evicts oldest
	if _, ok := s.Lookup(0x100); ok {
		t.Error("oldest entry survived capacity eviction")
	}
	if d, ok := s.Lookup(0x200); !ok || d {
		t.Error("entry 0x200 wrong")
	}
	s.Flush(3)
	if _, ok := s.Lookup(0x300); ok {
		t.Error("Flush(3) kept seq-3 entry")
	}
	if _, ok := s.Lookup(0x200); !ok {
		t.Error("Flush(3) removed seq-2 entry")
	}
	s.Complete(2)
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
	// Disabled tracker.
	d := NewSpecDir(0)
	d.Install(0x1, true, 1)
	if _, ok := d.Lookup(0x1); ok {
		t.Error("disabled SpecDir stored an entry")
	}
}
