package dirpred

import (
	"zbp/internal/history"
	"zbp/internal/metrics"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

// Config parameterizes the direction-prediction unit.
type Config struct {
	// PHTEnabled turns the tagged pattern history tables on.
	PHTEnabled bool
	// TwoTables selects the z15 TAGE arrangement (short + long table);
	// false models the single tagged PHT used z196..z14 (§V).
	TwoTables bool
	// PHT geometry: rows per way, ways (mirrors BTB1 ways), tag width.
	PHTRowBits uint
	PHTWays    int
	PHTTagBits uint
	// ShortHist/LongHist are the GPV depths folded into each table's
	// index (9 and 17 on z15).
	ShortHist int
	LongHist  int
	// PHTUsefulMax saturates the per-entry usefulness counter.
	PHTUsefulMax uint8
	// WeakMax/WeakThreshold parameterize the weak-filtering counter: a
	// weak TAGE prediction may provide only while the counter is at or
	// above the threshold (§V).
	WeakMax       uint8
	WeakThreshold uint8
	// SpecEntries sizes the SBHT and SPHT (0 disables both, §IV).
	SpecEntries int
	// WayBanked selects the literal physical arrangement ("512 rows
	// deep per BTB1 way", §V): the PHT bank is chosen by the hitting
	// BTB1 way. Banking exists for parallel readout of all ways; as an
	// indexing function it loses a branch's pattern state whenever the
	// branch migrates ways, which at simulation scale (small hot sets,
	// heavy thrash) is far more frequent than on the real machine. The
	// default models a unified PHT indexed by address and history only;
	// the banked mode remains available for the ablation study.
	WayBanked bool
	// PerceptronEnabled turns the neural predictor on (z14+, §V).
	PerceptronEnabled bool
	Perc              PercConfig
}

// DefaultZ15 returns the z15 direction-unit parameters.
func DefaultZ15() Config {
	return Config{
		PHTEnabled: true, TwoTables: true,
		PHTRowBits: 9, PHTWays: 8, PHTTagBits: 9,
		ShortHist: 9, LongHist: 17,
		PHTUsefulMax: 3, WeakMax: 15, WeakThreshold: 8,
		SpecEntries:       8,
		PerceptronEnabled: true, Perc: DefaultPercConfig(),
	}
}

// Stats counts direction-prediction events per provider.
type Stats struct {
	Issued  [numProviders]int64
	Correct [numProviders]int64
	// PHTInstalls / PercInstalls count successful allocations.
	PHTInstalls  int64
	PercInstalls int64
	// WeakFiltered counts weak TAGE predictions suppressed by the
	// weak-prediction counter.
	WeakFiltered int64
}

// Register exposes every counter under prefix (e.g. "dir"), with the
// per-provider arrays flattened to one name per provider.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	for p := ProvNone; p < numProviders; p++ {
		r.Counter(prefix+".issued."+p.String(), &s.Issued[p])
		r.Counter(prefix+".correct."+p.String(), &s.Correct[p])
	}
	r.Counter(prefix+".pht_installs", &s.PHTInstalls)
	r.Counter(prefix+".perc_installs", &s.PercInstalls)
	r.Counter(prefix+".weak_filtered", &s.WeakFiltered)
}

// Unit bundles the auxiliary direction predictors and implements the
// figure-8 provider selection.
type Unit struct {
	cfg    Config
	short  *phtTable
	long   *phtTable
	perc   *Perceptron
	sbht   *SpecDir
	spht   *SpecDir
	weakOK sat.UCounter
	rotor  int
	stats  Stats
}

// New returns a direction unit for cfg.
func New(cfg Config) *Unit {
	u := &Unit{cfg: cfg, sbht: NewSpecDir(cfg.SpecEntries), spht: NewSpecDir(cfg.SpecEntries)}
	if cfg.PHTEnabled {
		// Same total capacity either way: banked = rows x ways with the
		// bank picked by the hitting BTB1 way; unified = one bank with
		// correspondingly more rows.
		rowBits, ways := cfg.PHTRowBits, cfg.PHTWays
		if !cfg.WayBanked {
			for ways > 1 { // fold the way bits into the row index
				rowBits++
				ways >>= 1
			}
		}
		u.short = newPHTTable(rowBits, ways, cfg.PHTTagBits, cfg.ShortHist, cfg.PHTUsefulMax)
		if cfg.TwoTables {
			u.long = newPHTTable(rowBits, ways, cfg.PHTTagBits, cfg.LongHist, cfg.PHTUsefulMax)
		}
	}
	if cfg.PerceptronEnabled {
		u.perc = NewPerceptron(cfg.Perc)
	}
	u.weakOK = sat.NewU(cfg.WeakThreshold, cfg.WeakMax)
	return u
}

// Input is everything figure 8 consumes for one BTB1-hit branch.
type Input struct {
	Addr zarch.Addr
	// Way is the hitting BTB1 way; the PHT is organized per way.
	Way int
	GPV history.GPV
	// Seq is the GPQ sequence number of this prediction instance.
	Seq uint64
	// Conditional is false for branches marked unconditional in the
	// BTB1 (always predicted taken, no direction structures consulted).
	Conditional bool
	// Bidirectional is the BTB1 bit gating the auxiliary predictors.
	Bidirectional bool
	// BHT is the 2-bit counter stored in the BTB1 entry.
	BHT sat.Counter2
	// AllowAux is false when CPRED has powered down the PHT and
	// perceptron for this stream (§IV, §VI).
	AllowAux bool
}

// Selection is the outcome of figure 8, carried in the GPQ until
// completion; it snapshots everything the update logic needs.
type Selection struct {
	Addr          zarch.Addr
	Way           int
	GPV           history.GPV
	Seq           uint64
	Conditional   bool
	Bidirectional bool

	Taken    bool
	Provider Provider
	// AltTaken/AltProvider record what would have been predicted
	// without the primary provider (§V: the GPQ stores the alternate).
	AltTaken    bool
	AltProvider Provider

	// Snapshots for completion-time updates.
	BHTTaken  bool
	ShortHit  bool
	LongHit   bool
	ShortTkn  bool
	LongTkn   bool
	ShortWeak bool
	LongWeak  bool
	PercHit   bool
	PercTaken bool

	// Effective counter states at prediction time, carried in the GPQ.
	// Completion updates are computed FROM THESE (as the hardware does,
	// §IV) rather than read-modify-write: the long prediction-to-
	// completion gap means the live counter may have moved. The
	// speculative SBHT/SPHT assumption is already folded in (a weak
	// state assumed correct is recorded as its strengthened form), which
	// is precisely how the weak-loop-branch pathology is avoided.
	BHTState sat.Counter2
	ShortCtr sat.Counter2
	LongCtr  sat.Counter2
}

// Select implements the direction flowchart of figure 8.
func (u *Unit) Select(in Input) Selection {
	if !u.cfg.WayBanked {
		in.Way = 0
	}
	sel := Selection{
		Addr: in.Addr, Way: in.Way, GPV: in.GPV, Seq: in.Seq,
		Conditional: in.Conditional, Bidirectional: in.Bidirectional,
	}
	if !in.Conditional {
		sel.Taken = true
		sel.AltTaken = true
		sel.Provider = ProvNone
		sel.AltProvider = ProvNone
		return sel
	}

	// Base direction: BHT with speculative override.
	bhtTaken := in.BHT.Taken()
	bhtProv := ProvBHT
	sel.BHTState = in.BHT
	if dir, ok := u.sbht.Lookup(in.Addr); ok {
		bhtTaken = dir
		bhtProv = ProvSBHT
		// The override acts as the strengthened state of the assumed
		// direction for this instance's eventual write-back.
		if dir {
			sel.BHTState = sat.StrongT
		} else {
			sel.BHTState = sat.StrongNT
		}
	} else if in.BHT.Weak() {
		// A weak prediction is assumed correct and speculatively
		// strengthened for subsequent in-flight instances (§IV). The
		// strengthened write-back state applies only if the tracker
		// stored the assumption; without an SBHT the stale weak state
		// is what gets written back -- the pathology of §IV.
		if u.sbht.Install(in.Addr, bhtTaken, in.Seq) {
			sel.BHTState = in.BHT.Strengthen()
		}
	}
	sel.BHTTaken = bhtTaken

	if !in.Bidirectional || !in.AllowAux {
		sel.Taken = bhtTaken
		sel.Provider = bhtProv
		sel.AltTaken = bhtTaken
		sel.AltProvider = bhtProv
		return sel
	}

	// PHT consultation (speculative first, then main tables with weak
	// filtering).
	phtTaken, phtProv, phtHit := bhtTaken, bhtProv, false
	if u.cfg.PHTEnabled {
		if dir, ok := u.spht.Lookup(in.Addr); ok {
			phtTaken, phtProv, phtHit = dir, ProvSPHT, true
		}
		if sc, ok := u.short.lookup(in.Addr, in.Way, in.GPV); ok {
			sel.ShortHit, sel.ShortTkn, sel.ShortWeak = true, sc.Taken(), sc.Weak()
			sel.ShortCtr = sc
		}
		if u.long != nil {
			if lc, ok := u.long.lookup(in.Addr, in.Way, in.GPV); ok {
				sel.LongHit, sel.LongTkn, sel.LongWeak = true, lc.Taken(), lc.Weak()
				sel.LongCtr = lc
			}
		}
		if !phtHit {
			weakAllowed := u.weakOK.Get() >= u.cfg.WeakThreshold
			switch {
			case sel.LongHit && !sel.LongWeak:
				phtTaken, phtProv, phtHit = sel.LongTkn, ProvPHTLong, true
			case sel.LongHit && sel.LongWeak && sel.ShortHit && !sel.ShortWeak:
				// Long weak but short strong: short provides (§V).
				phtTaken, phtProv, phtHit = sel.ShortTkn, ProvPHTShort, true
			case sel.LongHit && sel.LongWeak && weakAllowed:
				phtTaken, phtProv, phtHit = sel.LongTkn, ProvPHTLong, true
			case sel.ShortHit && (!sel.ShortWeak || weakAllowed):
				phtTaken, phtProv, phtHit = sel.ShortTkn, ProvPHTShort, true
			case sel.LongHit || sel.ShortHit:
				u.stats.WeakFiltered++
			}
			if phtHit && (phtProv == ProvPHTShort && sel.ShortWeak ||
				phtProv == ProvPHTLong && sel.LongWeak) {
				// Weak prediction assumed correct: speculatively
				// strengthen via the SPHT (§IV), and record the
				// strengthened state for this instance's write-back.
				if u.spht.Install(in.Addr, phtTaken, in.Seq) {
					if phtProv == ProvPHTShort {
						sel.ShortCtr = sel.ShortCtr.Strengthen()
					} else {
						sel.LongCtr = sel.LongCtr.Strengthen()
					}
				}
			}
		}
	}

	// Perceptron gets first chance when hit and useful (§V, figure 8).
	if u.perc != nil {
		res := u.perc.Lookup(in.Addr, in.GPV)
		sel.PercHit, sel.PercTaken = res.Hit, res.Taken
		if res.Hit && res.Useful {
			sel.Taken = res.Taken
			sel.Provider = ProvPerceptron
			sel.AltTaken = phtTaken
			sel.AltProvider = phtProv
			return sel
		}
	}

	sel.Taken = phtTaken
	sel.Provider = phtProv
	// The alternate for a PHT provider is the BHT direction (§V); when
	// the PHT did not provide, provider and alternate coincide.
	sel.AltTaken = bhtTaken
	sel.AltProvider = bhtProv
	return sel
}

// Resolve applies the completion-time updates for a conditional branch
// prediction (usefulness, counters, installs, speculative cleanup).
// The caller owns the BTB1 BHT write-back; NewBHT computes it.
func (u *Unit) Resolve(sel Selection, taken bool) {
	u.sbht.Complete(sel.Seq)
	u.spht.Complete(sel.Seq)
	// Provider statistics count completed (architectural) predictions
	// only; wrong-path predictions killed by flushes never resolve.
	u.stats.Issued[sel.Provider]++
	correct := sel.Taken == taken
	if correct {
		u.stats.Correct[sel.Provider]++
	}
	if !sel.Conditional {
		return
	}

	// Weak-prediction confidence counter (§V).
	if sel.Provider == ProvPHTShort && sel.ShortWeak ||
		sel.Provider == ProvPHTLong && sel.LongWeak {
		if correct {
			u.weakOK = u.weakOK.Inc()
		} else {
			u.weakOK = u.weakOK.Dec()
		}
	}

	// TAGE usefulness (§V): provider correct & alternate wrong -> +1;
	// provider wrong & alternate correct -> -1; otherwise unchanged.
	if u.cfg.PHTEnabled {
		altCorrect := sel.AltTaken == taken
		switch sel.Provider {
		case ProvPHTShort:
			delta := 0
			if correct && !altCorrect {
				delta = 1
			} else if !correct && altCorrect {
				delta = -1
			}
			u.short.usefulnessDelta(sel.Addr, sel.Way, sel.GPV, delta)
			u.short.writeBack(sel.Addr, sel.Way, sel.GPV, sel.ShortCtr.Update(taken))
		case ProvPHTLong:
			delta := 0
			if correct && !altCorrect {
				delta = 1
			} else if !correct && altCorrect {
				delta = -1
			}
			u.long.usefulnessDelta(sel.Addr, sel.Way, sel.GPV, delta)
			u.long.writeBack(sel.Addr, sel.Way, sel.GPV, sel.LongCtr.Update(taken))
		default:
			// Non-provider hits still train toward the resolution so a
			// hit entry converges (strength update "even when correct",
			// §IV applies to the provider; background training keeps
			// tables coherent with delayed updates).
			if sel.ShortHit {
				u.short.writeBack(sel.Addr, sel.Way, sel.GPV, sel.ShortCtr.Update(taken))
			}
			if sel.LongHit && u.long != nil {
				u.long.writeBack(sel.Addr, sel.Way, sel.GPV, sel.LongCtr.Update(taken))
			}
		}
	}

	// Perceptron updates (§V).
	if u.perc != nil && sel.PercHit {
		u.perc.Train(sel.Addr, sel.GPV, taken)
		percRight := sel.PercTaken == taken
		var otherRight bool
		if sel.Provider == ProvPerceptron {
			otherRight = sel.AltTaken == taken
		} else {
			otherRight = correct
		}
		u.perc.UsefulDelta(sel.Addr, percRight, otherRight)
	}

	// Mispredict-driven installs (§V): the branch is now known
	// bidirectional; allocate PHT and perceptron entries.
	if !correct {
		u.installPHT(sel, taken)
		if u.perc != nil && !sel.PercHit {
			if u.perc.TryInstall(sel.Addr) {
				u.stats.PercInstalls++
			}
		}
	}
}

// installPHT allocates a TAGE entry per the §V policy.
func (u *Unit) installPHT(sel Selection, taken bool) {
	if !u.cfg.PHTEnabled {
		return
	}
	if u.long == nil {
		if u.short.tryInstall(sel.Addr, sel.Way, sel.GPV, taken) {
			u.stats.PHTInstalls++
		}
		return
	}
	if sel.Provider == ProvPHTShort {
		// Short table itself mispredicted: escalate to the long table.
		if u.long.tryInstall(sel.Addr, sel.Way, sel.GPV, taken) {
			u.stats.PHTInstalls++
		} else {
			u.long.usefulnessDelta(sel.Addr, sel.Way, sel.GPV, -1)
		}
		return
	}
	su := u.short.slotUseful(sel.Addr, sel.Way, sel.GPV)
	lu := u.long.slotUseful(sel.Addr, sel.Way, sel.GPV)
	var ok bool
	switch {
	case su == 0 && lu == 0:
		// Both free: favor short over long 2:1 (§V).
		u.rotor++
		if u.rotor%3 != 0 {
			ok = u.short.tryInstall(sel.Addr, sel.Way, sel.GPV, taken)
		} else {
			ok = u.long.tryInstall(sel.Addr, sel.Way, sel.GPV, taken)
		}
	case su == 0:
		ok = u.short.tryInstall(sel.Addr, sel.Way, sel.GPV, taken)
	case lu == 0:
		ok = u.long.tryInstall(sel.Addr, sel.Way, sel.GPV, taken)
	default:
		// No victim available: age both slots so the table cannot clog.
		u.short.usefulnessDelta(sel.Addr, sel.Way, sel.GPV, -1)
		u.long.usefulnessDelta(sel.Addr, sel.Way, sel.GPV, -1)
	}
	if ok {
		u.stats.PHTInstalls++
	}
}

// NewBHT returns the completion-time BHT write-back value for a
// conditional branch (§IV/§V): the 2-bit counter moves toward the
// resolved direction.
func NewBHT(old sat.Counter2, taken bool) sat.Counter2 { return old.Update(taken) }

// Flush discards speculative SBHT/SPHT entries installed by
// instances at or after seq (wrong-path cleanup).
func (u *Unit) Flush(seq uint64) {
	u.sbht.Flush(seq)
	u.spht.Flush(seq)
}

// Stats returns a copy of the counters.
func (u *Unit) Stats() Stats { return u.stats }

// RegisterMetrics registers the unit's live counters under prefix.
func (u *Unit) RegisterMetrics(r *metrics.Registry, prefix string) {
	u.stats.Register(r, prefix)
}

// PercHas exposes perceptron residency for tests and verification.
func (u *Unit) PercHas(addr zarch.Addr) bool {
	return u.perc != nil && u.perc.Has(addr)
}
