package dirpred

import (
	"testing"

	"zbp/internal/history"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

// fixedGPV returns a reproducible nonzero history.
func fixedGPV(seed int) history.GPV {
	g := history.New(17)
	for i := 0; i < 17; i++ {
		g = g.Push(zarch.Addr(0x1000 + (seed+i)*6))
	}
	return g
}

func TestPHTInstallOnlyOnMispredict(t *testing.T) {
	u := z15Unit()
	g := fixedGPV(1)
	addr := zarch.Addr(0x1000)
	// Correct predictions never install.
	for i := 0; i < 10; i++ {
		sel := u.Select(in(addr, g, uint64(i+1), sat.StrongT, true))
		u.Resolve(sel, true)
	}
	if u.Stats().PHTInstalls != 0 {
		t.Fatalf("installs on correct predictions: %d", u.Stats().PHTInstalls)
	}
	// One mispredict allocates.
	sel := u.Select(in(addr, g, 99, sat.StrongT, true))
	u.Resolve(sel, false)
	if u.Stats().PHTInstalls != 1 {
		t.Fatalf("installs after mispredict: %d", u.Stats().PHTInstalls)
	}
}

func TestPHTShortFavoredTwoToOne(t *testing.T) {
	// With both slots free, installs go short:long at 2:1 (§V). Drive
	// many mispredicts at distinct (addr, history) points and check hit
	// distribution via provider stats after re-prediction.
	u := z15Unit()
	shortInstalls, longInstalls := 0, 0
	for i := 0; i < 300; i++ {
		g := fixedGPV(i)
		addr := zarch.Addr(0x1000 + i*0x40)
		sel := u.Select(in(addr, g, uint64(i+1), sat.StrongT, true))
		u.Resolve(sel, false) // mispredict -> install
		// Check which table holds the new entry by re-selecting.
		sel2 := u.Select(in(addr, g, uint64(i+1000), sat.StrongT, true))
		switch {
		case sel2.ShortHit && !sel2.LongHit:
			shortInstalls++
		case sel2.LongHit && !sel2.ShortHit:
			longInstalls++
		}
	}
	if shortInstalls <= longInstalls {
		t.Fatalf("short=%d long=%d: 2:1 short bias missing", shortInstalls, longInstalls)
	}
	if longInstalls == 0 {
		t.Fatal("long table never chosen")
	}
	ratio := float64(shortInstalls) / float64(longInstalls)
	if ratio < 1.3 || ratio > 3.0 {
		t.Errorf("short:long install ratio = %.2f, want ~2", ratio)
	}
}

func TestPHTShortMispredictEscalatesToLong(t *testing.T) {
	u := z15Unit()
	g := fixedGPV(7)
	addr := zarch.Addr(0x2000)
	// Install into the short table (repeat until the 2:1 rotor picks it).
	for i := 0; ; i++ {
		sel := u.Select(in(addr, g, uint64(i+1), sat.StrongT, true))
		u.Resolve(sel, false)
		sel2 := u.Select(in(addr, g, uint64(i+500), sat.StrongT, true))
		if sel2.ShortHit {
			break
		}
		if i > 10 {
			t.Fatal("short entry never appeared")
		}
	}
	// Make the short entry strong-NT so it provides, then mispredict it.
	for i := 0; i < 3; i++ {
		sel := u.Select(in(addr, g, uint64(i+600), sat.StrongT, true))
		u.Resolve(sel, false)
	}
	sel := u.Select(in(addr, g, 700, sat.StrongT, true))
	if sel.Provider != ProvPHTShort {
		t.Skipf("short not provider (%v); escalation path not reachable here", sel.Provider)
	}
	u.Resolve(sel, true) // short was wrong -> attempt long install
	sel2 := u.Select(in(addr, g, 701, sat.StrongT, true))
	if !sel2.LongHit {
		t.Error("mispredicting short table did not escalate into long")
	}
}

func TestWeakFilteringBlocksColdWeakEntries(t *testing.T) {
	// Drive the weak-confidence counter to zero with wrong weak
	// predictions, then verify that a fresh (weak) PHT entry does not
	// provide.
	cfg := DefaultZ15()
	cfg.PerceptronEnabled = false
	u := New(cfg)
	g := fixedGPV(3)
	seq := uint64(0)
	// Create many fresh entries and mispredict them while weak: each
	// wrong weak provider decrements the confidence counter.
	for i := 0; i < 40; i++ {
		addr := zarch.Addr(0x3000 + i*0x80)
		seq++
		sel := u.Select(in(addr, g, seq, sat.StrongT, true))
		u.Resolve(sel, false) // install Init(false) = weak NT
		seq++
		sel = u.Select(in(addr, g, seq, sat.StrongT, true))
		u.Resolve(sel, true) // if PHT provided weakly, it was wrong
	}
	if u.Stats().WeakFiltered == 0 {
		t.Error("weak filtering never engaged")
	}
}

func TestUnconditionalNeverConsultsPHT(t *testing.T) {
	u := z15Unit()
	g := fixedGPV(5)
	sel := u.Select(Input{Addr: 0x4000, GPV: g, Seq: 1, Conditional: false,
		Bidirectional: true, AllowAux: true})
	if sel.ShortHit || sel.LongHit || sel.PercHit {
		t.Error("unconditional branch consulted aux structures")
	}
	if !sel.Taken {
		t.Error("unconditional predicted not-taken")
	}
}

func TestResolveCountsProviderAccuracy(t *testing.T) {
	u := z15Unit()
	g := fixedGPV(9)
	addr := zarch.Addr(0x5000)
	sel := u.Select(in(addr, g, 1, sat.StrongT, false))
	u.Resolve(sel, true)
	u.Resolve(u.Select(in(addr, g, 2, sat.StrongT, false)), false)
	st := u.Stats()
	if st.Issued[ProvBHT] != 2 || st.Correct[ProvBHT] != 1 {
		t.Errorf("BHT stats = %d/%d", st.Correct[ProvBHT], st.Issued[ProvBHT])
	}
}
