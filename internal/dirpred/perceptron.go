package dirpred

import (
	"zbp/internal/history"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

// Perceptron is the z15 neural auxiliary direction predictor (paper §V,
// patents US9442726/US9507598): a 16-row by 2-way table of 32 entries,
// each holding 17 signed weights. 2:1 virtualization maps the 34 GPV
// bits onto the 17 weights: each weight watches one of its two
// candidate history bits, and a poorly correlating weight is
// re-virtualized to the other candidate.
//
// An entry must earn its role: a new install carries a protection limit
// that shields it from replacement while it learns, and a usefulness
// counter that must exceed a global threshold before the perceptron
// becomes the direction provider.
type Perceptron struct {
	cfg  PercConfig
	rows [][]percEntry
}

// PercConfig parameterizes the perceptron.
type PercConfig struct {
	RowBits   uint  // log2 rows (4 -> 16 rows)
	Ways      int   // associativity (2)
	Weights   int   // weight count (17)
	Virtual   int   // GPV bits per weight (2 = "2:1 virtualization")
	TagBits   uint  // partial tag on branch address
	UsefulMax uint8 // usefulness saturation
	// ProviderThreshold is the global usefulness bar for becoming the
	// direction provider.
	ProviderThreshold uint8
	// LowThreshold: below it, usefulness is incremented even when both
	// perceptron and provider were wrong (helps young entries learn).
	LowThreshold uint8
	// Protection is the initial protection limit of a new entry.
	Protection uint8
	// VirtualizePeriod: every this-many trainings, weights with
	// magnitude <= VirtualizeMag are re-virtualized.
	VirtualizePeriod int
	VirtualizeMag    int
}

// DefaultPercConfig returns the z14/z15-style parameters.
func DefaultPercConfig() PercConfig {
	return PercConfig{
		RowBits: 4, Ways: 2, Weights: 17, Virtual: 2, TagBits: 12,
		UsefulMax: 15, ProviderThreshold: 8, LowThreshold: 4,
		Protection: 6, VirtualizePeriod: 64, VirtualizeMag: 1,
	}
}

type percEntry struct {
	valid      bool
	tag        uint64
	weights    []sat.Weight
	sel        []uint8 // which virtualized candidate bit each weight watches
	useful     sat.UCounter
	protection sat.UCounter
	trainings  int
}

// NewPerceptron returns an empty perceptron table.
func NewPerceptron(cfg PercConfig) *Perceptron {
	if cfg.Weights <= 0 || cfg.Ways <= 0 || cfg.Virtual <= 0 {
		panic("dirpred: invalid perceptron config")
	}
	p := &Perceptron{cfg: cfg}
	p.rows = make([][]percEntry, 1<<cfg.RowBits)
	for i := range p.rows {
		p.rows[i] = make([]percEntry, cfg.Ways)
	}
	return p
}

// Entries returns total capacity (32 on z15).
func (p *Perceptron) Entries() int { return len(p.rows) * p.cfg.Ways }

func (p *Perceptron) row(addr zarch.Addr) int {
	return int(uint64(addr) >> 1 & uint64(len(p.rows)-1))
}

func (p *Perceptron) tag(addr zarch.Addr) uint64 {
	return uint64(addr) >> (1 + p.cfg.RowBits) & (1<<p.cfg.TagBits - 1)
}

func (p *Perceptron) find(addr zarch.Addr) *percEntry {
	row := p.rows[p.row(addr)]
	tag := p.tag(addr)
	for w := range row {
		if row[w].valid && row[w].tag == tag {
			return &row[w]
		}
	}
	return nil
}

// gpvBitFor returns the history bit weight i currently watches.
func (p *Perceptron) gpvBitFor(e *percEntry, g history.GPV, i int) bool {
	bit := i*p.cfg.Virtual + int(e.sel[i])
	if bit >= g.Width() {
		bit = g.Width() - 1
	}
	return g.Bit(bit)
}

// PercResult is a perceptron lookup outcome.
type PercResult struct {
	Hit    bool
	Taken  bool
	Sum    int
	Useful bool // usefulness above the provider threshold
}

// Lookup evaluates the perceptron for a branch.
func (p *Perceptron) Lookup(addr zarch.Addr, g history.GPV) PercResult {
	e := p.find(addr)
	if e == nil {
		return PercResult{}
	}
	sum := 0
	for i := range e.weights {
		if p.gpvBitFor(e, g, i) {
			sum += int(e.weights[i])
		} else {
			sum -= int(e.weights[i])
		}
	}
	return PercResult{
		Hit:    true,
		Taken:  sum >= 0,
		Sum:    sum,
		Useful: e.useful.Get() >= p.cfg.ProviderThreshold,
	}
}

// Train updates weights toward the resolved direction using the
// prediction-time history snapshot: resolved taken increments weights
// whose watched GPV bit was 1 and decrements the rest; resolved
// not-taken does the opposite (§V). Periodically, weights whose
// magnitude stayed near zero are re-virtualized to their alternate
// candidate history bit.
func (p *Perceptron) Train(addr zarch.Addr, g history.GPV, taken bool) {
	e := p.find(addr)
	if e == nil {
		return
	}
	for i := range e.weights {
		bit := p.gpvBitFor(e, g, i)
		e.weights[i] = e.weights[i].Bump(bit == taken)
	}
	e.trainings++
	if p.cfg.VirtualizePeriod > 0 && e.trainings%p.cfg.VirtualizePeriod == 0 {
		for i := range e.weights {
			if e.weights[i].Abs() <= p.cfg.VirtualizeMag {
				e.sel[i] = (e.sel[i] + 1) % uint8(p.cfg.Virtual)
				e.weights[i] = 0
			}
		}
	}
}

// UsefulDelta adjusts the entry's usefulness after completion:
// perceptron right & provider wrong -> +1; perceptron wrong & provider
// right -> -1; both wrong and usefulness below LowThreshold -> +1.
func (p *Perceptron) UsefulDelta(addr zarch.Addr, percRight, providerRight bool) {
	e := p.find(addr)
	if e == nil {
		return
	}
	switch {
	case percRight && !providerRight:
		e.useful = e.useful.Inc()
	case !percRight && providerRight:
		e.useful = e.useful.Dec()
	case !percRight && !providerRight && e.useful.Get() < p.cfg.LowThreshold:
		e.useful = e.useful.Inc()
	}
}

// TryInstall attempts to allocate an entry for a hard-to-predict
// branch. The victim is the least-useful entry in the row whose
// protection limit is exhausted; every failed attempt decrements the
// candidates' protection (§V). Reports whether an entry was created.
func (p *Perceptron) TryInstall(addr zarch.Addr) bool {
	if p.find(addr) != nil {
		return false
	}
	row := p.rows[p.row(addr)]
	// Free way first.
	for w := range row {
		if !row[w].valid {
			row[w] = p.fresh(addr)
			return true
		}
	}
	// Least useful with zero protection.
	victim := -1
	for w := range row {
		if !row[w].protection.Zero() {
			row[w].protection = row[w].protection.Dec()
			continue
		}
		if victim == -1 || row[w].useful.Get() < row[victim].useful.Get() {
			victim = w
		}
	}
	if victim == -1 {
		return false
	}
	row[victim] = p.fresh(addr)
	return true
}

func (p *Perceptron) fresh(addr zarch.Addr) percEntry {
	return percEntry{
		valid:      true,
		tag:        p.tag(addr),
		weights:    make([]sat.Weight, p.cfg.Weights),
		sel:        make([]uint8, p.cfg.Weights),
		useful:     sat.NewU(0, p.cfg.UsefulMax),
		protection: sat.NewU(p.cfg.Protection, p.cfg.Protection),
	}
}

// Has reports whether addr currently has an entry (for tests).
func (p *Perceptron) Has(addr zarch.Addr) bool { return p.find(addr) != nil }

// Usefulness returns the usefulness value for addr, or -1 when absent
// (for tests and the verification harness).
func (p *Perceptron) Usefulness(addr zarch.Addr) int {
	e := p.find(addr)
	if e == nil {
		return -1
	}
	return int(e.useful.Get())
}
