// Package dirpred implements the z15 auxiliary direction predictors
// and the provider-selection policy of the paper's figure 8: the TAGE
// pattern history tables (short 9-branch and long 17-branch histories,
// §V), the speculative BHT/PHT weak-state trackers (§IV), and the
// 32-entry virtualized-weight perceptron (§V).
//
// The main BHT (a 2-bit counter per branch) lives inside the BTB1
// entry; this package consumes it as an input to selection and tells
// the owner what to write back at completion.
package dirpred

import (
	"zbp/internal/history"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

// Provider identifies the structure that supplied a direction
// prediction.
type Provider uint8

// Direction providers in figure-8 priority order.
const (
	// ProvNone marks non-conditional branches (direction is implied).
	ProvNone Provider = iota
	// ProvBHT is the 2-bit counter embedded in the BTB1.
	ProvBHT
	// ProvSBHT is the speculative BHT override.
	ProvSBHT
	// ProvPHTShort is the short-history TAGE table.
	ProvPHTShort
	// ProvPHTLong is the long-history TAGE table.
	ProvPHTLong
	// ProvSPHT is the speculative PHT override.
	ProvSPHT
	// ProvPerceptron is the neural auxiliary predictor.
	ProvPerceptron

	numProviders
)

var providerNames = [numProviders]string{
	"none", "bht", "sbht", "pht-short", "pht-long", "spht", "perceptron",
}

func (p Provider) String() string {
	if int(p) < len(providerNames) {
		return providerNames[p]
	}
	return "provider(?)"
}

// phtEntry is one tagged TAGE entry.
type phtEntry struct {
	valid  bool
	tag    uint64
	ctr    sat.Counter2
	useful sat.UCounter
}

// phtTable is one TAGE table: rows x ways (ways mirror the BTB1 ways,
// "512 rows deep per BTB1 way", §V).
type phtTable struct {
	rowBits uint
	tagBits uint
	hist    int // GPV branches folded into index/tag
	ways    [][]phtEntry
	umax    uint8
}

func newPHTTable(rowBits uint, ways int, tagBits uint, hist int, umax uint8) *phtTable {
	t := &phtTable{rowBits: rowBits, tagBits: tagBits, hist: hist, umax: umax}
	t.ways = make([][]phtEntry, ways)
	for w := range t.ways {
		t.ways[w] = make([]phtEntry, 1<<rowBits)
	}
	return t
}

func (t *phtTable) index(addr zarch.Addr, g history.GPV) int {
	return int(g.FoldIndex(addr, t.hist, t.rowBits))
}

func (t *phtTable) tag(addr zarch.Addr, g history.GPV) uint64 {
	return g.FoldTag(addr, t.hist, t.tagBits)
}

// lookup returns the entry state for (addr, way, history).
func (t *phtTable) lookup(addr zarch.Addr, way int, g history.GPV) (sat.Counter2, bool) {
	if way < 0 || way >= len(t.ways) {
		way = 0
	}
	e := &t.ways[way][t.index(addr, g)]
	if e.valid && e.tag == t.tag(addr, g) {
		return e.ctr, true
	}
	return 0, false
}

func (t *phtTable) at(addr zarch.Addr, way int, g history.GPV) *phtEntry {
	if way < 0 || way >= len(t.ways) {
		way = 0
	}
	return &t.ways[way][t.index(addr, g)]
}

// matches reports whether the entry still belongs to (addr, g); between
// prediction and completion it may have been replaced.
func (t *phtTable) matches(addr zarch.Addr, way int, g history.GPV) bool {
	e := t.at(addr, way, g)
	return e.valid && e.tag == t.tag(addr, g)
}

// writeBack stores the completion-computed counter state. The value is
// computed from the GPQ-snapshotted prediction-time state, not
// read-modify-write (§IV); see dirpred.Selection.
func (t *phtTable) writeBack(addr zarch.Addr, way int, g history.GPV, ctr sat.Counter2) {
	if e := t.at(addr, way, g); e.valid && e.tag == t.tag(addr, g) {
		e.ctr = ctr
	}
}

// usefulnessDelta applies +1/-1/0 to the entry's usefulness counter.
func (t *phtTable) usefulnessDelta(addr zarch.Addr, way int, g history.GPV, delta int) {
	e := t.at(addr, way, g)
	if !e.valid || e.tag != t.tag(addr, g) {
		return
	}
	switch {
	case delta > 0:
		e.useful = e.useful.Inc()
	case delta < 0:
		e.useful = e.useful.Dec()
	}
}

// tryInstall writes a fresh entry if the slot's usefulness is zero.
// Returns whether the install happened.
func (t *phtTable) tryInstall(addr zarch.Addr, way int, g history.GPV, taken bool) bool {
	e := t.at(addr, way, g)
	if e.valid && !e.useful.Zero() {
		return false
	}
	*e = phtEntry{
		valid:  true,
		tag:    t.tag(addr, g),
		ctr:    sat.Init(taken),
		useful: sat.NewU(0, t.umax),
	}
	return true
}

// slotUseful reports the usefulness value at the would-be install slot.
func (t *phtTable) slotUseful(addr zarch.Addr, way int, g history.GPV) uint8 {
	e := t.at(addr, way, g)
	if !e.valid {
		return 0
	}
	return e.useful.Get()
}
