package dirpred

import "zbp/internal/zarch"

// SpecDir is the speculative direction tracker used for both the SBHT
// and the SPHT (paper §IV). Because the gap between prediction and
// non-speculative completion is long, a weak 2-bit counter would be
// consulted repeatedly in its stale weak state by in-flight instances
// of the same branch. A SpecDir entry records the direction a weak
// prediction was assumed to take (strengthened), or the corrected
// direction after a mispredict, and overrides the underlying predictor
// until the installing instance completes or is flushed.
type SpecDir struct {
	entries  []specEntry
	capacity int
}

type specEntry struct {
	addr zarch.Addr
	dir  bool
	seq  uint64 // GPQ sequence of the installing branch instance
}

// NewSpecDir returns a tracker with the given capacity; capacity 0
// yields a disabled tracker whose Lookup never hits.
func NewSpecDir(capacity int) *SpecDir {
	return &SpecDir{capacity: capacity}
}

// Install records an assumed/corrected direction for addr, tagged with
// the installing instance's sequence number, and reports whether an
// entry was stored (a disabled tracker stores nothing, so no
// speculative strengthening may be assumed). An existing entry for the
// same address is replaced; otherwise the oldest entry makes room.
func (s *SpecDir) Install(addr zarch.Addr, dir bool, seq uint64) bool {
	if s.capacity == 0 {
		return false
	}
	for i := range s.entries {
		if s.entries[i].addr == addr {
			s.entries[i].dir = dir
			s.entries[i].seq = seq
			return true
		}
	}
	if len(s.entries) >= s.capacity {
		copy(s.entries, s.entries[1:])
		s.entries = s.entries[:len(s.entries)-1]
	}
	s.entries = append(s.entries, specEntry{addr: addr, dir: dir, seq: seq})
	return true
}

// Lookup returns the override direction for addr, if present.
func (s *SpecDir) Lookup(addr zarch.Addr) (bool, bool) {
	for i := range s.entries {
		if s.entries[i].addr == addr {
			return s.entries[i].dir, true
		}
	}
	return false, false
}

// Complete removes entries installed by the completing instance.
func (s *SpecDir) Complete(seq uint64) {
	s.removeIf(func(e specEntry) bool { return e.seq == seq })
}

// Flush removes entries installed by instances at or after seq (a
// pipeline flush kills the wrong-path installers).
func (s *SpecDir) Flush(seq uint64) {
	s.removeIf(func(e specEntry) bool { return e.seq >= seq })
}

func (s *SpecDir) removeIf(pred func(specEntry) bool) {
	out := s.entries[:0]
	for _, e := range s.entries {
		if !pred(e) {
			out = append(out, e)
		}
	}
	s.entries = out
}

// Len returns the number of live entries.
func (s *SpecDir) Len() int { return len(s.entries) }
