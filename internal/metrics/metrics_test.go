package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Row("alpha", 1)
	tab.Row("b", 2.5)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[3], "2.500") {
		t.Errorf("float formatting: %q", lines[3])
	}
	// Columns aligned: "value" column starts at same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") {
		t.Errorf("misaligned column:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	if Pct(1, 4) != "25.0%" {
		t.Errorf("Pct = %s", Pct(1, 4))
	}
	if Pct(1, 0) != "n/a" {
		t.Error("Pct with zero denominator")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 4) != 0.75 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
}

func TestDelta(t *testing.T) {
	if Delta(10, 7.5) != "-25.0%" {
		t.Errorf("Delta = %s", Delta(10, 7.5))
	}
	if Delta(0, 5) != "n/a" {
		t.Error("Delta with zero base")
	}
}
