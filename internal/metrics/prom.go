package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): counters as counter samples,
// gauges as gauge samples, and histograms as cumulative le-bucketed
// histogram series with a _count sum line. Metric names are sanitized
// to the Prometheus charset (dots become underscores); snapshot labels
// are attached to every sample. Output is deterministic: families are
// emitted in sorted name order.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	labels := promLabelString(s.Labels, "", "")

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", pn, pn, labels, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %s\n", pn, pn, labels, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := promLabelString(s.Labels, "le", strconv.FormatInt(bound, 10))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, le, cum); err != nil {
				return err
			}
		}
		// The overflow bucket: everything beyond the largest bound.
		if len(h.Counts) > len(h.Bounds) {
			cum += h.Counts[len(h.Counts)-1]
		}
		inf := promLabelString(s.Labels, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_count%s %d\n", pn, inf, cum, pn, labels, cum); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry metric name onto the Prometheus metric
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promLabelString renders a deterministic {k="v",...} label set from
// the snapshot labels plus one optional extra pair (used for le).
// Returns "" when there are no labels at all.
func promLabelString(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(k))
		b.WriteString(`="`)
		b.WriteString(promEscape(labels[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(promEscape(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the text exposition format.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// promFloat formats a sample value: shortest round-trip form, with the
// special values Prometheus expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
