package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SchemaVersion identifies the stats-JSON layout emitted by
// Snapshot. Bump it whenever a metric is renamed or removed, or the
// JSON shape changes; adding new metrics under new names is
// backward-compatible and does not require a bump.
const SchemaVersion = 1

// HistBuckets is the fixed bucket count of every Hist: seven bounded
// buckets plus one overflow bucket. Keeping the count fixed makes Hist
// a plain value type (copyable, comparable, race-free snapshots) that
// can live inside the per-component Stats structs.
const HistBuckets = 8

// Hist is a fixed-bucket histogram of int64 observations. Bucket i
// counts observations v with v <= Bounds[i] (and above the previous
// bound); the last bucket counts everything beyond the largest bound.
// The zero value is unusable — construct with NewHist so the bounds
// are set.
type Hist struct {
	Bounds [HistBuckets - 1]int64
	Counts [HistBuckets]int64
}

// NewHist returns a histogram over the given strictly ascending upper
// bounds. Exactly HistBuckets-1 bounds are required.
func NewHist(bounds ...int64) Hist {
	if len(bounds) != HistBuckets-1 {
		panic(fmt.Sprintf("metrics: NewHist needs %d bounds, got %d", HistBuckets-1, len(bounds)))
	}
	var h Hist
	for i, b := range bounds {
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: NewHist bounds not ascending at %d", i))
		}
		h.Bounds[i] = b
	}
	return h
}

// Observe counts one observation. It never allocates; the bucket scan
// is a handful of compares, cheap enough for per-event hot paths.
func (h *Hist) Observe(v int64) {
	for i := range h.Bounds {
		if v <= h.Bounds[i] {
			h.Counts[i]++
			return
		}
	}
	h.Counts[HistBuckets-1]++
}

// Total returns the number of observations.
func (h Hist) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Registry is a named index over a component tree's live counters,
// gauges and histograms: the machine-readable export path for
// everything the text reports render. Counters and histograms are
// registered by pointer so the hot path keeps bumping plain struct
// fields and pays nothing for the registry's existence; gauges are
// functions evaluated at snapshot time (derived metrics like MPKI,
// occupancy ratios). Not safe for concurrent mutation of the
// underlying values during Snapshot; snapshot after a run, or from the
// simulation's own goroutine.
type Registry struct {
	labels   map[string]string
	counters map[string]*int64
	gauges   map[string]func() float64
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		labels:   map[string]string{},
		counters: map[string]*int64{},
		gauges:   map[string]func() float64{},
		hists:    map[string]*Hist{},
	}
}

func (r *Registry) checkName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	if _, ok := r.counters[name]; ok {
		panic("metrics: duplicate metric " + name)
	}
	if _, ok := r.gauges[name]; ok {
		panic("metrics: duplicate metric " + name)
	}
	if _, ok := r.hists[name]; ok {
		panic("metrics: duplicate metric " + name)
	}
}

// Label attaches a key=value label describing the run (config name,
// workload, seed). Labels are carried verbatim into every snapshot.
func (r *Registry) Label(key, value string) { r.labels[key] = value }

// Counter registers a live int64 counter under name. The pointer must
// stay valid for the registry's lifetime. Panics on duplicate names so
// wiring mistakes fail loudly at construction, not as silent aliasing.
func (r *Registry) Counter(name string, v *int64) {
	r.checkName(name)
	if v == nil {
		panic("metrics: nil counter " + name)
	}
	r.counters[name] = v
}

// Gauge registers a derived float64 metric computed at snapshot time.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.checkName(name)
	if fn == nil {
		panic("metrics: nil gauge " + name)
	}
	r.gauges[name] = fn
}

// Hist registers a live histogram under name.
func (r *Registry) Hist(name string, h *Hist) {
	r.checkName(name)
	if h == nil {
		panic("metrics: nil histogram " + name)
	}
	r.hists[name] = h
}

// HistSnapshot is the serialized form of one histogram.
type HistSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
}

// Snapshot is a point-in-time copy of every registered metric,
// decoupled from the live pointers. Its JSON form is deterministic:
// encoding/json emits map keys in sorted order, and every value is an
// int64 or a shortest-round-trip float64, so identical runs serialize
// byte-identically — the property the golden harness and CI diffs
// build on.
type Snapshot struct {
	SchemaVersion int                     `json:"schema_version"`
	Labels        map[string]string       `json:"labels,omitempty"`
	Counters      map[string]int64        `json:"counters"`
	Gauges        map[string]float64      `json:"gauges,omitempty"`
	Histograms    map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		SchemaVersion: SchemaVersion,
		Counters:      make(map[string]int64, len(r.counters)),
	}
	if len(r.labels) > 0 {
		s.Labels = make(map[string]string, len(r.labels))
		for k, v := range r.labels {
			s.Labels[k] = v
		}
	}
	for name, p := range r.counters {
		s.Counters[name] = *p
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, fn := range r.gauges {
			s.Gauges[name] = fn()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = HistSnapshot{
				Bounds: append([]int64(nil), h.Bounds[:]...),
				Counts: append([]int64(nil), h.Counts[:]...),
			}
		}
	}
	return s
}

// MarshalJSON is the canonical serialized form: indented, sorted keys,
// trailing newline, suitable for golden files and CI diffing.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the canonical form to w.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := s.MarshalIndent()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// DiffSnapshots returns a sorted, human-readable list of metric
// differences between two snapshots (golden-test failure messages).
// Labels and schema version are compared too. An empty slice means the
// snapshots are equivalent.
func DiffSnapshots(a, b Snapshot) []string {
	var out []string
	if a.SchemaVersion != b.SchemaVersion {
		out = append(out, fmt.Sprintf("schema_version: %d != %d", a.SchemaVersion, b.SchemaVersion))
	}
	for _, k := range unionKeys(a.Labels, b.Labels) {
		av, aok := a.Labels[k]
		bv, bok := b.Labels[k]
		if aok != bok || av != bv {
			out = append(out, fmt.Sprintf("label %s: %q != %q", k, av, bv))
		}
	}
	for _, k := range unionKeys(a.Counters, b.Counters) {
		av, aok := a.Counters[k]
		bv, bok := b.Counters[k]
		if aok != bok || av != bv {
			out = append(out, fmt.Sprintf("counter %s: %d != %d", k, av, bv))
		}
	}
	for _, k := range unionKeys(a.Gauges, b.Gauges) {
		av, aok := a.Gauges[k]
		bv, bok := b.Gauges[k]
		if aok != bok || av != bv {
			out = append(out, fmt.Sprintf("gauge %s: %v != %v", k, av, bv))
		}
	}
	for _, k := range unionKeys(a.Histograms, b.Histograms) {
		av, aok := a.Histograms[k]
		bv, bok := b.Histograms[k]
		if aok != bok || !histEqual(av, bv) {
			out = append(out, fmt.Sprintf("histogram %s: %v != %v", k, av, bv))
		}
	}
	return out
}

func histEqual(a, b HistSnapshot) bool {
	if len(a.Bounds) != len(b.Bounds) || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return false
		}
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	return true
}

func unionKeys[M ~map[string]V, V any](a, b M) []string {
	set := make(map[string]bool, len(a)+len(b))
	for k := range a {
		set[k] = true
	}
	for k := range b {
		set[k] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
