package metrics

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSampleRe matches one exposition sample line:
// name{label="v",...} value
var promSampleRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? (NaN|[-+]?(Inf|[0-9].*))$`)

func promSnapshot(t *testing.T) Snapshot {
	t.Helper()
	reg := NewRegistry()
	reg.Label("config", "z15")
	reg.Label("weird", `va"l\ue`)
	c1, c2 := int64(42), int64(0)
	reg.Counter("sim.cycles", &c1)
	reg.Counter("core.searches", &c2)
	reg.Gauge("sim.mpki", func() float64 { return 4.25 })
	h := NewHist(1, 2, 4, 8, 16, 32, 64)
	for v := int64(0); v < 100; v++ {
		h.Observe(v)
	}
	reg.Hist("front.gap", &h)
	return reg.Snapshot()
}

func TestWritePrometheusParseable(t *testing.T) {
	var b strings.Builder
	if err := promSnapshot(t).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("output does not end in a newline")
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("unknown type in %q", line)
			}
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Errorf("unparseable sample line: %q", line)
		}
	}
}

func TestWritePrometheusContent(t *testing.T) {
	var b strings.Builder
	if err := promSnapshot(t).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sim_cycles counter\n",
		`sim_cycles{config="z15",weird="va\"l\\ue"} 42` + "\n",
		"# TYPE sim_mpki gauge\n",
		"sim_mpki{", "} 4.25\n",
		"# TYPE front_gap histogram\n",
		`le="1"`, `le="+Inf"`,
		"front_gap_count{",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Buckets are cumulative and the +Inf bucket equals _count equals
	// total observations.
	var infVal, countVal string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "front_gap_bucket") && strings.Contains(line, `le="+Inf"`) {
			infVal = line[strings.LastIndex(line, " ")+1:]
		}
		if strings.HasPrefix(line, "front_gap_count") {
			countVal = line[strings.LastIndex(line, " ")+1:]
		}
	}
	if infVal != "100" || countVal != "100" {
		t.Errorf("+Inf bucket %q and _count %q, want 100 and 100", infVal, countVal)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b strings.Builder
	s := promSnapshot(t)
	if err := s.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of the same snapshot differ")
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"sim.cycles":     "sim_cycles",
		"thread0.instr":  "thread0_instr",
		"0weird":         "_0weird",
		"core:searches":  "core:searches",
		"with space-bad": "with_space_bad",
		"":               "_",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromFloatSpecials(t *testing.T) {
	if got := promFloat(4.25); got != "4.25" {
		t.Errorf("promFloat(4.25) = %q", got)
	}
	inf, _ := strconv.ParseFloat("+Inf", 64)
	if got := promFloat(inf); got != "+Inf" {
		t.Errorf("promFloat(+Inf) = %q", got)
	}
}
