// Package metrics provides the small reporting utilities the
// experiment runner and CLIs share: aligned text tables, percentage
// and ratio formatting, and simple series output for figure-style
// results.
package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends one row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a ratio as a percentage.
func Pct(num, den int64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// Ratio returns num/den, or 0 for an empty denominator.
func Ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Delta formats the relative change from a to b (negative = improved).
func Delta(a, b float64) string {
	if a == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(b-a)/a)
}
