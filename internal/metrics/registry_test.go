package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHistBuckets(t *testing.T) {
	h := NewHist(0, 2, 4, 8, 16, 32, 64)
	for _, v := range []int64{-5, 0, 1, 2, 3, 4, 8, 9, 16, 64, 65, 1 << 40} {
		h.Observe(v)
	}
	// Reference bucketing: first bound >= v wins, overflow past the last.
	var want [HistBuckets]int64
	bounds := h.Bounds
	for _, v := range []int64{-5, 0, 1, 2, 3, 4, 8, 9, 16, 64, 65, 1 << 40} {
		placed := false
		for i, b := range bounds {
			if v <= b {
				want[i]++
				placed = true
				break
			}
		}
		if !placed {
			want[HistBuckets-1]++
		}
	}
	if h.Counts != want {
		t.Fatalf("counts %v, want %v", h.Counts, want)
	}
	if h.Total() != 12 {
		t.Fatalf("Total = %d, want 12", h.Total())
	}
}

func TestNewHistPanics(t *testing.T) {
	mustPanic(t, "too few bounds", func() { NewHist(1, 2, 3) })
	mustPanic(t, "non-ascending bounds", func() { NewHist(1, 2, 2, 4, 5, 6, 7) })
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	var c int64
	h := NewHist(1, 2, 3, 4, 5, 6, 7)
	r.Counter("a", &c)
	r.Gauge("g", func() float64 { return 0 })
	r.Hist("h", &h)
	mustPanic(t, "duplicate counter", func() { r.Counter("a", &c) })
	mustPanic(t, "duplicate across kinds", func() { r.Counter("g", &c) })
	mustPanic(t, "duplicate gauge", func() { r.Gauge("h", func() float64 { return 0 }) })
	mustPanic(t, "duplicate hist", func() { r.Hist("a", &h) })
	mustPanic(t, "empty name", func() { r.Counter("", &c) })
	mustPanic(t, "nil counter", func() { r.Counter("nc", nil) })
	mustPanic(t, "nil gauge", func() { r.Gauge("ng", nil) })
	mustPanic(t, "nil hist", func() { r.Hist("nh", nil) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestSnapshotLiveness: snapshots read the registered pointers at call
// time and are decoupled afterwards.
func TestSnapshotLiveness(t *testing.T) {
	r := NewRegistry()
	var c int64
	g := 1.5
	h := NewHist(1, 2, 3, 4, 5, 6, 7)
	r.Label("config", "z15")
	r.Counter("c", &c)
	r.Gauge("g", func() float64 { return g })
	r.Hist("h", &h)

	c = 41
	h.Observe(2)
	s1 := r.Snapshot()
	if s1.Counters["c"] != 41 || s1.Gauges["g"] != 1.5 || s1.Labels["config"] != "z15" {
		t.Fatalf("snapshot missed live values: %+v", s1)
	}
	if s1.Histograms["h"].Counts[1] != 1 {
		t.Fatalf("hist snapshot wrong: %+v", s1.Histograms["h"])
	}

	// Mutate after snapshot: s1 must not change, s2 must see it.
	c = 100
	g = 2.5
	h.Observe(2)
	if s1.Counters["c"] != 41 || s1.Histograms["h"].Counts[1] != 1 {
		t.Fatal("snapshot aliased live state")
	}
	s2 := r.Snapshot()
	if s2.Counters["c"] != 100 || s2.Gauges["g"] != 2.5 || s2.Histograms["h"].Counts[1] != 2 {
		t.Fatalf("second snapshot stale: %+v", s2)
	}
}

// TestMarshalDeterministic: identical snapshots serialize to identical
// bytes with sorted keys, indentation and a trailing newline.
func TestMarshalDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		var a, b, z int64 = 1, 2, 3
		// Register in an order different from sorted to prove sorting
		// comes from serialization, not registration order.
		r.Counter("zz", &z)
		r.Counter("aa", &a)
		r.Counter("mm", &b)
		r.Gauge("ratio", func() float64 { return 0.1 })
		r.Label("b", "2")
		r.Label("a", "1")
		return r
	}
	j1, err := build().Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("identical registries serialized differently:\n%s\n%s", j1, j2)
	}
	if !bytes.HasSuffix(j1, []byte("\n")) {
		t.Error("canonical form must end in newline")
	}
	if strings.Index(string(j1), `"aa"`) > strings.Index(string(j1), `"zz"`) {
		t.Error("counter keys not sorted")
	}
	var s Snapshot
	if err := json.Unmarshal(j1, &s); err != nil {
		t.Fatalf("canonical form does not round-trip: %v", err)
	}
	if s.SchemaVersion != SchemaVersion || s.Counters["mm"] != 2 {
		t.Fatalf("round-trip lost data: %+v", s)
	}

	var buf bytes.Buffer
	if err := build().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), j1) {
		t.Error("WriteJSON differs from MarshalIndent")
	}
}

func TestDiffSnapshots(t *testing.T) {
	mk := func(mut func(*Registry, *int64, *Hist)) Snapshot {
		r := NewRegistry()
		var c int64 = 5
		h := NewHist(1, 2, 3, 4, 5, 6, 7)
		r.Label("config", "z15")
		r.Counter("c", &c)
		r.Gauge("g", func() float64 { return 1 })
		r.Hist("h", &h)
		mut(r, &c, &h)
		return r.Snapshot()
	}
	same := func(*Registry, *int64, *Hist) {}

	if d := DiffSnapshots(mk(same), mk(same)); len(d) != 0 {
		t.Fatalf("equal snapshots diff: %v", d)
	}

	b := mk(func(r *Registry, c *int64, h *Hist) {
		*c = 6
		h.Observe(3)
		r.Label("config", "z14")
		var extra int64 = 1
		r.Counter("only_b", &extra)
	})
	diffs := DiffSnapshots(mk(same), b)
	joined := strings.Join(diffs, "\n")
	for _, want := range []string{"counter c: 5 != 6", "label config", "histogram h", "counter only_b: 0 != 1"} {
		if !strings.Contains(joined, want) {
			t.Errorf("diff missing %q in:\n%s", want, joined)
		}
	}
	// Sorted within each kind.
	if len(diffs) == 0 || !strings.HasPrefix(diffs[0], "label") {
		t.Errorf("unexpected diff order: %v", diffs)
	}
}
