// Package server implements zbpd, the always-on simulation service:
// an HTTP/JSON front end over the repository's trace-driven predictor
// model. It turns the batch pipeline — materialize-once workload
// cache, bounded runner pool, cancellable sim.RunCtx — into a
// long-running process with per-request deadlines, queue backpressure
// (HTTP 429), Prometheus metrics and graceful drain on shutdown.
//
// Endpoints:
//
//	POST   /v1/simulate          one run: config preset + workload + seed + budget
//	POST   /v1/sweep             a small parameter grid, one result row per cell
//	POST   /v1/cell              one cell through the result cache (coordinator protocol)
//	POST   /v1/jobs              submit an async simulate/sweep/diff job
//	GET    /v1/jobs/{id}         job status, per-cell progress, result when done
//	GET    /v1/jobs/{id}/events  JSONL progress stream (live + replayed history)
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /healthz              liveness + queue occupancy
//	GET    /metrics              live registry in Prometheus text format
//
// Async jobs route their cells through a content-addressed result
// cache (internal/rcache): the simulator is deterministic, so a
// repeated (config, workload, seed, budget) cell is served from the
// cache in microseconds with zero simulated cycles. A background
// auditor recomputes a sampled fraction of cache hits through
// internal/equiv and reports divergence — poisoned, stale, or
// corrupted entries — as zbpd_cache_audit_failures_total.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zbp/internal/core"
	"zbp/internal/jobs"
	"zbp/internal/metrics"
	"zbp/internal/rcache"
	"zbp/internal/runner"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

var (
	errQueueFull    = errors.New("server: job queue full")
	errShuttingDown = errors.New("server: shutting down")
)

// Config sizes the service. The zero value is usable: every field has
// a production-lean default applied by New.
type Config struct {
	// Workers is the number of simulations executing concurrently
	// (queue consumers). Default: GOMAXPROCS.
	Workers int
	// QueueDepth is how many accepted requests may wait beyond the
	// ones running before submissions are answered 429. Default: 16.
	QueueDepth int
	// MaxBodyBytes bounds request bodies. Default: 1 MiB.
	MaxBodyBytes int64
	// MaxInstructions bounds the per-thread instruction budget of one
	// request; it is also the materialized-trace size cap. Default:
	// 20M.
	MaxInstructions int
	// DefaultInstructions is used when a request omits the budget.
	// Default: 1M.
	DefaultInstructions int
	// MaxSweepCells bounds config x workload x seed grid sizes.
	// Default: 64.
	MaxSweepCells int
	// DefaultTimeout bounds a request's simulation time when the
	// request does not set timeout_ms. Default: 60s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts. It is also the
	// default (and the clamp) for async job deadlines: jobs exist to
	// outlive the HTTP timeout, so they get the ceiling, not the
	// per-request default. Default: 5m.
	MaxTimeout time.Duration

	// MaxJobs bounds the async job table (queued + running + finished
	// awaiting TTL eviction); a full table answers submissions 429.
	// Default: 64.
	MaxJobs int
	// JobTTL is how long a finished job stays pollable before the
	// table evicts it (GET then answers 404). Default: 15m.
	JobTTL time.Duration

	// CacheMemBytes bounds the in-memory layer of the result cache.
	// Default: 256 MiB.
	CacheMemBytes int64
	// CacheDir, when set, persists cache entries on disk (atomic
	// write-then-rename; entries survive restarts).
	CacheDir string
	// CacheDiskBytes bounds the on-disk layer. Default: 1 GiB.
	CacheDiskBytes int64
	// AuditEvery samples every Nth cache hit for background
	// recomputation through internal/equiv (the cache-poisoning
	// detector). 0 means the default of 16; negative disables
	// auditing. Default: 16.
	AuditEvery int

	// TraceDir, when set, allows file-backed workload names (file:<path>
	// and spec:<path>) in requests: paths resolve relative to this
	// directory and every referenced file — including files a spec
	// document points at — must stay inside it. Empty (the default)
	// rejects path-backed names entirely: a network request must never
	// make the server read arbitrary local files.
	TraceDir string

	// now supplies the clock for the job table; tests swap in a fake
	// to drive TTL eviction deterministically.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxInstructions <= 0 {
		c.MaxInstructions = 20_000_000
	}
	if c.DefaultInstructions <= 0 {
		c.DefaultInstructions = 1_000_000
	}
	if c.MaxSweepCells <= 0 {
		c.MaxSweepCells = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.CacheMemBytes <= 0 {
		c.CacheMemBytes = 256 << 20
	}
	if c.CacheDiskBytes <= 0 {
		c.CacheDiskBytes = 1 << 30
	}
	if c.AuditEvery == 0 {
		c.AuditEvery = 16
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the zbpd service state: the bounded queue, the shared
// workload cache, the async job table with its result cache, and the
// live metrics registry.
type Server struct {
	cfg   Config
	mz    *workload.Materializer
	q     *queue
	mux   *http.ServeMux
	reg   *metrics.Registry
	jobs  *jobs.Store
	cache *rcache.Cache

	// baseCtx parents every async job context; Drain/Close cancel it,
	// which cooperatively stops running jobs and the audit loop.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	// asyncWG tracks job-runner goroutines and the audit loop so
	// Close can wait for them before draining the queue.
	asyncWG sync.WaitGroup

	// Live service counters, exported via /metrics. Atomics because
	// handlers bump them concurrently with registry snapshots.
	requests        atomic.Int64
	completed       atomic.Int64
	rejected        atomic.Int64
	canceled        atomic.Int64
	failed          atomic.Int64
	instructions    atomic.Int64
	inflight        atomic.Int64
	sweepCellErrors atomic.Int64
	diffDivergences atomic.Int64
	// fastCoreRuns counts simulations that executed on the specialized
	// no-sink replay loop (sim.Result.FastCore). The service never
	// attaches an EventSink, so in a healthy deployment this tracks
	// completed simulate runs plus sweep cells; a drop to zero means a
	// code change knocked the hot path off the fast core.
	fastCoreRuns atomic.Int64

	// runNanosEWMA tracks a smoothed per-task queue-slot duration (ns),
	// feeding the Retry-After estimate on 429 responses.
	runNanosEWMA atomic.Int64

	// Async job counters (terminal-state transitions live in the jobs
	// store; these are the submission-side tallies).
	jobsSubmitted atomic.Int64

	// Cache-audit pipeline state; see audit.go.
	auditHits     atomic.Int64
	audits        atomic.Int64
	auditFailures atomic.Int64
	auditErrors   atomic.Int64
	auditDropped  atomic.Int64
	auditCh       chan auditTask
}

// New builds a server and starts its worker pool plus the cache-audit
// loop. Callers must Close it (after draining the HTTP layer) to stop
// the workers. The only construction failure is an unusable cache
// directory.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg: cfg.withDefaults(),
		mz:  workload.NewMaterializer(),
	}
	var err error
	if s.cfg.TraceDir != "" {
		// Absolutize once so the containment check in resolveTracePath is
		// a plain prefix comparison regardless of the server's cwd.
		s.cfg.TraceDir, err = filepath.Abs(s.cfg.TraceDir)
		if err != nil {
			return nil, fmt.Errorf("server: trace dir: %w", err)
		}
	}
	s.cache, err = rcache.New(rcache.Config{
		MaxMemBytes:  s.cfg.CacheMemBytes,
		Dir:          s.cfg.CacheDir,
		MaxDiskBytes: s.cfg.CacheDiskBytes,
	})
	if err != nil {
		return nil, err
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.jobs = jobs.NewStore(jobs.Options{
		MaxJobs: s.cfg.MaxJobs,
		TTL:     s.cfg.JobTTL,
		Now:     s.cfg.now,
	})
	s.q = newQueue(s.cfg.Workers, s.cfg.QueueDepth)
	s.reg = s.buildRegistry()
	if s.cfg.AuditEvery > 0 {
		s.auditCh = make(chan auditTask, 8)
		s.asyncWG.Add(1)
		go s.auditLoop()
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/cell", s.handleCell)
	s.mux.HandleFunc("POST /v1/diff", s.handleDiff)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain begins shutdown of the async layer: new job submissions are
// refused (503) and running jobs cancel cooperatively, which also
// ends their event streams. Call it before http.Server.Shutdown so
// long-lived streams do not hold the listener open for the whole
// grace budget.
func (s *Server) Drain() { s.baseCancel() }

// Close stops accepting queue submissions and waits for every
// accepted simulation — sync requests and async jobs — to finish.
// Call it after http.Server.Shutdown has drained the handlers.
func (s *Server) Close() {
	s.baseCancel()
	s.asyncWG.Wait()
	s.q.close()
}

// buildRegistry wires the service gauges. Everything is a snapshot-time
// gauge over an atomic, so scrapes are race-free against live traffic.
func (s *Server) buildRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Label("service", "zbpd")
	gauge := func(name string, v *atomic.Int64) {
		reg.Gauge(name, func() float64 { return float64(v.Load()) })
	}
	gauge("zbpd.requests_total", &s.requests)
	gauge("zbpd.completed_total", &s.completed)
	gauge("zbpd.rejected_total", &s.rejected)
	gauge("zbpd.canceled_total", &s.canceled)
	gauge("zbpd.failed_total", &s.failed)
	gauge("zbpd.instructions_total", &s.instructions)
	gauge("zbpd.inflight", &s.inflight)
	gauge("zbpd.sweep_cell_errors_total", &s.sweepCellErrors)
	gauge("zbpd.diff_divergences_total", &s.diffDivergences)
	gauge("zbpd.fast_core_runs_total", &s.fastCoreRuns)
	reg.Gauge("zbpd.run_seconds_ewma", func() float64 {
		return time.Duration(s.runNanosEWMA.Load()).Seconds()
	})
	reg.Gauge("zbpd.queue_depth", func() float64 { return float64(s.q.depth()) })
	reg.Gauge("zbpd.queue_capacity", func() float64 { return float64(s.cfg.QueueDepth) })
	reg.Gauge("zbpd.workers", func() float64 { return float64(s.cfg.Workers) })
	reg.Gauge("zbpd.mat_traces", func() float64 { return float64(s.mz.Count()) })
	reg.Gauge("zbpd.mat_bytes", func() float64 { return float64(s.mz.FootprintBytes()) })

	// Async job table.
	gauge("zbpd.jobs_submitted_total", &s.jobsSubmitted)
	fn := func(name string, f func() float64) { reg.Gauge(name, f) }
	fn("zbpd.jobs_active", func() float64 { return float64(s.jobs.Active()) })
	fn("zbpd.jobs_table", func() float64 { return float64(s.jobs.Len()) })
	fn("zbpd.jobs_done_total", func() float64 { return float64(s.jobs.DoneCount()) })
	fn("zbpd.jobs_failed_total", func() float64 { return float64(s.jobs.FailedCount()) })
	fn("zbpd.jobs_canceled_total", func() float64 { return float64(s.jobs.CanceledCount()) })
	fn("zbpd.jobs_evicted_total", func() float64 { return float64(s.jobs.Evicted()) })

	// Content-addressed result cache + its equiv-backed auditor.
	fn("zbpd.cache_hits_total", func() float64 { return float64(s.cache.Hits()) })
	fn("zbpd.cache_misses_total", func() float64 { return float64(s.cache.Misses()) })
	fn("zbpd.cache_puts_total", func() float64 { return float64(s.cache.Puts()) })
	fn("zbpd.cache_evictions_total", func() float64 { return float64(s.cache.Evictions()) })
	fn("zbpd.cache_coalesced_total", func() float64 { return float64(s.cache.Coalesced()) })
	fn("zbpd.cache_disk_hits_total", func() float64 { return float64(s.cache.DiskHits()) })
	fn("zbpd.cache_disk_errors_total", func() float64 { return float64(s.cache.DiskErrors()) })
	fn("zbpd.cache_entries", func() float64 { return float64(s.cache.Len()) })
	fn("zbpd.cache_bytes", func() float64 { return float64(s.cache.MemBytes()) })
	gauge("zbpd.cache_audits_total", &s.audits)
	gauge("zbpd.cache_audit_failures_total", &s.auditFailures)
	gauge("zbpd.cache_audit_errors_total", &s.auditErrors)
	gauge("zbpd.cache_audit_dropped_total", &s.auditDropped)
	return reg
}

// --- request/response schemas -----------------------------------------

// SimulateRequest is the POST /v1/simulate body.
type SimulateRequest struct {
	// Config names a machine preset: zEC12, z13, z14, z15. Default
	// z15.
	Config string `json:"config,omitempty"`
	// Workload names a synthetic workload (see zbp.Workloads).
	Workload string `json:"workload"`
	// Workload2, when set, runs on the second hardware thread (SMT2)
	// with seed+1.
	Workload2 string `json:"workload2,omitempty"`
	// Seed defaults to 42, the repository's convention.
	Seed *uint64 `json:"seed,omitempty"`
	// Instructions is the per-thread budget; defaults to the server's
	// DefaultInstructions and is capped at MaxInstructions.
	Instructions int `json:"instructions,omitempty"`
	// TimeoutMs bounds simulation wall time for this request (clamped
	// to the server's MaxTimeout).
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// FullStats includes the schema-versioned stats snapshot (the
	// `zsim -stats-json` payload) in the response.
	FullStats bool `json:"full_stats,omitempty"`
}

// SimulateResponse is the POST /v1/simulate reply.
type SimulateResponse struct {
	Config       string            `json:"config"`
	Workload     string            `json:"workload"`
	Workload2    string            `json:"workload2,omitempty"`
	Seed         uint64            `json:"seed"`
	Instructions int64             `json:"instructions"`
	Branches     int64             `json:"branches"`
	Cycles       int64             `json:"cycles"`
	MPKI         float64           `json:"mpki"`
	IPC          float64           `json:"ipc"`
	Accuracy     float64           `json:"accuracy"`
	Truncated    bool              `json:"truncated"`
	Stats        *metrics.Snapshot `json:"stats,omitempty"`
}

// SweepRequest is the POST /v1/sweep body: the cartesian product of
// Configs x Workloads x Seeds, each cell one bounded simulation.
type SweepRequest struct {
	Configs      []string `json:"configs,omitempty"` // default ["z15"]
	Workloads    []string `json:"workloads"`         // required
	Seeds        []uint64 `json:"seeds,omitempty"`   // default [42]
	Instructions int      `json:"instructions,omitempty"`
	TimeoutMs    int      `json:"timeout_ms,omitempty"`
}

// SweepCell is one grid point's outcome.
type SweepCell struct {
	Config       string  `json:"config"`
	Workload     string  `json:"workload"`
	Seed         uint64  `json:"seed"`
	Instructions int64   `json:"instructions"`
	Cycles       int64   `json:"cycles"`
	MPKI         float64 `json:"mpki"`
	IPC          float64 `json:"ipc"`
	Accuracy     float64 `json:"accuracy"`
	Truncated    bool    `json:"truncated"`
	Error        string  `json:"error,omitempty"`
}

// SweepResponse is the POST /v1/sweep reply, cells in grid order
// (configs outermost, seeds innermost).
type SweepResponse struct {
	Cells []SweepCell `json:"cells"`
	// Errors counts cells whose Error field is set, so clients can spot
	// partial failure without scanning the grid.
	Errors int `json:"errors"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---------------------------------------------------------

// normalizeSimulate applies request defaults in place and validates
// against the server's limits, returning the resolved seed. Shared by
// the synchronous handler and async job submission, so both paths
// accept exactly the same requests.
func (s *Server) normalizeSimulate(req *SimulateRequest) (uint64, error) {
	if req.Config == "" {
		req.Config = "z15"
	}
	seed := uint64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	if req.Instructions == 0 {
		req.Instructions = s.cfg.DefaultInstructions
	}
	if _, err := core.ByName(req.Config); err != nil {
		return 0, err
	}
	if err := s.resolveWorkloads(&req.Workload, &req.Workload2); err != nil {
		return 0, err
	}
	if req.Instructions < 0 || req.Instructions > s.cfg.MaxInstructions {
		return 0, fmt.Errorf("instructions %d out of range [1, %d]", req.Instructions, s.cfg.MaxInstructions)
	}
	return seed, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req SimulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	seed, err := s.normalizeSimulate(&req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	spec := rcache.CellSpec{
		Config: req.Config, Workload: req.Workload, Workload2: req.Workload2,
		Seed: seed, Instructions: req.Instructions,
	}
	var (
		res    sim.Result
		runErr error
	)
	submitErr := s.enqueue(ctx, func(ctx context.Context) {
		res, runErr = s.runCellSim(ctx, spec)
	})
	if s.replyQueueError(w, submitErr) {
		return
	}
	if runErr == nil && ctx.Err() != nil {
		// The task was skipped while queued: the deadline or the client
		// beat the workers to it.
		runErr = ctx.Err()
	}
	if runErr != nil {
		s.replyRunError(w, runErr)
		return
	}
	s.completed.Add(1)
	s.instructions.Add(res.Instructions())
	if res.FastCore {
		s.fastCoreRuns.Add(1)
	}
	resp := SimulateResponse{
		Config:       req.Config,
		Workload:     req.Workload,
		Workload2:    req.Workload2,
		Seed:         seed,
		Instructions: res.Instructions(),
		Branches:     res.Branches(),
		Cycles:       res.Cycles,
		MPKI:         res.MPKI(),
		IPC:          res.IPC(),
		Accuracy:     res.Accuracy(),
		Truncated:    res.Truncated,
	}
	if req.FullStats {
		snap := res.StatsSnapshot()
		resp.Stats = &snap
	}
	writeJSON(w, http.StatusOK, resp)
}

// runCellSim materializes the cell's workload(s) through the shared
// trace cache and runs one cancellable simulation. This is the single
// compute path under the sync handlers, the async jobs, and the
// result cache's misses. By convention Workload2 runs at Seed+1.
func (s *Server) runCellSim(ctx context.Context, spec rcache.CellSpec) (sim.Result, error) {
	gen, err := core.ByName(spec.Config)
	if err != nil {
		return sim.Result{}, err
	}
	p, err := s.mz.Get(spec.Workload, spec.Seed, spec.Instructions)
	if err != nil {
		return sim.Result{}, err
	}
	cur := p.Cursor()
	srcs := []trace.Source{&cur}
	if spec.Workload2 != "" {
		p2, err := s.mz.Get(spec.Workload2, spec.Seed+1, spec.Instructions)
		if err != nil {
			return sim.Result{}, err
		}
		cur2 := p2.Cursor()
		srcs = append(srcs, &cur2)
	}
	return sim.New(sim.ForGeneration(gen), srcs).RunCtx(ctx, 0)
}

// normalizeSweep applies sweep defaults in place and validates,
// returning the grid size. Shared by the sync handler and async job
// submission.
func (s *Server) normalizeSweep(req *SweepRequest) (int, error) {
	if len(req.Configs) == 0 {
		req.Configs = []string{"z15"}
	}
	if len(req.Seeds) == 0 {
		req.Seeds = []uint64{42}
	}
	if req.Instructions == 0 {
		req.Instructions = s.cfg.DefaultInstructions
	}
	if req.Instructions < 0 || req.Instructions > s.cfg.MaxInstructions {
		return 0, fmt.Errorf("instructions %d out of range [1, %d]", req.Instructions, s.cfg.MaxInstructions)
	}
	cells := len(req.Configs) * len(req.Workloads) * len(req.Seeds)
	if cells == 0 {
		return 0, errors.New("empty sweep grid: need workloads")
	}
	if cells > s.cfg.MaxSweepCells {
		return 0, fmt.Errorf("sweep grid has %d cells, limit %d", cells, s.cfg.MaxSweepCells)
	}
	if err := s.resolveWorkloads(sliceRefs(req.Workloads)...); err != nil {
		return 0, err
	}
	for _, name := range req.Configs {
		if _, err := core.ByName(name); err != nil {
			return 0, err
		}
	}
	return cells, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	cells, err := s.normalizeSweep(&req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	cfgs := make([]sim.Config, len(req.Configs))
	for i, name := range req.Configs {
		gen, _ := core.ByName(name) // validated above
		cfgs[i] = sim.ForGeneration(gen)
	}

	type cellKey struct {
		config   string
		workload string
		seed     uint64
	}
	keys := make([]cellKey, 0, cells)
	jobs := make([]runner.Job, 0, cells)
	for ci, cfg := range cfgs {
		for _, wl := range req.Workloads {
			for _, seed := range req.Seeds {
				wl, seed := wl, seed
				keys = append(keys, cellKey{req.Configs[ci], wl, seed})
				jobs = append(jobs, runner.Job{
					Name:   fmt.Sprintf("%s/%s/%d", req.Configs[ci], wl, seed),
					Config: cfg,
					// Lazy source: materialization happens inside the
					// worker under the request context's queue slot,
					// shared through the singleflight cache.
					Source: func() ([]trace.Source, error) {
						p, err := s.mz.Get(wl, seed, req.Instructions)
						if err != nil {
							return nil, err
						}
						c := p.Cursor()
						return []trace.Source{&c}, nil
					},
					Instructions: req.Instructions,
				})
			}
		}
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	var results []runner.Result
	submitErr := s.enqueue(ctx, func(ctx context.Context) {
		// The sweep occupies exactly one queue slot; Parallelism 1
		// keeps total simulation concurrency equal to the worker
		// count no matter how many cells the grid has.
		pool := runner.Pool{Parallelism: 1}
		results = pool.Run(ctx, jobs)
	})
	if s.replyQueueError(w, submitErr) {
		return
	}
	if results == nil {
		// Skipped while queued.
		s.replyRunError(w, ctx.Err())
		return
	}
	resp := SweepResponse{Cells: make([]SweepCell, len(results))}
	for i, r := range results {
		cell := SweepCell{
			Config:       keys[i].config,
			Workload:     keys[i].workload,
			Seed:         keys[i].seed,
			Instructions: r.Res.Instructions(),
			Cycles:       r.Res.Cycles,
			MPKI:         r.Res.MPKI(),
			IPC:          r.Res.IPC(),
			Accuracy:     r.Res.Accuracy(),
			Truncated:    r.Res.Truncated,
		}
		if r.Err != nil {
			cell.Error = r.Err.Error()
			resp.Errors++
			s.sweepCellErrors.Add(1)
		} else if r.Res.FastCore {
			s.fastCoreRuns.Add(1)
		}
		resp.Cells[i] = cell
	}
	s.completed.Add(1)
	for _, c := range resp.Cells {
		s.instructions.Add(c.Instructions)
	}
	writeJSON(w, http.StatusOK, resp)
}

// Health is the GET /healthz body: liveness plus the load signals a
// cluster coordinator's least-loaded router needs, as cheap JSON — no
// Prometheus text parsing on the polling path. /metrics stays the
// complete (and unchanged) surface; this is the hot subset.
type Health struct {
	Status        string `json:"status"`
	Workers       int    `json:"workers"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Inflight      int64  `json:"inflight"`
	// RunSecondsEWMA is the smoothed per-queue-slot task duration; a
	// coordinator multiplies it by queue occupancy to estimate wait.
	RunSecondsEWMA float64 `json:"run_seconds_ewma"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:         "ok",
		Workers:        s.cfg.Workers,
		QueueDepth:     s.q.depth(),
		QueueCapacity:  s.cfg.QueueDepth,
		Inflight:       s.inflight.Load(),
		RunSecondsEWMA: time.Duration(s.runNanosEWMA.Load()).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.Snapshot().WritePrometheus(w); err != nil {
		// Headers are gone; nothing more to do than drop the
		// connection.
		return
	}
}

// --- plumbing ---------------------------------------------------------

// requestContext derives the simulation context: the request's own
// context (canceled on client disconnect and server shutdown) bounded
// by the effective timeout.
func (s *Server) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), timeout)
}

// enqueue pushes run through the bounded queue and tracks the inflight
// gauge around it. Executed task durations feed the EWMA behind the
// Retry-After estimate.
func (s *Server) enqueue(ctx context.Context, run func(ctx context.Context)) error {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	return s.q.submitWait(ctx, func(ctx context.Context) {
		start := time.Now()
		run(ctx)
		s.observeRun(time.Since(start))
	})
}

// observeRun folds one task duration into the smoothed estimate
// (alpha = 1/8). A CAS loop keeps concurrent workers from losing
// updates; the estimate only steers Retry-After, so contention is
// cheap and precision irrelevant.
func (s *Server) observeRun(d time.Duration) {
	for {
		old := s.runNanosEWMA.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/8
		}
		if s.runNanosEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds estimates when a queue slot will open: the queued
// work plus the incoming task, spread over the workers, at the smoothed
// per-task duration (1s until the first task completes). Clamped to
// [1, 60] so clients neither hammer a busy server nor give up on a
// briefly-full queue.
func (s *Server) retryAfterSeconds() int {
	avg := time.Duration(s.runNanosEWMA.Load())
	if avg <= 0 {
		avg = time.Second
	}
	est := time.Duration(s.q.depth()+1) * avg / time.Duration(s.cfg.Workers)
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// decode parses a size-limited JSON body, answering 400/413 itself.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, err)
		} else {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		}
		return false
	}
	return true
}

// replyQueueError answers queue overflow/shutdown submissions; it
// reports whether it wrote a response.
func (s *Server) replyQueueError(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, errQueueFull):
		s.rejected.Add(1)
		// Derived from the queued-work estimate, not a constant: a full
		// queue of minute-long sweeps and a full queue of millisecond
		// simulations deserve very different retry advice.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "job queue full, retry later"})
		return true
	default:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server shutting down"})
		return true
	}
}

// replyRunError maps simulation errors onto status codes.
func (s *Server) replyRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.canceled.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "simulation deadline exceeded"})
	case errors.Is(err, context.Canceled):
		// Client disconnect or server shutdown; the response is mostly
		// for the log.
		s.canceled.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "request canceled"})
	default:
		s.failed.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.failed.Add(1)
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// resolveWorkloads validates workload names before a request consumes
// a queue slot, rewriting them in place: generator names must be in the
// registry, and path-backed names (file:/spec:) are gated on the
// TraceDir allowlist and rewritten to their confined absolute form so
// the cache, materializer, and audit all see one canonical name. Empty
// names in the tail (unset workload2) are ignored, but the first name
// is required.
func (s *Server) resolveWorkloads(names ...*string) error {
	if len(names) == 0 || *names[0] == "" {
		return errors.New("missing workload")
	}
	reg := workload.Registry()
	for _, np := range names {
		name := *np
		switch {
		case name == "":
		case workload.PathBacked(name):
			resolved, err := s.resolveTraceName(name)
			if err != nil {
				return err
			}
			*np = resolved
		default:
			if _, ok := reg[name]; !ok {
				return fmt.Errorf("unknown workload %q (have %v)", name, workload.Names())
			}
		}
	}
	return nil
}

// sliceRefs adapts a name slice for resolveWorkloads so rewrites land
// back in the request.
func sliceRefs(names []string) []*string {
	refs := make([]*string, len(names))
	for i := range names {
		refs[i] = &names[i]
	}
	return refs
}

// resolveTraceName confines one path-backed workload name to the
// TraceDir allowlist and returns it with the path absolutized. Spec
// documents are additionally opened so every trace file they reference
// is confined too — the spec itself being inside the directory does
// not make its pointers trustworthy.
func (s *Server) resolveTraceName(name string) (string, error) {
	if s.cfg.TraceDir == "" {
		return "", errors.New("file-backed workloads are disabled (start the server with a trace dir)")
	}
	prefix := workload.FilePrefix
	if strings.HasPrefix(name, workload.SpecPrefix) {
		prefix = workload.SpecPrefix
	}
	abs, err := s.resolveTracePath(name[len(prefix):])
	if err != nil {
		return "", err
	}
	if prefix == workload.SpecPrefix {
		files, err := workload.SpecFiles(abs)
		if err != nil {
			return "", err
		}
		for _, f := range files {
			if _, err := s.resolveTracePath(f); err != nil {
				return "", err
			}
		}
	}
	return prefix + abs, nil
}

// resolveTracePath resolves ref against the trace dir (unless already
// absolute) and rejects any result outside it, including `..` escapes
// and absolute paths elsewhere.
func (s *Server) resolveTracePath(ref string) (string, error) {
	abs := ref
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(s.cfg.TraceDir, abs)
	}
	abs = filepath.Clean(abs)
	if abs != s.cfg.TraceDir && !strings.HasPrefix(abs, s.cfg.TraceDir+string(filepath.Separator)) {
		return "", fmt.Errorf("trace path %q escapes the allowlisted trace directory", ref)
	}
	return abs, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
