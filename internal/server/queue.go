package server

import (
	"context"
	"sync"
)

// task is one queued unit of simulation work. run executes with the
// submitting request's context; done is closed by the worker after run
// returns (or after the task is skipped because its context died while
// it was still queued).
type task struct {
	ctx  context.Context
	run  func(ctx context.Context)
	done chan struct{}
}

// queue is a bounded worker pool: a fixed number of workers drain a
// fixed-capacity channel. Submit never blocks on a full queue — it
// reports the overflow so the HTTP layer can answer 429 — and close
// drains everything already accepted before the workers exit, which is
// exactly the graceful-shutdown contract: accepted work completes,
// new work is refused.
type queue struct {
	tasks chan *task
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// newQueue starts workers goroutines draining a queue of capacity
// depth (waiting tasks beyond the ones being executed).
func newQueue(workers, depth int) *queue {
	q := &queue{tasks: make(chan *task, depth)}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

func (q *queue) worker() {
	defer q.wg.Done()
	for t := range q.tasks {
		// A task whose request died while queued is skipped, not run:
		// the client is gone, and materializing its workload would only
		// steal time from live requests.
		if t.ctx.Err() == nil {
			t.run(t.ctx)
		}
		close(t.done)
	}
}

// submitWait enqueues run and blocks until a worker has finished (or
// skipped) it. The three outcomes:
//
//   - ok: the task ran (or was skipped because ctx died; the caller
//     distinguishes via ctx.Err()).
//   - errQueueFull: the queue was at capacity — the backpressure
//     signal behind HTTP 429.
//   - errShuttingDown: close() has begun; new work is refused.
func (q *queue) submitWait(ctx context.Context, run func(ctx context.Context)) error {
	t := &task{ctx: ctx, run: run, done: make(chan struct{})}
	// The read lock makes the closed-check-and-send atomic against
	// close(): once close() holds the write lock, no sender can be
	// mid-send, so closing the channel is safe.
	q.mu.RLock()
	if q.closed {
		q.mu.RUnlock()
		return errShuttingDown
	}
	select {
	case q.tasks <- t:
		q.mu.RUnlock()
	default:
		q.mu.RUnlock()
		return errQueueFull
	}
	<-t.done
	return nil
}

// depth returns the number of tasks waiting (not yet picked up).
func (q *queue) depth() int { return len(q.tasks) }

// close stops accepting new tasks, lets the workers drain everything
// already queued, and returns once the last in-flight task finished.
// Call it only after the HTTP listener has stopped handing out new
// requests (http.Server.Shutdown), so no handler is left to see
// errShuttingDown unnecessarily.
func (q *queue) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.tasks)
	}
	q.mu.Unlock()
	q.wg.Wait()
}
