package server

import (
	"log"

	"zbp/internal/equiv"
	"zbp/internal/rcache"
)

// Background cache auditor: the equiv harness doubled as a
// cache-poisoning detector. Every AuditEvery'th cache hit is handed
// to a single background goroutine that recomputes the cell from
// scratch (equiv.Audit) and byte-compares the canonical stats JSON
// against what the cache served. Divergence — a poisoned disk entry,
// a stale-schema payload, bit rot — lands in
// zbpd_cache_audit_failures_total and the server log; it is the
// integrity check the cache's deliberately unchecksummed disk format
// relies on.

// auditTask carries one sampled cache hit to the audit loop.
type auditTask struct {
	key   rcache.Key
	cell  equiv.AuditCell
	stats []byte
}

// maybeAudit samples cache hits into the audit queue. The send is
// non-blocking: auditing is a watchdog, not a gate, so when the
// auditor is saturated the sample is dropped (and counted) rather
// than stalling the serving path.
func (s *Server) maybeAudit(key rcache.Key, cell rcache.CellSpec, stats []byte) {
	if s.auditCh == nil {
		return
	}
	n := s.auditHits.Add(1)
	if n%int64(s.cfg.AuditEvery) != 0 {
		return
	}
	t := auditTask{
		key: key,
		cell: equiv.AuditCell{
			Config:       cell.Config,
			Workload:     cell.Workload,
			Workload2:    cell.Workload2,
			Seed:         cell.Seed,
			Instructions: cell.Instructions,
		},
		stats: stats,
	}
	select {
	case s.auditCh <- t:
	default:
		s.auditDropped.Add(1)
	}
}

// auditLoop drains sampled hits until the server's base context dies.
// One goroutine, deliberately: audits are full recomputations, and a
// single lane bounds how much simulation capacity verification can
// steal from real traffic.
func (s *Server) auditLoop() {
	defer s.asyncWG.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case t := <-s.auditCh:
			s.runAudit(t)
		}
	}
}

// runAudit recomputes one sampled hit and records the verdict.
func (s *Server) runAudit(t auditTask) {
	s.audits.Add(1)
	findings, err := equiv.Audit(s.baseCtx, t.cell, t.stats)
	switch {
	case err != nil:
		if s.baseCtx.Err() != nil {
			// Shutdown interrupted the recompute; not an audit error.
			s.audits.Add(-1)
			return
		}
		s.auditErrors.Add(1)
		log.Printf("cache audit error: cell %s key %s: %v", t.cell.Name(), t.key.Hash(), err)
	case len(findings) > 0:
		s.auditFailures.Add(int64(len(findings)))
		for _, f := range findings {
			log.Printf("CACHE AUDIT FAILURE: key %s: %s: %s", t.key.Hash(), f.Cell, f.Detail)
		}
	}
}
