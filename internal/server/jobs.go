package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"zbp/internal/equiv"
	"zbp/internal/jobs"
	"zbp/internal/metrics"
	"zbp/internal/rcache"
)

// Async job API. A job is a simulate/sweep/diff request that runs
// outside the submitting HTTP request: submission validates and
// answers immediately with a job ID, a runner goroutine takes one
// bounded-queue slot (the same backpressure sync requests obey), and
// clients poll GET /v1/jobs/{id} or follow the JSONL event stream.
//
// Simulate and sweep cells route through the content-addressed result
// cache: the cell spec is hashed (rcache.NewKey) and previously
// computed cells are served without executing a single simulated
// cycle. Diff jobs never cache — the harness's whole point is to
// recompute.

// JobRequest is the POST /v1/jobs body: a kind plus exactly one
// matching payload. Kind may be omitted when exactly one payload is
// set.
type JobRequest struct {
	Kind     string           `json:"kind,omitempty"` // "simulate", "sweep", "diff"
	Simulate *SimulateRequest `json:"simulate,omitempty"`
	Sweep    *SweepRequest    `json:"sweep,omitempty"`
	Diff     *DiffRequest     `json:"diff,omitempty"`
	// TimeoutMs bounds the job's execution wall time (clamped to the
	// server's MaxTimeout, which is also the default). The payloads'
	// own timeout_ms fields are ignored for jobs: the job deadline is
	// the only one.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// NoCache forces recomputation and skips the result cache on both
	// read and write — the escape hatch for benchmarking and for
	// distrust.
	NoCache bool `json:"no_cache,omitempty"`
}

// jobSpec is the validated, default-filled execution plan attached to
// a job at submission.
type jobSpec struct {
	kind     string
	simulate SimulateRequest
	sweep    SweepRequest
	diff     DiffRequest
	seed     uint64 // resolved seed for simulate/diff kinds
	noCache  bool
}

// cellEvent is the JSONL progress line published after every finished
// simulate/sweep cell.
type cellEvent struct {
	Type      string `json:"type"` // "cell"
	Index     int    `json:"index"`
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	Config    string `json:"config"`
	Workload  string `json:"workload"`
	Workload2 string `json:"workload2,omitempty"`
	Seed      uint64 `json:"seed"`
	// Cached marks a cell served from the result cache (zero simulated
	// cycles).
	Cached       bool    `json:"cached"`
	Instructions int64   `json:"instructions,omitempty"`
	Cycles       int64   `json:"cycles,omitempty"`
	MPKI         float64 `json:"mpki"`
	IPC          float64 `json:"ipc"`
	Accuracy     float64 `json:"accuracy"`
	Error        string  `json:"error,omitempty"`
	// RunSecondsEWMA is the server's smoothed per-task duration at
	// publish time, so a streaming client can project the remaining
	// wall time of the sweep.
	RunSecondsEWMA float64 `json:"run_seconds_ewma"`
}

// diffCellEvent is the JSONL progress line for diff-job cells.
type diffCellEvent struct {
	Type     string `json:"type"` // "diff_cell"
	Index    int    `json:"index"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Config   string `json:"config"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Checks   int    `json:"checks"`
	OK       bool   `json:"ok"`
	Findings int    `json:"findings"`
	Error    string `json:"error,omitempty"`
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.baseCtx.Err() != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server shutting down"})
		return
	}
	var req JobRequest
	if !s.decode(w, r, &req) {
		return
	}
	spec, cells, err := s.planJob(&req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.jobs.Create(spec.kind, cells)
	if err != nil {
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "job table full, retry later"})
		return
	}
	s.jobsSubmitted.Add(1)

	timeout := s.cfg.MaxTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	j.SetCancel(cancel)
	s.asyncWG.Add(1)
	go s.runJob(ctx, cancel, j, spec)

	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusCreated, j.Snapshot())
}

// planJob validates the request into an executable spec, reusing the
// same normalization the sync endpoints apply.
func (s *Server) planJob(req *JobRequest) (jobSpec, int, error) {
	set := 0
	if req.Simulate != nil {
		set++
	}
	if req.Sweep != nil {
		set++
	}
	if req.Diff != nil {
		set++
	}
	if set != 1 {
		return jobSpec{}, 0, fmt.Errorf("need exactly one of simulate/sweep/diff payloads, have %d", set)
	}
	spec := jobSpec{noCache: req.NoCache}
	switch {
	case req.Simulate != nil:
		if req.Kind != "" && req.Kind != "simulate" {
			return jobSpec{}, 0, fmt.Errorf("kind %q does not match the simulate payload", req.Kind)
		}
		seed, err := s.normalizeSimulate(req.Simulate)
		if err != nil {
			return jobSpec{}, 0, err
		}
		spec.kind, spec.simulate, spec.seed = "simulate", *req.Simulate, seed
		return spec, 1, nil
	case req.Sweep != nil:
		if req.Kind != "" && req.Kind != "sweep" {
			return jobSpec{}, 0, fmt.Errorf("kind %q does not match the sweep payload", req.Kind)
		}
		cells, err := s.normalizeSweep(req.Sweep)
		if err != nil {
			return jobSpec{}, 0, err
		}
		spec.kind, spec.sweep = "sweep", *req.Sweep
		return spec, cells, nil
	default:
		if req.Kind != "" && req.Kind != "diff" {
			return jobSpec{}, 0, fmt.Errorf("kind %q does not match the diff payload", req.Kind)
		}
		seed, cells, err := s.normalizeDiff(req.Diff)
		if err != nil {
			return jobSpec{}, 0, err
		}
		spec.kind, spec.diff, spec.seed = "diff", *req.Diff, seed
		return spec, cells, nil
	}
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job (unknown ID or evicted after TTL)"})
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job (unknown ID or evicted after TTL)"})
		return
	}
	// Cancel fires the job's context cancel with no locks held; the
	// runner observes it cooperatively (sim.RunCtx polls) and the
	// job transitions to canceled asynchronously.
	j.Cancel(s.cfg.now(), "canceled by client")
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleJobEvents streams the job's event history and then live
// events as JSONL until the job reaches a terminal state or the
// client disconnects.
//
// Locking contract (the deadlock-regression suite pins this): the
// handler never writes to the connection while holding any job or
// store lock. It pulls batches with EventsSince (a short critical
// section that copies slice headers), writes them lock-free, and
// parks on a capacity-1 notification channel that publishers signal
// without blocking. A reader that stalls mid-write therefore stalls
// only itself — publishers, cancellation, and the job table never
// wait on it.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job (unknown ID or evicted after TTL)"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ch := j.Subscribe()
	defer j.Unsubscribe(ch)
	cursor := 0
	for {
		lines, terminal := j.EventsSince(cursor)
		cursor += len(lines)
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n")); err != nil {
				return
			}
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			// Finish appends the done event before flipping the state
			// (one critical section), so a terminal read has already
			// handed us the last line.
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// --- execution --------------------------------------------------------

// runJob drives one job through the bounded queue. The job table is
// the admission control for async work, so a momentarily full queue
// is waited out with a short backoff rather than surfaced as 429 —
// the client already holds a job ID.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *jobs.Job, spec jobSpec) {
	defer s.asyncWG.Done()
	defer cancel()
	for {
		err := s.enqueue(ctx, func(ctx context.Context) { s.executeJob(ctx, j, spec) })
		switch {
		case err == nil:
			// Ran, or was skipped because ctx died while queued; in the
			// skip case executeJob never got to finish the job.
			s.finishJob(j, ctx.Err())
			return
		case errors.Is(err, errQueueFull):
			select {
			case <-ctx.Done():
				s.finishJob(j, ctx.Err())
				return
			case <-time.After(25 * time.Millisecond):
			}
		default: // shutting down
			s.finishJob(j, errShuttingDown)
			return
		}
	}
}

// finishJob closes out a job that did not finish itself (skipped
// while queued, canceled, refused by a closing queue). A no-op when
// executeJob already reached a terminal state.
func (s *Server) finishJob(j *jobs.Job, err error) {
	switch {
	case err == nil:
		j.Finish(s.cfg.now(), jobs.Failed, "job runner exited without a result", nil)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.Finish(s.cfg.now(), jobs.Canceled, err.Error(), nil)
	case errors.Is(err, errShuttingDown):
		j.Finish(s.cfg.now(), jobs.Canceled, "server shutting down", nil)
	default:
		j.Finish(s.cfg.now(), jobs.Failed, err.Error(), nil)
	}
}

// executeJob runs inside the job's queue slot.
func (s *Server) executeJob(ctx context.Context, j *jobs.Job, spec jobSpec) {
	if !j.Start(s.cfg.now()) {
		return
	}
	var (
		result []byte
		err    error
	)
	switch spec.kind {
	case "simulate":
		result, err = s.runSimulateJob(ctx, j, spec)
	case "sweep":
		result, err = s.runSweepJob(ctx, j, spec)
	case "diff":
		result, err = s.runDiffJob(ctx, j, spec)
	default:
		err = fmt.Errorf("unknown job kind %q", spec.kind)
	}
	if err != nil {
		s.finishJob(j, err)
		return
	}
	j.Finish(s.cfg.now(), jobs.Done, "", result)
}

func (s *Server) runSimulateJob(ctx context.Context, j *jobs.Job, spec jobSpec) ([]byte, error) {
	req := spec.simulate
	cell := rcache.CellSpec{
		Config: req.Config, Workload: req.Workload, Workload2: req.Workload2,
		Seed: spec.seed, Instructions: req.Instructions,
	}
	stats, cached, err := s.cachedCell(ctx, cell, spec.noCache)
	if err != nil {
		return nil, err
	}
	j.CellDone(cached)
	snap, sum, err := Summarize(cell, stats)
	if err != nil {
		return nil, err
	}
	s.publishCell(j, 0, 1, cell, cached, sum, "")
	resp := SimulateResponse{
		Config:       req.Config,
		Workload:     req.Workload,
		Workload2:    req.Workload2,
		Seed:         spec.seed,
		Instructions: sum.Instructions,
		Branches:     sum.Branches,
		Cycles:       sum.Cycles,
		MPKI:         sum.MPKI,
		IPC:          sum.IPC,
		Accuracy:     sum.Accuracy,
	}
	if req.FullStats {
		resp.Stats = snap
	}
	return json.Marshal(resp)
}

func (s *Server) runSweepJob(ctx context.Context, j *jobs.Job, spec jobSpec) ([]byte, error) {
	req := spec.sweep
	total := len(req.Configs) * len(req.Workloads) * len(req.Seeds)
	resp := SweepResponse{Cells: make([]SweepCell, 0, total)}
	i := 0
	for _, cfgName := range req.Configs {
		for _, wl := range req.Workloads {
			for _, seed := range req.Seeds {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				cell := rcache.CellSpec{
					Config: cfgName, Workload: wl, Seed: seed, Instructions: req.Instructions,
				}
				row := SweepCell{Config: cfgName, Workload: wl, Seed: seed}
				stats, cached, err := s.cachedCell(ctx, cell, spec.noCache)
				switch {
				case err != nil && ctx.Err() != nil:
					// Cancellation, not a cell failure: stop the sweep.
					return nil, ctx.Err()
				case err != nil:
					row.Error = err.Error()
					resp.Errors++
					s.sweepCellErrors.Add(1)
					s.publishCell(j, i, total, cell, false, CellSummary{}, row.Error)
				default:
					_, sum, serr := Summarize(cell, stats)
					if serr != nil {
						return nil, serr
					}
					row.Instructions = sum.Instructions
					row.Cycles = sum.Cycles
					row.MPKI = sum.MPKI
					row.IPC = sum.IPC
					row.Accuracy = sum.Accuracy
					j.CellDone(cached)
					s.publishCell(j, i, total, cell, cached, sum, "")
				}
				resp.Cells = append(resp.Cells, row)
				i++
			}
		}
	}
	return json.Marshal(resp)
}

func (s *Server) runDiffJob(ctx context.Context, j *jobs.Job, spec jobSpec) ([]byte, error) {
	req := spec.diff
	grid := equiv.Grid(req.Configs, req.Workloads, spec.seed, req.Instructions)
	opts := equiv.Options{Checks: req.Checks, Perturb: req.Perturb}
	resp := DiffResponse{Cells: make([]DiffCell, 0, len(grid))}
	for i, cell := range grid {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cr := equiv.CheckCell(ctx, cell, opts)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		dc := diffCellOf(cr)
		if !dc.OK {
			resp.Divergences++
			s.diffDivergences.Add(1)
		}
		resp.Cells = append(resp.Cells, dc)
		j.CellDone(false)
		j.Publish(diffCellEvent{
			Type: "diff_cell", Index: i, Done: i + 1, Total: len(grid),
			Config: dc.Config, Workload: dc.Workload, Seed: dc.Seed,
			Checks: dc.Checks, OK: dc.OK, Findings: len(dc.Findings), Error: dc.Error,
		})
	}
	return json.Marshal(resp)
}

// publishCell emits one cell progress event.
func (s *Server) publishCell(j *jobs.Job, i, total int, cell rcache.CellSpec, cached bool, sum CellSummary, errMsg string) {
	j.Publish(cellEvent{
		Type: "cell", Index: i, Done: i + 1, Total: total,
		Config: cell.Config, Workload: cell.Workload, Workload2: cell.Workload2,
		Seed: cell.Seed, Cached: cached,
		Instructions: sum.Instructions, Cycles: sum.Cycles,
		MPKI: sum.MPKI, IPC: sum.IPC, Accuracy: sum.Accuracy,
		Error:          errMsg,
		RunSecondsEWMA: time.Duration(s.runNanosEWMA.Load()).Seconds(),
	})
}

// computeCellStats runs one cell's simulation and renders the
// canonical stats JSON — the bytes the result cache stores and the
// equiv auditor re-derives. Truncated results are an error: a partial
// run is neither cacheable nor a valid sweep row.
func (s *Server) computeCellStats(ctx context.Context, cell rcache.CellSpec) ([]byte, error) {
	res, err := s.runCellSim(ctx, cell)
	if err != nil {
		return nil, err
	}
	if res.Truncated {
		return nil, errors.New("truncated result is not cacheable")
	}
	s.instructions.Add(res.Instructions())
	if res.FastCore {
		s.fastCoreRuns.Add(1)
	}
	return res.StatsJSON()
}

// cachedCell returns the canonical stats JSON for one cell, serving
// from the content-addressed cache when possible. cached reports that
// no simulation ran for this call (memory/disk hit or coalesced onto
// a concurrent identical compute). Sampled hits are handed to the
// background equiv auditor. The caller already holds a queue slot, so
// misses compute directly.
func (s *Server) cachedCell(ctx context.Context, cell rcache.CellSpec, noCache bool) ([]byte, bool, error) {
	return s.cachedCellVia(ctx, cell, noCache, func(ctx context.Context) ([]byte, error) {
		return s.computeCellStats(ctx, cell)
	})
}

// cachedCellVia is cachedCell with the miss path abstracted: the jobs
// runner computes in its own queue slot, while /v1/cell acquires a
// slot per miss (so cache hits never consume queue capacity).
func (s *Server) cachedCellVia(ctx context.Context, cell rcache.CellSpec, noCache bool, compute func(ctx context.Context) ([]byte, error)) ([]byte, bool, error) {
	if noCache {
		b, err := compute(ctx)
		return b, false, err
	}
	key := rcache.NewKey(cell)
	v, hit, err := s.cache.GetOrCompute(ctx, key, compute)
	if err != nil {
		return nil, false, err
	}
	if hit {
		s.maybeAudit(key, cell, v)
	}
	return v, hit, nil
}

// CellSummary is the headline numbers reconstructed from a canonical
// stats payload — the cache stores only the canonical stats JSON (the
// byte-exact form the equiv auditor re-derives), so API rows are a
// pure function of it. Exported because the cluster coordinator
// derives its aggregate rows from backend-returned stats through this
// same function; sharing it is what makes a fleet sweep byte-identical
// to a single-box one.
type CellSummary struct {
	Instructions int64
	Branches     int64
	Cycles       int64
	MPKI         float64
	IPC          float64
	Accuracy     float64
}

// Summarize decodes a canonical stats payload into its snapshot and
// headline numbers.
func Summarize(cell rcache.CellSpec, stats []byte) (*metrics.Snapshot, CellSummary, error) {
	var snap metrics.Snapshot
	if err := json.Unmarshal(stats, &snap); err != nil {
		return nil, CellSummary{}, fmt.Errorf("cell %v: undecodable stats payload: %w", cell, err)
	}
	return &snap, CellSummary{
		Instructions: int64(snap.Gauges["sim.instructions"]),
		Branches:     int64(snap.Gauges["sim.branches"]),
		Cycles:       snap.Counters["sim.cycles"],
		MPKI:         snap.Gauges["sim.mpki"],
		IPC:          snap.Gauges["sim.ipc"],
		Accuracy:     snap.Gauges["sim.accuracy"],
	}, nil
}
