package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"zbp/internal/sim"
	"zbp/internal/workload"
)

// newTestServer builds a server with test-friendly sizing plus its
// httptest front end, and registers cleanup in the right order
// (listener first, then workers).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestSimulateBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workload:     "loops",
		Instructions: 50_000,
		FullStats:    true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Instructions != 50_000 {
		t.Errorf("retired %d instructions, want 50000", out.Instructions)
	}
	if out.Truncated {
		t.Error("complete run reported truncated")
	}
	if out.Accuracy <= 0.9 || out.Accuracy > 1 {
		t.Errorf("loops accuracy = %v", out.Accuracy)
	}
	if out.Stats == nil || out.Stats.SchemaVersion == 0 {
		t.Error("full_stats did not include a schema-versioned snapshot")
	}

	// The service must agree exactly with a direct library run over
	// the same materialized trace.
	src, err := workload.Make("loops", 42)
	if err != nil {
		t.Fatal(err)
	}
	direct := sim.RunWorkload(sim.Z15(), src, 50_000)
	if direct.MPKI() != out.MPKI || direct.Cycles != out.Cycles {
		t.Errorf("service (mpki %v, cycles %d) disagrees with direct run (mpki %v, cycles %d)",
			out.MPKI, out.Cycles, direct.MPKI(), direct.Cycles)
	}
}

func TestSimulateSMT2(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workload:     "loops",
		Workload2:    "micro",
		Instructions: 20_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Instructions != 40_000 {
		t.Errorf("SMT2 retired %d instructions, want 40000 across both threads", out.Instructions)
	}
}

func TestSimulateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxInstructions: 100_000, MaxBodyBytes: 512})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"unknown workload", `{"workload":"nope"}`, http.StatusBadRequest},
		{"missing workload", `{}`, http.StatusBadRequest},
		{"unknown config", `{"workload":"loops","config":"z16"}`, http.StatusBadRequest},
		{"over budget", `{"workload":"loops","instructions":200000}`, http.StatusBadRequest},
		{"negative budget", `{"workload":"loops","instructions":-5}`, http.StatusBadRequest},
		{"bad json", `{"workload":`, http.StatusBadRequest},
		{"unknown field", `{"workload":"loops","bogus":1}`, http.StatusBadRequest},
		{"oversized body", `{"workload":"loops","workload2":"` + strings.Repeat("x", 600) + `"}`,
			http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.code)
			}
		})
	}
	// GET on a POST route must not run a simulation.
	resp, err := http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/simulate status %d, want 405", resp.StatusCode)
	}
}

// TestDeadlineCancelsRunningSimulation: a request whose deadline is a
// tiny fraction of its simulation time must come back promptly as 504
// with the simulation goroutine gone, not leaked.
func TestDeadlineCancelsRunningSimulation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxInstructions: 5_000_000})
	// Pre-materialize so the request's time is all simulation (the
	// generation itself is not cancellable).
	if _, err := s.mz.Get("lspr", 42, 3_000_000); err != nil {
		t.Fatal(err)
	}
	// Warm up the HTTP connection pool so keep-alive goroutines are in
	// the baseline, then measure with idle connections closed.
	if resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Workload: "loops", Instructions: 10_000}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: %d %s", resp.StatusCode, body)
	}
	http.DefaultClient.CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	before := runtime.NumGoroutine()

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workload:     "lspr",
		Instructions: 3_000_000, // ~1s of simulation
		TimeoutMs:    50,
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	// ~1s of work canceled at 50ms must respond well before the
	// uncanceled run could have finished; wide margin for -race.
	if elapsed > 5*time.Second {
		t.Errorf("canceled request took %v", elapsed)
	}

	// The worker must be idle again and nothing leaked.
	waitFor(t, 5*time.Second, func() bool {
		http.DefaultClient.CloseIdleConnections()
		return s.inflight.Load() == 0 && runtime.NumGoroutine() <= before+2
	}, func() string {
		return fmt.Sprintf("inflight %d, goroutines %d (baseline %d)",
			s.inflight.Load(), runtime.NumGoroutine(), before)
	})

	// The worker is free for the next request.
	resp2, body2 := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Workload: "loops", Instructions: 10_000})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", resp2.StatusCode, body2)
	}
}

// TestQueueFull429: with every worker busy and the waiting queue at
// capacity, the next submission is rejected with 429 without touching
// a simulation.
func TestQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Deterministically saturate: one blocker occupies the worker, one
	// fills the single queue slot.
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.q.submitWait(context.Background(), func(context.Context) { <-release })
		}()
	}
	waitFor(t, 5*time.Second, func() bool {
		return s.q.depth() == 1
	}, func() string { return fmt.Sprintf("queue depth %d", s.q.depth()) })

	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Workload: "loops", Instructions: 10_000})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// Free the queue; service must recover.
	close(release)
	wg.Wait()
	resp2, body2 := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Workload: "loops", Instructions: 10_000})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-drain status %d: %s", resp2.StatusCode, body2)
	}
}

// TestGracefulShutdownDrains: a request in flight when shutdown begins
// completes with a full 200 result; the queue refuses work afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	started := make(chan struct{})
	release := make(chan struct{})
	if err := func() error { // occupy the worker so the HTTP request sits queued
		go func() {
			_ = s.q.submitWait(context.Background(), func(context.Context) {
				close(started)
				<-release
			})
		}()
		select {
		case <-started:
			return nil
		case <-time.After(5 * time.Second):
			return fmt.Errorf("blocker never started")
		}
	}(); err != nil {
		t.Fatal(err)
	}

	type reply struct {
		code int
		body []byte
	}
	got := make(chan reply, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Workload: "loops", Instructions: 20_000})
		got <- reply{resp.StatusCode, body}
	}()
	waitFor(t, 5*time.Second, func() bool {
		return s.q.depth() == 1
	}, func() string { return fmt.Sprintf("queue depth %d", s.q.depth()) })

	// Begin shutdown while the request is queued behind the blocker,
	// then release the blocker so the drain can proceed.
	shutdownDone := make(chan struct{})
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = ts.Config.Shutdown(sctx)
		s.Close()
		close(shutdownDone)
	}()
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case r := <-got:
		if r.code != http.StatusOK {
			t.Fatalf("in-flight request got %d during shutdown: %s", r.code, r.body)
		}
		var out SimulateResponse
		if err := json.Unmarshal(r.body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Instructions != 20_000 || out.Truncated {
			t.Errorf("drained request result incomplete: %+v", out)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight request never completed during shutdown")
	}
	select {
	case <-shutdownDone:
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown never finished")
	}

	// After Close, direct submissions are refused as shutting down.
	if err := s.q.submitWait(context.Background(), func(context.Context) {}); err != errShuttingDown {
		t.Errorf("post-shutdown submit err = %v, want errShuttingDown", err)
	}
}

func TestSweepGrid(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Configs:      []string{"z14", "z15"},
		Workloads:    []string{"loops", "micro"},
		Instructions: 20_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SweepResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(out.Cells))
	}
	for _, c := range out.Cells {
		if c.Error != "" {
			t.Errorf("cell %s/%s: %s", c.Config, c.Workload, c.Error)
		}
		if c.Instructions != 20_000 {
			t.Errorf("cell %s/%s retired %d instructions", c.Config, c.Workload, c.Instructions)
		}
	}
	// Grid order: configs outermost.
	if out.Cells[0].Config != "z14" || out.Cells[3].Config != "z15" {
		t.Errorf("cells out of grid order: %v", out.Cells)
	}
	// Determinism across the service boundary.
	src, _ := workload.Make("loops", 42)
	direct := sim.RunWorkload(sim.Z15(), src, 20_000)
	if out.Cells[2].MPKI != direct.MPKI() {
		t.Errorf("sweep z15/loops MPKI %v != direct %v", out.Cells[2].MPKI, direct.MPKI())
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSweepCells: 4})
	resp, _ := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Configs:   []string{"z13", "z14", "z15"},
		Workloads: []string{"loops", "micro"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized grid status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty grid status %d, want 400", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" {
		t.Errorf("healthz = %v", out)
	}
}

var promLineRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? (NaN|[-+]?(Inf|[0-9].*))$`)

func TestMetricsEndpointParseable(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Produce some traffic first so counters are non-trivial.
	if resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Workload: "loops", Instructions: 10_000}); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("suspiciously small exposition:\n%s", body)
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLineRe.MatchString(line) {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
	for _, want := range []string{"zbpd_requests_total", "zbpd_completed_total", "zbpd_queue_depth", "zbpd_mat_traces"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestFastCoreRunsCounter checks that hook-free simulate and sweep
// traffic executes on the specialized fast core and is counted: the
// service attaches no EventSink, so every completed run must land on
// the fast loop. A zero here means a code change silently knocked the
// service hot path onto the instrumented core.
func TestFastCoreRunsCounter(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Workload: "loops", Instructions: 5_000}); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"loops", "callret"}, Instructions: 5_000,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// 1 simulate + 2 sweep cells, all sink-free.
	want := regexp.MustCompile(`(?m)^zbpd_fast_core_runs_total(\{[^}]*\})? 3$`)
	if !want.MatchString(string(body)) {
		t.Errorf("exposition missing fast_core_runs_total=3:\n%s", grepLines(string(body), "fast_core"))
	}
}

// grepLines returns the lines of s containing substr (for terse
// failure messages against the full exposition).
func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return "(no matching lines)"
	}
	return strings.Join(out, "\n")
}

// TestConcurrentMetricsScrapeRace drives simulations and /metrics
// scrapes concurrently; under -race this proves scrapes don't race
// with live counter updates.
func TestConcurrentMetricsScrapeRace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 32})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				resp, _ := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Workload: "loops", Instructions: 10_000})
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("status %d", resp.StatusCode)
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, state func() string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", timeout, state())
}
