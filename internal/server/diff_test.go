package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"zbp/internal/equiv"
)

func TestDiffEndpointClean(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/diff", DiffRequest{
		Workloads:    []string{"loops", "callret"},
		Instructions: 3_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out DiffResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(out.Cells))
	}
	if out.Divergences != 0 {
		t.Errorf("clean grid reported %d divergences: %s", out.Divergences, body)
	}
	for _, c := range out.Cells {
		if !c.OK || c.Error != "" || len(c.Findings) != 0 {
			t.Errorf("cell %s/%s not clean: %+v", c.Config, c.Workload, c)
		}
		if c.Checks != len(equiv.Checks()) {
			t.Errorf("cell %s/%s ran %d checks, want %d", c.Config, c.Workload, c.Checks, len(equiv.Checks()))
		}
	}
}

func TestDiffEndpointPerturbDetected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/diff", DiffRequest{
		Workloads:    []string{"patterned"},
		Instructions: 4_000,
		Checks:       []string{"packed-vs-streaming", "event-replay"},
		Perturb:      true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out DiffResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Divergences == 0 {
		t.Fatalf("perturbed diff reported no divergence: %s", body)
	}
	cell := out.Cells[0]
	if cell.OK || len(cell.Findings) == 0 {
		t.Fatalf("perturbed cell has no findings: %+v", cell)
	}
	named := false
	for _, f := range cell.Findings {
		if f.Check == "" || f.Detail == "" {
			t.Errorf("finding missing attribution: %+v", f)
		}
		if f.Metric != "" {
			named = true
		}
	}
	if !named {
		t.Errorf("no finding names the diverging metric: %+v", cell.Findings)
	}
}

func TestDiffValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSweepCells: 4, MaxInstructions: 100_000})
	cases := []struct {
		name string
		req  DiffRequest
	}{
		{"no workloads", DiffRequest{}},
		{"unknown workload", DiffRequest{Workloads: []string{"nope"}}},
		{"unknown config", DiffRequest{Workloads: []string{"loops"}, Configs: []string{"z99"}}},
		{"unknown check", DiffRequest{Workloads: []string{"loops"}, Checks: []string{"bogus"}}},
		{"too many cells", DiffRequest{
			Workloads: []string{"loops", "callret", "indirect"},
			Configs:   []string{"z14", "z15"},
		}},
		{"instructions over cap", DiffRequest{Workloads: []string{"loops"}, Instructions: 200_000}},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/diff", c.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, resp.StatusCode, body)
		}
	}
}

func TestSweepErrorsFieldCleanGrid(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads:    []string{"loops", "micro"},
		Instructions: 5_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SweepResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 0 {
		t.Errorf("clean sweep reported %d cell errors", out.Errors)
	}
}

// TestRetryAfterDerivation pins the queued-work estimate behind the
// Retry-After header: no samples means the 1s floor, the estimate
// scales with the smoothed task duration and queue depth, and the
// clamp keeps pathological estimates in [1, 60].
func TestRetryAfterDerivation(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("no samples: Retry-After %d, want 1", got)
	}
	s.observeRun(3 * time.Second)
	if got := s.retryAfterSeconds(); got != 3 {
		t.Errorf("after one 3s task (empty queue): Retry-After %d, want 3", got)
	}
	// EWMA smooths rather than tracks the last sample: 3s + (11s-3s)/8.
	s.observeRun(11 * time.Second)
	if got := s.retryAfterSeconds(); got != 4 {
		t.Errorf("after smoothing an 11s task: Retry-After %d, want 4", got)
	}
	s.observeRun(10 * time.Hour)
	if got := s.retryAfterSeconds(); got != 60 {
		t.Errorf("pathological estimate: Retry-After %d, want the 60s clamp", got)
	}
}

// TestQueueFullRetryAfterScales saturates the queue after seeding the
// duration estimate and checks the 429's Retry-After reflects the
// queued work instead of the old hardcoded "1".
func TestQueueFullRetryAfterScales(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	s.observeRun(5 * time.Second)

	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.q.submitWait(context.Background(), func(context.Context) { <-release })
		}()
	}
	defer func() {
		close(release)
		wg.Wait()
	}()
	waitFor(t, 5*time.Second, func() bool {
		return s.q.depth() == 1
	}, func() string { return fmt.Sprintf("queue depth %d", s.q.depth()) })

	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Workload: "loops", Instructions: 10_000})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("unparseable Retry-After %q", resp.Header.Get("Retry-After"))
	}
	// One queued 5s task plus the incoming one over one worker: ~10s.
	if secs < 5 || secs > 60 {
		t.Errorf("Retry-After = %ds, want a queued-work-scaled value in [5, 60]", secs)
	}
}
