package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"zbp/internal/rcache"
)

// POST /v1/cell: the cluster coordinator's backend protocol. One
// deterministic cell in, its canonical stats JSON out, routed through
// the content-addressed result cache. The contract that makes fleet
// scheduling simple lives here:
//
//   - A cache hit (memory, disk, or coalesced onto an identical
//     in-flight compute) is served without consuming a queue slot, so
//     warm cells cost microseconds no matter how saturated the box is
//     — the property rendezvous routing exists to exploit.
//   - A miss takes one bounded-queue slot exactly like a sync
//     simulate; a full queue answers 429 with the same derived
//     Retry-After, which the coordinator treats as a reroute signal.
//   - The response is the canonical stats payload (the bytes the
//     equiv auditor re-derives), so any replica — or a hedged
//     duplicate — returns byte-identical content and the coordinator
//     needs no reconciliation logic.

// CellRequest is the POST /v1/cell body: a simulate request plus the
// cache-bypass knob jobs already expose.
type CellRequest struct {
	SimulateRequest
	// NoCache forces recomputation and skips the result cache on both
	// read and write.
	NoCache bool `json:"no_cache,omitempty"`
}

// CellResponse is the POST /v1/cell reply.
type CellResponse struct {
	// Cached reports that no simulation ran for this request.
	Cached bool `json:"cached"`
	// Stats is the canonical schema-versioned stats JSON for the cell.
	Stats json.RawMessage `json:"stats"`
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req CellRequest
	if !s.decode(w, r, &req) {
		return
	}
	seed, err := s.normalizeSimulate(&req.SimulateRequest)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	cell := rcache.CellSpec{
		Config: req.Config, Workload: req.Workload, Workload2: req.Workload2,
		Seed: seed, Instructions: req.Instructions,
	}
	// Misses acquire a queue slot around the compute; hits bypass the
	// queue entirely.
	compute := func(ctx context.Context) ([]byte, error) {
		var (
			b    []byte
			cerr error
		)
		if submitErr := s.enqueue(ctx, func(ctx context.Context) {
			b, cerr = s.computeCellStats(ctx, cell)
		}); submitErr != nil {
			return nil, submitErr
		}
		if cerr == nil && ctx.Err() != nil {
			// Skipped while queued: the deadline beat the workers to it.
			cerr = ctx.Err()
		}
		return b, cerr
	}
	stats, cached, err := s.cachedCellVia(ctx, cell, req.NoCache, compute)
	switch {
	case errors.Is(err, errQueueFull):
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "job queue full, retry later"})
		return
	case errors.Is(err, errShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server shutting down"})
		return
	case err != nil:
		s.replyRunError(w, err)
		return
	}
	s.completed.Add(1)
	writeJSON(w, http.StatusOK, CellResponse{Cached: cached, Stats: stats})
}
