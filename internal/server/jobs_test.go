package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"zbp/internal/jobs"
	"zbp/internal/metrics"
	"zbp/internal/rcache"
)

// tclock is a lock-guarded fake clock injected through Config.now to
// drive job TTL eviction deterministically.
type tclock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *tclock { return &tclock{t: time.Unix(1_700_000_000, 0)} }
func (c *tclock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *tclock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// submitJob posts a job and checks the 201 contract (Location header,
// queued-or-later state, ID present).
func submitJob(t *testing.T, ts *httptest.Server, req JobRequest) jobs.Status {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit body %q: %v", body, err)
	}
	if st.ID == "" {
		t.Fatal("submit response has no job ID")
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location %q, want /v1/jobs/%s", loc, st.ID)
	}
	return st
}

// getJob polls one job snapshot.
func getJob(t *testing.T, ts *httptest.Server, id string) (int, jobs.Status) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("job body %q: %v", body, err)
		}
	}
	return resp.StatusCode, st
}

// waitJob polls until the job reaches want, failing fast on a
// different terminal state.
func waitJob(t *testing.T, ts *httptest.Server, id string, want jobs.State) jobs.Status {
	t.Helper()
	var last jobs.Status
	waitFor(t, 30*time.Second, func() bool {
		code, st := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		last = st
		if st.State.Terminal() && st.State != want {
			t.Fatalf("job reached %s (err %q), want %s", st.State, st.Error, want)
		}
		return st.State == want
	}, func() string { return fmt.Sprintf("job stuck in %s", last.State) })
	return last
}

// readEventLines drains a job's event stream to EOF, decoding every
// JSONL line.
func readEventLines(t *testing.T, ts *httptest.Server, id string) []map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content-type %q", ct)
	}
	var out []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	m := regexp.MustCompile(`(?m)^` + name + `(?:\{[^}]*\})? (\S+)$`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not exported:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestJobSimulateLifecycle: submit -> poll -> done, with the result
// agreeing with the synchronous endpoint for the same cell.
func TestJobSimulateLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := SimulateRequest{Workload: "loops", Instructions: 50_000, FullStats: true}

	st := submitJob(t, ts, JobRequest{Simulate: &req})
	if st.Kind != "simulate" {
		t.Errorf("kind %q", st.Kind)
	}
	done := waitJob(t, ts, st.ID, jobs.Done)
	if done.Progress.CellsTotal != 1 || done.Progress.CellsDone != 1 {
		t.Errorf("progress %+v", done.Progress)
	}
	var jobResp SimulateResponse
	if err := json.Unmarshal(done.Result, &jobResp); err != nil {
		t.Fatalf("result %q: %v", done.Result, err)
	}

	syncHTTP, syncBody := postJSON(t, ts.URL+"/v1/simulate", req)
	if syncHTTP.StatusCode != http.StatusOK {
		t.Fatalf("sync status %d", syncHTTP.StatusCode)
	}
	var syncResp SimulateResponse
	if err := json.Unmarshal(syncBody, &syncResp); err != nil {
		t.Fatal(err)
	}
	// Determinism makes the async and sync answers comparable field by
	// field — same cell, same numbers.
	if jobResp.Cycles != syncResp.Cycles || jobResp.Instructions != syncResp.Instructions ||
		jobResp.MPKI != syncResp.MPKI || jobResp.IPC != syncResp.IPC {
		t.Errorf("async %+v disagrees with sync %+v", jobResp, syncResp)
	}
	if jobResp.Stats == nil || len(jobResp.Stats.Counters) == 0 {
		t.Error("full_stats job result missing the snapshot")
	}
}

// TestJobSweepEventsStream: the JSONL stream replays queued/running
// status, one cell event per grid point in order, and a final done
// event — then terminates.
func TestJobSweepEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st := submitJob(t, ts, JobRequest{Sweep: &SweepRequest{
		Workloads:    []string{"loops", "micro"},
		Seeds:        []uint64{1, 2},
		Instructions: 20_000,
	}})
	waitJob(t, ts, st.ID, jobs.Done)

	events := readEventLines(t, ts, st.ID)
	var states, cells []string
	var lastDone map[string]any
	for _, e := range events {
		switch e["type"] {
		case "status":
			states = append(states, e["state"].(string))
		case "cell":
			cells = append(cells, fmt.Sprintf("%v/%v/%v", e["workload"], e["workload2"], e["seed"]))
			if e["error"] != nil {
				t.Errorf("cell error %v", e["error"])
			}
		case "done":
			lastDone = e
		}
	}
	if len(states) != 2 || states[0] != "queued" || states[1] != "running" {
		t.Errorf("status events %v", states)
	}
	want := []string{
		"loops/<nil>/1", "loops/<nil>/2",
		"micro/<nil>/1", "micro/<nil>/2",
	}
	if fmt.Sprint(cells) != fmt.Sprint(want) {
		t.Errorf("cell order %v, want %v", cells, want)
	}
	if lastDone == nil || lastDone["state"] != "done" {
		t.Errorf("final event %v", lastDone)
	}
	if events[len(events)-1]["type"] != "done" {
		t.Error("stream did not end with the done event")
	}
}

// TestJobValidation: malformed submissions are rejected at the door,
// before any table slot or queue time is spent.
func TestJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"no payload", JobRequest{}},
		{"two payloads", JobRequest{
			Simulate: &SimulateRequest{Workload: "loops"},
			Sweep:    &SweepRequest{Workloads: []string{"loops"}},
		}},
		{"kind mismatch", JobRequest{Kind: "sweep", Simulate: &SimulateRequest{Workload: "loops"}}},
		{"unknown workload", JobRequest{Simulate: &SimulateRequest{Workload: "nope"}}},
		{"over budget", JobRequest{Simulate: &SimulateRequest{Workload: "loops", Instructions: 1 << 40}}},
		{"unknown diff check", JobRequest{Diff: &DiffRequest{Workloads: []string{"loops"}, Checks: []string{"bogus"}}}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, body)
		}
	}
	if n := metricValue(t, ts, "zbpd_jobs_submitted_total"); n != 0 {
		t.Errorf("rejected submissions counted as jobs: %v", n)
	}
}

// TestJobTableFull429: a full job table answers 429 with Retry-After;
// finished-but-unexpired jobs hold their slots.
func TestJobTableFull429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxJobs: 1})
	st := submitJob(t, ts, JobRequest{Simulate: &SimulateRequest{Workload: "loops", Instructions: 10_000}})
	waitJob(t, ts, st.ID, jobs.Done)

	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Simulate: &SimulateRequest{Workload: "loops", Instructions: 10_000},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 60 {
		t.Errorf("Retry-After %q, want an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}
}

// TestJobTTLEviction: past the TTL a finished job 404s, frees its
// table slot, and counts as evicted.
func TestJobTTLEviction(t *testing.T) {
	clk := newClock()
	_, ts := newTestServer(t, Config{Workers: 1, MaxJobs: 1, JobTTL: time.Minute, now: clk.now})
	st := submitJob(t, ts, JobRequest{Simulate: &SimulateRequest{Workload: "loops", Instructions: 10_000}})
	waitJob(t, ts, st.ID, jobs.Done)

	clk.advance(59 * time.Second)
	if code, _ := getJob(t, ts, st.ID); code != http.StatusOK {
		t.Fatalf("pre-TTL poll status %d", code)
	}
	clk.advance(2 * time.Second)
	if code, _ := getJob(t, ts, st.ID); code != http.StatusNotFound {
		t.Fatalf("post-TTL poll status %d, want 404", code)
	}
	if n := metricValue(t, ts, "zbpd_jobs_evicted_total"); n != 1 {
		t.Errorf("evicted = %v, want 1", n)
	}
	// The slot is free again.
	st2 := submitJob(t, ts, JobRequest{Simulate: &SimulateRequest{Workload: "loops", Instructions: 10_000}})
	waitJob(t, ts, st2.ID, jobs.Done)
}

// TestJobCancelWhileQueued: DELETE on a job still waiting for a queue
// slot cancels it without it ever simulating; the event stream
// terminates with the canceled event.
func TestJobCancelWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	// Occupy the only worker so the job stays queued.
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = s.q.submitWait(context.Background(), func(context.Context) {
			close(started)
			<-release
		})
	}()
	<-started

	st := submitJob(t, ts, JobRequest{Simulate: &SimulateRequest{Workload: "loops", Instructions: 10_000}})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	// The cancel has landed (DELETE answered); free the worker so it
	// reaches the queued task and skips its dead context.
	close(release)

	canceled := waitJob(t, ts, st.ID, jobs.Canceled)
	if canceled.Progress.CellsDone != 0 {
		t.Errorf("canceled-while-queued job did work: %+v", canceled.Progress)
	}
	events := readEventLines(t, ts, st.ID)
	last := events[len(events)-1]
	if last["type"] != "done" || last["state"] != "canceled" {
		t.Errorf("final event %v", last)
	}
	if metricValue(t, ts, "zbpd_cache_misses_total") != 0 {
		t.Error("canceled job started a compute")
	}
}

// TestJobEventsSlowReaderNoDeadlock is the regression test for the
// locking contract: a subscriber that never reads its stream must not
// block job execution, other pollers, cancellation, or shutdown —
// publishers signal subscribers without holding locks across writes.
func TestJobEventsSlowReaderNoDeadlock(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st := submitJob(t, ts, JobRequest{Sweep: &SweepRequest{
		Workloads:    []string{"loops", "micro"},
		Seeds:        []uint64{1, 2, 3},
		Instructions: 20_000,
	}})

	// Open the stream and stall: never read a byte.
	stalled, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Body.Close()

	// The job must complete normally with the reader wedged.
	done := waitJob(t, ts, st.ID, jobs.Done)
	if done.Progress.CellsDone != 6 {
		t.Errorf("progress %+v", done.Progress)
	}
	// A second, healthy reader drains the full history concurrently.
	events := readEventLines(t, ts, st.ID)
	if events[len(events)-1]["type"] != "done" {
		t.Error("healthy reader did not get the done event")
	}
}

// TestJobCacheHitResubmission is the headline acceptance test: a
// resubmitted identical sweep is served entirely from the result
// cache — zero simulated cycles, proven by the cache and fast-core
// counters and by the job's own progress accounting.
func TestJobCacheHitResubmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	sweep := SweepRequest{
		Workloads:    []string{"loops", "micro"},
		Seeds:        []uint64{1, 2},
		Instructions: 100_000,
	}

	first := submitJob(t, ts, JobRequest{Sweep: &sweep})
	firstDone := waitJob(t, ts, first.ID, jobs.Done)
	if firstDone.Progress.CellsCached != 0 {
		t.Fatalf("cold run reported cached cells: %+v", firstDone.Progress)
	}
	hits0 := metricValue(t, ts, "zbpd_cache_hits_total")
	misses0 := metricValue(t, ts, "zbpd_cache_misses_total")
	if misses0 != 4 {
		t.Fatalf("cold run misses = %v, want 4", misses0)
	}
	fast0 := s.fastCoreRuns.Load()

	second := submitJob(t, ts, JobRequest{Sweep: &sweep})
	secondDone := waitJob(t, ts, second.ID, jobs.Done)

	// Every cell cached, no new compute, not one additional simulated
	// instruction.
	if secondDone.Progress.CellsCached != 4 || secondDone.Progress.CellsDone != 4 {
		t.Errorf("resubmission progress %+v, want 4/4 cached", secondDone.Progress)
	}
	if d := metricValue(t, ts, "zbpd_cache_hits_total") - hits0; d != 4 {
		t.Errorf("cache hits delta %v, want 4", d)
	}
	if d := metricValue(t, ts, "zbpd_cache_misses_total") - misses0; d != 0 {
		t.Errorf("cache misses delta %v, want 0", d)
	}
	if d := s.fastCoreRuns.Load() - fast0; d != 0 {
		t.Errorf("fast-core runs delta %d, want 0 (a cached sweep simulates nothing)", d)
	}
	// Wall time: a pure cache replay must not look like a simulation.
	if secondDone.WallMs > firstDone.WallMs && secondDone.WallMs > 100 {
		t.Errorf("cached sweep wall %dms vs cold %dms", secondDone.WallMs, firstDone.WallMs)
	}
	// And the payload is byte-identical: same bytes, not merely equal
	// numbers.
	if !bytes.Equal(firstDone.Result, secondDone.Result) {
		t.Error("cached result bytes differ from the cold run")
	}
}

// TestJobConcurrentIdenticalSingleflight: N identical jobs submitted
// at once compute each cell exactly once — everyone else coalesces
// onto the in-flight compute or hits memory — and every observer gets
// byte-identical results.
func TestJobConcurrentIdenticalSingleflight(t *testing.T) {
	const N = 8
	s, ts := newTestServer(t, Config{Workers: runtime.GOMAXPROCS(0), QueueDepth: N})
	sweep := SweepRequest{
		Workloads:    []string{"loops", "micro"},
		Seeds:        []uint64{5, 6},
		Instructions: 60_000,
	}

	ids := make([]string, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submitJob(t, ts, JobRequest{Sweep: &sweep}).ID
		}(i)
	}
	wg.Wait()

	results := make([][]byte, N)
	for i, id := range ids {
		results[i] = waitJob(t, ts, id, jobs.Done).Result
	}
	for i := 1; i < N; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("job %d result differs from job 0", i)
		}
	}
	const cells = 4
	if got := s.cache.Misses(); got != cells {
		t.Errorf("misses = %d, want %d (one compute per cell)", got, cells)
	}
	if got := s.cache.Puts(); got != cells {
		t.Errorf("puts = %d, want %d", got, cells)
	}
	if got := s.fastCoreRuns.Load(); got != cells {
		t.Errorf("fast-core runs = %d, want %d (every cell simulated once)", got, cells)
	}
	if got := s.cache.Hits(); got != int64(N*cells-cells) {
		t.Errorf("hits = %d, want %d", got, N*cells-cells)
	}
}

// TestJobDiff: the diff kind runs the equivalence harness async, with
// per-cell events and the standard response shape as the result.
func TestJobDiff(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st := submitJob(t, ts, JobRequest{Diff: &DiffRequest{
		Workloads:    []string{"loops"},
		Instructions: 20_000,
	}})
	done := waitJob(t, ts, st.ID, jobs.Done)
	var resp DiffResponse
	if err := json.Unmarshal(done.Result, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 1 || !resp.Cells[0].OK || resp.Divergences != 0 {
		t.Errorf("diff result %+v", resp)
	}
	events := readEventLines(t, ts, st.ID)
	sawDiffCell := false
	for _, e := range events {
		if e["type"] == "diff_cell" {
			sawDiffCell = true
			if e["ok"] != true {
				t.Errorf("diff cell event %v", e)
			}
		}
	}
	if !sawDiffCell {
		t.Error("no diff_cell event published")
	}
}

// TestJobSubmitAfterDrain: once Drain begins, submissions are refused
// with 503 — jobs must not outlive the shutdown decision.
func TestJobSubmitAfterDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.Drain()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Simulate: &SimulateRequest{Workload: "loops", Instructions: 10_000},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status %d (%s), want 503", resp.StatusCode, body)
	}
}

// TestJobGoroutineLeak: a full lifecycle — jobs, streams, a stalled
// reader, cancellation, shutdown — returns the process to its
// baseline goroutine count.
func TestJobGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	func() {
		s, err := New(Config{Workers: 2, AuditEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			s.Close()
		}()
		st := submitJob(t, ts, JobRequest{Sweep: &SweepRequest{
			Workloads:    []string{"loops"},
			Seeds:        []uint64{1, 2},
			Instructions: 20_000,
		}})
		stalled, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, ts, st.ID, jobs.Done)
		readEventLines(t, ts, st.ID)
		stalled.Body.Close()
		s.Drain()
	}()

	waitFor(t, 10*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	}, func() string {
		buf := make([]byte, 1<<20)
		return fmt.Sprintf("goroutines %d > baseline %d\n%s",
			runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
	})
}

// TestJobPoisonedCacheEntryCaughtByAuditor is the end-to-end
// poisoning test: a corrupted on-disk cache entry (valid header,
// tampered payload) is served to a client — the disk layer carries no
// checksum by design — and the sampled equiv audit catches it,
// bumping zbpd_cache_audit_failures_total.
func TestJobPoisonedCacheEntryCaughtByAuditor(t *testing.T) {
	dir := t.TempDir()
	spec := rcache.CellSpec{Config: "z15", Workload: "loops", Seed: 9, Instructions: 50_000}

	// Phase 1: an honest server computes and persists the cell.
	var honestCycles int64
	func() {
		s, err := New(Config{Workers: 1, CacheDir: dir, AuditEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			s.Close()
		}()
		st := submitJob(t, ts, JobRequest{Simulate: &SimulateRequest{
			Workload: spec.Workload, Seed: &spec.Seed, Instructions: spec.Instructions,
		}})
		done := waitJob(t, ts, st.ID, jobs.Done)
		var resp SimulateResponse
		if err := json.Unmarshal(done.Result, &resp); err != nil {
			t.Fatal(err)
		}
		honestCycles = resp.Cycles
	}()

	// Poison the disk entry: keep the identity header, bump sim.cycles
	// in the payload, re-serialize canonically so nothing short of
	// recomputation can tell.
	path := filepath.Join(dir, rcache.NewKey(spec).Hash()+".zrc")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(raw, '\n')
	var snap metrics.Snapshot
	if err := json.Unmarshal(raw[nl+1:], &snap); err != nil {
		t.Fatal(err)
	}
	snap.Counters["sim.cycles"] += 1_000_000
	tampered, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw[:nl+1:nl+1], tampered...), 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh server (cold memory cache, audit every hit)
	// serves the poisoned entry... and the auditor calls it out.
	s, ts := newTestServer(t, Config{Workers: 1, CacheDir: dir, AuditEvery: 1})
	st := submitJob(t, ts, JobRequest{Simulate: &SimulateRequest{
		Workload: spec.Workload, Seed: &spec.Seed, Instructions: spec.Instructions,
	}})
	done := waitJob(t, ts, st.ID, jobs.Done)
	var resp SimulateResponse
	if err := json.Unmarshal(done.Result, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cycles != honestCycles+1_000_000 {
		t.Fatalf("poisoned entry not served from disk: cycles %d, honest %d (was the cell recomputed?)",
			resp.Cycles, honestCycles)
	}
	if s.cache.DiskHits() != 1 {
		t.Fatalf("diskHits = %d, want 1 — the poisoned read must come from disk", s.cache.DiskHits())
	}

	waitFor(t, 30*time.Second, func() bool {
		return s.auditFailures.Load() >= 1
	}, func() string {
		return fmt.Sprintf("audits=%d failures=%d errors=%d dropped=%d",
			s.audits.Load(), s.auditFailures.Load(), s.auditErrors.Load(), s.auditDropped.Load())
	})
	if metricValue(t, ts, "zbpd_cache_audit_failures_total") < 1 {
		t.Error("audit failure not exported on /metrics")
	}
}

// TestJobNoCacheBypass: no_cache forces a fresh compute and leaves no
// cache entry behind.
func TestJobNoCacheBypass(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	req := JobRequest{
		Simulate: &SimulateRequest{Workload: "loops", Instructions: 20_000},
		NoCache:  true,
	}
	st := submitJob(t, ts, req)
	done := waitJob(t, ts, st.ID, jobs.Done)
	if done.Progress.CellsCached != 0 {
		t.Errorf("no_cache job reported a cached cell: %+v", done.Progress)
	}
	if s.cache.Misses() != 0 || s.cache.Puts() != 0 || s.cache.Len() != 0 {
		t.Errorf("no_cache touched the cache: misses=%d puts=%d len=%d",
			s.cache.Misses(), s.cache.Puts(), s.cache.Len())
	}
}
