package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"zbp/internal/core"
	"zbp/internal/equiv"
)

// DiffRequest is the POST /v1/diff body: run the differential
// equivalence harness (internal/equiv) over a Configs x Workloads grid
// and report every divergence. A deployment smoke test for the
// simulator itself — the service-side twin of cmd/zdiff.
type DiffRequest struct {
	Configs      []string `json:"configs,omitempty"` // default ["z15"]
	Workloads    []string `json:"workloads"`         // required
	Seed         *uint64  `json:"seed,omitempty"`    // default 42
	Instructions int      `json:"instructions,omitempty"`
	TimeoutMs    int      `json:"timeout_ms,omitempty"`
	// Checks selects a subset of equiv.CheckNames(); empty runs all.
	Checks []string `json:"checks,omitempty"`
	// Perturb deliberately corrupts predictor state so operators can
	// verify end to end that the harness detects real divergence; a
	// perturbed run reporting zero divergences means the check layer is
	// broken.
	Perturb bool `json:"perturb,omitempty"`
}

// DiffFinding is one reported divergence.
type DiffFinding struct {
	Check  string `json:"check"`
	Metric string `json:"metric,omitempty"`
	Detail string `json:"detail"`
}

// DiffCell is one grid point's verdict.
type DiffCell struct {
	Config   string        `json:"config"`
	Workload string        `json:"workload"`
	Seed     uint64        `json:"seed"`
	Checks   int           `json:"checks"`
	OK       bool          `json:"ok"`
	Findings []DiffFinding `json:"findings,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// DiffResponse is the POST /v1/diff reply, cells in grid order.
type DiffResponse struct {
	Cells       []DiffCell `json:"cells"`
	Divergences int        `json:"divergences"`
}

// normalizeDiff applies diff defaults in place and validates,
// returning the resolved seed and the grid size. Shared by the sync
// handler and async job submission.
func (s *Server) normalizeDiff(req *DiffRequest) (uint64, int, error) {
	if len(req.Configs) == 0 {
		req.Configs = []string{"z15"}
	}
	seed := uint64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	if req.Instructions == 0 {
		req.Instructions = s.cfg.DefaultInstructions
	}
	if req.Instructions < 0 || req.Instructions > s.cfg.MaxInstructions {
		return 0, 0, fmt.Errorf("instructions %d out of range [1, %d]", req.Instructions, s.cfg.MaxInstructions)
	}
	cells := len(req.Configs) * len(req.Workloads)
	if cells == 0 {
		return 0, 0, errors.New("empty diff grid: need workloads")
	}
	if cells > s.cfg.MaxSweepCells {
		return 0, 0, fmt.Errorf("diff grid has %d cells, limit %d", cells, s.cfg.MaxSweepCells)
	}
	for _, name := range req.Configs {
		if _, err := core.ByName(name); err != nil {
			return 0, 0, err
		}
	}
	if err := s.resolveWorkloads(sliceRefs(req.Workloads)...); err != nil {
		return 0, 0, err
	}
	known := map[string]bool{}
	for _, n := range equiv.CheckNames() {
		known[n] = true
	}
	for _, n := range req.Checks {
		if !known[n] {
			return 0, 0, fmt.Errorf("unknown check %q (have %v)", n, equiv.CheckNames())
		}
	}
	return seed, cells, nil
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req DiffRequest
	if !s.decode(w, r, &req) {
		return
	}
	seed, _, err := s.normalizeDiff(&req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	grid := equiv.Grid(req.Configs, req.Workloads, seed, req.Instructions)
	opts := equiv.Options{Checks: req.Checks, Perturb: req.Perturb}
	var results []equiv.CellResult
	submitErr := s.enqueue(ctx, func(ctx context.Context) {
		// Like sweeps, the whole grid occupies one queue slot;
		// parallelism 1 keeps simulation concurrency at the worker
		// count.
		results = equiv.CheckGrid(ctx, grid, opts, 1)
	})
	if s.replyQueueError(w, submitErr) {
		return
	}
	if results == nil {
		// Skipped while queued.
		s.replyRunError(w, ctx.Err())
		return
	}

	resp := DiffResponse{Cells: make([]DiffCell, len(results))}
	for i, cr := range results {
		cell := diffCellOf(cr)
		if !cell.OK {
			resp.Divergences++
			s.diffDivergences.Add(1)
		}
		resp.Cells[i] = cell
	}
	s.completed.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// diffCellOf converts one harness cell result to the API shape
// (shared by the sync handler and the async diff job).
func diffCellOf(cr equiv.CellResult) DiffCell {
	cell := DiffCell{
		Config:   cr.Cell.Config,
		Workload: cr.Cell.Workload,
		Seed:     cr.Cell.Seed,
		Checks:   len(cr.Checks),
		OK:       cr.OK(),
	}
	if cr.Err != nil {
		cell.Error = cr.Err.Error()
	}
	for _, f := range cr.Findings() {
		cell.Findings = append(cell.Findings, DiffFinding{
			Check: f.Check, Metric: f.Metric, Detail: f.Detail,
		})
	}
	return cell
}
