package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"zbp/internal/metrics"
	"zbp/internal/rcache"
)

func TestCellEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := CellRequest{SimulateRequest: SimulateRequest{
		Workload: "loops", Instructions: 20_000,
	}}

	resp, body := postJSON(t, ts.URL+"/v1/cell", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var first CellResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request reported cached")
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(first.Stats, &snap); err != nil {
		t.Fatalf("stats payload is not a snapshot: %v", err)
	}
	if snap.SchemaVersion != metrics.SchemaVersion {
		t.Errorf("schema %d, want %d", snap.SchemaVersion, metrics.SchemaVersion)
	}
	if got := int64(snap.Gauges["sim.instructions"]); got != 20_000 {
		t.Errorf("retired %d instructions, want 20000", got)
	}

	// Second identical request: a cache hit with the same bytes.
	resp, body = postJSON(t, ts.URL+"/v1/cell", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, body)
	}
	var second CellResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeat request not served from cache")
	}
	if string(second.Stats) != string(first.Stats) {
		t.Error("cached stats differ from computed stats")
	}
	if s.cache.Hits() == 0 {
		t.Error("cache hit counter did not move")
	}

	// The response payload is the cache's canonical entry (the HTTP
	// layer re-indents, so compare compacted forms).
	key := rcache.NewKey(rcache.CellSpec{
		Config: "z15", Workload: "loops", Seed: 42, Instructions: 20_000,
	})
	v, ok := s.cache.Get(key)
	if !ok {
		t.Fatal("canonical key missing from the cache")
	}
	if compact(t, v) != compact(t, first.Stats) {
		t.Error("cell response bytes are not the cache's canonical entry")
	}
}

func compact(t *testing.T, b []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCellValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, _ := postJSON(t, ts.URL+"/v1/cell", CellRequest{SimulateRequest: SimulateRequest{
		Workload: "no-such-workload",
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthzJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 7})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
	if h.Workers != 3 {
		t.Errorf("workers %d, want 3", h.Workers)
	}
	if h.QueueCapacity != 7 {
		t.Errorf("queue capacity %d, want 7", h.QueueCapacity)
	}
	if h.QueueDepth < 0 || h.Inflight < 0 || h.RunSecondsEWMA < 0 {
		t.Errorf("negative load fields: %+v", h)
	}
}
