package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zbp/internal/workload"
)

// writeServerTrace materializes a small trace file into dir.
func writeServerTrace(t *testing.T, dir, base string) string {
	t.Helper()
	p, err := workload.MakePacked("loops", 7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, base)
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceDirDisabledByDefault: without -trace-dir, a file: workload
// in a request is a 400, never a local file read.
func TestTraceDirDisabledByDefault(t *testing.T) {
	dir := t.TempDir()
	writeServerTrace(t, dir, "t.zbpt")
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workload:     "file:" + filepath.Join(dir, "t.zbpt"),
		Instructions: 1000,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "disabled") {
		t.Fatalf("unexpected error body: %s", body)
	}
}

// TestTraceDirSimulate: with the allowlist configured, a relative
// file: workload resolves inside it and simulates normally.
func TestTraceDirSimulate(t *testing.T) {
	dir := t.TempDir()
	writeServerTrace(t, dir, "t.zbpt")
	_, ts := newTestServer(t, Config{Workers: 1, TraceDir: dir})
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workload:     "file:t.zbpt",
		Instructions: 4000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Instructions == 0 {
		t.Fatal("file-backed simulation ran zero instructions")
	}
}

// TestTraceDirEscapes: `..` escapes and absolute paths outside the
// allowlisted directory are rejected even when the file exists.
func TestTraceDirEscapes(t *testing.T) {
	dir := t.TempDir()
	outside := t.TempDir()
	writeServerTrace(t, outside, "out.zbpt")
	writeServerTrace(t, dir, "in.zbpt")
	_, ts := newTestServer(t, Config{Workers: 1, TraceDir: dir})

	for _, name := range []string{
		"file:../" + filepath.Base(outside) + "/out.zbpt",
		"file:" + filepath.Join(outside, "out.zbpt"),
		"file:sub/../../escape.zbpt",
	} {
		resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
			Workload: name, Instructions: 1000,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "escapes") {
			t.Errorf("%s: unexpected error body: %s", name, body)
		}
	}
}

// TestTraceDirSpecRefsConfined: a spec document inside the trace dir
// cannot smuggle in references to files outside it.
func TestTraceDirSpecRefsConfined(t *testing.T) {
	dir := t.TempDir()
	outside := t.TempDir()
	writeServerTrace(t, outside, "out.zbpt")
	doc := `{"version":1,"parts":[{"file":"` + filepath.Join(outside, "out.zbpt") + `"}]}`
	if err := os.WriteFile(filepath.Join(dir, "mix.json"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, TraceDir: dir})
	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workload: "spec:mix.json", Instructions: 1000,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "escapes") {
		t.Fatalf("unexpected error body: %s", body)
	}
}

// TestTraceDirSweep: sweeps accept confined file-backed workloads
// alongside generators and resolve them to the same canonical names.
func TestTraceDirSweep(t *testing.T) {
	dir := t.TempDir()
	writeServerTrace(t, dir, "t.zbpt")
	_, ts := newTestServer(t, Config{Workers: 2, TraceDir: dir})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Configs:      []string{"z15"},
		Workloads:    []string{"loops", "file:t.zbpt"},
		Instructions: 2000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SweepResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) != 2 || out.Errors != 0 {
		t.Fatalf("sweep cells %d errors %d: %s", len(out.Cells), out.Errors, body)
	}
	// The resolved canonical name (absolute path under the trace dir)
	// is what comes back in the grid.
	want := "file:" + filepath.Join(dir, "t.zbpt")
	found := false
	for _, c := range out.Cells {
		if c.Workload == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cell carries the resolved name %q: %s", want, body)
	}
}
