package verif

import (
	"fmt"
	"strings"
)

// Finding is one detected discrepancy, generalized beyond the array
// monitors: the differential harness (internal/equiv) and the lockstep
// monitors in this package share it so every correctness layer reports
// divergences in the same shape — which check fired, on which cell (or
// array), at which cycle, and the first metric that disagreed.
type Finding struct {
	// Check names the checker that fired ("read-monitor",
	// "packed-vs-streaming", ...).
	Check string
	// Cell identifies the stimulus: a (config, workload, seed, budget)
	// cell for differential checks, a driver label for array monitors.
	Cell string
	// Cycle is the simulation cycle the discrepancy was observed at, or
	// -1 when the check compares whole-run aggregates.
	Cycle int64
	// Metric is the first diverging metric (stats-snapshot key) for
	// aggregate checks; empty for cycle-level monitor errors.
	Metric string
	// Detail is the human-readable explanation.
	Detail string
}

func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s", f.Check, f.Cell)
	if f.Cycle >= 0 {
		fmt.Fprintf(&b, " cycle %d", f.Cycle)
	}
	if f.Metric != "" {
		fmt.Fprintf(&b, " metric %s", f.Metric)
	}
	if f.Detail != "" {
		fmt.Fprintf(&b, ": %s", f.Detail)
	}
	return b.String()
}

// Finding lifts a monitor Error into the shared report shape.
func (e Error) Finding(check, cell string) Finding {
	return Finding{Check: check, Cell: cell, Cycle: e.Cycle, Detail: e.What}
}

// DiffReport collects findings from one differential or monitor
// crosscheck run. (Report, in driver.go, is the constrained-random
// run summary; a DiffReport is the divergence list shared by equiv
// and the monitors.)
type DiffReport struct {
	Findings []Finding
}

// Add records a finding.
func (r *DiffReport) Add(f Finding) { r.Findings = append(r.Findings, f) }

// Addf records a formatted aggregate finding (no cycle attribution).
func (r *DiffReport) Addf(check, cell, metric, format string, args ...any) {
	r.Add(Finding{Check: check, Cell: cell, Cycle: -1, Metric: metric,
		Detail: fmt.Sprintf(format, args...)})
}

// OK reports a clean run.
func (r DiffReport) OK() bool { return len(r.Findings) == 0 }

// String renders every finding, one per line.
func (r DiffReport) String() string {
	lines := make([]string, len(r.Findings))
	for i, f := range r.Findings {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}
