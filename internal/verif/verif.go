// Package verif reproduces the paper's §VII verification methodology
// in software: white-box, hardware-signal-driven reference models that
// run in lockstep with the design under test, decoupled read-side and
// write-side monitors, expect/checkpoint crosschecking, array
// preloading, and a constrained-random stimulus driver.
//
// The reference models here are deliberately *driven by design events*
// (btb.Event observers) rather than independently recomputed -- exactly
// as the paper describes: "these hardware signal driven models in C++
// were more of an abstraction of the internal hardware workings than an
// independent reference model... Hardware implementation errors would
// corrupt values in these models." The monitors then crosscheck the
// design's outputs (read side) and its write behaviour (write side)
// against these mirrors. Read and write monitors are decoupled: the
// read-side mirror is updated only by observed hardware writes, never
// by write-side expectations (figure 11).
package verif

import (
	"fmt"

	"zbp/internal/btb"
	"zbp/internal/core"
	"zbp/internal/tgt"
	"zbp/internal/zarch"
)

// Error is one detected discrepancy.
type Error struct {
	Cycle int64
	What  string
}

func (e Error) String() string { return fmt.Sprintf("cycle %d: %s", e.Cycle, e.What) }

// mirrorEntry is one slot of the hardware-driven BTB1 mirror.
type mirrorEntry struct {
	valid bool
	info  btb.Info
}

// ReadMonitor crosschecks every prediction the design presents against
// the hardware-driven BTB1 mirror: the predicted branch must be
// explainable by mirror content (same row, a way whose stored entry
// reconstructs to the predicted address), with matching kind and -- for
// BTB-provided targets -- matching target.
type ReadMonitor struct {
	geo    btb.Geometry
	mirror [][]mirrorEntry
	errs   []Error
	checks int64
}

// newReadMonitor builds a read-side monitor for the given geometry;
// use Attach to wire it to a core.
func newReadMonitor(geo btb.Geometry) *ReadMonitor {
	m := &ReadMonitor{geo: geo}
	m.mirror = make([][]mirrorEntry, geo.Rows())
	for i := range m.mirror {
		m.mirror[i] = make([]mirrorEntry, geo.Ways)
	}
	return m
}

// onWrite updates the mirror from a hardware write event (lockstep).
func (m *ReadMonitor) onWrite(ev btb.Event) {
	e := &m.mirror[ev.Row][ev.Way]
	switch ev.Kind {
	case btb.EvInstall, btb.EvUpdate:
		*e = mirrorEntry{valid: true, info: ev.Info}
	case btb.EvInvalidate:
		e.valid = false
	case btb.EvEvict:
		e.valid = false
	}
}

// row/tag/offset mirror the hardware index functions.
func (m *ReadMonitor) row(addr zarch.Addr) int {
	return int(uint64(addr) >> m.geo.LineShift & uint64(m.geo.Rows()-1))
}

// CheckPrediction crosschecks one presented prediction at its b5 cycle.
// fromBTBP predictions (pre-z15 designs) bypass the BTB1 mirror.
func (m *ReadMonitor) CheckPrediction(p core.Prediction) {
	if p.FromBTBP {
		return
	}
	m.checks++
	row := m.mirror[m.row(p.Addr)]
	line := m.geo.Line(p.Addr)
	off := p.Addr - line
	for w := range row {
		e := &row[w]
		if !e.valid {
			continue
		}
		// Reconstruct as the hardware would: same in-line offset, and
		// the entry's own line must fold to the same row and tag. The
		// mirror stores the installed Info, whose Addr carries the
		// true install address.
		eOff := e.info.Addr - m.geo.Line(e.info.Addr)
		if eOff != off || m.row(e.info.Addr) != m.row(p.Addr) {
			continue
		}
		if e.info.Kind != p.Kind {
			continue
		}
		if p.Taken && p.Tgt.Provider == tgt.ProvBTB && e.info.Target != p.Target {
			continue
		}
		return // explained
	}
	m.errs = append(m.errs, Error{
		Cycle: p.PresentedAt,
		What: fmt.Sprintf("prediction at %s (way %d, taken=%v) not explainable by BTB1 mirror",
			p.Addr, p.Way, p.Taken),
	})
}

// Errors returns the detected discrepancies.
func (m *ReadMonitor) Errors() []Error { return m.errs }

// Checks returns how many predictions were crosschecked.
func (m *ReadMonitor) Checks() int64 { return m.checks }

// expect is one outstanding write-side expectation.
type expect struct {
	addr     zarch.Addr
	deadline int64
	note     string
}

// WriteMonitor checks that required installs actually reach the BTB1:
// after a surprise branch that must be installed completes, an install
// or update event for its address must be observed before a deadline
// (the write queue drains one entry per cycle, §IV). Expect values are
// recorded at the triggering event and crosschecked at checkpoints;
// they are never forwarded into the read-side mirror (figure 10/11).
type WriteMonitor struct {
	pending []expect
	errs    []Error
	checks  int64
}

// Chain composes observers so several monitors can watch one table.
func Chain(fns ...func(btb.Event)) func(btb.Event) {
	return func(ev btb.Event) {
		for _, fn := range fns {
			fn(ev)
		}
	}
}

func (m *WriteMonitor) onWrite(ev btb.Event) {
	if ev.Kind != btb.EvInstall && ev.Kind != btb.EvUpdate {
		return
	}
	out := m.pending[:0]
	for _, ex := range m.pending {
		if ex.addr == ev.Info.Addr {
			m.checks++
			continue
		}
		out = append(out, ex)
	}
	m.pending = out
}

// ExpectInstall records that addr must be written by cycle deadline.
func (m *WriteMonitor) ExpectInstall(addr zarch.Addr, deadline int64, note string) {
	m.pending = append(m.pending, expect{addr: addr, deadline: deadline, note: note})
}

// Checkpoint crosschecks all expired expectations at the given cycle.
func (m *WriteMonitor) Checkpoint(now int64) {
	out := m.pending[:0]
	for _, ex := range m.pending {
		if ex.deadline <= now {
			m.errs = append(m.errs, Error{
				Cycle: now,
				What:  fmt.Sprintf("expected install of %s (%s) never observed", ex.addr, ex.note),
			})
			continue
		}
		out = append(out, ex)
	}
	m.pending = out
}

// Errors returns the detected discrepancies.
func (m *WriteMonitor) Errors() []Error { return m.errs }

// Checks returns how many expectations were satisfied.
func (m *WriteMonitor) Checks() int64 { return m.checks }

// Harness wires the decoupled read-side and write-side monitors to a
// predictor core (figure 11). Attach it before running stimulus.
type Harness struct {
	Read  *ReadMonitor
	Write *WriteMonitor
	c     *core.Core
}

// Attach builds and wires a verification harness onto c.
func Attach(c *core.Core) *Harness {
	h := &Harness{
		Read:  newReadMonitor(c.Config().BTB1),
		Write: &WriteMonitor{},
		c:     c,
	}
	// The read-side mirror and the write-side checker observe the same
	// hardware write signals but remain otherwise decoupled: the
	// mirror is never updated from write-side expectations (§VII).
	c.ObserveBTB1(Chain(h.Read.onWrite, h.Write.onWrite))
	c.SetPredictHook(h.Read.CheckPrediction)
	wq := int64(c.Config().WriteQueueCap + c.Config().StageCap + 64)
	c.SetSurpriseHook(func(s core.Surprise, queued bool) {
		if queued {
			h.Write.ExpectInstall(s.Addr, c.Clock()+wq, "surprise install")
		}
	})
	return h
}

// Checkpoint crosschecks expired write-side expectations now.
func (h *Harness) Checkpoint() { h.Write.Checkpoint(h.c.Clock()) }

// Errors returns all discrepancies from both monitors.
func (h *Harness) Errors() []Error {
	var errs []Error
	errs = append(errs, h.Read.Errors()...)
	errs = append(errs, h.Write.Errors()...)
	return errs
}

// Checks returns the total crosschecks performed.
func (h *Harness) Checks() int64 { return h.Read.Checks() + h.Write.Checks() }
