package verif

import (
	"fmt"

	"zbp/internal/btb"
	"zbp/internal/core"
	"zbp/internal/zarch"
)

// InclusionMonitor checks the z15 semi-inclusive invariant of §III:
// "the BTB2 acts as an approximate super-set of the BTB1". It mirrors
// the set of live BTB1 branch addresses from write events and, at
// checkpoints, verifies that each is present in the BTB2.
//
// The invariant is *approximate* in hardware too (the paper's word):
// BTB2 conflict evictions legitimately lose a few percent of the
// population (code 2MB apart shares BTB2 rows), so the monitor reports
// a violation only when the miss ratio at a checkpoint exceeds a
// tolerance. Branches that entered the BTB1 via
// Preload (test setup) are exempted automatically when preloading
// bypasses both levels' coupling — attach the monitor before
// preloading only if both levels are preloaded consistently.
type InclusionMonitor struct {
	c         *core.Core
	live      map[zarch.Addr]bool
	tolerance float64
	errs      []Error
	checks    int64
}

// NewInclusionMonitor attaches an inclusion monitor to c. tolerance is
// the allowed fraction of BTB1 entries missing from the BTB2 at a
// checkpoint (e.g. 0.02).
func NewInclusionMonitor(c *core.Core, tolerance float64) *InclusionMonitor {
	m := &InclusionMonitor{c: c, live: make(map[zarch.Addr]bool), tolerance: tolerance}
	c.ObserveBTB1(m.onWrite)
	return m
}

func (m *InclusionMonitor) onWrite(ev btb.Event) {
	switch ev.Kind {
	case btb.EvInstall, btb.EvUpdate:
		m.live[ev.Info.Addr] = true
	case btb.EvEvict, btb.EvInvalidate:
		delete(m.live, ev.Info.Addr)
	}
}

// Checkpoint crosschecks the live BTB1 set against the BTB2.
func (m *InclusionMonitor) Checkpoint() {
	if len(m.live) == 0 {
		return
	}
	m.checks++
	missing := 0
	for addr := range m.live {
		if _, ok := m.c.BTB2Lookup(addr); !ok {
			missing++
		}
	}
	ratio := float64(missing) / float64(len(m.live))
	if ratio > m.tolerance {
		m.errs = append(m.errs, Error{
			Cycle: m.c.Clock(),
			What: fmt.Sprintf("semi-inclusive invariant broken: %d of %d BTB1 entries (%.1f%%) missing from BTB2",
				missing, len(m.live), 100*ratio),
		})
	}
}

// Errors returns the detected violations.
func (m *InclusionMonitor) Errors() []Error { return m.errs }

// Checks returns the number of checkpoints evaluated.
func (m *InclusionMonitor) Checks() int64 { return m.checks }

// Live returns the mirrored BTB1 population size (for tests).
func (m *InclusionMonitor) Live() int { return len(m.live) }
