package verif

import (
	"fmt"

	"zbp/internal/btb"
	"zbp/internal/dirpred"
	"zbp/internal/history"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

// This file holds the "formal" side of the §VII methodology: where the
// state space of a component is small enough, we do not sample it with
// constrained-random stimulus -- we enumerate it exhaustively against an
// independent reference semantics. ("Simulation-based and formal
// verification techniques were applied.")

// ExhaustiveCounter2 checks every 2-bit counter state against the
// saturating-counter reference semantics: updates move at most one
// step, toward the resolution, saturating at the rails; Taken/Weak
// classification matches the encoding.
func ExhaustiveCounter2() error {
	for s := 0; s < 4; s++ {
		c := sat.Counter2(s)
		if got, want := c.Taken(), s >= 2; got != want {
			return fmt.Errorf("state %d: Taken=%v want %v", s, got, want)
		}
		if got, want := c.Weak(), s == 1 || s == 2; got != want {
			return fmt.Errorf("state %d: Weak=%v want %v", s, got, want)
		}
		for _, taken := range []bool{false, true} {
			n := int(c.Update(taken))
			want := s
			if taken && s < 3 {
				want = s + 1
			}
			if !taken && s > 0 {
				want = s - 1
			}
			if n != want {
				return fmt.Errorf("state %d update(%v) = %d, want %d", s, taken, n, want)
			}
		}
		if st := c.Strengthen(); st.Taken() != c.Taken() || st.Weak() {
			return fmt.Errorf("state %d: Strengthen = %d", s, st)
		}
	}
	return nil
}

// ExhaustiveSpecDir model-checks the speculative-direction tracker
// against a reference (ordered association list) over every operation
// sequence of the given length drawn from a small alphabet of installs,
// completes and flushes. capacity is the tracker size under test.
func ExhaustiveSpecDir(capacity, depth int) error {
	type op struct {
		kind int // 0 install, 1 complete, 2 flush
		addr zarch.Addr
		dir  bool
		seq  uint64
	}
	alphabet := []op{
		{0, 0x10, true, 1},
		{0, 0x10, false, 2},
		{0, 0x20, true, 2},
		{0, 0x30, true, 3},
		{1, 0, false, 1},
		{1, 0, false, 2},
		{2, 0, false, 2},
	}

	type refEntry struct {
		addr zarch.Addr
		dir  bool
		seq  uint64
	}

	var run func(prefix []op) error
	run = func(prefix []op) error {
		if len(prefix) == depth {
			s := dirpred.NewSpecDir(capacity)
			var ref []refEntry
			for _, o := range prefix {
				switch o.kind {
				case 0:
					s.Install(o.addr, o.dir, o.seq)
					replaced := false
					for i := range ref {
						if ref[i].addr == o.addr {
							ref[i].dir, ref[i].seq = o.dir, o.seq
							replaced = true
							break
						}
					}
					if !replaced {
						if len(ref) >= capacity {
							ref = ref[1:]
						}
						ref = append(ref, refEntry{o.addr, o.dir, o.seq})
					}
				case 1:
					s.Complete(o.seq)
					out := ref[:0]
					for _, e := range ref {
						if e.seq != o.seq {
							out = append(out, e)
						}
					}
					ref = out
				case 2:
					s.Flush(o.seq)
					out := ref[:0]
					for _, e := range ref {
						if e.seq < o.seq {
							out = append(out, e)
						}
					}
					ref = out
				}
			}
			// Crosscheck observable behaviour.
			if s.Len() != len(ref) {
				return fmt.Errorf("seq %v: Len=%d ref=%d", prefix, s.Len(), len(ref))
			}
			for _, a := range []zarch.Addr{0x10, 0x20, 0x30} {
				gotDir, gotOK := s.Lookup(a)
				wantOK := false
				var wantDir bool
				for _, e := range ref {
					if e.addr == a {
						wantOK, wantDir = true, e.dir
					}
				}
				if gotOK != wantOK || (gotOK && gotDir != wantDir) {
					return fmt.Errorf("seq %v: Lookup(%#x) = (%v,%v), want (%v,%v)",
						prefix, a, gotDir, gotOK, wantDir, wantOK)
				}
			}
			return nil
		}
		for _, o := range alphabet {
			if err := run(append(prefix, o)); err != nil {
				return err
			}
		}
		return nil
	}
	return run(nil)
}

// ExhaustiveStage model-checks the staging queue against a bounded
// reference FIFO over every push/pop sequence of the given depth.
func ExhaustiveStage(capacity, depth int) error {
	var run func(prefix []int) error
	run = func(prefix []int) error {
		if len(prefix) == depth {
			st := btb.NewStage(capacity)
			var ref []zarch.Addr
			var drops int64
			next := zarch.Addr(0x100)
			for _, k := range prefix {
				if k == 0 { // push
					if len(ref) >= capacity {
						drops++
					} else {
						ref = append(ref, next)
					}
					st.Push(btb.Info{Addr: next})
					next += 0x10
				} else { // pop
					got, ok := st.Pop()
					if len(ref) == 0 {
						if ok {
							return fmt.Errorf("seq %v: pop on empty returned %v", prefix, got.Addr)
						}
					} else {
						if !ok || got.Addr != ref[0] {
							return fmt.Errorf("seq %v: pop = (%v,%v), want %v", prefix, got.Addr, ok, ref[0])
						}
						ref = ref[1:]
					}
				}
			}
			if st.Len() != len(ref) || st.Drops() != drops {
				return fmt.Errorf("seq %v: len/drops = %d/%d, want %d/%d",
					prefix, st.Len(), st.Drops(), len(ref), drops)
			}
			return nil
		}
		for k := 0; k < 2; k++ {
			if err := run(append(prefix, k)); err != nil {
				return err
			}
		}
		return nil
	}
	return run(nil)
}

// ExhaustiveGPV checks the path vector against a reference shift
// register for every sequence of pushes of the given depth drawn from
// a small address alphabet.
func ExhaustiveGPV(gpvDepth, seqDepth int) error {
	alphabet := []zarch.Addr{0x1000, 0x2002, 0x3004, 0x4006}
	var run func(prefix []zarch.Addr) error
	run = func(prefix []zarch.Addr) error {
		if len(prefix) == seqDepth {
			g := history.New(gpvDepth)
			var ref []uint64
			for _, a := range prefix {
				g = g.Push(a)
				ref = append(ref, history.BranchGPV(a))
				if len(ref) > gpvDepth {
					ref = ref[1:]
				}
			}
			var want uint64
			for _, v := range ref {
				want = want<<history.BitsPerBranch | v
			}
			if g.Bits() != want {
				return fmt.Errorf("seq %v: bits %#x want %#x", prefix, g.Bits(), want)
			}
			return nil
		}
		for _, a := range alphabet {
			if err := run(append(prefix, a)); err != nil {
				return err
			}
		}
		return nil
	}
	return run(nil)
}

// ExhaustiveBTBRow model-checks one BTB row (install/lookup/invalidate
// with LRU eviction) against a reference associative list over every
// operation sequence of the given depth. All addresses map to the same
// row, so the row's full behaviour is exercised.
func ExhaustiveBTBRow(ways, depth int) error {
	geo := btb.Geometry{RowBits: 1, Ways: ways, TagBits: 20, LineShift: 6}
	stride := zarch.Addr(geo.Rows() * geo.LineBytes())
	addrs := []zarch.Addr{0x1000, 0x1000 + stride, 0x1000 + 2*stride, 0x1000 + 3*stride}

	type refEntry struct {
		addr   zarch.Addr
		target zarch.Addr
		stamp  int
	}

	var run func(prefix []int) error
	run = func(prefix []int) error {
		if len(prefix) == depth {
			tb := btb.New(geo)
			var ref []refEntry
			clock := 0
			touch := func(addr zarch.Addr) {
				for i := range ref {
					if ref[i].addr == addr {
						clock++
						ref[i].stamp = clock
					}
				}
			}
			for _, code := range prefix {
				a := addrs[code%len(addrs)]
				switch code / len(addrs) {
				case 0: // install
					clock++
					tgt := zarch.Addr(0x9000) + zarch.Addr(clock)*2
					tb.Install(btb.Info{Addr: a, Len: 4, Target: tgt})
					found := false
					for i := range ref {
						if ref[i].addr == a {
							ref[i].target, ref[i].stamp = tgt, clock
							found = true
						}
					}
					if !found {
						if len(ref) >= ways {
							lru := 0
							for i := range ref {
								if ref[i].stamp < ref[lru].stamp {
									lru = i
								}
							}
							ref = append(ref[:lru], ref[lru+1:]...)
						}
						ref = append(ref, refEntry{a, tgt, clock})
					}
				case 1: // lookup (touches LRU via SearchLine)
					hits := tb.SearchLine(a)
					wantHit := false
					var wantTgt zarch.Addr
					for _, e := range ref {
						if e.addr == a {
							wantHit, wantTgt = true, e.target
						}
					}
					gotHit := false
					var gotTgt zarch.Addr
					for _, h := range hits {
						if h.Addr == a {
							gotHit, gotTgt = true, h.Target
						}
					}
					if gotHit != wantHit || (gotHit && gotTgt != wantTgt) {
						return fmt.Errorf("seq %v: search(%v) hit=%v tgt=%v, want %v/%v",
							prefix, a, gotHit, gotTgt, wantHit, wantTgt)
					}
					if wantHit {
						touch(a)
					}
				case 2: // invalidate
					tb.Invalidate(a)
					out := ref[:0]
					for _, e := range ref {
						if e.addr != a {
							out = append(out, e)
						}
					}
					ref = out
				}
			}
			if tb.Occupancy() != len(ref) {
				return fmt.Errorf("seq %v: occupancy %d want %d", prefix, tb.Occupancy(), len(ref))
			}
			return nil
		}
		for code := 0; code < 3*len(addrs); code++ {
			if err := run(append(prefix, code)); err != nil {
				return err
			}
		}
		return nil
	}
	return run(nil)
}
