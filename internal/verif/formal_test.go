package verif

import "testing"

func TestExhaustiveCounter2(t *testing.T) {
	if err := ExhaustiveCounter2(); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveSpecDir(t *testing.T) {
	for _, capacity := range []int{1, 2, 3} {
		if err := ExhaustiveSpecDir(capacity, 5); err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
	}
}

func TestExhaustiveStage(t *testing.T) {
	for _, capacity := range []int{1, 2, 3} {
		if err := ExhaustiveStage(capacity, 10); err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
	}
}

func TestExhaustiveGPV(t *testing.T) {
	for _, depth := range []int{1, 3, 9} {
		if err := ExhaustiveGPV(depth, 7); err != nil {
			t.Fatalf("gpv depth %d: %v", depth, err)
		}
	}
}

func TestExhaustiveBTBRow(t *testing.T) {
	for _, ways := range []int{1, 2, 3} {
		if err := ExhaustiveBTBRow(ways, 4); err != nil {
			t.Fatalf("ways %d: %v", ways, err)
		}
	}
}
