package verif

import (
	"testing"

	"zbp/internal/core"
	"zbp/internal/frontend"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

func TestInclusionHoldsOnZ15(t *testing.T) {
	c := core.New(core.Z15())
	m := NewInclusionMonitor(c, 0.10)
	fe := frontend.NewThread(frontend.DefaultConfig(), 0, c, nil,
		trace.Limit(workload.LSPR(5, 64, 1.0), 150000))
	for i := 0; i < 10_000_000 && !fe.Done(); i++ {
		c.Cycle()
		fe.Step(c.Clock())
		if c.Clock()%5000 == 0 {
			m.Checkpoint()
		}
	}
	m.Checkpoint()
	if m.Checks() == 0 || m.Live() == 0 {
		t.Fatalf("monitor saw nothing: checks=%d live=%d", m.Checks(), m.Live())
	}
	if errs := m.Errors(); len(errs) != 0 {
		t.Fatalf("inclusion violated: %v", errs[0])
	}
}

func TestInclusionDetectsExclusiveDesign(t *testing.T) {
	// The pre-z15 semi-exclusive design intentionally does NOT keep the
	// BTB2 a superset: the monitor must flag it (sanity check that the
	// checker has teeth).
	cfg := core.Z14()
	c := core.New(cfg)
	m := NewInclusionMonitor(c, 0.5)
	fe := frontend.NewThread(frontend.DefaultConfig(), 0, c, nil,
		trace.Limit(workload.LSPR(5, 64, 1.0), 120000))
	for i := 0; i < 10_000_000 && !fe.Done(); i++ {
		c.Cycle()
		fe.Step(c.Clock())
	}
	m.Checkpoint()
	if len(m.Errors()) == 0 {
		t.Fatal("monitor blind: semi-exclusive z14 passed a superset check")
	}
}
