package verif

import (
	"testing"

	"zbp/internal/btb"
	"zbp/internal/core"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

func takenBranch(addr, target zarch.Addr) btb.Info {
	return btb.Info{Addr: addr, Len: 4, Kind: zarch.KindUncondRel,
		Target: target, BHT: sat.StrongT, Skoot: btb.SkootUnknown}
}

func TestReadMonitorAcceptsHonestDesign(t *testing.T) {
	c := core.New(core.Z15())
	h := Attach(c)
	c.Preload(1, takenBranch(0x10008, 0x20000))
	c.Preload(1, takenBranch(0x20008, 0x10000))
	c.Restart(0, 0x10000, 0)
	for i := 0; i < 200; i++ {
		c.Cycle()
		for {
			if _, ok := c.PopPred(0); !ok {
				break
			}
		}
	}
	h.Checkpoint()
	if h.Read.Checks() == 0 {
		t.Fatal("read monitor never checked anything")
	}
	if errs := h.Errors(); len(errs) != 0 {
		t.Fatalf("false positives: %v", errs)
	}
}

func TestReadMonitorCatchesCorruption(t *testing.T) {
	// Inject a "hardware bug": a prediction is checked against a mirror
	// that never saw the matching write. We simulate by checking a
	// fabricated prediction directly.
	m := newReadMonitor(core.Z15().BTB1)
	p := core.Prediction{Addr: 0x10008, Kind: zarch.KindUncondRel, Taken: true, Target: 0x20000}
	m.CheckPrediction(p)
	if len(m.Errors()) != 1 {
		t.Fatalf("unexplained prediction not flagged: %v", m.Errors())
	}
}

func TestReadMonitorCatchesWrongTarget(t *testing.T) {
	m := newReadMonitor(core.Z15().BTB1)
	info := takenBranch(0x10008, 0x20000)
	m.onWrite(btb.Event{Kind: btb.EvInstall, Row: int(0x10008 >> 6 & 2047), Way: 0, Info: info})
	// Honest prediction passes.
	good := core.Prediction{Addr: 0x10008, Kind: zarch.KindUncondRel, Taken: true, Target: 0x20000}
	m.CheckPrediction(good)
	if len(m.Errors()) != 0 {
		t.Fatalf("honest prediction flagged: %v", m.Errors())
	}
	// Corrupted target (BTB-provided) is caught.
	bad := good
	bad.Target = 0x99999e
	m.CheckPrediction(bad)
	if len(m.Errors()) != 1 {
		t.Fatal("corrupted target not flagged")
	}
}

func TestWriteMonitorExpectations(t *testing.T) {
	m := &WriteMonitor{}
	m.ExpectInstall(0x1000, 100, "test")
	m.onWrite(btb.Event{Kind: btb.EvInstall, Info: btb.Info{Addr: 0x1000}})
	m.Checkpoint(200)
	if len(m.Errors()) != 0 {
		t.Fatalf("satisfied expectation flagged: %v", m.Errors())
	}
	if m.Checks() != 1 {
		t.Errorf("checks = %d", m.Checks())
	}
	m.ExpectInstall(0x2000, 100, "missing")
	m.Checkpoint(200)
	if len(m.Errors()) != 1 {
		t.Fatal("missed install not flagged")
	}
}

func TestHarnessEndToEndSurpriseInstalls(t *testing.T) {
	c := core.New(core.Z15())
	h := Attach(c)
	c.Restart(0, 0x10000, 0)
	for i := 0; i < 5; i++ {
		c.Cycle()
	}
	c.CompleteSurprise(core.Surprise{Thread: 0, Addr: 0x11000, Len: 4,
		Kind: zarch.KindCondRel, Taken: true, Target: 0x12000})
	for i := 0; i < 50; i++ {
		c.Cycle()
	}
	h.Checkpoint()
	if h.Write.Checks() != 1 {
		t.Errorf("write checks = %d", h.Write.Checks())
	}
	if errs := h.Errors(); len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
}

func TestRunRandomCleanAcrossSeedsAndConfigs(t *testing.T) {
	for _, cfg := range core.Generations() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			p := DefaultParams(7)
			p.Config = cfg
			p.Instructions = 60000
			rep := RunRandom(p)
			if rep.Instructions < 50000 {
				t.Fatalf("stimulus too short: %d", rep.Instructions)
			}
			if rep.Checks == 0 {
				t.Fatal("no crosschecks performed")
			}
			if rep.Failed() {
				for _, e := range rep.Errors[:minInt(5, len(rep.Errors))] {
					t.Errorf("%s", e)
				}
				t.Fatalf("%d verification errors", len(rep.Errors))
			}
		})
	}
}

func TestRunRandomWithPreload(t *testing.T) {
	p := DefaultParams(11)
	p.Instructions = 60000
	p.Preload = 2
	rep := RunRandom(p)
	if rep.Failed() {
		t.Fatalf("preloaded run failed: %v", rep.Errors[:minInt(5, len(rep.Errors))])
	}
	if rep.Checks == 0 {
		t.Fatal("no checks")
	}
}

func TestChain(t *testing.T) {
	var a, b int
	fn := Chain(func(btb.Event) { a++ }, func(btb.Event) { b++ })
	fn(btb.Event{})
	fn(btb.Event{})
	if a != 2 || b != 2 {
		t.Errorf("chain calls = %d, %d", a, b)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
