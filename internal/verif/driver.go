package verif

import (
	"fmt"

	"zbp/internal/core"
	"zbp/internal/frontend"
	"zbp/internal/hashx"
	"zbp/internal/trace"
	"zbp/internal/workload"
	"zbp/internal/zarch"
)

// Params constrain the random stimulus, playing the role of the
// paper's §VII parameter files: "constraints restrict the random
// behavior of drivers and allow the user to determine the probability
// of certain events".
type Params struct {
	Seed uint64
	// Funcs scales the code footprint of the generated program.
	Funcs int
	// Instructions bounds the stimulus length.
	Instructions int
	// CheckpointEvery is the crosscheck cadence in cycles.
	CheckpointEvery int64
	// Preload seeds the BTB1/BTB2 with the program's branches before
	// simulation starts, reaching states "which would otherwise be
	// difficult to get to" (§VII). 0 disables; 1 preloads BTB2 only;
	// 2 preloads both levels.
	Preload int
	// Config selects the design under test.
	Config core.Config
}

// DefaultParams returns a medium-size constrained-random setup.
func DefaultParams(seed uint64) Params {
	return Params{
		Seed: seed, Funcs: 64, Instructions: 200000,
		CheckpointEvery: 5000, Preload: 0, Config: core.Z15(),
	}
}

// Report summarizes one constrained-random run.
type Report struct {
	Instructions int64
	Cycles       int64
	Checks       int64
	Errors       []Error
}

// Failed reports whether any crosscheck failed.
func (r Report) Failed() bool { return len(r.Errors) > 0 }

func (r Report) String() string {
	return fmt.Sprintf("verif: %d instructions, %d cycles, %d checks, %d errors",
		r.Instructions, r.Cycles, r.Checks, len(r.Errors))
}

// RunRandom executes one constrained-random verification run: generate
// a random program under the constraints, optionally preload the
// predictor arrays, attach the white-box harness, simulate, and
// crosscheck at checkpoints.
func RunRandom(p Params) Report {
	src := workload.LSPR(p.Seed, maxInt(p.Funcs, 8), 1.0)
	c := core.New(p.Config)
	h := Attach(c)

	if p.Preload > 0 {
		preloadFromTrace(c, p, src)
		// Rebuild the source so the run starts from the beginning.
		src = workload.LSPR(p.Seed, maxInt(p.Funcs, 8), 1.0)
	}

	fe := frontend.NewThread(frontend.DefaultConfig(), 0, c, nil,
		trace.Limit(src, p.Instructions))
	var nextCheck int64 = p.CheckpointEvery
	for i := 0; i < 100*p.Instructions && !fe.Done(); i++ {
		c.Cycle()
		fe.Step(c.Clock())
		if c.Clock() >= nextCheck {
			h.Checkpoint()
			nextCheck += p.CheckpointEvery
		}
	}
	h.Checkpoint()
	st := fe.Stats()
	return Report{
		Instructions: st.Instructions,
		Cycles:       c.Clock(),
		Checks:       h.Checks(),
		Errors:       h.Errors(),
	}
}

// preloadFromTrace walks a prefix of the stimulus and installs every
// taken branch it finds into the predictor arrays (§VII preloading:
// "loading these arrays either from a static test case with a
// predetermined instruction stream, or from a dynamic test").
func preloadFromTrace(c *core.Core, p Params, src trace.Source) {
	rng := hashx.New(p.Seed ^ 0xbead)
	seen := map[zarch.Addr]bool{}
	for i := 0; i < p.Instructions/2; i++ {
		r, ok := src.Next()
		if !ok {
			break
		}
		if !r.IsBranch() || !r.Taken() || seen[r.Addr] {
			continue
		}
		seen[r.Addr] = true
		info := core.SurpriseInfo(r.Addr, r.Len(), r.Kind(), r.Target, r.Taken())
		c.Preload(2, info)
		if p.Preload >= 2 && rng.Bool(0.5) {
			c.Preload(1, info)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
