// Package frontend models the consumers of the asynchronous branch
// predictor: the ICM instruction fetcher and the IDU decode/dispatch
// stage (paper §I, §IV). It walks an architectural instruction trace,
// enforces the strict dispatch synchronization with BPL progress
// introduced on z13, applies dynamic predictions to branches, handles
// surprise branches with static guesses, detects bad (partial-tag)
// predictions, charges the restart penalties of §II, and drives
// completion-time updates back into the predictor.
package frontend

import (
	"zbp/internal/core"
	"zbp/internal/icache"
	"zbp/internal/metrics"
	"zbp/internal/trace"
	"zbp/internal/zarch"
)

// Config holds the consumption-side parameters.
type Config struct {
	// DispatchWidth is the maximum instructions dispatched per cycle
	// (up to 6 on z15, §I).
	DispatchWidth int
	// FetchBytes is the instruction fetch bandwidth per cycle (32B,
	// §IV).
	FetchBytes int
	// RestartPenalty is the branch-wrong flush cost ("up to 26 cycles",
	// §I).
	RestartPenalty int64
	// QueueRefillPenalty is the additional issue-queue recovery
	// inefficiency after a full restart ("up to 10 cycles", §II.B);
	// together they model the ~35-cycle statistical penalty (§II.D).
	QueueRefillPenalty int64
	// SurpriseTakenRelPenalty is the front-end redirect bubble for a
	// statically guessed-taken relative branch (target computed in the
	// front end, §IV).
	SurpriseTakenRelPenalty int64
	// SurpriseTakenIndPenalty is the stall for a guessed-taken indirect
	// branch: the front end waits for the execution units to compute
	// the target (§IV: "the front end shuts down").
	SurpriseTakenIndPenalty int64
	// BadPredPenalty is the restart cost when the IDU detects a
	// prediction on a non-branch / mid-instruction (§IV).
	BadPredPenalty int64
	// PrefetchEnabled wires BPL searches into the I-cache as
	// prefetches.
	PrefetchEnabled bool
}

// DefaultConfig returns the modeled z15 front-end parameters.
func DefaultConfig() Config {
	return Config{
		DispatchWidth: 6, FetchBytes: 32,
		RestartPenalty: 26, QueueRefillPenalty: 8,
		SurpriseTakenRelPenalty: 6, SurpriseTakenIndPenalty: 30,
		BadPredPenalty:  26,
		PrefetchEnabled: true,
	}
}

// Stats counts front-end events for one thread.
type Stats struct {
	Instructions int64
	Branches     int64
	Cycles       int64 // cycles this thread was live

	DynamicPredicted int64
	DynCorrect       int64
	DynWrongDir      int64
	DynWrongTarget   int64

	Surprises        int64
	SurpriseWrong    int64 // static guess direction wrong
	SurpriseTakenRel int64
	SurpriseTakenInd int64
	BadPredictions   int64

	// TgtProvided/TgtWrong count taken dynamic predictions by target
	// provider (0 BTB, 1 CTB, 2 CRS) and how many resolved wrong.
	TgtProvided [3]int64
	TgtWrong    [3]int64

	DispatchSyncStall int64 // cycles stalled waiting for BPL coverage
	FetchStall        int64 // cycles stalled on I-cache
	RestartStall      int64 // cycles lost to restarts/penalties
	// RestartHist distributes the per-restart penalty in cycles; the
	// bucket bounds straddle the configured §II penalties (6-cycle
	// surprise redirect, 26-cycle branch wrong, +8 queue refill).
	RestartHist metrics.Hist
	Done        bool
}

// NewRestartHist returns the restart-penalty histogram shape.
func NewRestartHist() metrics.Hist {
	return metrics.NewHist(0, 4, 8, 16, 26, 30, 34)
}

// Register exposes every counter and the restart histogram under
// prefix (e.g. "thread0"), flattening the per-provider target arrays
// to one name per provider.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Counter(prefix+".instructions", &s.Instructions)
	r.Counter(prefix+".branches", &s.Branches)
	r.Counter(prefix+".cycles", &s.Cycles)
	r.Counter(prefix+".dynamic_predicted", &s.DynamicPredicted)
	r.Counter(prefix+".dyn_correct", &s.DynCorrect)
	r.Counter(prefix+".dyn_wrong_dir", &s.DynWrongDir)
	r.Counter(prefix+".dyn_wrong_target", &s.DynWrongTarget)
	r.Counter(prefix+".surprises", &s.Surprises)
	r.Counter(prefix+".surprise_wrong", &s.SurpriseWrong)
	r.Counter(prefix+".surprise_taken_rel", &s.SurpriseTakenRel)
	r.Counter(prefix+".surprise_taken_ind", &s.SurpriseTakenInd)
	r.Counter(prefix+".bad_predictions", &s.BadPredictions)
	for i, name := range [3]string{"btb", "ctb", "crs"} {
		r.Counter(prefix+".tgt_provided."+name, &s.TgtProvided[i])
		r.Counter(prefix+".tgt_wrong."+name, &s.TgtWrong[i])
	}
	r.Counter(prefix+".dispatch_sync_stall", &s.DispatchSyncStall)
	r.Counter(prefix+".fetch_stall", &s.FetchStall)
	r.Counter(prefix+".restart_stall", &s.RestartStall)
	r.Hist(prefix+".restart_penalty", &s.RestartHist)
}

// Mispredicts returns the total mispredicted branches (the MPKI
// numerator): dynamic wrong direction or target, plus wrong static
// guesses on surprise branches.
func (s Stats) Mispredicts() int64 {
	return s.DynWrongDir + s.DynWrongTarget + s.SurpriseWrong
}

// MPKI returns mispredicted branches per thousand instructions.
func (s Stats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Mispredicts()) / float64(s.Instructions) * 1000
}

// Thread is one hardware thread's front end.
type Thread struct {
	cfg Config
	id  int
	c   *core.Core
	ic  *icache.Hierarchy
	src trace.Source
	// cur is set when src is a packed-trace cursor: the per-instruction
	// next path then calls the concrete, inlinable Cursor.Next instead
	// of dispatching through the Source interface (the monomorphized
	// replay path every packed run takes).
	cur *trace.Cursor
	// peek is the one-record lookahead buffer; kept by value so the
	// per-instruction next/consume cycle never heap-allocates.
	peek     trace.Rec
	havePeek bool

	epoch  uint64
	stream uint64

	stallUntil int64
	fetchReady int64
	curLine    zarch.Addr
	haveLine   bool

	streamEntry    zarch.Addr
	hasStreamEntry bool

	lastCtx      uint16
	lastCtxValid bool

	started bool
	done    bool
	stats   Stats

	// resolveHook/restartHook, when set, observe retired branches and
	// pipeline restarts (event-log wiring); nil costs one predictable
	// branch per event.
	resolveHook func(now int64, r trace.Rec, dynamic, correct bool)
	restartHook func(now int64, addr zarch.Addr, penalty int64)
}

// NewThread builds a front end for thread id consuming src. ic may be
// nil to disable I-cache modeling.
func NewThread(cfg Config, id int, c *core.Core, ic *icache.Hierarchy, src trace.Source) *Thread {
	t := &Thread{cfg: cfg, id: id, c: c, ic: ic, src: src}
	if cur, ok := src.(*trace.Cursor); ok {
		t.cur = cur
	}
	t.stats.RestartHist = NewRestartHist()
	return t
}

// Stats returns a copy of this thread's counters.
func (f *Thread) Stats() Stats {
	s := f.stats
	s.Done = f.done
	return s
}

// Instructions returns the retired-instruction count alone, without
// copying the whole Stats struct; the run loop polls it every cycle
// for progress (live-lock) detection.
func (f *Thread) Instructions() int64 { return f.stats.Instructions }

// Hooked reports whether any cycle-level event observer is attached to
// this thread; a hooked thread pins the simulation to the instrumented
// run loop.
func (f *Thread) Hooked() bool { return f.resolveHook != nil || f.restartHook != nil }

// RegisterMetrics registers the thread's live counters under prefix.
func (f *Thread) RegisterMetrics(r *metrics.Registry, prefix string) {
	f.stats.Register(r, prefix)
}

// SetResolveHook registers an observer of every retired branch:
// whether it was dynamically predicted and whether the prediction (or
// static guess) was fully correct.
func (f *Thread) SetResolveHook(fn func(now int64, r trace.Rec, dynamic, correct bool)) {
	f.resolveHook = fn
}

// SetRestartHook registers an observer of every pipeline restart with
// its redirect address and charged penalty.
func (f *Thread) SetRestartHook(fn func(now int64, addr zarch.Addr, penalty int64)) {
	f.restartHook = fn
}

// Done reports whether the trace is exhausted.
func (f *Thread) Done() bool { return f.done }

// ID returns the hardware thread index.
func (f *Thread) ID() int { return f.id }

func (f *Thread) next() (trace.Rec, bool) {
	if f.havePeek {
		return f.peek, true
	}
	var (
		r  trace.Rec
		ok bool
	)
	if f.cur != nil {
		r, ok = f.cur.Next()
	} else {
		r, ok = f.src.Next()
	}
	if !ok {
		return trace.Rec{}, false
	}
	f.peek, f.havePeek = r, true
	return r, true
}

func (f *Thread) consume() { f.havePeek = false }

// restart flushes the pipeline: penalty cycles, BPL restart at addr,
// stream bookkeeping reset.
func (f *Thread) restart(now int64, addr zarch.Addr, ctx uint16, penalty int64) {
	f.stallUntil = now + penalty
	f.stats.RestartStall += penalty
	f.stats.RestartHist.Observe(penalty)
	if f.restartHook != nil {
		f.restartHook(now, addr, penalty)
	}
	f.c.Restart(f.id, addr, ctx)
	f.epoch++
	f.stream = 0
	f.hasStreamEntry = false
}

// Step advances this thread by one cycle, dispatching up to
// DispatchWidth instructions within FetchBytes of fetch bandwidth.
func (f *Thread) Step(now int64) {
	if f.done {
		return
	}
	f.stats.Cycles++
	if !f.started {
		r, ok := f.next()
		if !ok {
			f.done = true
			f.c.Deactivate(f.id)
			return
		}
		f.started = true
		f.restart(now, r.Addr, r.CtxID, 0)
		return
	}
	if now < f.stallUntil || now < f.fetchReady {
		if now < f.fetchReady {
			f.stats.FetchStall++
		}
		return
	}

	bytes := 0
	for n := 0; n < f.cfg.DispatchWidth; n++ {
		r, ok := f.next()
		if !ok {
			f.done = true
			f.c.Deactivate(f.id)
			return
		}
		if bytes+int(r.Len()) > f.cfg.FetchBytes {
			break
		}

		// Context switch: full resynchronization.
		if f.ctxSwitch(now, r) {
			return
		}

		// Instruction fetch: demand-access the line.
		if f.ic != nil {
			line := f.ic.Line(r.Addr)
			if !f.haveLine || line != f.curLine {
				ready := f.ic.Access(r.Addr, now)
				f.curLine, f.haveLine = line, true
				if ready > now {
					f.fetchReady = ready
					return
				}
			}
		}

		// Strict dispatch synchronization (§IV): hold the instruction
		// until the BPL's visible output covers it.
		if !f.c.Covered(f.id, f.epoch, f.stream, r.Addr) {
			f.stats.DispatchSyncStall++
			return
		}

		// Drain bad predictions pointing at bytes we are about to pass.
		if f.handleBadPredictions(now, r) {
			return
		}

		if p := f.c.VisiblePred(f.id); p != nil && p.Epoch == f.epochOfCore() &&
			p.Stream == f.stream && p.Addr == r.Addr && r.IsBranch() {
			f.c.DropPred(f.id)
			if f.applyDynamic(now, r, p) {
				return
			}
		} else if r.IsBranch() {
			if f.applySurprise(now, r) {
				return
			}
		} else {
			f.dispatch(r)
		}
		bytes += int(r.Len())
	}
}

// epochOfCore returns the core-side epoch for matching predictions;
// core epochs advance once per Restart call, in lockstep with ours.
func (f *Thread) epochOfCore() uint64 {
	_, _, e := f.c.SearchProgress(f.id)
	return e
}

// ctxSwitch restarts on address-space changes (which the multiplexed
// workloads produce); returns true if a restart was issued.
func (f *Thread) ctxSwitch(now int64, r trace.Rec) bool {
	// The previous record's context is implicit in core state; compare
	// via prediction stream instead: the core tracks ctx per restart.
	// A cheap check: remember last seen ctx.
	if f.lastCtxValid && r.CtxID != f.lastCtx {
		f.lastCtx = r.CtxID
		f.restart(now, r.Addr, r.CtxID, f.cfg.RestartPenalty+f.cfg.QueueRefillPenalty)
		return true
	}
	f.lastCtx = r.CtxID
	f.lastCtxValid = true
	return false
}

// dispatch retires a non-branch instruction.
func (f *Thread) dispatch(r trace.Rec) {
	f.stats.Instructions++
	f.consume()
}

// handleBadPredictions pops predictions that point at already-passed or
// non-branch bytes; the IDU detects them, removes the BTB entry and
// restarts the front end (§IV). Returns true if a restart was issued.
func (f *Thread) handleBadPredictions(now int64, r trace.Rec) bool {
	for {
		p := f.c.VisiblePred(f.id)
		if p == nil || p.Epoch != f.epochOfCore() {
			return false
		}
		stale := p.Stream < f.stream ||
			(p.Stream == f.stream && p.Addr < r.Addr) ||
			(p.Stream == f.stream && p.Addr == r.Addr && !r.IsBranch())
		if !stale {
			return false
		}
		f.c.DropPred(f.id)
		f.c.BadPrediction(*p)
		f.stats.BadPredictions++
		f.restart(now, r.Addr, r.CtxID, f.cfg.BadPredPenalty)
		return true
	}
}

// applyDynamic applies a dynamic prediction to branch r. The
// prediction is passed by pointer (it is ~200 bytes and this runs once
// per dynamically predicted branch); the pointee is read-only core
// state, already consumed from the queue. Returns true if a restart
// was issued (caller must stop dispatching this cycle).
func (f *Thread) applyDynamic(now int64, r trace.Rec, p *core.Prediction) bool {
	f.stats.Instructions++
	f.stats.Branches++
	f.stats.DynamicPredicted++
	f.consume()

	out := core.Outcome{Pred: *p, Taken: r.Taken(), Target: r.Target}
	f.c.Complete(out)

	if f.resolveHook != nil {
		f.resolveHook(now, r, true, !out.WrongDirection() && !out.WrongTarget())
	}

	if p.Taken && r.Taken() {
		prov := int(p.Tgt.Provider)
		if prov >= 0 && prov < len(f.stats.TgtProvided) {
			f.stats.TgtProvided[prov]++
			if out.WrongTarget() {
				f.stats.TgtWrong[prov]++
			}
		}
	}

	switch {
	case out.WrongDirection():
		f.stats.DynWrongDir++
		f.restart(now, r.Next(), r.CtxID, f.cfg.RestartPenalty+f.cfg.QueueRefillPenalty)
		return true
	case out.WrongTarget():
		f.stats.DynWrongTarget++
		f.restart(now, r.Target, r.CtxID, f.cfg.RestartPenalty+f.cfg.QueueRefillPenalty)
		return true
	default:
		f.stats.DynCorrect++
		if r.Taken() {
			// Follow the predictor into the next stream.
			f.stream = p.Stream + 1
			f.streamEntry = p.Addr
			f.hasStreamEntry = true
		}
		return false
	}
}

// applySurprise handles a branch with no dynamic prediction: static
// guess by opcode, penalties per §IV, completion install, and BPL
// restart when flow redirects. Returns true if dispatching must stop.
func (f *Thread) applySurprise(now int64, r trace.Rec) bool {
	f.stats.Instructions++
	f.stats.Branches++
	f.stats.Surprises++
	f.consume()

	f.c.CompleteSurprise(core.Surprise{
		Thread: f.id, Addr: r.Addr, Len: r.Len(), Kind: r.Kind(),
		Taken: r.Taken(), Target: r.Target, Ctx: r.CtxID,
		StreamEntry: f.streamEntry, HasStreamEntry: f.hasStreamEntry,
	})

	guess := r.Kind().StaticGuessTaken()
	if f.resolveHook != nil {
		f.resolveHook(now, r, false, guess == r.Taken())
	}
	switch {
	case guess != r.Taken():
		// Wrong static guess: full branch-wrong restart.
		f.stats.SurpriseWrong++
		f.restart(now, r.Next(), r.CtxID, f.cfg.RestartPenalty+f.cfg.QueueRefillPenalty)
		return true
	case r.Taken() && r.Kind().Indirect():
		// Correctly guessed taken, but the target comes from the
		// execution units: the front end shuts down and waits (§IV).
		f.stats.SurpriseTakenInd++
		f.restart(now, r.Target, r.CtxID, f.cfg.SurpriseTakenIndPenalty)
		return true
	case r.Taken():
		// Correctly guessed taken relative: front end computes the
		// target itself; short redirect bubble.
		f.stats.SurpriseTakenRel++
		f.restart(now, r.Target, r.CtxID, f.cfg.SurpriseTakenRelPenalty)
		return true
	default:
		// Correctly guessed not-taken: flow continues, no restart.
		return false
	}
}
