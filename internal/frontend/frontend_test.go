package frontend

import (
	"testing"

	"zbp/internal/btb"
	"zbp/internal/core"
	"zbp/internal/sat"
	"zbp/internal/trace"
	"zbp/internal/zarch"
)

// loopTrace builds a trace of a two-block loop: pad at base, cond
// branch back to base (taken n-1 times then exits via a final
// not-taken and stops).
func loopTrace(base zarch.Addr, iters int) []trace.Rec {
	var recs []trace.Rec
	for i := 0; i < iters; i++ {
		recs = append(recs,
			trace.NewRec(base, 4, zarch.KindNone, false, 0, 0),
			trace.NewRec(base+4, 4, zarch.KindNone, false, 0, 0),
			trace.NewRec(base+8, 4, zarch.KindCondRel, i < iters-1, base, 0),
		)
	}
	// A few trailing sequential instructions.
	a := base + 12
	for i := 0; i < 4; i++ {
		recs = append(recs, trace.NewRec(a, 4, zarch.KindNone, false, 0, 0))
		a += 4
	}
	return recs
}

// runFE wires a single thread against a fresh core and runs to
// completion.
func runFE(t *testing.T, cfg core.Config, fcfg Config, recs []trace.Rec, preload ...btb.Info) (Stats, *core.Core) {
	t.Helper()
	c := core.New(cfg)
	for _, info := range preload {
		c.Preload(1, info)
	}
	fe := NewThread(fcfg, 0, c, nil, trace.NewSliceSource(recs))
	for i := 0; i < 4_000_000 && !fe.Done(); i++ {
		c.Cycle()
		fe.Step(c.Clock())
	}
	if !fe.Done() {
		t.Fatal("front end never finished")
	}
	return fe.Stats(), c
}

func TestAllInstructionsRetire(t *testing.T) {
	recs := loopTrace(0x10000, 50)
	st, _ := runFE(t, core.Z15(), DefaultConfig(), recs)
	if st.Instructions != int64(len(recs)) {
		t.Fatalf("retired %d of %d", st.Instructions, len(recs))
	}
	if st.Branches != 50 {
		t.Errorf("branches = %d", st.Branches)
	}
}

func TestLoopBecomesDynamic(t *testing.T) {
	recs := loopTrace(0x10000, 200)
	st, _ := runFE(t, core.Z15(), DefaultConfig(), recs)
	// First encounter is a surprise; after install, the loop branch is
	// dynamically predicted.
	if st.Surprises == 0 {
		t.Error("no surprise on cold branch")
	}
	if st.DynamicPredicted < 150 {
		t.Errorf("dynamic predictions = %d, want most of 200", st.DynamicPredicted)
	}
	if st.DynCorrect < 140 {
		t.Errorf("correct dynamics = %d", st.DynCorrect)
	}
}

func TestMispredictChargesRestart(t *testing.T) {
	// A branch whose BTB entry says strong-taken but trace says
	// not-taken: one wrong-direction mispredict, restart penalty.
	recs := []trace.Rec{
		trace.NewRec(0x10000, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x10004, 4, zarch.KindCondRel, false, 0, 0),
		trace.NewRec(0x10008, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x1000c, 4, zarch.KindNone, false, 0, 0),
	}
	entry := btb.Info{Addr: 0x10004, Len: 4, Kind: zarch.KindCondRel,
		Target: 0x20000, BHT: sat.StrongT, Skoot: btb.SkootUnknown}
	st, _ := runFE(t, core.Z15(), DefaultConfig(), recs, entry)
	if st.DynWrongDir != 1 {
		t.Fatalf("DynWrongDir = %d", st.DynWrongDir)
	}
	want := DefaultConfig().RestartPenalty + DefaultConfig().QueueRefillPenalty
	if st.RestartStall < want {
		t.Errorf("RestartStall = %d, want >= %d", st.RestartStall, want)
	}
	if st.Mispredicts() != 1 {
		t.Errorf("Mispredicts = %d", st.Mispredicts())
	}
}

func TestWrongTargetDetected(t *testing.T) {
	recs := []trace.Rec{
		trace.NewRec(0x10000, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x10004, 2, zarch.KindUncondInd, true, 0x30000, 0),
		trace.NewRec(0x30000, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x30004, 4, zarch.KindNone, false, 0, 0),
	}
	entry := btb.Info{Addr: 0x10004, Len: 2, Kind: zarch.KindUncondInd,
		Target: 0x20000, BHT: sat.StrongT, Skoot: btb.SkootUnknown}
	st, c := runFE(t, core.Z15(), DefaultConfig(), recs, entry)
	if st.DynWrongTarget != 1 {
		t.Fatalf("DynWrongTarget = %d", st.DynWrongTarget)
	}
	info, ok := c.BTB1Lookup(0x10004)
	if !ok || !info.MultiTarget {
		t.Error("multi-target not set after wrong target")
	}
}

func TestSurprisePenalties(t *testing.T) {
	cfg := DefaultConfig()
	// Taken indirect surprise: front end waits for execution.
	recs := []trace.Rec{
		trace.NewRec(0x10000, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x10004, 2, zarch.KindUncondInd, true, 0x30000, 0),
		trace.NewRec(0x30000, 4, zarch.KindNone, false, 0, 0),
	}
	st, _ := runFE(t, core.Z15(), cfg, recs)
	if st.SurpriseTakenInd != 1 {
		t.Fatalf("SurpriseTakenInd = %d", st.SurpriseTakenInd)
	}
	if st.RestartStall < cfg.SurpriseTakenIndPenalty {
		t.Errorf("stall %d < indirect penalty", st.RestartStall)
	}

	// Taken relative surprise (uncond): cheap front-end redirect.
	recs2 := []trace.Rec{
		trace.NewRec(0x10000, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x10004, 4, zarch.KindUncondRel, true, 0x30000, 0),
		trace.NewRec(0x30000, 4, zarch.KindNone, false, 0, 0),
	}
	st2, _ := runFE(t, core.Z15(), cfg, recs2)
	if st2.SurpriseTakenRel != 1 {
		t.Fatalf("SurpriseTakenRel = %d", st2.SurpriseTakenRel)
	}
	if st2.RestartStall > st.RestartStall {
		t.Error("relative surprise cost more than indirect")
	}

	// Wrong static guess: conditional resolved taken.
	recs3 := []trace.Rec{
		trace.NewRec(0x10000, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x10004, 4, zarch.KindCondRel, true, 0x30000, 0),
		trace.NewRec(0x30000, 4, zarch.KindNone, false, 0, 0),
	}
	st3, _ := runFE(t, core.Z15(), cfg, recs3)
	if st3.SurpriseWrong != 1 {
		t.Fatalf("SurpriseWrong = %d", st3.SurpriseWrong)
	}
	if st3.Mispredicts() != 1 {
		t.Error("wrong guess not counted as mispredict")
	}
}

func TestBadPredictionDetectedAndRemoved(t *testing.T) {
	// Preload a BTB entry claiming a branch at an address that holds a
	// plain instruction: the IDU must detect it, invalidate, restart.
	recs := []trace.Rec{
		trace.NewRec(0x10000, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x10004, 4, zarch.KindNone, false, 0, 0), // not a branch!
		trace.NewRec(0x10008, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x1000c, 4, zarch.KindNone, false, 0, 0),
	}
	entry := btb.Info{Addr: 0x10004, Len: 4, Kind: zarch.KindUncondRel,
		Target: 0x20000, BHT: sat.StrongT, Skoot: btb.SkootUnknown}
	st, c := runFE(t, core.Z15(), DefaultConfig(), recs, entry)
	if st.BadPredictions != 1 {
		t.Fatalf("BadPredictions = %d", st.BadPredictions)
	}
	if _, ok := c.BTB1Lookup(0x10004); ok {
		t.Error("bad entry survived")
	}
	if st.Instructions != 4 {
		t.Errorf("retired %d", st.Instructions)
	}
}

func TestMidInstructionBadPrediction(t *testing.T) {
	// Entry points into the middle of a 6-byte instruction.
	recs := []trace.Rec{
		trace.NewRec(0x10000, 6, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x10006, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x1000a, 4, zarch.KindNone, false, 0, 0),
	}
	entry := btb.Info{Addr: 0x10002, Len: 4, Kind: zarch.KindUncondRel,
		Target: 0x20000, BHT: sat.StrongT, Skoot: btb.SkootUnknown}
	st, _ := runFE(t, core.Z15(), DefaultConfig(), recs, entry)
	if st.BadPredictions != 1 {
		t.Fatalf("BadPredictions = %d", st.BadPredictions)
	}
}

func TestDispatchSyncStallCounted(t *testing.T) {
	// Long sequential stretch: dispatch (up to ~6-8 instr = 24-32B per
	// cycle) roughly keeps pace with the 64B/cycle search, so stalls
	// should be rare after startup; but right after restart the BPL is
	// a cycle ahead, so at least some sync behaviour must be observed
	// without deadlocking.
	var recs []trace.Rec
	a := zarch.Addr(0x10000)
	for i := 0; i < 3000; i++ {
		recs = append(recs, trace.NewRec(a, 4, zarch.KindNone, false, 0, 0))
		a += 4
	}
	st, _ := runFE(t, core.Z15(), DefaultConfig(), recs)
	if st.Instructions != 3000 {
		t.Fatalf("retired %d", st.Instructions)
	}
	// IPC should be near dispatch width over the run.
	ipc := float64(st.Instructions) / float64(st.Cycles)
	if ipc < 3 {
		t.Errorf("sequential IPC = %.2f, expected fetch-limited ~6", ipc)
	}
}

func TestCtxSwitchRestarts(t *testing.T) {
	recs := []trace.Rec{
		trace.NewRec(0x10000, 4, zarch.KindNone, false, 0, 1),
		trace.NewRec(0x10004, 4, zarch.KindNone, false, 0, 1),
		trace.NewRec(0x50000, 4, zarch.KindNone, false, 0, 2),
		trace.NewRec(0x50004, 4, zarch.KindNone, false, 0, 2),
	}
	st, _ := runFE(t, core.Z15(), DefaultConfig(), recs)
	if st.Instructions != 4 {
		t.Fatalf("retired %d", st.Instructions)
	}
	if st.RestartStall == 0 {
		t.Error("context switch did not charge a restart")
	}
}

func TestStatsMPKI(t *testing.T) {
	s := Stats{Instructions: 2000, DynWrongDir: 3, SurpriseWrong: 1}
	if s.MPKI() != 2 {
		t.Errorf("MPKI = %v", s.MPKI())
	}
	var zero Stats
	if zero.MPKI() != 0 {
		t.Error("zero-instruction MPKI not 0")
	}
}
