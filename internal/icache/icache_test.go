package icache

import (
	"testing"

	"zbp/internal/zarch"
)

func TestConfigsBuild(t *testing.T) {
	for _, cfg := range []Config{Z15(), Z14(), Z13(), ZEC12()} {
		h := New(cfg)
		if h == nil {
			t.Fatal("nil hierarchy")
		}
	}
}

func TestHitAfterMiss(t *testing.T) {
	h := New(Z15())
	now := int64(100)
	ready := h.Access(0x10000, now)
	if ready != now+45 {
		t.Errorf("cold miss ready = %d, want %d", ready, now+45)
	}
	if got := h.Access(0x10000, ready); got != ready {
		t.Errorf("hit not free: %d vs %d", got, ready)
	}
	st := h.Stats()
	if st.L1Hits != 1 || st.Accesses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSameLineSharesFill(t *testing.T) {
	h := New(Z15())
	h.Access(0x10000, 0)
	if got := h.Access(0x10080, 50); got != 50 {
		t.Errorf("same 256B line missed: %d", got)
	}
}

func TestL2Latency(t *testing.T) {
	h := New(Z15())
	h.Access(0x10000, 0) // fills L1 and L2
	// Evict from L1 by filling its set: L1 128KB/256B/8way = 64 rows, so
	// lines 64*256=16KB apart share a row.
	stride := zarch.Addr(64 * 256)
	for i := 1; i <= 8; i++ {
		h.Access(0x10000+zarch.Addr(i)*stride, int64(i*100))
	}
	// 0x10000 now out of L1 but still in L2.
	ready := h.Access(0x10000, 10000)
	if ready != 10000+8 {
		t.Errorf("L2 hit ready = %d, want %d", ready, 10000+8)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	h := New(Z15())
	h.Prefetch(0x20000, 0) // ready at 45
	// Demand at cycle 40: waits only 5 cycles.
	if ready := h.Access(0x20000, 40); ready != 45 {
		t.Errorf("partial hide: ready = %d, want 45", ready)
	}
	h2 := New(Z15())
	h2.Prefetch(0x20000, 0)
	// Demand after completion: free.
	if ready := h2.Access(0x20000, 100); ready != 100 {
		t.Errorf("full hide: ready = %d, want 100", ready)
	}
	if h2.Stats().PrefetchUseful != 1 {
		t.Errorf("PrefetchUseful = %d", h2.Stats().PrefetchUseful)
	}
}

func TestPrefetchIdempotent(t *testing.T) {
	h := New(Z15())
	h.Prefetch(0x20000, 0)
	h.Prefetch(0x20010, 1) // same line
	if h.Stats().Prefetches != 1 {
		t.Errorf("Prefetches = %d", h.Stats().Prefetches)
	}
	h.Access(0x20000, 100)
	h.Prefetch(0x20000, 101) // already present
	if h.Stats().Prefetches != 1 {
		t.Errorf("present-line prefetch counted: %d", h.Stats().Prefetches)
	}
}

func TestDemandWaitAccounting(t *testing.T) {
	h := New(Z15())
	h.Access(0x30000, 0)
	st := h.Stats()
	if st.DemandWaitCycles != 45 {
		t.Errorf("DemandWaitCycles = %d", st.DemandWaitCycles)
	}
}

func TestTickBoundsInflight(t *testing.T) {
	h := New(Z15())
	for i := 0; i < 2000; i++ {
		h.Prefetch(zarch.Addr(0x100000+i*256), 0)
	}
	h.Tick(10000)
	if len(h.inflight) != 0 {
		t.Errorf("inflight = %d after Tick", len(h.inflight))
	}
}
