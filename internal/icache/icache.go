// Package icache models the instruction-side cache hierarchy the
// predictor prefetches into (paper §II, §IV): a private L1I, a private
// L2I reachable in +8 cycles, and the shared L3 at 45 cycles. Because
// the lookahead predictor searches far ahead of instruction fetching,
// its search stream doubles as an effective instruction prefetcher --
// "mitigating and often eliminating the penalty of L1 instruction
// cache misses" (§IV). The hierarchy tracks in-flight fills so a
// prefetch issued k cycles before the demand fetch hides k cycles of
// miss latency.
package icache

import (
	"fmt"
	"sort"

	"zbp/internal/metrics"
	"zbp/internal/zarch"
)

// Config describes the two modeled private levels; beyond L2 every
// access hits the (effectively infinite) shared L3.
type Config struct {
	LineBytes int
	L1Bytes   int
	L1Ways    int
	L2Bytes   int
	L2Ways    int
	// L2Latency/L3Latency are the extra cycles to data-ready relative
	// to an L1 hit (8 and 45 on z15, §II.A).
	L2Latency int64
	L3Latency int64
}

// Z15 returns the modeled z15 instruction-side hierarchy: 128KB L1I,
// 4MB L2I (+8 cycles), L3 at 45 cycles.
func Z15() Config {
	return Config{LineBytes: 256, L1Bytes: 128 << 10, L1Ways: 8,
		L2Bytes: 4 << 20, L2Ways: 8, L2Latency: 8, L3Latency: 45}
}

// Z14 returns the modeled z14 hierarchy: 128KB L1I, 2MB L2I.
func Z14() Config {
	c := Z15()
	c.L2Bytes = 2 << 20
	return c
}

// Z13 returns the modeled z13 hierarchy: 96KB L1I, 2MB L2I.
func Z13() Config {
	c := Z14()
	c.L1Bytes = 96 << 10
	c.L1Ways = 6
	return c
}

// ZEC12 returns the modeled zEC12 hierarchy: 64KB L1I, 1MB L2I.
func ZEC12() Config {
	c := Z15()
	c.L1Bytes = 64 << 10
	c.L1Ways = 4
	c.L2Bytes = 1 << 20
	return c
}

// Stats counts hierarchy events.
type Stats struct {
	Accesses         int64
	L1Hits           int64
	L2Hits           int64
	L3Fills          int64
	Prefetches       int64
	PrefetchUseful   int64 // demand access found the line prefetched/in flight
	DemandWaitCycles int64 // cycles demand fetches spent waiting on fills
	// WaitHist distributes the per-demand-miss wait in cycles: how much
	// of the raw miss latency the lookahead prefetcher failed to hide.
	WaitHist metrics.Hist
}

// NewWaitHist returns the wait-latency histogram shape: buckets up to
// the modeled L2 (+8) and L3 (+45) latencies with resolution in
// between, overflow beyond 64 cycles.
func NewWaitHist() metrics.Hist {
	return metrics.NewHist(0, 2, 4, 8, 16, 32, 64)
}

// Register exposes every counter and the wait histogram under prefix
// (e.g. "icache").
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Counter(prefix+".accesses", &s.Accesses)
	r.Counter(prefix+".l1_hits", &s.L1Hits)
	r.Counter(prefix+".l2_hits", &s.L2Hits)
	r.Counter(prefix+".l3_fills", &s.L3Fills)
	r.Counter(prefix+".prefetches", &s.Prefetches)
	r.Counter(prefix+".prefetch_useful", &s.PrefetchUseful)
	r.Counter(prefix+".demand_wait_cycles", &s.DemandWaitCycles)
	r.Hist(prefix+".demand_wait", &s.WaitHist)
}

type level struct {
	rows     int
	ways     int
	lineBits uint
	tags     [][]uint64 // tag 0 = invalid (tags stored +1)
	stamps   [][]int64
}

func newLevel(bytes, ways, lineBytes int) *level {
	rows := bytes / lineBytes / ways
	if rows <= 0 || rows&(rows-1) != 0 {
		panic(fmt.Sprintf("icache: rows %d not a power of two", rows))
	}
	lb := uint(0)
	for 1<<lb < lineBytes {
		lb++
	}
	l := &level{rows: rows, ways: ways, lineBits: lb}
	l.tags = make([][]uint64, rows)
	l.stamps = make([][]int64, rows)
	for i := range l.tags {
		l.tags[i] = make([]uint64, ways)
		l.stamps[i] = make([]int64, ways)
	}
	return l
}

func (l *level) rowTag(line zarch.Addr) (int, uint64) {
	n := uint64(line) >> l.lineBits
	// Full-precision tags (+1 so 0 means invalid): caches do not alias.
	return int(n & uint64(l.rows-1)), n + 1
}

func (l *level) lookup(line zarch.Addr, now int64) bool {
	row, tag := l.rowTag(line)
	for w := 0; w < l.ways; w++ {
		if l.tags[row][w] == tag {
			l.stamps[row][w] = now
			return true
		}
	}
	return false
}

func (l *level) fill(line zarch.Addr, now int64) {
	row, tag := l.rowTag(line)
	lru := 0
	for w := 0; w < l.ways; w++ {
		if l.tags[row][w] == tag {
			l.stamps[row][w] = now
			return
		}
		if l.tags[row][w] == 0 {
			l.tags[row][w] = tag
			l.stamps[row][w] = now
			return
		}
		if l.stamps[row][w] < l.stamps[row][lru] {
			lru = w
		}
	}
	l.tags[row][lru] = tag
	l.stamps[row][lru] = now
}

// Hierarchy is the modeled I-side cache stack.
type Hierarchy struct {
	cfg      Config
	l1, l2   *level
	inflight map[zarch.Addr]int64 // line -> ready cycle
	tickBuf  []pendingFill        // scratch for Tick retirement
	stats    Stats

	// fillHook, when set, observes every completed line fill (event-log
	// wiring); nil costs the hot path one predictable branch.
	fillHook func(line zarch.Addr, ready int64)
}

type pendingFill struct {
	line  zarch.Addr
	ready int64
}

// New builds a hierarchy for cfg.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{
		cfg:      cfg,
		l1:       newLevel(cfg.L1Bytes, cfg.L1Ways, cfg.LineBytes),
		l2:       newLevel(cfg.L2Bytes, cfg.L2Ways, cfg.LineBytes),
		inflight: make(map[zarch.Addr]int64),
	}
	h.stats.WaitHist = NewWaitHist()
	return h
}

// Stats returns a copy of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// RegisterMetrics registers the hierarchy's live counters under prefix.
func (h *Hierarchy) RegisterMetrics(r *metrics.Registry, prefix string) {
	h.stats.Register(r, prefix)
}

// SetFillHook registers an observer of every completed line fill.
func (h *Hierarchy) SetFillHook(fn func(line zarch.Addr, ready int64)) { h.fillHook = fn }

// Line returns the cache line base of addr.
func (h *Hierarchy) Line(addr zarch.Addr) zarch.Addr {
	return addr &^ zarch.Addr(h.cfg.LineBytes-1)
}

// missLatency returns the extra cycles to fetch a line absent from L1.
func (h *Hierarchy) missLatency(line zarch.Addr, now int64) int64 {
	if h.l2.lookup(line, now) {
		h.stats.L2Hits++
		return h.cfg.L2Latency
	}
	h.stats.L3Fills++
	return h.cfg.L3Latency
}

// Access performs a demand instruction fetch of addr's line and
// returns the cycle at which its text is available. Fills complete at
// the returned cycle.
func (h *Hierarchy) Access(addr zarch.Addr, now int64) int64 {
	line := h.Line(addr)
	h.stats.Accesses++
	if h.l1.lookup(line, now) {
		h.stats.L1Hits++
		return now
	}
	if ready, ok := h.inflight[line]; ok {
		// A prefetch is already bringing the line in.
		h.stats.PrefetchUseful++
		if ready <= now {
			h.stats.WaitHist.Observe(0)
			h.finishFill(line, now)
			return now
		}
		h.stats.DemandWaitCycles += ready - now
		h.stats.WaitHist.Observe(ready - now)
		h.finishFill(line, ready)
		return ready
	}
	lat := h.missLatency(line, now)
	h.stats.DemandWaitCycles += lat
	h.stats.WaitHist.Observe(lat)
	h.finishFill(line, now+lat)
	return now + lat
}

func (h *Hierarchy) finishFill(line zarch.Addr, at int64) {
	delete(h.inflight, line)
	h.l1.fill(line, at)
	h.l2.fill(line, at)
	if h.fillHook != nil {
		h.fillHook(line, at)
	}
}

// Prefetch hints that addr's line will be fetched soon (the BPL search
// stream, §IV). Already-present or already-inflight lines are ignored.
func (h *Hierarchy) Prefetch(addr zarch.Addr, now int64) {
	line := h.Line(addr)
	if h.l1.lookup(line, now) {
		return
	}
	if _, ok := h.inflight[line]; ok {
		return
	}
	h.stats.Prefetches++
	h.inflight[line] = now + h.missLatency(line, now)
}

// Tick retires completed in-flight fills (bounds the map size on long
// runs). Completed lines retire in (ready, address) order: filling
// straight out of the map range would let its iteration order pick LRU
// victims, making otherwise-identical runs diverge.
func (h *Hierarchy) Tick(now int64) {
	if len(h.inflight) < 1024 {
		return
	}
	done := h.tickBuf[:0]
	for line, ready := range h.inflight {
		if ready <= now {
			done = append(done, pendingFill{line, ready})
		}
	}
	sort.Slice(done, func(a, b int) bool {
		if done[a].ready != done[b].ready {
			return done[a].ready < done[b].ready
		}
		return done[a].line < done[b].line
	})
	for _, f := range done {
		h.finishFill(f.line, f.ready)
	}
	h.tickBuf = done
}
