// Package hashx provides the small deterministic hash and PRNG
// primitives shared by the predictor structures (index/tag folding) and
// by the workload generators (reproducible randomness).
//
// Hardware index and tag functions are XOR folds of address bits; we
// mirror that so aliasing behaviour (partial tags, §IV of the paper) is
// representable rather than hidden behind a cryptographic hash.
package hashx

import "math"

// Fold reduces v to n bits by repeatedly XOR-folding the high half onto
// the low half. n must be in [1, 63].
func Fold(v uint64, n uint) uint64 {
	if n == 0 || n > 63 {
		panic("hashx: Fold width out of range")
	}
	mask := uint64(1)<<n - 1
	r := uint64(0)
	for v != 0 {
		r ^= v & mask
		v >>= n
	}
	return r
}

// Mix is a splitmix64-style finalizer: a cheap bijective scrambler used
// where a raw fold would leave too much structure (e.g. perceptron row
// selection in tests). It is deterministic and allocation-free.
func Mix(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// String hashes s with 64-bit FNV-1a. Deterministic across runs and
// platforms (unlike maphash), so derived seeds are reproducible.
func String(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// SeedFor derives an independent per-stream seed from a base seed and
// a stream name. Reusing one base seed verbatim across several named
// generators correlates their random streams (identical draws in
// identical order); hashing the name in and scrambling with Mix
// decorrelates them while staying reproducible from (base, name).
func SeedFor(base uint64, name string) uint64 {
	return Mix(base ^ String(name))
}

// Rand is a splitmix64 pseudo-random generator. The zero value is a
// valid generator seeded with 0; use New for an explicit seed. It is
// intentionally tiny and dependency-free so every workload and
// constrained-random test is reproducible bit-for-bit.
type Rand struct {
	state uint64
}

// New returns a Rand seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next pseudo-random value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	v := r.state
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("hashx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Zipf draws from a Zipf-like distribution over [0, n) with exponent s,
// using precomputed cumulative weights held in z. See NewZipf.
type Zipf struct {
	cum []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n items with exponent s (s > 0;
// larger s concentrates mass on low indices). Commercial-workload
// basic-block popularity is famously skewed, which is what gives the
// big BTB structures their value (paper §II.A); the generators use this
// to create realistic warm/cold code mixes.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("hashx: NewZipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, r: r}
}

// Next draws one index.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	// Binary search for the first cumulative weight >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
