package hashx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFoldWidth(t *testing.T) {
	f := func(v uint64) bool {
		for _, n := range []uint{1, 5, 11, 17, 32, 63} {
			if Fold(v, n)>>n != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFoldDeterministic(t *testing.T) {
	if Fold(0xdeadbeefcafe, 13) != Fold(0xdeadbeefcafe, 13) {
		t.Fatal("Fold not deterministic")
	}
	if Fold(0, 16) != 0 {
		t.Errorf("Fold(0,16) = %d, want 0", Fold(0, 16))
	}
}

func TestFoldPanics(t *testing.T) {
	for _, n := range []uint{0, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Fold(_, %d) did not panic", n)
				}
			}()
			Fold(1, n)
		}()
	}
}

func TestFoldDistinguishes(t *testing.T) {
	// Fold must at least separate nearby cache lines for small widths:
	// the BTB row index depends on it.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 2048; i++ {
		seen[Fold(i<<6, 11)] = true
	}
	if len(seen) < 1024 {
		t.Errorf("Fold over 2048 sequential lines produced only %d distinct 11-bit values", len(seen))
	}
}

func TestMixBijectiveish(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Mix(i)
		if seen[h] {
			t.Fatalf("Mix collision at %d", i)
		}
		seen[h] = true
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed Rand diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/1000 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(123)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	n := 200000
	for i := 0; i < n; i++ {
		idx := z.Next()
		if idx < 0 || idx >= 1000 {
			t.Fatalf("Zipf out of range: %d", idx)
		}
		counts[idx]++
	}
	// Item 0 should be far more popular than item 500, and the top 10
	// items should carry a large share.
	if counts[0] < 20*counts[500] && counts[500] > 0 {
		t.Errorf("zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
	top := 0
	for i := 0; i < 10; i++ {
		top += counts[i]
	}
	if float64(top)/float64(n) < 0.3 {
		t.Errorf("top-10 share = %v, want >= 0.3", float64(top)/float64(n))
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(r, 0, 1) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestStringFNV(t *testing.T) {
	// Pinned 64-bit FNV-1a vectors: the function must stay stable across
	// releases or every derived seed (and thus every study) shifts.
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 14695981039346656037},
		{"a", 0xaf63dc4c8601ec8c},
		{"foobar", 0x85944171f73967e8},
	}
	for _, c := range cases {
		if got := String(c.in); got != c.want {
			t.Errorf("String(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestSeedForDecorrelates(t *testing.T) {
	names := []string{"loops", "callret", "indirect", "lspr", "micro"}
	seen := map[uint64]string{}
	for _, n := range names {
		s := SeedFor(42, n)
		if s == 42 {
			t.Errorf("SeedFor(42, %q) returned the base seed unchanged", n)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("SeedFor collision: %q and %q both map to %#x", prev, n, s)
		}
		seen[s] = n
		if again := SeedFor(42, n); again != s {
			t.Errorf("SeedFor(42, %q) not deterministic: %#x vs %#x", n, s, again)
		}
		if other := SeedFor(43, n); other == s {
			t.Errorf("SeedFor ignores the base seed for %q", n)
		}
	}
}
