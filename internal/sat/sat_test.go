package sat

import (
	"testing"
	"testing/quick"
)

func TestCounter2Transitions(t *testing.T) {
	cases := []struct {
		start Counter2
		taken bool
		want  Counter2
	}{
		{StrongNT, true, WeakNT},
		{WeakNT, true, WeakT},
		{WeakT, true, StrongT},
		{StrongT, true, StrongT},
		{StrongT, false, WeakT},
		{WeakT, false, WeakNT},
		{WeakNT, false, StrongNT},
		{StrongNT, false, StrongNT},
	}
	for _, c := range cases {
		if got := c.start.Update(c.taken); got != c.want {
			t.Errorf("%d.Update(%v) = %d, want %d", c.start, c.taken, got, c.want)
		}
	}
}

func TestCounter2Predicates(t *testing.T) {
	if StrongNT.Taken() || WeakNT.Taken() || !WeakT.Taken() || !StrongT.Taken() {
		t.Error("Taken() wrong")
	}
	if StrongNT.Weak() || !WeakNT.Weak() || !WeakT.Weak() || StrongT.Weak() {
		t.Error("Weak() wrong")
	}
}

func TestCounter2Init(t *testing.T) {
	if Init(true) != WeakT || Init(false) != WeakNT {
		t.Error("Init wrong")
	}
}

func TestCounter2Strengthen(t *testing.T) {
	if WeakT.Strengthen() != StrongT || WeakNT.Strengthen() != StrongNT {
		t.Error("Strengthen wrong")
	}
	if StrongT.Strengthen() != StrongT {
		t.Error("Strengthen changed a strong state")
	}
}

func TestCounter2SaturationProperty(t *testing.T) {
	f := func(updates []bool) bool {
		c := WeakNT
		for _, u := range updates {
			c = c.Update(u)
			if c > StrongT {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUCounter(t *testing.T) {
	u := NewU(1, 3)
	u = u.Inc().Inc().Inc().Inc()
	if u.Get() != 3 {
		t.Errorf("Inc saturation: %d", u.Get())
	}
	for i := 0; i < 5; i++ {
		u = u.Dec()
	}
	if !u.Zero() {
		t.Errorf("Dec saturation: %d", u.Get())
	}
	if NewU(9, 3).Get() != 3 {
		t.Error("NewU did not clamp")
	}
	if NewU(2, 7).Max() != 7 {
		t.Error("Max wrong")
	}
}

func TestWeightSaturation(t *testing.T) {
	w := Weight(0)
	for i := 0; i < 100; i++ {
		w = w.Bump(true)
	}
	if w != WeightLimit {
		t.Errorf("positive saturation: %d", w)
	}
	for i := 0; i < 200; i++ {
		w = w.Bump(false)
	}
	if w != -WeightLimit {
		t.Errorf("negative saturation: %d", w)
	}
	if Weight(-5).Abs() != 5 || Weight(5).Abs() != 5 {
		t.Error("Abs wrong")
	}
}
