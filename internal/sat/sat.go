// Package sat provides small saturating counters used across the
// predictor: 2-bit direction counters (BHT/PHT state), usefulness
// counters, and signed perceptron weights.
package sat

// Counter2 is a 2-bit saturating direction counter. State encoding
// follows the usual convention: 0 strong-not-taken, 1 weak-not-taken,
// 2 weak-taken, 3 strong-taken.
type Counter2 uint8

// Named counter states.
const (
	StrongNT Counter2 = 0
	WeakNT   Counter2 = 1
	WeakT    Counter2 = 2
	StrongT  Counter2 = 3
)

// Taken reports the predicted direction.
func (c Counter2) Taken() bool { return c >= WeakT }

// Weak reports whether the counter is in a weak state; weak states are
// what the speculative BHT/PHT mechanism tracks (paper §IV) and what
// TAGE weak-filtering gates on (§V).
func (c Counter2) Weak() bool { return c == WeakNT || c == WeakT }

// Update moves the counter toward the resolved direction, saturating.
func (c Counter2) Update(taken bool) Counter2 {
	if taken {
		if c < StrongT {
			return c + 1
		}
		return c
	}
	if c > StrongNT {
		return c - 1
	}
	return c
}

// Init returns the weak state matching an initial direction, the
// natural install state for a newly learned branch.
func Init(taken bool) Counter2 {
	if taken {
		return WeakT
	}
	return WeakNT
}

// Strengthen returns the strong state for the counter's current
// direction, used when a speculative (SBHT/SPHT) assumption applies a
// weak prediction as if it were correct.
func (c Counter2) Strengthen() Counter2 {
	if c.Taken() {
		return StrongT
	}
	return StrongNT
}

// UCounter is an unsigned saturating usefulness counter with a
// configurable maximum (TAGE usefulness, perceptron usefulness,
// protection limits).
type UCounter struct {
	v, max uint8
}

// NewU returns a counter over [0, max] starting at v (clamped).
func NewU(v, max uint8) UCounter {
	if v > max {
		v = max
	}
	return UCounter{v: v, max: max}
}

// Get returns the current value.
func (u UCounter) Get() uint8 { return u.v }

// Max returns the saturation bound.
func (u UCounter) Max() uint8 { return u.max }

// Inc returns the counter incremented, saturating at max.
func (u UCounter) Inc() UCounter {
	if u.v < u.max {
		u.v++
	}
	return u
}

// Dec returns the counter decremented, saturating at 0.
func (u UCounter) Dec() UCounter {
	if u.v > 0 {
		u.v--
	}
	return u
}

// Zero reports whether the counter is exhausted.
func (u UCounter) Zero() bool { return u.v == 0 }

// Weight is a signed saturating perceptron weight.
type Weight int8

// WeightLimit bounds weight magnitude (6-bit signed range is typical
// for hardware perceptrons; the z15 patent does not publish the width).
const WeightLimit = 31

// Bump moves the weight toward agreement: +1 if up, else -1, saturating
// at +/-WeightLimit.
func (w Weight) Bump(up bool) Weight {
	if up {
		if w < WeightLimit {
			return w + 1
		}
		return w
	}
	if w > -WeightLimit {
		return w - 1
	}
	return w
}

// Abs returns the weight magnitude as an int.
func (w Weight) Abs() int {
	if w < 0 {
		return int(-w)
	}
	return int(w)
}
