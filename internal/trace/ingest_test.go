package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"zbp/internal/zarch"
)

// champBytes encodes one ChampSim record for test inputs. The src
// registers carry the branch-kind convention champKind inverts.
func champBytes(ip uint64, branch, taken bool, src [4]byte) []byte {
	var b [champRecSize]byte
	binary.LittleEndian.PutUint64(b[0:8], ip)
	if branch {
		b[8] = 1
	}
	if taken {
		b[9] = 1
	}
	copy(b[12:16], src[:])
	return b[:]
}

// Shorthand source-register patterns for each branch kind.
var (
	srcCondRel   = [4]byte{champRegIP, champRegFlags}
	srcCondInd   = [4]byte{champRegFlags, 1}
	srcUncondRel = [4]byte{champRegIP}
	srcUncondInd = [4]byte{1}
	srcNone      = [4]byte{}
)

// TestIngestRoundTrip exports a native contiguous z stream to the
// ChampSim format and re-ingests it: static branch identities,
// directions, targets, and lengths must survive exactly, with zero
// synthetic records fabricated. Lengths survive because on a z stream
// they ARE the sequential address deltas the ingest derives them from.
func TestIngestRoundTrip(t *testing.T) {
	orig := []Rec{
		NewRec(0x1000, 4, zarch.KindNone, false, 0, 0),
		NewRec(0x1004, 2, zarch.KindCondRel, false, 0, 0),
		NewRec(0x1006, 6, zarch.KindNone, false, 0, 0),
		NewRec(0x100c, 4, zarch.KindCondRel, true, 0x2000, 0),
		NewRec(0x2000, 4, zarch.KindUncondInd, true, 0x1000, 0),
		NewRec(0x1000, 4, zarch.KindNone, false, 0, 0),
		NewRec(0x1004, 2, zarch.KindCondRel, false, 0, 0),
		// The final record carries the adapter's default length: with no
		// successor there is no delta to re-derive a length from.
		NewRec(0x1006, 4, zarch.KindNone, false, 0, 0),
	}
	var buf bytes.Buffer
	if _, err := ExportChampSim(&buf, &sliceSource{recs: orig}, 0); err != nil {
		t.Fatalf("export: %v", err)
	}
	p, st, err := IngestChampSim(&buf, 0)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if st.Pads != 0 || st.Glue != 0 || st.Dropped != 0 {
		t.Fatalf("round trip fabricated records: %+v", st)
	}
	if p.Len() != len(orig) {
		t.Fatalf("got %d records, want %d", p.Len(), len(orig))
	}
	c := p.Cursor()
	for i, want := range orig {
		got, _ := c.Next()
		if got != want {
			t.Errorf("record %d: got %+v, want %+v", i, got, want)
		}
	}
}

// TestIngestContiguity feeds a foreign-shaped stream — odd addresses,
// large sequential gaps, backward discontinuities, repeated IPs — and
// checks the normalized output is a contiguous chain: every record's
// Next() is the following record's address.
func TestIngestContiguity(t *testing.T) {
	var in bytes.Buffer
	in.Write(champBytes(0x500, false, false, srcNone))  // odd-delta straight line
	in.Write(champBytes(0x503, false, false, srcNone))  // +3 bytes (doubled: 6)
	in.Write(champBytes(0x510, false, false, srcNone))  // +13: doubled 26 -> pads
	in.Write(champBytes(0x510, false, false, srcNone))  // repeated IP (x86 rep) -> glue
	in.Write(champBytes(0x200, false, false, srcNone))  // backward jump -> glue
	in.Write(champBytes(0x204, true, true, srcCondRel)) // taken branch
	in.Write(champBytes(0x900, false, false, srcNone))  // its target
	in.Write(champBytes(0x904, false, false, srcNone))

	p, st, err := IngestChampSim(&in, 0)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if st.Pads == 0 {
		t.Error("expected pad instructions for the 26-byte gap")
	}
	if st.Glue < 2 {
		t.Errorf("expected glue for the repeat and the backward jump, got %d", st.Glue)
	}
	c := p.Cursor()
	prev, ok := c.Next()
	if !ok {
		t.Fatal("empty output")
	}
	for i := 1; ; i++ {
		r, ok := c.Next()
		if !ok {
			break
		}
		if prev.Next() != r.Addr {
			t.Fatalf("record %d: discontinuity %v -> %v (prev %+v)", i, prev.Next(), r.Addr, prev)
		}
		prev = r
	}
}

// TestIngestStatsCounts pins the adapter counters on a small
// deterministic input.
func TestIngestStatsCounts(t *testing.T) {
	var in bytes.Buffer
	in.Write(champBytes(0x100, false, false, srcNone))
	in.Write(champBytes(0x102, false, false, srcNone))    // delta 2 -> doubled 4
	in.Write(champBytes(0x110, false, false, srcNone))    // delta 14 -> doubled 28: 1 rec + pads
	in.Write(champBytes(0x112, true, true, srcUncondInd)) // taken indirect
	in.Write(champBytes(0x100, true, true, srcCondRel))   // final taken branch: dropped

	p, st, err := IngestChampSim(&in, 0)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	want := IngestStats{Records: 5, Emitted: 4, Pads: 4, Glue: 0, Dropped: 1}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
	// 4 external records emitted + 4 pads (28-6 = 22 bytes in 6,6,6,4).
	if p.Len() != 8 {
		t.Fatalf("output length %d, want 8", p.Len())
	}
}

// TestIngestDemotion: a branch encoded unconditional but observed
// not-taken is structurally invalid on z, so the adapter demotes it to
// the conditional counterpart instead of rejecting the trace.
func TestIngestDemotion(t *testing.T) {
	cases := []struct {
		src  [4]byte
		want zarch.BranchKind
	}{
		{srcUncondRel, zarch.KindCondRel},
		{srcUncondInd, zarch.KindCondInd},
	}
	for _, tc := range cases {
		var in bytes.Buffer
		in.Write(champBytes(0x100, true, false, tc.src))
		in.Write(champBytes(0x102, false, false, srcNone))
		in.Write(champBytes(0x104, false, false, srcNone))
		p, _, err := IngestChampSim(&in, 0)
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		c := p.Cursor()
		r, ok := c.Next()
		if !ok || r.Kind() != tc.want {
			t.Errorf("src %v: kind = %v, want %v", tc.src, r.Kind(), tc.want)
		}
	}
}

// TestIngestKindInference pins the register-usage inversion for each
// branch kind.
func TestIngestKindInference(t *testing.T) {
	cases := []struct {
		src  [4]byte
		want zarch.BranchKind
	}{
		{srcCondRel, zarch.KindCondRel},
		{srcCondInd, zarch.KindCondInd},
		{srcUncondRel, zarch.KindUncondRel},
		{srcUncondInd, zarch.KindUncondInd},
		{[4]byte{champRegSP, champRegIP}, zarch.KindUncondRel}, // direct call
		{[4]byte{champRegSP}, zarch.KindUncondInd},             // return
	}
	for _, tc := range cases {
		var in bytes.Buffer
		in.Write(champBytes(0x100, true, true, tc.src))
		in.Write(champBytes(0x200, false, false, srcNone))
		in.Write(champBytes(0x202, false, false, srcNone))
		p, _, err := IngestChampSim(&in, 0)
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		c := p.Cursor()
		r, ok := c.Next()
		if !ok || r.Kind() != tc.want {
			t.Errorf("src %v: kind = %v, want %v", tc.src, r.Kind(), tc.want)
		}
		if r.Target != 0x400 {
			t.Errorf("src %v: target = %v, want 0x400 (doubled next ip)", tc.src, r.Target)
		}
	}
}

// TestIngestHostile pins the failure modes: truncation and flows into
// address zero are errors, not panics or silently wrong streams.
func TestIngestHostile(t *testing.T) {
	t.Run("truncated record", func(t *testing.T) {
		full := champBytes(0x100, false, false, srcNone)
		_, _, err := IngestChampSim(bytes.NewReader(full[:champRecSize-1]), 0)
		if err == nil {
			t.Fatal("expected truncation error")
		}
	})
	t.Run("truncated tail", func(t *testing.T) {
		var in bytes.Buffer
		in.Write(champBytes(0x100, false, false, srcNone))
		in.Write(champBytes(0x102, false, false, srcNone)[:10])
		_, _, err := IngestChampSim(&in, 0)
		if err == nil {
			t.Fatal("expected truncation error")
		}
	})
	t.Run("taken branch targets zero", func(t *testing.T) {
		var in bytes.Buffer
		in.Write(champBytes(0x100, true, true, srcCondRel))
		in.Write(champBytes(0, false, false, srcNone))
		in.Write(champBytes(2, false, false, srcNone))
		_, _, err := IngestChampSim(&in, 0)
		if err == nil {
			t.Fatal("expected target-zero error")
		}
	})
	t.Run("empty input is a valid empty trace", func(t *testing.T) {
		p, st, err := IngestChampSim(bytes.NewReader(nil), 0)
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		if p.Len() != 0 || st != (IngestStats{}) {
			t.Fatalf("got %d records, stats %+v", p.Len(), st)
		}
	})
}

// FuzzIngest hammers the adapter with arbitrary bytes. The contract:
// never panic, and on success every emitted record validates and the
// stream is contiguous.
func FuzzIngest(f *testing.F) {
	var valid bytes.Buffer
	valid.Write(champBytes(0x100, false, false, srcNone))
	valid.Write(champBytes(0x102, true, true, srcCondRel))
	valid.Write(champBytes(0x200, false, false, srcNone))
	valid.Write(champBytes(0x204, true, true, srcUncondInd))
	valid.Write(champBytes(0x100, false, false, srcNone))
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:champRecSize-1])                          // truncated record
	f.Add(valid.Bytes()[:champRecSize+7])                          // truncated tail
	f.Add(champBytes(0, false, false, srcNone))                    // ip zero
	f.Add(champBytes(1<<63, true, true, srcUncondInd))             // doubling overflows to 0
	f.Add(champBytes(^uint64(0), false, false, srcNone))           // max ip
	f.Add(bytes.Repeat([]byte{0xff}, champRecSize*3))              // garbage flags
	f.Add(bytes.Repeat(champBytes(0x8, false, false, srcNone), 4)) // rep loop
	f.Fuzz(func(t *testing.T, data []byte) {
		cr := NewChampSimReader(bytes.NewReader(data))
		var prev Rec
		have := false
		for {
			r, ok := cr.Next()
			if !ok {
				break
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("emitted invalid record %+v: %v", r, err)
			}
			if have && prev.Next() != r.Addr {
				t.Fatalf("discontinuity: %v -> %v", prev.Next(), r.Addr)
			}
			prev, have = r, true
		}
		// A second Next after exhaustion must stay exhausted.
		if _, ok := cr.Next(); ok {
			t.Fatal("reader resurrected after end of stream")
		}
	})
}
