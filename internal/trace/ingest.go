package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"zbp/internal/zarch"
)

// This file is the external-trace adapter: a streaming decoder for the
// ChampSim binary instruction-trace format that normalizes foreign
// (x86-shaped) traces into valid z record streams.
//
// A ChampSim record is 64 bytes, little-endian:
//
//	ip                    uint64
//	is_branch             uint8
//	branch_taken          uint8
//	destination_registers [2]uint8
//	source_registers      [4]uint8
//	destination_memory    [2]uint64
//	source_memory         [4]uint64
//
// The branch kind is not stored explicitly; ChampSim's tracer encodes
// it through register usage (reads/writes of the instruction pointer,
// stack pointer and flags), and the decoder inverts that convention.
//
// Normalization. The simulator consumes records as architectural
// ground truth and requires a *contiguous* stream: every record's
// Next() (fallthrough or taken target) must be the following record's
// address, and addresses/lengths must satisfy the z constraints
// (halfword alignment, lengths in {2,4,6}). Foreign traces satisfy
// neither, so the adapter rewrites the address space while preserving
// the control-flow structure that matters to a branch predictor
// (static branch identities, directions, target patterns):
//
//   - every instruction pointer is doubled (ip<<1), which makes every
//     address halfword-aligned and keeps distinct IPs distinct;
//   - instruction lengths are derived from the doubled sequential
//     delta to the next record when it fits {2,4,6};
//   - larger even gaps up to maxPadSpan are filled with synthetic
//     non-branch pad instructions (straight-line code the original
//     trace simply didn't annotate with lengths);
//   - anything else — backward fallthrough, repeated IPs (x86 rep),
//     filtered-trace discontinuities — is bridged with a synthetic
//     taken unconditional "glue" branch, which is exactly what the
//     hardware would have observed at such a discontinuity;
//   - a taken branch's target is the next record's doubled IP;
//   - an unconditional-looking branch observed not-taken (hostile or
//     lossy input) is demoted to its conditional counterpart rather
//     than rejected, since conditionality is the weaker claim.
//
// Synthetic records are counted in IngestStats so characterization
// can report how much of a stream is adapter-fabricated.

// champRecSize is the fixed ChampSim record size in bytes.
const champRecSize = 64

// ChampSim x86 register numbers used for branch-kind inference,
// matching ChampSim's tracer constants.
const (
	champRegSP    = 6
	champRegFlags = 25
	champRegIP    = 26
)

// maxPadSpan bounds the sequential gap (in doubled address bytes) the
// adapter fills with pad instructions; larger gaps get a glue branch.
// 64 bytes covers doubled x86 instruction lengths (up to 15 bytes →
// delta 30) and small skips without fabricating unbounded filler.
const maxPadSpan = 64

// IngestStats counts what the adapter did to one stream.
type IngestStats struct {
	// Records is the number of external records decoded.
	Records int
	// Emitted is the number of z records emitted for external records
	// (excludes synthetic pads and glue).
	Emitted int
	// Pads is the number of synthetic non-branch filler instructions.
	Pads int
	// Glue is the number of synthetic unconditional bridge branches.
	Glue int
	// Dropped counts trailing records that could not be emitted (a
	// final taken branch has no successor to derive its target from).
	Dropped int
}

// champRec is one decoded external record.
type champRec struct {
	ip     uint64
	branch bool
	taken  bool
	kind   zarch.BranchKind
}

// ChampSimReader streams a ChampSim-format trace as a Source of
// normalized, validated z records. Like Reader, it is hardened
// against hostile input: errors are reported via Err, truncated
// records are rejected, and nothing is pre-allocated from
// input-declared sizes (the format has none).
type ChampSimReader struct {
	r   io.Reader
	err error
	st  IngestStats

	buf      [champRecSize]byte
	prev     champRec
	havePrev bool
	eof      bool

	queue   []Rec
	qpos    int
	cur     zarch.Addr // next sequential z address the stream expects
	started bool
}

// NewChampSimReader returns a streaming decoder over r.
func NewChampSimReader(r io.Reader) *ChampSimReader {
	return &ChampSimReader{r: r}
}

// Err returns the first error encountered (nil at a clean end of
// stream).
func (c *ChampSimReader) Err() error { return c.err }

// IngestStats returns the adapter counters accumulated so far.
func (c *ChampSimReader) IngestStats() IngestStats { return c.st }

// Next implements Source.
func (c *ChampSimReader) Next() (Rec, bool) {
	for {
		if c.qpos < len(c.queue) {
			r := c.queue[c.qpos]
			c.qpos++
			return r, true
		}
		c.queue = c.queue[:0]
		c.qpos = 0
		if c.err != nil || c.eof {
			return Rec{}, false
		}
		rec, ok := c.readRec()
		if c.err != nil {
			return Rec{}, false
		}
		if !ok {
			c.eof = true
			if c.havePrev {
				c.emit(c.prev, 0, false)
				c.havePrev = false
			}
			continue
		}
		if !c.havePrev {
			c.prev, c.havePrev = rec, true
			continue
		}
		c.emit(c.prev, rec.ip, true)
		c.prev = rec
	}
}

// readRec decodes one external record, returning ok=false at a clean
// end of stream and setting err on truncation or read failure.
func (c *ChampSimReader) readRec() (champRec, bool) {
	if _, err := io.ReadFull(c.r, c.buf[:]); err != nil {
		if err == io.EOF {
			return champRec{}, false
		}
		if err == io.ErrUnexpectedEOF {
			c.err = fmt.Errorf("trace: champsim record %d truncated", c.st.Records)
		} else {
			c.err = err
		}
		return champRec{}, false
	}
	c.st.Records++
	b := c.buf[:]
	rec := champRec{
		ip:     binary.LittleEndian.Uint64(b[0:8]),
		branch: b[8] != 0,
		taken:  b[9] != 0,
	}
	if rec.branch {
		rec.kind = champKind(b[10:12], b[12:16])
		// A not-taken unconditional branch is structurally invalid in a
		// z trace; conditionality is the weaker claim, so demote.
		if !rec.taken && !rec.kind.Conditional() {
			if rec.kind.Indirect() {
				rec.kind = zarch.KindCondInd
			} else {
				rec.kind = zarch.KindCondRel
			}
		}
	} else {
		rec.taken = false
	}
	return rec, true
}

// champKind inverts ChampSim's register-usage branch encoding.
func champKind(dst, src []byte) zarch.BranchKind {
	var readsSP, readsFlags, readsIP, readsOther bool
	for _, r := range src {
		switch r {
		case 0:
		case champRegSP:
			readsSP = true
		case champRegFlags:
			readsFlags = true
		case champRegIP:
			readsIP = true
		default:
			readsOther = true
		}
	}
	switch {
	case readsFlags:
		if readsOther || !readsIP {
			return zarch.KindCondInd
		}
		return zarch.KindCondRel
	case readsSP:
		// Call or return; direct calls read the IP and nothing else.
		if readsIP && !readsOther {
			return zarch.KindUncondRel
		}
		return zarch.KindUncondInd
	default:
		if readsIP && !readsOther {
			return zarch.KindUncondRel
		}
		return zarch.KindUncondInd
	}
}

// emit queues the z records for one external instruction. nextIP is
// the following external record's instruction pointer; known is false
// only for the final record of the stream.
func (c *ChampSimReader) emit(r champRec, nextIP uint64, known bool) {
	zA := zarch.Addr(r.ip << 1)
	if !c.started {
		c.cur, c.started = zA, true
	}
	if c.cur != zA {
		// Flow arrived somewhere the previous record's fallthrough
		// didn't reach: bridge with a glue branch.
		if zA == 0 {
			c.err = fmt.Errorf("trace: champsim record %d: cannot bridge to address 0", c.st.Records)
			return
		}
		c.push(NewRec(c.cur, 4, zarch.KindUncondRel, true, zA, 0))
		c.st.Glue++
		c.cur = zA
	}

	taken := r.branch && r.taken
	var target zarch.Addr
	if taken {
		if !known {
			// A final taken branch has no successor to name its target.
			c.st.Dropped++
			return
		}
		target = zarch.Addr(nextIP << 1)
		if target == 0 {
			c.err = fmt.Errorf("trace: champsim record %d: taken branch targets address 0", c.st.Records)
			return
		}
	}

	length := uint8(4)
	var padBytes zarch.Addr
	if known && !taken {
		// Fallthrough flow: derive the length from the doubled delta,
		// padding even gaps up to maxPadSpan; anything else keeps the
		// default length and lets the next emit glue.
		delta := zarch.Addr(nextIP<<1) - zA
		switch {
		case delta == 2 || delta == 4 || delta == 6:
			length = uint8(delta)
		case delta > 6 && delta <= maxPadSpan && delta%2 == 0:
			length = 6
			padBytes = delta - 6
		}
	}

	kind := zarch.KindNone
	if r.branch {
		kind = r.kind
	}
	rec := NewRec(zA, length, kind, taken, target, 0)
	if err := rec.Validate(); err != nil {
		c.err = fmt.Errorf("trace: champsim record %d: %w", c.st.Records, err)
		return
	}
	c.push(rec)
	c.st.Emitted++
	c.cur = rec.Next()
	for padBytes > 0 {
		chunk := padBytes
		if chunk > 6 {
			chunk = 6
		}
		c.push(NewRec(c.cur, uint8(chunk), zarch.KindNone, false, 0, 0))
		c.st.Pads++
		c.cur += chunk
		padBytes -= chunk
	}
}

func (c *ChampSimReader) push(r Rec) { c.queue = append(c.queue, r) }

// IngestChampSim decodes a ChampSim-format stream into a validated
// Packed buffer (up to max records; max <= 0 means unbounded), along
// with the adapter counters. Decoding is strict: any malformed input
// returns an error and no buffer.
func IngestChampSim(r io.Reader, max int) (*Packed, IngestStats, error) {
	cr := NewChampSimReader(r)
	p, err := Pack(cr, max)
	if err != nil {
		return nil, cr.IngestStats(), err
	}
	if err := cr.Err(); err != nil {
		return nil, cr.IngestStats(), err
	}
	return p, cr.IngestStats(), nil
}

// IngestChampSimFile reads the ChampSim trace file at path into a
// Packed buffer.
func IngestChampSimFile(path string, max int) (*Packed, IngestStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, IngestStats{}, err
	}
	defer f.Close()
	p, st, err := IngestChampSim(f, max)
	if err != nil {
		return nil, st, fmt.Errorf("trace: ingesting %s: %w", path, err)
	}
	return p, st, nil
}

// ExportChampSim writes up to max records from src (max <= 0 means
// until exhaustion) to w in the ChampSim binary record format,
// inverting the ingest normalization: ip is the halved address and the
// branch kind is encoded through the register-usage convention. The
// export is lossy where the formats disagree: context IDs and exact
// instruction lengths have no ChampSim representation (lengths are
// re-derived from address deltas on ingest), and KindLoop flattens to
// a conditional branch. Returns the number of records written.
func ExportChampSim(w io.Writer, src Source, max int) (int, error) {
	var buf [champRecSize]byte
	n := 0
	for max <= 0 || n < max {
		r, ok := src.Next()
		if !ok {
			break
		}
		for i := range buf {
			buf[i] = 0
		}
		binary.LittleEndian.PutUint64(buf[0:8], uint64(r.Addr)>>1)
		if r.IsBranch() {
			buf[8] = 1
			if r.Taken() {
				buf[9] = 1
			}
			buf[10] = champRegIP // all branches write the IP
			switch r.Kind() {
			case zarch.KindCondRel, zarch.KindLoop:
				buf[12], buf[13] = champRegIP, champRegFlags
			case zarch.KindCondInd:
				buf[12], buf[13] = champRegFlags, 1
			case zarch.KindUncondRel:
				buf[12] = champRegIP
			case zarch.KindUncondInd:
				buf[12] = 1
			}
		}
		if _, err := w.Write(buf[:]); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
