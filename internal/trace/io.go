package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"zbp/internal/zarch"
)

// File format:
//
//	magic "ZBPT" | version u8 | records...
//
// Each record is a flag byte followed by varint fields. Addresses are
// delta-encoded against the previous record's next-sequential address,
// so straight-line code costs ~2 bytes per instruction.
const (
	magic   = "ZBPT"
	version = 1
)

// Flag byte layout.
const (
	flagTaken   = 1 << 3
	flagHasCtx  = 1 << 4
	flagHasAddr = 1 << 5 // address differs from expected sequential
	kindMask    = 0x07   // low 3 bits: BranchKind
	lenShift    = 6      // top 2 bits: length code (0->2, 1->4, 2->6)
)

func lenCode(n uint8) (byte, error) {
	switch n {
	case 2:
		return 0, nil
	case 4:
		return 1, nil
	case 6:
		return 2, nil
	}
	return 0, fmt.Errorf("trace: unencodable instruction length %d", n)
}

func codeLen(c byte) (uint8, error) {
	switch c {
	case 0:
		return 2, nil
	case 1:
		return 4, nil
	case 2:
		return 6, nil
	}
	return 0, fmt.Errorf("trace: invalid length code %d", c)
}

// Writer streams records to an io.Writer in the binary format.
type Writer struct {
	w        *bufio.Writer
	expected zarch.Addr // next sequential address after previous record
	ctx      uint16
	wroteHdr bool
	count    int
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (tw *Writer) Write(r Rec) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if !tw.wroteHdr {
		if _, err := tw.w.WriteString(magic); err != nil {
			return err
		}
		if err := tw.w.WriteByte(version); err != nil {
			return err
		}
		tw.wroteHdr = true
	}
	lc, err := lenCode(r.Len())
	if err != nil {
		return err
	}
	flags := byte(r.Kind()) & kindMask
	flags |= lc << lenShift
	if r.Taken() {
		flags |= flagTaken
	}
	if r.CtxID != tw.ctx || tw.count == 0 {
		flags |= flagHasCtx
	}
	if r.Addr != tw.expected || tw.count == 0 {
		flags |= flagHasAddr
	}
	if err := tw.w.WriteByte(flags); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	if flags&flagHasAddr != 0 {
		n := binary.PutUvarint(buf[:], uint64(r.Addr))
		if _, err := tw.w.Write(buf[:n]); err != nil {
			return err
		}
	}
	if flags&flagHasCtx != 0 {
		n := binary.PutUvarint(buf[:], uint64(r.CtxID))
		if _, err := tw.w.Write(buf[:n]); err != nil {
			return err
		}
		tw.ctx = r.CtxID
	}
	if r.Taken() {
		// Targets are usually near the branch; store zig-zag delta.
		d := int64(r.Target) - int64(r.Addr)
		n := binary.PutVarint(buf[:], d)
		if _, err := tw.w.Write(buf[:n]); err != nil {
			return err
		}
	}
	tw.expected = r.Addr + zarch.Addr(r.Len())
	tw.count++
	return nil
}

// Flush writes any buffered data to the underlying writer.
func (tw *Writer) Flush() error {
	if !tw.wroteHdr {
		// An empty trace still gets a valid header.
		if _, err := tw.w.WriteString(magic); err != nil {
			return err
		}
		if err := tw.w.WriteByte(version); err != nil {
			return err
		}
		tw.wroteHdr = true
	}
	return tw.w.Flush()
}

// Count returns the number of records written so far.
func (tw *Writer) Count() int { return tw.count }

// Reader streams records from the binary format; it implements Source.
type Reader struct {
	r        *bufio.Reader
	expected zarch.Addr
	ctx      uint16
	readHdr  bool
	err      error
	count    int
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Err returns the first error encountered, excluding clean EOF.
func (tr *Reader) Err() error { return tr.err }

func (tr *Reader) header() error {
	var hdr [5]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return errors.New("trace: bad magic")
	}
	if hdr[4] != version {
		return fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	tr.readHdr = true
	return nil
}

// Next implements Source. On malformed input it records the error
// (see Err) and ends the stream.
func (tr *Reader) Next() (Rec, bool) {
	if tr.err != nil {
		return Rec{}, false
	}
	if !tr.readHdr {
		if err := tr.header(); err != nil {
			tr.err = err
			return Rec{}, false
		}
	}
	flags, err := tr.r.ReadByte()
	if err == io.EOF {
		return Rec{}, false
	}
	if err != nil {
		tr.err = err
		return Rec{}, false
	}
	var rec Rec
	kind := zarch.BranchKind(flags & kindMask)
	n, err := codeLen(flags >> lenShift)
	if err != nil {
		tr.err = err
		return Rec{}, false
	}
	taken := flags&flagTaken != 0
	rec.Meta = RecMeta(n, kind, taken)
	if flags&flagHasAddr != 0 {
		v, err := binary.ReadUvarint(tr.r)
		if err != nil {
			tr.err = fmt.Errorf("trace: reading addr: %w", err)
			return Rec{}, false
		}
		rec.Addr = zarch.Addr(v)
	} else {
		rec.Addr = tr.expected
	}
	if flags&flagHasCtx != 0 {
		v, err := binary.ReadUvarint(tr.r)
		if err != nil {
			tr.err = fmt.Errorf("trace: reading ctx: %w", err)
			return Rec{}, false
		}
		if v > 0xffff {
			// The writer only ever encodes uint16 contexts; a larger
			// value is corruption, not something to silently truncate.
			tr.err = fmt.Errorf("trace: context id %d out of range", v)
			return Rec{}, false
		}
		tr.ctx = uint16(v)
	}
	rec.CtxID = tr.ctx
	if taken {
		d, err := binary.ReadVarint(tr.r)
		if err != nil {
			tr.err = fmt.Errorf("trace: reading target: %w", err)
			return Rec{}, false
		}
		rec.Target = zarch.Addr(int64(rec.Addr) + d)
	}
	if err := rec.Validate(); err != nil {
		tr.err = err
		return Rec{}, false
	}
	tr.expected = rec.Addr + zarch.Addr(n)
	tr.count++
	return rec, true
}

// Count returns the number of records read so far.
func (tr *Reader) Count() int { return tr.count }
