package trace

import (
	"bytes"
	"testing"
)

// FuzzPackedRoundTrip pins the packed loader to the hardened streaming
// decoder: LoadPacked must accept exactly the inputs a Reader drains
// without error, yield the identical record sequence, and re-encoding
// the buffer must be a fixed point (load → encode → load → same
// records). Anything the streaming decoder rejects — bad magic,
// truncated varints, invalid length codes, out-of-range context IDs —
// LoadPacked must reject too, returning no buffer.
func FuzzPackedRoundTrip(f *testing.F) {
	valid := validTraceBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("ZBPT\x01"))               // header only: empty trace
	f.Add([]byte("ZBPT\x02"))               // bad version
	f.Add([]byte("XXXX\x01\x00"))           // bad magic
	f.Add(append([]byte("ZBPT\x01"), 0xff)) // invalid length code
	f.Add(valid[:len(valid)-1])             // truncated tail
	f.Add(append(valid, 0x07))              // trailing garbage
	f.Add(append([]byte("ZBPT\x01"), bytes.Repeat([]byte{0xac}, 64)...))
	// Overlong varints (all continuation bytes): the hostile-size class
	// the pre-allocation clamp in grow/Take defends against.
	f.Add(append([]byte("ZBPT\x01\x27"), bytes.Repeat([]byte{0x80}, 32)...))
	f.Add(append([]byte("ZBPT\x01\x27"), bytes.Repeat([]byte{0xff}, 32)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Reference pass: what the hardened streaming decoder accepts.
		ref := NewReader(bytes.NewReader(data))
		var recs []Rec
		for {
			r, ok := ref.Next()
			if !ok {
				break
			}
			recs = append(recs, r)
		}

		p, err := LoadPacked(bytes.NewReader(data))
		if refErr := ref.Err(); refErr != nil {
			if err == nil {
				t.Fatalf("LoadPacked accepted input the streaming decoder rejects (%v)", refErr)
			}
			if p != nil {
				t.Fatal("LoadPacked returned a buffer alongside an error")
			}
			return
		}
		if err != nil {
			t.Fatalf("LoadPacked rejected input the streaming decoder accepts: %v", err)
		}
		if p.Len() != len(recs) {
			t.Fatalf("LoadPacked kept %d records, streaming decoder read %d", p.Len(), len(recs))
		}
		branches := 0
		for i, want := range recs {
			if got := p.At(i); got != want {
				t.Fatalf("record %d: packed %+v, streamed %+v", i, got, want)
			}
			if want.IsBranch() {
				branches++
			}
		}
		if p.Branches() != branches {
			t.Fatalf("Branches = %d, want %d", p.Branches(), branches)
		}

		// Re-encode and reload: decoded records are already canonical,
		// so the packed form must survive the file format exactly.
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatalf("re-encoding a loaded trace: %v", err)
		}
		q, err := LoadPacked(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reloading a re-encoded trace: %v", err)
		}
		if q.Len() != p.Len() {
			t.Fatalf("reload kept %d records, want %d", q.Len(), p.Len())
		}
		for i := 0; i < p.Len(); i++ {
			if q.At(i) != p.At(i) {
				t.Fatalf("record %d changed across encode/load: %+v vs %+v", i, q.At(i), p.At(i))
			}
		}

		// PackRecs over the same slice must agree with the cursor view.
		pr, err := PackRecs(recs)
		if err != nil {
			t.Fatalf("PackRecs rejected validated records: %v", err)
		}
		c, d := p.Cursor(), pr.Cursor()
		for {
			a, okA := c.Next()
			b, okB := d.Next()
			if okA != okB || a != b {
				t.Fatalf("cursor divergence: %+v (%v) vs %+v (%v)", a, okA, b, okB)
			}
			if !okA {
				break
			}
		}
	})
}
