package trace

import (
	"bytes"
	"path/filepath"
	"testing"

	"zbp/internal/zarch"
)

// packTestRecs is a small record mix covering every field the meta
// byte packs: all three lengths, taken and not-taken, context IDs.
func packTestRecs() []Rec {
	return []Rec{
		NewRec(0x1000, 4, zarch.KindNone, false, 0, 0),
		NewRec(0x1004, 2, zarch.KindCondRel, true, 0x2000, 0),
		NewRec(0x2000, 6, zarch.KindNone, false, 0, 7),
		NewRec(0x2006, 4, zarch.KindUncondInd, true, 0x3000, 7),
		NewRec(0x3000, 2, zarch.KindLoop, false, 0, 7),
		NewRec(0x3002, 4, zarch.KindCondInd, true, 0x1000, 3),
		NewRec(0x1000, 6, zarch.KindUncondRel, true, 0x1000, 0),
	}
}

func TestPackRecsRoundTrip(t *testing.T) {
	recs := packTestRecs()
	p, err := PackRecs(recs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(recs))
	}
	wantBranches := 0
	for i, r := range recs {
		if got := p.At(i); got != r {
			t.Errorf("At(%d) = %+v, want %+v", i, got, r)
		}
		if r.IsBranch() {
			wantBranches++
		}
	}
	if p.Branches() != wantBranches {
		t.Errorf("Branches = %d, want %d", p.Branches(), wantBranches)
	}
	if p.SizeBytes() < p.Len()*19 {
		t.Errorf("SizeBytes = %d, implausibly small for %d records", p.SizeBytes(), p.Len())
	}
}

func TestPackRejectsInvalid(t *testing.T) {
	bad := []Rec{
		NewRec(0x1000, 3, zarch.KindNone, false, 0, 0),      // odd length
		NewRec(0x1000, 4, zarch.BranchKind(6), false, 0, 0), // out-of-range kind
		NewRec(0x1000, 4, zarch.KindCondRel, true, 0, 0),    // taken without target
	}
	for i, r := range bad {
		if _, err := PackRecs([]Rec{r}); err == nil {
			t.Errorf("case %d: PackRecs accepted invalid record %+v", i, r)
		}
	}
}

func TestPackMaxBound(t *testing.T) {
	recs := packTestRecs()
	p, err := Pack(&sliceSource{recs: recs}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Pack with max=3 kept %d records", p.Len())
	}
	for i := 0; i < 3; i++ {
		if p.At(i) != recs[i] {
			t.Fatalf("At(%d) = %+v, want %+v", i, p.At(i), recs[i])
		}
	}
}

// sliceSource replays a record slice through the Source interface.
type sliceSource struct {
	recs []Rec
	pos  int
}

func (s *sliceSource) Next() (Rec, bool) {
	if s.pos >= len(s.recs) {
		return Rec{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

func (s *sliceSource) Reset() { s.pos = 0 }

func TestCursorSemantics(t *testing.T) {
	recs := packTestRecs()
	p, err := PackRecs(recs)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("full drain and reset", func(t *testing.T) {
		c := p.Cursor()
		for pass := 0; pass < 2; pass++ {
			if c.Remaining() != len(recs) {
				t.Fatalf("pass %d: Remaining = %d, want %d", pass, c.Remaining(), len(recs))
			}
			for i := range recs {
				r, ok := c.Next()
				if !ok || r != recs[i] {
					t.Fatalf("pass %d: record %d = %+v ok=%v, want %+v", pass, i, r, ok, recs[i])
				}
			}
			if _, ok := c.Next(); ok {
				t.Fatalf("pass %d: Next returned a record past the end", pass)
			}
			c.Reset()
		}
	})

	t.Run("limit survives reset", func(t *testing.T) {
		c := p.CursorN(2)
		for pass := 0; pass < 2; pass++ {
			n := 0
			for {
				if _, ok := c.Next(); !ok {
					break
				}
				n++
			}
			if n != 2 {
				t.Fatalf("pass %d: limited cursor yielded %d records, want 2", pass, n)
			}
			c.Reset()
		}
	})

	t.Run("limit edge cases", func(t *testing.T) {
		c := p.CursorN(-5)
		if _, ok := c.Next(); ok {
			t.Error("negative limit yielded a record")
		}
		c = p.CursorN(0)
		if _, ok := c.Next(); ok {
			t.Error("zero limit yielded a record")
		}
		// A limit beyond the buffer leaves the natural end in place.
		c = p.CursorN(len(recs) + 100)
		if c.Remaining() != len(recs) {
			t.Errorf("oversized limit: Remaining = %d, want %d", c.Remaining(), len(recs))
		}
		// Limit is relative to the current position.
		c = p.Cursor()
		c.Next()
		c.Limit(2)
		if c.Remaining() != 2 {
			t.Errorf("mid-stream limit: Remaining = %d, want 2", c.Remaining())
		}
	})

	t.Run("independent cursors", func(t *testing.T) {
		a, b := p.Cursor(), p.Cursor()
		a.Next()
		a.Next()
		if b.Remaining() != len(recs) {
			t.Errorf("advancing one cursor moved another: Remaining = %d", b.Remaining())
		}
	})
}

func TestPackedFileRoundTrip(t *testing.T) {
	recs := packTestRecs()
	p, err := PackRecs(recs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trip.zbpt")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := LoadPackedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() {
		t.Fatalf("loaded %d records, wrote %d", q.Len(), p.Len())
	}
	for i := 0; i < p.Len(); i++ {
		// The codec canonicalizes: Target is only encoded for taken
		// branches, so compare in canonical form.
		if got, want := q.At(i), canonical(p.At(i)); got != want {
			t.Errorf("record %d: loaded %+v, wrote %+v", i, got, want)
		}
	}
	if q.Branches() != p.Branches() {
		t.Errorf("loaded Branches = %d, want %d", q.Branches(), p.Branches())
	}
}

func TestLoadPackedRejectsCorruptInput(t *testing.T) {
	valid := validTraceBytes(t)
	cases := map[string][]byte{
		"empty":            {},
		"bad magic":        []byte("XXXX\x01\x00"),
		"bad version":      []byte("ZBPT\x02"),
		"truncated tail":   valid[:len(valid)-1],
		"trailing garbage": append(append([]byte{}, valid...), 0xff),
	}
	for name, data := range cases {
		if _, err := LoadPacked(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: LoadPacked accepted corrupt input", name)
		}
	}
	if _, err := LoadPacked(bytes.NewReader(valid)); err != nil {
		t.Errorf("LoadPacked rejected valid input: %v", err)
	}
}

func TestCursorZeroAlloc(t *testing.T) {
	p, err := PackRecs(packTestRecs())
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		c := p.Cursor()
		for {
			if _, ok := c.Next(); !ok {
				break
			}
		}
		c.Reset()
		c.Limit(3)
	})
	if allocs != 0 {
		t.Errorf("cursor create/drain/reset allocated %.1f times per run, want 0", allocs)
	}
}
