package trace

import (
	"math"
	"testing"
)

// TestStatsZeroGuards pins the empty-trace and branch-free math: every
// derived rate must be a finite number (zero), never NaN or ±Inf —
// these values flow straight into serialized reports and table
// renderers that would otherwise emit garbage.
func TestStatsZeroGuards(t *testing.T) {
	cases := []struct {
		name string
		st   Stats
		want [3]float64 // AvgInstrLen, BranchDensity, TakenRatio
	}{
		{"empty trace", Stats{}, [3]float64{0, 0, 0}},
		{"branch-free", Stats{Instructions: 10, Bytes: 40}, [3]float64{4, 0, 0}},
		{"instructions without bytes", Stats{Instructions: 5}, [3]float64{0, 0, 0}},
		{"all taken", Stats{Instructions: 4, Bytes: 16, Branches: 2, Taken: 2}, [3]float64{4, 2, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := [3]float64{tc.st.AvgInstrLen(), tc.st.BranchDensity(), tc.st.TakenRatio()}
			for i, g := range got {
				if math.IsNaN(g) || math.IsInf(g, 0) {
					t.Fatalf("metric %d is non-finite: %v", i, g)
				}
			}
			if got != tc.want {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

// TestCollectEmptySource: collecting a dry source yields the zero
// Stats, and its derived rates stay finite.
func TestCollectEmptySource(t *testing.T) {
	st := Collect(&sliceSource{}, 100)
	if st != (Stats{}) {
		t.Fatalf("empty source collected %+v", st)
	}
	if st.AvgInstrLen() != 0 || st.BranchDensity() != 0 || st.TakenRatio() != 0 {
		t.Fatal("derived rates on empty stats must be 0")
	}
}
