package trace

import (
	"fmt"
	"io"
	"os"

	"zbp/internal/zarch"
)

// Packed is an immutable, pre-validated, fully materialized trace held
// in flat columnar arrays (struct-of-arrays): one contiguous slice per
// field plus a one-byte packed code for kind/taken/length. It is the
// materialize-once, replay-many form of a trace: sweep campaigns (the
// E1..E12 experiments, §VII tuning studies, benchmarks) build a
// workload a single time and fan any number of read-only Cursors out
// across concurrent simulations, paying neither regeneration nor
// per-record decode for the replays.
//
// A Packed buffer is never mutated after Pack/LoadPacked returns, so
// cursor replay is lock-free and safe from any number of goroutines.
type Packed struct {
	addr []zarch.Addr
	tgt  []zarch.Addr
	ctx  []uint16
	meta []uint8

	branches int
}

// The meta column stores Rec.Meta verbatim (the RecMeta byte layout),
// so packing and replay involve no per-record encode or decode.

// grow pre-sizes every column for n more records.
// maxPreallocRecs caps speculative pre-allocation driven by
// caller-declared record counts. The count is a promise, not data the
// buffer has seen: Pack(r, 1<<40) from an attacker-controlled size
// field must not commit terabytes up front. Beyond the cap, append's
// geometric growth takes over and allocation tracks records actually
// decoded.
const maxPreallocRecs = 1 << 16

func (p *Packed) grow(n int) {
	if n <= 0 {
		return
	}
	if n > maxPreallocRecs {
		n = maxPreallocRecs
	}
	p.addr = append(make([]zarch.Addr, 0, len(p.addr)+n), p.addr...)
	p.tgt = append(make([]zarch.Addr, 0, len(p.tgt)+n), p.tgt...)
	p.ctx = append(make([]uint16, 0, len(p.ctx)+n), p.ctx...)
	p.meta = append(make([]uint8, 0, len(p.meta)+n), p.meta...)
}

// appendRec validates r and appends it to the columns.
func (p *Packed) appendRec(r Rec) error {
	if err := r.Validate(); err != nil {
		return err
	}
	p.addr = append(p.addr, r.Addr)
	p.tgt = append(p.tgt, r.Target)
	p.ctx = append(p.ctx, r.CtxID)
	p.meta = append(p.meta, r.Meta)
	if r.IsBranch() {
		p.branches++
	}
	return nil
}

// Pack drains up to max records from src (max <= 0 means until the
// source is exhausted) into a Packed buffer, validating every record
// once so replays never have to.
func Pack(src Source, max int) (*Packed, error) {
	p := &Packed{}
	p.grow(max)
	for max <= 0 || len(p.meta) < max {
		r, ok := src.Next()
		if !ok {
			break
		}
		if err := p.appendRec(r); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// PackRecs packs an in-memory record slice, validating every record.
func PackRecs(recs []Rec) (*Packed, error) {
	p := &Packed{}
	p.grow(len(recs))
	for _, r := range recs {
		if err := p.appendRec(r); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Len returns the number of records in the buffer.
func (p *Packed) Len() int { return len(p.meta) }

// Branches returns the number of branch records in the buffer.
func (p *Packed) Branches() int { return p.branches }

// SizeBytes returns the heap footprint of the columns, for capacity
// planning when many workloads are materialized at once.
func (p *Packed) SizeBytes() int {
	return cap(p.addr)*8 + cap(p.tgt)*8 + cap(p.ctx)*2 + cap(p.meta)
}

// At returns record i, reassembled from the columns. It performs no
// validation: every record was validated when packed.
func (p *Packed) At(i int) Rec {
	return Rec{
		Addr:   p.addr[i],
		Target: p.tgt[i],
		Meta:   p.meta[i],
		CtxID:  p.ctx[i],
	}
}

// Stats summarizes the packed trace (one sequential pass).
func (p *Packed) Stats() Stats {
	c := p.Cursor()
	return Collect(&c, 0)
}

// Cursor returns a value-type iterator positioned at the first record.
// Take its address to use it as a Source: a *Cursor satisfies both
// Source and Resetter. Creating, copying and resetting cursors never
// allocates; any number of cursors replay the same buffer
// concurrently.
func (p *Packed) Cursor() Cursor {
	return Cursor{addr: p.addr, tgt: p.tgt, ctx: p.ctx, meta: p.meta, end: len(p.meta)}
}

// CursorN returns a cursor over at most the first n records.
func (p *Packed) CursorN(n int) Cursor {
	c := p.Cursor()
	c.Limit(n)
	return c
}

// Cursor is an O(1) iterator over a Packed buffer: the column slice
// headers plus a position and a bound. Holding the slices directly
// (rather than a *Packed) keeps the per-record path to single-level
// indexed loads. It implements Source and Resetter on its pointer
// receiver.
type Cursor struct {
	addr []zarch.Addr
	tgt  []zarch.Addr
	ctx  []uint16
	meta []uint8
	pos  int
	end  int
}

// Limit bounds the cursor to at most n further records, replacing the
// Limit wrapper for packed replays (no extra interface hop per
// record). A negative n is treated as zero.
func (c *Cursor) Limit(n int) {
	if n < 0 {
		n = 0
	}
	if end := c.pos + n; end >= 0 && end < c.end {
		c.end = end
	}
}

// Next implements Source. With Rec at four fields the compiler keeps
// the returned record in registers when Next is inlined into a replay
// loop, and the Meta byte is stored verbatim, so the per-record cost
// is four indexed loads and a position bump.
func (c *Cursor) Next() (Rec, bool) {
	i := c.pos
	if i >= c.end || i >= len(c.meta) {
		return Rec{}, false
	}
	c.pos = i + 1
	return Rec{
		Addr:   c.addr[i],
		Target: c.tgt[i],
		Meta:   c.meta[i],
		CtxID:  c.ctx[i],
	}, true
}

// Reset implements Resetter: it rewinds to the first record, keeping
// any Limit applied before iteration started.
func (c *Cursor) Reset() { c.pos = 0 }

// Remaining returns how many records the cursor will still yield.
func (c *Cursor) Remaining() int { return c.end - c.pos }

// Encode streams the packed trace to w in the binary trace file
// format (the same bytes a Writer fed the individual records would
// produce).
func (p *Packed) Encode(w io.Writer) error {
	tw := NewWriter(w)
	for i := 0; i < p.Len(); i++ {
		if err := tw.Write(p.At(i)); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// WriteFile encodes the packed trace into the file at path.
func (p *Packed) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadPacked decodes an entire binary trace from r into a Packed
// buffer in a single sequential pass. Decoding is strict: any
// malformed input the hardened Reader rejects makes LoadPacked return
// that error and no buffer.
func LoadPacked(r io.Reader) (*Packed, error) {
	tr := NewReader(r)
	p, err := Pack(tr, 0)
	if err != nil {
		return nil, err
	}
	if err := tr.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadPackedFile reads the trace file at path into a Packed buffer.
func LoadPackedFile(path string) (*Packed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := LoadPacked(f)
	if err != nil {
		return nil, fmt.Errorf("trace: loading %s: %w", path, err)
	}
	return p, nil
}
