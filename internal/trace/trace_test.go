package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"zbp/internal/hashx"
	"zbp/internal/zarch"
)

func mkRec(addr uint64, ln uint8, kind zarch.BranchKind, taken bool, tgt uint64) Rec {
	return NewRec(zarch.Addr(addr), ln, kind, taken, zarch.Addr(tgt), 0)
}

func TestRecNext(t *testing.T) {
	r := mkRec(0x100, 4, zarch.KindNone, false, 0)
	if r.Next() != 0x104 {
		t.Errorf("sequential Next = %s", r.Next())
	}
	b := mkRec(0x100, 4, zarch.KindCondRel, true, 0x200)
	if b.Next() != 0x200 {
		t.Errorf("taken Next = %s", b.Next())
	}
	nt := mkRec(0x100, 6, zarch.KindCondRel, false, 0)
	if nt.Next() != 0x106 {
		t.Errorf("not-taken Next = %s", nt.Next())
	}
}

func TestRecValidate(t *testing.T) {
	good := []Rec{
		mkRec(0x100, 4, zarch.KindNone, false, 0),
		mkRec(0x100, 4, zarch.KindCondRel, true, 0x200),
		mkRec(0x100, 2, zarch.KindUncondInd, true, 0x4000),
		mkRec(0x100, 4, zarch.KindCondRel, false, 0),
	}
	for _, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", r, err)
		}
	}
	bad := []Rec{
		mkRec(0x101, 4, zarch.KindNone, false, 0),       // misaligned
		mkRec(0x100, 5, zarch.KindNone, false, 0),       // bad len
		mkRec(0x100, 4, zarch.KindNone, true, 0x200),    // non-branch taken
		mkRec(0x100, 4, zarch.KindCondRel, true, 0x201), // misaligned target
		mkRec(0x100, 4, zarch.KindCondRel, true, 0),     // zero target
		mkRec(0x100, 4, zarch.KindUncondRel, false, 0),  // uncond not-taken
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", r)
		}
	}
}

func TestSliceSource(t *testing.T) {
	recs := []Rec{
		mkRec(0x100, 4, zarch.KindNone, false, 0),
		mkRec(0x104, 2, zarch.KindCondRel, true, 0x100),
	}
	s := NewSliceSource(recs)
	got := Take(s, 10)
	if len(got) != 2 || got[0].Addr != 0x100 || got[1].Addr != 0x104 {
		t.Fatalf("Take = %+v", got)
	}
	if _, ok := s.Next(); ok {
		t.Error("source not exhausted")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r.Addr != 0x100 {
		t.Error("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	recs := make([]Rec, 10)
	for i := range recs {
		recs[i] = mkRec(uint64(0x100+4*i), 4, zarch.KindNone, false, 0)
	}
	got := Take(Limit(NewSliceSource(recs), 3), 100)
	if len(got) != 3 {
		t.Fatalf("Limit yielded %d records", len(got))
	}
}

// synthRecs builds a random but structurally valid instruction stream.
func synthRecs(seed uint64, n int) []Rec {
	r := hashx.New(seed)
	recs := make([]Rec, 0, n)
	addr := zarch.Addr(0x10000)
	ctx := uint16(0)
	lens := []uint8{2, 4, 6}
	for i := 0; i < n; i++ {
		ln := lens[r.Intn(3)]
		var rec Rec
		if r.Bool(0.25) {
			kinds := []zarch.BranchKind{
				zarch.KindCondRel, zarch.KindUncondRel, zarch.KindCondInd,
				zarch.KindUncondInd, zarch.KindLoop,
			}
			k := kinds[r.Intn(len(kinds))]
			taken := !k.Conditional() || r.Bool(0.6)
			var tgt zarch.Addr
			if taken {
				// Mix of near and far targets, always halfword aligned, nonzero.
				delta := int64(r.Intn(8192))*2 - 8192
				tgt = zarch.Addr(int64(addr) + delta)
				if tgt == 0 {
					tgt = 0x40
				}
			}
			rec = NewRec(addr, ln, k, taken, tgt, ctx)
		} else {
			rec = NewRec(addr, ln, 0, false, 0, ctx)
		}
		recs = append(recs, rec)
		addr = rec.Next()
		if r.Bool(0.001) {
			ctx++
		}
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	recs := synthRecs(1, 5000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(recs) {
		t.Errorf("writer Count = %d", w.Count())
	}
	rd := NewReader(&buf)
	got := Take(rd, len(recs)+10)
	if err := rd.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		recs := synthRecs(seed, 300)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		rd := NewReader(&buf)
		got := Take(rd, 400)
		if rd.Err() != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(&buf)
	if _, ok := rd.Next(); ok {
		t.Error("empty trace yielded a record")
	}
	if rd.Err() != nil {
		t.Errorf("empty trace error: %v", rd.Err())
	}
}

func TestBadMagic(t *testing.T) {
	rd := NewReader(bytes.NewBufferString("NOPE\x01"))
	if _, ok := rd.Next(); ok {
		t.Error("bad magic accepted")
	}
	if rd.Err() == nil {
		t.Error("bad magic produced no error")
	}
}

func TestTruncated(t *testing.T) {
	recs := synthRecs(3, 100)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	rd := NewReader(bytes.NewReader(cut))
	got := Take(rd, 200)
	if len(got) >= 100 {
		t.Errorf("truncated trace yielded %d records", len(got))
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(mkRec(0x101, 4, zarch.KindNone, false, 0)); err == nil {
		t.Error("Write accepted misaligned record")
	}
}

func TestCompactEncoding(t *testing.T) {
	// Straight-line code should cost little more than 1 byte/record.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	addr := zarch.Addr(0x1000)
	n := 10000
	for i := 0; i < n; i++ {
		r := Rec{Addr: addr, Meta: RecMeta(4, 0, false)}
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
		addr = r.Next()
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if perRec := float64(buf.Len()) / float64(n); perRec > 1.2 {
		t.Errorf("sequential encoding cost %.2f bytes/record", perRec)
	}
}

func TestCollectStats(t *testing.T) {
	recs := []Rec{
		mkRec(0x100, 4, zarch.KindNone, false, 0),
		mkRec(0x104, 2, zarch.KindCondRel, true, 0x100),
		mkRec(0x100, 4, zarch.KindNone, false, 0),
		mkRec(0x104, 2, zarch.KindCondRel, false, 0),
		mkRec(0x106, 6, zarch.KindUncondInd, true, 0x4000),
	}
	st := Collect(NewSliceSource(recs), 0)
	if st.Instructions != 5 || st.Branches != 3 || st.Taken != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Indirect != 1 || st.Conditional != 2 {
		t.Errorf("kind stats = %+v", st)
	}
	if st.DistinctBr != 2 {
		t.Errorf("DistinctBr = %d", st.DistinctBr)
	}
	if st.Footprint != 1 { // all instruction addrs fall in line 0x100
		t.Errorf("Footprint = %d", st.Footprint)
	}
	if st.AvgInstrLen() <= 0 || st.BranchDensity() <= 0 || st.TakenRatio() <= 0 {
		t.Error("derived stats not positive")
	}
	empty := Collect(NewSliceSource(nil), 0)
	if empty.AvgInstrLen() != 0 || empty.BranchDensity() != 0 || empty.TakenRatio() != 0 {
		t.Error("empty stats not zero")
	}
}

func TestCollectMax(t *testing.T) {
	recs := synthRecs(5, 1000)
	st := Collect(NewSliceSource(recs), 100)
	if st.Instructions != 100 {
		t.Errorf("Collect max: %d", st.Instructions)
	}
}
