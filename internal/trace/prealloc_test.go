package trace

import (
	"testing"

	"zbp/internal/zarch"
)

// shortSource yields n synthetic records then dries up.
type shortSource struct{ n int }

func (s *shortSource) Next() (Rec, bool) {
	if s.n <= 0 {
		return Rec{}, false
	}
	s.n--
	return NewRec(zarch.Addr(0x1000+s.n*8), 4, zarch.KindCondRel, false, 0, 0), true
}

// TestPackClampsPrealloc pins the pre-allocation clamp: a declared
// record count is a promise, and a hostile or buggy caller promising
// 2^40 records against a short source must not commit storage for
// them. Before the clamp this test allocated ~19 TB of columns and
// died; now pre-allocation is bounded and growth tracks real input.
func TestPackClampsPrealloc(t *testing.T) {
	p, err := Pack(&shortSource{n: 3}, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("packed %d records, want 3", p.Len())
	}
	if got := cap(p.meta); got > maxPreallocRecs {
		t.Errorf("meta column capacity %d exceeds prealloc cap %d", got, maxPreallocRecs)
	}
	if got := cap(p.addr); got > maxPreallocRecs {
		t.Errorf("addr column capacity %d exceeds prealloc cap %d", got, maxPreallocRecs)
	}
}

// TestPackBeyondClampStillGrows proves the clamp only bounds the
// up-front reservation, not capacity: packing more records than
// maxPreallocRecs must still succeed and keep every record.
func TestPackBeyondClampStillGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("large pack skipped in short mode")
	}
	n := maxPreallocRecs + 100
	p, err := Pack(&shortSource{n: n}, n)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != n {
		t.Fatalf("packed %d records, want %d", p.Len(), n)
	}
}

// TestTakeClampsPrealloc pins the same contract on Take.
func TestTakeClampsPrealloc(t *testing.T) {
	out := Take(&shortSource{n: 2}, 1<<40)
	if len(out) != 2 {
		t.Fatalf("took %d records, want 2", len(out))
	}
	if cap(out) > maxPreallocRecs {
		t.Errorf("slice capacity %d exceeds prealloc cap %d", cap(out), maxPreallocRecs)
	}
}
