// Package trace defines the instruction-trace format consumed by the
// simulator, mirroring the paper's §VII performance-model methodology:
// "as an input to the performance modeling environment, instruction
// traces of workloads that run on a mainframe system were read."
//
// IBM's LSPR traces are proprietary; the workload package synthesizes
// equivalents (see DESIGN.md §5). This package is only the plumbing: a
// record type, a streaming Source interface, and a compact binary
// file format with delta/varint encoding.
package trace

import (
	"fmt"

	"zbp/internal/zarch"
)

// Rec is one retired instruction. For non-branches only Addr and Len
// are meaningful. For branches, Taken and Target describe the resolved
// (architectural) outcome; CtxID identifies the address space, used for
// CTB tag matching and context-change BTB2 prefetch triggers.
//
// The length, branch kind and taken bit live packed in one Meta byte
// (RecMeta builds it, Len/Kind/Taken unpack it) rather than as three
// named fields. The packing is deliberate and load-bearing for the
// replay fast path: a four-field struct is SSA-able, so the compiler
// keeps records in registers through the cursor loop and drops loads
// of unconsumed columns; at six fields every record round-trips
// through a stack slot, which measured ~4x slower per record. The
// Meta byte is also exactly the packed column Packed stores, so
// packed replay decodes nothing.
type Rec struct {
	Addr   zarch.Addr
	Target zarch.Addr // resolved target; 0 if not taken or not a branch
	Meta   uint8      // packed len/kind/taken; build with RecMeta
	CtxID  uint16
}

// Meta byte layout: the branch kind in the low 3 bits, the taken bit,
// and the instruction length (2/4/6 fits in 3 bits) in bits 4-6.
const (
	metaKindMask uint8 = 0x07
	metaTaken    uint8 = 1 << 3
	metaLenShift       = 4
)

// RecMeta packs an instruction length, branch kind and taken flag
// into Rec's Meta byte.
func RecMeta(length uint8, kind zarch.BranchKind, taken bool) uint8 {
	m := uint8(kind)&metaKindMask | length<<metaLenShift
	if taken {
		m |= metaTaken
	}
	return m
}

// NewRec assembles a record from unpacked fields.
func NewRec(addr zarch.Addr, length uint8, kind zarch.BranchKind, taken bool, target zarch.Addr, ctx uint16) Rec {
	return Rec{Addr: addr, Target: target, Meta: RecMeta(length, kind, taken), CtxID: ctx}
}

// Len returns the instruction length in bytes.
func (r Rec) Len() uint8 { return r.Meta >> metaLenShift }

// Kind returns the branch kind (KindNone for non-branches).
func (r Rec) Kind() zarch.BranchKind { return zarch.BranchKind(r.Meta & metaKindMask) }

// Taken reports whether the branch resolved taken.
func (r Rec) Taken() bool { return r.Meta&metaTaken != 0 }

// IsBranch reports whether the record is a branch instruction.
func (r Rec) IsBranch() bool { return r.Kind().IsBranch() }

// Next returns the address of the next instruction in program order.
func (r Rec) Next() zarch.Addr {
	if r.IsBranch() && r.Taken() {
		return r.Target
	}
	return r.Addr + zarch.Addr(r.Len())
}

// Validate checks structural invariants of a single record.
func (r Rec) Validate() error {
	inst := zarch.Instruction{Addr: r.Addr, Len: r.Len(), Kind: r.Kind()}
	if err := inst.Validate(); err != nil {
		return err
	}
	if !r.IsBranch() && r.Taken() {
		return fmt.Errorf("trace: non-branch at %s marked taken", r.Addr)
	}
	if r.Taken() && !r.Target.HalfwordAligned() {
		return fmt.Errorf("trace: branch at %s has misaligned target %s", r.Addr, r.Target)
	}
	if r.Taken() && r.Target == 0 {
		return fmt.Errorf("trace: taken branch at %s has zero target", r.Addr)
	}
	if !r.Kind().Conditional() && r.IsBranch() && !r.Taken() {
		return fmt.Errorf("trace: unconditional branch at %s resolved not-taken", r.Addr)
	}
	return nil
}

// Source is a stream of trace records. Workload generators implement
// Source directly so arbitrarily long runs need no trace file.
type Source interface {
	// Next returns the next record and true, or a zero Rec and false at
	// end of stream.
	Next() (Rec, bool)
}

// Resetter is implemented by sources that can rewind to their initial
// state, replaying the identical record stream. Benchmarks and repeated
// studies use it to reuse an expensively built source instead of
// rebuilding it per run.
type Resetter interface {
	Reset()
}

// SliceSource adapts an in-memory record slice to a Source.
type SliceSource struct {
	recs []Rec
	pos  int
}

// NewSliceSource returns a Source over recs.
func NewSliceSource(recs []Rec) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Rec, bool) {
	if s.pos >= len(s.recs) {
		return Rec{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Take drains up to n records from src into a slice. The requested
// count only seeds the allocation up to a bound (see maxPreallocRecs):
// a huge n against a short source must not allocate for records that
// never arrive.
func Take(src Source, n int) []Rec {
	pre := n
	if pre > maxPreallocRecs {
		pre = maxPreallocRecs
	}
	out := make([]Rec, 0, pre)
	for len(out) < n {
		r, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// Limit wraps src so it yields at most n records.
func Limit(src Source, n int) Source { return &limitSource{src: src, left: n} }

type limitSource struct {
	src  Source
	left int
}

func (l *limitSource) Next() (Rec, bool) {
	if l.left <= 0 {
		return Rec{}, false
	}
	l.left--
	return l.src.Next()
}

// Stats summarizes a trace, mirroring the rules of thumb the paper uses
// to size structures (§II.A: a branch every ~4 instructions, average
// instruction length ~5 bytes, a BTB-installed branch every ~25 bytes).
type Stats struct {
	Instructions int
	Bytes        int
	Branches     int
	Taken        int
	Indirect     int
	Conditional  int
	DistinctBr   int
	Footprint    int // distinct 64B lines touched
	CtxSwitches  int
}

// Collect consumes src (up to max records; max<=0 means unbounded) and
// returns summary statistics.
func Collect(src Source, max int) Stats {
	var st Stats
	lines := map[zarch.Addr]bool{}
	brs := map[zarch.Addr]bool{}
	lastCtx := uint16(0)
	first := true
	for {
		if max > 0 && st.Instructions >= max {
			break
		}
		r, ok := src.Next()
		if !ok {
			break
		}
		st.Instructions++
		st.Bytes += int(r.Len())
		lines[r.Addr.Line64()] = true
		if !first && r.CtxID != lastCtx {
			st.CtxSwitches++
		}
		first = false
		lastCtx = r.CtxID
		if r.IsBranch() {
			st.Branches++
			brs[r.Addr] = true
			if r.Taken() {
				st.Taken++
			}
			if r.Kind().Indirect() {
				st.Indirect++
			}
			if r.Kind().Conditional() {
				st.Conditional++
			}
		}
	}
	st.DistinctBr = len(brs)
	st.Footprint = len(lines)
	return st
}

// AvgInstrLen returns the mean instruction length in bytes.
func (s Stats) AvgInstrLen() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.Instructions)
}

// BranchDensity returns instructions per branch.
func (s Stats) BranchDensity() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Branches)
}

// TakenRatio returns the fraction of branches resolved taken.
func (s Stats) TakenRatio() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.Branches)
}
