package trace

import (
	"bytes"
	"testing"

	"zbp/internal/zarch"
)

// validTraceBytes encodes a small representative record mix for the
// fuzz corpus.
func validTraceBytes(t testing.TB) []byte {
	recs := []Rec{
		NewRec(0x1000, 4, zarch.KindNone, false, 0, 0),
		NewRec(0x1004, 2, zarch.KindCondRel, true, 0x2000, 0),
		NewRec(0x2000, 6, zarch.KindNone, false, 0, 7),
		NewRec(0x2006, 4, zarch.KindUncondInd, true, 0x1000, 7),
		NewRec(0x1000, 4, zarch.KindCondRel, false, 0, 0),
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("seed corpus write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadTrace feeds arbitrary bytes to the decoder. The contract on
// corrupt input is graceful: Next ends the stream and records an error
// via Err — never a panic, never unbounded memory (the decoder holds
// no input-sized buffers), and every record that IS returned passes
// Validate.
func FuzzReadTrace(f *testing.F) {
	valid := validTraceBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("ZBPT"))                   // truncated header
	f.Add([]byte("ZBPT\x02"))               // bad version
	f.Add([]byte("XXXX\x01\x00"))           // bad magic
	f.Add(append([]byte("ZBPT\x01"), 0xff)) // invalid length code
	f.Add(append([]byte("ZBPT\x01"), 0x27)) // flags then truncated varints
	f.Add(valid[:len(valid)-1])             // truncated tail
	f.Add(append(valid, 0x07))              // trailing garbage kind
	f.Add(append([]byte("ZBPT\x01"), bytes.Repeat([]byte{0xac}, 64)...))
	// Overlong varint: nothing but continuation bytes, the shape that
	// drives decoded sizes toward 2^64 and used to trigger unbounded
	// count-trusting pre-allocation downstream.
	f.Add(append([]byte("ZBPT\x01\x27"), bytes.Repeat([]byte{0x80}, 32)...))
	f.Add(append([]byte("ZBPT\x01\x27"), bytes.Repeat([]byte{0xff}, 32)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		n := 0
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			if err := rec.Validate(); err != nil {
				t.Fatalf("decoder returned invalid record %+v: %v", rec, err)
			}
			n++
			// Every encoded record costs at least one flag byte, so the
			// record count is bounded by the input length; more means
			// the decoder invented records.
			if n > len(data) {
				t.Fatalf("decoded %d records from %d bytes", n, len(data))
			}
		}
		if r.Count() != n {
			t.Fatalf("Count %d != records read %d", r.Count(), n)
		}
		// After end-of-stream the reader must stay ended.
		if _, ok := r.Next(); ok {
			t.Fatal("Next returned a record after end of stream")
		}
	})
}

// canonical maps a record to the form the codec is specified to
// preserve: Target is only meaningful (and only encoded) for taken
// branches.
func canonical(r Rec) Rec {
	if !r.Taken() {
		r.Target = 0
	}
	return r
}

// FuzzRecordRoundTrip drives arbitrary field values through
// Write+Read: every record the writer accepts must come back
// identical (in canonical form), at any position in a stream — the
// delta/varint encoding state must never corrupt a later record.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x2000), uint8(4), uint8(1), true, uint16(0))
	f.Add(uint64(0), uint64(0), uint8(2), uint8(0), false, uint16(9))
	f.Add(uint64(1<<63), uint64(2), uint8(6), uint8(4), true, uint16(65535))
	f.Add(uint64(0xfffffffffffffffe), uint64(2), uint8(2), uint8(2), true, uint16(1))
	f.Fuzz(func(t *testing.T, addr, target uint64, length, kind uint8, taken bool, ctx uint16) {
		// RecMeta truncates out-of-range kinds and lengths into the
		// packed byte; the round-trip property is stated over what the
		// record actually holds, so build first, then test.
		rec := NewRec(zarch.Addr(addr), length, zarch.BranchKind(kind), taken, zarch.Addr(target), ctx)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(rec); err != nil {
			// The writer rejects invalid records; nothing to round-trip.
			// It must reject exactly what Validate rejects (plus the
			// unencodable-length check, which Validate covers too).
			if rec.Validate() == nil {
				t.Fatalf("writer rejected a valid record %+v: %v", rec, err)
			}
			return
		}
		// Append a fixed tail record so decode state after rec is also
		// exercised (delta base, sticky context).
		tail := NewRec(rec.Next(), 4, zarch.KindNone, false, 0, ctx)
		if tail.Validate() == nil {
			if err := w.Write(tail); err != nil {
				t.Fatalf("writing tail: %v", err)
			}
		} else {
			tail = Rec{}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		r := NewReader(&buf)
		got, ok := r.Next()
		if !ok {
			t.Fatalf("decoder rejected a written record: %v", r.Err())
		}
		if got != canonical(rec) {
			t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", canonical(rec), got)
		}
		if tail != (Rec{}) {
			got2, ok := r.Next()
			if !ok {
				t.Fatalf("decoder rejected tail after %+v: %v", rec, r.Err())
			}
			if got2 != canonical(tail) {
				t.Fatalf("tail mismatch after %+v:\nwrote %+v\nread  %+v", rec, canonical(tail), got2)
			}
		}
		if _, ok := r.Next(); ok {
			t.Fatal("unexpected extra record")
		}
		if r.Err() != nil {
			t.Fatalf("reader error after clean stream: %v", r.Err())
		}
	})
}
