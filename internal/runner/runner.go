// Package runner is the shared fan-out engine for simulation
// campaigns. Every result in this repository — the E1..E12
// reproductions, the §VII tuning studies, the grid tests — is built
// from dozens to hundreds of *independent* trace-driven simulations
// (generation × workload × seed × design point). A Pool runs such a
// batch across a bounded set of workers with deterministic,
// order-preserving aggregation: because every job constructs its own
// sources and predictor state, parallel and serial execution produce
// byte-identical results (enforced by TestPoolDeterminism).
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// SourceSpec builds the per-thread trace sources for one job. It is a
// factory, not a source: it is invoked inside the worker so each job
// gets fresh, independent stream state no matter which worker runs it
// or in what order.
type SourceSpec func() ([]trace.Source, error)

// Workload returns a SourceSpec for a single-threaded run of the named
// generated workload.
func Workload(name string, seed uint64) SourceSpec {
	return func() ([]trace.Source, error) {
		src, err := workload.Make(name, seed)
		if err != nil {
			return nil, err
		}
		return []trace.Source{src}, nil
	}
}

// Packed returns a SourceSpec replaying a shared, pre-materialized
// trace. Each job gets its own value-type cursor over the same
// immutable buffer, so any number of workers replay concurrently
// without locks, per-record decode, or regeneration — the
// materialize-once, replay-many path sweep campaigns use.
func Packed(p *trace.Packed) SourceSpec {
	return func() ([]trace.Source, error) {
		c := p.Cursor()
		return []trace.Source{&c}, nil
	}
}

// PackedSMT2 returns a SourceSpec running two shared packed traces,
// one per hardware thread.
func PackedSMT2(a, b *trace.Packed) SourceSpec {
	return func() ([]trace.Source, error) {
		ca, cb := a.Cursor(), b.Cursor()
		return []trace.Source{&ca, &cb}, nil
	}
}

// SMT2 returns a SourceSpec running two named workloads, one per
// hardware thread.
func SMT2(nameA string, seedA uint64, nameB string, seedB uint64) SourceSpec {
	return func() ([]trace.Source, error) {
		a, err := workload.Make(nameA, seedA)
		if err != nil {
			return nil, err
		}
		b, err := workload.Make(nameB, seedB)
		if err != nil {
			return nil, err
		}
		return []trace.Source{a, b}, nil
	}
}

// Job is one independent simulation: a configuration, the source
// factory, and a per-thread instruction budget.
type Job struct {
	// Name labels the job in errors and reports.
	Name string
	// Config is the full simulation setup (copied by value; jobs never
	// share mutable state).
	Config sim.Config
	// Source builds the per-thread traces inside the worker.
	Source SourceSpec
	// Instructions bounds each thread's trace (0 = unbounded; the
	// sources must then terminate on their own).
	Instructions int
}

// Result pairs one job with its outcome. Err is non-nil if the source
// factory failed, the simulation errored (live-lock, cancellation) or
// panicked. For a canceled job Res holds the partial result of the
// work done before the cancellation (Truncated set); for other errors
// it is the zero value.
type Result struct {
	Name string
	Res  sim.Result
	Err  error
}

// Pool is a bounded worker-pool simulation runner. The zero value is
// ready to use and runs on all cores.
type Pool struct {
	// Parallelism bounds concurrent simulations; <=0 means GOMAXPROCS.
	Parallelism int
}

// workers returns the effective worker count for n jobs.
func (p *Pool) workers(n int) int {
	w := p.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every job and returns results in job order. Results are
// identical regardless of Parallelism: each worker writes only its
// job's slot and each job builds all of its own state. A panic inside
// a job (bad workload, model bug) is captured into that job's Err; the
// pool always drains all jobs.
//
// ctx cancels the batch: jobs not yet started get Err = ctx.Err()
// without running, and jobs already in flight stop cooperatively via
// sim.RunCtx, recording a partial result alongside the error. Run
// always returns a slice of len(jobs) and never leaks workers.
func (p *Pool) Run(ctx context.Context, jobs []Job) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := p.workers(len(jobs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(ctx, jobs[i])
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// The batch is canceled: every job from i on was never
			// handed to a worker, so no one else writes those slots.
			for j := i; j < len(jobs); j++ {
				results[j] = Result{Name: jobs[j].Name, Err: fmt.Errorf("runner: job %q: %w", jobs[j].Name, ctx.Err())}
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return results
}

// runOne executes a single job, converting panics into errors so one
// bad design point cannot take down a whole campaign. The simulation
// itself runs on the error-returning RunCtx path; the recover is a
// backstop for panics in source factories and model construction.
func runOne(ctx context.Context, job Job) (res Result) {
	res.Name = job.Name
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("runner: job %q panicked: %v", job.Name, r)
		}
	}()
	if job.Source == nil {
		res.Err = fmt.Errorf("runner: job %q has no source", job.Name)
		return res
	}
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("runner: job %q: %w", job.Name, err)
		return res
	}
	srcs, err := job.Source()
	if err != nil {
		res.Err = fmt.Errorf("runner: job %q: %w", job.Name, err)
		return res
	}
	if job.Instructions > 0 {
		for i, src := range srcs {
			// Packed cursors bound themselves: no Limit wrapper, so the
			// hot loop keeps a single interface hop per record.
			if c, ok := src.(*trace.Cursor); ok {
				c.Limit(job.Instructions)
			} else {
				srcs[i] = trace.Limit(src, job.Instructions)
			}
		}
	}
	res.Res, err = sim.New(job.Config, srcs).RunCtx(ctx, 0)
	if err != nil {
		res.Err = fmt.Errorf("runner: job %q: %w", job.Name, err)
	}
	return res
}

// Run executes jobs on a default all-cores pool.
func Run(ctx context.Context, jobs []Job) []Result {
	return (&Pool{}).Run(ctx, jobs)
}

// Results unwraps a batch, panicking on the first error. Experiment
// and study drivers use it where a failed simulation indicates a
// programming error (unknown workload, model bug) rather than a
// recoverable condition.
func Results(rs []Result) []sim.Result {
	out := make([]sim.Result, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			panic(r.Err)
		}
		out[i] = r.Res
	}
	return out
}
