package runner_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"zbp/internal/runner"
	"zbp/internal/sim"
	"zbp/internal/workload"
)

// TestPoolCanceledBeforeStart: a context canceled before Run is called
// marks every job with ctx.Err() without simulating anything.
func TestPoolCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []runner.Job{
		{Name: "a", Config: sim.Z15(), Source: runner.Workload("lspr", 1), Instructions: 1_000_000},
		{Name: "b", Config: sim.Z15(), Source: runner.Workload("lspr", 2), Instructions: 1_000_000},
		{Name: "c", Config: sim.Z15(), Source: runner.Workload("lspr", 3), Instructions: 1_000_000},
	}
	start := time.Now()
	results := (&runner.Pool{Parallelism: 2}).Run(ctx, jobs)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pre-canceled batch took %v", elapsed)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Name != jobs[i].Name {
			t.Errorf("result %d name = %q, want %q", i, r.Name, jobs[i].Name)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %q err = %v, want context.Canceled", r.Name, r.Err)
		}
	}
}

// TestPoolCancelMidBatch: at every parallelism 1..8, canceling a batch
// of multi-second jobs mid-flight returns promptly, keeps job order,
// and marks unfinished jobs with the context error.
func TestPoolCancelMidBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cancellation timing test")
	}
	// One shared packed trace keeps the batch cheap to set up; each job
	// still replays its own cursor.
	p, err := workload.MakePacked("lspr", 42, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	const nJobs = 12
	for par := 1; par <= 8; par++ {
		t.Run(string(rune('0'+par)), func(t *testing.T) {
			jobs := make([]runner.Job, nJobs)
			for i := range jobs {
				jobs[i] = runner.Job{
					Name:         "replay",
					Config:       sim.Z15(),
					Source:       runner.Packed(p),
					Instructions: 2_000_000,
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			start := time.Now()
			results := (&runner.Pool{Parallelism: par}).Run(ctx, jobs)
			elapsed := time.Since(start)
			// The full batch is nJobs x ~0.5s of simulation; a canceled
			// run must come back orders of magnitude sooner. Keep the
			// bound loose for -race CI machines.
			if elapsed > 10*time.Second {
				t.Fatalf("canceled batch took %v", elapsed)
			}
			if len(results) != nJobs {
				t.Fatalf("got %d results, want %d", len(results), nJobs)
			}
			canceled := 0
			for _, r := range results {
				if r.Err == nil {
					continue
				}
				if !errors.Is(r.Err, context.DeadlineExceeded) {
					t.Errorf("unexpected error: %v", r.Err)
				}
				canceled++
			}
			if canceled == 0 {
				t.Error("no job observed the cancellation")
			}
		})
	}
}

// TestPoolCancelPartialResults: an in-flight job stopped by
// cancellation surfaces the truncated partial result next to its
// error.
func TestPoolCancelPartialResults(t *testing.T) {
	p, err := workload.MakePacked("lspr", 42, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []runner.Job{{
		Name:         "long",
		Config:       sim.Z15(),
		Source:       runner.Packed(p),
		Instructions: 2_000_000,
	}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	res := (&runner.Pool{Parallelism: 1}).Run(ctx, jobs)[0]
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", res.Err)
	}
	if !res.Res.Truncated {
		t.Error("canceled in-flight job's partial result not marked Truncated")
	}
	if res.Res.Instructions() == 0 {
		t.Error("50ms of simulation retired no instructions")
	}
}
