package runner

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// mixedBatch is a representative campaign: several workloads, seeds,
// configurations, an SMT2 pair and a custom-source job.
func mixedBatch(t testing.TB) []Job {
	t.Helper()
	shrunk := sim.Z15()
	shrunk.Core.BTB1.RowBits = 8
	noPref := sim.Z15()
	noPref.Prefetch = false
	custom := func() ([]trace.Source, error) {
		src, err := workload.Make("loops", 7)
		if err != nil {
			return nil, err
		}
		return []trace.Source{src}, nil
	}
	return []Job{
		{Name: "lspr/z15", Config: sim.Z15(), Source: Workload("lspr", 42), Instructions: 30000},
		{Name: "micro/z15", Config: sim.Z15(), Source: Workload("micro", 43), Instructions: 30000},
		{Name: "lspr/shrunk", Config: shrunk, Source: Workload("lspr", 42), Instructions: 30000},
		{Name: "indirect/nopref", Config: noPref, Source: Workload("indirect", 44), Instructions: 30000},
		{Name: "smt2", Config: sim.Z15(), Source: SMT2("loops", 5, "micro", 6), Instructions: 20000},
		{Name: "custom", Config: sim.Z15(), Source: custom, Instructions: 25000},
		{Name: "patterned/z15", Config: sim.Z15(), Source: Workload("patterned", 45), Instructions: 30000},
		{Name: "callret/z15", Config: sim.Z15(), Source: Workload("callret", 46), Instructions: 30000},
	}
}

// TestPoolDeterminism is the core contract: a serial pool and a wide
// pool must produce identical sim.Result values for the same jobs —
// per-thread stats included — regardless of scheduling.
func TestPoolDeterminism(t *testing.T) {
	serial := (&Pool{Parallelism: 1}).Run(context.Background(), mixedBatch(t))
	wide := (&Pool{Parallelism: 8}).Run(context.Background(), mixedBatch(t))
	if len(serial) != len(wide) {
		t.Fatalf("result count differs: %d vs %d", len(serial), len(wide))
	}
	for i := range serial {
		if serial[i].Err != nil || wide[i].Err != nil {
			t.Fatalf("job %q errored: serial=%v wide=%v", serial[i].Name, serial[i].Err, wide[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Res, wide[i].Res) {
			t.Errorf("job %q: serial and parallel results differ:\nserial: %+v\nwide:   %+v",
				serial[i].Name, serial[i].Res, wide[i].Res)
		}
	}
}

// TestPoolOrderPreserved: results come back in job order with names
// attached, however the workers interleave.
func TestPoolOrderPreserved(t *testing.T) {
	jobs := mixedBatch(t)
	out := (&Pool{Parallelism: 4}).Run(context.Background(), jobs)
	for i, r := range out {
		if r.Name != jobs[i].Name {
			t.Errorf("slot %d: got job %q, want %q", i, r.Name, jobs[i].Name)
		}
	}
}

// TestPoolPanicDrains: a panicking job must surface as that job's Err
// while every other job still completes; the pool must not deadlock or
// leak the panic.
func TestPoolPanicDrains(t *testing.T) {
	boom := func() ([]trace.Source, error) {
		panic("synthetic source failure")
	}
	jobs := []Job{
		{Name: "ok-before", Config: sim.Z15(), Source: Workload("loops", 1), Instructions: 10000},
		{Name: "boom", Config: sim.Z15(), Source: boom, Instructions: 10000},
		{Name: "ok-after", Config: sim.Z15(), Source: Workload("micro", 2), Instructions: 10000},
	}
	for _, par := range []int{1, 8} {
		out := (&Pool{Parallelism: par}).Run(context.Background(), jobs)
		if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "synthetic source failure") {
			t.Fatalf("par=%d: want panic error on job 1, got %v", par, out[1].Err)
		}
		for _, i := range []int{0, 2} {
			if out[i].Err != nil {
				t.Errorf("par=%d: job %q should have completed, got %v", par, out[i].Name, out[i].Err)
			}
			if out[i].Res.Instructions() == 0 {
				t.Errorf("par=%d: job %q retired no instructions", par, out[i].Name)
			}
		}
	}
}

// TestPoolErrors: a missing source and an unknown workload produce
// errors, not panics, and don't disturb neighbours.
func TestPoolErrors(t *testing.T) {
	jobs := []Job{
		{Name: "nosource", Config: sim.Z15(), Instructions: 1000},
		{Name: "unknown", Config: sim.Z15(), Source: Workload("no-such-workload", 1), Instructions: 1000},
		{Name: "fine", Config: sim.Z15(), Source: Workload("loops", 1), Instructions: 1000},
	}
	out := Run(context.Background(), jobs)
	if out[0].Err == nil || !strings.Contains(out[0].Err.Error(), "no source") {
		t.Errorf("want no-source error, got %v", out[0].Err)
	}
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "unknown workload") {
		t.Errorf("want unknown-workload error, got %v", out[1].Err)
	}
	if out[2].Err != nil {
		t.Errorf("fine job failed: %v", out[2].Err)
	}
}

// TestResultsPanicsOnError: the unwrap helper converts job errors into
// panics for the drivers that treat them as programming errors.
func TestResultsPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Results did not panic on a failed job")
		}
	}()
	Results(Run(context.Background(), []Job{{Name: "bad", Config: sim.Z15(), Source: Workload("nope", 1)}}))
}

// TestEmptyBatch: zero jobs is a no-op, not a hang.
func TestEmptyBatch(t *testing.T) {
	if out := Run(context.Background(), nil); len(out) != 0 {
		t.Fatalf("want empty results, got %d", len(out))
	}
}
