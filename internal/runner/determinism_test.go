package runner_test

import (
	"context"
	"fmt"
	"testing"

	"zbp/internal/core"
	"zbp/internal/runner"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// The serial-vs-pool stats determinism contract this file used to pin
// directly (TestStatsJSONDeterminism) now lives in the differential
// harness: internal/equiv's pool-1-vs-n check runs it on every cell of
// every zdiff/diff-smoke grid.

func TestPoolZeroJobs(t *testing.T) {
	for _, par := range []int{0, 1, 4} {
		pool := &runner.Pool{Parallelism: par}
		results := pool.Run(context.Background(), nil)
		if len(results) != 0 {
			t.Errorf("parallelism %d: Run(nil) returned %d results", par, len(results))
		}
		results = pool.Run(context.Background(), []runner.Job{})
		if len(results) != 0 {
			t.Errorf("parallelism %d: Run(empty) returned %d results", par, len(results))
		}
	}
}

// TestPoolSharedPackedCursors is the core concurrency claim of the
// materialize-once pipeline: many more jobs than workers, every job
// holding a cursor over the SAME packed buffer, at every practical
// parallelism — results must come back in job order and byte-identical
// to a serial reference. Run with -race this also proves cursor replay
// over a shared buffer is data-race free.
func TestPoolSharedPackedCursors(t *testing.T) {
	const (
		seed  = 7
		scale = 15_000
		nJobs = 24 // far more jobs than any worker count below
	)
	src, err := workload.Make("lspr", seed)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := trace.Pack(src, scale)
	if err != nil {
		t.Fatal(err)
	}

	gens := core.Generations()
	jobs := make([]runner.Job, nJobs)
	for i := range jobs {
		gen := gens[i%len(gens)]
		jobs[i] = runner.Job{
			Name:         fmt.Sprintf("%02d-%s", i, gen.Name),
			Config:       sim.ForGeneration(gen),
			Source:       runner.Packed(packed),
			Instructions: scale,
		}
	}

	// Serial reference over the same shared buffer.
	want := make([][]byte, len(jobs))
	for i, job := range jobs {
		c := packed.CursorN(job.Instructions)
		res := sim.New(job.Config, []trace.Source{&c}).Run(0)
		js, err := res.StatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = js
	}

	for par := 1; par <= 8; par++ {
		t.Run(fmt.Sprintf("parallel-%d", par), func(t *testing.T) {
			results := (&runner.Pool{Parallelism: par}).Run(context.Background(), jobs)
			if len(results) != len(jobs) {
				t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Name, r.Err)
				}
				if r.Name != jobs[i].Name {
					t.Fatalf("result %d out of order: got %q, want %q", i, r.Name, jobs[i].Name)
				}
				js, err := r.Res.StatsJSON()
				if err != nil {
					t.Fatal(err)
				}
				if string(js) != string(want[i]) {
					t.Errorf("%s: shared-cursor pool run differs from serial reference", r.Name)
				}
			}
		})
	}
}

// TestPoolJobErrorIsolation checks a failing source factory poisons
// only its own slot: surrounding packed-cursor jobs still complete.
func TestPoolJobErrorIsolation(t *testing.T) {
	src, err := workload.Make("micro", 3)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := trace.Pack(src, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	ok := runner.Job{
		Name:         "ok",
		Config:       sim.ForGeneration(core.Z15()),
		Source:       runner.Packed(packed),
		Instructions: 5_000,
	}
	bad := runner.Job{
		Name:         "bad",
		Config:       sim.ForGeneration(core.Z15()),
		Source:       runner.Workload("no-such-workload", 1),
		Instructions: 5_000,
	}
	results := (&runner.Pool{Parallelism: 2}).Run(context.Background(), []runner.Job{ok, bad, ok})
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("job with unknown workload reported no error")
	}
}
