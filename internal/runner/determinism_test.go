package runner_test

import (
	"fmt"
	"testing"

	"zbp/internal/core"
	"zbp/internal/runner"
	"zbp/internal/sim"
	"zbp/internal/trace"
)

// TestStatsJSONDeterminism is the contract the golden harness and any
// CI diffing stand on: running the same configs serially (no pool at
// all) and through the pool at every practical -parallel setting must
// produce byte-identical stats JSON. It exercises both scheduling
// (worker interleaving must not leak into results) and serialization
// (map iteration must never reach the output).
func TestStatsJSONDeterminism(t *testing.T) {
	const (
		seed  = 7
		scale = 40_000
	)
	var jobs []runner.Job
	for _, gen := range core.Generations() {
		for _, wl := range []string{"lspr", "callret"} {
			jobs = append(jobs, runner.Job{
				Name:         gen.Name + "/" + wl,
				Config:       sim.ForGeneration(gen),
				Source:       runner.Workload(wl, seed),
				Instructions: scale,
			})
		}
	}

	// Reference: run each job directly, bypassing the pool entirely.
	want := make([][]byte, len(jobs))
	for i, job := range jobs {
		srcs, err := job.Source()
		if err != nil {
			t.Fatalf("%s: building sources: %v", job.Name, err)
		}
		for k, src := range srcs {
			srcs[k] = trace.Limit(src, job.Instructions)
		}
		res := sim.New(job.Config, srcs).Run(0)
		js, err := res.StatsJSON()
		if err != nil {
			t.Fatalf("%s: serializing: %v", job.Name, err)
		}
		want[i] = js
	}

	for par := 1; par <= 8; par++ {
		t.Run(fmt.Sprintf("parallel-%d", par), func(t *testing.T) {
			pool := &runner.Pool{Parallelism: par}
			results := pool.Run(jobs)
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Name, r.Err)
				}
				js, err := r.Res.StatsJSON()
				if err != nil {
					t.Fatalf("%s: serializing: %v", r.Name, err)
				}
				if string(js) != string(want[i]) {
					t.Errorf("%s: stats JSON differs between serial run and pool at parallelism %d",
						r.Name, par)
				}
			}
		})
	}
}
