package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// fakeClock is an injectable clock for TTL tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time                { return c.t }
func (c *fakeClock) advance(d time.Duration)       { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                     { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func newStore(clk *fakeClock, opts Options) *Store { opts.Now = clk.now; return NewStore(opts) }

func TestLifecycleHappyPath(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{})
	j, err := s.Create("sweep", 4)
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Snapshot(); st.State != Queued || st.Progress.CellsTotal != 4 {
		t.Fatalf("fresh job snapshot %+v", st)
	}
	if !j.Start(clk.now()) {
		t.Fatal("Start refused a queued job")
	}
	if j.Start(clk.now()) {
		t.Fatal("double Start succeeded")
	}
	j.CellDone(false)
	j.CellDone(true)
	clk.advance(250 * time.Millisecond)
	j.Finish(clk.now(), Done, "", []byte(`{"cells":[]}`))

	st := j.Snapshot()
	if st.State != Done || st.WallMs != 250 {
		t.Errorf("done snapshot state=%s wall=%d, want done/250", st.State, st.WallMs)
	}
	if st.Progress.CellsDone != 2 || st.Progress.CellsCached != 1 {
		t.Errorf("progress %+v", st.Progress)
	}
	if string(st.Result) != `{"cells":[]}` {
		t.Errorf("result %q", st.Result)
	}
	if s.DoneCount() != 1 || s.FailedCount() != 0 || s.CanceledCount() != 0 {
		t.Errorf("terminal counters done=%d failed=%d canceled=%d",
			s.DoneCount(), s.FailedCount(), s.CanceledCount())
	}

	// Finish is first-writer-wins: a late cancel must not overwrite.
	j.Finish(clk.now(), Canceled, "late", nil)
	if st := j.Snapshot(); st.State != Done {
		t.Errorf("late Finish overwrote terminal state: %s", st.State)
	}
	if s.CanceledCount() != 0 {
		t.Error("late Finish double-counted a terminal transition")
	}
}

func TestResultOnlyOnDone(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{})
	j, _ := s.Create("simulate", 1)
	j.Start(clk.now())
	j.Finish(clk.now(), Failed, "exploded", []byte("partial"))
	st := j.Snapshot()
	if st.Result != nil {
		t.Errorf("failed job exposes a result: %q", st.Result)
	}
	if st.Error != "exploded" {
		t.Errorf("error %q", st.Error)
	}
}

func TestCreateFullTable(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{MaxJobs: 2})
	if _, err := s.Create("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("b", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("c", 1); !errors.Is(err, ErrFull) {
		t.Fatalf("third create err = %v, want ErrFull", err)
	}
}

func TestTTLEviction(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{MaxJobs: 1, TTL: time.Minute})
	j, err := s.Create("simulate", 1)
	if err != nil {
		t.Fatal(err)
	}
	id := j.ID()
	j.Start(clk.now())
	j.Finish(clk.now(), Done, "", nil)

	// Inside the TTL: still pollable, still occupying the table.
	clk.advance(59 * time.Second)
	if _, ok := s.Get(id); !ok {
		t.Fatal("finished job evicted before TTL")
	}
	if _, err := s.Create("blocked", 1); !errors.Is(err, ErrFull) {
		t.Fatalf("create before TTL err = %v, want ErrFull", err)
	}

	// Past the TTL: Get is an honest miss, and the slot is free again.
	clk.advance(2 * time.Second)
	if _, ok := s.Get(id); ok {
		t.Fatal("expired job still pollable")
	}
	if s.Evicted() != 1 {
		t.Errorf("evicted = %d, want 1", s.Evicted())
	}
	if _, err := s.Create("fits", 1); err != nil {
		t.Fatalf("create after eviction: %v", err)
	}
}

func TestRunningJobNeverEvicted(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{TTL: time.Minute})
	j, _ := s.Create("sweep", 1)
	j.Start(clk.now())
	clk.advance(24 * time.Hour)
	if _, ok := s.Get(j.ID()); !ok {
		t.Fatal("running job evicted by TTL")
	}
}

func TestCancelQueuedWithoutRunner(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{})
	j, _ := s.Create("sweep", 1)
	if !j.Cancel(clk.now(), "client gave up") {
		t.Fatal("cancel of a queued job refused")
	}
	st := j.Snapshot()
	if st.State != Canceled || st.Error != "client gave up" {
		t.Errorf("snapshot %+v", st)
	}
	if s.CanceledCount() != 1 {
		t.Errorf("canceled count = %d, want 1", s.CanceledCount())
	}
	// The stream must already be complete.
	lines, terminal := j.EventsSince(0)
	if !terminal {
		t.Fatal("canceled job stream not terminal")
	}
	var last struct {
		Type  string `json:"type"`
		State State  `json:"state"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != "done" || last.State != Canceled {
		t.Errorf("final event %+v", last)
	}
}

func TestCancelFiresAttachedContext(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{})
	j, _ := s.Create("sweep", 1)
	ctx, cancel := context.WithCancel(context.Background())
	j.SetCancel(cancel)
	j.Start(clk.now())
	if !j.Cancel(clk.now(), "stop") {
		t.Fatal("cancel refused")
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("attached context not canceled")
	}
	// The runner observes ctx and finishes the job; until then the
	// state is still Running (cooperative cancellation).
	j.Finish(clk.now(), Canceled, context.Canceled.Error(), nil)
	if st := j.Snapshot(); st.State != Canceled {
		t.Errorf("state %s", st.State)
	}
}

func TestSetCancelAfterCancelFiresImmediately(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{})
	j, _ := s.Create("sweep", 1)
	j.Cancel(clk.now(), "beat the runner") // DELETE raced ahead of submission
	ctx, cancel := context.WithCancel(context.Background())
	j.SetCancel(cancel)
	select {
	case <-ctx.Done():
	default:
		t.Fatal("late-attached cancel did not fire for an already-canceled job")
	}
	if j.Start(clk.now()) {
		t.Fatal("Start succeeded on a canceled job")
	}
}

func TestEventsCursorAndNotify(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{})
	j, _ := s.Create("sweep", 2)
	ch := j.Subscribe()
	defer j.Unsubscribe(ch)

	lines, terminal := j.EventsSince(0)
	if len(lines) != 1 || terminal { // the queued status event
		t.Fatalf("initial history %d lines terminal=%v", len(lines), terminal)
	}
	cursor := len(lines)

	j.Publish(map[string]any{"type": "cell", "index": 0})
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("no notify after publish")
	}
	lines, _ = j.EventsSince(cursor)
	if len(lines) != 1 {
		t.Fatalf("cursor read got %d lines, want 1", len(lines))
	}
	cursor += len(lines)

	// Coalescing: multiple publishes, one pending signal, all lines
	// visible from the cursor.
	j.Publish(map[string]any{"type": "cell", "index": 1})
	j.Start(clk.now())
	j.Finish(clk.now(), Done, "", nil)
	lines, terminal = j.EventsSince(cursor)
	if !terminal {
		t.Fatal("terminal flag not set after Finish")
	}
	if len(lines) != 3 { // cell + running status + done
		t.Fatalf("tail read got %d lines, want 3", len(lines))
	}
}

// TestEventHistoryTruncation: past MaxEvents the history stops
// growing (single truncation marker), but the final done event always
// lands so streams still terminate correctly.
func TestEventHistoryTruncation(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{MaxEvents: 8})
	j, _ := s.Create("sweep", 100)
	j.Start(clk.now())
	for i := 0; i < 50; i++ {
		j.Publish(map[string]any{"type": "cell", "index": i})
	}
	j.Finish(clk.now(), Done, "", nil)
	lines, terminal := j.EventsSince(0)
	if !terminal {
		t.Fatal("not terminal")
	}
	if len(lines) != 8+1+1 { // capacity + truncation marker + done
		t.Fatalf("history %d lines, want 10", len(lines))
	}
	var trunc, done int
	for _, b := range lines {
		var e struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(b, &e); err != nil {
			t.Fatal(err)
		}
		switch e.Type {
		case "truncated":
			trunc++
		case "done":
			done++
		}
	}
	if trunc != 1 || done != 1 {
		t.Errorf("truncated=%d done=%d, want 1/1", trunc, done)
	}
	var last struct {
		Type string `json:"type"`
	}
	json.Unmarshal(lines[len(lines)-1], &last)
	if last.Type != "done" {
		t.Errorf("final line type %q, want done", last.Type)
	}
}

func TestActiveCount(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{})
	a, _ := s.Create("x", 1)
	b, _ := s.Create("y", 1)
	if s.Active() != 2 {
		t.Fatalf("active = %d, want 2", s.Active())
	}
	a.Start(clk.now())
	a.Finish(clk.now(), Done, "", nil)
	if s.Active() != 1 {
		t.Fatalf("active = %d, want 1", s.Active())
	}
	b.Cancel(clk.now(), "")
	if s.Active() != 0 {
		t.Fatalf("active = %d, want 0", s.Active())
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2 (terminal jobs stay until TTL)", s.Len())
	}
}

func TestIDsUnique(t *testing.T) {
	clk := newFakeClock()
	s := newStore(clk, Options{MaxJobs: 1000})
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		j, err := s.Create("x", 1)
		if err != nil {
			t.Fatal(err)
		}
		if seen[j.ID()] {
			t.Fatalf("duplicate ID %s", j.ID())
		}
		seen[j.ID()] = true
	}
}
