// Package jobs is the async job table behind zbpd's /v1/jobs API: a
// bounded in-memory store of submitted work items with lifecycle
// states, per-cell progress, an append-only JSONL event history, and
// TTL eviction of finished jobs.
//
// Locking discipline (the reason this package exists instead of a map
// on the server): the store lock covers only table membership, and
// each job's lock covers only its own fields for the duration of a
// field copy. Event streaming is pull-based — a subscriber holds a
// cursor and re-reads EventsSince under the job lock, then writes to
// the network with no lock held — and publish-side notification is a
// non-blocking signal send. No lock is ever held across a stream
// write, a simulation, or a cancel callback, so a slow or stuck
// reader can never wedge publishers, cancellation, or the table.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zbp/internal/hashx"
)

// State is a job's lifecycle position.
type State string

const (
	// Queued: accepted into the table, waiting for a worker slot.
	Queued State = "queued"
	// Running: executing cells.
	Running State = "running"
	// Done: every cell finished and the result is attached.
	Done State = "done"
	// Failed: execution errored; Error holds the cause.
	Failed State = "failed"
	// Canceled: stopped by DELETE, deadline, or server drain.
	Canceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// ErrFull is returned by Create when the table is at capacity — the
// admission-control signal behind HTTP 429 on job submission.
var ErrFull = errors.New("jobs: job table full")

// Progress counts a job's cells.
type Progress struct {
	CellsTotal  int `json:"cells_total"`
	CellsDone   int `json:"cells_done"`
	CellsCached int `json:"cells_cached"`
}

// Status is a point-in-time copy of a job, shaped for the API.
type Status struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	State      State  `json:"state"`
	CreatedMs  int64  `json:"created_unix_ms"`
	StartedMs  int64  `json:"started_unix_ms,omitempty"`
	FinishedMs int64  `json:"finished_unix_ms,omitempty"`
	// WallMs is start-to-finish execution time; for a cache-served job
	// it is the honest near-zero number the acceptance test pins.
	WallMs   int64           `json:"wall_ms"`
	Progress Progress        `json:"progress"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// Options size a Store. The zero value gets production-lean defaults.
type Options struct {
	// MaxJobs bounds the table (queued+running+finished-not-yet-
	// evicted). Default: 64.
	MaxJobs int
	// TTL is how long a finished job stays pollable before eviction.
	// Default: 15m.
	TTL time.Duration
	// MaxEvents caps one job's event history; past it, events are
	// dropped and a single truncation marker is appended. Default:
	// 4096 (a full 64-cell sweep emits ~67).
	MaxEvents int
	// Now supplies the clock; tests inject a fake one to drive TTL
	// eviction deterministically. Default: time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxJobs <= 0 {
		o.MaxJobs = 64
	}
	if o.TTL <= 0 {
		o.TTL = 15 * time.Minute
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 4096
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Store is the bounded job table.
type Store struct {
	opts Options

	mu   sync.Mutex
	jobs map[string]*Job
	seq  uint64

	evicted atomic.Int64
	// Lifetime terminal-transition tallies, bumped exactly once per
	// job as it reaches its final state (eviction does not re-count).
	done     atomic.Int64
	failed   atomic.Int64
	canceled atomic.Int64
}

// NewStore builds an empty table.
func NewStore(opts Options) *Store {
	return &Store{opts: opts.withDefaults(), jobs: make(map[string]*Job)}
}

// Create admits a new job in state Queued, evicting expired finished
// jobs first. ErrFull when the table is at capacity even after
// eviction.
func (s *Store) Create(kind string, cellsTotal int) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked()
	if len(s.jobs) >= s.opts.MaxJobs {
		return nil, ErrFull
	}
	s.seq++
	// Mix the sequence so IDs don't leak submission counts; the table
	// is in-memory, so uniqueness per process is all that's needed.
	id := fmt.Sprintf("j%016x", hashx.Mix(s.seq))
	j := &Job{
		id:        id,
		kind:      kind,
		store:     s,
		state:     Queued,
		created:   s.opts.Now(),
		maxEvents: s.opts.MaxEvents,
		subs:      make(map[chan struct{}]struct{}),
	}
	j.progress.CellsTotal = cellsTotal
	j.publishLocked(statusEvent{Type: "status", State: Queued, CellsTotal: cellsTotal})
	s.jobs[id] = j
	return j, nil
}

// Get returns the job by ID; expired jobs are evicted on the way, so
// a post-TTL lookup is an honest miss (HTTP 404).
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked()
	j, ok := s.jobs[id]
	return j, ok
}

// Len returns current table occupancy.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Active counts jobs not yet in a terminal state.
func (s *Store) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if !j.Snapshot().State.Terminal() {
			n++
		}
	}
	return n
}

// Evicted returns the lifetime TTL-eviction count.
func (s *Store) Evicted() int64 { return s.evicted.Load() }

// DoneCount returns how many jobs ever finished in state Done.
func (s *Store) DoneCount() int64 { return s.done.Load() }

// FailedCount returns how many jobs ever finished in state Failed.
func (s *Store) FailedCount() int64 { return s.failed.Load() }

// CanceledCount returns how many jobs ever finished in state Canceled.
func (s *Store) CanceledCount() int64 { return s.canceled.Load() }

// noteTerminal records one job's terminal transition. Jobs call it
// exactly once, inside the critical section that flips the state.
func (s *Store) noteTerminal(state State) {
	if s == nil {
		return
	}
	switch state {
	case Done:
		s.done.Add(1)
	case Failed:
		s.failed.Add(1)
	case Canceled:
		s.canceled.Add(1)
	}
}

// evictLocked drops finished jobs whose TTL has lapsed. Only terminal
// jobs are eligible: a running job is never evicted out from under
// its worker.
func (s *Store) evictLocked() {
	now := s.opts.Now()
	for id, j := range s.jobs {
		if j.expired(now, s.opts.TTL) {
			delete(s.jobs, id)
			s.evicted.Add(1)
		}
	}
}

// Job is one work item. All methods are safe for concurrent use.
type Job struct {
	id    string
	kind  string
	store *Store // terminal-transition counters; nil in bare tests

	mu        sync.Mutex
	state     State
	created   time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	result    []byte
	cancel    context.CancelFunc
	progress  Progress
	events    [][]byte
	maxEvents int
	truncated bool
	subs      map[chan struct{}]struct{}
}

// Event payloads the job publishes itself; the service adds its own
// per-cell events through Publish.
type statusEvent struct {
	Type       string `json:"type"`
	State      State  `json:"state"`
	CellsTotal int    `json:"cells_total,omitempty"`
}

type doneEvent struct {
	Type     string   `json:"type"`
	State    State    `json:"state"`
	Error    string   `json:"error,omitempty"`
	WallMs   int64    `json:"wall_ms"`
	Progress Progress `json:"progress"`
}

type truncEvent struct {
	Type    string `json:"type"`
	Dropped string `json:"dropped"`
}

// ID returns the job's table key.
func (j *Job) ID() string { return j.id }

// Kind returns the job's work type ("simulate", "sweep", "diff").
func (j *Job) Kind() string { return j.kind }

// SetCancel attaches the context cancel the job's DELETE handler
// fires. If the job was already canceled before the runner attached
// it (DELETE racing submission), the cancel fires immediately.
func (j *Job) SetCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	fire := j.state == Canceled
	if !fire {
		j.cancel = cancel
	}
	j.mu.Unlock()
	if fire {
		cancel()
	}
}

// Start moves Queued -> Running, stamping the clock. It reports false
// when the job reached a terminal state first (canceled while
// queued); the runner must then skip execution.
func (j *Job) Start(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Queued {
		return false
	}
	j.state = Running
	j.started = now
	j.publishLocked(statusEvent{Type: "status", State: Running})
	return true
}

// Finish moves the job to a terminal state, attaches the result or
// error, and appends the final "done" event in the same critical
// section — so a streamer that observes the terminal state is
// guaranteed the done event is already in its history (no lost final
// line).
func (j *Job) Finish(now time.Time, state State, errMsg string, result []byte) {
	if !state.Terminal() {
		panic("jobs: Finish with non-terminal state " + string(state))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.finished = now
	j.errMsg = errMsg
	j.result = result
	j.store.noteTerminal(state)
	j.publishLocked(doneEvent{Type: "done", State: state, Error: errMsg,
		WallMs: j.wallMsLocked(), Progress: j.progress})
}

// Cancel requests cancellation. It reports false if the job is
// already terminal. The attached context cancel (if any) fires with
// no job lock held; a queued job without a context yet is flipped to
// Canceled directly so it evicts normally even if no runner ever
// claims it.
func (j *Job) Cancel(now time.Time, reason string) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	cancel := j.cancel
	if j.state == Queued && cancel == nil {
		j.state = Canceled
		j.finished = now
		j.errMsg = reason
		j.store.noteTerminal(Canceled)
		j.publishLocked(doneEvent{Type: "done", State: Canceled, Error: reason,
			WallMs: 0, Progress: j.progress})
		j.mu.Unlock()
		return true
	}
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// CellDone advances progress counters.
func (j *Job) CellDone(cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress.CellsDone++
	if cached {
		j.progress.CellsCached++
	}
}

// Publish appends one marshaled event line to the history and wakes
// subscribers. Marshaling failures are programming errors and panic.
func (j *Job) Publish(v any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(v)
}

// publishLocked marshals and appends under j.mu. Subscriber wakeups
// are non-blocking signal sends into capacity-1 channels: a slow
// subscriber simply finds one pending signal and re-reads its cursor,
// so publishing never waits on any reader.
func (j *Job) publishLocked(v any) {
	if len(j.events) >= j.maxEvents {
		if !j.truncated {
			j.truncated = true
			if b, err := json.Marshal(truncEvent{Type: "truncated", Dropped: "event history at capacity"}); err == nil {
				j.events = append(j.events, b)
			}
		}
		// Terminal events must still land: replace the marker slot's
		// successor policy is overkill; just allow done events through.
		if _, isDone := v.(doneEvent); !isDone {
			j.notifyLocked()
			return
		}
	}
	b, err := json.Marshal(v)
	if err != nil {
		panic("jobs: unmarshalable event: " + err.Error())
	}
	j.events = append(j.events, b)
	j.notifyLocked()
}

func (j *Job) notifyLocked() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Subscribe registers for new-event signals. The returned channel has
// capacity 1 and carries edge-triggered "something changed" pulses;
// pair it with EventsSince cursor reads. Always Unsubscribe.
func (j *Job) Subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

// Unsubscribe removes a subscriber channel.
func (j *Job) Unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// EventsSince returns the event lines appended at or after cursor
// position i, plus whether the job is terminal. Because Finish
// appends the done event and flips the state atomically, terminal ==
// true guarantees the returned slice ends the stream: no event will
// ever follow. The line slices are immutable; callers write them out
// with no lock held.
func (j *Job) EventsSince(i int) (lines [][]byte, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i < len(j.events) {
		lines = j.events[i:len(j.events):len(j.events)]
	}
	return lines, j.state.Terminal()
}

// Snapshot copies the job's externally-visible state.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		Kind:      j.kind,
		State:     j.state,
		CreatedMs: j.created.UnixMilli(),
		WallMs:    j.wallMsLocked(),
		Progress:  j.progress,
		Error:     j.errMsg,
	}
	if !j.started.IsZero() {
		st.StartedMs = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		st.FinishedMs = j.finished.UnixMilli()
	}
	if j.state == Done {
		st.Result = j.result
	}
	return st
}

// wallMsLocked measures execution wall time: start to finish, or
// start to "still running" zero-extended by the caller's clock. It is
// 0 until the job starts.
func (j *Job) wallMsLocked() int64 {
	if j.started.IsZero() || j.finished.IsZero() || j.finished.Before(j.started) {
		return 0
	}
	return j.finished.Sub(j.started).Milliseconds()
}

// expired reports whether a terminal job's TTL lapsed at now.
func (j *Job) expired(now time.Time, ttl time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal() && !j.finished.IsZero() && now.Sub(j.finished) >= ttl
}
