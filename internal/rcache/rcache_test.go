package rcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zbp/internal/metrics"
)

// TestKeyCanonicalization: equivalent specs address the same bytes.
// A default-filled request ("" config) and the explicit service
// default must hash equal, because the HTTP layer accepts both forms
// for the same simulation.
func TestKeyCanonicalization(t *testing.T) {
	base := CellSpec{Config: "z15", Workload: "loops", Seed: 42, Instructions: 10_000}
	filled := NewKey(base)
	defaulted := NewKey(CellSpec{Workload: "loops", Seed: 42, Instructions: 10_000})
	if filled != defaulted {
		t.Errorf("default-filled spec hashes differently:\n explicit %s\n defaulted %s",
			filled.String(), defaulted.String())
	}

	// Every field must be load-bearing: flipping any one of them must
	// move the address.
	variants := map[string]CellSpec{
		"config":       {Config: "z14", Workload: "loops", Seed: 42, Instructions: 10_000},
		"workload":     {Config: "z15", Workload: "lspr", Seed: 42, Instructions: 10_000},
		"workload2":    {Config: "z15", Workload: "loops", Workload2: "micro", Seed: 42, Instructions: 10_000},
		"seed":         {Config: "z15", Workload: "loops", Seed: 43, Instructions: 10_000},
		"instructions": {Config: "z15", Workload: "loops", Seed: 42, Instructions: 10_001},
	}
	for field, spec := range variants {
		if NewKey(spec) == filled {
			t.Errorf("changing %s did not change the key", field)
		}
	}

	// The canonical form is position-keyed (wl= vs wl2=), so a value
	// sliding between fields cannot collide.
	a := NewKey(CellSpec{Workload: "loops", Workload2: "micro", Seed: 1, Instructions: 5})
	b := NewKey(CellSpec{Workload: "micro", Workload2: "loops", Seed: 1, Instructions: 5})
	if a == b {
		t.Error("swapping workload/workload2 did not change the key")
	}
}

// TestKeyVersionBumpInvalidates: folding the format and stats-schema
// versions into the address means a bump orphans every old entry —
// no stale-schema payload can ever be served as current.
func TestKeyVersionBumpInvalidates(t *testing.T) {
	spec := CellSpec{Workload: "loops", Seed: 42, Instructions: 10_000}
	cur := keyAt(spec, FormatVersion, metrics.SchemaVersion)
	if cur != NewKey(spec) {
		t.Fatal("keyAt with current versions disagrees with NewKey")
	}
	if keyAt(spec, FormatVersion+1, metrics.SchemaVersion) == cur {
		t.Error("format version bump did not change the key")
	}
	if keyAt(spec, FormatVersion, metrics.SchemaVersion+1) == cur {
		t.Error("stats schema bump did not change the key")
	}
}

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func specN(i int) CellSpec {
	return CellSpec{Workload: "loops", Seed: uint64(i), Instructions: 1000}
}

// TestMemLRUEvictionOrder: the coldest entry leaves first, and a Get
// refreshes recency.
func TestMemLRUEvictionOrder(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 100)
	// Budget for exactly 3 entries of (100 + overhead) bytes.
	c := mustCache(t, Config{MaxMemBytes: 3 * (100 + entryOverhead)})
	for i := 0; i < 3; i++ {
		c.Put(NewKey(specN(i)), payload)
	}
	if c.Len() != 3 {
		t.Fatalf("resident entries = %d, want 3", c.Len())
	}
	// Touch entry 0 so entry 1 is now coldest, then overflow.
	if _, ok := c.Get(NewKey(specN(0))); !ok {
		t.Fatal("entry 0 missing before overflow")
	}
	c.Put(NewKey(specN(3)), payload)
	if _, ok := c.Get(NewKey(specN(1))); ok {
		t.Error("coldest entry (1) survived eviction")
	}
	for _, want := range []int{0, 2, 3} {
		if _, ok := c.Get(NewKey(specN(want))); !ok {
			t.Errorf("entry %d evicted, want resident", want)
		}
	}
	if got := c.Evictions(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

// TestMemOversizedEntryAdmitted: an entry larger than the whole bound
// still caches (alone) instead of thrashing.
func TestMemOversizedEntryAdmitted(t *testing.T) {
	c := mustCache(t, Config{MaxMemBytes: 64})
	k := NewKey(specN(0))
	big := bytes.Repeat([]byte("y"), 4096)
	c.Put(k, big)
	v, ok := c.Get(k)
	if !ok || !bytes.Equal(v, big) {
		t.Fatal("oversized entry not served back")
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

// TestDiskRoundTripSurvivesRestart: a second cache over the same
// directory — a process restart — serves the first one's entries.
func TestDiskRoundTripSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	k := NewKey(specN(7))
	payload := []byte(`{"schema_version":1}`)

	c1 := mustCache(t, Config{Dir: dir})
	c1.Put(k, payload)

	c2 := mustCache(t, Config{Dir: dir})
	v, ok := c2.Get(k)
	if !ok {
		t.Fatal("entry did not survive restart")
	}
	if !bytes.Equal(v, payload) {
		t.Fatalf("restart round-trip corrupted payload: %q", v)
	}
	if c2.DiskHits() != 1 || c2.Hits() != 1 {
		t.Errorf("diskHits=%d hits=%d, want 1/1", c2.DiskHits(), c2.Hits())
	}
	// The disk hit was promoted: a second Get is a memory hit.
	if _, ok := c2.Get(k); !ok {
		t.Fatal("promoted entry missing")
	}
	if c2.DiskHits() != 1 {
		t.Errorf("second Get went to disk (diskHits=%d)", c2.DiskHits())
	}
}

// TestDiskHeaderMismatchIsMiss: an entry whose header names a
// different canonical key — hash collision, truncated write, foreign
// file — degrades to a clean miss plus a diskErrors bump, never a
// wrong payload.
func TestDiskHeaderMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	c := mustCache(t, Config{Dir: dir})
	k := NewKey(specN(1))
	c.Put(k, []byte("payload"))

	path := filepath.Join(dir, k.Hash()+diskExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the header to claim a different key, keeping the payload.
	nl := bytes.IndexByte(raw, '\n')
	tampered := append([]byte(diskHeaderPrefix+NewKey(specN(2)).String()+"\n"), raw[nl+1:]...)
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := mustCache(t, Config{Dir: dir})
	if _, ok := fresh.Get(k); ok {
		t.Error("mismatched header served as a hit")
	}
	if fresh.DiskErrors() != 1 {
		t.Errorf("diskErrors = %d, want 1", fresh.DiskErrors())
	}

	// The header only guards identity: a payload tampered *under the
	// correct header* IS served — by design. That gap is exactly what
	// the equiv-backed auditor exists to close (see internal/equiv
	// Audit and the server's end-to-end poisoning test).
	if err := os.WriteFile(path, append(raw[:nl+1:nl+1], []byte("poisoned")...), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh2 := mustCache(t, Config{Dir: dir})
	v, ok := fresh2.Get(k)
	if !ok || string(v) != "poisoned" {
		t.Fatalf("expected the unchecksummed payload to be served verbatim, got %q ok=%v", v, ok)
	}
}

// TestDiskEviction: the store trims oldest-first back under the bound
// and never removes the newest entry.
func TestDiskEviction(t *testing.T) {
	dir := t.TempDir()
	c := mustCache(t, Config{Dir: dir, MaxDiskBytes: 300})
	payload := bytes.Repeat([]byte("z"), 100) // ~150 B per file with header
	for i := 0; i < 4; i++ {
		c.Put(NewKey(specN(i)), payload)
		// Distinct mtimes so eviction order is deterministic on
		// coarse-granularity filesystems.
		old := time.Now().Add(time.Duration(i-4) * time.Hour)
		os.Chtimes(filepath.Join(dir, NewKey(specN(i)).Hash()+diskExt), old, old)
	}
	c.Put(NewKey(specN(4)), payload)

	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	names := map[string]bool{}
	for _, de := range des {
		if filepath.Ext(de.Name()) != diskExt {
			continue
		}
		fi, _ := de.Info()
		total += fi.Size()
		names[de.Name()] = true
	}
	if total > 300 {
		t.Errorf("disk store %d bytes, bound 300", total)
	}
	if !names[NewKey(specN(4)).Hash()+diskExt] {
		t.Error("newest entry was evicted")
	}
	if names[NewKey(specN(0)).Hash()+diskExt] {
		t.Error("oldest entry survived eviction")
	}
}

// TestGetOrComputeSingleflight: N concurrent callers of one cold key
// run exactly one compute; everyone gets the same shared bytes.
func TestGetOrComputeSingleflight(t *testing.T) {
	c := mustCache(t, Config{})
	k := NewKey(specN(0))
	var computes atomic.Int64
	gate := make(chan struct{})

	const N = 16
	results := make([][]byte, N)
	hits := make([]bool, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) {
				<-gate // hold the flight open until all callers have piled on
				computes.Add(1)
				return []byte("computed-once"), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	// Let every goroutine reach either the compute or the wait, then
	// release. Timing-based, but only in the generous direction.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	misses := 0
	for i := range results {
		if string(results[i]) != "computed-once" {
			t.Fatalf("caller %d got %q", i, results[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d callers report a miss, want exactly 1 (the computer)", misses)
	}
	if c.Coalesced() != N-1 {
		t.Errorf("coalesced = %d, want %d", c.Coalesced(), N-1)
	}
	if c.Puts() != 1 {
		t.Errorf("puts = %d, want 1", c.Puts())
	}
}

// TestGetOrComputeFailureNotCached: a failed compute propagates to its
// caller only; the key stays cold and the next caller recomputes.
func TestGetOrComputeFailureNotCached(t *testing.T) {
	c := mustCache(t, Config{})
	k := NewKey(specN(0))
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := c.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || hit || string(v) != "ok" {
		t.Fatalf("after failure: v=%q hit=%v err=%v, want fresh compute", v, hit, err)
	}
}

// TestGetOrComputeWaiterRetriesAfterComputerCanceled: a canceled
// computer must not poison healthy waiters — they go around and
// compute for themselves.
func TestGetOrComputeWaiterRetriesAfterComputerCanceled(t *testing.T) {
	c := mustCache(t, Config{})
	k := NewKey(specN(0))
	cctx, cancelComputer := context.WithCancel(context.Background())
	started := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.GetOrCompute(cctx, k, func(ctx context.Context) ([]byte, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("computer err = %v, want canceled", err)
		}
	}()

	<-started
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) {
			return []byte("healthy"), nil
		})
		if err != nil || string(v) != "healthy" {
			t.Errorf("waiter got v=%q err=%v, want healthy recompute", v, err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // waiter parks on the flight
	cancelComputer()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never recomputed after the computer was canceled")
	}
}

// TestNewBadDirErrors: an unusable cache directory must fail loudly,
// not silently degrade to memory-only.
func TestNewBadDirErrors(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: filepath.Join(file, "sub")}); err == nil {
		t.Fatal("New with a file-shadowed dir succeeded")
	} else if !strings.Contains(err.Error(), "disk store") {
		t.Errorf("err = %v, want a disk store error", err)
	}
}

// TestKeyHashStem sanity: the disk file stem is 16 hex digits, stable
// across calls.
func TestKeyHashStem(t *testing.T) {
	k := NewKey(specN(0))
	h := k.Hash()
	if len(h) != 16 {
		t.Fatalf("hash %q not 16 chars", h)
	}
	if fmt.Sprintf("%016x", k.hash) != h {
		t.Fatal("Hash() disagrees with the raw hash")
	}
	if NewKey(specN(0)).Hash() != h {
		t.Fatal("hash not stable")
	}
}
