package rcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Disk layer: one file per entry, named by the key's content hash,
// written atomically (temp file in the same directory, then rename)
// so a crash mid-write leaves either the old entry or none — never a
// torn one. The first line is a header binding the file to its full
// canonical key; the payload follows verbatim.
//
// The payload is deliberately unchecksummed — see the package comment:
// integrity is the equiv auditor's job, end to end.

// diskHeaderPrefix starts every entry file. The format version rides
// in the key's canonical string, which follows on the same line.
const diskHeaderPrefix = "zrc "

// diskExt is the entry file suffix; eviction only ever touches these.
const diskExt = ".zrc"

// diskInit creates the store directory when the disk layer is on.
func (c *Cache) diskInit() error {
	if c.cfg.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("rcache: disk store: %w", err)
	}
	return nil
}

// diskPath maps a key to its entry file.
func (c *Cache) diskPath(k Key) string {
	return filepath.Join(c.cfg.Dir, k.Hash()+diskExt)
}

// diskLoad reads k's entry, verifying the header names exactly this
// canonical key. Any mismatch (truncation, hash collision, foreign
// file) counts as a miss plus a diskErrors bump — the caller simply
// recomputes.
func (c *Cache) diskLoad(k Key) ([]byte, bool) {
	if c.cfg.Dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.diskPath(k))
	if err != nil {
		if !os.IsNotExist(err) {
			c.diskErrors.Add(1)
		}
		return nil, false
	}
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 || string(b[:nl]) != diskHeaderPrefix+k.canonical {
		c.diskErrors.Add(1)
		return nil, false
	}
	return b[nl+1:], true
}

// diskStore writes k's entry atomically, then trims the store back
// under MaxDiskBytes. Write failures are recorded, not returned: the
// memory layer already holds the result, and a full or read-only disk
// must not fail the simulation that produced it.
func (c *Cache) diskStore(k Key, v []byte) {
	if c.cfg.Dir == "" {
		return
	}
	tmp, err := os.CreateTemp(c.cfg.Dir, ".tmp-*")
	if err != nil {
		c.diskErrors.Add(1)
		return
	}
	_, werr := fmt.Fprintf(tmp, "%s%s\n", diskHeaderPrefix, k.canonical)
	if werr == nil {
		_, werr = tmp.Write(v)
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.diskErrors.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), c.diskPath(k)); err != nil {
		os.Remove(tmp.Name())
		c.diskErrors.Add(1)
		return
	}
	c.diskEvict()
}

// diskEvict removes oldest-modified entry files until the store fits
// MaxDiskBytes again. The scan is O(entries); at the store's scale
// (thousands of files at most) that is far cheaper than maintaining
// an index that must survive crashes.
func (c *Cache) diskEvict() {
	des, err := os.ReadDir(c.cfg.Dir)
	if err != nil {
		return
	}
	type fileInfo struct {
		name    string
		size    int64
		modUnix int64
	}
	var files []fileInfo
	var total int64
	for _, de := range des {
		if de.IsDir() || filepath.Ext(de.Name()) != diskExt {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{de.Name(), fi.Size(), fi.ModTime().UnixNano()})
		total += fi.Size()
	}
	if total <= c.cfg.MaxDiskBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].modUnix != files[j].modUnix {
			return files[i].modUnix < files[j].modUnix
		}
		return files[i].name < files[j].name
	})
	// Never evict the newest file: like the memory layer, an oversized
	// single entry stays resident rather than thrashing.
	for _, f := range files[:len(files)-1] {
		if total <= c.cfg.MaxDiskBytes {
			return
		}
		if os.Remove(filepath.Join(c.cfg.Dir, f.name)) == nil {
			total -= f.size
		}
	}
}
