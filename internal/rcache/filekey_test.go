package rcache

import (
	"os"
	"path/filepath"
	"testing"

	"zbp/internal/workload"
)

// TestFileWorkloadKeyedByDigest is the cache-staleness regression
// test at the key layer: a file-backed workload's cache address is its
// content digest, so editing the file's bytes — same path, same name —
// must move the key, while a byte-identical rewrite must not.
func TestFileWorkloadKeyedByDigest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.zbpt")
	p, err := workload.MakePacked("loops", 7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	spec := CellSpec{Config: "z15", Workload: workload.FilePrefix + path, Seed: 42, Instructions: 1000}

	k1 := NewKey(spec)
	k1b := NewKey(spec)
	if k1 != k1b {
		t.Fatalf("same bytes hashed to different keys:\n %s\n %s", k1, k1b)
	}

	// Rewrite with identical bytes: key must be stable (it addresses
	// content, not mtime).
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if k := NewKey(spec); k != k1 {
		t.Fatalf("byte-identical rewrite moved the key:\n %s\n %s", k1, k)
	}

	// Swap the content under the same path: the key must move, or a
	// simulate against the new trace would serve the old trace's stats.
	p2, err := workload.MakePacked("loops", 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if k := NewKey(spec); k == k1 {
		t.Fatal("editing the trace file did not change the cache key: stale results would be served")
	}
}

// TestFileWorkloadKeyUnreadable: an unreadable file degrades to
// name-based keying rather than failing key construction — safe
// because the simulation itself will fail and failed computes are
// never cached.
func TestFileWorkloadKeyUnreadable(t *testing.T) {
	name := workload.FilePrefix + filepath.Join(t.TempDir(), "absent.zbpt")
	spec := CellSpec{Config: "z15", Workload: name, Seed: 42, Instructions: 1000}
	k1 := NewKey(spec)
	k2 := NewKey(spec)
	if k1 != k2 {
		t.Fatal("unreadable-file keying is not deterministic")
	}
}
