// Package rcache is the content-addressed result cache behind the
// async job API. The simulator is deterministic down to byte-identical
// stats JSON (the property internal/equiv enforces), so every
// (config, workload, seed, budget) cell is infinitely cacheable: the
// cell spec *is* the content address of its result. A repeated sweep
// cell returns in microseconds instead of re-burning millions of
// simulated cycles, and at scale real sweep traffic is mostly repeats.
//
// Layering: an in-memory LRU (bounded by bytes) sits in front of an
// optional on-disk store (atomic write-then-rename, size-bounded
// eviction), with per-key singleflight so N concurrent requests for
// the same uncomputed cell run one simulation and share the bytes —
// the same semantics workload.Materializer gives trace buffers.
//
// Integrity is end-to-end, not per-layer: the disk payload carries no
// checksum on purpose. A checksum only catches bit-rot, not a wrong
// compute or a poisoned write, and it would mask exactly the failures
// the equiv-backed cache auditor (equiv.Audit, sampled over live
// hits) exists to catch. The header line guards key identity (hash
// collision, truncated file); the *values* are proven honest by
// recomputation.
package rcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"zbp/internal/hashx"
	"zbp/internal/metrics"
	"zbp/internal/workload"
)

// FormatVersion identifies the cache entry layout (the meaning of the
// stored bytes and the disk header). Bumping it invalidates every
// existing key, exactly like a stats schema bump: both versions are
// folded into the content address.
const FormatVersion = 1

// CellSpec identifies one deterministic simulation cell. It mirrors
// the fields the service and the equiv harness use to reconstruct a
// run exactly; two specs that canonicalize equal address the same
// result bytes.
//
// Convention (shared with the zbpd service and equiv.Audit): when
// Workload2 is set, the second hardware thread runs it at Seed+1.
type CellSpec struct {
	// Config is a machine preset name; empty canonicalizes to "z15",
	// the service default, so a default-filled request and an explicit
	// one hash equal.
	Config string
	// Workload names the synthetic workload (required).
	Workload string
	// Workload2, when set, runs on the second hardware thread (SMT2).
	Workload2 string
	// Seed is the generator seed for thread 0.
	Seed uint64
	// Instructions is the per-thread budget.
	Instructions int
}

// canonicalized fills defaults so equivalent specs render identically,
// and resolves workload names to their content identity: a file-backed
// workload (file:/spec: form) canonicalizes to its SHA-256 content
// digest, so the same name over edited bytes is a *different* key —
// without this, a mutable trace file would silently serve stale cached
// results (and stale cluster routing via RouteKey). Generator names
// are their own identity and render unchanged.
//
// An unresolvable identity (unreadable file) falls back to the raw
// name: the compute for such a spec fails too, and failed computes are
// never cached, so nothing can be stored — or served — under the
// fallback key. Coordinators routing cells for files they don't hold
// locally degrade the same way, to stable name-based routing.
func (s CellSpec) canonicalized() CellSpec {
	if s.Config == "" {
		s.Config = "z15"
	}
	s.Workload = workloadIdentity(s.Workload)
	s.Workload2 = workloadIdentity(s.Workload2)
	return s
}

func workloadIdentity(name string) string {
	if !workload.PathBacked(name) {
		return name
	}
	id, err := workload.SpecID(name)
	if err != nil {
		return name
	}
	return id
}

// Key is the content address of one cell's result bytes: a canonical
// rendering of the spec (fixed field order, defaults filled, format
// and stats-schema versions folded in) plus its 64-bit hash. The
// canonical string, not the hash, is the identity — the hash only
// buckets map lookups and names disk files, and the disk header
// re-checks the canonical form so a collision degrades to a miss.
type Key struct {
	canonical string
	hash      uint64
}

// NewKey builds the content address of spec under the current cache
// format and stats schema versions.
func NewKey(spec CellSpec) Key {
	return keyAt(spec, FormatVersion, metrics.SchemaVersion)
}

// keyAt renders the canonical form under explicit versions; split out
// so tests can prove a version bump invalidates without editing
// package constants.
func keyAt(spec CellSpec, formatVersion, statsSchema int) Key {
	c := spec.canonicalized()
	canonical := fmt.Sprintf("zrc/%d|stats/%d|cfg=%s|wl=%s|wl2=%s|seed=%d|n=%d",
		formatVersion, statsSchema, c.Config, c.Workload, c.Workload2, c.Seed, c.Instructions)
	return Key{canonical: canonical, hash: hashx.Mix(hashx.String(canonical))}
}

// String returns the canonical spec rendering.
func (k Key) String() string { return k.canonical }

// Hash returns the 16-hex-digit content hash (the disk file stem).
func (k Key) Hash() string { return fmt.Sprintf("%016x", k.hash) }

// Hash64 returns the raw 64-bit content hash. The cluster
// coordinator's rendezvous router mixes it against backend identities
// so identical cells always land on the backend whose result cache
// already holds them — router and cache share this one key
// definition, which TestRouteKeyMatchesCacheKey pins.
func (k Key) Hash64() uint64 { return k.hash }

// Config sizes a Cache. The zero value is a usable memory-only cache
// with production-lean defaults.
type Config struct {
	// MaxMemBytes bounds the in-memory LRU by payload bytes. Default:
	// 256 MiB. An entry larger than the bound is still admitted alone
	// (evicting everything else) so oversized results stay cacheable.
	MaxMemBytes int64
	// Dir, when set, enables the on-disk store under this directory
	// (created if missing). Entries survive process restarts.
	Dir string
	// MaxDiskBytes bounds the disk store; oldest files (by mtime) are
	// evicted after each store. Default: 1 GiB.
	MaxDiskBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxMemBytes <= 0 {
		c.MaxMemBytes = 256 << 20
	}
	if c.MaxDiskBytes <= 0 {
		c.MaxDiskBytes = 1 << 30
	}
	return c
}

// entry is one resident cache line.
type entry struct {
	key Key
	v   []byte
}

// entryOverhead approximates per-entry bookkeeping (list element, map
// slot, key string) charged against MaxMemBytes so a flood of tiny
// entries cannot balloon past the bound.
const entryOverhead = 256

// flight is a per-key singleflight slot: the first caller computes,
// everyone else waits on done and shares v/err.
type flight struct {
	done chan struct{}
	v    []byte
	err  error
}

// Cache is the two-level content-addressed store. Safe for concurrent
// use; reads and writes never hold the lock across a compute or a
// disk access.
type Cache struct {
	cfg Config

	mu       sync.Mutex
	entries  map[string]*list.Element // canonical key -> element
	lru      *list.List               // front = most recently used
	memBytes int64
	inflight map[string]*flight

	hits       atomic.Int64 // served without computing (memory, disk, or coalesced)
	misses     atomic.Int64 // a compute was started
	puts       atomic.Int64 // a computed result was installed
	evictions  atomic.Int64 // memory LRU evictions
	coalesced  atomic.Int64 // hits that piggybacked on an in-flight compute
	diskHits   atomic.Int64 // hits satisfied from the disk layer
	diskErrors atomic.Int64 // unreadable/mismatched disk entries (treated as misses)
}

// New builds a cache. If cfg.Dir is set, the directory is created; an
// unusable directory is an error rather than a silent fallback to
// memory-only, so an operator never believes results persist when
// they do not.
func New(cfg Config) (*Cache, error) {
	c := &Cache{
		cfg:      cfg.withDefaults(),
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*flight),
	}
	if err := c.diskInit(); err != nil {
		return nil, err
	}
	return c, nil
}

// Get returns the cached bytes for k, consulting memory then disk. A
// disk hit is promoted into the memory LRU. The returned slice is
// shared and must not be modified.
func (c *Cache) Get(k Key) ([]byte, bool) {
	if v, ok := c.memGet(k); ok {
		c.hits.Add(1)
		return v, true
	}
	if v, ok := c.diskLoad(k); ok {
		c.memInstall(k, v)
		c.hits.Add(1)
		c.diskHits.Add(1)
		return v, true
	}
	return nil, false
}

// Put installs v under k in both layers. Callers hand over ownership
// of v.
func (c *Cache) Put(k Key, v []byte) {
	c.memInstall(k, v)
	c.diskStore(k, v)
	c.puts.Add(1)
}

// GetOrCompute returns the bytes for k, running compute at most once
// across all concurrent callers of the same key (singleflight). hit
// reports whether the caller was served without a compute of its own
// — from memory, disk, or by coalescing onto another caller's
// in-flight compute. A failed compute is never cached: its error
// propagates to the computing caller, and coalesced waiters retry
// (typically becoming the next computer) so one canceled request
// cannot poison an identical healthy one.
func (c *Cache) GetOrCompute(ctx context.Context, k Key, compute func(ctx context.Context) ([]byte, error)) (v []byte, hit bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[k.canonical]; ok {
			e := el.Value.(*entry)
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Add(1)
			return e.v, true, nil
		}
		if f, ok := c.inflight[k.canonical]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err != nil {
				// The computer failed (canceled, live-locked...). Its
				// error is its own; go around again and recompute.
				continue
			}
			c.hits.Add(1)
			c.coalesced.Add(1)
			return f.v, true, nil
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[k.canonical] = f
		c.mu.Unlock()

		v, hit, err = c.fill(ctx, k, compute)
		f.v, f.err = v, err
		c.mu.Lock()
		delete(c.inflight, k.canonical)
		c.mu.Unlock()
		close(f.done)
		return v, hit, err
	}
}

// fill resolves a freshly-claimed flight: disk first, then compute.
func (c *Cache) fill(ctx context.Context, k Key, compute func(ctx context.Context) ([]byte, error)) ([]byte, bool, error) {
	if v, ok := c.diskLoad(k); ok {
		c.memInstall(k, v)
		c.hits.Add(1)
		c.diskHits.Add(1)
		return v, true, nil
	}
	c.misses.Add(1)
	v, err := compute(ctx)
	if err != nil {
		return nil, false, err
	}
	c.Put(k, v)
	return v, false, nil
}

// memGet looks k up in the LRU, marking it most recently used.
func (c *Cache) memGet(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k.canonical]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry).v, true
}

// memInstall inserts k into the LRU and evicts from the cold end
// until the byte bound holds again (always keeping the newcomer).
func (c *Cache) memInstall(k Key, v []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k.canonical]; ok {
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&entry{key: k, v: v})
	c.entries[k.canonical] = el
	c.memBytes += int64(len(v)) + entryOverhead
	for c.memBytes > c.cfg.MaxMemBytes && c.lru.Len() > 1 {
		cold := c.lru.Back()
		ce := cold.Value.(*entry)
		c.lru.Remove(cold)
		delete(c.entries, ce.key.canonical)
		c.memBytes -= int64(len(ce.v)) + entryOverhead
		c.evictions.Add(1)
	}
}

// Len returns the number of resident in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// MemBytes returns the charged in-memory footprint.
func (c *Cache) MemBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memBytes
}

// Counter accessors, exported for service gauges and tests.

func (c *Cache) Hits() int64       { return c.hits.Load() }
func (c *Cache) Misses() int64     { return c.misses.Load() }
func (c *Cache) Puts() int64       { return c.puts.Load() }
func (c *Cache) Evictions() int64  { return c.evictions.Load() }
func (c *Cache) Coalesced() int64  { return c.coalesced.Load() }
func (c *Cache) DiskHits() int64   { return c.diskHits.Load() }
func (c *Cache) DiskErrors() int64 { return c.diskErrors.Load() }
