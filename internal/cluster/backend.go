package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"zbp/internal/hashx"
	"zbp/internal/server"
)

// backend is one fleet member: its identity, its in-flight cap, its
// health, and the last load snapshot scraped from its /healthz.
type backend struct {
	name   string // host:port, the short form in events and logs
	url    string // base URL, no trailing slash
	idHash uint64 // rendezvous identity, hashed once at construction

	// slots caps concurrent dispatches; acquiring is a channel send so
	// waiters are cancelable by context.
	slots chan struct{}

	healthy     atomic.Bool
	consecFails atomic.Int32
	load        atomic.Pointer[server.Health]

	// departed marks a member being deregistered: it takes no new
	// dispatches (every router and retry path skips it) while its
	// in-flight attempts drain, then it is forgotten.
	departed atomic.Bool

	// Lifetime tallies for the coordinator's /healthz report.
	inflight   atomic.Int64
	dispatched atomic.Int64
	failures   atomic.Int64
}

func newBackend(raw string, inflightCap int) (*backend, error) {
	name, clean, err := backendName(raw)
	if err != nil {
		return nil, err
	}
	b := &backend{
		name:   name,
		url:    clean,
		idHash: hashx.Mix(hashx.String(clean)),
		slots:  make(chan struct{}, inflightCap),
	}
	b.healthy.Store(true) // innocent until probed otherwise
	return b, nil
}

// acquire takes one dispatch slot, waiting until one frees or ctx
// dies. release must be called exactly once per successful acquire.
func (b *backend) acquire(ctx context.Context) error {
	select {
	case b.slots <- struct{}{}:
		b.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *backend) release() {
	b.inflight.Add(-1)
	<-b.slots
}

// fetchHealth scrapes the backend's /healthz JSON.
func (b *backend) fetchHealth(ctx context.Context, client *http.Client) (*server.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz: %s", resp.Status)
	}
	var h server.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// BackendStatus is one backend's row in the coordinator's /healthz.
type BackendStatus struct {
	Name       string `json:"name"`
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	Departed   bool   `json:"departed,omitempty"`
	Inflight   int64  `json:"inflight"`
	Dispatched int64  `json:"dispatched"`
	Failures   int64  `json:"failures"`
	// Load mirrors the backend's own /healthz JSON from the last
	// successful probe; absent until one lands.
	Load *server.Health `json:"load,omitempty"`
}

func (b *backend) status() BackendStatus {
	return BackendStatus{
		Name:       b.name,
		URL:        b.url,
		Healthy:    b.healthy.Load(),
		Departed:   b.departed.Load(),
		Inflight:   b.inflight.Load(),
		Dispatched: b.dispatched.Load(),
		Failures:   b.failures.Load(),
		Load:       b.load.Load(),
	}
}
