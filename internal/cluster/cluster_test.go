package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"zbp/internal/jobs"
	"zbp/internal/server"
)

// fleet is a coordinator fronting n real single-box backends, all
// in-process over httptest.
type fleet struct {
	coord    *Coordinator
	url      string
	backends []*httptest.Server
	kills    []*sync.Once
}

func newFleet(t *testing.T, n int, mut func(*Config)) *fleet {
	t.Helper()
	f := &fleet{}
	urls := make([]string, n)
	for i := range n {
		s, err := server.New(server.Config{Workers: 2, QueueDepth: 64, AuditEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		f.backends = append(f.backends, ts)
		urls[i] = ts.URL
		once := &sync.Once{}
		f.kills = append(f.kills, once)
		t.Cleanup(func() {
			once.Do(func() { ts.Close() })
			s.Close()
		})
	}
	cfg := Config{
		Backends:       urls,
		HealthInterval: 20 * time.Millisecond,
		CellTimeout:    10 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	ts := httptest.NewServer(coord.Handler())
	f.url = ts.URL
	t.Cleanup(func() {
		ts.Close()
		coord.Close()
	})
	return f
}

// kill abruptly terminates backend i: in-flight requests get reset
// and future dials are refused.
func (f *fleet) kill(i int) {
	f.kills[i].Do(func() {
		f.backends[i].CloseClientConnections()
		f.backends[i].Close()
	})
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func submitJob(t *testing.T, base string, req server.JobRequest) string {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/jobs", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

func waitJob(t *testing.T, base, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobs.Status
		derr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if derr != nil {
			t.Fatal(derr)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after deadline", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func runSweepJob(t *testing.T, base string, req server.SweepRequest) jobs.Status {
	t.Helper()
	id := submitJob(t, base, server.JobRequest{Sweep: &req})
	st := waitJob(t, base, id)
	if st.State != jobs.Done {
		t.Fatalf("job %s: state %s, error %q", id, st.State, st.Error)
	}
	return st
}

// singleBoxSweep computes the reference result on one standalone box.
func singleBoxSweep(t *testing.T, req server.SweepRequest) jobs.Status {
	t.Helper()
	s, err := server.New(server.Config{Workers: 2, QueueDepth: 64, AuditEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return runSweepJob(t, ts.URL, req)
}

func testGrid() server.SweepRequest {
	return server.SweepRequest{
		Configs:      []string{"z14", "z15"},
		Workloads:    []string{"loops", "micro"},
		Seeds:        []uint64{1, 2},
		Instructions: 20_000,
	}
}

// TestFleetSweepByteIdentical is the core determinism acceptance: a
// sweep sharded across 4 backends must produce result JSON
// byte-identical to the same sweep on one standalone box, and a warm
// repeat must be served almost entirely from backend caches because
// rendezvous routing sends each cell back to the backend that
// computed it.
func TestFleetSweepByteIdentical(t *testing.T) {
	grid := testGrid()
	want := singleBoxSweep(t, grid)

	// Hedging off so backend attribution stays deterministic; audits
	// off because they dispatch for real and this test counts
	// dispatches to zero. Both get their own tests.
	f := newFleet(t, 4, func(c *Config) {
		c.HedgeDelay = -1
		c.AuditEvery = -1
	})
	cold := runSweepJob(t, f.url, grid)
	if !bytes.Equal(cold.Result, want.Result) {
		t.Errorf("fleet sweep differs from single box:\nfleet:  %s\nsingle: %s", cold.Result, want.Result)
	}
	total := cold.Progress.CellsTotal
	if cold.Progress.CellsDone != total {
		t.Errorf("cold run finished %d/%d cells", cold.Progress.CellsDone, total)
	}
	if got := f.coord.cache.Misses(); got != int64(total) {
		t.Errorf("cold run recorded %d coordinator cache misses, want %d", got, total)
	}

	// Warm repeat: every cell is answered from the coordinator's own
	// result cache — zero backend dispatches, byte-identical marshal.
	dispatchedBefore := totalDispatched(f.coord)
	warm := runSweepJob(t, f.url, grid)
	if !bytes.Equal(warm.Result, want.Result) {
		t.Error("warm fleet sweep diverged from the reference result")
	}
	if warm.Progress.CellsCached != total {
		t.Errorf("warm run served %d/%d cells from cache, want all",
			warm.Progress.CellsCached, total)
	}
	if d := totalDispatched(f.coord) - dispatchedBefore; d != 0 {
		t.Errorf("warm run performed %d backend dispatches, want 0", d)
	}
	if got := f.coord.cache.Hits(); got != int64(total) {
		t.Errorf("coordinator cache hits %d after warm run, want %d", got, total)
	}
	if got := f.coord.cellsCached.Load(); got < int64(warm.Progress.CellsCached) {
		t.Errorf("coordinator cached-cell counter %d below job's %d", got, warm.Progress.CellsCached)
	}
}

// TestBackendDeathMidSweep kills one backend while its cells are in
// flight: the sweep must complete anyway, with rerouted recomputation
// producing the exact reference bytes.
func TestBackendDeathMidSweep(t *testing.T) {
	grid := server.SweepRequest{
		Configs:      []string{"z15"},
		Workloads:    []string{"loops", "micro", "lspr"},
		Seeds:        []uint64{1, 2, 3, 4},
		Instructions: 300_000,
	}
	want := singleBoxSweep(t, grid)

	f := newFleet(t, 3, func(c *Config) {
		c.HealthFailures = 1
		c.MaxAttempts = 6
	})
	id := submitJob(t, f.url, server.JobRequest{Sweep: &grid})

	// Follow the event stream; pull the trigger after the second cell
	// completes, while the rest of the grid is still dispatched.
	resp, err := http.Get(f.url + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	cells, killed := 0, false
	for sc.Scan() {
		var ev struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.Type == "cell" {
			cells++
			if cells == 2 && !killed {
				killed = true
				f.kill(0)
			}
		}
	}
	if !killed {
		t.Fatal("sweep finished before the kill fired; grid too small to exercise failover")
	}

	st := waitJob(t, f.url, id)
	if st.State != jobs.Done {
		t.Fatalf("job after backend death: state %s, error %q", st.State, st.Error)
	}
	if !bytes.Equal(st.Result, want.Result) {
		t.Errorf("post-failover sweep differs from single box:\nfleet:  %s\nsingle: %s", st.Result, want.Result)
	}
	if st.Progress.CellsDone != st.Progress.CellsTotal {
		t.Errorf("finished %d/%d cells", st.Progress.CellsDone, st.Progress.CellsTotal)
	}
}

// TestSyncSurface exercises the pass-through sync endpoints and the
// coordinator's own healthz shape.
func TestSyncSurface(t *testing.T) {
	f := newFleet(t, 2, nil)

	resp, body := postJSON(t, f.url+"/v1/simulate", server.SimulateRequest{
		Workload: "loops", Instructions: 20_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", resp.StatusCode, body)
	}
	var sim server.SimulateResponse
	if err := json.Unmarshal(body, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.Instructions != 20_000 || sim.Accuracy <= 0 {
		t.Errorf("simulate response %+v", sim)
	}

	resp, body = postJSON(t, f.url+"/v1/sweep", server.SweepRequest{
		Workloads: []string{"loops"}, Seeds: []uint64{1, 2}, Instructions: 20_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, body)
	}
	var sw server.SweepResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Cells) != 2 || sw.Errors != 0 {
		t.Errorf("sweep response: %d cells, %d errors", len(sw.Cells), sw.Errors)
	}

	hresp, err := http.Get(f.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Role != "coordinator" || h.Router != "rendezvous" || len(h.Backends) != 2 {
		t.Errorf("healthz %+v", h)
	}

	resp, _ = postJSON(t, f.url+"/v1/simulate", server.SimulateRequest{Workload: "no-such"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload: status %d, want 400", resp.StatusCode)
	}

	// Oversize bodies must map to 413, not 400, matching the single box.
	big := fmt.Sprintf(`{"workloads":["loops"],"seeds":[1],"instructions":20000,"tag":%q}`,
		strings.Repeat("x", 2<<20))
	oresp, err := http.Post(f.url+"/v1/sweep", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if oresp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: status %d, want 413", oresp.StatusCode)
	}
}

// TestAdmissionControl drains the token bucket and checks the 429
// carries a sane Retry-After.
func TestAdmissionControl(t *testing.T) {
	f := newFleet(t, 1, func(c *Config) {
		c.AdmitCellsPerSec = 1
		c.AdmitBurst = 2
	})
	grid := server.SweepRequest{Workloads: []string{"loops"}, Seeds: []uint64{1, 2}, Instructions: 20_000}
	runSweepJob(t, f.url, grid) // spends the burst

	resp, body := postJSON(t, f.url+"/v1/jobs", server.JobRequest{Sweep: &grid})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-admission status %d: %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 || secs > 60 {
		t.Errorf("Retry-After %q outside [1,60]", ra)
	}
	if f.coord.rejected.Load() == 0 {
		t.Error("rejected counter did not move")
	}
}

// TestDiffJobForwarded proves the coordinator serves the full job
// surface, not just sweeps: a diff job forwards to a backend and
// completes with per-cell events.
func TestDiffJobForwarded(t *testing.T) {
	f := newFleet(t, 2, nil)
	id := submitJob(t, f.url, server.JobRequest{Diff: &server.DiffRequest{
		Workloads: []string{"loops"}, Instructions: 20_000,
	}})
	st := waitJob(t, f.url, id)
	if st.State != jobs.Done {
		t.Fatalf("diff job: state %s, error %q", st.State, st.Error)
	}
	var dr server.DiffResponse
	if err := json.Unmarshal(st.Result, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Cells) != 1 || dr.Divergences != 0 {
		t.Errorf("diff result %+v", dr)
	}
}
