package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"zbp/internal/rcache"
	"zbp/internal/server"
)

// maxCellResponseBytes bounds one backend reply (a stats snapshot is
// tens of KB; this is a safety ceiling, not a tuning knob).
const maxCellResponseBytes = 8 << 20

// cellOutcome is the winning attempt for one cell.
type cellOutcome struct {
	stats   []byte
	cached  bool   // served from the winning backend's result cache
	backend string // who won
	hedged  bool   // the hedge duplicate won, not the primary
}

// attemptResult is what one dispatch attempt reports back.
type attemptResult struct {
	resp    *server.CellResponse
	b       *backend
	isHedge bool
	err     error
	// permanent marks errors no other backend can fix (the request
	// itself is invalid), so retrying would only repeat the rejection.
	permanent bool
}

// runCell resolves one cell: coordinator result cache first, fleet
// dispatch on a miss. The cache is keyed by the same canonical
// rcache content address the rendezvous router hashes, and stores the
// winning canonical stats bytes — so a repeat sweep is answered with
// zero backend dispatches. Per-key singleflight means N concurrent
// requests for the same uncomputed cell dispatch once and share the
// bytes. Sampled hits are re-verified end to end by a real no-cache
// dispatch (see audit.go).
func (c *Coordinator) runCell(ctx context.Context, members []*backend, spec rcache.CellSpec, noCache bool) (cellOutcome, error) {
	if noCache {
		return c.dispatchCell(ctx, members, spec, true)
	}
	key := RouteKey(spec)
	var out cellOutcome
	var dispatched bool
	v, hit, err := c.cache.GetOrCompute(ctx, key, func(cctx context.Context) ([]byte, error) {
		o, derr := c.dispatchCell(cctx, members, spec, false)
		if derr != nil {
			return nil, derr
		}
		out, dispatched = o, true
		return o.stats, nil
	})
	if err != nil {
		return cellOutcome{}, err
	}
	if !hit && dispatched {
		return out, nil
	}
	// Served from the coordinator's own cache (memory, disk, or
	// coalesced onto a concurrent dispatch): no backend attribution.
	c.maybeAudit(key, spec, v)
	return cellOutcome{stats: v, cached: true}, nil
}

// dispatchCell resolves one cell against the fleet: primary dispatch
// on the router's first choice, one hedged duplicate on the next
// choice if the primary dawdles past HedgeDelay, and immediate
// rerouting on failure — all capped at MaxAttempts launches. The
// first successful response wins; determinism makes every response
// interchangeable byte for byte, so the loser is simply cancelled,
// never reconciled.
func (c *Coordinator) dispatchCell(ctx context.Context, members []*backend, spec rcache.CellSpec, noCache bool) (cellOutcome, error) {
	prefs := c.order(members, spec)
	if len(prefs) == 0 {
		return cellOutcome{}, errors.New("no backends available")
	}
	cellCtx, cancel := context.WithCancel(ctx)
	defer cancel() // reaps the losing attempt the moment one wins

	// Buffered to MaxAttempts so attempt goroutines never block on a
	// departed listener.
	results := make(chan attemptResult, c.cfg.MaxAttempts)
	next, launched, inflight := 0, 0, 0
	running := make(map[*backend]int, 2) // live attempts per backend
	// pick walks the preference order to the next usable backend:
	// departed members are skipped (deregistration applies instantly,
	// even mid-sweep), and a hedge skips backends already running this
	// cell — duplicating onto the box that is being hedged *against*
	// burns a slot and a token for zero diversity. If the snapshot has
	// wholly departed, re-route against the live fleet once.
	pick := func(avoidRunning bool) *backend {
		for rerouted := false; ; {
			for range prefs {
				b := prefs[next%len(prefs)]
				next++
				if b.departed.Load() {
					continue
				}
				if avoidRunning && running[b] > 0 {
					continue
				}
				return b
			}
			if rerouted || avoidRunning {
				return nil
			}
			rerouted = true
			if prefs = c.order(c.fleet.snapshot(), spec); len(prefs) == 0 {
				return nil
			}
			next = 0
		}
	}
	launch := func(isHedge bool) bool {
		if launched >= c.cfg.MaxAttempts {
			return false
		}
		b := pick(isHedge)
		if b == nil {
			return false
		}
		launched++
		inflight++
		running[b]++
		c.attempts.Add(1)
		if isHedge {
			c.hedgeLaunched.Add(1)
		}
		go func() {
			res := c.attempt(cellCtx, b, spec, noCache)
			res.isHedge = isHedge
			results <- res
		}()
		return true
	}
	if !launch(false) {
		return cellOutcome{}, errors.New("no backends available")
	}

	var hedgeCh <-chan time.Time
	if c.cfg.HedgeDelay > 0 {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedgeCh = t.C
	}
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return cellOutcome{}, ctx.Err()
		case <-hedgeCh:
			hedgeCh = nil // at most one hedge per cell
			if inflight > 0 {
				launch(true)
			}
		case res := <-results:
			inflight--
			running[res.b]--
			if res.err == nil {
				if res.isHedge {
					c.hedgeWins.Add(1)
				}
				return cellOutcome{
					stats: res.resp.Stats, cached: res.resp.Cached,
					backend: res.b.name, hedged: res.isHedge,
				}, nil
			}
			lastErr = res.err
			if res.permanent {
				return cellOutcome{}, res.err
			}
			// Reroute: the next-choice backend gets the cell now, not
			// after a backoff — a failed box's work must migrate fast.
			if launch(false) {
				c.retries.Add(1)
			} else if inflight == 0 {
				return cellOutcome{}, fmt.Errorf("cell failed after %d attempts: %w", launched, lastErr)
			}
		}
	}
}

// attempt runs one dispatch against one backend: slot, per-attempt
// timeout, POST, classify.
func (c *Coordinator) attempt(ctx context.Context, b *backend, spec rcache.CellSpec, noCache bool) attemptResult {
	if err := b.acquire(ctx); err != nil {
		return attemptResult{b: b, err: err}
	}
	defer b.release()
	b.dispatched.Add(1)
	actx, cancel := context.WithTimeout(ctx, c.cfg.CellTimeout)
	defer cancel()
	resp, permanent, err := c.postCell(actx, ctx, b, spec, noCache)
	if err != nil {
		b.failures.Add(1)
		return attemptResult{b: b, err: err, permanent: permanent}
	}
	return attemptResult{resp: resp, b: b}
}

// postCell performs the /v1/cell POST and classifies the reply:
// success, saturation (retry elsewhere, the box is fine), permanent
// rejection (nobody can fix a bad request), or failure (counts toward
// the backend's health). ctx is the attempt's own context (parent
// plus CellTimeout); parent is the caller's, consulted to tell "the
// caller gave up" apart from "the backend stalled".
func (c *Coordinator) postCell(ctx, parent context.Context, b *backend, spec rcache.CellSpec, noCache bool) (*server.CellResponse, bool, error) {
	seed := spec.Seed
	body, err := json.Marshal(server.CellRequest{
		SimulateRequest: server.SimulateRequest{
			Config: spec.Config, Workload: spec.Workload, Workload2: spec.Workload2,
			Seed: &seed, Instructions: spec.Instructions,
			TimeoutMs: int(c.cfg.CellTimeout / time.Millisecond),
		},
		NoCache: noCache,
	})
	if err != nil {
		return nil, true, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/cell", bytes.NewReader(body))
	if err != nil {
		return nil, true, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		if parent.Err() != nil {
			// The caller stopped waiting — the cell was resolved
			// elsewhere, the job died, or the *caller's* deadline
			// expired. Either way the interruption is no evidence
			// against this backend: a short client timeout must not
			// flip healthy boxes unhealthy fleet-wide.
			return nil, false, err
		}
		// The attempt's own CellTimeout fired or the transport failed
		// outright (connection refused, reset): evidence the box is
		// sick.
		c.noteBackendFailure(b)
		return nil, false, fmt.Errorf("backend %s: %w", b.name, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		c.noteBackendSuccess(b)
		var cr server.CellResponse
		if derr := json.NewDecoder(io.LimitReader(resp.Body, maxCellResponseBytes)).Decode(&cr); derr != nil {
			return nil, false, fmt.Errorf("backend %s: undecodable cell response: %w", b.name, derr)
		}
		return &cr, false, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		// Saturated, not sick: retry on the next choice without
		// denting this backend's health.
		drain(resp.Body)
		return nil, false, fmt.Errorf("backend %s: saturated (429)", b.name)
	case resp.StatusCode == http.StatusBadRequest,
		resp.StatusCode == http.StatusRequestEntityTooLarge:
		return nil, true, fmt.Errorf("backend %s rejected cell: %s", b.name, readError(resp.Body))
	default:
		c.noteBackendFailure(b)
		return nil, false, fmt.Errorf("backend %s: %s: %s", b.name, resp.Status, readError(resp.Body))
	}
}

func drain(r io.Reader) { _, _ = io.Copy(io.Discard, io.LimitReader(r, 4096)) }

func readError(r io.Reader) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(r, 4096)).Decode(&e) == nil && e.Error != "" {
		return e.Error
	}
	return "(no detail)"
}

// CellEvent is the coordinator's per-cell JSONL progress line. It is
// the single-box cellEvent plus fleet attribution (which backend,
// whether the hedge won), so existing streaming clients keep working
// and fleet-aware ones learn more.
type CellEvent struct {
	Type         string  `json:"type"` // "cell"
	Index        int     `json:"index"`
	Done         int     `json:"done"`
	Total        int     `json:"total"`
	Config       string  `json:"config"`
	Workload     string  `json:"workload"`
	Workload2    string  `json:"workload2,omitempty"`
	Seed         uint64  `json:"seed"`
	Cached       bool    `json:"cached"`
	Backend      string  `json:"backend,omitempty"`
	Hedged       bool    `json:"hedged,omitempty"`
	Instructions int64   `json:"instructions,omitempty"`
	Cycles       int64   `json:"cycles,omitempty"`
	MPKI         float64 `json:"mpki"`
	IPC          float64 `json:"ipc"`
	Accuracy     float64 `json:"accuracy"`
	Error        string  `json:"error,omitempty"`
	// RunSecondsEWMA is the fleet-mean smoothed per-task duration at
	// publish time (the fleet analogue of the single-box field).
	RunSecondsEWMA float64 `json:"run_seconds_ewma"`
}

// RunSweep fans one sweep grid across the fleet, all cells in flight
// at once (bounded by per-backend slots), and assembles the rows in
// grid order — configs outermost, seeds innermost, exactly the
// single-box layout. onEvent (optional) fires once per finished cell,
// in completion order, with Done monotonically increasing.
//
// The returned response marshals byte-identically to a single-box
// sweep of the same grid: rows are derived from backend-returned
// canonical stats through the same server.Summarize, and row order is
// position-assigned, not completion-ordered.
func (c *Coordinator) RunSweep(ctx context.Context, req server.SweepRequest, noCache bool, onEvent func(CellEvent)) (server.SweepResponse, error) {
	// Pin membership once for the whole sweep: cells route against
	// this snapshot, so concurrent joins/leaves cannot shuffle cells
	// between backends mid-grid. (A member deregistered mid-sweep is
	// still skipped instantly — candidates() drops departed members
	// from every snapshot.)
	members := c.fleet.snapshot()
	total := len(req.Configs) * len(req.Workloads) * len(req.Seeds)
	rows := make([]server.SweepCell, total)
	var done atomic.Int64
	var evMu sync.Mutex // serializes onEvent so Done never regresses
	var wg sync.WaitGroup
	idx := 0
	for _, cfgName := range req.Configs {
		for _, wl := range req.Workloads {
			for _, seed := range req.Seeds {
				i := idx
				spec := rcache.CellSpec{
					Config: cfgName, Workload: wl, Seed: seed, Instructions: req.Instructions,
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					rows[i] = c.sweepCell(ctx, members, spec, noCache, i, total, &done, &evMu, onEvent)
				}()
				idx++
			}
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return server.SweepResponse{}, err
	}
	resp := server.SweepResponse{Cells: rows}
	for i := range rows {
		if rows[i].Error != "" {
			resp.Errors++
		}
	}
	return resp, nil
}

// sweepCell resolves one grid position and reports its event.
func (c *Coordinator) sweepCell(ctx context.Context, members []*backend, spec rcache.CellSpec, noCache bool, i, total int, done *atomic.Int64, evMu *sync.Mutex, onEvent func(CellEvent)) server.SweepCell {
	row := server.SweepCell{Config: spec.Config, Workload: spec.Workload, Seed: spec.Seed}
	ev := CellEvent{
		Type: "cell", Index: i, Total: total,
		Config: spec.Config, Workload: spec.Workload, Seed: spec.Seed,
	}
	out, err := c.runCell(ctx, members, spec, noCache)
	if err == nil {
		var sum server.CellSummary
		if _, sum, err = server.Summarize(spec, out.stats); err == nil {
			row.Instructions, row.Cycles = sum.Instructions, sum.Cycles
			row.MPKI, row.IPC, row.Accuracy = sum.MPKI, sum.IPC, sum.Accuracy
			ev.Cached, ev.Backend, ev.Hedged = out.cached, out.backend, out.hedged
			ev.Instructions, ev.Cycles = sum.Instructions, sum.Cycles
			ev.MPKI, ev.IPC, ev.Accuracy = sum.MPKI, sum.IPC, sum.Accuracy
			c.cellsDone.Add(1)
			if out.cached {
				c.cellsCached.Add(1)
			}
		}
	}
	if err != nil {
		row.Error = err.Error()
		ev.Error = row.Error
		if ctx.Err() == nil {
			c.cellErrors.Add(1)
		}
	}
	if onEvent != nil && ctx.Err() == nil {
		evMu.Lock()
		ev.Done = int(done.Add(1))
		ev.RunSecondsEWMA = c.fleetEWMASeconds()
		onEvent(ev)
		evMu.Unlock()
	}
	return row
}

// RunSimulate resolves one cell and shapes it as the public simulate
// response (byte-compatible with the single-box endpoint).
func (c *Coordinator) RunSimulate(ctx context.Context, req server.SimulateRequest, seed uint64, noCache bool) (server.SimulateResponse, cellOutcome, error) {
	spec := rcache.CellSpec{
		Config: req.Config, Workload: req.Workload, Workload2: req.Workload2,
		Seed: seed, Instructions: req.Instructions,
	}
	out, err := c.runCell(ctx, c.fleet.snapshot(), spec, noCache)
	if err != nil {
		return server.SimulateResponse{}, cellOutcome{}, err
	}
	snap, sum, err := server.Summarize(spec, out.stats)
	if err != nil {
		return server.SimulateResponse{}, cellOutcome{}, err
	}
	c.cellsDone.Add(1)
	if out.cached {
		c.cellsCached.Add(1)
	}
	resp := server.SimulateResponse{
		Config:       req.Config,
		Workload:     req.Workload,
		Workload2:    req.Workload2,
		Seed:         seed,
		Instructions: sum.Instructions,
		Branches:     sum.Branches,
		Cycles:       sum.Cycles,
		MPKI:         sum.MPKI,
		IPC:          sum.IPC,
		Accuracy:     sum.Accuracy,
	}
	if req.FullStats {
		resp.Stats = snap
	}
	return resp, out, nil
}
