package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"zbp/internal/rcache"
	"zbp/internal/server"
)

func testBackends(t *testing.T, urls ...string) []*backend {
	t.Helper()
	out := make([]*backend, len(urls))
	for i, u := range urls {
		b, err := newBackend(u, 4)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// TestRouteKeyMatchesCacheKey pins the no-drift invariant: the router
// hashes exactly the bytes the result cache addresses by, including
// default canonicalization. If RouteKey ever diverges from
// rcache.NewKey, rendezvous routing silently loses cache affinity —
// this test makes that loud.
func TestRouteKeyMatchesCacheKey(t *testing.T) {
	specs := []rcache.CellSpec{
		{Workload: "loops", Seed: 42, Instructions: 1_000_000},
		{Config: "z14", Workload: "micro", Seed: 7, Instructions: 50_000},
		{Config: "z15", Workload: "lspr", Workload2: "micro", Seed: 1, Instructions: 250_000},
	}
	for _, spec := range specs {
		rk, ck := RouteKey(spec), rcache.NewKey(spec)
		if rk.String() != ck.String() || rk.Hash64() != ck.Hash64() {
			t.Errorf("spec %+v: route key %q (%x) != cache key %q (%x)",
				spec, rk.String(), rk.Hash64(), ck.String(), ck.Hash64())
		}
	}
	// Default canonicalization is shared too: an empty config routes
	// exactly like the explicit default, because the cache stores them
	// under one address.
	imp := RouteKey(rcache.CellSpec{Workload: "loops", Seed: 42, Instructions: 1000})
	exp := RouteKey(rcache.CellSpec{Config: "z15", Workload: "loops", Seed: 42, Instructions: 1000})
	if imp.Hash64() != exp.Hash64() {
		t.Error("default-filled and explicit z15 specs route differently")
	}
}

func TestRendezvousStability(t *testing.T) {
	bs := testBackends(t, "http://a:1", "http://b:1", "http://c:1", "http://d:1")
	r := rendezvousRouter{}
	key := RouteKey(rcache.CellSpec{Workload: "loops", Seed: 3, Instructions: 1000}).Hash64()

	first := r.order(key, bs)
	second := r.order(key, bs)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("order not deterministic at %d", i)
		}
	}
	// Removing the winner must not reshuffle anyone else: the
	// survivors keep their relative order, so only the dead backend's
	// cells migrate.
	without := make([]*backend, 0, 3)
	for _, b := range bs {
		if b != first[0] {
			without = append(without, b)
		}
	}
	reordered := r.order(key, without)
	for i := range reordered {
		if reordered[i] != first[i+1] {
			t.Errorf("survivor order changed at %d: %s != %s", i, reordered[i].name, first[i+1].name)
		}
	}
}

func TestRendezvousSpread(t *testing.T) {
	bs := testBackends(t, "http://a:1", "http://b:1", "http://c:1", "http://d:1")
	r := rendezvousRouter{}
	counts := map[string]int{}
	for seed := uint64(0); seed < 200; seed++ {
		key := RouteKey(rcache.CellSpec{Workload: "loops", Seed: seed, Instructions: 1000}).Hash64()
		counts[r.order(key, bs)[0].name]++
	}
	for _, b := range bs {
		if counts[b.name] < 20 {
			t.Errorf("backend %s got %d/200 primaries; hashing is badly skewed: %v", b.name, counts[b.name], counts)
		}
	}
}

func TestRoundRobinRotates(t *testing.T) {
	bs := testBackends(t, "http://a:1", "http://b:1", "http://c:1")
	var rr atomic.Uint64
	r := roundRobinRouter{rr: &rr}
	seen := map[string]bool{}
	for range 3 {
		seen[r.order(0, bs)[0].name] = true
	}
	if len(seen) != 3 {
		t.Errorf("3 consecutive orders used %d distinct primaries, want 3", len(seen))
	}
}

func TestLeastLoadedPrefersIdle(t *testing.T) {
	bs := testBackends(t, "http://busy:1", "http://idle:1")
	bs[0].load.Store(&server.Health{Workers: 1, QueueDepth: 10, Inflight: 1, RunSecondsEWMA: 1})
	bs[1].load.Store(&server.Health{Workers: 4, QueueDepth: 0, Inflight: 0, RunSecondsEWMA: 0.01})
	var rr atomic.Uint64
	r := leastLoadedRouter{rr: &rr}
	for i := range 4 {
		if got := r.order(0, bs)[0].name; got != "idle:1" {
			t.Fatalf("round %d routed to %s, want the idle backend", i, got)
		}
	}
}

// TestDrainEstimateCountsDispatchedOnce pins the double-counting fix:
// a cell this coordinator dispatched shows up both in the local
// inflight tally and — once a probe lands — in the backend's own
// queue/inflight numbers. The estimate must take the larger view, not
// the sum, or a busy-but-healthy box is penalized twice per cell and
// least-loaded routing skews away from it.
func TestDrainEstimateCountsDispatchedOnce(t *testing.T) {
	bs := testBackends(t, "http://a:1", "http://b:1")
	// a: 2 cells dispatched by us, and the probe already sees both of
	// them running over there (same 2 cells, seen from both sides).
	bs[0].inflight.Store(2)
	bs[0].load.Store(&server.Health{Workers: 1, Inflight: 2, RunSecondsEWMA: 1})
	// b: nothing from us, but 3 cells of other clients' work.
	bs[1].load.Store(&server.Health{Workers: 1, Inflight: 3, RunSecondsEWMA: 1})

	a, b := drainEstimate(bs[0]), drainEstimate(bs[1])
	// Summing would score a at 4 (2 local + 2 remote) and misroute new
	// cells to the genuinely busier b.
	if a >= b {
		t.Errorf("drainEstimate double-counts dispatched cells: a=%v (2 cells) >= b=%v (3 cells)", a, b)
	}
	// The local view still counts when the probe is stale: cells
	// dispatched since the last scrape keep the estimate honest.
	bs[0].inflight.Store(4) // 4 local now, probe still says 2
	if got := drainEstimate(bs[0]); got != 4 {
		t.Errorf("stale probe: drainEstimate=%v, want the larger local view 4", got)
	}
}

func TestNewRouterUnknown(t *testing.T) {
	var rr atomic.Uint64
	if _, err := newRouter("zigzag", &rr); err == nil {
		t.Error("unknown router name accepted")
	}
}

func TestBucket(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	b := newBucket(10, 5, now) // 10 tokens/s, burst 5

	if ok, _ := b.take(5); !ok {
		t.Fatal("full bucket refused its burst")
	}
	ok, wait := b.take(1)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if wait <= 0 || wait > time.Second {
		t.Errorf("refill hint %v, want ~100ms", wait)
	}
	clock = clock.Add(500 * time.Millisecond) // +5 tokens
	if ok, _ := b.take(5); !ok {
		t.Error("bucket did not refill with time")
	}
	clock = clock.Add(time.Hour)
	if got := b.available(); got != 5 {
		t.Errorf("bucket overfilled past capacity: %v", got)
	}
}
