// Package cluster shards sweeps across a fleet of zbpd backends. A
// single zbpd process is fast and never recomputes repeats, but one
// sweep still occupies one queue slot on one box — wall-clock for a
// large grid is bounded by one machine. The coordinator in this
// package accepts the existing /v1/sweep and /v1/jobs surface
// unchanged, decomposes the grid into cells, and dispatches them to
// backends over the /v1/cell protocol with:
//
//   - Pluggable routing: rendezvous hashing on the result cache's
//     canonical spec key (the default — identical cells always land on
//     the backend that already holds the cached bytes), least-loaded
//     (queue depth x run_seconds_ewma scraped from each backend's
//     /healthz JSON), and round-robin.
//   - Token-bucket admission control plus per-backend in-flight caps:
//     fleet saturation becomes a 429 with a fleet-derived Retry-After
//     instead of an unbounded pile-up.
//   - Timeout/retry with hedged duplicates for straggler cells. The
//     simulator is deterministic down to byte-identical stats JSON, so
//     the first response simply wins — duplicate dispatch needs no
//     reconciliation logic, which is what makes hedging free.
//   - Automatic rerouting away from backends that fail health probes
//     or drop connections mid-cell.
//   - Streamed aggregation: per-cell JSONL progress events flow
//     through the same /v1/jobs/{id}/events machinery a single box
//     serves, so a client watching a large sweep sees cells complete
//     live across the fleet.
//
// Because every cell is deterministic and the coordinator derives its
// aggregate rows from backend-returned canonical stats through the
// same server.Summarize a single box uses, a fleet sweep's result
// JSON is byte-identical to a single-box run — even when a backend
// dies mid-sweep and its cells are replayed elsewhere.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zbp/internal/core"
	"zbp/internal/jobs"
	"zbp/internal/metrics"
	"zbp/internal/rcache"
	"zbp/internal/server"
	"zbp/internal/workload"
)

// Config sizes a Coordinator. Backends is required; every other field
// has a production-lean default applied by New.
type Config struct {
	// Backends seeds the fleet: base URLs of zbpd processes
	// ("http://host:8347"). Membership is mutable at runtime through
	// /v1/backends and BackendsFile; this list is only the starting
	// point. Required unless BackendsFile is set.
	Backends []string
	// BackendsFile, when set, names a file with one backend URL per
	// line (blank lines and #-comments ignored). The probe loop
	// re-reads it when it changes and reconciles membership to it —
	// the file is declarative and wins over earlier admin edits.
	BackendsFile string
	// Router selects the routing policy: "rendezvous" (default),
	// "least-loaded", or "round-robin".
	Router string

	// CellTimeout bounds one dispatch attempt of one cell. Default: 60s.
	CellTimeout time.Duration
	// HedgeDelay is how long the primary attempt may run before a
	// duplicate is launched on the next-choice backend. 0 means the
	// default of 400ms; negative disables hedging.
	HedgeDelay time.Duration
	// MaxAttempts bounds total launches per cell (primary + retries +
	// the hedge). Default: max(3, len(Backends)).
	MaxAttempts int
	// InflightPerBackend caps concurrent cells dispatched to one
	// backend. Default: 4.
	InflightPerBackend int

	// AdmitCellsPerSec refills the admission token bucket (one token
	// per grid cell). 0 means the default of 256; negative disables
	// admission control.
	AdmitCellsPerSec float64
	// AdmitBurst is the bucket capacity. Default: 1024.
	AdmitBurst int

	// HealthInterval is the /healthz polling period. Default: 250ms.
	HealthInterval time.Duration
	// HealthFailures is how many consecutive probe or transport
	// failures mark a backend unhealthy. Default: 3.
	HealthFailures int

	// Coordinator-side result cache: winning canonical stats bytes are
	// stored under the same rcache content address the routing key
	// uses, so a repeat sweep is answered with zero backend
	// dispatches. CacheMemBytes bounds the in-memory LRU (default
	// 256 MiB); CacheDir enables the optional disk layer bounded by
	// CacheDiskBytes (default 1 GiB).
	CacheMemBytes  int64
	CacheDir       string
	CacheDiskBytes int64
	// AuditEvery recomputes every Nth coordinator cache hit through a
	// real no-cache dispatch and byte-compares the result. 0 means the
	// default of 16; negative disables auditing.
	AuditEvery int

	// Request surface limits, mirroring the single-box service.
	MaxBodyBytes        int64
	MaxSweepCells       int // default 16384: fleets exist for big grids
	MaxInstructions     int
	DefaultInstructions int
	DefaultTimeout      time.Duration
	MaxTimeout          time.Duration
	MaxJobs             int
	JobTTL              time.Duration

	// now supplies the clock for the job table and admission bucket;
	// tests inject a fake.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Router == "" {
		c.Router = "rendezvous"
	}
	if c.CellTimeout <= 0 {
		c.CellTimeout = 60 * time.Second
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 400 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
		if len(c.Backends) > c.MaxAttempts {
			c.MaxAttempts = len(c.Backends)
		}
	}
	if c.InflightPerBackend <= 0 {
		c.InflightPerBackend = 4
	}
	if c.AdmitCellsPerSec == 0 {
		c.AdmitCellsPerSec = 256
	}
	if c.AdmitBurst <= 0 {
		c.AdmitBurst = 1024
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthFailures <= 0 {
		c.HealthFailures = 3
	}
	if c.AuditEvery == 0 {
		c.AuditEvery = 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSweepCells <= 0 {
		c.MaxSweepCells = 16384
	}
	if c.MaxInstructions <= 0 {
		c.MaxInstructions = 20_000_000
	}
	if c.DefaultInstructions <= 0 {
		c.DefaultInstructions = 1_000_000
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Coordinator fans cells out over the fleet. Build with New, serve
// Handler, and Close when done (Drain first on graceful shutdown).
type Coordinator struct {
	cfg    Config
	fleet  memberSet // mutable, versioned membership registry
	router router
	rr     atomic.Uint64 // shared rotation cursor (round-robin, tie-breaks, diff forwarding)
	jobs   *jobs.Store
	reg    *metrics.Registry
	mux    *http.ServeMux
	bucket *bucket
	client *http.Client
	cache  *rcache.Cache // coordinator-side result cache (fronts dispatch)

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// -backends-file change detection (probe-loop goroutine only).
	bfMod    time.Time
	bfSize   int64
	bfWarned bool

	// Cache-audit lane: sampled coordinator cache hits recomputed via
	// a real no-cache dispatch (see audit.go).
	auditCh      chan coordAuditTask
	auditHits    atomic.Int64
	audits       atomic.Int64
	auditErrors  atomic.Int64
	auditFails   atomic.Int64
	auditDropped atomic.Int64

	// Live counters, exported via /metrics.
	requests      atomic.Int64
	completed     atomic.Int64
	rejected      atomic.Int64
	failed        atomic.Int64
	canceled      atomic.Int64
	jobsSubmitted atomic.Int64

	cellsDone        atomic.Int64
	cellsCached      atomic.Int64
	cellErrors       atomic.Int64
	attempts         atomic.Int64
	retries          atomic.Int64
	hedgeLaunched    atomic.Int64
	hedgeWins        atomic.Int64
	backendUnhealthy atomic.Int64
	backendAdded     atomic.Int64
	backendRemoved   atomic.Int64
}

// New builds a coordinator over the configured fleet and starts its
// health-probe loop. Callers must Close it.
func New(cfg Config) (*Coordinator, error) {
	c := &Coordinator{cfg: cfg.withDefaults()}
	if len(c.cfg.Backends) == 0 && c.cfg.BackendsFile == "" {
		return nil, errors.New("cluster: no backends configured")
	}
	for _, raw := range c.cfg.Backends {
		b, err := newBackend(raw, c.cfg.InflightPerBackend)
		if err != nil {
			return nil, err
		}
		if err := c.fleet.add(b); err != nil {
			return nil, fmt.Errorf("cluster: duplicate backend %s", b.url)
		}
	}
	r, err := newRouter(c.cfg.Router, &c.rr)
	if err != nil {
		return nil, err
	}
	c.router = r
	cache, err := rcache.New(rcache.Config{
		MaxMemBytes:  c.cfg.CacheMemBytes,
		Dir:          c.cfg.CacheDir,
		MaxDiskBytes: c.cfg.CacheDiskBytes,
	})
	if err != nil {
		return nil, err
	}
	c.cache = cache
	if c.cfg.AdmitCellsPerSec > 0 {
		c.bucket = newBucket(c.cfg.AdmitCellsPerSec, float64(c.cfg.AdmitBurst), c.cfg.now)
	}
	c.jobs = jobs.NewStore(jobs.Options{
		MaxJobs: c.cfg.MaxJobs,
		TTL:     c.cfg.JobTTL,
		Now:     c.cfg.now,
	})
	c.client = &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: c.cfg.InflightPerBackend + 2,
		IdleConnTimeout:     90 * time.Second,
	}}
	c.baseCtx, c.baseCancel = context.WithCancel(context.Background())
	// Load the membership file once, synchronously, so a file-only
	// fleet is routable before the first probe tick.
	c.maybeReloadBackendsFile()
	c.reg = c.buildRegistry()
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/simulate", c.handleSimulate)
	c.mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	c.mux.HandleFunc("POST /v1/jobs", c.handleJobCreate)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobGet)
	c.mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleJobEvents)
	c.mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleJobDelete)
	c.mux.HandleFunc("GET /v1/backends", c.handleBackendsList)
	c.mux.HandleFunc("POST /v1/backends", c.handleBackendAdd)
	c.mux.HandleFunc("DELETE /v1/backends", c.handleBackendRemove)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	if c.cfg.AuditEvery > 0 {
		c.auditCh = make(chan coordAuditTask, 8)
		c.wg.Add(1)
		go c.auditLoop()
	}
	c.wg.Add(1)
	go c.probeLoop()
	return c, nil
}

// Handler returns the coordinator's HTTP handler tree.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Drain begins shutdown: new job submissions are refused and running
// jobs cancel cooperatively, ending their event streams. Call before
// http.Server.Shutdown.
func (c *Coordinator) Drain() { c.baseCancel() }

// Close cancels everything outstanding and waits for job runners and
// the probe loop to exit.
func (c *Coordinator) Close() {
	c.baseCancel()
	c.wg.Wait()
	c.client.CloseIdleConnections()
}

// RouteKey returns the routing identity of a cell: exactly the result
// cache's content address (rcache.NewKey), so the rendezvous router
// and every backend's cache agree on what "the same cell" means.
// TestRouteKeyMatchesCacheKey pins that the two never drift.
func RouteKey(spec rcache.CellSpec) rcache.Key { return rcache.NewKey(spec) }

// candidates filters a membership snapshot down to routable backends.
// Departed members are dropped first — a deregistration applies
// instantly, even to sweeps pinned to an older snapshot. If that
// leaves nothing (every snapshot member left mid-sweep), the current
// fleet steps in so the remaining cells can still land somewhere.
// Among the survivors, those passing probes win; when the whole set
// looks down it returns everything, because dispatch attempts are
// themselves the fastest way to discover recovery.
func (c *Coordinator) candidates(members []*backend) []*backend {
	alive := make([]*backend, 0, len(members))
	for _, b := range members {
		if !b.departed.Load() {
			alive = append(alive, b)
		}
	}
	if len(alive) == 0 {
		for _, b := range c.fleet.snapshot() {
			if !b.departed.Load() {
				alive = append(alive, b)
			}
		}
	}
	healthy := make([]*backend, 0, len(alive))
	for _, b := range alive {
		if b.healthy.Load() {
			healthy = append(healthy, b)
		}
	}
	if len(healthy) == 0 {
		return alive
	}
	return healthy
}

// order returns the preference-ordered backends for one cell, routing
// within the sweep's membership snapshot.
func (c *Coordinator) order(members []*backend, spec rcache.CellSpec) []*backend {
	cands := c.candidates(members)
	if len(cands) == 0 {
		return nil
	}
	return c.router.order(RouteKey(spec).Hash64(), cands)
}

// fleetEWMASeconds is the mean smoothed per-task duration across
// backends with a load snapshot — the fleet-level analogue of the
// single box's run_seconds_ewma, reported in progress events.
func (c *Coordinator) fleetEWMASeconds() float64 {
	var sum float64
	n := 0
	for _, b := range c.fleet.snapshot() {
		if h := b.load.Load(); h != nil {
			sum += h.RunSecondsEWMA
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// fleetWaitSeconds estimates when fleet capacity frees up: the least
// busy healthy backend's queued work spread over its workers.
func (c *Coordinator) fleetWaitSeconds() float64 {
	best := 0.0
	have := false
	for _, b := range c.candidates(c.fleet.snapshot()) {
		h := b.load.Load()
		if h == nil {
			continue
		}
		workers := h.Workers
		if workers < 1 {
			workers = 1
		}
		ewma := h.RunSecondsEWMA
		if ewma <= 0 {
			ewma = 1
		}
		est := float64(h.QueueDepth+int(h.Inflight)+1) * ewma / float64(workers)
		if !have || est < best {
			best, have = est, true
		}
	}
	return best
}

// probeLoop polls every member's /healthz on the configured interval
// until the coordinator closes, re-reading the membership file (if
// any) first so joins and leaves land within one probe interval.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
		}
		c.maybeReloadBackendsFile()
		var pw sync.WaitGroup
		for _, b := range c.fleet.snapshot() {
			pw.Add(1)
			go func(b *backend) {
				defer pw.Done()
				c.probe(b)
			}(b)
		}
		pw.Wait()
	}
}

func (c *Coordinator) probe(b *backend) {
	// The timeout is floored well above the probe interval: a sluggish
	// scrape is load, not death — dead backends fail fast on dial.
	timeout := 4 * c.cfg.HealthInterval
	if timeout < time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(c.baseCtx, timeout)
	defer cancel()
	h, err := b.fetchHealth(ctx, c.client)
	if err != nil {
		c.noteBackendFailure(b)
		return
	}
	b.load.Store(h)
	c.noteBackendSuccess(b)
}

// noteBackendFailure records one failed probe or transport-level
// dispatch error; enough in a row flips the backend unhealthy and
// routes new cells away from it.
func (c *Coordinator) noteBackendFailure(b *backend) {
	if int(b.consecFails.Add(1)) >= c.cfg.HealthFailures {
		if b.healthy.CompareAndSwap(true, false) {
			c.backendUnhealthy.Add(1)
			log.Printf("cluster: backend %s marked unhealthy", b.name)
		}
	}
}

func (c *Coordinator) noteBackendSuccess(b *backend) {
	b.consecFails.Store(0)
	if b.healthy.CompareAndSwap(false, true) {
		log.Printf("cluster: backend %s healthy again", b.name)
	}
}

// buildRegistry wires the coordinator gauges; everything is a
// snapshot-time read of an atomic, so scrapes race nothing.
func (c *Coordinator) buildRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Label("service", "zbpd-coordinator")
	gauge := func(name string, v *atomic.Int64) {
		reg.Gauge(name, func() float64 { return float64(v.Load()) })
	}
	gauge("zbpd.requests_total", &c.requests)
	gauge("zbpd.completed_total", &c.completed)
	gauge("zbpd.rejected_total", &c.rejected)
	gauge("zbpd.failed_total", &c.failed)
	gauge("zbpd.canceled_total", &c.canceled)
	gauge("zbpd.jobs_submitted_total", &c.jobsSubmitted)
	gauge("zbpd.coord_cells_total", &c.cellsDone)
	gauge("zbpd.coord_cells_cached_total", &c.cellsCached)
	gauge("zbpd.coord_cell_errors_total", &c.cellErrors)
	gauge("zbpd.coord_attempts_total", &c.attempts)
	gauge("zbpd.coord_retries_total", &c.retries)
	gauge("zbpd.hedge_launched_total", &c.hedgeLaunched)
	gauge("zbpd.hedge_wins_total", &c.hedgeWins)
	gauge("zbpd.backend_unhealthy_total", &c.backendUnhealthy)
	gauge("zbpd.backend_added_total", &c.backendAdded)
	gauge("zbpd.backend_removed_total", &c.backendRemoved)
	gauge("zbpd.coord_cache_audits_total", &c.audits)
	gauge("zbpd.coord_cache_audit_errors_total", &c.auditErrors)
	gauge("zbpd.coord_cache_audit_failures_total", &c.auditFails)
	gauge("zbpd.coord_cache_audit_dropped_total", &c.auditDropped)
	fn := func(name string, f func() float64) { reg.Gauge(name, f) }
	fn("zbpd.coord_cache_hits_total", func() float64 { return float64(c.cache.Hits()) })
	fn("zbpd.coord_cache_misses_total", func() float64 { return float64(c.cache.Misses()) })
	fn("zbpd.coord_cache_entries", func() float64 { return float64(c.cache.Len()) })
	fn("zbpd.coord_cache_mem_bytes", func() float64 { return float64(c.cache.MemBytes()) })
	fn("zbpd.coord_backends", func() float64 { return float64(c.fleet.size()) })
	fn("zbpd.coord_backends_version", func() float64 { return float64(c.fleet.generation()) })
	fn("zbpd.coord_backends_healthy", func() float64 {
		n := 0
		for _, b := range c.fleet.snapshot() {
			if b.healthy.Load() {
				n++
			}
		}
		return float64(n)
	})
	fn("zbpd.coord_inflight", func() float64 {
		var n int64
		for _, b := range c.fleet.snapshot() {
			n += b.inflight.Load()
		}
		return float64(n)
	})
	if c.bucket != nil {
		fn("zbpd.coord_admit_tokens", func() float64 { return c.bucket.available() })
	}
	fn("zbpd.jobs_active", func() float64 { return float64(c.jobs.Active()) })
	fn("zbpd.jobs_table", func() float64 { return float64(c.jobs.Len()) })
	fn("zbpd.jobs_done_total", func() float64 { return float64(c.jobs.DoneCount()) })
	fn("zbpd.jobs_failed_total", func() float64 { return float64(c.jobs.FailedCount()) })
	fn("zbpd.jobs_canceled_total", func() float64 { return float64(c.jobs.CanceledCount()) })
	fn("zbpd.jobs_evicted_total", func() float64 { return float64(c.jobs.Evicted()) })
	return reg
}

// --- request validation (mirrors the single-box service) --------------

func (c *Coordinator) normalizeSimulate(req *server.SimulateRequest) (uint64, error) {
	if req.Config == "" {
		req.Config = "z15"
	}
	seed := uint64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	if req.Instructions == 0 {
		req.Instructions = c.cfg.DefaultInstructions
	}
	if _, err := core.ByName(req.Config); err != nil {
		return 0, err
	}
	if err := validateWorkloads(req.Workload, req.Workload2); err != nil {
		return 0, err
	}
	if req.Instructions < 0 || req.Instructions > c.cfg.MaxInstructions {
		return 0, fmt.Errorf("instructions %d out of range [1, %d]", req.Instructions, c.cfg.MaxInstructions)
	}
	return seed, nil
}

func (c *Coordinator) normalizeSweep(req *server.SweepRequest) (int, error) {
	if len(req.Configs) == 0 {
		req.Configs = []string{"z15"}
	}
	if len(req.Seeds) == 0 {
		req.Seeds = []uint64{42}
	}
	if req.Instructions == 0 {
		req.Instructions = c.cfg.DefaultInstructions
	}
	if req.Instructions < 0 || req.Instructions > c.cfg.MaxInstructions {
		return 0, fmt.Errorf("instructions %d out of range [1, %d]", req.Instructions, c.cfg.MaxInstructions)
	}
	cells := len(req.Configs) * len(req.Workloads) * len(req.Seeds)
	if cells == 0 {
		return 0, errors.New("empty sweep grid: need workloads")
	}
	if cells > c.cfg.MaxSweepCells {
		return 0, fmt.Errorf("sweep grid has %d cells, limit %d", cells, c.cfg.MaxSweepCells)
	}
	if err := validateWorkloads(req.Workloads...); err != nil {
		return 0, err
	}
	for _, name := range req.Configs {
		if _, err := core.ByName(name); err != nil {
			return 0, err
		}
	}
	return cells, nil
}

func validateWorkloads(names ...string) error {
	if len(names) == 0 || names[0] == "" {
		return errors.New("missing workload")
	}
	reg := workload.Registry()
	for _, name := range names {
		if name == "" {
			continue
		}
		// Path-backed workloads (file:/spec:) pass through: each backend
		// enforces its own -trace-dir allowlist, and the router keys by
		// content digest when the coordinator can read the file, by name
		// otherwise (stable either way).
		if workload.PathBacked(name) {
			continue
		}
		if _, ok := reg[name]; !ok {
			return fmt.Errorf("unknown workload %q (have %v)", name, workload.Names())
		}
	}
	return nil
}

// backendName renders a URL as the short name used in events and logs.
func backendName(raw string) (name, clean string, err error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", "", fmt.Errorf("cluster: bad backend URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", "", fmt.Errorf("cluster: backend URL %q must be http(s)", raw)
	}
	if u.Host == "" {
		return "", "", fmt.Errorf("cluster: backend URL %q has no host", raw)
	}
	return u.Host, strings.TrimRight(u.String(), "/"), nil
}
