package cluster

// Elastic fleet membership. The coordinator's backend set is a
// mutable, versioned registry rather than a boot-time constant:
// backends join and leave a running coordinator through the
// /v1/backends admin surface (GET list, POST register, DELETE
// deregister) or through a -backends-file the probe loop re-reads
// whenever it changes.
//
// The consistency story leans on the same property everything else in
// this package does — rendezvous routing over the result-cache key:
//
//   - Membership is snapshotted once per sweep (RunSweep/RunSimulate
//     pin the member list before fanning out). In-flight cells finish
//     against their snapshot; membership changes only steer cells
//     dispatched after them.
//   - A removed backend is first marked departed, which removes it
//     from every routing decision immediately (including sweeps still
//     running on a snapshot that contains it). Highest-random-weight
//     ordering means only the departed backend's cells migrate — to
//     their second choice — while every other cell stays put.
//   - Removal then drains the backend's in-flight dispatch slots:
//     attempts already on the wire finish (their results are valid —
//     determinism again) before the member is forgotten.
//   - A newly registered backend starts healthy ("innocent until
//     probed") and begins receiving its rendezvous share on the next
//     sweep. Nothing rebalances: the hash already owns placement.

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// memberSet is the fleet registry: the live member list plus a version
// that bumps on every add/forget, so operators (and tests) can tell
// two healthz snapshots apart.
type memberSet struct {
	mu      sync.RWMutex
	members []*backend
	version int64
}

// snapshot returns a copy of the current member list. Sweeps call this
// once and route against the copy for their whole lifetime.
func (f *memberSet) snapshot() []*backend {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]*backend(nil), f.members...)
}

func (f *memberSet) generation() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.version
}

func (f *memberSet) size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.members)
}

// get finds a member by its clean base URL.
func (f *memberSet) get(cleanURL string) (*backend, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, b := range f.members {
		if b.url == cleanURL {
			return b, true
		}
	}
	return nil, false
}

// add registers a new member. Duplicate URLs are rejected — including
// a member that is still draining out, so a remove/re-add race cannot
// alias two *backend values onto one box.
func (f *memberSet) add(b *backend) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.url == b.url {
			if m.departed.Load() {
				return fmt.Errorf("cluster: backend %s is still draining; retry once it is gone", b.url)
			}
			return fmt.Errorf("cluster: backend %s already registered", b.url)
		}
	}
	f.members = append(f.members, b)
	f.version++
	return nil
}

// forget removes a member by identity. Idempotent: forgetting a
// backend twice is a no-op.
func (f *memberSet) forget(b *backend) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, m := range f.members {
		if m == b {
			f.members = append(f.members[:i], f.members[i+1:]...)
			f.version++
			return
		}
	}
}

// registerBackend validates and admits one new fleet member.
func (c *Coordinator) registerBackend(raw string) (*backend, error) {
	b, err := newBackend(raw, c.cfg.InflightPerBackend)
	if err != nil {
		return nil, err
	}
	if err := c.fleet.add(b); err != nil {
		return nil, err
	}
	c.backendAdded.Add(1)
	log.Printf("cluster: backend %s registered (%d members)", b.name, c.fleet.size())
	return b, nil
}

// removeBackend retires one member: mark departed (instantly invisible
// to routing, even inside running sweeps), drain its in-flight
// dispatch slots bounded by ctx, then forget it. Returns whether the
// drain completed before the bound.
func (c *Coordinator) removeBackend(ctx context.Context, b *backend) bool {
	b.departed.Store(true)
	drained := c.awaitDrain(ctx, b)
	c.fleet.forget(b)
	c.backendRemoved.Add(1)
	log.Printf("cluster: backend %s deregistered (drained=%v, %d members left)",
		b.name, drained, c.fleet.size())
	return drained
}

// awaitDrain waits for b's in-flight dispatches to finish. Departed
// backends get no new dispatches, so this terminates as soon as the
// attempts already on the wire come back (or ctx gives up first).
func (c *Coordinator) awaitDrain(ctx context.Context, b *backend) bool {
	if b.inflight.Load() == 0 {
		return true
	}
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return b.inflight.Load() == 0
		case <-c.baseCtx.Done():
			return b.inflight.Load() == 0
		case <-t.C:
			if b.inflight.Load() == 0 {
				return true
			}
		}
	}
}

// --- /v1/backends admin surface ---------------------------------------

// BackendsResponse is the GET /v1/backends body.
type BackendsResponse struct {
	// Version bumps on every membership change.
	Version  int64           `json:"version"`
	Backends []BackendStatus `json:"backends"`
}

// backendChangeRequest is the POST (and optionally DELETE) body.
type backendChangeRequest struct {
	URL string `json:"url"`
}

// BackendChangeResponse answers a register or deregister.
type BackendChangeResponse struct {
	Backend BackendStatus `json:"backend"`
	// Drained reports (on deregister) that every in-flight dispatch to
	// the backend finished before it was forgotten.
	Drained bool  `json:"drained,omitempty"`
	Version int64 `json:"version"`
}

func (c *Coordinator) handleBackendsList(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	resp := BackendsResponse{Version: c.fleet.generation()}
	for _, b := range c.fleet.snapshot() {
		resp.Backends = append(resp.Backends, b.status())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleBackendAdd(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	if c.baseCtx.Err() != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "coordinator shutting down"})
		return
	}
	var req backendChangeRequest
	if !c.decode(w, r, &req) {
		return
	}
	if req.URL == "" {
		c.fail(w, http.StatusBadRequest, errors.New("missing backend url"))
		return
	}
	b, err := c.registerBackend(req.URL)
	if err != nil {
		status := http.StatusBadRequest
		if c.urlInFleet(req.URL) || strings.Contains(err.Error(), "draining") {
			status = http.StatusConflict
		}
		c.fail(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, BackendChangeResponse{
		Backend: b.status(), Version: c.fleet.generation(),
	})
}

func (c *Coordinator) urlInFleet(raw string) bool {
	_, clean, err := backendName(raw)
	if err != nil {
		return false
	}
	_, ok := c.fleet.get(clean)
	return ok
}

func (c *Coordinator) handleBackendRemove(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	raw := r.URL.Query().Get("url")
	if raw == "" {
		var req backendChangeRequest
		if !c.decode(w, r, &req) {
			return
		}
		raw = req.URL
	}
	if raw == "" {
		c.fail(w, http.StatusBadRequest, errors.New("missing backend url (query ?url= or JSON body)"))
		return
	}
	_, clean, err := backendName(raw)
	if err != nil {
		c.fail(w, http.StatusBadRequest, err)
		return
	}
	b, ok := c.fleet.get(clean)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no such backend %s", clean)})
		return
	}
	// Bound the drain by the client's patience and one cell attempt:
	// nothing in flight can outlive CellTimeout.
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.CellTimeout)
	defer cancel()
	drained := c.removeBackend(ctx, b)
	writeJSON(w, http.StatusOK, BackendChangeResponse{
		Backend: b.status(), Drained: drained, Version: c.fleet.generation(),
	})
}

// --- -backends-file reload --------------------------------------------

// maybeReloadBackendsFile re-reads the membership file when its mtime
// or size moved, and reconciles the fleet to it. Runs on the probe
// loop's goroutine (and once at construction), so no extra watcher
// machinery: membership changes land within one probe interval.
func (c *Coordinator) maybeReloadBackendsFile() {
	path := c.cfg.BackendsFile
	if path == "" {
		return
	}
	fi, err := os.Stat(path)
	if err != nil {
		if !c.bfWarned {
			c.bfWarned = true
			log.Printf("cluster: backends file %s unreadable (membership unchanged): %v", path, err)
		}
		return
	}
	if fi.ModTime().Equal(c.bfMod) && fi.Size() == c.bfSize {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Printf("cluster: backends file %s unreadable (membership unchanged): %v", path, err)
		return
	}
	c.bfMod, c.bfSize, c.bfWarned = fi.ModTime(), fi.Size(), false
	c.reconcile(parseBackendsFile(string(data)))
}

// parseBackendsFile extracts backend URLs: one per line, blank lines
// and #-comments ignored.
func parseBackendsFile(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			out = append(out, line)
		}
	}
	return out
}

// reconcile drives membership toward urls: members absent from the
// list drain out (in the background — the probe loop must not stall
// behind a slow cell), URLs absent from the fleet join. The file is
// declarative: when -backends-file is set, it wins over earlier admin
// edits on its next change.
func (c *Coordinator) reconcile(urls []string) {
	want := make(map[string]string, len(urls))
	for _, raw := range urls {
		_, clean, err := backendName(raw)
		if err != nil {
			log.Printf("cluster: backends file: skipping %q: %v", raw, err)
			continue
		}
		want[clean] = raw
	}
	for _, b := range c.fleet.snapshot() {
		if b.departed.Load() {
			continue
		}
		if _, ok := want[b.url]; ok {
			delete(want, b.url)
			continue
		}
		c.wg.Add(1)
		go func(b *backend) {
			defer c.wg.Done()
			ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.CellTimeout)
			defer cancel()
			c.removeBackend(ctx, b)
		}(b)
	}
	for _, raw := range want {
		if _, err := c.registerBackend(raw); err != nil {
			log.Printf("cluster: backends file: %v", err)
		}
	}
}

// Backends reports the current membership as status rows (the
// programmatic form of GET /v1/backends, used by zbench and tests).
func (c *Coordinator) Backends() []BackendStatus {
	members := c.fleet.snapshot()
	out := make([]BackendStatus, len(members))
	for i, b := range members {
		out[i] = b.status()
	}
	return out
}
