package cluster

import (
	"fmt"
	"sort"
	"sync/atomic"

	"zbp/internal/hashx"
)

// router orders candidate backends by preference for one cell. The
// first element is the primary; retries and the hedge walk the rest.
// Implementations must not mutate cands.
type router interface {
	name() string
	order(key uint64, cands []*backend) []*backend
}

func newRouter(name string, rr *atomic.Uint64) (router, error) {
	switch name {
	case "rendezvous":
		return rendezvousRouter{}, nil
	case "least-loaded":
		return leastLoadedRouter{rr: rr}, nil
	case "round-robin":
		return roundRobinRouter{rr: rr}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown router %q (have rendezvous, least-loaded, round-robin)", name)
	}
}

// rendezvousRouter is highest-random-weight hashing on the result
// cache's canonical cell key: every coordinator (no shared state, no
// ring to rebalance) maps the same cell to the same backend, so a
// repeated cell lands where its cached bytes already live. When a
// backend drops out only its cells move (to their second choice);
// everything else stays put — exactly the property that keeps a warm
// fleet warm through membership churn.
type rendezvousRouter struct{}

func (rendezvousRouter) name() string { return "rendezvous" }

func (rendezvousRouter) order(key uint64, cands []*backend) []*backend {
	out := append([]*backend(nil), cands...)
	weight := func(b *backend) uint64 { return hashx.Mix(key ^ b.idHash) }
	sort.SliceStable(out, func(i, j int) bool { return weight(out[i]) > weight(out[j]) })
	return out
}

// roundRobinRouter rotates through the fleet, ignoring the key:
// maximal spread, zero cache affinity. Useful as the control arm in
// routing experiments and for workloads known to never repeat.
type roundRobinRouter struct{ rr *atomic.Uint64 }

func (roundRobinRouter) name() string { return "round-robin" }

func (r roundRobinRouter) order(key uint64, cands []*backend) []*backend {
	n := len(cands)
	out := make([]*backend, 0, n)
	start := int(r.rr.Add(1)-1) % n
	for i := range n {
		out = append(out, cands[(start+i)%n])
	}
	return out
}

// leastLoadedRouter sorts by an estimated time-to-drain derived from
// each backend's scraped /healthz: (queued + in-flight, both remote
// and locally dispatched) spread over its workers, scaled by its
// smoothed per-task seconds. Backends without a load snapshot yet
// sort as idle. Ties (the common case on an idle fleet) rotate so the
// first requests don't all pile onto backend zero.
type leastLoadedRouter struct{ rr *atomic.Uint64 }

func (leastLoadedRouter) name() string { return "least-loaded" }

func (r leastLoadedRouter) order(key uint64, cands []*backend) []*backend {
	n := len(cands)
	out := make([]*backend, 0, n)
	start := int(r.rr.Add(1)-1) % n
	for i := range n {
		out = append(out, cands[(start+i)%n])
	}
	sort.SliceStable(out, func(i, j int) bool {
		return drainEstimate(out[i]) < drainEstimate(out[j])
	})
	return out
}

// drainEstimate scores one backend's busyness in seconds-to-idle.
func drainEstimate(b *backend) float64 {
	pending := float64(b.inflight.Load())
	workers := 1.0
	ewma := 0.05 // optimistic prior: an unprobed backend looks fast
	if h := b.load.Load(); h != nil {
		// The scraped snapshot counts the cells this coordinator has
		// in flight too (they are queued or running over there), so
		// take the larger of the local and remote views rather than
		// their sum — summing counted every dispatched cell twice once
		// a probe landed and skewed routing against busy-but-healthy
		// boxes. The max also covers both staleness directions: cells
		// dispatched since the probe (local higher) and other clients'
		// load (remote higher).
		remote := float64(h.QueueDepth) + float64(h.Inflight)
		if remote > pending {
			pending = remote
		}
		if h.Workers > 0 {
			workers = float64(h.Workers)
		}
		if h.RunSecondsEWMA > ewma {
			ewma = h.RunSecondsEWMA
		}
	}
	return pending * ewma / workers
}
