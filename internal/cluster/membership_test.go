package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"zbp/internal/jobs"
	"zbp/internal/rcache"
	"zbp/internal/server"
)

// newBackendServer boots one real single-box backend over httptest.
func newBackendServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{Workers: 2, QueueDepth: 64, AuditEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

func httpDelete(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// totalDispatched sums lifetime /v1/cell dispatches across the
// current membership.
func totalDispatched(c *Coordinator) int64 {
	var n int64
	for _, s := range c.Backends() {
		n += s.Dispatched
	}
	return n
}

// TestBackendsAdminSurface walks the /v1/backends CRUD: list,
// register (including duplicate and garbage URLs), deregister
// (including an unknown member), with the membership version moving.
func TestBackendsAdminSurface(t *testing.T) {
	f := newFleet(t, 2, nil)

	resp, err := http.Get(f.url + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	var list BackendsResponse
	if derr := json.NewDecoder(resp.Body).Decode(&list); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if len(list.Backends) != 2 {
		t.Fatalf("GET /v1/backends: %d members, want 2", len(list.Backends))
	}
	v0 := list.Version

	// Duplicate registration conflicts rather than aliasing the member.
	dresp, body := postJSON(t, f.url+"/v1/backends", backendChangeRequest{URL: f.backends[0].URL})
	if dresp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate register: status %d (%s), want 409", dresp.StatusCode, body)
	}
	// Garbage URLs are rejected up front.
	gresp, _ := postJSON(t, f.url+"/v1/backends", backendChangeRequest{URL: "ftp://nope"})
	if gresp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage url: status %d, want 400", gresp.StatusCode)
	}

	third := newBackendServer(t)
	aresp, body := postJSON(t, f.url+"/v1/backends", backendChangeRequest{URL: third.URL})
	if aresp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", aresp.StatusCode, body)
	}
	var ch BackendChangeResponse
	if err := json.Unmarshal(body, &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Version <= v0 || !ch.Backend.Healthy {
		t.Errorf("register response %+v: version should bump and the newcomer starts healthy", ch)
	}
	if got := f.coord.fleet.size(); got != 3 {
		t.Fatalf("fleet size %d after register, want 3", got)
	}
	if f.coord.backendAdded.Load() != 1 {
		t.Errorf("backendAdded counter %d, want 1", f.coord.backendAdded.Load())
	}

	rresp, body := httpDelete(t, f.url+"/v1/backends?url="+third.URL)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: status %d: %s", rresp.StatusCode, body)
	}
	var rm BackendChangeResponse
	if err := json.Unmarshal(body, &rm); err != nil {
		t.Fatal(err)
	}
	if !rm.Drained || !rm.Backend.Departed {
		t.Errorf("deregister response %+v: idle member should drain instantly and be marked departed", rm)
	}
	if got := f.coord.fleet.size(); got != 2 {
		t.Fatalf("fleet size %d after deregister, want 2", got)
	}
	if f.coord.backendRemoved.Load() != 1 {
		t.Errorf("backendRemoved counter %d, want 1", f.coord.backendRemoved.Load())
	}

	nresp, _ := httpDelete(t, f.url+"/v1/backends?url="+third.URL)
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("deregister unknown: status %d, want 404", nresp.StatusCode)
	}
}

// TestDeregisterMidSweep deregisters a backend through /v1/backends
// while its cells are in flight: the removal drains gracefully, the
// remaining members absorb the departed member's cells, no row fails,
// and the sweep result stays byte-identical to a single box.
func TestDeregisterMidSweep(t *testing.T) {
	grid := server.SweepRequest{
		Configs:      []string{"z15"},
		Workloads:    []string{"loops", "micro", "lspr"},
		Seeds:        []uint64{1, 2, 3, 4},
		Instructions: 300_000,
	}
	want := singleBoxSweep(t, grid)

	f := newFleet(t, 3, func(c *Config) { c.MaxAttempts = 6 })
	id := submitJob(t, f.url, server.JobRequest{Sweep: &grid})

	// Follow the event stream; deregister after the second cell
	// completes, while the rest of the grid is still dispatched.
	resp, err := http.Get(f.url + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	cells, removed := 0, false
	for sc.Scan() {
		var ev struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.Type == "cell" {
			cells++
			if cells == 2 && !removed {
				removed = true
				rresp, body := httpDelete(t, f.url+"/v1/backends?url="+f.backends[0].URL)
				if rresp.StatusCode != http.StatusOK {
					t.Errorf("mid-sweep deregister: status %d: %s", rresp.StatusCode, body)
				}
			}
		}
	}
	if !removed {
		t.Fatal("sweep finished before the deregister fired; grid too small to exercise churn")
	}

	st := waitJob(t, f.url, id)
	if st.State != jobs.Done {
		t.Fatalf("job after deregister: state %s, error %q", st.State, st.Error)
	}
	if !bytes.Equal(st.Result, want.Result) {
		t.Errorf("post-churn sweep differs from single box:\nfleet:  %s\nsingle: %s", st.Result, want.Result)
	}
	var sw server.SweepResponse
	if err := json.Unmarshal(st.Result, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Errors != 0 {
		t.Errorf("%d failed rows after a graceful deregister, want 0", sw.Errors)
	}
	if f.coord.backendRemoved.Load() != 1 {
		t.Errorf("backendRemoved counter %d, want 1", f.coord.backendRemoved.Load())
	}
	hresp, err := http.Get(f.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if derr := json.NewDecoder(hresp.Body).Decode(&h); derr != nil {
		t.Fatal(derr)
	}
	hresp.Body.Close()
	if len(h.Backends) != 2 || h.Version < 1 {
		t.Errorf("healthz after deregister: %d members (want 2), version %d (want >=1)", len(h.Backends), h.Version)
	}
}

// TestRegisterColdBackendMidCampaign grows the fleet between sweeps:
// a freshly registered (cold) backend starts receiving its rendezvous
// share of new cells, while repeats of the earlier grid are still
// answered entirely from the coordinator cache — zero backend
// dispatches, even though placement arithmetic changed underneath.
func TestRegisterColdBackendMidCampaign(t *testing.T) {
	f := newFleet(t, 2, func(c *Config) {
		c.HedgeDelay = -1
		c.AuditEvery = -1 // audits dispatch for real; keep the zero-dispatch ledger exact
	})
	gridA := testGrid()
	cold := runSweepJob(t, f.url, gridA)

	third := newBackendServer(t)
	aresp, body := postJSON(t, f.url+"/v1/backends", backendChangeRequest{URL: third.URL})
	if aresp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", aresp.StatusCode, body)
	}

	// A fresh grid (two dozen never-seen cells): the newcomer must win
	// its rendezvous share of the primaries.
	gridB := server.SweepRequest{
		Configs:      []string{"z14", "z15"},
		Workloads:    []string{"loops", "micro"},
		Seeds:        []uint64{11, 12, 13, 14, 15, 16},
		Instructions: 20_000,
	}
	runSweepJob(t, f.url, gridB)
	var newcomer int64 = -1
	for _, s := range f.coord.Backends() {
		if s.URL == third.URL {
			newcomer = s.Dispatched
		}
	}
	if newcomer <= 0 {
		t.Errorf("cold backend dispatched %d cells of a 24-cell fresh grid; it is not receiving its rendezvous share", newcomer)
	}

	// Warm repeat of the first grid: every cell cache-served, zero
	// backend dispatches, bytes unchanged by the membership change.
	dispatchedBefore := totalDispatched(f.coord)
	hitsBefore := f.coord.cache.Hits()
	warm := runSweepJob(t, f.url, gridA)
	if !bytes.Equal(warm.Result, cold.Result) {
		t.Error("warm repeat diverged after membership change")
	}
	if warm.Progress.CellsCached != warm.Progress.CellsTotal {
		t.Errorf("warm repeat served %d/%d cells from cache, want all",
			warm.Progress.CellsCached, warm.Progress.CellsTotal)
	}
	if d := totalDispatched(f.coord) - dispatchedBefore; d != 0 {
		t.Errorf("warm repeat performed %d backend dispatches, want 0", d)
	}
	if h := f.coord.cache.Hits() - hitsBefore; h != int64(warm.Progress.CellsTotal) {
		t.Errorf("coordinator cache hits moved by %d, want %d", h, warm.Progress.CellsTotal)
	}
}

// TestBackendsFileReload drives membership from a -backends-file: the
// initial load is synchronous, and edits (removals and additions) are
// picked up by the probe loop within an interval.
func TestBackendsFileReload(t *testing.T) {
	b1, b2 := newBackendServer(t), newBackendServer(t)
	path := filepath.Join(t.TempDir(), "backends.txt")
	write := func(s string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("# fleet roster\n" + b1.URL + "\n" + b2.URL + "\n")

	coord, err := New(Config{
		BackendsFile:   path,
		HealthInterval: 20 * time.Millisecond,
		CellTimeout:    10 * time.Second,
		HedgeDelay:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	if got := coord.fleet.size(); got != 2 {
		t.Fatalf("initial file load: %d members, want 2", got)
	}

	// A file-built fleet must actually route.
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)
	runSweepJob(t, ts.URL, server.SweepRequest{
		Workloads: []string{"loops"}, Seeds: []uint64{1, 2}, Instructions: 20_000,
	})

	waitSize := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for coord.fleet.size() != want {
			if time.Now().After(deadline) {
				t.Fatalf("fleet size %d, want %d after file edit", coord.fleet.size(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Drop b2: the file is declarative, so it drains out.
	write(b1.URL + "\n")
	waitSize(1)
	if _, ok := coord.fleet.get(mustClean(t, b2.URL)); ok {
		t.Error("removed backend still in the fleet")
	}
	if coord.backendRemoved.Load() != 1 {
		t.Errorf("backendRemoved %d, want 1", coord.backendRemoved.Load())
	}

	// Add a third member alongside b1.
	b3 := newBackendServer(t)
	write(b1.URL + "\n" + b3.URL + "  # fresh capacity\n")
	waitSize(2)
	if _, ok := coord.fleet.get(mustClean(t, b3.URL)); !ok {
		t.Error("added backend missing from the fleet")
	}
}

func mustClean(t *testing.T, raw string) string {
	t.Helper()
	_, clean, err := backendName(raw)
	if err != nil {
		t.Fatal(err)
	}
	return clean
}

// TestCoordCacheAuditCatchesPoison plants a wrong-but-parseable entry
// under one cell's content address and proves the sampled audit lane
// catches it: the hit is recomputed through a real no-cache dispatch
// and the byte comparison fails loudly.
func TestCoordCacheAuditCatchesPoison(t *testing.T) {
	f := newFleet(t, 1, func(c *Config) {
		c.AuditEvery = 1 // audit every hit: this test is about the auditor
		c.HedgeDelay = -1
	})

	// Compute seed 42 honestly so we have plausible stats bytes...
	resp, body := postJSON(t, f.url+"/v1/simulate", server.SimulateRequest{
		Workload: "loops", Instructions: 20_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", resp.StatusCode, body)
	}
	honest, ok := f.coord.cache.Get(RouteKey(rcache.CellSpec{
		Config: "z15", Workload: "loops", Seed: 42, Instructions: 20_000,
	}))
	if !ok {
		t.Fatal("computed cell not in the coordinator cache")
	}
	// ...and plant them under seed 7's address: a parseable lie.
	seed := uint64(7)
	f.coord.cache.Put(RouteKey(rcache.CellSpec{
		Config: "z15", Workload: "loops", Seed: seed, Instructions: 20_000,
	}), honest)

	// Serving seed 7 now hits the poisoned entry; AuditEvery=1 samples
	// it, the recompute dispatches for real, and the bytes diverge.
	resp, body = postJSON(t, f.url+"/v1/simulate", server.SimulateRequest{
		Workload: "loops", Seed: &seed, Instructions: 20_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poisoned simulate: status %d: %s", resp.StatusCode, body)
	}

	deadline := time.Now().Add(10 * time.Second)
	for f.coord.auditFails.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if f.coord.auditFails.Load() == 0 {
		t.Fatal("audit never flagged the poisoned entry")
	}
	if f.coord.audits.Load() == 0 {
		t.Error("audit counter did not move")
	}
}
