package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zbp/internal/jobs"
	"zbp/internal/server"
)

// fakeBackend serves /healthz like a healthy box and delegates
// everything else to misbehave.
func fakeBackend(t *testing.T, misbehave http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(server.Health{Status: "ok", Workers: 2, QueueCapacity: 16})
	})
	mux.HandleFunc("/", misbehave)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
	})
	return ts
}

// mixedFleet builds a coordinator over one real backend plus the
// given fakes, using round-robin so the fakes get primary dispatches.
func mixedFleet(t *testing.T, mut func(*Config), fakes ...*httptest.Server) *fleet {
	t.Helper()
	f := &fleet{}
	s, err := server.New(server.Config{Workers: 2, QueueDepth: 64, AuditEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	good := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		good.Close()
		s.Close()
	})
	urls := []string{good.URL}
	for _, fb := range fakes {
		urls = append(urls, fb.URL)
	}
	cfg := Config{
		Backends:       urls,
		Router:         "round-robin",
		HealthInterval: 20 * time.Millisecond,
		CellTimeout:    5 * time.Second,
		HedgeDelay:     25 * time.Millisecond,
		MaxAttempts:    6,
	}
	if mut != nil {
		mut(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	ts := httptest.NewServer(coord.Handler())
	f.url = ts.URL
	t.Cleanup(func() {
		ts.Close()
		coord.Close()
	})
	return f
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHedgeBeatsStraggler fronts a backend that accepts cells and
// never answers. Cells whose primary lands there must be rescued by
// the hedged duplicate on the healthy backend, the job must complete,
// and the hedge counters must move.
func TestHedgeBeatsStraggler(t *testing.T) {
	staller := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the HTTP/1.x server only watches for
		// client aborts (and cancels r.Context()) once the request body
		// has been consumed. A real backend decodes the body up front.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // hold the cell until the coordinator gives up
	})
	f := mixedFleet(t, nil, staller)

	st := runSweepJob(t, f.url, server.SweepRequest{
		Workloads: []string{"loops"}, Seeds: []uint64{1, 2, 3, 4, 5, 6}, Instructions: 20_000,
	})
	if st.Progress.CellsDone != 6 {
		t.Errorf("finished %d/6 cells", st.Progress.CellsDone)
	}
	if got := f.coord.hedgeLaunched.Load(); got == 0 {
		t.Error("no hedges launched against a stalling primary")
	}
	if got := f.coord.hedgeWins.Load(); got == 0 {
		t.Error("no hedge wins recorded; stalled cells should be won by duplicates")
	}
	m := metricsText(t, f.url)
	const wins = `zbpd_hedge_wins_total{service="zbpd-coordinator"} `
	if !strings.Contains(m, wins) || strings.Contains(m, wins+"0\n") {
		t.Error("zbpd_hedge_wins_total absent or zero in /metrics")
	}
}

// TestSaturatedBackendRerouted fronts a backend that 429s every cell:
// saturation must reroute (retries move) without the backend being
// branded unhealthy — a full queue is load, not sickness.
func TestSaturatedBackendRerouted(t *testing.T) {
	sat := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"job queue full, retry later"}`))
	})
	f := mixedFleet(t, nil, sat)

	st := runSweepJob(t, f.url, server.SweepRequest{
		Workloads: []string{"loops"}, Seeds: []uint64{1, 2, 3, 4}, Instructions: 20_000,
	})
	if st.Progress.CellsDone != 4 {
		t.Errorf("finished %d/4 cells", st.Progress.CellsDone)
	}
	if f.coord.retries.Load() == 0 {
		t.Error("no retries recorded; 429ed cells should reroute")
	}
	if f.coord.backendUnhealthy.Load() != 0 {
		t.Error("saturated backend was marked unhealthy")
	}
	for _, b := range f.coord.fleet.snapshot() {
		if !b.healthy.Load() {
			t.Errorf("backend %s unhealthy after mere saturation", b.name)
		}
	}
}

// TestCallerDeadlineDoesNotDentHealth pins the health-attribution
// fix: when the *caller's* request deadline expires mid-dispatch, the
// aborted attempt is the client's impatience, not backend sickness.
// Pre-fix, only context.Canceled was exempt from noteBackendFailure,
// so a short client timeout dented — and with a low threshold flipped
// — perfectly healthy backends.
func TestCallerDeadlineDoesNotDentHealth(t *testing.T) {
	slow := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // slower than the client's patience
	})
	cfg := Config{
		Backends:       []string{slow.URL},
		HealthInterval: 20 * time.Millisecond,
		HealthFailures: 1,                // one unfair dent is enough to flip
		CellTimeout:    10 * time.Second, // the attempt's own budget is generous
		HedgeDelay:     -1,
		MaxAttempts:    1,
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ts.Close()
		coord.Close()
	})

	resp, body := postJSON(t, ts.URL+"/v1/simulate", server.SimulateRequest{
		Workload: "loops", Instructions: 20_000, TimeoutMs: 150,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("impatient simulate: status %d (%s), want 504", resp.StatusCode, body)
	}
	// The aborted attempt classifies asynchronously; give it room to
	// (wrongly) dent before asserting it did not.
	time.Sleep(500 * time.Millisecond)
	if got := coord.backendUnhealthy.Load(); got != 0 {
		t.Errorf("caller-deadline expiry flipped %d backends unhealthy, want 0", got)
	}
}

// TestNoSelfHedgeOnSingleBackend pins the self-hedge fix: with one
// backend there is no "next choice", and duplicating the cell onto
// the box already running it burns a queue slot and an admission
// token for zero diversity. The hedge must simply not launch.
func TestNoSelfHedgeOnSingleBackend(t *testing.T) {
	f := newFleet(t, 1, func(c *Config) {
		c.HedgeDelay = time.Millisecond // fires long before a 300k-instruction cell finishes
		c.MaxAttempts = 4
	})
	st := runSweepJob(t, f.url, server.SweepRequest{
		Workloads: []string{"loops"}, Seeds: []uint64{1, 2}, Instructions: 300_000,
	})
	if st.Progress.CellsDone != 2 {
		t.Errorf("finished %d/2 cells", st.Progress.CellsDone)
	}
	if got := f.coord.hedgeLaunched.Load(); got != 0 {
		t.Errorf("hedged %d times on a one-backend fleet; the duplicate lands on the primary's own box", got)
	}
}

// TestDeadBackendMarkedUnhealthy fronts a backend that drops dead
// before the sweep: dispatch failures plus probe failures must flip
// it unhealthy (counter + /metrics), and the sweep completes on the
// survivor.
func TestDeadBackendMarkedUnhealthy(t *testing.T) {
	dead := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {})
	dead.CloseClientConnections()
	dead.Close() // refuses all future dials

	f := mixedFleet(t, func(c *Config) { c.HealthFailures = 2 }, dead)

	st := runSweepJob(t, f.url, server.SweepRequest{
		Workloads: []string{"loops"}, Seeds: []uint64{1, 2, 3, 4}, Instructions: 20_000,
	})
	if st.State != jobs.Done || st.Progress.CellsDone != 4 {
		t.Errorf("job %s, %d/4 cells", st.State, st.Progress.CellsDone)
	}

	// The probe loop needs a couple of intervals to cross the failure
	// threshold even if dispatch already did.
	deadline := time.Now().Add(2 * time.Second)
	for f.coord.backendUnhealthy.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if f.coord.backendUnhealthy.Load() == 0 {
		t.Fatal("dead backend never marked unhealthy")
	}
	m := metricsText(t, f.url)
	if !strings.Contains(m, `zbpd_backend_unhealthy_total{service="zbpd-coordinator"} 1`+"\n") {
		t.Error("zbpd_backend_unhealthy_total not reporting 1 in /metrics")
	}
	if !strings.Contains(m, `zbpd_coord_backends_healthy{service="zbpd-coordinator"} 1`+"\n") {
		t.Error("zbpd_coord_backends_healthy not reporting the survivor count")
	}
}
