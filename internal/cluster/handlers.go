package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"zbp/internal/jobs"
	"zbp/internal/server"
)

type errorResponse struct {
	Error string `json:"error"`
}

// writeJSON matches the single-box service's rendering (indented, two
// spaces) so sync responses are byte-compatible across the two.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (c *Coordinator) fail(w http.ResponseWriter, status int, err error) {
	c.failed.Add(1)
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decode parses a size-limited JSON body, answering 400/413 exactly
// like the single-box service so clients see one surface.
func (c *Coordinator) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			c.fail(w, http.StatusRequestEntityTooLarge, err)
		} else {
			c.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		}
		return false
	}
	return true
}

// admit charges the token bucket one token per cell. On refusal it
// writes a 429 whose Retry-After is the larger of the bucket's refill
// horizon and the fleet's estimated time-to-capacity, clamped to
// [1s, 60s] — an honest hint, not a fixed number.
func (c *Coordinator) admit(w http.ResponseWriter, cells int) bool {
	if c.bucket == nil {
		return true
	}
	ok, wait := c.bucket.take(float64(cells))
	if ok {
		return true
	}
	c.rejected.Add(1)
	secs := wait.Seconds()
	if fw := c.fleetWaitSeconds(); fw > secs {
		secs = fw
	}
	w.Header().Set("Retry-After", strconv.Itoa(clampSeconds(secs)))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "fleet admission limit reached, retry later"})
	return false
}

func clampSeconds(s float64) int {
	n := int(math.Ceil(s))
	if n < 1 {
		n = 1
	}
	if n > 60 {
		n = 60
	}
	return n
}

// requestContext bounds a sync request: client disconnect plus the
// request's own timeout, clamped to the coordinator's maximum.
func (c *Coordinator) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	timeout := c.cfg.DefaultTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
		if timeout > c.cfg.MaxTimeout {
			timeout = c.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(r.Context(), timeout)
}

// replyCellError maps a fleet-dispatch failure onto a status: the
// deadline is the client's (504), cancellation is theirs too (503),
// anything else means the fleet let us down (502).
func (c *Coordinator) replyCellError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		c.failed.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded: " + err.Error()})
	case errors.Is(err, context.Canceled):
		c.canceled.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "request canceled: " + err.Error()})
	default:
		c.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
	}
}

// --- sync endpoints ---------------------------------------------------

func (c *Coordinator) handleSimulate(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	var req server.SimulateRequest
	if !c.decode(w, r, &req) {
		return
	}
	seed, err := c.normalizeSimulate(&req)
	if err != nil {
		c.fail(w, http.StatusBadRequest, err)
		return
	}
	if !c.admit(w, 1) {
		return
	}
	ctx, cancel := c.requestContext(r, req.TimeoutMs)
	defer cancel()
	resp, _, err := c.RunSimulate(ctx, req, seed, false)
	if err != nil {
		c.replyCellError(w, err)
		return
	}
	c.completed.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	var req server.SweepRequest
	if !c.decode(w, r, &req) {
		return
	}
	cells, err := c.normalizeSweep(&req)
	if err != nil {
		c.fail(w, http.StatusBadRequest, err)
		return
	}
	if !c.admit(w, cells) {
		return
	}
	ctx, cancel := c.requestContext(r, req.TimeoutMs)
	defer cancel()
	resp, err := c.RunSweep(ctx, req, false, nil)
	if err != nil {
		c.replyCellError(w, err)
		return
	}
	c.completed.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// --- async jobs -------------------------------------------------------

// coordJobSpec is a validated, default-filled job plan.
type coordJobSpec struct {
	kind     string
	simulate server.SimulateRequest
	sweep    server.SweepRequest
	diff     server.DiffRequest
	seed     uint64
	cells    int
	noCache  bool
}

func (c *Coordinator) planJob(req *server.JobRequest) (coordJobSpec, error) {
	set := 0
	if req.Simulate != nil {
		set++
	}
	if req.Sweep != nil {
		set++
	}
	if req.Diff != nil {
		set++
	}
	if set != 1 {
		return coordJobSpec{}, fmt.Errorf("need exactly one of simulate/sweep/diff payloads, have %d", set)
	}
	spec := coordJobSpec{noCache: req.NoCache}
	switch {
	case req.Simulate != nil:
		if req.Kind != "" && req.Kind != "simulate" {
			return coordJobSpec{}, fmt.Errorf("kind %q does not match the simulate payload", req.Kind)
		}
		seed, err := c.normalizeSimulate(req.Simulate)
		if err != nil {
			return coordJobSpec{}, err
		}
		spec.kind, spec.simulate, spec.seed, spec.cells = "simulate", *req.Simulate, seed, 1
	case req.Sweep != nil:
		if req.Kind != "" && req.Kind != "sweep" {
			return coordJobSpec{}, fmt.Errorf("kind %q does not match the sweep payload", req.Kind)
		}
		cells, err := c.normalizeSweep(req.Sweep)
		if err != nil {
			return coordJobSpec{}, err
		}
		spec.kind, spec.sweep, spec.cells = "sweep", *req.Sweep, cells
	default:
		if req.Kind != "" && req.Kind != "diff" {
			return coordJobSpec{}, fmt.Errorf("kind %q does not match the diff payload", req.Kind)
		}
		seed, cells, err := c.normalizeDiff(req.Diff)
		if err != nil {
			return coordJobSpec{}, err
		}
		spec.kind, spec.diff, spec.seed, spec.cells = "diff", *req.Diff, seed, cells
	}
	return spec, nil
}

func (c *Coordinator) normalizeDiff(req *server.DiffRequest) (uint64, int, error) {
	if len(req.Configs) == 0 {
		req.Configs = []string{"z15"}
	}
	seed := uint64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	if req.Instructions == 0 {
		req.Instructions = c.cfg.DefaultInstructions
	}
	if req.Instructions < 0 || req.Instructions > c.cfg.MaxInstructions {
		return 0, 0, fmt.Errorf("instructions %d out of range [1, %d]", req.Instructions, c.cfg.MaxInstructions)
	}
	cells := len(req.Configs) * len(req.Workloads)
	if cells == 0 {
		return 0, 0, errors.New("empty diff grid: need workloads")
	}
	if cells > c.cfg.MaxSweepCells {
		return 0, 0, fmt.Errorf("diff grid has %d cells, limit %d", cells, c.cfg.MaxSweepCells)
	}
	if err := validateWorkloads(req.Workloads...); err != nil {
		return 0, 0, err
	}
	return seed, cells, nil
}

func (c *Coordinator) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	if c.baseCtx.Err() != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "coordinator shutting down"})
		return
	}
	var req server.JobRequest
	if !c.decode(w, r, &req) {
		return
	}
	spec, err := c.planJob(&req)
	if err != nil {
		c.fail(w, http.StatusBadRequest, err)
		return
	}
	if !c.admit(w, spec.cells) {
		return
	}
	j, err := c.jobs.Create(spec.kind, spec.cells)
	if err != nil {
		c.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(clampSeconds(c.fleetWaitSeconds())))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "job table full, retry later"})
		return
	}
	c.jobsSubmitted.Add(1)

	timeout := c.cfg.MaxTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > c.cfg.MaxTimeout {
			timeout = c.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(c.baseCtx, timeout)
	j.SetCancel(cancel)
	c.wg.Add(1)
	go c.runJob(ctx, cancel, j, spec)

	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusCreated, j.Snapshot())
}

func (c *Coordinator) handleJobGet(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	j, ok := c.jobs.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job (unknown ID or evicted after TTL)"})
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (c *Coordinator) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	j, ok := c.jobs.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job (unknown ID or evicted after TTL)"})
		return
	}
	j.Cancel(c.cfg.now(), "canceled by client")
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleJobEvents streams history-then-live JSONL exactly like the
// single-box service: pull-based cursor reads, no lock held across a
// network write, park on a capacity-1 notify channel.
func (c *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	j, ok := c.jobs.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job (unknown ID or evicted after TTL)"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ch := j.Subscribe()
	defer j.Unsubscribe(ch)
	cursor := 0
	for {
		lines, terminal := j.EventsSince(cursor)
		cursor += len(lines)
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n")); err != nil {
				return
			}
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// --- job execution ----------------------------------------------------

func (c *Coordinator) runJob(ctx context.Context, cancel context.CancelFunc, j *jobs.Job, spec coordJobSpec) {
	defer c.wg.Done()
	defer cancel()
	if !j.Start(c.cfg.now()) {
		return
	}
	var (
		result []byte
		err    error
	)
	switch spec.kind {
	case "simulate":
		result, err = c.runSimulateJob(ctx, j, spec)
	case "sweep":
		result, err = c.runSweepJob(ctx, j, spec)
	case "diff":
		result, err = c.runDiffJob(ctx, j, spec)
	default:
		err = fmt.Errorf("unknown job kind %q", spec.kind)
	}
	if err != nil {
		c.finishJob(j, err)
		return
	}
	c.completed.Add(1)
	j.Finish(c.cfg.now(), jobs.Done, "", result)
}

func (c *Coordinator) finishJob(j *jobs.Job, err error) {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		c.canceled.Add(1)
		j.Finish(c.cfg.now(), jobs.Canceled, err.Error(), nil)
	default:
		c.failed.Add(1)
		j.Finish(c.cfg.now(), jobs.Failed, err.Error(), nil)
	}
}

func (c *Coordinator) runSimulateJob(ctx context.Context, j *jobs.Job, spec coordJobSpec) ([]byte, error) {
	resp, out, err := c.RunSimulate(ctx, spec.simulate, spec.seed, spec.noCache)
	if err != nil {
		return nil, err
	}
	j.CellDone(out.cached)
	j.Publish(CellEvent{
		Type: "cell", Index: 0, Done: 1, Total: 1,
		Config: resp.Config, Workload: resp.Workload, Workload2: resp.Workload2,
		Seed: resp.Seed, Cached: out.cached, Backend: out.backend, Hedged: out.hedged,
		Instructions: resp.Instructions, Cycles: resp.Cycles,
		MPKI: resp.MPKI, IPC: resp.IPC, Accuracy: resp.Accuracy,
		RunSecondsEWMA: c.fleetEWMASeconds(),
	})
	return json.Marshal(resp)
}

func (c *Coordinator) runSweepJob(ctx context.Context, j *jobs.Job, spec coordJobSpec) ([]byte, error) {
	resp, err := c.RunSweep(ctx, spec.sweep, spec.noCache, func(ev CellEvent) {
		if ev.Error == "" {
			j.CellDone(ev.Cached)
		}
		j.Publish(ev)
	})
	if err != nil {
		return nil, err
	}
	// Compact marshal: byte-identical to the single-box job result.
	return json.Marshal(resp)
}

// DiffCellEvent mirrors the single-box diff_cell progress line.
type DiffCellEvent struct {
	Type     string `json:"type"` // "diff_cell"
	Index    int    `json:"index"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Config   string `json:"config"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Checks   int    `json:"checks"`
	OK       bool   `json:"ok"`
	Findings int    `json:"findings"`
	Error    string `json:"error,omitempty"`
}

// runDiffJob forwards the diff grid to one backend as a sync request
// — the differential harness recomputes on purpose, so there is
// nothing to shard or cache — retrying on the next backend if the
// chosen one fails.
func (c *Coordinator) runDiffJob(ctx context.Context, j *jobs.Job, spec coordJobSpec) ([]byte, error) {
	req := spec.diff
	// The job's ctx is the real deadline; give the backend's own sync
	// clamp as much room as it allows.
	req.TimeoutMs = int(c.cfg.MaxTimeout / time.Millisecond)
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	cands := c.candidates(c.fleet.snapshot())
	if len(cands) == 0 {
		return nil, errors.New("no backends available")
	}
	start := int(c.rr.Add(1) - 1)
	var lastErr error
	for k := range cands {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		b := cands[(start+k)%len(cands)]
		resp, permanent, ferr := c.forwardDiff(ctx, b, body)
		if ferr != nil {
			lastErr = ferr
			if permanent {
				return nil, ferr
			}
			continue
		}
		for i, dc := range resp.Cells {
			j.CellDone(false)
			j.Publish(DiffCellEvent{
				Type: "diff_cell", Index: i, Done: i + 1, Total: len(resp.Cells),
				Config: dc.Config, Workload: dc.Workload, Seed: dc.Seed,
				Checks: dc.Checks, OK: dc.OK, Findings: len(dc.Findings), Error: dc.Error,
			})
		}
		return json.Marshal(resp)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return nil, fmt.Errorf("diff failed on every backend: %w", lastErr)
}

func (c *Coordinator) forwardDiff(ctx context.Context, b *backend, body []byte) (*server.DiffResponse, bool, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/diff", bytes.NewReader(body))
	if err != nil {
		return nil, true, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		if ctx.Err() == nil {
			c.noteBackendFailure(b)
		}
		return nil, false, fmt.Errorf("backend %s: %w", b.name, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		c.noteBackendSuccess(b)
		var dr server.DiffResponse
		if derr := json.NewDecoder(io.LimitReader(resp.Body, maxCellResponseBytes)).Decode(&dr); derr != nil {
			return nil, false, fmt.Errorf("backend %s: undecodable diff response: %w", b.name, derr)
		}
		return &dr, false, nil
	case resp.StatusCode == http.StatusBadRequest:
		return nil, true, fmt.Errorf("backend %s rejected diff: %s", b.name, readError(resp.Body))
	default:
		c.noteBackendFailure(b)
		return nil, false, fmt.Errorf("backend %s: %s: %s", b.name, resp.Status, readError(resp.Body))
	}
}

// --- introspection ----------------------------------------------------

// HealthResponse is the coordinator's GET /healthz body: its own role
// plus one row per backend with the last scraped load snapshot.
// Version is the membership generation (bumps on every join/leave).
type HealthResponse struct {
	Status   string          `json:"status"`
	Role     string          `json:"role"`
	Router   string          `json:"router"`
	Version  int64           `json:"version"`
	Backends []BackendStatus `json:"backends"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status: "ok", Role: "coordinator", Router: c.router.name(),
		Version: c.fleet.generation(),
	}
	for _, b := range c.fleet.snapshot() {
		resp.Backends = append(resp.Backends, b.status())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := c.reg.Snapshot().WritePrometheus(w); err != nil {
		return
	}
}
