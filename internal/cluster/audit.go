package cluster

import (
	"bytes"
	"context"
	"log"

	"zbp/internal/rcache"
)

// Coordinator cache auditor. The coordinator-side result cache serves
// repeat cells without touching a backend, which is exactly why it
// must be audited: a poisoned entry would otherwise be invisible
// forever. Every AuditEvery'th cache hit is handed to a single
// background goroutine that re-resolves the cell through a real
// no-cache dispatch — the fleet recomputes it from scratch — and
// byte-compares the canonical stats JSON against what the cache
// served. Divergence lands in zbpd_coord_cache_audit_failures_total
// and the log. This is the fleet-level twin of the single box's
// equiv-backed cache auditor (internal/server/audit.go); determinism
// down to identical bytes is what makes the comparison exact.

// coordAuditTask carries one sampled coordinator cache hit.
type coordAuditTask struct {
	key   rcache.Key
	spec  rcache.CellSpec
	stats []byte
}

// maybeAudit samples cache hits into the audit queue. The send is
// non-blocking: auditing is a watchdog, not a gate, so when the
// auditor is saturated the sample is dropped (and counted) rather
// than stalling the serving path.
func (c *Coordinator) maybeAudit(key rcache.Key, spec rcache.CellSpec, stats []byte) {
	if c.auditCh == nil {
		return
	}
	n := c.auditHits.Add(1)
	if n%int64(c.cfg.AuditEvery) != 0 {
		return
	}
	select {
	case c.auditCh <- coordAuditTask{key: key, spec: spec, stats: stats}:
	default:
		c.auditDropped.Add(1)
	}
}

// auditLoop drains sampled hits until the coordinator closes. One
// goroutine, deliberately: each audit is a full fleet recompute, and
// a single lane bounds how much backend capacity verification can
// steal from real traffic.
func (c *Coordinator) auditLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case t := <-c.auditCh:
			c.runAudit(t)
		}
	}
}

// runAudit re-resolves one sampled hit through the fleet (no_cache
// all the way down, so the backend simulates rather than answering
// from its own cache) and records the verdict.
func (c *Coordinator) runAudit(t coordAuditTask) {
	c.audits.Add(1)
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.CellTimeout)
	defer cancel()
	out, err := c.dispatchCell(ctx, c.fleet.snapshot(), t.spec, true)
	if err != nil {
		if c.baseCtx.Err() != nil {
			// Shutdown interrupted the recompute; not an audit error.
			c.audits.Add(-1)
			return
		}
		c.auditErrors.Add(1)
		log.Printf("coord cache audit error: key %s: %v", t.key.Hash(), err)
		return
	}
	if !bytes.Equal(out.stats, t.stats) {
		c.auditFails.Add(1)
		log.Printf("COORD CACHE AUDIT FAILURE: key %s: cached stats diverge from recompute (cfg=%s wl=%s seed=%d n=%d)",
			t.key.Hash(), t.spec.Config, t.spec.Workload, t.spec.Seed, t.spec.Instructions)
	}
}
