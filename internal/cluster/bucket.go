package cluster

import (
	"sync"
	"time"
)

// bucket is a token bucket charging one token per grid cell at
// admission time, so a burst of huge sweeps degrades into 429s with
// honest Retry-After hints instead of an unbounded dispatch pile-up.
// The clock is injected so tests drive refill deterministically.
type bucket struct {
	mu       sync.Mutex
	tokens   float64
	capacity float64
	rate     float64 // tokens per second
	last     time.Time
	now      func() time.Time
}

func newBucket(rate, capacity float64, now func() time.Time) *bucket {
	return &bucket{tokens: capacity, capacity: capacity, rate: rate, last: now(), now: now}
}

// take attempts to spend n tokens. On refusal it returns how long
// until the bucket could cover n (capped at the time to fill from
// empty), which becomes the Retry-After hint.
func (b *bucket) take(n float64) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	missing := n - b.tokens
	if missing > b.capacity {
		missing = b.capacity
	}
	return false, time.Duration(missing / b.rate * float64(time.Second))
}

// available returns the current token count (for the admission gauge).
func (b *bucket) available() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens
}

func (b *bucket) refillLocked() {
	now := b.now()
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens += dt * b.rate
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
}
