package sim

import (
	"context"
	"testing"

	"zbp/internal/core"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// TestBadPredictionPurge pins the fix for an SMT2 live-lock on the
// pre-z15 configurations: a partial-tag bad prediction invalidated
// only in the BTB1 was re-staged by the BTB2 miss-run backfill on the
// next restart, so the front end looped bad-predict -> restart ->
// backfill at the same address forever. zEC12/lspr-small at seeds
// 1234/1235 reproduced it deterministically; the purge in
// core.BadPrediction (BTB1 + BTBP + BTB2 + staging queue + write
// queue) must let the run complete.
func TestBadPredictionPurge(t *testing.T) {
	p1, err := workload.MakePacked("lspr-small", 1234, 20000)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := workload.MakePacked("lspr-small", 1235, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, gen := range core.Generations() {
		cfg := ForGeneration(gen)
		t.Run(gen.Name, func(t *testing.T) {
			ca, cb := p1.Cursor(), p2.Cursor()
			res, err := New(cfg, []trace.Source{&ca, &cb}).RunCtx(context.Background(), 0)
			if err != nil {
				t.Fatalf("SMT2 run failed: %v", err)
			}
			if got, want := res.Instructions(), int64(40000); got != want {
				t.Fatalf("retired %d instructions, want %d", got, want)
			}
		})
	}
}
