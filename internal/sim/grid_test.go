package sim

import (
	"testing"

	"zbp/internal/core"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// TestGridAllConfigsAllWorkloads is the broad integration net: every
// generation preset runs every workload and must retire all
// instructions with sane metrics. A hang, panic or metric blow-up
// anywhere in the stack fails here.
func TestGridAllConfigsAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is slow")
	}
	const n = 25000
	for _, gen := range core.Generations() {
		for _, name := range workload.Names() {
			gen, name := gen, name
			t.Run(gen.Name+"/"+name, func(t *testing.T) {
				src, err := workload.Make(name, 11)
				if err != nil {
					t.Fatal(err)
				}
				res := RunWorkload(ForGeneration(gen), src, n)
				if res.Instructions() < n-1000 {
					t.Fatalf("retired %d of %d", res.Instructions(), n)
				}
				if res.IPC() <= 0.05 || res.IPC() > 8 {
					t.Errorf("implausible IPC %.3f", res.IPC())
				}
				if res.MPKI() < 0 || res.MPKI() > 250 {
					t.Errorf("implausible MPKI %.1f", res.MPKI())
				}
				if res.Accuracy() < 0.3 {
					t.Errorf("implausible accuracy %.3f", res.Accuracy())
				}
				// Dynamic predictions must reconcile: correct + wrong = total.
				th := res.Threads[0]
				if th.DynCorrect+th.DynWrongDir+th.DynWrongTarget != th.DynamicPredicted {
					t.Errorf("dynamic accounting broken: %d+%d+%d != %d",
						th.DynCorrect, th.DynWrongDir, th.DynWrongTarget, th.DynamicPredicted)
				}
				// Branch accounting: every branch was dynamic or surprise.
				if th.DynamicPredicted+th.Surprises != th.Branches {
					t.Errorf("branch accounting broken: %d+%d != %d",
						th.DynamicPredicted, th.Surprises, th.Branches)
				}
			})
		}
	}
}

// TestGridSMT2Pairs runs heterogeneous SMT2 pairs on every generation.
func TestGridSMT2Pairs(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is slow")
	}
	const n = 20000
	pairs := [][2]string{{"loops", "micro"}, {"lspr-small", "indirect"}, {"btree", "interp"}}
	for _, gen := range core.Generations() {
		for _, pair := range pairs {
			gen, pair := gen, pair
			t.Run(gen.Name+"/"+pair[0]+"+"+pair[1], func(t *testing.T) {
				a, _ := workload.Make(pair[0], 5)
				b, _ := workload.Make(pair[1], 6)
				res := New(ForGeneration(gen), []trace.Source{
					trace.Limit(a, n), trace.Limit(b, n),
				}).Run(0)
				for i, th := range res.Threads {
					if th.Instructions < n-1000 {
						t.Fatalf("thread %d retired %d of %d", i, th.Instructions, n)
					}
				}
			})
		}
	}
}

// TestInterpreterCTBLearnsDispatch: the bytecode dispatch is periodic,
// so the target unit must cover most of its executions.
func TestInterpreterCTBLearnsDispatch(t *testing.T) {
	src, _ := workload.Make("interp", 3)
	res := RunWorkload(Z15(), src, 400000)
	th := res.Threads[0]
	ctbWrongRate := float64(th.TgtWrong[1]) / float64(max64(th.TgtProvided[1], 1))
	if th.TgtProvided[1] < 1000 {
		t.Errorf("CTB provided only %d dispatch targets", th.TgtProvided[1])
	}
	if ctbWrongRate > 0.5 {
		t.Errorf("CTB wrong rate %.2f on a periodic dispatch", ctbWrongRate)
	}
	if res.Accuracy() < 0.8 {
		t.Errorf("interp accuracy %.3f", res.Accuracy())
	}
}

// TestBTreeHardBranchesBoundAccuracy: six 50/50 compares per lookup are
// irreducible; everything else should be predicted, so accuracy lands
// in a band.
func TestBTreeHardBranchesBoundAccuracy(t *testing.T) {
	src, _ := workload.Make("btree", 3)
	res := RunWorkload(Z15(), src, 400000)
	if acc := res.Accuracy(); acc < 0.55 || acc > 0.92 {
		t.Errorf("btree accuracy %.3f outside the bimodal band", acc)
	}
	// The CRS must cover the leaf-call returns.
	if res.Tgt.ReturnsMarked == 0 {
		t.Error("no returns detected in btree")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
