package sim_test

import (
	"context"
	"testing"

	"zbp/internal/core"
	"zbp/internal/runner"
	"zbp/internal/sim"
	"zbp/internal/workload"
)

// TestGridAllConfigsAllWorkloads is the broad integration net: every
// generation preset runs every workload and must retire all
// instructions with sane metrics. A hang, panic or metric blow-up
// anywhere in the stack fails here. The full grid is fanned out
// through the runner pool, so wall-clock scales with cores; this file
// is an external test package (sim_test) because runner imports sim.
func TestGridAllConfigsAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is slow")
	}
	const n = 25000
	type cell struct{ gen, name string }
	var cells []cell
	var jobs []runner.Job
	for _, gen := range core.Generations() {
		for _, name := range workload.Names() {
			cells = append(cells, cell{gen.Name, name})
			jobs = append(jobs, runner.Job{
				Name:         gen.Name + "/" + name,
				Config:       sim.ForGeneration(gen),
				Source:       runner.Workload(name, 11),
				Instructions: n,
			})
		}
	}
	for i, r := range runner.Run(context.Background(), jobs) {
		res, c := r.Res, cells[i]
		t.Run(c.gen+"/"+c.name, func(t *testing.T) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if res.Instructions() < n-1000 {
				t.Fatalf("retired %d of %d", res.Instructions(), n)
			}
			if res.IPC() <= 0.05 || res.IPC() > 8 {
				t.Errorf("implausible IPC %.3f", res.IPC())
			}
			if res.MPKI() < 0 || res.MPKI() > 250 {
				t.Errorf("implausible MPKI %.1f", res.MPKI())
			}
			if res.Accuracy() < 0.3 {
				t.Errorf("implausible accuracy %.3f", res.Accuracy())
			}
			// Dynamic predictions must reconcile: correct + wrong = total.
			th := res.Threads[0]
			if th.DynCorrect+th.DynWrongDir+th.DynWrongTarget != th.DynamicPredicted {
				t.Errorf("dynamic accounting broken: %d+%d+%d != %d",
					th.DynCorrect, th.DynWrongDir, th.DynWrongTarget, th.DynamicPredicted)
			}
			// Branch accounting: every branch was dynamic or surprise.
			if th.DynamicPredicted+th.Surprises != th.Branches {
				t.Errorf("branch accounting broken: %d+%d != %d",
					th.DynamicPredicted, th.Surprises, th.Branches)
			}
		})
	}
}

// TestGridSMT2Pairs runs heterogeneous SMT2 pairs on every generation,
// batched through the runner pool.
func TestGridSMT2Pairs(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is slow")
	}
	const n = 20000
	pairs := [][2]string{{"loops", "micro"}, {"lspr-small", "indirect"}, {"btree", "interp"}}
	var names []string
	var jobs []runner.Job
	for _, gen := range core.Generations() {
		for _, pair := range pairs {
			names = append(names, gen.Name+"/"+pair[0]+"+"+pair[1])
			jobs = append(jobs, runner.Job{
				Name:         pair[0] + "+" + pair[1],
				Config:       sim.ForGeneration(gen),
				Source:       runner.SMT2(pair[0], 5, pair[1], 6),
				Instructions: n,
			})
		}
	}
	for i, r := range runner.Run(context.Background(), jobs) {
		r := r
		t.Run(names[i], func(t *testing.T) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			for j, th := range r.Res.Threads {
				if th.Instructions < n-1000 {
					t.Fatalf("thread %d retired %d of %d", j, th.Instructions, n)
				}
			}
		})
	}
}

// TestInterpreterCTBLearnsDispatch: the bytecode dispatch is periodic,
// so the target unit must cover most of its executions.
func TestInterpreterCTBLearnsDispatch(t *testing.T) {
	src, _ := workload.Make("interp", 3)
	res := sim.RunWorkload(sim.Z15(), src, 400000)
	th := res.Threads[0]
	ctbWrongRate := float64(th.TgtWrong[1]) / float64(max64(th.TgtProvided[1], 1))
	if th.TgtProvided[1] < 1000 {
		t.Errorf("CTB provided only %d dispatch targets", th.TgtProvided[1])
	}
	if ctbWrongRate > 0.5 {
		t.Errorf("CTB wrong rate %.2f on a periodic dispatch", ctbWrongRate)
	}
	if res.Accuracy() < 0.8 {
		t.Errorf("interp accuracy %.3f", res.Accuracy())
	}
}

// TestBTreeHardBranchesBoundAccuracy: six 50/50 compares per lookup are
// irreducible; everything else should be predicted, so accuracy lands
// in a band.
func TestBTreeHardBranchesBoundAccuracy(t *testing.T) {
	src, _ := workload.Make("btree", 3)
	res := sim.RunWorkload(sim.Z15(), src, 400000)
	if acc := res.Accuracy(); acc < 0.55 || acc > 0.92 {
		t.Errorf("btree accuracy %.3f outside the bimodal band", acc)
	}
	// The CRS must cover the leaf-call returns.
	if res.Tgt.ReturnsMarked == 0 {
		t.Error("no returns detected in btree")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
