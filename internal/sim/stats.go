package sim

import (
	"fmt"
	"io"

	"zbp/internal/metrics"
)

// Register exposes every counter, histogram and derived gauge of the
// result in reg, under the same names the live Sim.Registry uses. The
// receiver must outlive the registry: counters are registered by
// pointer into the result's own stats structs.
//
// This is the machine-readable export path: the text reports in
// cmd/zsim and internal/exp are renderers over the same counters, and
// the golden-run harness diffs the serialized snapshot.
func (r *Result) Register(reg *metrics.Registry) {
	reg.Label("config", r.Name)
	reg.Counter("sim.cycles", &r.Cycles)
	r.Core.Register(reg, "core")
	r.BTB1.Register(reg, "btb1")
	r.BTB2.Register(reg, "btb2")
	r.Dir.Register(reg, "dir")
	r.Tgt.Register(reg, "tgt")
	r.CPred.Register(reg, "cpred")
	r.IC.Register(reg, "icache")
	for i := range r.Threads {
		r.Threads[i].Register(reg, fmt.Sprintf("thread%d", i))
	}
	reg.Gauge("sim.instructions", func() float64 { return float64(r.Instructions()) })
	reg.Gauge("sim.branches", func() float64 { return float64(r.Branches()) })
	reg.Gauge("sim.mispredicts", func() float64 { return float64(r.Mispredicts()) })
	reg.Gauge("sim.mpki", r.MPKI)
	reg.Gauge("sim.ipc", r.IPC)
	reg.Gauge("sim.accuracy", r.Accuracy)
}

// StatsSnapshot captures the result's full metric set as a
// deterministic, schema-versioned snapshot. Identical results always
// serialize byte-identically (sorted keys, integer counters,
// shortest-round-trip floats), so snapshots can be diffed in CI.
func (r *Result) StatsSnapshot() metrics.Snapshot {
	reg := metrics.NewRegistry()
	r.Register(reg)
	return reg.Snapshot()
}

// WriteStatsJSON writes the canonical stats-JSON form of the result
// (the `zsim -stats-json` payload) to w.
func (r *Result) WriteStatsJSON(w io.Writer) error {
	return r.StatsSnapshot().WriteJSON(w)
}

// StatsJSON returns the canonical stats-JSON bytes of the result.
func (r *Result) StatsJSON() ([]byte, error) {
	return r.StatsSnapshot().MarshalIndent()
}
