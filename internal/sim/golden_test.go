package sim_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"zbp/internal/core"
	"zbp/internal/metrics"
	"zbp/internal/runner"
	"zbp/internal/sim"
)

// update rewrites the golden stats files instead of comparing:
//
//	go test ./internal/sim -run Golden -update
//
// Review the resulting diff like any other code change — every drifted
// counter is a behavior change in the model.
var update = flag.Bool("update", false, "rewrite golden stats files")

// goldenRuns pins the regression matrix: every generational preset
// over the headline workload at a fixed seed and scale. Small enough
// to run in the ordinary test suite, broad enough that any change to
// MPKI, provider shares, restart accounting or cache behavior moves at
// least one counter.
const (
	goldenSeed     = 42
	goldenScale    = 150_000
	goldenWorkload = "lspr"
)

func goldenJobs() []runner.Job {
	var jobs []runner.Job
	for _, gen := range core.Generations() {
		jobs = append(jobs, runner.Job{
			Name:         gen.Name,
			Config:       sim.ForGeneration(gen),
			Source:       runner.Workload(goldenWorkload, goldenSeed),
			Instructions: goldenScale,
		})
	}
	return jobs
}

// TestGoldenStats replays the pinned matrix and compares each run's
// serialized stats snapshot byte-for-byte against the checked-in
// golden. A mismatch means predictor behavior drifted: either fix the
// regression or, for an intentional change, re-run with -update and
// commit the new goldens alongside the change that caused them.
func TestGoldenStats(t *testing.T) {
	results := runner.Results(runner.Run(context.Background(), goldenJobs()))
	for i := range results {
		res := results[i]
		t.Run(res.Name, func(t *testing.T) {
			got, err := res.StatsJSON()
			if err != nil {
				t.Fatalf("serializing stats: %v", err)
			}
			path := filepath.Join("testdata", "golden",
				fmt.Sprintf("%s-%s.json", res.Name, goldenWorkload))
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if string(got) == string(want) {
				return
			}
			// Byte mismatch: decode both and report per-metric diffs so
			// the failure names the drifted counters, not a wall of JSON.
			var gotSnap, wantSnap metrics.Snapshot
			if err := unmarshalSnapshot(got, &gotSnap); err != nil {
				t.Fatalf("decoding new snapshot: %v", err)
			}
			if err := unmarshalSnapshot(want, &wantSnap); err != nil {
				t.Fatalf("decoding golden snapshot: %v", err)
			}
			diffs := metrics.DiffSnapshots(wantSnap, gotSnap)
			if len(diffs) == 0 {
				t.Fatalf("stats JSON bytes differ but decode equal; non-canonical golden? re-run with -update")
			}
			max := 25
			if len(diffs) < max {
				max = len(diffs)
			}
			for _, d := range diffs[:max] {
				t.Errorf("drift (golden != current): %s", d)
			}
			if len(diffs) > max {
				t.Errorf("... and %d more drifted metrics", len(diffs)-max)
			}
			t.Errorf("%d metric(s) drifted from %s; if intentional, refresh with: go test ./internal/sim -run Golden -update", len(diffs), path)
		})
	}
}

func unmarshalSnapshot(b []byte, s *metrics.Snapshot) error {
	return json.Unmarshal(b, s)
}

// TestGoldenDeterminism guards the property the golden harness depends
// on: re-running the same job yields byte-identical stats JSON.
func TestGoldenDeterminism(t *testing.T) {
	job := goldenJobs()[0]
	a := runner.Results(runner.Run(context.Background(), []runner.Job{job}))[0]
	b := runner.Results(runner.Run(context.Background(), []runner.Job{job}))[0]
	aj, err := a.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatal("identical jobs serialized differently")
	}
}
