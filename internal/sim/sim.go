// Package sim drives whole-predictor simulations: it wires the
// lookahead predictor core, the front-end consumption model and the
// I-cache hierarchy together, runs instruction traces through them in
// single-thread or SMT2 mode, and collects the metrics the paper's
// experiments report (MPKI, provider shares, restart stalls, prefetch
// effect, pipeline periods).
package sim

import (
	"context"
	"errors"
	"fmt"

	"zbp/internal/btb"
	"zbp/internal/core"
	"zbp/internal/cpred"
	"zbp/internal/dirpred"
	"zbp/internal/frontend"
	"zbp/internal/icache"
	"zbp/internal/metrics"
	"zbp/internal/tgt"
	"zbp/internal/trace"
	"zbp/internal/zarch"
)

// Config assembles one simulation setup.
type Config struct {
	Core  core.Config
	Front frontend.Config
	// ICache enables the instruction-cache model; nil disables it (all
	// fetches hit).
	ICache *icache.Config
	// Prefetch wires BPL searches into the I-cache (the §IV lookahead
	// prefetch). Ignored without an I-cache.
	Prefetch bool
}

// Z15 returns a full z15 simulation config.
func Z15() Config {
	ic := icache.Z15()
	return Config{Core: core.Z15(), Front: frontend.DefaultConfig(), ICache: &ic, Prefetch: true}
}

// ForGeneration returns a full simulation config for a generational
// core preset, pairing it with the matching cache hierarchy.
func ForGeneration(c core.Config) Config {
	var ic icache.Config
	switch c.Name {
	case "z15":
		ic = icache.Z15()
	case "z14":
		ic = icache.Z14()
	case "z13":
		ic = icache.Z13()
	default:
		ic = icache.ZEC12()
	}
	return Config{Core: c, Front: frontend.DefaultConfig(), ICache: &ic, Prefetch: true}
}

// Result aggregates everything a run produced.
type Result struct {
	Name string
	// Truncated reports that the run stopped before every thread's
	// trace was exhausted: the maxCycles budget expired or the run's
	// context was canceled. A truncated result is a valid snapshot of
	// the work done so far, but its headline metrics describe a prefix
	// of the workload, not the whole trace.
	Truncated bool
	// FastCore reports that the run executed on the specialized
	// replay loop (no EventSink attached) rather than the
	// instrumented one. Diagnostic only: like Truncated it is
	// deliberately absent from the stats JSON schema, because fast
	// and instrumented runs of the same workload must stay
	// byte-identical (enforced by the fast-vs-instrumented equiv
	// pair).
	FastCore bool
	Cycles    int64
	Threads   []frontend.Stats
	Core      core.Stats
	BTB1      btb.Stats
	BTB2      btb.Stats
	Dir       dirpred.Stats
	Tgt       tgt.Stats
	CPred     cpred.Stats
	IC        icache.Stats
}

// Instructions returns total retired instructions across threads.
func (r Result) Instructions() int64 {
	var n int64
	for _, t := range r.Threads {
		n += t.Instructions
	}
	return n
}

// Branches returns total retired branches.
func (r Result) Branches() int64 {
	var n int64
	for _, t := range r.Threads {
		n += t.Branches
	}
	return n
}

// Mispredicts returns total mispredicted branches.
func (r Result) Mispredicts() int64 {
	var n int64
	for _, t := range r.Threads {
		n += t.Mispredicts()
	}
	return n
}

// MPKI returns mispredicts per thousand instructions across threads.
func (r Result) MPKI() float64 {
	if r.Instructions() == 0 {
		return 0
	}
	return float64(r.Mispredicts()) / float64(r.Instructions()) * 1000
}

// IPC returns aggregate instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions()) / float64(r.Cycles)
}

// Accuracy returns the fraction of branches predicted correctly
// (dynamic and static). A branch-free trace has zero mispredicts, so
// its accuracy is 1, not 0.
func (r Result) Accuracy() float64 {
	b := r.Branches()
	if b == 0 {
		return 1
	}
	return 1 - float64(r.Mispredicts())/float64(b)
}

// Sim is one wired-up simulation.
type Sim struct {
	cfg     Config
	core    *core.Core
	ic      *icache.Hierarchy
	threads []*frontend.Thread
	// instrumented pins Run/RunCtx to the instrumented cycle loop.
	// SetEventSink sets it (event hooks need the hook-dispatching
	// loop's pacing guarantees observable per cycle); tests force it
	// via ForceInstrumentedCore to prove both loops byte-identical.
	instrumented bool
}

// New builds a simulation over one source per thread (1 = single
// thread, 2 = SMT2). Bound the sources with trace.Limit to control run
// length.
func New(cfg Config, srcs []trace.Source) *Sim {
	if len(srcs) < 1 || len(srcs) > core.MaxThreads {
		panic(fmt.Sprintf("sim: need 1..%d sources, got %d", core.MaxThreads, len(srcs)))
	}
	s := &Sim{cfg: cfg, core: core.New(cfg.Core), threads: make([]*frontend.Thread, 0, len(srcs))}
	if cfg.ICache != nil {
		s.ic = icache.New(*cfg.ICache)
		if cfg.Prefetch {
			ic := s.ic
			c := s.core
			c.SetSearchHook(func(t int, line zarch.Addr) {
				ic.Prefetch(line, c.Clock())
			})
		}
	}
	for i, src := range srcs {
		s.threads = append(s.threads, frontend.NewThread(cfg.Front, i, s.core, s.ic, src))
	}
	return s
}

// Core exposes the predictor for white-box verification.
func (s *Sim) Core() *core.Core { return s.core }

// Registry builds a live metrics registry over the wired simulation:
// every component's counters and histograms by reference (readable
// mid-run or after Run), occupancy gauges, and the derived headline
// gauges. Post-run exports normally go through Result.StatsSnapshot,
// which uses the same metric names; the live registry adds mid-run
// observability on top.
func (s *Sim) Registry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Label("config", s.cfg.Core.Name)
	s.core.RegisterMetrics(reg)
	for i, t := range s.threads {
		t.RegisterMetrics(reg, fmt.Sprintf("thread%d", i))
	}
	if s.ic != nil {
		s.ic.RegisterMetrics(reg, "icache")
	}
	reg.Gauge("sim.instructions", func() float64 {
		var n int64
		for _, t := range s.threads {
			n += t.Stats().Instructions
		}
		return float64(n)
	})
	reg.Gauge("sim.mpki", func() float64 {
		var instr, miss int64
		for _, t := range s.threads {
			st := t.Stats()
			instr += st.Instructions
			miss += st.Mispredicts()
		}
		if instr == 0 {
			return 0
		}
		return float64(miss) / float64(instr) * 1000
	})
	return reg
}

// ErrLiveLock reports that a run made no forward progress (no
// instruction retired) for liveLockWindow cycles, which indicates a
// model bug rather than a recoverable condition.
var ErrLiveLock = errors.New("sim: live-lock, no instruction retired")

// liveLockWindow is the no-progress cycle budget before a run is
// declared live-locked.
const liveLockWindow = 200000

// ctxCheckMask throttles context polling in the cycle loop: the run
// context is checked whenever clock&ctxCheckMask == 0, i.e. every 4096
// cycles (a few microseconds of wall clock), so cancellation is prompt
// without a per-cycle channel operation.
const ctxCheckMask = 4096 - 1

// RunCtx executes until every thread's trace is exhausted, maxCycles
// elapses (0 = no bound), or ctx is canceled. It is the error-returning
// path long-running processes use:
//
//   - trace exhausted: (complete result, nil)
//   - maxCycles expired: (partial result with Truncated set, nil)
//   - ctx canceled: (partial result with Truncated set, ctx.Err())
//   - live-lock: (partial result with Truncated set, ErrLiveLock)
//
// Cancellation is cooperative — the context is polled every 4096
// cycles — so a canceled simulation stops within microseconds without
// leaking its goroutine.
//
// RunCtx selects the execution core automatically: with no EventSink
// attached it runs the specialized fast loop (see fast.go); attaching
// a sink falls back to this instrumented loop. Both produce
// byte-identical results — the choice is purely a throughput
// optimization, marked on Result.FastCore.
func (s *Sim) RunCtx(ctx context.Context, maxCycles int64) (Result, error) {
	if !s.instrumented {
		return s.runFast(ctx, maxCycles)
	}
	cancel := ctx.Done()
	var lastInstr int64
	var lastProgress int64
	truncated := false
	var runErr error
loop:
	for {
		done := true
		for _, t := range s.threads {
			if !t.Done() {
				done = false
			}
		}
		if done {
			break
		}
		if maxCycles > 0 && s.core.Clock() >= maxCycles {
			truncated = true
			break
		}
		if cancel != nil && s.core.Clock()&ctxCheckMask == 0 {
			select {
			case <-cancel:
				truncated = true
				runErr = ctx.Err()
				break loop
			default:
			}
		}
		s.core.Cycle()
		now := s.core.Clock()
		for _, t := range s.threads {
			t.Step(now)
		}
		if s.ic != nil {
			s.ic.Tick(now)
		}
		var instr int64
		for _, t := range s.threads {
			instr += t.Stats().Instructions
		}
		if instr > lastInstr {
			lastInstr = instr
			lastProgress = now
		} else if now-lastProgress > liveLockWindow {
			truncated = true
			runErr = fmt.Errorf("%w: %d cycles without progress at clock %d (%d instructions)",
				ErrLiveLock, now-lastProgress, now, instr)
			break
		}
	}
	res := s.result()
	res.Truncated = truncated
	return res, runErr
}

// Run executes until every thread's trace is exhausted or maxCycles
// elapses (0 = no bound; the result's Truncated flag distinguishes the
// two). It panics on live-lock, which would indicate a model bug;
// long-running processes should use RunCtx and handle ErrLiveLock
// instead.
func (s *Sim) Run(maxCycles int64) Result {
	res, err := s.RunCtx(context.Background(), maxCycles)
	if err != nil {
		panic(err)
	}
	return res
}

func (s *Sim) result() Result {
	res := Result{
		Name:   s.cfg.Core.Name,
		Cycles: s.core.Clock(),
		Core:   s.core.Stats(),
		BTB1:   s.core.BTB1Stats(),
		BTB2:   s.core.BTB2Stats(),
		Dir:    s.core.DirStats(),
		Tgt:    s.core.TgtStats(),
		CPred:  s.core.CPredStats(),
	}
	res.Threads = make([]frontend.Stats, 0, len(s.threads))
	for _, t := range s.threads {
		res.Threads = append(res.Threads, t.Stats())
	}
	if s.ic != nil {
		res.IC = s.ic.Stats()
	}
	return res
}

// RunWorkloadCtx simulates n instructions of src on cfg under ctx,
// with RunCtx's cancellation and error semantics. A packed cursor
// (trace.Packed replay) takes a fast path: its records were validated
// at materialization and it bounds itself, so the per-instruction loop
// skips the Limit wrapper's extra interface hop.
func RunWorkloadCtx(ctx context.Context, cfg Config, src trace.Source, n int) (Result, error) {
	if c, ok := src.(*trace.Cursor); ok {
		c.Limit(n)
		return New(cfg, []trace.Source{c}).RunCtx(ctx, 0)
	}
	s := New(cfg, []trace.Source{trace.Limit(src, n)})
	return s.RunCtx(ctx, 0)
}

// RunWorkload is the one-call convenience used by examples, CLIs and
// benchmarks: simulate n instructions of src on cfg. It panics on
// live-lock; use RunWorkloadCtx for the error-returning, cancellable
// path.
func RunWorkload(cfg Config, src trace.Source, n int) Result {
	res, err := RunWorkloadCtx(context.Background(), cfg, src, n)
	if err != nil {
		panic(err)
	}
	return res
}
