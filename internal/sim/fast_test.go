package sim_test

import (
	"context"
	"testing"

	"zbp/internal/core"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// statsOf runs one simulation to completion and returns its canonical
// stats JSON plus the core-selection flag.
func statsOf(t *testing.T, s *sim.Sim) ([]byte, bool) {
	t.Helper()
	res, err := s.RunCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	js, err := res.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	return js, res.FastCore
}

// TestEventSinkToggle sweeps a small config x workload grid three ways
// per cell — fast core (no sink), instrumented core forced with no
// sink, and instrumented core via an attached EventSink — and requires
// byte-identical stats JSON from all three. Attaching observability
// must never change what is observed; this is the in-package
// counterpart of the fast-vs-instrumented equiv pair.
func TestEventSinkToggle(t *testing.T) {
	const n = 8000
	for _, cfgName := range []string{"z15", "zEC12"} {
		gen, err := core.ByName(cfgName)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.ForGeneration(gen)
		for _, wl := range []string{"patterned", "callret"} {
			t.Run(cfgName+"/"+wl, func(t *testing.T) {
				p, err := workload.MakePacked(wl, 42, n)
				if err != nil {
					t.Fatal(err)
				}
				mk := func() *sim.Sim {
					cur := p.Cursor()
					return sim.New(cfg, []trace.Source{&cur})
				}

				fastJS, fastCore := statsOf(t, mk())
				if !fastCore {
					t.Fatal("sink-free run did not select the fast core")
				}

				forced := mk()
				forced.ForceInstrumentedCore()
				forcedJS, forcedFast := statsOf(t, forced)
				if forcedFast {
					t.Fatal("ForceInstrumentedCore run reports FastCore")
				}
				if string(fastJS) != string(forcedJS) {
					t.Error("instrumented core (forced) diverges from fast core")
				}

				sunk := mk()
				ring := sim.NewRingSink(64)
				sunk.SetEventSink(ring)
				sunkJS, sunkFast := statsOf(t, sunk)
				if sunkFast {
					t.Fatal("run with an EventSink attached reports FastCore")
				}
				if string(fastJS) != string(sunkJS) {
					t.Error("attaching an EventSink changed the stats JSON")
				}
				if ring.Total() == 0 {
					t.Error("attached sink observed no events")
				}
			})
		}
	}
}

// TestSetEventSinkNilKeepsFastCore pins the boundary condition: a nil
// sink is a no-op and must not knock the run off the fast core.
func TestSetEventSinkNilKeepsFastCore(t *testing.T) {
	p, err := workload.MakePacked("patterned", 7, 2000)
	if err != nil {
		t.Fatal(err)
	}
	cur := p.Cursor()
	s := sim.New(sim.Z15(), []trace.Source{&cur})
	s.SetEventSink(nil)
	_, fast := statsOf(t, s)
	if !fast {
		t.Error("SetEventSink(nil) disabled the fast core")
	}
}

// TestFastCoreSMT2 covers the unrolled two-thread shape of the fast
// loop: an SMT2 run with no sink must take the fast core and agree
// byte-for-byte with the instrumented loop.
func TestFastCoreSMT2(t *testing.T) {
	const n = 6000
	mk := func() *sim.Sim {
		p0, err := workload.MakePacked("patterned", 42, n)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := workload.MakePacked("callret", 43, n)
		if err != nil {
			t.Fatal(err)
		}
		c0, c1 := p0.Cursor(), p1.Cursor()
		return sim.New(sim.Z15(), []trace.Source{&c0, &c1})
	}

	fastJS, fastCore := statsOf(t, mk())
	if !fastCore {
		t.Fatal("SMT2 sink-free run did not select the fast core")
	}
	forced := mk()
	forced.ForceInstrumentedCore()
	forcedJS, _ := statsOf(t, forced)
	if string(fastJS) != string(forcedJS) {
		t.Error("SMT2 fast core diverges from instrumented core")
	}
}

// TestFastCoreTruncation checks the fast loop honors the maxCycles
// budget and marks the result truncated, like the instrumented loop.
func TestFastCoreTruncation(t *testing.T) {
	p, err := workload.MakePacked("patterned", 42, 50000)
	if err != nil {
		t.Fatal(err)
	}
	cur := p.Cursor()
	res, err := sim.New(sim.Z15(), []trace.Source{&cur}).RunCtx(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FastCore {
		t.Error("truncated run did not use the fast core")
	}
	if !res.Truncated {
		t.Error("maxCycles-bounded fast run not marked Truncated")
	}
	if res.Cycles > 100 {
		t.Errorf("fast core ran %d cycles past a 100-cycle budget", res.Cycles)
	}
}

// TestFastCoreCancellation checks cooperative cancellation on the fast
// loop's throttled context poll.
func TestFastCoreCancellation(t *testing.T) {
	p, err := workload.MakePacked("patterned", 42, 200000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cur := p.Cursor()
	res, err := sim.New(sim.Z15(), []trace.Source{&cur}).RunCtx(ctx, 0)
	if err != context.Canceled {
		t.Fatalf("RunCtx on a canceled context returned %v, want context.Canceled", err)
	}
	if !res.Truncated {
		t.Error("canceled fast run not marked Truncated")
	}
}
