package sim_test

import (
	"testing"

	"zbp/internal/core"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

// TestPackedStreamingEquivalence is the correctness contract of the
// materialize-once pipeline: for EVERY workload preset and EVERY
// machine generation, simulating the streaming generator and replaying
// the packed buffer of the same workload must produce byte-identical
// stats JSON. This is what lets experiments, tuning studies and CLIs
// switch to packed replay without invalidating a single golden file.
func TestPackedStreamingEquivalence(t *testing.T) {
	const (
		seed  = 42
		scale = 20_000
	)
	gens := core.Generations()
	if testing.Short() {
		gens = gens[len(gens)-1:] // z15 only
	}
	for _, wl := range workload.Names() {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			t.Parallel()
			packed, err := workload.MakePacked(wl, seed, scale)
			if err != nil {
				t.Fatal(err)
			}
			if packed.Len() != scale {
				t.Fatalf("materialized %d records, want %d", packed.Len(), scale)
			}
			for _, gen := range gens {
				cfg := sim.ForGeneration(gen)

				stream, err := workload.Make(wl, seed)
				if err != nil {
					t.Fatal(err)
				}
				sres := sim.RunWorkload(cfg, stream, scale)
				sjs, err := sres.StatsJSON()
				if err != nil {
					t.Fatal(err)
				}

				cur := packed.Cursor()
				pres := sim.RunWorkload(cfg, &cur, scale)
				pjs, err := pres.StatsJSON()
				if err != nil {
					t.Fatal(err)
				}

				if string(sjs) != string(pjs) {
					t.Errorf("%s: packed replay stats JSON differs from streaming run", gen.Name)
				}
			}
		})
	}
}

// TestPackedReplayStability: two cursor replays of the same buffer
// (one fresh, one reset) must match each other and a file round-trip
// of the buffer — materialization is a fixed point of the pipeline.
func TestPackedReplayStability(t *testing.T) {
	const (
		seed  = 42
		scale = 20_000
	)
	cfg := sim.Z15()
	packed, err := workload.MakePacked("lspr", seed, scale)
	if err != nil {
		t.Fatal(err)
	}

	cur := packed.Cursor()
	firstRes := sim.RunWorkload(cfg, &cur, scale)
	first, err := firstRes.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	cur.Reset()
	secondRes := sim.RunWorkload(cfg, &cur, scale)
	second, err := secondRes.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("reset cursor replay differs from first replay")
	}

	path := t.TempDir() + "/lspr.zbpt"
	if err := packed.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.LoadPackedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lc := loaded.Cursor()
	thirdRes := sim.RunWorkload(cfg, &lc, scale)
	third, err := thirdRes.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(third) {
		t.Error("file round-trip replay differs from in-memory replay")
	}
}
