package sim

import (
	"context"
	"fmt"
)

// This file holds the specialized replay core: the cycle loop Run and
// RunCtx execute when no EventSink is attached. It is semantically
// identical to the instrumented loop in sim.go — same check order
// (done, maxCycles, cancellation, cycle, step, tick, progress), same
// truncation and live-lock behavior — but every per-cycle bookkeeping
// access is monomorphized down to a plain integer load:
//
//   - thread progress is read through Thread.Instructions (one int64
//     load) instead of copying the whole frontend.Stats struct per
//     cycle, which the CPU profile showed as runtime.duffcopy heat;
//   - the thread set is unrolled for the ST and SMT2 shapes (the only
//     two core.MaxThreads allows), so the loop body has no slice
//     range or per-iteration bounds checks on the hot spine.
//
// The deeper specialization lives below this loop and benefits both
// cores: the front end calls the concrete *trace.Cursor.Next for
// packed replays instead of dispatching through the Source interface
// (frontend.go), predictions are peeked by pointer instead of copied
// (core.go), and BTB rows are flat structure-of-arrays columns
// (btb.go). Note Go generics would not achieve the cursor
// monomorphization: gcshape stenciling collapses all pointer type
// arguments into one dictionary-dispatched instantiation, so the
// concrete-field-plus-nil-check form is the one the inliner can see
// through.
//
// Equivalence between the two loops is machine-checked, not assumed:
// the fast-vs-instrumented pair in internal/equiv compares stats JSON
// byte-for-byte across the full grid, and TestEventSinkToggle pins the
// boundary inside this package.

// runFast is the specialized no-sink cycle loop.
func (s *Sim) runFast(ctx context.Context, maxCycles int64) (Result, error) {
	cancel := ctx.Done()
	c := s.core
	var lastInstr int64
	var lastProgress int64
	truncated := false
	var runErr error

	t0 := s.threads[0]
	t1 := t0
	smt := len(s.threads) > 1
	if smt {
		t1 = s.threads[1]
	}

loop:
	for {
		if t0.Done() && t1.Done() {
			break
		}
		clk := c.Clock()
		if maxCycles > 0 && clk >= maxCycles {
			truncated = true
			break
		}
		if cancel != nil && clk&ctxCheckMask == 0 {
			select {
			case <-cancel:
				truncated = true
				runErr = ctx.Err()
				break loop
			default:
			}
		}
		c.Cycle()
		now := c.Clock()
		t0.Step(now)
		if smt {
			t1.Step(now)
		}
		if s.ic != nil {
			s.ic.Tick(now)
		}
		instr := t0.Instructions()
		if smt {
			instr += t1.Instructions()
		}
		if instr > lastInstr {
			lastInstr = instr
			lastProgress = now
		} else if now-lastProgress > liveLockWindow {
			truncated = true
			runErr = fmt.Errorf("%w: %d cycles without progress at clock %d (%d instructions)",
				ErrLiveLock, now-lastProgress, now, instr)
			break
		}
	}
	res := s.result()
	res.Truncated = truncated
	res.FastCore = true
	return res, runErr
}

// ForceInstrumentedCore pins this simulation to the instrumented
// cycle loop even though no EventSink is attached. It exists for the
// differential harness: the fast-vs-instrumented equiv pair runs the
// same workload through both loops and requires their stats JSON to
// match byte-for-byte. Production callers never need it — attaching a
// sink switches loops automatically.
func (s *Sim) ForceInstrumentedCore() { s.instrumented = true }
