package sim

import (
	"testing"

	"zbp/internal/core"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

func TestSmokeAllWorkloadsZ15(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			src, err := workload.Make(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			res := RunWorkload(Z15(), src, 30000)
			if res.Instructions() < 29000 {
				t.Fatalf("retired only %d instructions", res.Instructions())
			}
			if res.Cycles <= 0 || res.IPC() <= 0 {
				t.Fatalf("bad cycle accounting: %d cycles", res.Cycles)
			}
			if res.MPKI() < 0 || res.MPKI() > 200 {
				t.Errorf("implausible MPKI %.1f", res.MPKI())
			}
		})
	}
}

func TestLoopsAreWellPredicted(t *testing.T) {
	src, _ := workload.Make("loops", 1)
	res := RunWorkload(Z15(), src, 200000)
	if acc := res.Accuracy(); acc < 0.95 {
		t.Errorf("loops accuracy = %.4f, want >= 0.95", acc)
	}
}

func TestPatternedLearnedByAux(t *testing.T) {
	src, _ := workload.Make("patterned", 1)
	res := RunWorkload(Z15(), src, 400000)
	// The only irreducible branch is the 50/50 one out of ~12 per
	// iteration; everything else should be learned.
	if acc := res.Accuracy(); acc < 0.90 {
		t.Errorf("patterned accuracy = %.4f, want >= 0.90", acc)
	}
	// The PHT must actually be providing predictions.
	issued := res.Dir.Issued
	if issued[2]+issued[3]+issued[4]+issued[5]+issued[6] == 0 {
		t.Error("no auxiliary direction predictions issued")
	}
}

func TestCallReturnUsesCRS(t *testing.T) {
	src, _ := workload.Make("callret", 1)
	res := RunWorkload(Z15(), src, 300000)
	if res.Tgt.ReturnsMarked == 0 {
		t.Error("no returns detected")
	}
	if res.Tgt.Provided[2] == 0 { // ProvCRS
		t.Error("CRS never provided a target")
	}
	if acc := res.Accuracy(); acc < 0.9 {
		t.Errorf("callret accuracy = %.4f", acc)
	}
}

func TestIndirectUsesCTB(t *testing.T) {
	src, _ := workload.Make("indirect", 1)
	res := RunWorkload(Z15(), src, 300000)
	if res.Tgt.Provided[1] == 0 { // ProvCTB
		t.Error("CTB never provided a target")
	}
	if res.Tgt.CTBInstalls == 0 {
		t.Error("no CTB installs")
	}
}

func TestLSPRBTB2MattersForCapacity(t *testing.T) {
	// On a footprint exceeding the BTB1's capacity, disabling the BTB2
	// must increase surprises (§III capacity argument). A full-size 16K
	// BTB1 does not thrash within a test-sized run, so shrink it to 1K
	// entries in both arms to create the capacity pressure the paper's
	// LSPR workloads create at full scale.
	small := func(btb2 bool) Config {
		cfg := Z15()
		cfg.Core.BTB1.RowBits = 8 // 2K entries vs a ~9K-branch hot set
		cfg.Core.BTB2Enabled = btb2
		return cfg
	}
	src1, _ := workload.Make("lspr", 5)
	with := RunWorkload(small(true), src1, 1000000)
	src2, _ := workload.Make("lspr", 5)
	without := RunWorkload(small(false), src2, 1000000)

	sWith, sWithout := with.Threads[0].Surprises, without.Threads[0].Surprises
	if float64(sWithout) < 1.03*float64(sWith) {
		t.Errorf("surprises with BTB2 %d, without %d: BTB2 shows no value", sWith, sWithout)
	}
	if with.Core.BTB2MissTriggers == 0 {
		t.Error("no backfill triggers fired")
	}
}

func TestSMT2RunsBothThreads(t *testing.T) {
	a, _ := workload.Make("loops", 1)
	b, _ := workload.Make("callret", 2)
	s := New(Z15(), []trace.Source{trace.Limit(a, 50000), trace.Limit(b, 50000)})
	res := s.Run(0)
	if len(res.Threads) != 2 {
		t.Fatalf("threads = %d", len(res.Threads))
	}
	for i, ts := range res.Threads {
		if ts.Instructions < 49000 {
			t.Errorf("thread %d retired %d", i, ts.Instructions)
		}
	}
}

func TestGenerationalMPKIOrdering(t *testing.T) {
	// The headline result's shape (§VIII): newer generations mispredict
	// less on LSPR-like work.
	mpki := map[string]float64{}
	for _, gen := range core.Generations() {
		src, _ := workload.Make("lspr-small", 9)
		res := RunWorkload(ForGeneration(gen), src, 400000)
		mpki[gen.Name] = res.MPKI()
	}
	if !(mpki["z15"] < mpki["z13"]) {
		t.Errorf("z15 MPKI %.2f not better than z13 %.2f", mpki["z15"], mpki["z13"])
	}
	if !(mpki["z14"] < mpki["zEC12"]) {
		t.Errorf("z14 MPKI %.2f not better than zEC12 %.2f", mpki["z14"], mpki["zEC12"])
	}
}

func TestPrefetchReducesFetchStall(t *testing.T) {
	cfgOn := Z15()
	cfgOff := Z15()
	cfgOff.Prefetch = false
	src1, _ := workload.Make("lspr", 3)
	src2, _ := workload.Make("lspr", 3)
	on := RunWorkload(cfgOn, src1, 300000)
	off := RunWorkload(cfgOff, src2, 300000)
	if on.Threads[0].FetchStall >= off.Threads[0].FetchStall {
		t.Errorf("prefetch did not reduce fetch stalls: on=%d off=%d",
			on.Threads[0].FetchStall, off.Threads[0].FetchStall)
	}
	if on.IC.PrefetchUseful == 0 {
		t.Error("no useful prefetches")
	}
}

func TestNoICacheStillRuns(t *testing.T) {
	cfg := Z15()
	cfg.ICache = nil
	src, _ := workload.Make("loops", 1)
	res := RunWorkload(cfg, src, 50000)
	if res.Instructions() < 49000 {
		t.Fatalf("retired %d", res.Instructions())
	}
	if res.Threads[0].FetchStall != 0 {
		t.Error("fetch stalls without an I-cache model")
	}
}

func TestDeterministicRuns(t *testing.T) {
	src1, _ := workload.Make("lspr-small", 4)
	src2, _ := workload.Make("lspr-small", 4)
	a := RunWorkload(Z15(), src1, 100000)
	b := RunWorkload(Z15(), src2, 100000)
	if a.Cycles != b.Cycles || a.Mispredicts() != b.Mispredicts() {
		t.Errorf("nondeterminism: %d/%d cycles, %d/%d mispredicts",
			a.Cycles, b.Cycles, a.Mispredicts(), b.Mispredicts())
	}
}

func TestNewPanicsOnBadThreadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted 0 sources")
		}
	}()
	New(Z15(), nil)
}
