package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"zbp/internal/trace"
	"zbp/internal/workload"
	"zbp/internal/zarch"
)

// straightLine returns a branch-free trace of n sequential
// instructions: the degenerate input for the Accuracy/MPKI/IPC edge
// cases.
func straightLine(n int) trace.Source {
	recs := make([]trace.Rec, n)
	addr := zarch.Addr(0x1000)
	for i := range recs {
		recs[i] = trace.NewRec(addr, 4, zarch.KindNone, false, 0, 0)
		addr += 4
	}
	return trace.NewSliceSource(recs)
}

func TestAccuracyBranchFreeTrace(t *testing.T) {
	res := RunWorkload(Z15(), straightLine(5000), 5000)
	if res.Branches() != 0 {
		t.Fatalf("straight-line trace retired %d branches", res.Branches())
	}
	// Zero branches means zero mispredicts: accuracy is 1, not 0.
	if acc := res.Accuracy(); acc != 1 {
		t.Errorf("Accuracy() = %v on a branch-free trace, want 1", acc)
	}
	if mpki := res.MPKI(); mpki != 0 {
		t.Errorf("MPKI() = %v on a branch-free trace, want 0", mpki)
	}
	if ipc := res.IPC(); ipc <= 0 {
		t.Errorf("IPC() = %v on a branch-free trace, want > 0", ipc)
	}
	if res.Truncated {
		t.Error("complete run marked Truncated")
	}
}

func TestDegenerateZeroResult(t *testing.T) {
	// The zero Result (no instructions, no cycles) must not divide by
	// zero anywhere.
	var res Result
	if acc := res.Accuracy(); acc != 1 {
		t.Errorf("zero Result Accuracy() = %v, want 1", acc)
	}
	if mpki := res.MPKI(); mpki != 0 {
		t.Errorf("zero Result MPKI() = %v, want 0", mpki)
	}
	if ipc := res.IPC(); ipc != 0 {
		t.Errorf("zero Result IPC() = %v, want 0", ipc)
	}
}

func TestRunMaxCyclesSetsTruncated(t *testing.T) {
	src, err := workload.Make("lspr", 7)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Z15(), []trace.Source{trace.Limit(src, 1_000_000)})
	res := s.Run(5000)
	if !res.Truncated {
		t.Error("maxCycles-bounded run not marked Truncated")
	}
	if res.Cycles < 5000 {
		t.Errorf("run stopped at %d cycles, want >= 5000", res.Cycles)
	}
	if res.Instructions() == 0 {
		t.Error("truncated run retired no instructions")
	}
}

func TestRunCtxMatchesRun(t *testing.T) {
	mk := func() []trace.Source {
		src, err := workload.Make("micro", 3)
		if err != nil {
			t.Fatal(err)
		}
		return []trace.Source{trace.Limit(src, 100_000)}
	}
	want := New(Z15(), mk()).Run(0)
	got, err := New(Z15(), mk()).RunCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(wb) != string(gb) {
		t.Error("RunCtx(Background) stats differ from Run")
	}
}

func TestRunCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src, _ := workload.Make("lspr", 1)
	res, err := New(Z15(), []trace.Source{trace.Limit(src, 1_000_000)}).RunCtx(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Truncated {
		t.Error("canceled run not marked Truncated")
	}
	if res.Instructions() != 0 {
		t.Errorf("pre-canceled run retired %d instructions", res.Instructions())
	}
}

func TestRunCtxCancelStopsMidRun(t *testing.T) {
	// A 2M-instruction run takes hundreds of milliseconds; canceling
	// after a few milliseconds must stop it long before completion.
	src, err := workload.Make("lspr", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := New(Z15(), []trace.Source{trace.Limit(src, 2_000_000)}).RunCtx(ctx, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !res.Truncated {
		t.Error("deadline-canceled run not marked Truncated")
	}
	if res.Instructions() >= 2_000_000 {
		t.Error("canceled run retired the full trace")
	}
	// Generous bound: the run itself needs ~100x longer than the
	// deadline, so finishing quickly proves cancellation worked.
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}
