package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestRingSinkWraparound(t *testing.T) {
	s := NewRingSink(4)
	if got := s.Events(); len(got) != 0 {
		t.Fatalf("empty ring returned %d events", len(got))
	}
	for i := int64(0); i < 10; i++ {
		s.Emit(Event{Cycle: i, Kind: EvPredict})
	}
	if s.Total() != 10 {
		t.Fatalf("Total = %d, want 10", s.Total())
	}
	got := s.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := int64(6 + i); e.Cycle != want {
			t.Fatalf("event %d has cycle %d, want %d (oldest-first)", i, e.Cycle, want)
		}
	}
}

func TestRingSinkPartialFill(t *testing.T) {
	s := NewRingSink(8)
	for i := int64(0); i < 3; i++ {
		s.Emit(Event{Cycle: i})
	}
	got := s.Events()
	if len(got) != 3 || got[0].Cycle != 0 || got[2].Cycle != 2 {
		t.Fatalf("partial ring wrong: %+v", got)
	}
}

func TestRingSinkPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewRingSink(0)
}

func TestJSONLSinkOutput(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	events := []Event{
		{Cycle: 100, Kind: EvPredict, Thread: 0, Addr: 0x1000, Target: 0x2000, Taken: true},
		{Cycle: 101, Kind: EvPredict, Thread: 1, Addr: 0x1004, Target: 0xdead, Taken: false},
		{Cycle: 130, Kind: EvResolve, Thread: 0, Addr: 0x1000, Target: 0x2000, Taken: true, Dynamic: true, Correct: true},
		{Cycle: 131, Kind: EvRestart, Thread: 0, Addr: 0x2000, Penalty: 26},
		{Cycle: 140, Kind: EvFill, Thread: -1, Addr: 0x3fc0},
	}
	for _, e := range events {
		s.Emit(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Count() != int64(len(events)) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(events))
	}

	want := []string{
		`{"cycle":100,"kind":"predict","thread":0,"addr":"0x1000","target":"0x2000","taken":true}`,
		`{"cycle":101,"kind":"predict","thread":1,"addr":"0x1004","taken":false}`,
		`{"cycle":130,"kind":"resolve","thread":0,"addr":"0x1000","target":"0x2000","taken":true,"dynamic":true,"correct":true}`,
		`{"cycle":131,"kind":"restart","thread":0,"addr":"0x2000","penalty":26}`,
		`{"cycle":140,"kind":"fill","addr":"0x3fc0"}`,
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != len(want) {
		t.Fatalf("wrote %d lines, want %d:\n%s", len(lines), len(want), buf.String())
	}
	for i, line := range lines {
		if line != want[i] {
			t.Errorf("line %d:\ngot  %s\nwant %s", i, line, want[i])
		}
		// Every line must also be parseable JSON for downstream tools.
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %d is not valid JSON: %v", i, err)
		}
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("disk full")
	}
	w.after -= len(p)
	return len(p), nil
}

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONLSink(&failWriter{after: 16})
	// Enough events to overflow the bufio buffer and surface the error.
	for i := 0; i < 5000; i++ {
		s.Emit(Event{Cycle: int64(i), Kind: EvRestart, Addr: 0x1000, Penalty: 26})
	}
	if s.Err() == nil {
		t.Fatal("expected sticky write error")
	}
	if err := s.Flush(); err == nil {
		t.Fatal("Flush must report the sticky error")
	}
	n := s.Count()
	s.Emit(Event{Cycle: 1, Kind: EvPredict})
	if s.Count() != n {
		t.Fatal("Emit after error must be a no-op")
	}
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		EvPredict: "predict", EvResolve: "resolve", EvRestart: "restart", EvFill: "fill",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if got := EventKind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range kind string = %q", got)
	}
}
