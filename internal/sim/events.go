package sim

import (
	"bufio"
	"fmt"
	"io"

	"zbp/internal/core"
	"zbp/internal/trace"
	"zbp/internal/zarch"
)

// EventKind classifies one cycle-stamped simulation event.
type EventKind uint8

// Event kinds, in pipeline order: a prediction leaves the BPL, a
// branch resolves at completion, a restart redirects the front end, an
// I-cache line fill completes.
const (
	EvPredict EventKind = iota
	EvResolve
	EvRestart
	EvFill

	numEventKinds
)

var eventKindNames = [numEventKinds]string{"predict", "resolve", "restart", "fill"}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one observed simulation event. Field meaning varies by
// kind:
//
//   - EvPredict: Addr/Target/Taken are the predicted branch, Thread
//     the predicting thread, Cycle the b5 present cycle.
//   - EvResolve: Addr/Target/Taken are the architectural outcome,
//     Dynamic whether a BPL prediction covered the branch, Correct
//     whether prediction (or static guess) was fully right.
//   - EvRestart: Addr is the redirect address, Penalty the charged
//     stall cycles.
//   - EvFill: Addr is the filled line, Thread is -1 (fills are not
//     thread-attributed).
type Event struct {
	Cycle   int64
	Kind    EventKind
	Thread  int
	Addr    zarch.Addr
	Target  zarch.Addr
	Taken   bool
	Dynamic bool
	Correct bool
	Penalty int64
}

// EventSink consumes the cycle-level event log. Emit is called from
// the simulation loop, in deterministic order; implementations must
// not retain the Event beyond the call unless they copy it (Event is a
// value, so plain assignment copies).
type EventSink interface {
	Emit(Event)
}

// RingSink retains the most recent capacity events in a ring: the
// "flight recorder" used to inspect the window leading up to a
// condition of interest without paying for full-run logging.
type RingSink struct {
	buf   []Event
	next  int
	total int64
}

// NewRingSink returns a ring retaining the last capacity events.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		panic("sim: RingSink capacity must be positive")
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Emit implements EventSink. It never allocates once the ring is full.
func (s *RingSink) Emit(e Event) {
	s.total++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, e)
		return
	}
	s.buf[s.next] = e
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
	}
}

// Total returns the number of events observed (including overwritten).
func (s *RingSink) Total() int64 { return s.total }

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// JSONLSink streams every event as one JSON object per line. The
// encoding is hand-rolled with a fixed field order (and omits fields
// that are zero for the kind), so logs are deterministic and cheap:
// no reflection, one buffered write per event.
type JSONLSink struct {
	w   *bufio.Writer
	err error
	buf []byte
	n   int64
}

// NewJSONLSink returns a sink writing JSON lines to w. Call Flush
// before reading the underlying writer's contents.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w), buf: make([]byte, 0, 160)}
}

// Emit implements EventSink. The first write error sticks (see Err).
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"cycle":`...)
	b = appendInt(b, e.Cycle)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, '"')
	if e.Kind != EvFill {
		b = append(b, `,"thread":`...)
		b = appendInt(b, int64(e.Thread))
	}
	b = append(b, `,"addr":"`...)
	b = appendHex(b, uint64(e.Addr))
	b = append(b, '"')
	switch e.Kind {
	case EvPredict, EvResolve:
		if e.Taken {
			b = append(b, `,"target":"`...)
			b = appendHex(b, uint64(e.Target))
			b = append(b, '"')
		}
		b = append(b, `,"taken":`...)
		b = appendBool(b, e.Taken)
		if e.Kind == EvResolve {
			b = append(b, `,"dynamic":`...)
			b = appendBool(b, e.Dynamic)
			b = append(b, `,"correct":`...)
			b = appendBool(b, e.Correct)
		}
	case EvRestart:
		b = append(b, `,"penalty":`...)
		b = appendInt(b, e.Penalty)
	}
	b = append(b, '}', '\n')
	s.buf = b
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
	s.n++
}

// Count returns the number of events written.
func (s *JSONLSink) Count() int64 { return s.n }

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// Flush drains buffered lines to the underlying writer.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

func appendHex(b []byte, v uint64) []byte {
	const digits = "0123456789abcdef"
	b = append(b, '0', 'x')
	var tmp [16]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = digits[v&15]
		v >>= 4
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// SetEventSink wires sink into every event source of the simulation:
// BPL predictions, completion-time resolves, front-end restarts and
// I-cache fills. Call it before Run. A nil sink is a no-op; when no
// sink is set the hot path pays nothing beyond one nil hook check per
// event site (verified by the capacity-sweep allocation benchmark).
//
// Attaching a sink also switches Run/RunCtx from the specialized fast
// loop to the instrumented one (see fast.go); results stay
// byte-identical either way.
func (s *Sim) SetEventSink(sink EventSink) {
	if sink == nil {
		return
	}
	s.instrumented = true
	c := s.core
	c.SetPredictHook(func(p core.Prediction) {
		sink.Emit(Event{Cycle: p.PresentedAt, Kind: EvPredict, Thread: p.Thread,
			Addr: p.Addr, Target: p.Target, Taken: p.Taken})
	})
	for _, t := range s.threads {
		id := t.ID()
		t.SetResolveHook(func(now int64, r trace.Rec, dynamic, correct bool) {
			sink.Emit(Event{Cycle: now, Kind: EvResolve, Thread: id,
				Addr: r.Addr, Target: r.Target, Taken: r.Taken(),
				Dynamic: dynamic, Correct: correct})
		})
		t.SetRestartHook(func(now int64, addr zarch.Addr, penalty int64) {
			sink.Emit(Event{Cycle: now, Kind: EvRestart, Thread: id,
				Addr: addr, Penalty: penalty})
		})
	}
	if s.ic != nil {
		s.ic.SetFillHook(func(line zarch.Addr, ready int64) {
			sink.Emit(Event{Cycle: ready, Kind: EvFill, Thread: -1, Addr: line})
		})
	}
}
