package tune

import (
	"testing"

	"zbp/internal/sim"
)

func smallStudy(axes ...Axis) *Study {
	return &Study{
		Base:         sim.Z15(),
		Axes:         axes,
		Workloads:    []string{"loops"},
		Instructions: 20000,
		Seed:         3,
	}
}

func TestCartesianSize(t *testing.T) {
	ax := StandardAxes()
	s := smallStudy(ax["gpv"], ax["skoot"])
	if s.Size() != 4 {
		t.Fatalf("Size = %d", s.Size())
	}
	out := s.Run()
	if len(out) != 4 {
		t.Fatalf("outcomes = %d", len(out))
	}
	seen := map[string]bool{}
	for _, o := range out {
		seen[o.Name(s.Axes)] = true
	}
	if len(seen) != 4 {
		t.Errorf("distinct points = %d: %v", len(seen), seen)
	}
}

func TestNoAxesSinglePoint(t *testing.T) {
	s := smallStudy()
	out := s.Run()
	if len(out) != 1 {
		t.Fatalf("outcomes = %d", len(out))
	}
	if out[0].IPC <= 0 || out[0].PerWorkload["loops"].Instructions() == 0 {
		t.Error("empty point did not evaluate")
	}
}

func TestSortedByScore(t *testing.T) {
	ax := StandardAxes()
	s := smallStudy(ax["pht"])
	s.Workloads = []string{"patterned"}
	out := s.Run()
	for i := 1; i < len(out); i++ {
		if out[i].Score > out[i-1].Score {
			t.Fatal("outcomes not sorted by score")
		}
	}
	// On a pattern workload, disabling the PHT cannot win.
	if out[0].Labels[0] == "off" {
		t.Errorf("PHT-off ranked best: %+v", out[0])
	}
}

func TestCustomScore(t *testing.T) {
	ax := StandardAxes()
	s := smallStudy(ax["skoot"])
	s.Score = func(mpki, ipc float64) float64 { return -mpki }
	out := s.Run()
	if out[0].Score != -out[0].MPKI {
		t.Error("custom score not applied")
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	ax := StandardAxes()
	mk := func(par int) []Outcome {
		s := smallStudy(ax["gpv"], ax["perceptron"])
		s.Parallelism = par
		return s.Run()
	}
	a, b := mk(1), mk(8)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i].Name(StandardAxesList("gpv", "perceptron")) != b[i].Name(StandardAxesList("gpv", "perceptron")) ||
			a[i].MPKI != b[i].MPKI {
			t.Fatalf("point %d differs between parallelism levels", i)
		}
	}
}

// StandardAxesList resolves names for tests.
func StandardAxesList(names ...string) []Axis {
	ax := StandardAxes()
	out := make([]Axis, len(names))
	for i, n := range names {
		out[i] = ax[n]
	}
	return out
}

func TestPanicsOnBadStudy(t *testing.T) {
	check := func(name string, s *Study) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		s.Run()
	}
	check("no workloads", &Study{Base: sim.Z15(), Instructions: 100})
	check("bad workload", &Study{Base: sim.Z15(), Instructions: 100, Workloads: []string{"nope"}})
	check("empty axis", &Study{Base: sim.Z15(), Instructions: 100,
		Workloads: []string{"loops"}, Axes: []Axis{{Name: "x"}}})
}

func TestStandardAxesComplete(t *testing.T) {
	ax := StandardAxes()
	for _, name := range []string{"btb1", "btb2", "pht", "gpv", "perceptron", "crs", "skoot", "specdir", "crsdist"} {
		a, ok := ax[name]
		if !ok || len(a.Values) < 2 {
			t.Errorf("axis %q missing or trivial", name)
		}
	}
}
