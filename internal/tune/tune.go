// Package tune is the design-space exploration environment of the
// paper's §VII: "a parameterizable, sizeable performance modeling
// environment was created ... to evaluate the performance of different
// design options", with instruction traces as input. A Study takes a
// base configuration, a set of parameter axes, and a workload mix; it
// runs the full cartesian product (in parallel) and ranks the design
// points. This is how the repository's generational presets were
// sanity-checked, and it is the tool a user would reach for to answer
// "what if the BTB1 were 32K?" questions.
package tune

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"zbp/internal/hashx"
	"zbp/internal/runner"
	"zbp/internal/sim"
	"zbp/internal/workload"
)

// Value is one setting on an axis.
type Value struct {
	// Label names the setting in reports ("16K", "off", ...).
	Label string
	// Apply mutates a config to select the setting.
	Apply func(*sim.Config)
}

// Axis is one design parameter with its candidate settings.
type Axis struct {
	Name   string
	Values []Value
}

// Outcome is one evaluated design point.
type Outcome struct {
	// Labels holds the chosen Value label per axis, in axis order.
	Labels []string
	// PerWorkload maps workload name to its result.
	PerWorkload map[string]sim.Result
	// MPKI and IPC are averaged across the workload mix.
	MPKI float64
	IPC  float64
	// Score is the study's objective (higher is better).
	Score float64
}

// Name renders the point as "axis=value axis=value".
func (o Outcome) Name(axes []Axis) string {
	parts := make([]string, len(o.Labels))
	for i, l := range o.Labels {
		parts[i] = axes[i].Name + "=" + l
	}
	return strings.Join(parts, " ")
}

// Study describes one exploration.
type Study struct {
	// Base is the starting configuration each point mutates.
	Base sim.Config
	// Axes are the swept parameters (cartesian product).
	Axes []Axis
	// Workloads is the evaluation mix (averaged).
	Workloads []string
	// Instructions per workload run.
	Instructions int
	// Seed makes the study reproducible.
	Seed uint64
	// Score is the objective; nil means IPC - MPKI/100 (throughput
	// first, accuracy as tiebreak).
	Score func(avgMPKI, avgIPC float64) float64
	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int
	// Streaming disables the materialize-once pipeline: each design
	// point regenerates its workloads from scratch, the pre-PR-3
	// behavior. Results are byte-identical either way (the packed path
	// replays the exact generated stream); materialized studies only
	// generate each workload once instead of once per design point.
	Streaming bool
}

// points enumerates the cartesian product of axis values.
func (s *Study) points() [][]int {
	if len(s.Axes) == 0 {
		return [][]int{{}}
	}
	var out [][]int
	idx := make([]int, len(s.Axes))
	for {
		out = append(out, append([]int(nil), idx...))
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(s.Axes[k].Values) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return out
		}
	}
}

// Size returns the number of design points.
func (s *Study) Size() int {
	n := 1
	for _, a := range s.Axes {
		n *= len(a.Values)
	}
	return n
}

// Run evaluates every design point and returns outcomes sorted by
// Score (best first). It validates the study eagerly and panics on
// structural errors (empty axes, unknown workloads).
func (s *Study) Run() []Outcome {
	if len(s.Workloads) == 0 || s.Instructions <= 0 {
		panic("tune: study needs workloads and a positive instruction budget")
	}
	for _, a := range s.Axes {
		if len(a.Values) == 0 {
			panic(fmt.Sprintf("tune: axis %q has no values", a.Name))
		}
	}
	// Build one SourceSpec per workload up front. The default path
	// materializes each workload exactly once — the whole cartesian
	// product then replays shared packed buffers — and doubles as the
	// eager workload-name validation.
	specs := make(map[string]runner.SourceSpec, len(s.Workloads))
	for _, w := range s.Workloads {
		// Each workload gets its own derived seed: reusing the study seed
		// verbatim made every workload's generator draw the identical
		// random stream, correlating cells across workloads. Every design
		// point still replays the same per-workload trace, so cross-point
		// comparisons stay exact.
		ws := hashx.SeedFor(s.Seed, w)
		if s.Streaming {
			if _, err := workload.Make(w, 1); err != nil {
				panic(err)
			}
			specs[w] = runner.Workload(w, ws)
		} else {
			p, err := workload.MakePacked(w, ws, s.Instructions)
			if err != nil {
				panic(err)
			}
			specs[w] = runner.Packed(p)
		}
	}
	score := s.Score
	if score == nil {
		score = func(mpki, ipc float64) float64 { return ipc - mpki/100 }
	}

	// One job per (design point, workload) cell: the pool is fed the
	// whole study at once, so a point with one slow workload does not
	// idle a worker, and the bounded pool replaces the old
	// goroutine-per-point fan-out.
	pts := s.points()
	jobs := make([]runner.Job, 0, len(pts)*len(s.Workloads))
	labels := make([][]string, len(pts))
	for i, pt := range pts {
		cfg := s.Base
		labels[i] = make([]string, len(pt))
		for k, vi := range pt {
			v := s.Axes[k].Values[vi]
			labels[i][k] = v.Label
			v.Apply(&cfg)
		}
		for _, w := range s.Workloads {
			jobs = append(jobs, runner.Job{
				Name:         w,
				Config:       cfg,
				Source:       specs[w],
				Instructions: s.Instructions,
			})
		}
	}
	pool := runner.Pool{Parallelism: s.Parallelism}
	results := runner.Results(pool.Run(context.Background(), jobs))

	outcomes := make([]Outcome, len(pts))
	for i := range pts {
		out := Outcome{Labels: labels[i], PerWorkload: make(map[string]sim.Result, len(s.Workloads))}
		var mpki, ipc float64
		for j, w := range s.Workloads {
			res := results[i*len(s.Workloads)+j]
			out.PerWorkload[w] = res
			mpki += res.MPKI()
			ipc += res.IPC()
		}
		out.MPKI = mpki / float64(len(s.Workloads))
		out.IPC = ipc / float64(len(s.Workloads))
		out.Score = score(out.MPKI, out.IPC)
		outcomes[i] = out
	}

	sort.SliceStable(outcomes, func(a, b int) bool {
		return outcomes[a].Score > outcomes[b].Score
	})
	return outcomes
}

// StandardAxes returns the ready-made axes the CLI exposes, keyed by
// name: the capacity and policy levers the paper's design discussion
// turns on.
func StandardAxes() map[string]Axis {
	mk := func(name string, vals ...Value) Axis { return Axis{Name: name, Values: vals} }
	return map[string]Axis{
		"btb1": mk("btb1",
			Value{"4K", func(c *sim.Config) { c.Core.BTB1.RowBits = 9 }},
			Value{"8K", func(c *sim.Config) { c.Core.BTB1.RowBits = 10 }},
			Value{"16K", func(c *sim.Config) { c.Core.BTB1.RowBits = 11 }},
			Value{"32K", func(c *sim.Config) { c.Core.BTB1.RowBits = 12 }},
		),
		"btb2": mk("btb2",
			Value{"off", func(c *sim.Config) { c.Core.BTB2Enabled = false }},
			Value{"64K", func(c *sim.Config) { c.Core.BTB2.RowBits = 14 }},
			Value{"128K", func(c *sim.Config) { c.Core.BTB2.RowBits = 15 }},
		),
		"pht": mk("pht",
			Value{"off", func(c *sim.Config) { c.Core.Dir.PHTEnabled = false }},
			Value{"single", func(c *sim.Config) { c.Core.Dir.TwoTables = false }},
			Value{"tage", func(c *sim.Config) { c.Core.Dir.TwoTables = true }},
		),
		"gpv": mk("gpv",
			Value{"9", func(c *sim.Config) {
				c.Core.GPVDepth = 9
				c.Core.Dir.LongHist = 9
				c.Core.Tgt.CTBHist = 9
			}},
			Value{"17", func(c *sim.Config) {
				c.Core.GPVDepth = 17
				c.Core.Dir.LongHist = 17
				c.Core.Tgt.CTBHist = 17
			}},
		),
		"perceptron": mk("perceptron",
			Value{"off", func(c *sim.Config) { c.Core.Dir.PerceptronEnabled = false }},
			Value{"on", func(c *sim.Config) { c.Core.Dir.PerceptronEnabled = true }},
		),
		"crs": mk("crs",
			Value{"off", func(c *sim.Config) { c.Core.Tgt.CRSEnabled = false }},
			Value{"on", func(c *sim.Config) { c.Core.Tgt.CRSEnabled = true }},
		),
		"skoot": mk("skoot",
			Value{"off", func(c *sim.Config) { c.Core.SkootEnabled = false }},
			Value{"on", func(c *sim.Config) { c.Core.SkootEnabled = true }},
		),
		"specdir": mk("specdir",
			Value{"0", func(c *sim.Config) { c.Core.Dir.SpecEntries = 0 }},
			Value{"8", func(c *sim.Config) { c.Core.Dir.SpecEntries = 8 }},
			Value{"16", func(c *sim.Config) { c.Core.Dir.SpecEntries = 16 }},
		),
		"crsdist": mk("crsdist",
			Value{"4K", func(c *sim.Config) { c.Core.Tgt.DistThreshold = 4 << 10 }},
			Value{"16K", func(c *sim.Config) { c.Core.Tgt.DistThreshold = 16 << 10 }},
			Value{"64K", func(c *sim.Config) { c.Core.Tgt.DistThreshold = 64 << 10 }},
		),
	}
}
