// Package core assembles the z15 asynchronous lookahead branch
// predictor (paper §III-§VI): the two-level BTB with staging queue and
// periodic refresh, the six-cycle b0..b5 search pipeline with CPRED
// acceleration and SKOOT skipping, the direction and target auxiliary
// predictors, the global prediction queue (GPQ) discipline, and the
// completion-time update engine. Generational presets reproduce the
// zEC12, z13 and z14 baselines the paper's history section describes.
package core

import (
	"fmt"

	"zbp/internal/btb"
	"zbp/internal/cpred"
	"zbp/internal/dirpred"
	"zbp/internal/tgt"
)

// Config fully describes a predictor generation.
type Config struct {
	// Name labels the configuration ("z15", "z14", ...).
	Name string

	// BTB1 is the first-level BTB geometry; its LineShift is also the
	// search granule (64B single-port on z15, 32B dual-port before).
	BTB1 btb.Geometry
	// BTB2Enabled turns the second level on.
	BTB2Enabled bool
	BTB2        btb.Geometry
	// BTBPEntries sizes the preload buffer; 0 (z15) removes it.
	BTBPEntries int
	// StageCap is the BTB2->BTB1 staging queue depth.
	StageCap int
	// BTB2MissRun is the number of successive no-prediction searches
	// that triggers a BTB2 backfill search (3 on z15).
	BTB2MissRun int
	// BTB2RegionLines/BTB2MaxBranches bound one bulk BTB2 search (up to
	// 128 branches, §III).
	BTB2RegionLines int
	BTB2MaxBranches int
	// SurpriseWindow/SurpriseRun: a proactive BTB2 search fires when
	// SurpriseRun disruptive surprise branches complete within
	// SurpriseWindow cycles (§III). Zero disables.
	SurpriseWindow int64
	SurpriseRun    int
	// CtxPrefetch triggers a proactive BTB2 search on context-changing
	// events (§III).
	CtxPrefetch bool
	// RefreshRun is the global count of no-hit searches after which one
	// LRU entry is refreshed back into the BTB2 (§III). Zero disables
	// (pre-z15 semi-exclusive designs).
	RefreshRun int
	// InclusiveInstall maintains the z15 semi-inclusive invariant (the
	// BTB2 is an approximate superset of the BTB1, §III) by writing new
	// installs to both levels; the periodic refresh then keeps the
	// BTB2's *state* (counters, metadata) fresh. Pre-z15 designs are
	// semi-exclusive: content reaches the BTB2 only as BTBP victims.
	InclusiveInstall bool

	// GPVDepth is the taken-branch path history length (9 or 17).
	GPVDepth int
	// Dir and Tgt parameterize the auxiliary predictors.
	Dir dirpred.Config
	Tgt tgt.Config
	// CPred parameterizes the column predictor; zero entries disables.
	CPred cpred.Config
	// SkootEnabled turns SKOOT line-skipping on (z15 only).
	SkootEnabled bool

	// Pipeline timing (paper §IV, figures 4-7).
	// PipeStages is the b0..b5 depth: a prediction issued at b0 in
	// cycle c is presented at c+PipeStages-1.
	PipeStages int
	// CPredReindexStage is the b-cycle at which a CPRED hit re-indexes
	// (2 -> taken-branch period of 2 cycles).
	CPredReindexStage int
	// SMT2SharedPort: true on z15 (threads alternate on one 64B port);
	// false pre-z15 (each thread owns a 32B port every cycle).
	SMT2SharedPort bool
	// SearchesPerCycleST is how many sequential b0 indexes a single
	// thread can start per cycle (2 on the dual-port pre-z15 designs
	// searching 2x32B, 1 on z15 searching 1x64B).
	SearchesPerCycleST int

	// PredQueueCap bounds the per-thread prediction queue to the
	// IDU/ICM; a full queue throttles the search pipeline (§IV).
	PredQueueCap int
	// WriteQueueCap bounds the completion/install write queue.
	WriteQueueCap int
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if err := validateGeo(c.BTB1); err != nil {
		return fmt.Errorf("BTB1: %w", err)
	}
	if c.BTB2Enabled {
		if err := validateGeo(c.BTB2); err != nil {
			return fmt.Errorf("BTB2: %w", err)
		}
	}
	if c.GPVDepth < 1 || c.GPVDepth > 32 {
		return fmt.Errorf("core: GPVDepth %d out of range", c.GPVDepth)
	}
	if c.PipeStages < 2 || c.CPredReindexStage >= c.PipeStages {
		return fmt.Errorf("core: bad pipeline stages %d/%d", c.PipeStages, c.CPredReindexStage)
	}
	if c.PredQueueCap < 1 || c.WriteQueueCap < 1 || c.StageCap < 1 {
		return fmt.Errorf("core: queue capacities must be positive")
	}
	if c.SearchesPerCycleST < 1 {
		return fmt.Errorf("core: SearchesPerCycleST must be >= 1")
	}
	return nil
}

func validateGeo(g btb.Geometry) error {
	if g.Ways <= 0 || g.RowBits == 0 {
		return fmt.Errorf("invalid geometry %+v", g)
	}
	return nil
}

// Z15 returns the z15 configuration: 16K-entry BTB1 (2K x 8, 64B
// single-port lines), 128K-entry BTB2, TAGE short+long PHT, perceptron,
// CTB-17, enhanced CRS, CPRED with SKOOT, no BTBP, semi-inclusive BTB2
// with periodic refresh.
func Z15() Config {
	return Config{
		Name:        "z15",
		BTB1:        btb.Geometry{RowBits: 11, Ways: 8, TagBits: 15, LineShift: 6},
		BTB2Enabled: true,
		BTB2:        btb.Geometry{RowBits: 15, Ways: 4, TagBits: 13, LineShift: 6},
		BTBPEntries: 0,
		StageCap:    128,
		BTB2MissRun: 3, BTB2RegionLines: 32, BTB2MaxBranches: 128,
		SurpriseWindow: 256, SurpriseRun: 4, CtxPrefetch: true,
		RefreshRun: 16, InclusiveInstall: true,
		GPVDepth:     17,
		Dir:          dirpred.DefaultZ15(),
		Tgt:          tgt.DefaultZ15(),
		CPred:        cpred.DefaultZ15(),
		SkootEnabled: true,
		PipeStages:   6, CPredReindexStage: 2,
		SMT2SharedPort: true, SearchesPerCycleST: 1,
		PredQueueCap: 24, WriteQueueCap: 16,
	}
}

// Z14 returns the z14 baseline: 8K-entry BTB1 (32B dual-port lines),
// 128K-entry BTB2 with BTBP, single tagged PHT over a 17-deep GPV,
// perceptron, basic CRS (no amnesty), CPRED without SKOOT.
func Z14() Config {
	c := Z15()
	c.Name = "z14"
	c.BTB1 = btb.Geometry{RowBits: 11, Ways: 4, TagBits: 15, LineShift: 5}
	c.BTB2 = btb.Geometry{RowBits: 15, Ways: 4, TagBits: 13, LineShift: 5}
	c.BTBPEntries = 128
	c.RefreshRun = 0 // semi-exclusive: BTBP is the victim buffer
	c.InclusiveInstall = false
	c.GPVDepth = 17 // extended on z14 for the perceptron (§V)
	c.Dir.TwoTables = false
	// The single tagged PHT is the z196-lineage design (§V); the paper
	// attributes the deep (17-branch) pattern index to the z15 TAGE
	// long table, so the z14 baseline keeps the 9-branch index.
	c.Dir.ShortHist = 9
	c.Tgt.CTBHist = 9
	c.Tgt.AmnestyN = 0 // blacklist is permanent pre-z15
	c.SkootEnabled = false
	c.SMT2SharedPort = false
	c.SearchesPerCycleST = 2
	return c
}

// Z13 returns the z13 baseline: 8K-entry BTB1, 64K-entry BTB2 with
// BTBP, single tagged PHT over a 9-deep GPV, no perceptron, no CRS, no
// CPRED.
func Z13() Config {
	c := Z14()
	c.Name = "z13"
	c.BTB2 = btb.Geometry{RowBits: 14, Ways: 4, TagBits: 13, LineShift: 5}
	c.GPVDepth = 9
	c.Dir.ShortHist = 9
	c.Dir.PerceptronEnabled = false
	c.Tgt.CRSEnabled = false
	c.CPred.Entries = 0
	return c
}

// ZEC12 returns the zEC12 baseline, the original two-level design
// (§III): 4K-entry BTB1, 24K-entry BTB2, BTBP, single PHT, no
// perceptron/CRS/CPRED.
func ZEC12() Config {
	c := Z13()
	c.Name = "zEC12"
	c.BTB1 = btb.Geometry{RowBits: 10, Ways: 4, TagBits: 15, LineShift: 5}
	c.BTB2 = btb.Geometry{RowBits: 13, Ways: 3, TagBits: 13, LineShift: 5}
	c.BTBPEntries = 64
	return c
}

// Generations returns the four presets oldest-first.
func Generations() []Config {
	return []Config{ZEC12(), Z13(), Z14(), Z15()}
}

// ByName returns the named preset.
func ByName(name string) (Config, error) {
	for _, c := range Generations() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("core: unknown config %q (have zEC12, z13, z14, z15)", name)
}
