package core

import (
	"testing"

	"zbp/internal/btb"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

// takenBranch builds an unconditional relative branch entry.
func takenBranch(addr, target zarch.Addr) btb.Info {
	return btb.Info{
		Addr: addr, Len: 4, Kind: zarch.KindUncondRel,
		Target: target, BHT: sat.StrongT, Skoot: btb.SkootUnknown,
	}
}

// condBranch builds a conditional relative branch entry.
func condBranch(addr, target zarch.Addr, bht sat.Counter2) btb.Info {
	return btb.Info{
		Addr: addr, Len: 4, Kind: zarch.KindCondRel,
		Target: target, BHT: bht, Skoot: btb.SkootUnknown,
	}
}

func run(c *Core, cycles int) {
	for i := 0; i < cycles; i++ {
		c.Cycle()
	}
}

func TestConfigsValidate(t *testing.T) {
	for _, cfg := range Generations() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if _, err := ByName("z15"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("z99"); err == nil {
		t.Error("ByName accepted unknown config")
	}
}

func TestGenerationCapacitiesGrow(t *testing.T) {
	gens := Generations()
	for i := 1; i < len(gens); i++ {
		prev, cur := gens[i-1], gens[i]
		if cur.BTB1.Capacity() < prev.BTB1.Capacity() {
			t.Errorf("BTB1 capacity shrank %s->%s", prev.Name, cur.Name)
		}
		if cur.BTB2.Capacity() < prev.BTB2.Capacity() {
			t.Errorf("BTB2 capacity shrank %s->%s", prev.Name, cur.Name)
		}
	}
	z15 := Z15()
	if z15.BTB1.Capacity() != 16384 || z15.BTB2.Capacity() != 131072 {
		t.Errorf("z15 capacities: BTB1=%d BTB2=%d", z15.BTB1.Capacity(), z15.BTB2.Capacity())
	}
}

func TestPredictionPresentedAtB5(t *testing.T) {
	c := New(Z15())
	c.Preload(1, takenBranch(0x10008, 0x20000))
	c.Restart(0, 0x10000, 0)
	// Restart schedules the first b0 at clock+1.
	start := c.Clock()
	var got Prediction
	for i := 0; i < 20; i++ {
		c.Cycle()
		if p, ok := c.PeekPred(0); ok {
			got = p
			break
		}
	}
	if got.Addr != 0x10008 || !got.Taken || got.Target != 0x20000 {
		t.Fatalf("prediction = %+v", got)
	}
	// b0 at start+1, presented at b5 = start+1+5.
	if want := start + 1 + int64(Z15().PipeStages) - 1; got.PresentedAt != want {
		t.Errorf("PresentedAt = %d, want %d", got.PresentedAt, want)
	}
}

// measureTakenPeriod runs a two-branch loop (A -> B -> A ...) and
// returns the steady-state cycle gap between consecutive taken
// predictions.
func measureTakenPeriod(t *testing.T, cfg Config, warm, meas int) float64 {
	t.Helper()
	c := New(cfg)
	a, b := zarch.Addr(0x10000), zarch.Addr(0x40000)
	c.Preload(1, takenBranch(a+8, b))
	c.Preload(1, takenBranch(b+8, a))
	c.Restart(0, a, 0)
	var times []int64
	for len(times) < warm+meas {
		c.Cycle()
		for {
			p, ok := c.PopPred(0)
			if !ok {
				break
			}
			if p.Taken {
				times = append(times, p.PresentedAt)
			}
		}
	}
	first, last := times[warm], times[len(times)-1]
	return float64(last-first) / float64(len(times)-1-warm)
}

func TestTakenPeriodWithCPRED(t *testing.T) {
	// Figure 5: with CPRED the design predicts a taken branch every 2
	// cycles.
	p := measureTakenPeriod(t, Z15(), 40, 60)
	if p < 1.9 || p > 2.3 {
		t.Errorf("taken period with CPRED = %.2f, want ~2", p)
	}
}

func TestTakenPeriodWithoutCPRED(t *testing.T) {
	// Figure 4: without CPRED, one taken branch every 5 cycles.
	cfg := Z15()
	cfg.CPred.Entries = 0
	p := measureTakenPeriod(t, cfg, 10, 40)
	if p < 4.9 || p > 5.3 {
		t.Errorf("taken period without CPRED = %.2f, want ~5", p)
	}
}

func TestSequentialSearchAdvances(t *testing.T) {
	c := New(Z15())
	c.Restart(0, 0x10000, 0)
	run(c, 10)
	_, searched, _ := c.SearchProgress(0)
	// 10 cycles, first b0 at cycle 1: 10 sequential searches of 64B.
	if searched < 0x10000+9*64 {
		t.Errorf("searchedTo = %s", searched)
	}
	if st := c.Stats(); st.NoPredSearches < 9 {
		t.Errorf("NoPredSearches = %d", st.NoPredSearches)
	}
}

func TestBTB2BackfillOnMissRun(t *testing.T) {
	cfg := Z15()
	c := New(cfg)
	// Branch known only to the BTB2, several lines ahead of the restart
	// point so the 3-miss trigger fires first.
	br := takenBranch(0x10200+8, 0x90000)
	c.Preload(2, br)
	c.Restart(0, 0x10000, 0)
	run(c, 60)
	if _, ok := c.BTB1Lookup(br.Addr); !ok {
		t.Fatal("BTB2 content never backfilled into BTB1")
	}
	if c.Stats().BTB2MissTriggers == 0 {
		t.Error("no miss-run trigger recorded")
	}
}

func TestNoBTB2NoBackfill(t *testing.T) {
	cfg := Z15()
	cfg.BTB2Enabled = false
	c := New(cfg)
	c.Restart(0, 0x10000, 0)
	run(c, 60)
	if c.Stats().BTB2MissTriggers != 0 {
		t.Error("miss triggers without a BTB2")
	}
}

func TestPeriodicRefreshWritesToBTB2(t *testing.T) {
	cfg := Z15()
	cfg.RefreshRun = 1
	c := New(cfg)
	// Fill one BTB1 row completely so an LRU victim exists, then search
	// a row-aliased line whose tag misses: the no-hit search's row is
	// full, and its LRU entry is refreshed out to the BTB2 (§III).
	row := zarch.Addr(0x10000)
	stride := zarch.Addr(cfg.BTB1.Rows() * cfg.BTB1.LineBytes())
	for w := 0; w < cfg.BTB1.Ways; w++ {
		c.Preload(1, takenBranch(row+zarch.Addr(w)*stride+8, 0x90000))
	}
	before := c.BTB2Occupancy()
	c.Restart(0, row+zarch.Addr(cfg.BTB1.Ways+2)*stride, 0)
	run(c, 10)
	if c.Stats().RefreshWrites == 0 {
		t.Fatal("no refresh writes")
	}
	if c.BTB2Occupancy() <= before {
		t.Error("refresh did not populate the BTB2")
	}
}

func TestQueueBackpressure(t *testing.T) {
	cfg := Z15()
	cfg.PredQueueCap = 4
	c := New(cfg)
	a, b := zarch.Addr(0x10000), zarch.Addr(0x40000)
	c.Preload(1, takenBranch(a+8, b))
	c.Preload(1, takenBranch(b+8, a))
	c.Restart(0, a, 0)
	run(c, 200) // never consume
	if got := c.QueueLen(0); got > cfg.PredQueueCap {
		t.Errorf("queue grew to %d, cap %d", got, cfg.PredQueueCap)
	}
	if c.Stats().QueueStallCycles == 0 {
		t.Error("no stall cycles recorded")
	}
}

func TestRestartClearsQueue(t *testing.T) {
	c := New(Z15())
	c.Preload(1, takenBranch(0x10008, 0x20000))
	c.Restart(0, 0x10000, 0)
	run(c, 10)
	if c.QueueLen(0) == 0 {
		t.Fatal("no predictions queued")
	}
	c.Restart(0, 0x50000, 0)
	if c.QueueLen(0) != 0 {
		t.Error("restart kept stale predictions")
	}
	_, _, epoch := c.SearchProgress(0)
	if epoch != 2 {
		t.Errorf("epoch = %d", epoch)
	}
}

func TestSMT2PortSharing(t *testing.T) {
	cfg := Z15()
	c := New(cfg)
	c.Restart(0, 0x10000, 0)
	c.Restart(1, 0x80000, 1)
	run(c, 40)
	st := c.Stats()
	// Two threads share one port: total searches ~= cycles.
	if st.Searches > st.Cycles+2 {
		t.Errorf("shared port exceeded 1 search/cycle: %d searches in %d cycles",
			st.Searches, st.Cycles)
	}
	// Pre-z15: two ports, each thread searches every cycle.
	c13 := New(Z13())
	c13.Restart(0, 0x10000, 0)
	c13.Restart(1, 0x80000, 1)
	run(c13, 40)
	st13 := c13.Stats()
	if st13.Searches < 2*st13.Cycles-4 {
		t.Errorf("dual-port design searched only %d in %d cycles", st13.Searches, st13.Cycles)
	}
}

func TestCompleteUpdatesBHT(t *testing.T) {
	c := New(Z15())
	br := condBranch(0x10008, 0x20000, sat.WeakT)
	c.Preload(1, br)
	c.Restart(0, 0x10000, 0)
	var p Prediction
	for i := 0; i < 20; i++ {
		c.Cycle()
		if q, ok := c.PopPred(0); ok {
			p = q
			break
		}
	}
	if p.Addr != br.Addr {
		t.Fatalf("no prediction: %+v", p)
	}
	c.Complete(Outcome{Pred: p, Taken: true, Target: 0x20000})
	info, _ := c.BTB1Lookup(br.Addr)
	if info.BHT != sat.StrongT {
		t.Errorf("BHT after taken completion = %d", info.BHT)
	}
	if info.Bidirectional {
		t.Error("correct prediction set bidirectional")
	}
}

func TestCompleteWrongDirectionSetsBidirectional(t *testing.T) {
	c := New(Z15())
	br := condBranch(0x10008, 0x20000, sat.StrongT)
	c.Preload(1, br)
	c.Restart(0, 0x10000, 0)
	var p Prediction
	for i := 0; i < 20; i++ {
		c.Cycle()
		if q, ok := c.PopPred(0); ok {
			p = q
			break
		}
	}
	c.Complete(Outcome{Pred: p, Taken: false})
	info, _ := c.BTB1Lookup(br.Addr)
	if !info.Bidirectional {
		t.Error("wrong direction did not set bidirectional")
	}
}

func TestCompleteWrongTargetSetsMultiTargetAndFixesBTB(t *testing.T) {
	c := New(Z15())
	br := takenBranch(0x10008, 0x20000)
	br.Kind = zarch.KindUncondInd
	br.Len = 2
	c.Preload(1, br)
	c.Restart(0, 0x10000, 0)
	var p Prediction
	for i := 0; i < 20; i++ {
		c.Cycle()
		if q, ok := c.PopPred(0); ok {
			p = q
			break
		}
	}
	c.Complete(Outcome{Pred: p, Taken: true, Target: 0x30000})
	info, _ := c.BTB1Lookup(br.Addr)
	if !info.MultiTarget {
		t.Error("wrong target did not set multi-target")
	}
	if info.Target != 0x30000 {
		t.Errorf("BTB target not corrected: %s", info.Target)
	}
}

func TestSurpriseInstallRules(t *testing.T) {
	c := New(Z15())
	c.Restart(0, 0x10000, 0)
	run(c, 2)
	// Resolved-taken conditional: installed.
	c.CompleteSurprise(Surprise{Thread: 0, Addr: 0x11000, Len: 4,
		Kind: zarch.KindCondRel, Taken: true, Target: 0x12000})
	// Guessed-NT resolved-NT conditional: not installed.
	c.CompleteSurprise(Surprise{Thread: 0, Addr: 0x11100, Len: 4,
		Kind: zarch.KindCondRel, Taken: false})
	// Guessed-taken (loop) resolved-NT: installed.
	c.CompleteSurprise(Surprise{Thread: 0, Addr: 0x11200, Len: 4,
		Kind: zarch.KindLoop, Taken: false})
	run(c, 10) // drain write queue
	if _, ok := c.BTB1Lookup(0x11000); !ok {
		t.Error("resolved-taken surprise not installed")
	}
	if _, ok := c.BTB1Lookup(0x11100); ok {
		t.Error("guessed-NT resolved-NT surprise installed")
	}
	if _, ok := c.BTB1Lookup(0x11200); !ok {
		t.Error("guessed-taken resolved-NT surprise not installed")
	}
	if c.Stats().SurpriseInstalls != 2 {
		t.Errorf("SurpriseInstalls = %d", c.Stats().SurpriseInstalls)
	}
}

func TestSurpriseRunTriggersProactiveBTB2(t *testing.T) {
	cfg := Z15()
	cfg.SurpriseRun = 3
	cfg.SurpriseWindow = 1000
	c := New(cfg)
	c.Preload(2, takenBranch(0x11008, 0x90000))
	c.Restart(0, 0x10000, 0)
	for i := 0; i < 3; i++ {
		run(c, 2)
		c.CompleteSurprise(Surprise{Thread: 0, Addr: zarch.Addr(0x11000 + i*0x80),
			Len: 4, Kind: zarch.KindCondRel, Taken: true, Target: 0x12000})
	}
	if c.Stats().BTB2Proactive == 0 {
		t.Fatal("no proactive BTB2 search")
	}
}

func TestCtxChangePrefetch(t *testing.T) {
	c := New(Z15())
	c.Restart(0, 0x10000, 1)
	run(c, 2)
	c.Restart(0, 0x10000, 2)
	if c.Stats().BTB2CtxPrefetch != 1 {
		t.Errorf("ctx prefetches = %d", c.Stats().BTB2CtxPrefetch)
	}
}

func TestBadPredictionInvalidates(t *testing.T) {
	c := New(Z15())
	br := takenBranch(0x10008, 0x20000)
	c.Preload(1, br)
	c.Restart(0, 0x10000, 0)
	var p Prediction
	for i := 0; i < 20; i++ {
		c.Cycle()
		if q, ok := c.PopPred(0); ok {
			p = q
			break
		}
	}
	c.BadPrediction(p)
	if _, ok := c.BTB1Lookup(br.Addr); ok {
		t.Error("bad prediction entry survived")
	}
	if c.Stats().BadPredictions != 1 {
		t.Error("BadPredictions not counted")
	}
}

func TestSkootLearnsAndSkips(t *testing.T) {
	cfg := Z15()
	c := New(cfg)
	// Branch A jumps to a target whose next branch (B) is 3 lines
	// later; SKOOT on A should learn 3 and later skip straight there.
	a := takenBranch(0x10008, 0x20000)
	b := takenBranch(0x20000+3*64+8, 0x10000)
	c.Preload(1, a)
	c.Preload(1, b)
	c.Restart(0, 0x10000, 0)
	run(c, 120)
	infoA, _ := c.BTB1Lookup(a.Addr)
	if infoA.Skoot != 3 {
		t.Fatalf("SKOOT on A = %d, want 3", infoA.Skoot)
	}
	if c.Stats().SkootLinesSkipped == 0 {
		t.Error("no lines skipped")
	}
}

func TestSkootShrinksOnSurprise(t *testing.T) {
	cfg := Z15()
	c := New(cfg)
	a := takenBranch(0x10008, 0x20000)
	a.Skoot = 3 // stale: pretends 3 lines are empty
	c.Preload(1, a)
	c.Restart(0, 0x10000, 0)
	run(c, 20)
	// Surprise branch appears one line into the "skipped" region.
	c.CompleteSurprise(Surprise{Thread: 0, Addr: 0x20000 + 64 + 8, Len: 4,
		Kind: zarch.KindCondRel, Taken: true, Target: 0x30000,
		StreamEntry: a.Addr, HasStreamEntry: true})
	infoA, _ := c.BTB1Lookup(a.Addr)
	if infoA.Skoot != 1 {
		t.Errorf("SKOOT after surprise = %d, want 1", infoA.Skoot)
	}
}

func TestBTBPPromotionPath(t *testing.T) {
	// On z14, BTB2 hits land in the BTBP; a qualified BTBP hit is
	// promoted into the BTB1.
	cfg := Z14()
	c := New(cfg)
	br := takenBranch(0x10108, 0x90000)
	br.Len = 4
	c.Preload(2, br)
	c.Restart(0, 0x10000, 0)
	run(c, 200)
	if _, ok := c.BTB1Lookup(br.Addr); !ok {
		t.Fatal("BTBP hit never promoted to BTB1")
	}
}

func TestPreloadPanicsOnBadLevel(t *testing.T) {
	c := New(Z15())
	defer func() {
		if recover() == nil {
			t.Error("Preload(3, ...) did not panic")
		}
	}()
	c.Preload(3, takenBranch(0x1000, 0x2000))
}
