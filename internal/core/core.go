package core

import (
	"zbp/internal/btb"
	"zbp/internal/cpred"
	"zbp/internal/dirpred"
	"zbp/internal/history"
	"zbp/internal/metrics"
	"zbp/internal/tgt"
	"zbp/internal/zarch"
)

// MaxThreads is the SMT width of the modeled core.
const MaxThreads = 2

// Prediction is one branch prediction presented to the IDU/ICM in the
// b5 cycle. The embedded selections snapshot everything the completion
// logic needs (the GPQ role, §IV).
type Prediction struct {
	Seq    uint64
	Thread int
	// Epoch identifies the restart generation; stale-epoch predictions
	// are discarded on restart.
	Epoch uint64
	// Stream counts taken-branch-delimited instruction streams since
	// the last restart; the IDU uses it to know how far the BPL has
	// searched (§IV synchronization).
	Stream uint64
	Addr   zarch.Addr
	Len    uint8
	Kind   zarch.BranchKind
	Taken  bool
	Target zarch.Addr
	Ctx    uint16
	Way    int
	Dir    dirpred.Selection
	Tgt    tgt.Selection
	// StreamStart is the search start address of the stream this
	// prediction was made in (the CPRED key); mispredict completions
	// use it to invalidate stale column/power predictions.
	StreamStart zarch.Addr
	// PresentedAt is the cycle the prediction becomes visible (b5).
	PresentedAt int64
	// FromBTBP marks a prediction made out of the preload buffer
	// (pre-z15 designs).
	FromBTBP bool
}

// Stats aggregates core-level events.
type Stats struct {
	Cycles             int64
	Searches           int64
	NoPredSearches     int64
	Predictions        int64
	TakenPredictions   int64
	QueueStallCycles   int64
	CPredFastRedirects int64
	CPredSlowRedirects int64
	SkootLinesSkipped  int64
	BTB2MissTriggers   int64
	BTB2Proactive      int64
	BTB2CtxPrefetch    int64
	RefreshWrites      int64
	SurpriseInstalls   int64
	BadPredictions     int64
	BTB2Suppressed     int64 // backfill triggers dropped while a transfer drains
	SurpriseInBTB2     int64 // surprises whose branch was sitting in the BTB2
	GatedButNeededCTB  int64 // multi-target hits seen while the CTB was powered down
	GatedButNeededAux  int64 // bidirectional hits seen while PHT/perceptron were powered down
	PowerGatedPHT      int64 // searches executed with the PHT powered down
	PowerGatedPerc     int64
	PowerGatedCTB      int64
	WriteQueueDrops    int64
	// StreamSearchHist distributes the number of b0 searches each
	// closed stream needed before its exit was found (the quantity the
	// CPRED learns, §IV).
	StreamSearchHist metrics.Hist
}

// NewStreamSearchHist returns the searches-per-stream histogram shape.
func NewStreamSearchHist() metrics.Hist {
	return metrics.NewHist(1, 2, 3, 4, 6, 8, 12)
}

// Register exposes every counter and the stream histogram under
// prefix (e.g. "core").
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Counter(prefix+".cycles", &s.Cycles)
	r.Counter(prefix+".searches", &s.Searches)
	r.Counter(prefix+".nopred_searches", &s.NoPredSearches)
	r.Counter(prefix+".predictions", &s.Predictions)
	r.Counter(prefix+".taken_predictions", &s.TakenPredictions)
	r.Counter(prefix+".queue_stall_cycles", &s.QueueStallCycles)
	r.Counter(prefix+".cpred_fast_redirects", &s.CPredFastRedirects)
	r.Counter(prefix+".cpred_slow_redirects", &s.CPredSlowRedirects)
	r.Counter(prefix+".skoot_lines_skipped", &s.SkootLinesSkipped)
	r.Counter(prefix+".btb2_miss_triggers", &s.BTB2MissTriggers)
	r.Counter(prefix+".btb2_proactive", &s.BTB2Proactive)
	r.Counter(prefix+".btb2_ctx_prefetch", &s.BTB2CtxPrefetch)
	r.Counter(prefix+".refresh_writes", &s.RefreshWrites)
	r.Counter(prefix+".surprise_installs", &s.SurpriseInstalls)
	r.Counter(prefix+".bad_predictions", &s.BadPredictions)
	r.Counter(prefix+".btb2_suppressed", &s.BTB2Suppressed)
	r.Counter(prefix+".surprise_in_btb2", &s.SurpriseInBTB2)
	r.Counter(prefix+".gated_but_needed_ctb", &s.GatedButNeededCTB)
	r.Counter(prefix+".gated_but_needed_aux", &s.GatedButNeededAux)
	r.Counter(prefix+".power_gated_pht", &s.PowerGatedPHT)
	r.Counter(prefix+".power_gated_perc", &s.PowerGatedPerc)
	r.Counter(prefix+".power_gated_ctb", &s.PowerGatedCTB)
	r.Counter(prefix+".write_queue_drops", &s.WriteQueueDrops)
	r.Hist(prefix+".stream_searches", &s.StreamSearchHist)
}

// thread is the per-thread search state of the lookahead pipeline.
type thread struct {
	active bool
	ctx    uint16

	searchAddr zarch.Addr
	nextB0     int64
	epoch      uint64
	stream     uint64

	gpvSpec history.GPV // speculative (search-time) path history
	gpvArch history.GPV // architectural (completion-time) path history

	// Current-stream bookkeeping.
	streamStart      zarch.Addr // search start of this stream (CPRED key)
	searchesInStream int
	firstHitSearch   int // search index of the first BTB hit; -1 none yet
	entryBranch      zarch.Addr
	hasEntryBranch   bool
	entrySkip        int
	streamNeeds      cpred.PowerMask
	cpredRes         cpred.Result
	powered          cpred.PowerMask

	noPredRun      int
	noPredRunStart zarch.Addr // line where the current no-hit run began
	// predQ is the prediction queue, consumed from predHead: pops
	// advance the head instead of copying the tail down, so the
	// per-instruction consume path never moves ~200-byte Predictions.
	// Space ahead of the head is reclaimed lazily before an append
	// would outgrow the fixed-capacity backing array.
	predQ    []Prediction
	predHead int
}

// queueLen returns the number of queued predictions (visible or not).
func (th *thread) queueLen() int { return len(th.predQ) - th.predHead }

// Core is the asynchronous lookahead branch predictor.
type Core struct {
	cfg Config

	btb1  *btb.Table
	btb2  *btb.Table
	btbp  *btb.Preload
	stage *btb.Stage
	dir   *dirpred.Unit
	tgt   *tgt.Unit
	cpred *cpred.CPRED

	threads [MaxThreads]thread
	clock   int64
	seq     uint64

	writeQ []btb.Info

	refreshRun int

	// Sliding window of recent surprise-completion cycles for the
	// proactive BTB2 trigger.
	surpriseTimes []int64

	lastCompletedSeq uint64
	btb2ReadyAt      int64
	stats            Stats

	// mergedBuf is the reusable per-search merge buffer of BTB1+BTBP
	// hits; issueSearch runs every cycle and must not allocate.
	mergedBuf []mhit

	// searchHook, when set, observes every b0 index (thread, line).
	// The simulator wires it to the I-cache prefetcher: the lookahead
	// search stream is the instruction prefetch stream (§IV).
	searchHook func(t int, line zarch.Addr)
	// predictHook, when set, observes every generated prediction (the
	// verification read-side monitor, §VII).
	predictHook func(Prediction)
	// surpriseHook, when set, observes every completed surprise and
	// whether its install was queued (write-side monitor, §VII).
	surpriseHook func(s Surprise, queued bool)
}

// SetPredictHook registers an observer of every generated prediction.
func (c *Core) SetPredictHook(fn func(Prediction)) { c.predictHook = fn }

// SetSurpriseHook registers an observer of surprise completions.
func (c *Core) SetSurpriseHook(fn func(s Surprise, queued bool)) { c.surpriseHook = fn }

// SetSearchHook registers an observer of every search index.
func (c *Core) SetSearchHook(fn func(t int, line zarch.Addr)) { c.searchHook = fn }

// ObserveBTB1 registers a white-box observer of every BTB1 write
// (verification harness, §VII).
func (c *Core) ObserveBTB1(fn func(btb.Event)) { c.btb1.SetObserver(fn) }

// ObserveBTB2 registers a white-box observer of every BTB2 write; a
// no-op when the second level is disabled.
func (c *Core) ObserveBTB2(fn func(btb.Event)) {
	if c.btb2 != nil {
		c.btb2.SetObserver(fn)
	}
}

// New builds a predictor for cfg.
func New(cfg Config) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Core{
		cfg:   cfg,
		btb1:  btb.New(cfg.BTB1),
		dir:   dirpred.New(cfg.Dir),
		tgt:   tgt.New(cfg.Tgt),
		cpred: cpred.New(cfg.CPred),
		stage: btb.NewStage(cfg.StageCap),
	}
	if cfg.BTB2Enabled {
		c.btb2 = btb.New(cfg.BTB2)
	}
	if cfg.BTBPEntries > 0 {
		c.btbp = btb.NewPreload(cfg.BTBPEntries)
	}
	for t := range c.threads {
		c.threads[t].gpvSpec = history.New(cfg.GPVDepth)
		c.threads[t].gpvArch = history.New(cfg.GPVDepth)
		c.threads[t].firstHitSearch = -1
		c.threads[t].predQ = make([]Prediction, 0, cfg.PredQueueCap)
	}
	c.writeQ = make([]btb.Info, 0, cfg.WriteQueueCap)
	c.stats.StreamSearchHist = NewStreamSearchHist()
	return c
}

// RegisterMetrics registers the whole predictor tree's live counters:
// the core's own under "core" and each substructure under its
// conventional prefix (btb1, btb2, dir, tgt, cpred).
func (c *Core) RegisterMetrics(r *metrics.Registry) {
	c.stats.Register(r, "core")
	c.btb1.RegisterMetrics(r, "btb1")
	if c.btb2 != nil {
		c.btb2.RegisterMetrics(r, "btb2")
	}
	c.dir.RegisterMetrics(r, "dir")
	c.tgt.RegisterMetrics(r, "tgt")
	c.cpred.RegisterMetrics(r, "cpred")
}

// Config returns the active configuration.
func (c *Core) Config() Config { return c.cfg }

// Clock returns the current cycle.
func (c *Core) Clock() int64 { return c.clock }

// Stats returns a copy of the core counters.
func (c *Core) Stats() Stats { return c.stats }

// BTB1Stats / BTB2Stats / DirStats / TgtStats / CPredStats expose the
// substructure counters for experiments and verification.
func (c *Core) BTB1Stats() btb.Stats { return c.btb1.Stats() }

// BTB2Stats returns the second-level counters (zero value if disabled).
func (c *Core) BTB2Stats() btb.Stats {
	if c.btb2 == nil {
		return btb.Stats{}
	}
	return c.btb2.Stats()
}

// DirStats returns direction-unit counters.
func (c *Core) DirStats() dirpred.Stats { return c.dir.Stats() }

// TgtStats returns target-unit counters.
func (c *Core) TgtStats() tgt.Stats { return c.tgt.Stats() }

// CPredStats returns column-predictor counters.
func (c *Core) CPredStats() cpred.Stats { return c.cpred.Stats() }

// StageDrops returns staging-queue overflow drops.
func (c *Core) StageDrops() int64 { return c.stage.Drops() }

// Restart redirects a thread's search to addr in address space ctx:
// the post-flush resynchronization point of the asynchronous predictor
// (§IV). All queued and in-flight predictions for the thread die, the
// speculative path history is restored from the architectural one, and
// a context change optionally triggers a proactive BTB2 prefetch.
func (c *Core) Restart(t int, addr zarch.Addr, ctx uint16) {
	th := &c.threads[t]
	ctxChanged := th.active && ctx != th.ctx
	th.active = true
	th.epoch++
	th.stream = 0
	th.predQ = th.predQ[:0]
	th.predHead = 0
	th.searchAddr = addr
	th.nextB0 = c.clock + 1
	th.gpvSpec = th.gpvArch
	th.ctx = ctx
	th.noPredRun = 0
	c.enterStream(t, addr, 0, zarch.Addr(0), false)
	c.dir.Flush(c.lastCompletedSeq + 1)
	c.tgt.RestartPredStack()
	if ctxChanged && c.cfg.CtxPrefetch && c.btb2 != nil {
		c.stats.BTB2CtxPrefetch++
		c.btb2Search(addr)
	}
}

// Deactivate stops a thread's searching (end of its instruction feed).
func (c *Core) Deactivate(t int) { c.threads[t].active = false }

// enterStream resets per-stream bookkeeping after a redirect or
// restart.
func (c *Core) enterStream(t int, start zarch.Addr, skip int, entry zarch.Addr, hasEntry bool) {
	th := &c.threads[t]
	if th.searchesInStream > 0 {
		// Close out the previous stream: its search count is the
		// quantity the CPRED learns (zero-search closes are restart
		// artifacts, not streams).
		c.stats.StreamSearchHist.Observe(int64(th.searchesInStream))
	}
	th.streamStart = start
	th.searchesInStream = 0
	th.firstHitSearch = -1
	th.entryBranch = entry
	th.hasEntryBranch = hasEntry
	th.entrySkip = skip
	th.streamNeeds = 0
	th.cpredRes = c.cpred.Lookup(start)
	if th.cpredRes.Hit {
		th.powered = th.cpredRes.Power
	} else {
		th.powered = cpred.PowerAll
	}
}

// portAvailable implements the search-port arbitration (§IV): on z15's
// shared 64B port, two active threads alternate cycles; on the pre-z15
// dual 32B ports each thread searches every cycle.
func (c *Core) portAvailable(t int) bool {
	if !c.cfg.SMT2SharedPort {
		return true
	}
	other := 1 - t
	if t >= MaxThreads || !c.threads[other].active {
		return true
	}
	return c.clock%2 == int64(t)
}

// Cycle advances the predictor by one cycle: drain one write, issue
// searches, age queues.
func (c *Core) Cycle() {
	c.clock++
	c.stats.Cycles++
	c.drainWrites()
	for t := range c.threads {
		th := &c.threads[t]
		if !th.active || c.clock < th.nextB0 || !c.portAvailable(t) {
			continue
		}
		if th.queueLen() >= c.cfg.PredQueueCap {
			// Consumers are full: stop sending (§IV back-pressure).
			c.stats.QueueStallCycles++
			continue
		}
		for i := 0; i < c.cfg.SearchesPerCycleST; i++ {
			if c.clock < th.nextB0 || th.queueLen() >= c.cfg.PredQueueCap {
				break
			}
			c.issueSearch(t)
		}
	}
}

// drainWrites retires one write-queue entry per cycle through the
// read-analyze-write port (§IV): completion/surprise installs first,
// then staged BTB2 transfers.
func (c *Core) drainWrites() {
	if len(c.writeQ) > 0 {
		info := c.writeQ[0]
		copy(c.writeQ, c.writeQ[1:])
		c.writeQ = c.writeQ[:len(c.writeQ)-1]
		c.installBTB1(info, false)
		return
	}
	if info, ok := c.stage.Pop(); ok {
		c.installBTB1(info, true)
	}
}

// installBTB1 performs the read-before-write duplicate check and
// install (§IV). Victims are assumed present in the BTB2 (semi-
// inclusive, §III); on BTBP designs the victim is captured instead.
func (c *Core) installBTB1(info btb.Info, fromStage bool) {
	if c.cfg.InclusiveInstall && c.btb2 != nil && !fromStage {
		// z15 semi-inclusive invariant (§III): the BTB2 approximates a
		// superset of the BTB1, so new learning lands in both levels;
		// the periodic refresh keeps the BTB2 copy's state current.
		c.btb2.Install(info)
	}
	if _, ok := c.btb1.Lookup(info.Addr); ok {
		if fromStage {
			// The read-before-write check suppresses duplicate BTB2
			// transfers entirely (§IV) -- crucially without touching
			// recency, so repeated backfill cannot poison the LRU.
			return
		}
		// Surprise/update writes refresh the payload in place.
		c.btb1.Update(info.Addr, func(i *btb.Info) { *i = info })
		return
	}
	victim, evicted := c.btb1.Install(info)
	if evicted && c.btbp != nil {
		// Pre-z15: the BTBP is the victim buffer (§III); its own
		// victims flow onward into the BTB2 (semi-exclusive hierarchy).
		if pv, pev := c.btbp.Install(victim); pev && c.btb2 != nil {
			c.btb2.Install(pv)
		}
	}
}

// pushWrite enqueues a BTB1 install, dropping (with a count) on
// overflow.
func (c *Core) pushWrite(info btb.Info) bool {
	if len(c.writeQ) >= c.cfg.WriteQueueCap {
		c.stats.WriteQueueDrops++
		return false
	}
	c.writeQ = append(c.writeQ, info)
	return true
}

// btb2Search performs one bulk second-level search, pushing results
// through the staging queue (§III). Only one bulk search is in flight
// at a time: while the staging queue is still draining a previous
// transfer, new triggers are suppressed, which also models the BTB2
// being "only accessed when content is thought to be missing".
func (c *Core) btb2Search(from zarch.Addr) {
	if c.btb2 == nil {
		return
	}
	if c.stage.Len() > 0 || c.clock < c.btb2ReadyAt {
		c.stats.BTB2Suppressed++
		return
	}
	// A bulk search of the region takes time proportional to the lines
	// scanned before results start streaming out.
	c.btb2ReadyAt = c.clock + int64(c.cfg.BTB2RegionLines/8+4)
	found := c.btb2.SearchRegion(from, c.cfg.BTB2RegionLines, c.cfg.BTB2MaxBranches)
	for _, info := range found {
		if c.btbp != nil {
			// Pre-z15: BTB2 hits land in the preload buffer.
			c.btbp.Install(info)
		} else {
			c.stage.Push(info)
		}
	}
}

// issueSearch performs one b0 index: gathers the line's predictions,
// applies direction/target selection, schedules presentation at b5 and
// computes the next index address and cycle.
func (c *Core) issueSearch(t int) {
	th := &c.threads[t]
	c.stats.Searches++
	b0 := c.clock
	lineBytes := zarch.Addr(c.cfg.BTB1.LineBytes())
	line := c.cfg.BTB1.Line(th.searchAddr)
	fromOff := th.searchAddr - line
	if c.searchHook != nil {
		c.searchHook(t, line)
	}

	hits := c.btb1.SearchLine(line)
	merged := c.mergedBuf[:0]
	for _, h := range hits {
		if h.Addr-line >= fromOff {
			merged = append(merged, mhit{Hit: h})
		}
	}
	if c.btbp != nil {
		// Pre-z15: predictions are made out of both BTB1 and BTBP (§III).
		for _, info := range c.btbp.SearchLine(line, int(lineBytes)) {
			if info.Addr-line < fromOff {
				continue
			}
			dup := false
			for _, m := range merged {
				if m.Addr == info.Addr {
					dup = true
					break
				}
			}
			if !dup {
				merged = append(merged, mhit{Hit: btb.Hit{Info: info}, fromBTBP: true})
				// Insertion keeps address order.
				for i := len(merged) - 1; i > 0 && merged[i].Addr < merged[i-1].Addr; i-- {
					merged[i], merged[i-1] = merged[i-1], merged[i]
				}
			}
		}
	}

	c.mergedBuf = merged

	anyHit := len(merged) > 0
	if anyHit && th.firstHitSearch < 0 {
		th.firstHitSearch = th.searchesInStream
	}
	th.searchesInStream++

	// Power-gating accounting: a search that runs with structures
	// gated is a saving (§IV/§VI).
	if !th.powered.Has(cpred.PowerPHT) {
		c.stats.PowerGatedPHT++
	}
	if !th.powered.Has(cpred.PowerPerceptron) {
		c.stats.PowerGatedPerc++
	}
	if !th.powered.Has(cpred.PowerCTB) {
		c.stats.PowerGatedCTB++
	}

	presentAt := b0 + int64(c.cfg.PipeStages) - 1
	var takenHit *btb.Hit
	for i := range merged {
		h := &merged[i].Hit
		if h.Bidirectional {
			th.streamNeeds |= cpred.PowerPHT | cpred.PowerPerceptron
			if !th.powered.Has(cpred.PowerPHT) {
				c.stats.GatedButNeededAux++
			}
		}
		if h.MultiTarget {
			th.streamNeeds |= cpred.PowerCTB
			if !th.powered.Has(cpred.PowerCTB) {
				c.stats.GatedButNeededCTB++
			}
		}
		c.seq++
		sel := c.dir.Select(dirpred.Input{
			Addr: h.Addr, Way: h.Way, GPV: th.gpvSpec, Seq: c.seq,
			Conditional:   h.Kind.Conditional(),
			Bidirectional: h.Bidirectional,
			BHT:           h.BHT,
			AllowAux:      th.powered.Has(cpred.PowerPHT) || th.powered.Has(cpred.PowerPerceptron),
		})
		pred := Prediction{
			Seq: c.seq, Thread: t, Epoch: th.epoch, Stream: th.stream,
			Addr: h.Addr, Len: h.Len, Kind: h.Kind,
			Taken: sel.Taken, Ctx: th.ctx, Way: h.Way, Dir: sel,
			StreamStart: th.streamStart,
			PresentedAt: presentAt, FromBTBP: merged[i].fromBTBP,
		}
		if sel.Taken {
			ts := c.tgt.Select(h.Info, th.ctx, th.gpvSpec, th.powered.Has(cpred.PowerCTB))
			pred.Target = ts.Target
			pred.Tgt = ts
			takenHit = h
		}
		if pred.FromBTBP {
			// Qualified BTBP hit: promote into the BTB1 (§III).
			if info, ok := c.btbp.Promote(h.Addr); ok {
				c.pushWrite(info)
			}
		}
		if len(th.predQ) == cap(th.predQ) && th.predHead > 0 {
			// Reclaim consumed space so the append below cannot
			// outgrow (and reallocate) the fixed-capacity array.
			n := copy(th.predQ, th.predQ[th.predHead:])
			th.predQ = th.predQ[:n]
			th.predHead = 0
		}
		th.predQ = append(th.predQ, pred)
		if c.predictHook != nil {
			c.predictHook(pred)
		}
		c.stats.Predictions++
		if sel.Taken {
			c.stats.TakenPredictions++
			break
		}
	}

	if takenHit != nil {
		c.finishStream(t, b0, takenHit, &th.predQ[len(th.predQ)-1])
		return
	}

	// Sequential continuation.
	if !anyHit {
		c.stats.NoPredSearches++
		if th.noPredRun == 0 {
			th.noPredRunStart = line
		}
		th.noPredRun++
		if th.noPredRun == c.cfg.BTB2MissRun && c.btb2 != nil {
			c.stats.BTB2MissTriggers++
			// Search from where content went missing, not from the
			// third miss: the execution path enters the region at the
			// start of the run.
			c.btb2Search(th.noPredRunStart)
		}
		if c.cfg.RefreshRun > 0 && c.btb2 != nil {
			c.refreshRun++
			if c.refreshRun >= c.cfg.RefreshRun {
				c.refreshRun = 0
				if victim, ok := c.btb1.LRUVictim(line); ok {
					c.btb2.Install(victim)
					c.stats.RefreshWrites++
				}
			}
		}
	} else {
		th.noPredRun = 0
	}
	th.searchAddr = line + lineBytes
	th.nextB0 = b0 + 1
}

// finishStream handles a predicted-taken branch ending the current
// stream: SKOOT learning, CPRED update/verify, redirect timing
// (figures 4-7), and entry into the target stream.
func (c *Core) finishStream(t int, b0 int64, h *btb.Hit, pred *Prediction) {
	th := &c.threads[t]
	target := pred.Target

	// SKOOT: compute the learned skip for the *next* visit of the
	// entry branch of the stream we are leaving (§IV).
	if c.cfg.SkootEnabled && th.hasEntryBranch && th.firstHitSearch >= 0 {
		observed := th.entrySkip + th.firstHitSearch
		if observed > int(^uint8(0))-1 {
			observed = int(^uint8(0)) - 1
		}
		c.btb1.Update(th.entryBranch, func(i *btb.Info) {
			if i.Skoot == btb.SkootUnknown || uint8(observed) < i.Skoot {
				i.Skoot = uint8(observed)
			}
		})
	}

	// Next stream start, including this branch's learned skip.
	skip := 0
	if c.cfg.SkootEnabled && h.Skoot != btb.SkootUnknown {
		skip = int(h.Skoot)
	}
	var start zarch.Addr
	if skip > 0 {
		start = c.cfg.BTB1.Line(target) + zarch.Addr(skip*c.cfg.BTB1.LineBytes())
		c.stats.SkootLinesSkipped += int64(skip)
	} else {
		start = target
	}

	// CPRED learn + verify + redirect timing.
	searches := th.searchesInStream
	c.cpred.Verify(th.cpredRes, searches, start)
	fast := th.cpredRes.Hit &&
		int(th.cpredRes.Searches) == searches &&
		th.cpredRes.Redirect == start
	c.cpred.Update(th.streamStart, searches, h.Way, start, th.streamNeeds|neededBy(h))
	if fast {
		th.nextB0 = b0 + int64(c.cfg.CPredReindexStage)
		c.stats.CPredFastRedirects++
	} else {
		th.nextB0 = b0 + int64(c.cfg.PipeStages) - 1
		c.stats.CPredSlowRedirects++
	}

	th.gpvSpec = th.gpvSpec.Push(pred.Addr)
	th.stream++
	th.noPredRun = 0
	th.searchAddr = start
	c.enterStream(t, start, skip, pred.Addr, true)
}

// mhit is one merged search hit: a BTB1 hit or a BTBP-provided entry.
type mhit struct {
	btb.Hit
	fromBTBP bool
}

// neededBy returns the power needs implied by the stream-exiting
// branch itself.
func neededBy(h *btb.Hit) cpred.PowerMask {
	var m cpred.PowerMask
	if h.Bidirectional {
		m |= cpred.PowerPHT | cpred.PowerPerceptron
	}
	if h.MultiTarget {
		m |= cpred.PowerCTB
	}
	return m
}

// PeekPred returns the oldest visible prediction for a thread without
// consuming it. Predictions are visible once their b5 cycle has passed.
func (c *Core) PeekPred(t int) (Prediction, bool) {
	if p := c.VisiblePred(t); p != nil {
		return *p, true
	}
	return Prediction{}, false
}

// VisiblePred returns a pointer to the oldest visible prediction, or
// nil when none is presentable this cycle. This is the copy-free peek
// the per-instruction dispatch path uses: Prediction is ~200 bytes, so
// peeking by value would move it on every dispatched instruction. The
// pointee is owned by the core and must be treated as read-only; it
// stays valid across DropPred but not across the next Cycle or Restart.
func (c *Core) VisiblePred(t int) *Prediction {
	th := &c.threads[t]
	if th.predHead >= len(th.predQ) {
		return nil
	}
	p := &th.predQ[th.predHead]
	if p.PresentedAt > c.clock {
		return nil
	}
	return p
}

// PopPred consumes the oldest visible prediction.
func (c *Core) PopPred(t int) (Prediction, bool) {
	p := c.VisiblePred(t)
	if p == nil {
		return Prediction{}, false
	}
	res := *p
	c.DropPred(t)
	return res, true
}

// DropPred consumes the oldest visible prediction without copying it
// out; it is a no-op when nothing is visible. Pointers obtained from
// VisiblePred before the drop stay readable afterwards (the queue head
// only advances; nothing is overwritten until the core cycles again).
func (c *Core) DropPred(t int) {
	if c.VisiblePred(t) == nil {
		return
	}
	th := &c.threads[t]
	th.predHead++
	if th.predHead == len(th.predQ) {
		th.predQ = th.predQ[:0]
		th.predHead = 0
	}
}

// SearchProgress reports how far the BPL has searched on a thread: the
// current stream index and the next un-searched address within it.
// The IDU uses this to know whether predictions may still be coming
// for an address (§IV dispatch synchronization).
func (c *Core) SearchProgress(t int) (stream uint64, searchedTo zarch.Addr, epoch uint64) {
	th := &c.threads[t]
	return th.stream, th.searchAddr, th.epoch
}

// QueueLen returns the number of queued predictions (visible or not).
func (c *Core) QueueLen(t int) int { return c.threads[t].queueLen() }

// Covered reports whether the BPL's visible output covers address addr
// on the given stream: the search has passed it AND every prediction at
// or before it has already been presented. This is the strict dispatch
// synchronization introduced on z13 (§IV): the IDU holds instructions
// until branch prediction has had the chance to apply.
func (c *Core) Covered(t int, epoch, stream uint64, addr zarch.Addr) bool {
	th := &c.threads[t]
	if th.epoch != epoch {
		// A restart happened; the caller is about to resynchronize.
		return true
	}
	if th.stream < stream || (th.stream == stream && th.searchAddr <= addr) {
		return false
	}
	for i := th.predHead; i < len(th.predQ); i++ {
		p := &th.predQ[i]
		if p.PresentedAt > c.clock &&
			(p.Stream < stream || (p.Stream == stream && p.Addr <= addr)) {
			return false
		}
	}
	return true
}

// Preload writes a branch directly into a predictor array, bypassing
// the queues: level 1 is the BTB1, level 2 the BTB2. This mirrors the
// §VII verification methodology, where arrays are preloaded to reach
// states that would otherwise take many cycles to build.
func (c *Core) Preload(level int, info btb.Info) {
	switch level {
	case 1:
		c.btb1.Install(info)
	case 2:
		if c.btb2 != nil {
			c.btb2.Install(info)
		}
	default:
		panic("core: Preload level must be 1 or 2")
	}
}

// BTB1Lookup exposes first-level content for white-box monitors and
// tests.
func (c *Core) BTB1Lookup(addr zarch.Addr) (btb.Info, bool) {
	return c.btb1.Lookup(addr)
}

// BTB1Occupancy returns the number of valid BTB1 entries.
func (c *Core) BTB1Occupancy() int { return c.btb1.Occupancy() }

// BTB2Occupancy returns the number of valid BTB2 entries (0 when the
// level is disabled).
func (c *Core) BTB2Occupancy() int {
	if c.btb2 == nil {
		return 0
	}
	return c.btb2.Occupancy()
}

// BTB2Lookup exposes second-level content for white-box monitors.
func (c *Core) BTB2Lookup(addr zarch.Addr) (btb.Info, bool) {
	if c.btb2 == nil {
		return btb.Info{}, false
	}
	return c.btb2.Lookup(addr)
}
