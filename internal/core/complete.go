package core

import (
	"zbp/internal/btb"
	"zbp/internal/sat"
	"zbp/internal/tgt"
	"zbp/internal/zarch"
)

// Outcome is the resolution of one dynamically predicted branch,
// reported in architectural (completion) order by the front end.
type Outcome struct {
	Pred   Prediction
	Taken  bool
	Target zarch.Addr // resolved target (meaningful when Taken)
}

// WrongDirection reports a direction mispredict.
func (o Outcome) WrongDirection() bool { return o.Pred.Taken != o.Taken }

// WrongTarget reports a taken branch whose predicted target was wrong.
func (o Outcome) WrongTarget() bool {
	return o.Taken && o.Pred.Taken && o.Pred.Target != o.Target
}

// Mispredicted reports any prediction error requiring a restart.
func (o Outcome) Mispredicted() bool { return o.WrongDirection() || o.WrongTarget() }

// Complete applies the non-speculative completion-time updates for a
// dynamically predicted branch (§IV "branch predictors are updated
// non-speculatively after instructions complete"): BHT write-back,
// bidirectional/multi-target marking, TAGE/perceptron resolution, CTB
// installs and corrections, CRS detection and blacklist/amnesty.
// Callers must invoke Complete in architectural order per thread.
func (c *Core) Complete(o Outcome) {
	p := o.Pred
	th := &c.threads[p.Thread]
	c.lastCompletedSeq = p.Seq

	// Architectural path history.
	if o.Taken {
		th.gpvArch = th.gpvArch.Push(p.Addr)
	}

	// Direction-unit resolution (usefulness, counters, installs,
	// speculative-tracker cleanup).
	c.dir.Resolve(p.Dir, o.Taken)

	wrongTgt := o.WrongTarget()
	wrongDir := o.WrongDirection()

	if wrongTgt || wrongDir {
		// The restart that follows a mispredict kills the stream before
		// the search pipeline would have relearned its CPRED entry, so
		// a stale column/power prediction (e.g. a gated CTB on a branch
		// that just went multi-target) would otherwise persist forever.
		c.cpred.Invalidate(p.StreamStart)
	}

	// Target-unit resolution.
	var tm, cm tgtMeta
	if wrongTgt {
		m := c.tgt.WrongTarget(p.Tgt, p.Addr, p.Ctx, p.Dir.GPV, o.Target)
		tm = tgtMeta{setBlacklist: m.SetBlacklist}
	}
	if o.Taken {
		wasBlacklisted := c.isBlacklisted(p.Addr)
		m := c.tgt.CompleteTaken(p.Addr, o.Target, p.Len, wasBlacklisted, wrongTgt)
		cm = tgtMeta{
			markReturn: m.MarkReturn, returnOffset: m.ReturnOffset,
			clearBlacklist: m.ClearBlacklist,
		}
	}

	// BTB1 write-back: counters and metadata (via the write pipeline's
	// update path; modeled as an immediate read-modify-write since the
	// entry is located by exact address).
	c.btb1.Update(p.Addr, func(i *btb.Info) {
		if p.Kind.Conditional() {
			// The new counter state is computed from the GPQ-snapshotted
			// prediction-time state (with any speculative strengthening
			// folded in), not read-modify-write (§IV).
			i.BHT = p.Dir.BHTState.Update(o.Taken)
		}
		if wrongDir {
			i.Bidirectional = true
		}
		if wrongTgt {
			i.MultiTarget = true
			if p.Tgt.Provider == tgt.ProvBTB {
				i.Target = o.Target
			}
		}
		if cm.markReturn {
			i.IsReturn = true
			i.ReturnOffset = cm.returnOffset
		}
		if tm.setBlacklist {
			i.CRSBlacklisted = true
		}
		if cm.clearBlacklist {
			i.CRSBlacklisted = false
		}
	})
}

type tgtMeta struct {
	markReturn     bool
	returnOffset   uint8
	setBlacklist   bool
	clearBlacklist bool
}

func (c *Core) isBlacklisted(addr zarch.Addr) bool {
	info, ok := c.btb1.Lookup(addr)
	return ok && info.CRSBlacklisted
}

// Surprise describes a completed branch that had no dynamic prediction
// (§IV): the IDU statically guessed it from instruction text.
type Surprise struct {
	Thread int
	Addr   zarch.Addr
	Len    uint8
	Kind   zarch.BranchKind
	Taken  bool
	Target zarch.Addr
	Ctx    uint16
	// StreamEntry is the BTB1 branch whose target-stream contained this
	// surprise (zero/false if the stream began at a restart). Used to
	// shrink a stale SKOOT skip that hid the branch (§IV).
	StreamEntry    zarch.Addr
	HasStreamEntry bool
}

// CompleteSurprise installs/updates state for a completed surprise
// branch: BTB1 install via the write queue (guessed-taken or
// resolved-taken branches only, §IV), CRS detection, SKOOT shrink, and
// the disruptive-branch proactive BTB2 trigger (§III).
func (c *Core) CompleteSurprise(s Surprise) {
	th := &c.threads[s.Thread]
	if c.btb2 != nil {
		if _, ok := c.btb2.Lookup(s.Addr); ok {
			c.stats.SurpriseInBTB2++
		}
	}
	if s.Taken {
		th.gpvArch = th.gpvArch.Push(s.Addr)
	}

	// Statically guessed not-taken branches that resolve not-taken are
	// not installed (§II.A, §IV).
	install := s.Kind.StaticGuessTaken() || s.Taken
	if install {
		info := btb.Info{
			Addr: s.Addr, Len: s.Len, Kind: s.Kind,
			Target: s.Target, BHT: sat.Init(s.Taken), Skoot: btb.SkootUnknown,
		}
		if !s.Taken {
			// Guessed taken, resolved not-taken: install with the
			// resolved direction and no useful target knowledge yet.
			info.Target = s.Addr + zarch.Addr(s.Len)
		}
		if s.Taken {
			m := c.tgt.CompleteTaken(s.Addr, s.Target, s.Len, false, false)
			if m.MarkReturn {
				info.IsReturn = true
				info.ReturnOffset = m.ReturnOffset
			}
		}
		queued := c.pushWrite(info)
		c.stats.SurpriseInstalls++
		if c.surpriseHook != nil {
			c.surpriseHook(s, queued)
		}
	} else {
		if s.Taken {
			c.tgt.CompleteTaken(s.Addr, s.Target, s.Len, false, false)
		}
		if c.surpriseHook != nil {
			c.surpriseHook(s, false)
		}
	}

	// A surprise branch hidden by a stale SKOOT skip shrinks the skip
	// of the stream's entry branch (§IV: the field only decreases).
	if c.cfg.SkootEnabled && s.HasStreamEntry {
		c.btb1.Update(s.StreamEntry, func(i *btb.Info) {
			if i.Skoot == btb.SkootUnknown || i.Skoot == 0 {
				return
			}
			tline := c.cfg.BTB1.Line(i.Target)
			sline := c.cfg.BTB1.Line(s.Addr)
			if sline < tline {
				return
			}
			lines := int((sline - tline) / zarch.Addr(c.cfg.BTB1.LineBytes()))
			if lines < int(i.Skoot) {
				i.Skoot = uint8(lines)
			}
		})
	}

	// Disruptive-branch window: an unusual number of non-predicted
	// branches in a time period proactively fires the BTB2 (§III).
	if c.cfg.SurpriseRun > 0 && c.btb2 != nil {
		now := c.clock
		c.surpriseTimes = append(c.surpriseTimes, now)
		cutoff := now - c.cfg.SurpriseWindow
		for len(c.surpriseTimes) > 0 && c.surpriseTimes[0] < cutoff {
			c.surpriseTimes = c.surpriseTimes[1:]
		}
		if len(c.surpriseTimes) >= c.cfg.SurpriseRun {
			c.surpriseTimes = c.surpriseTimes[:0]
			c.stats.BTB2Proactive++
			// Prime the region execution is heading into: the taken
			// branch's target, or the fall-through path.
			at := s.Addr
			if s.Taken {
				at = s.Target
			}
			c.btb2Search(at)
		}
	}
}

// SurpriseInfo builds the BTB payload a surprise install writes; it is
// exported for the verification harness's array-preloading path (§VII).
func SurpriseInfo(addr zarch.Addr, length uint8, kind zarch.BranchKind, target zarch.Addr, taken bool) btb.Info {
	info := btb.Info{
		Addr: addr, Len: length, Kind: kind,
		Target: target, BHT: sat.Init(taken), Skoot: btb.SkootUnknown,
	}
	if !taken {
		info.Target = addr + zarch.Addr(length)
	}
	return info
}

// BadPrediction removes an entry the IDU exposed as nonsense -- a
// prediction in the middle of an instruction or on a non-branch,
// caused by partial tagging (§IV). The front end restarts separately.
//
// The purge must cover every path a search could be resupplied from,
// not just the BTB1: on the pre-z15 designs the aliased entry also
// lives in (or flows back through) the BTBP, the BTB2, the staging
// queue, and the pending write queue. Invalidating only the BTB1 left
// a live-lock: restart at the bad address, three empty searches, the
// BTB2 miss-run backfill re-stages the same entry, the IDU flags it
// bad again — forever.
func (c *Core) BadPrediction(p Prediction) {
	c.btb1.Invalidate(p.Addr)
	if c.btbp != nil {
		c.btbp.Invalidate(p.Addr)
	}
	if c.btb2 != nil {
		c.btb2.Invalidate(p.Addr)
	}
	c.stage.Remove(p.Addr)
	kept := c.writeQ[:0]
	for _, info := range c.writeQ {
		if info.Addr != p.Addr {
			kept = append(kept, info)
		}
	}
	c.writeQ = kept
	c.stats.BadPredictions++
}
