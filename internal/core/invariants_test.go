package core

import (
	"testing"

	"zbp/internal/btb"
	"zbp/internal/hashx"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

// TestPredictionStreamInvariants drives a bare core over a randomly
// preloaded branch population with random restarts and checks the
// ordering contract the front end depends on:
//
//  1. presented predictions come out in nondecreasing PresentedAt
//     order per thread;
//  2. stream numbers are nondecreasing within an epoch and reset to 0
//     after a restart;
//  3. within one stream, prediction addresses strictly increase;
//  4. a stream is left only by a taken prediction (every prediction
//     before the last of a stream is not-taken).
func TestPredictionStreamInvariants(t *testing.T) {
	rng := hashx.New(77)
	c := New(Z15())

	// Random branch population in a 1MB region: mixed kinds, mixed
	// directions.
	for i := 0; i < 2000; i++ {
		addr := zarch.Addr(0x100000 + rng.Intn(1<<20)&^1)
		kind := []zarch.BranchKind{
			zarch.KindCondRel, zarch.KindUncondRel, zarch.KindUncondInd, zarch.KindLoop,
		}[rng.Intn(4)]
		target := zarch.Addr(0x100000 + rng.Intn(1<<20)&^1)
		if target == 0 {
			target = 0x100000
		}
		bht := sat.Counter2(rng.Intn(4))
		c.Preload(1, btb.Info{Addr: addr, Len: 4, Kind: kind, Target: target,
			BHT: bht, Skoot: btb.SkootUnknown})
	}

	c.Restart(0, 0x100000, 0)
	var lastPresented int64
	var lastStream uint64
	var lastEpoch uint64 = 1
	var lastAddr zarch.Addr
	var prevTakenEndedStream bool
	fresh := true // no prediction seen yet in this epoch
	checked := 0

	for cycle := 0; cycle < 30000; cycle++ {
		c.Cycle()
		if rng.Bool(0.002) {
			c.Restart(0, zarch.Addr(0x100000+rng.Intn(1<<20)&^1), 0)
			lastEpoch++
			lastStream = 0
			lastPresented = 0
			fresh = true
		}
		for {
			p, ok := c.PopPred(0)
			if !ok {
				break
			}
			checked++
			if p.Epoch != lastEpoch {
				t.Fatalf("stale epoch %d (current %d)", p.Epoch, lastEpoch)
			}
			if p.PresentedAt < lastPresented {
				t.Fatalf("PresentedAt went backward: %d after %d", p.PresentedAt, lastPresented)
			}
			if p.PresentedAt > c.Clock() {
				t.Fatalf("future prediction popped: %d at clock %d", p.PresentedAt, c.Clock())
			}
			if p.Stream < lastStream {
				t.Fatalf("stream went backward: %d after %d", p.Stream, lastStream)
			}
			if !fresh && p.Stream == lastStream && !prevTakenEndedStream && p.Addr <= lastAddr {
				t.Fatalf("addresses not increasing within stream %d: %s after %s",
					p.Stream, p.Addr, lastAddr)
			}
			if !fresh && p.Stream == lastStream && prevTakenEndedStream {
				// A taken prediction must have advanced the stream.
				t.Fatalf("taken prediction did not end stream %d", p.Stream)
			}
			lastPresented = p.PresentedAt
			lastStream = p.Stream
			lastAddr = p.Addr
			prevTakenEndedStream = p.Taken
			fresh = false
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d predictions checked", checked)
	}
}

// TestCoveredNeverRegresses: once the BPL covers an address on the
// live stream, it stays covered until a restart or stream change.
func TestCoveredNeverRegresses(t *testing.T) {
	c := New(Z15())
	c.Restart(0, 0x10000, 0)
	addr := zarch.Addr(0x10100)
	covered := false
	for i := 0; i < 64; i++ {
		c.Cycle()
		now := c.Covered(0, 1, 0, addr)
		if covered && !now {
			t.Fatalf("coverage of %s regressed at cycle %d", addr, c.Clock())
		}
		covered = now
	}
	if !covered {
		t.Fatal("sequential search never covered the address")
	}
}

// TestSeqStrictlyIncreases: GPQ sequence numbers are unique and
// increasing across all predictions.
func TestSeqStrictlyIncreases(t *testing.T) {
	c := New(Z15())
	a, b := zarch.Addr(0x10000), zarch.Addr(0x40000)
	c.Preload(1, btb.Info{Addr: a + 8, Len: 4, Kind: zarch.KindUncondRel,
		Target: b, BHT: sat.StrongT, Skoot: btb.SkootUnknown})
	c.Preload(1, btb.Info{Addr: b + 8, Len: 4, Kind: zarch.KindUncondRel,
		Target: a, BHT: sat.StrongT, Skoot: btb.SkootUnknown})
	c.Restart(0, a, 0)
	var last uint64
	for i := 0; i < 500; i++ {
		c.Cycle()
		for {
			p, ok := c.PopPred(0)
			if !ok {
				break
			}
			if p.Seq <= last {
				t.Fatalf("seq %d after %d", p.Seq, last)
			}
			last = p.Seq
		}
	}
}

// TestDeactivateStopsSearching: a deactivated thread issues no further
// searches and the other thread gets the full port.
func TestDeactivateStopsSearching(t *testing.T) {
	c := New(Z15())
	c.Restart(0, 0x10000, 0)
	c.Restart(1, 0x80000, 1)
	for i := 0; i < 20; i++ {
		c.Cycle()
	}
	c.Deactivate(1)
	before := c.Stats().Searches
	_, addrBefore, _ := c.SearchProgress(1)
	for i := 0; i < 20; i++ {
		c.Cycle()
	}
	_, addrAfter, _ := c.SearchProgress(1)
	if addrAfter != addrBefore {
		t.Error("deactivated thread kept searching")
	}
	// Thread 0 now gets ~1 search/cycle instead of every other cycle.
	if got := c.Stats().Searches - before; got < 18 {
		t.Errorf("surviving thread searched only %d in 20 cycles", got)
	}
}
