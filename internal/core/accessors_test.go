package core

import (
	"testing"

	"zbp/internal/btb"
	"zbp/internal/sat"
	"zbp/internal/zarch"
)

func TestConfigValidationErrors(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.BTB1.Ways = 0 },
		func(c *Config) { c.BTB2.RowBits = 0 },
		func(c *Config) { c.GPVDepth = 0 },
		func(c *Config) { c.GPVDepth = 99 },
		func(c *Config) { c.PipeStages = 1 },
		func(c *Config) { c.CPredReindexStage = 9 },
		func(c *Config) { c.PredQueueCap = 0 },
		func(c *Config) { c.WriteQueueCap = 0 },
		func(c *Config) { c.StageCap = 0 },
		func(c *Config) { c.SearchesPerCycleST = 0 },
	}
	for i, mod := range bad {
		cfg := Z15()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// A disabled BTB2 need not be valid geometry.
	cfg := Z15()
	cfg.BTB2Enabled = false
	cfg.BTB2 = btb.Geometry{}
	if err := cfg.Validate(); err != nil {
		t.Errorf("disabled BTB2 geometry validated: %v", err)
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	cfg := Z15()
	cfg.GPVDepth = 0
	defer func() {
		if recover() == nil {
			t.Error("New accepted invalid config")
		}
	}()
	New(cfg)
}

func TestStatsAccessors(t *testing.T) {
	c := New(Z15())
	c.Preload(1, btb.Info{Addr: 0x10008, Len: 4, Kind: zarch.KindUncondRel,
		Target: 0x20000, BHT: sat.StrongT, Skoot: btb.SkootUnknown})
	c.Restart(0, 0x10000, 0)
	for i := 0; i < 30; i++ {
		c.Cycle()
	}
	if c.Config().Name != "z15" {
		t.Error("Config accessor wrong")
	}
	if c.BTB1Stats().Searches == 0 {
		t.Error("BTB1Stats empty")
	}
	if c.BTB2Stats().Installs < 0 || c.StageDrops() < 0 {
		t.Error("BTB2/stage accessors broken")
	}
	_ = c.DirStats()
	_ = c.TgtStats()
	if c.CPredStats().Lookups == 0 {
		t.Error("CPredStats empty")
	}
	// Disabled-BTB2 accessors return zero values.
	cfg := Z15()
	cfg.BTB2Enabled = false
	c2 := New(cfg)
	if c2.BTB2Stats() != (btb.Stats{}) || c2.BTB2Occupancy() != 0 {
		t.Error("disabled BTB2 stats not zero")
	}
	if _, ok := c2.BTB2Lookup(0x1000); ok {
		t.Error("disabled BTB2 lookup hit")
	}
	c2.ObserveBTB2(func(btb.Event) {}) // must not panic
}

func TestSurpriseInfoShape(t *testing.T) {
	taken := SurpriseInfo(0x1000, 4, zarch.KindCondRel, 0x2000, true)
	if taken.Target != 0x2000 || !taken.BHT.Taken() || taken.Skoot != btb.SkootUnknown {
		t.Errorf("taken SurpriseInfo = %+v", taken)
	}
	nt := SurpriseInfo(0x1000, 4, zarch.KindLoop, 0x2000, false)
	if nt.Target != 0x1004 || nt.BHT.Taken() {
		t.Errorf("not-taken SurpriseInfo = %+v", nt)
	}
}

func TestOutcomeMispredicted(t *testing.T) {
	p := Prediction{Taken: true, Target: 0x2000}
	if !(Outcome{Pred: p, Taken: false}).Mispredicted() {
		t.Error("wrong direction not mispredicted")
	}
	if !(Outcome{Pred: p, Taken: true, Target: 0x3000}).Mispredicted() {
		t.Error("wrong target not mispredicted")
	}
	if (Outcome{Pred: p, Taken: true, Target: 0x2000}).Mispredicted() {
		t.Error("correct prediction mispredicted")
	}
}

func TestWriteQueueDropsCounted(t *testing.T) {
	cfg := Z15()
	cfg.WriteQueueCap = 1
	c := New(cfg)
	c.Restart(0, 0x10000, 0)
	// Two surprise installs in the same cycle: one queues, one drops.
	for i := 0; i < 4; i++ {
		c.CompleteSurprise(Surprise{Thread: 0, Addr: zarch.Addr(0x11000 + i*0x80),
			Len: 4, Kind: zarch.KindCondRel, Taken: true, Target: 0x12000})
	}
	if c.Stats().WriteQueueDrops == 0 {
		t.Error("write-queue overflow not counted")
	}
}

func TestCoveredStaleEpoch(t *testing.T) {
	c := New(Z15())
	c.Restart(0, 0x10000, 0)
	// A query with a stale epoch reports covered (caller resyncs).
	if !c.Covered(0, 0, 0, 0x10000) {
		t.Error("stale-epoch query not treated as covered")
	}
	// Future stream is not covered.
	if c.Covered(0, 1, 5, 0x10000) {
		t.Error("future stream reported covered")
	}
}
