package tgt

import (
	"testing"

	"zbp/internal/btb"
	"zbp/internal/history"
	"zbp/internal/zarch"
)

func unit() *Unit { return New(DefaultZ15()) }

func branch(addr, target zarch.Addr) btb.Info {
	return btb.Info{Addr: addr, Len: 4, Kind: zarch.KindUncondInd, Target: target}
}

func gpvWith(addrs ...zarch.Addr) history.GPV {
	g := history.New(17)
	for _, a := range addrs {
		g = g.Push(a)
	}
	return g
}

func TestSingleTargetUsesBTB(t *testing.T) {
	u := unit()
	info := branch(0x1000, 0x2000)
	sel := u.Select(info, 0, gpvWith(0x10), true)
	if sel.Provider != ProvBTB || sel.Target != 0x2000 {
		t.Fatalf("sel = %+v", sel)
	}
}

func TestCTBOnlyWhenMultiTarget(t *testing.T) {
	u := unit()
	g := gpvWith(0x10, 0x20)
	info := branch(0x1000, 0x2000)
	// Install a CTB entry for this path.
	u.CTBInstall(info.Addr, 0, g, 0x3000)
	sel := u.Select(info, 0, g, true)
	if sel.Provider != ProvBTB {
		t.Fatalf("single-target branch used %v", sel.Provider)
	}
	info.MultiTarget = true
	sel = u.Select(info, 0, g, true)
	if sel.Provider != ProvCTB || sel.Target != 0x3000 {
		t.Fatalf("multi-target sel = %+v", sel)
	}
}

func TestCTBTagMismatchOnContext(t *testing.T) {
	u := unit()
	g := gpvWith(0x10, 0x20)
	info := branch(0x1000, 0x2000)
	info.MultiTarget = true
	u.CTBInstall(info.Addr, 1, g, 0x3000)
	sel := u.Select(info, 2, g, true) // different address space
	if sel.Provider == ProvCTB {
		t.Fatal("CTB hit across address spaces")
	}
}

func TestCTBPathSensitivity(t *testing.T) {
	u := unit()
	info := branch(0x1000, 0x2000)
	info.MultiTarget = true
	g1 := gpvWith(0x10, 0x20, 0x30)
	g2 := gpvWith(0x50, 0x60, 0x70)
	u.CTBInstall(info.Addr, 0, g1, 0x3000)
	u.CTBInstall(info.Addr, 0, g2, 0x4000)
	if sel := u.Select(info, 0, g1, true); sel.Target != 0x3000 {
		t.Errorf("path1 target = %s", sel.Target)
	}
	if sel := u.Select(info, 0, g2, true); sel.Target != 0x4000 {
		t.Errorf("path2 target = %s", sel.Target)
	}
}

func TestCRSPredictionFlow(t *testing.T) {
	u := unit()
	g := gpvWith(0x10)
	// A far call pushes its NSIA.
	call := branch(0x1000, 0x100000)
	call.Kind = zarch.KindUncondRel
	call.Len = 6
	u.Select(call, 0, g, true)
	// The return (marked, multi-target) consumes the stack.
	ret := branch(0x100040, 0x9999) // BTB target is stale
	ret.MultiTarget = true
	ret.IsReturn = true
	ret.ReturnOffset = 0
	sel := u.Select(ret, 0, g, true)
	if sel.Provider != ProvCRS {
		t.Fatalf("return used %v", sel.Provider)
	}
	if want := zarch.Addr(0x1006); sel.Target != want {
		t.Fatalf("CRS target = %s, want %s", sel.Target, want)
	}
	// Stack is now invalid; a second return cannot use it.
	sel2 := u.Select(ret, 0, g, true)
	if sel2.Provider == ProvCRS {
		t.Fatal("CRS provided from an invalid stack")
	}
}

func TestCRSReturnOffset(t *testing.T) {
	u := unit()
	g := gpvWith(0x10)
	call := branch(0x1000, 0x100000)
	call.Len = 6
	u.Select(call, 0, g, true)
	ret := branch(0x100040, 0x9999)
	ret.MultiTarget, ret.IsReturn, ret.ReturnOffset = true, true, 4
	sel := u.Select(ret, 0, g, true)
	if want := zarch.Addr(0x1006 + 4); sel.Target != want {
		t.Fatalf("offset return target = %s, want %s", sel.Target, want)
	}
}

func TestCRSBlacklistBlocks(t *testing.T) {
	u := unit()
	g := gpvWith(0x10)
	call := branch(0x1000, 0x100000)
	call.Len = 6
	u.Select(call, 0, g, true)
	ret := branch(0x100040, 0x9999)
	ret.MultiTarget, ret.IsReturn, ret.CRSBlacklisted = true, true, true
	sel := u.Select(ret, 0, g, true)
	if sel.Provider == ProvCRS {
		t.Fatal("blacklisted branch used CRS")
	}
}

func TestNearBranchDoesNotPush(t *testing.T) {
	u := unit()
	g := gpvWith(0x10)
	near := branch(0x1000, 0x1400) // 1KB, below threshold
	u.Select(near, 0, g, true)
	if u.Stats().PredPushes != 0 {
		t.Errorf("near branch pushed: PredPushes = %d", u.Stats().PredPushes)
	}
	ret := branch(0x100040, 0x9999)
	ret.MultiTarget, ret.IsReturn = true, true
	if sel := u.Select(ret, 0, g, true); sel.Provider == ProvCRS {
		t.Fatal("stack armed by a near branch")
	}
}

func TestRestartPredStack(t *testing.T) {
	u := unit()
	g := gpvWith(0x10)
	call := branch(0x1000, 0x100000)
	u.Select(call, 0, g, true)
	u.RestartPredStack()
	ret := branch(0x100040, 0x9999)
	ret.MultiTarget, ret.IsReturn = true, true
	if sel := u.Select(ret, 0, g, true); sel.Provider == ProvCRS {
		t.Fatal("stack survived restart")
	}
}

func TestDetectionMarksReturn(t *testing.T) {
	u := unit()
	// Completed far call arms the detection stack.
	m := u.CompleteTaken(0x1000, 0x100000, 6, false, false)
	if m.MarkReturn {
		t.Fatal("call itself marked as return")
	}
	// A later taken branch targeting NSIA+4 is detected as a return.
	m = u.CompleteTaken(0x100040, 0x1006+4, 2, false, false)
	if !m.MarkReturn || m.ReturnOffset != 4 {
		t.Fatalf("detection meta = %+v", m)
	}
	// Stack was invalidated by the match.
	m = u.CompleteTaken(0x100080, 0x1006, 2, false, false)
	if m.MarkReturn {
		t.Fatal("detection stack not invalidated after match")
	}
}

func TestDetectionRearms(t *testing.T) {
	u := unit()
	u.CompleteTaken(0x1000, 0x100000, 6, false, false)
	// Another far branch overwrites the stack (no offset match).
	u.CompleteTaken(0x2000, 0x200000, 6, false, false)
	m := u.CompleteTaken(0x200040, 0x2006, 2, false, false)
	if !m.MarkReturn || m.ReturnOffset != 0 {
		t.Fatalf("rearmed detection meta = %+v", m)
	}
}

func TestAmnesty(t *testing.T) {
	cfg := DefaultZ15()
	cfg.AmnestyN = 2
	u := New(cfg)
	// Arm detection, then complete blacklisted wrong-target returns that
	// still pair-match; every 2nd gets amnesty.
	grants := 0
	for i := 0; i < 6; i++ {
		u.CompleteTaken(0x1000, 0x100000, 6, false, false) // arm
		m := u.CompleteTaken(0x100040, 0x1006, 2, true, true)
		if !m.MarkReturn {
			t.Fatalf("iteration %d did not match", i)
		}
		if m.ClearBlacklist {
			grants++
		}
	}
	if grants != 3 {
		t.Errorf("amnesty grants = %d, want 3", grants)
	}
}

func TestWrongTargetRules(t *testing.T) {
	u := unit()
	g := gpvWith(0x10, 0x20)
	addr := zarch.Addr(0x1000)

	// BTB-provided wrong target installs a CTB entry.
	m := u.WrongTarget(Selection{Provider: ProvBTB, Target: 0x2000}, addr, 0, g, 0x3000)
	if m.SetBlacklist {
		t.Error("BTB wrong target blacklisted")
	}
	info := branch(addr, 0x2000)
	info.MultiTarget = true
	if sel := u.Select(info, 0, g, true); sel.Provider != ProvCTB || sel.Target != 0x3000 {
		t.Fatalf("CTB not installed: %+v", sel)
	}

	// CTB-provided wrong target corrects the CTB alone.
	u.WrongTarget(Selection{Provider: ProvCTB, Target: 0x3000}, addr, 0, g, 0x4000)
	if sel := u.Select(info, 0, g, true); sel.Target != 0x4000 {
		t.Fatalf("CTB not corrected: %+v", sel)
	}

	// CRS-provided wrong target requests a blacklist.
	m = u.WrongTarget(Selection{Provider: ProvCRS, Target: 0x5000}, addr, 0, g, 0x6000)
	if !m.SetBlacklist {
		t.Error("CRS wrong target not blacklisted")
	}
}

func TestDisabledCTB(t *testing.T) {
	cfg := DefaultZ15()
	cfg.CTBEntries = 0
	u := New(cfg)
	g := gpvWith(0x10)
	info := branch(0x1000, 0x2000)
	info.MultiTarget = true
	u.CTBInstall(info.Addr, 0, g, 0x3000)
	if sel := u.Select(info, 0, g, true); sel.Provider == ProvCTB {
		t.Fatal("disabled CTB provided")
	}
}

func TestDisabledCRS(t *testing.T) {
	cfg := DefaultZ15()
	cfg.CRSEnabled = false
	u := New(cfg)
	g := gpvWith(0x10)
	call := branch(0x1000, 0x100000)
	u.Select(call, 0, g, true)
	ret := branch(0x100040, 0x9999)
	ret.MultiTarget, ret.IsReturn = true, true
	if sel := u.Select(ret, 0, g, true); sel.Provider == ProvCRS {
		t.Fatal("disabled CRS provided")
	}
	if m := u.CompleteTaken(0x1000, 0x100000, 6, false, false); m.MarkReturn {
		t.Fatal("disabled CRS detected returns")
	}
}

func TestProviderString(t *testing.T) {
	if ProvBTB.String() != "btb" || ProvCTB.String() != "ctb" || ProvCRS.String() != "crs" {
		t.Error("provider names wrong")
	}
	if Provider(9).String() != "target(?)" {
		t.Error("out-of-range name")
	}
}

func TestNewPanicsOnBadCTBSize(t *testing.T) {
	cfg := DefaultZ15()
	cfg.CTBEntries = 1000 // not a power of two
	defer func() {
		if recover() == nil {
			t.Error("New accepted non-power-of-two CTB")
		}
	}()
	New(cfg)
}
