// Package tgt implements z15 target prediction beyond the BTB1's
// stored target (paper §VI): the changing target buffer (CTB), a
// GPV-indexed table for multi-target branches, and the call/return
// stack (CRS), a one-entry-deep heuristic stack for branches that
// behave like calls and returns despite the z/Architecture having no
// such instructions. Provider selection follows the paper's figure 9.
package tgt

import (
	"zbp/internal/btb"
	"zbp/internal/hashx"
	"zbp/internal/history"
	"zbp/internal/metrics"
	"zbp/internal/zarch"
)

// Provider identifies the structure that supplied a target prediction.
type Provider uint8

// Target providers in figure-9 priority order.
const (
	// ProvBTB is the target stored in the BTB1 entry.
	ProvBTB Provider = iota
	// ProvCTB is the changing target buffer.
	ProvCTB
	// ProvCRS is the call/return stack.
	ProvCRS

	numProviders
)

var providerNames = [numProviders]string{"btb", "ctb", "crs"}

func (p Provider) String() string {
	if int(p) < len(providerNames) {
		return providerNames[p]
	}
	return "target(?)"
}

// ReturnOffsets are the NSIA displacements the detection logic matches
// (0, 2, 4, 6, 8 bytes, §VI).
var ReturnOffsets = [5]uint8{0, 2, 4, 6, 8}

// Config parameterizes the target unit.
type Config struct {
	// CTBEntries is the logical CTB size (2048 on z15); 0 disables.
	CTBEntries int
	// CTBHist is the GPV depth forming the CTB index (9 pre-z15, 17 on
	// z15).
	CTBHist int
	// CTBTagBits is the virtual-address tag width per entry.
	CTBTagBits uint
	// CRSEnabled turns the call/return stack on (z14+).
	CRSEnabled bool
	// DistThreshold is the byte distance beyond which a taken branch is
	// treated as call-like.
	DistThreshold int
	// AmnestyN: every Nth completing wrong-target blacklisted branch
	// that still pair-matches gets its blacklist cleared.
	AmnestyN int
}

// DefaultZ15 returns the z15 target-unit parameters.
func DefaultZ15() Config {
	return Config{
		CTBEntries: 2048, CTBHist: 17, CTBTagBits: 10,
		CRSEnabled: true, DistThreshold: 16 * 1024, AmnestyN: 4,
	}
}

type ctbEntry struct {
	valid  bool
	tag    uint64
	target zarch.Addr
}

type stack struct {
	valid bool
	nsia  zarch.Addr
}

// Stats counts target-unit events.
type Stats struct {
	Provided      [numProviders]int64
	CTBInstalls   int64
	CTBUpdates    int64
	ReturnsMarked int64
	Blacklists    int64
	Amnesties     int64
	PredPushes    int64
	PredPops      int64
}

// Register exposes every counter under prefix (e.g. "tgt"), with the
// per-provider array flattened to one name per provider.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	for p := ProvBTB; p < numProviders; p++ {
		r.Counter(prefix+".provided."+p.String(), &s.Provided[p])
	}
	r.Counter(prefix+".ctb_installs", &s.CTBInstalls)
	r.Counter(prefix+".ctb_updates", &s.CTBUpdates)
	r.Counter(prefix+".returns_marked", &s.ReturnsMarked)
	r.Counter(prefix+".blacklists", &s.Blacklists)
	r.Counter(prefix+".amnesties", &s.Amnesties)
	r.Counter(prefix+".pred_pushes", &s.PredPushes)
	r.Counter(prefix+".pred_pops", &s.PredPops)
}

// Unit bundles the CTB and CRS with figure-9 selection.
type Unit struct {
	cfg     Config
	ctb     []ctbEntry
	idxBits uint

	pred stack // prediction-time one-entry stack
	det  stack // detection-time (completion) one-entry stack

	blacklistWrongs int // amnesty cadence counter
	stats           Stats
}

// New returns a target unit for cfg.
func New(cfg Config) *Unit {
	u := &Unit{cfg: cfg}
	if cfg.CTBEntries > 0 {
		if cfg.CTBEntries&(cfg.CTBEntries-1) != 0 {
			panic("tgt: CTBEntries must be a power of two")
		}
		u.ctb = make([]ctbEntry, cfg.CTBEntries)
		for cfg.CTBEntries>>u.idxBits > 1 {
			u.idxBits++
		}
	}
	return u
}

// Stats returns a copy of the counters.
func (u *Unit) Stats() Stats { return u.stats }

// RegisterMetrics registers the unit's live counters under prefix.
func (u *Unit) RegisterMetrics(r *metrics.Registry, prefix string) {
	u.stats.Register(r, prefix)
}

func (u *Unit) ctbIndex(g history.GPV) int {
	// The CTB is indexed solely as a function of the prior code path
	// (§VI).
	return int(hashx.Fold(g.Recent(min(u.cfg.CTBHist, g.Depth())), u.idxBits))
}

func (u *Unit) ctbTag(addr zarch.Addr, ctx uint16) uint64 {
	return hashx.Fold(uint64(addr)>>1^uint64(ctx)<<13, u.cfg.CTBTagBits)
}

// ctbLookup returns the predicted target for the current path, if the
// entry's address-space tag matches.
func (u *Unit) ctbLookup(addr zarch.Addr, ctx uint16, g history.GPV) (zarch.Addr, bool) {
	if u.ctb == nil {
		return 0, false
	}
	e := &u.ctb[u.ctbIndex(g)]
	if e.valid && e.tag == u.ctbTag(addr, ctx) {
		return e.target, true
	}
	return 0, false
}

// CTBInstall writes a CTB entry for the branch under the given path.
func (u *Unit) CTBInstall(addr zarch.Addr, ctx uint16, g history.GPV, target zarch.Addr) {
	if u.ctb == nil {
		return
	}
	e := &u.ctb[u.ctbIndex(g)]
	if e.valid && e.tag == u.ctbTag(addr, ctx) {
		u.stats.CTBUpdates++
	} else {
		u.stats.CTBInstalls++
	}
	*e = ctbEntry{valid: true, tag: u.ctbTag(addr, ctx), target: target}
}

func (u *Unit) far(from, to zarch.Addr) bool {
	d := int64(to) - int64(from)
	if d < 0 {
		d = -d
	}
	return d > int64(u.cfg.DistThreshold)
}

// Selection is a target prediction outcome, carried in the GPQ.
type Selection struct {
	Target   zarch.Addr
	Provider Provider
	// UsedStack records that the CRS consumed the prediction stack.
	UsedStack bool
}

// Select implements figure 9 for a predicted-taken BTB1 hit. It also
// performs the prediction-side stack bookkeeping: return-marked
// branches consume the stack; call-like (far) taken branches push
// their NSIA. allowCTB is false when CPRED has powered the CTB down
// for this stream (§VI).
func (u *Unit) Select(info btb.Info, ctx uint16, g history.GPV, allowCTB bool) Selection {
	sel := Selection{Target: info.Target, Provider: ProvBTB}
	if info.MultiTarget {
		if u.cfg.CRSEnabled && info.IsReturn && !info.CRSBlacklisted && u.pred.valid {
			sel.Target = u.pred.nsia + zarch.Addr(info.ReturnOffset)
			sel.Provider = ProvCRS
			sel.UsedStack = true
			u.pred.valid = false
			u.stats.PredPops++
		} else if t, ok := u.ctbLookup(info.Addr, ctx, g); ok && allowCTB {
			sel.Target = t
			sel.Provider = ProvCTB
		}
	}
	// Prediction-side call detection: any predicted-taken branch whose
	// target is far pushes its NSIA (§VI). A branch that just consumed
	// the stack as a return does not re-push.
	if u.cfg.CRSEnabled && !sel.UsedStack && u.far(info.Addr, sel.Target) {
		u.pred = stack{valid: true, nsia: info.Addr + zarch.Addr(info.Len)}
		u.stats.PredPushes++
	}
	u.stats.Provided[sel.Provider]++
	return sel
}

// RestartPredStack clears the prediction-side stack; the BPL is
// restarted after flushes, and the speculative stack state with it.
func (u *Unit) RestartPredStack() { u.pred.valid = false }

// MetaUpdate carries BTB1 metadata changes requested by completion
// processing; the owner applies them to the BTB1 entry.
type MetaUpdate struct {
	MarkReturn     bool
	ReturnOffset   uint8
	SetBlacklist   bool
	ClearBlacklist bool
}

// CompleteTaken processes a completed, resolved-taken branch through
// the detection logic (§VI) and returns any metadata updates:
//
//   - if the branch's target matches the detection stack's NSIA plus a
//     legal offset, the branch is marked as a possible return and the
//     stack invalidated;
//   - otherwise, if the branch jumped far, its NSIA arms the stack.
//
// wasBlacklisted and wrongTarget feed the amnesty path.
func (u *Unit) CompleteTaken(addr, target zarch.Addr, length uint8, wasBlacklisted, wrongTarget bool) MetaUpdate {
	var m MetaUpdate
	if !u.cfg.CRSEnabled {
		return m
	}
	matched := false
	if u.det.valid {
		for _, off := range ReturnOffsets {
			if target == u.det.nsia+zarch.Addr(off) {
				m.MarkReturn = true
				m.ReturnOffset = off
				u.det.valid = false
				u.stats.ReturnsMarked++
				matched = true
				break
			}
		}
	}
	if !matched && u.far(addr, target) {
		u.det = stack{valid: true, nsia: addr + zarch.Addr(length)}
	}
	// Amnesty (§VI): every Nth completing wrong-target branch that was
	// blacklisted but still return-matched gets its blacklist cleared.
	if wasBlacklisted && wrongTarget {
		u.blacklistWrongs++
		if matched && u.cfg.AmnestyN > 0 && u.blacklistWrongs%u.cfg.AmnestyN == 0 {
			m.ClearBlacklist = true
			u.stats.Amnesties++
		}
	}
	return m
}

// WrongTarget processes a wrong-target resolution for a dynamically
// predicted branch (§VI) and returns requested metadata updates. The
// rules:
//
//   - BTB-provided wrong target: owner updates the BTB1 target and the
//     unit installs a CTB entry (under the prediction-time path);
//   - CTB-provided wrong target: the CTB alone is corrected;
//   - CRS-provided wrong target: the branch is blacklisted from the
//     CRS.
func (u *Unit) WrongTarget(sel Selection, addr zarch.Addr, ctx uint16, g history.GPV, actual zarch.Addr) MetaUpdate {
	var m MetaUpdate
	switch sel.Provider {
	case ProvBTB:
		u.CTBInstall(addr, ctx, g, actual)
	case ProvCTB:
		u.CTBInstall(addr, ctx, g, actual)
	case ProvCRS:
		m.SetBlacklist = true
		u.stats.Blacklists++
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
