package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMaterializerSingleflight: any number of concurrent Gets for the
// same key run the generation exactly once and all observe the same
// buffer. The hook counts actual materializations, not cache hits.
func TestMaterializerSingleflight(t *testing.T) {
	var made atomic.Int64
	materializeHook = func(string, uint64, int) { made.Add(1) }
	defer func() { materializeHook = nil }()

	mz := NewMaterializer()
	const callers = 16
	ptrs := make([]uintptr, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := mz.Get("lspr", 42, 300_000)
			if err != nil {
				t.Error(err)
				return
			}
			ptrs[i] = uintptr(p.SizeBytes()) // same buffer => same size; pointer identity below
		}(i)
	}
	wg.Wait()
	if n := made.Load(); n != 1 {
		t.Fatalf("%d materializations for one key, want exactly 1", n)
	}
	if mz.Count() != 1 {
		t.Fatalf("Count() = %d, want 1", mz.Count())
	}
	// A second wave after completion must still not re-materialize.
	a, err := mz.Get("lspr", 42, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := mz.Get("lspr", 42, 300_000)
	if a != b {
		t.Error("repeat Gets returned different buffers")
	}
	if n := made.Load(); n != 1 {
		t.Fatalf("%d materializations after repeat Gets, want 1", n)
	}
}

// TestMaterializerErrorNotCached: a failed materialization (unknown
// workload) reports its error to every caller and is not counted as a
// cached trace.
func TestMaterializerErrorPath(t *testing.T) {
	mz := NewMaterializer()
	if _, err := mz.Get("no-such-workload", 1, 1000); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := mz.Get("no-such-workload", 1, 1000); err == nil {
		t.Fatal("unknown workload accepted on second call")
	}
	if mz.Count() != 0 {
		t.Errorf("Count() = %d after failed materialization, want 0", mz.Count())
	}
	if mz.FootprintBytes() != 0 {
		t.Errorf("FootprintBytes() = %d after failed materialization, want 0", mz.FootprintBytes())
	}
}

// TestMaterializerDistinctKeyNotBlocked proves, without timing, that
// Get does not hold the cache lock across generation: while key A's
// materialization is stalled inside the generator hook, a Get for key
// B must still complete. Under the old cache-wide lock this deadlocks
// (B waits on mu held across A's generation) and the test times out.
func TestMaterializerDistinctKeyNotBlocked(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	materializeHook = func(name string, seed uint64, n int) {
		if seed == 99 {
			close(entered)
			<-release
		}
	}
	defer func() { materializeHook = nil }()

	mz := NewMaterializer()
	slowDone := make(chan error, 1)
	go func() {
		_, err := mz.Get("lspr", 99, 100_000)
		slowDone <- err
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("slow materialization never started")
	}

	// Key A is mid-materialization; key B must not be stuck behind it.
	fastDone := make(chan error, 1)
	go func() {
		_, err := mz.Get("micro", 1, 100_000)
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("distinct-key Get serialized behind an in-flight materialization")
	}

	close(release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
	if mz.Count() != 2 {
		t.Errorf("Count() = %d, want 2", mz.Count())
	}
}

// TestMaterializerDistinctKeysOverlap is the regression test for the
// cache-wide-lock bug: requests for different keys must materialize in
// parallel, not serialize behind one another. It compares the
// wall-clock of k concurrent Gets against the serial sum of the same k
// materializations.
func TestMaterializerDistinctKeysOverlap(t *testing.T) {
	if runtime.NumCPU() < 2 || runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs to observe overlap")
	}
	const (
		keys = 4
		n    = 1_000_000
	)

	// Serial baseline: fresh cache, one key at a time.
	serialMz := NewMaterializer()
	serialStart := time.Now()
	for seed := uint64(0); seed < keys; seed++ {
		if _, err := serialMz.Get("lspr", seed, n); err != nil {
			t.Fatal(err)
		}
	}
	serial := time.Since(serialStart)

	// Concurrent: fresh cache, all keys at once.
	mz := NewMaterializer()
	var wg sync.WaitGroup
	concStart := time.Now()
	for seed := uint64(0); seed < keys; seed++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			if _, err := mz.Get("lspr", seed, n); err != nil {
				t.Error(err)
			}
		}(seed)
	}
	wg.Wait()
	conc := time.Since(concStart)

	if mz.Count() != keys {
		t.Fatalf("Count() = %d, want %d", mz.Count(), keys)
	}
	// With the old cache-wide lock, conc ~= serial. With per-key
	// singleflight on >= 2 CPUs it must come in clearly under the
	// serial sum; 0.9 leaves slack for noisy CI machines while still
	// failing hard on full serialization.
	if conc >= time.Duration(float64(serial)*0.9) {
		t.Errorf("concurrent distinct-key Gets did not overlap: concurrent %v vs serial %v", conc, serial)
	}
	t.Logf("serial %v, concurrent %v (%.1fx)", serial, conc, float64(serial)/float64(conc))
}
