package workload

import (
	"zbp/internal/hashx"
	"zbp/internal/trace"
	"zbp/internal/zarch"
)

// Interpreter models a bytecode-interpreter main loop, the classic
// changing-target workload (§VI cites Chang/Hao/Patt's indirect-jump
// work): one hot indirect dispatch branch whose target is the next
// opcode's handler. Opcodes are drawn from a set of synthetic
// "programs" (opcode sequences), so the dispatch target correlates
// with the recent handler path -- partially learnable by a GPV-indexed
// CTB -- while handler-internal branches are highly predictable.
func Interpreter(seed uint64) trace.Source {
	b := NewBuilder(0x60000, seed)
	rng := hashx.New(seed ^ 0x1e7e)

	const nOps = 24

	handlers := make([]*Label, nOps)
	for i := range handlers {
		handlers[i] = b.NewLabel()
	}

	// Dispatch: fetch-decode pad, then the indirect jump to the next
	// handler. The "bytecode" is a fixed synthetic program of a few
	// hundred ops, looped; the opcode sequence is therefore periodic
	// and the dispatch target path-predictable.
	prog := make([]int, 300)
	for i := range prog {
		// Skewed opcode mix: a few hot opcodes, many cold ones.
		if rng.Bool(0.7) {
			prog[i] = rng.Intn(6)
		} else {
			prog[i] = rng.Intn(nOps)
		}
	}
	dispL := b.NewLabel()
	disp := b.Block(10)
	b.Bind(dispL, disp)
	targets := make([]Target, nOps)
	for i := range targets {
		targets[i] = handlers[i]
	}
	sw := b.Block(4)
	pcSlot := b.newSlot()
	sw.setBranch(zarch.KindUncondInd, 2,
		func(*Exec) bool { return true },
		func(e *Exec, addrs []zarch.Addr) zarch.Addr {
			pc := &e.slot[pcSlot]
			op := prog[*pc]
			*pc = (*pc + 1) % int64(len(prog))
			return addrs[op]
		}, targets...)

	// Handlers: short bodies with one or two predictable branches, then
	// jump back to dispatch.
	for i := 0; i < nOps; i++ {
		h := b.Block(8 + rng.Intn(10)*2)
		b.Bind(handlers[i], h)
		if rng.Bool(0.5) {
			afterL := b.NewLabel()
			blk := b.Block(6)
			blk.CondBias([]float64{0.95, 0.05, 0.9}[rng.Intn(3)], afterL)
			b.Block(4) // island
			after := b.Block(2)
			b.Bind(afterL, after)
		}
		if rng.Bool(0.3) {
			bodyL := b.NewLabel()
			body := b.Block(6)
			b.Bind(bodyL, body)
			latch := b.Block(4)
			latch.Loop(2+rng.Intn(3), bodyL)
		}
		tail := b.Block(2)
		tail.Jump(dispL)
	}

	return NewExec(b.MustBuild(disp), seed+1)
}

// BTree models database index descent (the paper's §I motivation:
// "high throughput transactions, typically to a vast database"): each
// lookup walks a fixed-depth tree where every level compares and
// branches left/right on the (data-dependent) key, then touches a
// leaf-processing routine. The level-compare branches are taken ~50%
// -- genuinely hard -- while the walk structure itself (loop, calls) is
// perfectly predictable, reproducing the bimodal branch population of
// OLTP code.
func BTree(seed uint64) trace.Source {
	b := NewBuilder(0x70000, seed)
	rng := hashx.New(seed ^ 0xb7ee)

	const depth = 6

	headL := b.NewLabel()
	leafL := b.NewLabel()

	head := b.Block(16)
	b.Bind(headL, head)

	// Descent: one compare-and-branch per level. Taken -> right subtree
	// island, fall -> left; both rejoin for the next level.
	for lvl := 0; lvl < depth; lvl++ {
		afterL := b.NewLabel()
		cmp := b.Block(10)
		cmp.CondBias(0.5, afterL) // key comparison: data-dependent
		b.Block(8)                // left-path work, falls into after
		after := b.Block(6)
		b.Bind(afterL, after)
	}

	// Leaf processing: a far call (record copy routine), like the
	// shared utilities of real transaction code.
	call := b.Block(6)
	call.Call(leafL)
	cont := b.Block(4)
	_ = cont
	latch := b.Block(4)
	latch.Loop(1<<30, headL)
	fin := b.Block(2)
	fin.Jump(headL)

	b.Gap(256 * 1024)
	leaf := b.Block(20)
	b.Bind(leafL, leaf)
	bodyL := b.NewLabel()
	body := b.Block(10)
	b.Bind(bodyL, body)
	copyLatch := b.Block(4)
	copyLatch.Loop(4+rng.Intn(4), bodyL)
	ret := b.Block(2)
	ret.Return()

	return NewExec(b.MustBuild(head), seed+1)
}
