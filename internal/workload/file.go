package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"zbp/internal/hashx"
	"zbp/internal/trace"
	"zbp/internal/zarch"
)

// File-backed workloads: alongside the synthetic generators, a
// workload name can be a trace file on disk (`file:<path>`) or a
// declarative mix of generators and trace files (`spec:<path>`).
//
// Unlike a generator, a file's bytes can change between runs, so a
// file-backed workload's *identity* is its content, not its name:
// SpecID resolves any workload name to a canonical identity string,
// which for path-backed forms is a SHA-256 content digest. The result
// cache, the cluster router, and the in-process Materializer all key
// on that identity, so editing a trace file on disk can never serve a
// stale cached result.

// Workload-name prefixes for path-backed forms.
const (
	// FilePrefix names a single trace file: `file:<path>`. Files ending
	// in .champsim or .champsimtrace are ingested through the ChampSim
	// adapter; anything else is decoded as a .zbpt trace.
	FilePrefix = "file:"
	// SpecPrefix names a workload-spec JSON file: `spec:<path>`.
	SpecPrefix = "spec:"
)

// PathBacked reports whether name refers to on-disk content (a file:
// or spec: form) rather than a registered generator.
func PathBacked(name string) bool {
	return strings.HasPrefix(name, FilePrefix) || strings.HasPrefix(name, SpecPrefix)
}

// SpecID resolves a workload name to its canonical cache identity.
// Generator names are their own identity. Path-backed names resolve to
// a content digest: the file's SHA-256 for file: forms, and for spec:
// forms the digest of the spec document plus every trace file it
// references, so any byte of referenced content changing changes the
// identity. An unreadable path is an error — such a workload cannot be
// materialized either, so callers fail fast instead of caching under a
// wrong identity.
func SpecID(name string) (string, error) {
	switch {
	case strings.HasPrefix(name, FilePrefix):
		d, err := fileDigest(name[len(FilePrefix):])
		if err != nil {
			return "", err
		}
		return FilePrefix + "sha256:" + d, nil
	case strings.HasPrefix(name, SpecPrefix):
		d, err := specDigest(name[len(SpecPrefix):])
		if err != nil {
			return "", err
		}
		return SpecPrefix + "sha256:" + d, nil
	default:
		return name, nil
	}
}

// fileDigest returns the hex SHA-256 of the file at path. The digest
// is recomputed per call on purpose: trace files are small relative to
// the simulations they feed, and a stat-based cache would trade the
// staleness bug this exists to fix for a narrower mtime-granularity
// version of it.
func fileDigest(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("workload: digesting %s: %w", path, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// specDigest folds the spec document and every referenced trace file
// into one digest.
func specDigest(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("workload: digesting %s: %w", path, err)
	}
	h := sha256.New()
	h.Write(b)
	spec, err := parseSpec(b)
	if err != nil {
		return "", fmt.Errorf("workload: %s: %w", path, err)
	}
	for _, f := range spec.filePaths(filepath.Dir(path)) {
		d, err := fileDigest(f)
		if err != nil {
			return "", err
		}
		h.Write([]byte(d))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Spec is the declarative workload-spec document (`spec:<path>`): a
// context-switching mix of generators and trace files, interleaved in
// round-robin time slices with each part stamped with its own context
// ID (the Multiplex arrival model).
type Spec struct {
	// Version must be 1.
	Version int `json:"version"`
	// Slice is the records-per-timeslice context-switch interval.
	// Default: 30000.
	Slice int `json:"slice,omitempty"`
	// Parts are the mixed sources; at least one is required.
	Parts []SpecPart `json:"parts"`
}

// SpecPart is one source in a Spec: exactly one of Workload (a
// registered generator name) or File (a trace file path, resolved
// relative to the spec document) must be set.
type SpecPart struct {
	Workload string `json:"workload,omitempty"`
	File     string `json:"file,omitempty"`
	// Loop replays a trace file cyclically (with a synthetic bridge
	// branch at the wrap) instead of letting it run dry mid-mix.
	Loop bool `json:"loop,omitempty"`
	// SeedOffset decorrelates this part from the run seed.
	SeedOffset uint64 `json:"seed_offset,omitempty"`
	// Funcs and Zipf, valid only with Workload "lspr", override the
	// LSPR footprint (function count) and skew — the knob for mixing
	// differently-sized code footprints in one spec.
	Funcs int     `json:"funcs,omitempty"`
	Zipf  float64 `json:"zipf,omitempty"`
}

// parseSpec decodes and structurally validates a spec document.
func parseSpec(b []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("invalid workload spec: %w", err)
	}
	if s.Version != 1 {
		return nil, fmt.Errorf("invalid workload spec: unsupported version %d (want 1)", s.Version)
	}
	if s.Slice == 0 {
		s.Slice = 30000
	}
	if s.Slice < 0 {
		return nil, fmt.Errorf("invalid workload spec: negative slice %d", s.Slice)
	}
	if len(s.Parts) == 0 {
		return nil, fmt.Errorf("invalid workload spec: no parts")
	}
	for i, p := range s.Parts {
		if (p.Workload == "") == (p.File == "") {
			return nil, fmt.Errorf("invalid workload spec: part %d needs exactly one of workload or file", i)
		}
		if p.Workload != "" && PathBacked(p.Workload) {
			return nil, fmt.Errorf("invalid workload spec: part %d: nested path-backed workload %q (use the file field)", i, p.Workload)
		}
		if p.Funcs != 0 && p.Workload != "lspr" {
			return nil, fmt.Errorf("invalid workload spec: part %d: funcs is only valid with workload \"lspr\"", i)
		}
		if p.Funcs != 0 && p.Funcs < 8 {
			return nil, fmt.Errorf("invalid workload spec: part %d: funcs %d below the LSPR minimum of 8", i, p.Funcs)
		}
		if p.Loop && p.File == "" {
			return nil, fmt.Errorf("invalid workload spec: part %d: loop is only valid with a file part", i)
		}
	}
	return &s, nil
}

// filePaths returns the trace files the spec references, resolved
// against the spec document's directory.
func (s *Spec) filePaths(dir string) []string {
	var out []string
	for _, p := range s.Parts {
		if p.File != "" {
			out = append(out, resolvePath(dir, p.File))
		}
	}
	return out
}

// resolvePath resolves ref against dir unless ref is absolute.
func resolvePath(dir, ref string) string {
	if filepath.IsAbs(ref) {
		return ref
	}
	return filepath.Join(dir, ref)
}

// SpecFiles parses the spec document at path and returns the trace
// file paths it references (resolved against the document directory).
// The zbpd service uses it to keep every referenced file inside the
// allowlisted trace directory.
func SpecFiles(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	spec, err := parseSpec(b)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	return spec.filePaths(filepath.Dir(path)), nil
}

// makeFile opens a trace file as a cursor over the packed decode, so
// every record is validated exactly once at load time.
func makeFile(path string) (*trace.Cursor, error) {
	p, err := loadTraceFile(path)
	if err != nil {
		return nil, err
	}
	cur := p.Cursor()
	return &cur, nil
}

// loadTraceFile decodes path by format: ChampSim traces by extension,
// the native .zbpt codec otherwise.
func loadTraceFile(path string) (*trace.Packed, error) {
	switch filepath.Ext(path) {
	case ".champsim", ".champsimtrace":
		p, _, err := trace.IngestChampSimFile(path, 0)
		return p, err
	default:
		return trace.LoadPackedFile(path)
	}
}

// makeSpec builds the Multiplex mix a spec document describes.
func makeSpec(path string, seed uint64) (trace.Source, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	spec, err := parseSpec(b)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	srcs := make([]trace.Source, len(spec.Parts))
	for i, part := range spec.Parts {
		// Each part gets a decorrelated seed so two generator parts of
		// the same kind don't replay identical streams.
		pseed := hashx.SeedFor(seed, fmt.Sprintf("spec-part-%d", i)) + part.SeedOffset
		switch {
		case part.File != "":
			cur, err := makeFile(resolvePath(dir, part.File))
			if err != nil {
				return nil, err
			}
			if part.Loop {
				srcs[i] = NewLoop(cur)
			} else {
				srcs[i] = cur
			}
		case part.Funcs != 0:
			z := part.Zipf
			if z == 0 {
				z = 1.0
			}
			srcs[i] = LSPR(pseed, part.Funcs, z)
		default:
			src, err := Make(part.Workload, pseed)
			if err != nil {
				return nil, err
			}
			srcs[i] = src
		}
	}
	return NewMultiplex(srcs, spec.Slice), nil
}

// Loop replays a finite resettable source cyclically. The simulator
// requires a contiguous record stream, so at each wrap Loop emits a
// synthetic taken unconditional branch bridging the last record's
// fallthrough back to the first record's address — the same glue the
// trace ingest adapter uses at discontinuities.
type Loop struct {
	src       sourceResetter
	started   bool
	first     trace.Rec
	last      trace.Rec
	needGlue  bool
	exhausted bool
}

type sourceResetter interface {
	trace.Source
	trace.Resetter
}

// NewLoop wraps src in cyclic replay.
func NewLoop(src sourceResetter) *Loop { return &Loop{src: src} }

// Next implements trace.Source. An empty underlying source yields an
// empty loop rather than spinning.
func (l *Loop) Next() (trace.Rec, bool) {
	if l.exhausted {
		return trace.Rec{}, false
	}
	if l.needGlue {
		l.needGlue = false
		from := l.last.Next()
		if from != l.first.Addr {
			glue := trace.NewRec(from, 4, zarch.KindUncondRel, true, l.first.Addr, l.last.CtxID)
			l.last = glue
			return glue, true
		}
	}
	r, ok := l.src.Next()
	if !ok {
		if !l.started {
			l.exhausted = true
			return trace.Rec{}, false
		}
		l.src.Reset()
		l.needGlue = true
		return l.Next()
	}
	if !l.started {
		l.first, l.started = r, true
	}
	l.last = r
	return r, true
}

// Reset implements trace.Resetter.
func (l *Loop) Reset() {
	l.src.Reset()
	l.started, l.needGlue, l.exhausted = false, false, false
}
