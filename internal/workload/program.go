// Package workload synthesizes instruction traces with the control-flow
// idioms the z15 branch predictor is built for: deeply warm loop nests,
// shared functions with call/return-like branch pairs, multi-target
// indirect branches, history-correlated conditionals, and LSPR-style
// large-instruction-footprint transaction mixes (paper §I, §II).
//
// IBM's LSPR traces are proprietary, so this package is the substitute
// substrate documented in DESIGN.md §5: a small program IR (basic
// blocks wired with behavioral branches) plus an interpreter that emits
// architecturally valid trace records. Every generator is seeded and
// deterministic.
package workload

import (
	"fmt"

	"zbp/internal/hashx"
	"zbp/internal/trace"
	"zbp/internal/zarch"
)

// dirFn decides the direction of a conditional branch at execution time.
type dirFn func(e *Exec) bool

// chooseFn selects the taken-target among the block's resolved targets.
type chooseFn func(e *Exec, targets []zarch.Addr) zarch.Addr

// Target is anything that resolves to a block entry address at Build
// time: a BlockRef (already-created block) or a *Label (forward
// reference bound later).
type Target interface {
	resolve() (zarch.Addr, error)
}

// node is one laid-out basic block: zero or more pad instructions
// followed by at most one branch.
type node struct {
	addr    zarch.Addr
	padLens []uint8
	end     zarch.Addr // address one past the last byte of the block

	hasBranch bool
	brAddr    zarch.Addr
	brLen     uint8
	brKind    zarch.BranchKind
	dir       dirFn
	choose    chooseFn
	tgtRefs   []Target
	tgtAddrs  []zarch.Addr // resolved at Build
	isCall    bool         // push NSIA on the interpreter stack when taken
	isReturn  bool         // target comes from the interpreter stack

	fall int // node index executed when not taken / after fallthrough
}

// Program is an executable synthetic program.
type Program struct {
	nodes  []node
	byAddr map[zarch.Addr]int
	entry  int
	// slots is the number of behavioral-state slots the program's
	// branch closures use; each Exec carries its own slot array, so
	// several interpreters can share one Program and Reset can rewind.
	slots int
}

// Blocks returns the number of basic blocks in the program.
func (p *Program) Blocks() int { return len(p.nodes) }

// Footprint returns the byte extent of the laid-out code.
func (p *Program) Footprint() int {
	if len(p.nodes) == 0 {
		return 0
	}
	return int(p.nodes[len(p.nodes)-1].end - p.nodes[0].addr)
}

// Builder lays out blocks at monotonically increasing addresses and
// wires branch behaviour between them. A block's branch must be wired
// while the block is still the most recently created one (the branch
// occupies layout space); branch *targets* may be forward references
// via labels, resolved at Build.
type Builder struct {
	nodes  []node
	cursor zarch.Addr
	rng    *hashx.Rand
	err    error
	labels []*Label
	slots  int
}

// newSlot allocates one behavioral-state slot. Branch closures must
// keep their mutable state in Exec.slot[s] rather than captured
// variables, so the state is per-interpreter and resettable.
func (b *Builder) newSlot() int {
	s := b.slots
	b.slots++
	return s
}

// BlockRef names a created block.
type BlockRef struct {
	b   *Builder
	idx int
}

// Addr returns the entry address of the block.
func (r BlockRef) Addr() zarch.Addr { return r.b.nodes[r.idx].addr }

func (r BlockRef) resolve() (zarch.Addr, error) { return r.Addr(), nil }

// Label is a forward-declared branch target, bound to a block with
// Builder.Bind before Build.
type Label struct {
	b     *Builder
	bound int // node index, -1 until bound
}

func (l *Label) resolve() (zarch.Addr, error) {
	if l.bound < 0 {
		return 0, fmt.Errorf("workload: unbound label")
	}
	return l.b.nodes[l.bound].addr, nil
}

// NewBuilder returns a Builder placing code from base, with rng used
// for pad-instruction length selection.
func NewBuilder(base zarch.Addr, seed uint64) *Builder {
	if base == 0 || !base.HalfwordAligned() {
		panic("workload: builder base must be nonzero and halfword aligned")
	}
	return &Builder{cursor: base, rng: hashx.New(seed)}
}

// NewLabel declares a forward branch target.
func (b *Builder) NewLabel() *Label {
	l := &Label{b: b, bound: -1}
	b.labels = append(b.labels, l)
	return l
}

// Bind attaches label to blk.
func (b *Builder) Bind(l *Label, blk BlockRef) {
	if l.bound != -1 {
		b.fail(fmt.Errorf("workload: label bound twice"))
		return
	}
	l.bound = blk.idx
}

// Cursor moves the layout cursor forward to addr. Moving backward or to
// a misaligned address is recorded as a build error.
func (b *Builder) Cursor(addr zarch.Addr) {
	if addr < b.cursor || !addr.HalfwordAligned() {
		b.fail(fmt.Errorf("workload: bad cursor move %s -> %s", b.cursor, addr))
		return
	}
	b.cursor = addr
}

// Gap advances the cursor by n bytes (rounded up to alignment).
func (b *Builder) Gap(n int) { b.Cursor(b.cursor + zarch.Addr((n+1)&^1)) }

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Block creates a basic block with roughly padBytes of non-branch
// instructions (instruction lengths drawn from {2,4,6}, averaging ~4-5
// bytes as on real z code). The block initially has no branch; wire one
// with the BlockRef terminator methods or leave it as a fallthrough.
func (b *Builder) Block(padBytes int) BlockRef {
	n := node{addr: b.cursor, fall: -1}
	remaining := padBytes
	for remaining >= 2 {
		var ln uint8
		switch remaining {
		case 2:
			ln = 2
		case 4:
			ln = 4
		default:
			ln = []uint8{2, 4, 4, 6, 6, 6}[b.rng.Intn(6)]
			if int(ln) > remaining {
				ln = uint8(remaining &^ 1)
			}
		}
		n.padLens = append(n.padLens, ln)
		remaining -= int(ln)
	}
	var size zarch.Addr
	for _, l := range n.padLens {
		size += zarch.Addr(l)
	}
	n.end = n.addr + size
	b.cursor = n.end
	b.nodes = append(b.nodes, n)
	return BlockRef{b: b, idx: len(b.nodes) - 1}
}

// setBranch appends a branch to the block, which must still be the
// most recently created one (its bytes sit right after the pads).
func (r BlockRef) setBranch(kind zarch.BranchKind, ln uint8, dir dirFn, choose chooseFn, tgts ...Target) {
	b := r.b
	n := &b.nodes[r.idx]
	if n.hasBranch {
		b.fail(fmt.Errorf("workload: block at %s already has a branch", n.addr))
		return
	}
	if r.idx != len(b.nodes)-1 {
		b.fail(fmt.Errorf("workload: branch wired to non-current block at %s", n.addr))
		return
	}
	n.hasBranch = true
	n.brAddr = n.end
	n.brLen = ln
	n.brKind = kind
	n.dir = dir
	n.choose = choose
	n.tgtRefs = tgts
	n.end += zarch.Addr(ln)
	b.cursor = n.end
}

func chooseFirst(_ *Exec, targets []zarch.Addr) zarch.Addr { return targets[0] }

// Jump ends the block with an unconditional relative branch to target.
func (r BlockRef) Jump(target Target) {
	r.setBranch(zarch.KindUncondRel, 4,
		func(*Exec) bool { return true }, chooseFirst, target)
}

// JumpInd ends the block with an unconditional indirect branch to a
// single fixed target (e.g. a function pointer that never changes).
func (r BlockRef) JumpInd(target Target) {
	r.setBranch(zarch.KindUncondInd, 2,
		func(*Exec) bool { return true }, chooseFirst, target)
}

// Loop ends the block with a count-based loop branch to target: taken
// count-1 times, then not taken once, repeating. count must be >= 1.
func (r BlockRef) Loop(count int, target Target) {
	if count < 1 {
		r.b.fail(fmt.Errorf("workload: Loop count %d < 1", count))
		return
	}
	slot := r.b.newSlot()
	r.setBranch(zarch.KindLoop, 4,
		func(e *Exec) bool {
			c := &e.slot[slot]
			*c++
			if *c >= int64(count) {
				*c = 0
				return false
			}
			return true
		}, chooseFirst, target)
}

// CondPattern ends the block with a conditional relative branch whose
// direction follows the repeating pattern (true = taken to target).
func (r BlockRef) CondPattern(pattern []bool, target Target) {
	if len(pattern) == 0 {
		r.b.fail(fmt.Errorf("workload: empty CondPattern"))
		return
	}
	pat := append([]bool(nil), pattern...)
	slot := r.b.newSlot()
	r.setBranch(zarch.KindCondRel, 4,
		func(e *Exec) bool {
			i := &e.slot[slot]
			v := pat[*i]
			*i = (*i + 1) % int64(len(pat))
			return v
		}, chooseFirst, target)
}

// CondBias ends the block with a conditional relative branch taken with
// probability p (using the interpreter's seeded rng).
func (r BlockRef) CondBias(p float64, target Target) {
	r.setBranch(zarch.KindCondRel, 4,
		func(e *Exec) bool { return e.rng.Bool(p) }, chooseFirst, target)
}

// CondLag ends the block with a conditional branch whose direction
// equals the outcome of the lag-th most recent conditional branch
// (global history). Such branches defeat a plain BHT but are learnable
// by history-indexed predictors (TAGE) and by the perceptron when the
// correlation is a single sparse bit (paper §V).
func (r BlockRef) CondLag(lag int, target Target) {
	if lag < 1 || lag > histDepth {
		r.b.fail(fmt.Errorf("workload: CondLag lag %d out of range", lag))
		return
	}
	r.setBranch(zarch.KindCondRel, 4,
		func(e *Exec) bool { return e.histBit(lag) }, chooseFirst, target)
}

// CondXOR ends the block with a conditional branch whose direction is
// the XOR of the outcomes at the given history lags.
func (r BlockRef) CondXOR(lags []int, target Target) {
	for _, l := range lags {
		if l < 1 || l > histDepth {
			r.b.fail(fmt.Errorf("workload: CondXOR lag %d out of range", l))
			return
		}
	}
	ls := append([]int(nil), lags...)
	r.setBranch(zarch.KindCondRel, 4,
		func(e *Exec) bool {
			v := false
			for _, l := range ls {
				v = v != e.histBit(l)
			}
			return v
		}, chooseFirst, target)
}

// Call ends the block with an unconditional relative branch to target
// that behaves like a call: the interpreter pushes the NSIA, and a
// later Return pops it. The z/Architecture has no call instruction;
// this reproduces the emergent pattern the CRS heuristic detects
// (paper §VI).
func (r BlockRef) Call(target Target) {
	r.setBranch(zarch.KindUncondRel, 6,
		func(*Exec) bool { return true }, chooseFirst, target)
	r.b.nodes[r.idx].isCall = true
}

// CallInd is Call with an indirect branch (register-computed target).
func (r BlockRef) CallInd(target Target) {
	r.setBranch(zarch.KindUncondInd, 2,
		func(*Exec) bool { return true }, chooseFirst, target)
	r.b.nodes[r.idx].isCall = true
}

// Return ends the block with an unconditional indirect branch to the
// most recent pushed NSIA (a z-style register return).
func (r BlockRef) Return() {
	r.setBranch(zarch.KindUncondInd, 2,
		func(*Exec) bool { return true }, nil)
	r.b.nodes[r.idx].isReturn = true
}

// TargetChooser selects among the targets of a multi-target branch.
type TargetChooser uint8

// Multi-target selection policies.
const (
	// ChooseRoundRobin cycles through targets in order.
	ChooseRoundRobin TargetChooser = iota
	// ChooseRandom selects uniformly at random.
	ChooseRandom
	// ChoosePath selects as a function of the recent taken-branch path,
	// so a path-indexed predictor (CTB) can learn the mapping.
	ChoosePath
)

// Switch ends the block with an unconditional indirect multi-target
// branch over targets, selected per chooser.
func (r BlockRef) Switch(targets []Target, chooser TargetChooser) {
	if len(targets) == 0 {
		r.b.fail(fmt.Errorf("workload: empty Switch"))
		return
	}
	slot := r.b.newSlot()
	r.setBranch(zarch.KindUncondInd, 2,
		func(*Exec) bool { return true },
		func(e *Exec, addrs []zarch.Addr) zarch.Addr {
			switch chooser {
			case ChooseRandom:
				return addrs[e.rng.Intn(len(addrs))]
			case ChoosePath:
				// Correlate with the targets 4 and 11 taken-branches
				// back: within a 17-deep path history (z14/z15 GPV) but
				// beyond a 9-deep one (z13 and the pre-z15 CTB index) --
				// the correlation depth that motivated the z15 CTB's
				// move to the 17-branch GPV index (paper §VI).
				k := uint64(e.recentTgt(4))>>4 ^ uint64(e.recentTgt(11))>>6
				return addrs[int(k%uint64(len(addrs)))]
			default:
				i := &e.slot[slot]
				a := addrs[int(*i)%len(addrs)]
				*i++
				return a
			}
		}, targets...)
}

// SwitchWeighted ends the block with an unconditional indirect
// multi-target branch whose targets are drawn randomly with the given
// relative weights (e.g. Zipf-distributed transaction dispatch).
func (r BlockRef) SwitchWeighted(targets []Target, weights []int) {
	if len(targets) == 0 || len(targets) != len(weights) {
		r.b.fail(fmt.Errorf("workload: SwitchWeighted needs matching non-empty targets/weights"))
		return
	}
	cum := make([]int, len(weights))
	total := 0
	for i, w := range weights {
		if w <= 0 {
			r.b.fail(fmt.Errorf("workload: SwitchWeighted weight %d <= 0", w))
			return
		}
		total += w
		cum[i] = total
	}
	r.setBranch(zarch.KindUncondInd, 2,
		func(*Exec) bool { return true },
		func(e *Exec, addrs []zarch.Addr) zarch.Addr {
			v := e.rng.Intn(total)
			lo, hi := 0, len(cum)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid] <= v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return addrs[lo]
		}, targets...)
}

// SetFall overrides the not-taken / fallthrough successor, which
// defaults to the next block created. The successor's entry address
// must equal this block's end address (checked at Build).
func (r BlockRef) SetFall(next BlockRef) { r.b.nodes[r.idx].fall = next.idx }

// Build validates the layout, resolves forward references and returns
// the executable Program entered at entry.
func (b *Builder) Build(entry BlockRef) (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("workload: empty program")
	}
	p := &Program{
		nodes:  append([]node(nil), b.nodes...),
		byAddr: make(map[zarch.Addr]int, len(b.nodes)),
		entry:  entry.idx,
		slots:  b.slots,
	}
	for i := range p.nodes {
		p.byAddr[p.nodes[i].addr] = i
	}
	for i := range p.nodes {
		n := &p.nodes[i]
		for _, ref := range n.tgtRefs {
			a, err := ref.resolve()
			if err != nil {
				return nil, fmt.Errorf("workload: block at %s: %w", n.addr, err)
			}
			if _, ok := p.byAddr[a]; !ok {
				return nil, fmt.Errorf("workload: block at %s targets non-block address %s", n.addr, a)
			}
			n.tgtAddrs = append(n.tgtAddrs, a)
		}
		if n.fall == -1 {
			n.fall = i + 1
		}
		if n.isCall {
			// The NSIA pushed by a call must itself be a block entry so
			// the matching Return can resume there.
			if _, ok := p.byAddr[n.end]; !ok {
				return nil, fmt.Errorf("workload: call at %s has non-block NSIA %s", n.brAddr, n.end)
			}
		}
		needsFall := !n.hasBranch || n.brKind.Conditional()
		if needsFall {
			if n.fall >= len(p.nodes) {
				return nil, fmt.Errorf("workload: block at %s falls off the program", n.addr)
			}
			if p.nodes[n.fall].addr != n.end {
				return nil, fmt.Errorf("workload: block at %s falls through to %s but successor is at %s",
					n.addr, n.end, p.nodes[n.fall].addr)
			}
		}
	}
	return p, nil
}

// MustBuild is Build that panics on error, for generators whose
// structure is statically correct.
func (b *Builder) MustBuild(entry BlockRef) *Program {
	p, err := b.Build(entry)
	if err != nil {
		panic(err)
	}
	return p
}

// histDepth is how many conditional-branch outcomes the interpreter
// remembers for CondLag/CondXOR behaviours.
const histDepth = 64

// Exec interprets a Program, implementing trace.Source. Each Exec is an
// independent architectural context with its own rng, call stack and
// branch history.
type Exec struct {
	p    *Program
	rng  *hashx.Rand
	seed uint64 // NewExec seed, kept for Reset

	cur    int // current node
	padPos int // next pad instruction within the node
	padAdr zarch.Addr

	stack []zarch.Addr
	// slot holds the per-interpreter behavioral state of the program's
	// branch closures (loop counters, pattern positions, round-robin
	// indices), indexed by the slot ids the Builder allocated.
	slot []int64
	hist uint64 // bitvector of recent conditional outcomes, bit 0 newest
	path uint64 // folded taken-branch path
	// tgtRing holds the most recent taken-branch targets; ChoosePath
	// correlates with a couple of them at small lags -- shallow path
	// history, the regime a GPV-indexed changing target buffer is built
	// for (paper §VI).
	tgtRing [8]zarch.Addr
	tgtPos  int
	ctx     uint16
}

// recentTgt returns the lag-th most recent taken-branch target (lag 1 =
// newest).
func (e *Exec) recentTgt(lag int) zarch.Addr {
	return e.tgtRing[(e.tgtPos-(lag-1)+2*len(e.tgtRing))%len(e.tgtRing)]
}

// NewExec returns an interpreter over p with the given rng seed.
func NewExec(p *Program, seed uint64) *Exec {
	e := &Exec{p: p, rng: hashx.New(seed), seed: seed, cur: p.entry,
		slot: make([]int64, p.slots)}
	e.padAdr = p.nodes[p.entry].addr
	return e
}

// Reset rewinds the interpreter to its initial state (trace.Resetter):
// the replayed stream is identical to a fresh NewExec with the same
// seed, but the built Program is reused. SetCtx state is cleared.
func (e *Exec) Reset() {
	p, seed := e.p, e.seed
	slot := e.slot
	for i := range slot {
		slot[i] = 0
	}
	*e = Exec{p: p, rng: hashx.New(seed), seed: seed, cur: p.entry,
		stack: e.stack[:0], slot: slot}
	e.padAdr = p.nodes[p.entry].addr
}

// SetCtx sets the context ID stamped on emitted records.
func (e *Exec) SetCtx(ctx uint16) { e.ctx = ctx }

func (e *Exec) histBit(lag int) bool { return e.hist>>(lag-1)&1 == 1 }

func (e *Exec) pushHist(taken bool) {
	e.hist <<= 1
	if taken {
		e.hist |= 1
	}
}

func (e *Exec) enter(idx int) {
	e.cur = idx
	e.padPos = 0
	e.padAdr = e.p.nodes[idx].addr
}

// Next implements trace.Source; the stream is unbounded.
func (e *Exec) Next() (trace.Rec, bool) {
	for {
		n := &e.p.nodes[e.cur]
		if e.padPos < len(n.padLens) {
			ln := n.padLens[e.padPos]
			r := trace.Rec{Addr: e.padAdr, Meta: trace.RecMeta(ln, 0, false), CtxID: e.ctx}
			e.padPos++
			e.padAdr += zarch.Addr(ln)
			return r, true
		}
		if n.hasBranch {
			taken := n.dir(e)
			var target zarch.Addr
			if taken {
				if n.isReturn {
					if len(e.stack) > 0 {
						target = e.stack[len(e.stack)-1]
						e.stack = e.stack[:len(e.stack)-1]
					} else {
						// Defensive: structured generators never underflow.
						target = e.p.nodes[e.p.entry].addr
					}
				} else {
					target = n.choose(e, n.tgtAddrs)
				}
				if n.isCall {
					e.stack = append(e.stack, n.brAddr+zarch.Addr(n.brLen))
					if len(e.stack) > 256 {
						// Bound runaway recursion in ill-formed generators.
						e.stack = e.stack[1:]
					}
				}
			}
			if n.brKind.Conditional() {
				e.pushHist(taken)
			}
			r := trace.NewRec(n.brAddr, n.brLen, n.brKind, taken, target, e.ctx)
			if taken {
				e.path = e.path<<7 ^ e.path>>57 ^ uint64(target)>>1
				e.tgtPos = (e.tgtPos + 1) % len(e.tgtRing)
				e.tgtRing[e.tgtPos] = target
				idx, ok := e.p.byAddr[target]
				if !ok {
					// Return targets always land on block entries because
					// calls terminate their blocks; anything else is a
					// generator bug, so fail loudly.
					panic(fmt.Sprintf("workload: branch at %s targets non-block %s", n.brAddr, target))
				}
				e.enter(idx)
			} else {
				e.enter(n.fall)
			}
			return r, true
		}
		// Pure fallthrough block: move on without emitting.
		e.enter(n.fall)
	}
}

// Multiplex round-robins between sources in fixed slices of records,
// stamping each source's records with its index as CtxID. It models
// coarse OS-style dispatching of independent address spaces and is how
// context-switch-triggered BTB2 prefetch paths get exercised.
type Multiplex struct {
	srcs  []trace.Source
	slice int
	cur   int
	left  int
}

// NewMultiplex interleaves srcs with the given slice length.
func NewMultiplex(srcs []trace.Source, slice int) *Multiplex {
	if len(srcs) == 0 || slice <= 0 {
		panic("workload: NewMultiplex needs sources and a positive slice")
	}
	return &Multiplex{srcs: srcs, slice: slice, left: slice}
}

// Reset rewinds the multiplexer and every underlying source
// (trace.Resetter). It panics if a source cannot be rewound; all
// generator-built sources can.
func (m *Multiplex) Reset() {
	for _, src := range m.srcs {
		r, ok := src.(trace.Resetter)
		if !ok {
			panic(fmt.Sprintf("workload: Multiplex source %T is not resettable", src))
		}
		r.Reset()
	}
	m.cur = 0
	m.left = m.slice
}

// Next implements trace.Source.
func (m *Multiplex) Next() (trace.Rec, bool) {
	for tries := 0; tries < len(m.srcs); tries++ {
		if m.left == 0 {
			m.cur = (m.cur + 1) % len(m.srcs)
			m.left = m.slice
		}
		r, ok := m.srcs[m.cur].Next()
		if ok {
			m.left--
			r.CtxID = uint16(m.cur)
			return r, true
		}
		m.left = 0
	}
	return trace.Rec{}, false
}
