package workload

import (
	"os"
	"path/filepath"
	"testing"

	"zbp/internal/trace"
)

// writeTrace materializes a small generator trace into dir and returns
// the file path.
func writeTrace(t *testing.T, dir, name string, seed uint64, n int) string {
	t.Helper()
	p, err := MakePacked(name, seed, n)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".zbpt")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMakeFileWorkload: a file: workload replays exactly the records
// that were written, through the same Make entry point generators use.
func TestMakeFileWorkload(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "loops", 7, 5000)
	want, err := trace.LoadPackedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Make(FilePrefix+path, 42) // seed is ignored for files
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < want.Len(); i++ {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("file source dried up at record %d of %d", i, want.Len())
		}
		if got != want.At(i) {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want.At(i))
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("file source kept going past the file's records")
	}
}

// TestMakeFileMissing: an unreadable path is a Make error, not a panic
// or an empty stream.
func TestMakeFileMissing(t *testing.T) {
	if _, err := Make(FilePrefix+filepath.Join(t.TempDir(), "nope.zbpt"), 42); err == nil {
		t.Fatal("expected error for missing trace file")
	}
}

// TestSpecWorkload: a spec mixes a generator part and a looped file
// part under the Multiplex arrival model — the stream context-switches
// and stays architecturally valid.
func TestSpecWorkload(t *testing.T) {
	dir := t.TempDir()
	writeTrace(t, dir, "loops", 7, 2000)
	spec := filepath.Join(dir, "mix.json")
	doc := `{"version":1,"slice":500,"parts":[
		{"workload":"micro"},
		{"file":"loops.zbpt","loop":true}
	]}`
	if err := os.WriteFile(spec, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := Make(SpecPrefix+spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Collect(src, 20000)
	if st.Instructions != 20000 {
		t.Fatalf("collected %d instructions, want 20000", st.Instructions)
	}
	if st.CtxSwitches == 0 {
		t.Fatal("multiplexed spec produced no context switches")
	}
}

// TestSpecErrors pins the spec validator's rejections.
func TestSpecErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"bad version", `{"version":2,"parts":[{"workload":"lspr"}]}`},
		{"no parts", `{"version":1,"parts":[]}`},
		{"both workload and file", `{"version":1,"parts":[{"workload":"lspr","file":"x.zbpt"}]}`},
		{"neither workload nor file", `{"version":1,"parts":[{}]}`},
		{"nested path-backed", `{"version":1,"parts":[{"workload":"file:x.zbpt"}]}`},
		{"funcs without lspr", `{"version":1,"parts":[{"workload":"micro","funcs":16}]}`},
		{"funcs below minimum", `{"version":1,"parts":[{"workload":"lspr","funcs":4}]}`},
		{"loop without file", `{"version":1,"parts":[{"workload":"lspr","loop":true}]}`},
		{"unknown field", `{"version":1,"parts":[{"workload":"lspr","bogus":1}]}`},
		{"negative slice", `{"version":1,"slice":-1,"parts":[{"workload":"lspr"}]}`},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "spec.json")
			if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Make(SpecPrefix+path, 42); err == nil {
				t.Fatalf("spec %s accepted", tc.doc)
			}
		})
	}
}

// TestSpecID: generator names are their own identity; path-backed
// identities are content digests that change with the bytes — including
// bytes of files a spec merely references.
func TestSpecID(t *testing.T) {
	if id, err := SpecID("lspr"); err != nil || id != "lspr" {
		t.Fatalf("generator identity = %q, %v", id, err)
	}

	dir := t.TempDir()
	path := writeTrace(t, dir, "loops", 7, 1000)
	id1, err := SpecID(FilePrefix + path)
	if err != nil {
		t.Fatal(err)
	}
	// Same bytes, same identity.
	id1b, _ := SpecID(FilePrefix + path)
	if id1 != id1b {
		t.Fatalf("identity not deterministic: %q vs %q", id1, id1b)
	}
	// Different bytes, different identity.
	writeTrace(t, dir, "loops", 8, 1000)
	id2, err := SpecID(FilePrefix + path)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("file identity did not change with file content")
	}

	// A spec's identity covers its referenced files too.
	spec := filepath.Join(dir, "mix.json")
	doc := `{"version":1,"parts":[{"file":"loops.zbpt"}]}`
	if err := os.WriteFile(spec, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	sid1, err := SpecID(SpecPrefix + spec)
	if err != nil {
		t.Fatal(err)
	}
	writeTrace(t, dir, "loops", 9, 1000) // edit the referenced file only
	sid2, err := SpecID(SpecPrefix + spec)
	if err != nil {
		t.Fatal(err)
	}
	if sid1 == sid2 {
		t.Fatal("spec identity did not change with referenced file content")
	}

	if _, err := SpecID(FilePrefix + filepath.Join(dir, "absent.zbpt")); err == nil {
		t.Fatal("expected error for unreadable file identity")
	}
}

// TestMaterializerDigestKeyed is the cache-staleness regression test:
// editing a trace file's bytes must re-materialize, not serve the old
// buffer back under the unchanged name.
func TestMaterializerDigestKeyed(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "loops", 7, 1000)
	name := FilePrefix + path

	mz := NewMaterializer()
	p1, err := mz.Get(name, 42, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Same bytes: the same shared buffer comes back.
	p1b, err := mz.Get(name, 42, 500)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p1b {
		t.Fatal("unchanged file re-materialized instead of hitting the cache")
	}

	writeTrace(t, dir, "loops", 99, 1000) // swap the file's content in place
	p2, err := mz.Get(name, 42, 500)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("stale materialization served after the file changed")
	}
	if p1.Len() > 0 && p2.Len() > 0 && p1.At(0) == p2.At(0) && p1.At(p1.Len()-1) == p2.At(p2.Len()-1) {
		t.Log("note: differing buffers with coincidentally equal boundary records")
	}
}

// TestLoopGlue: cyclic replay bridges the wrap with a synthetic taken
// branch so the stream stays contiguous forever.
func TestLoopGlue(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "loops", 7, 100)
	p, err := trace.LoadPackedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cur := p.Cursor()
	l := NewLoop(&cur)
	prev, ok := l.Next()
	if !ok {
		t.Fatal("loop over non-empty trace is empty")
	}
	for i := 1; i < 350; i++ { // > 3 full cycles of 100
		r, ok := l.Next()
		if !ok {
			t.Fatalf("loop dried up at %d", i)
		}
		if prev.Next() != r.Addr {
			t.Fatalf("record %d: discontinuity %v -> %v across the wrap", i, prev.Next(), r.Addr)
		}
		prev = r
	}
}

// TestLoopEmpty: looping an empty source terminates instead of
// spinning.
func TestLoopEmpty(t *testing.T) {
	p, err := trace.PackRecs(nil)
	if err != nil {
		t.Fatal(err)
	}
	cur := p.Cursor()
	l := NewLoop(&cur)
	if _, ok := l.Next(); ok {
		t.Fatal("empty loop yielded a record")
	}
}
