package workload

import (
	"testing"

	"zbp/internal/trace"
	"zbp/internal/zarch"
)

// drain pulls n records and validates each.
func drain(t *testing.T, src trace.Source, n int) []trace.Rec {
	t.Helper()
	recs := trace.Take(src, n)
	for i, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d invalid: %v (%+v)", i, err, r)
		}
	}
	return recs
}

// checkProgramOrder verifies the fundamental trace invariant: each
// record begins where the previous one said control goes next.
func checkProgramOrder(t *testing.T, recs []trace.Rec) {
	t.Helper()
	for i := 1; i < len(recs); i++ {
		if recs[i].CtxID != recs[i-1].CtxID {
			continue // context switch may jump anywhere
		}
		if want := recs[i-1].Next(); recs[i].Addr != want {
			t.Fatalf("record %d at %s, want %s (prev %+v)", i, recs[i].Addr, want, recs[i-1])
		}
	}
}

func TestBuilderSimpleLoop(t *testing.T) {
	b := NewBuilder(0x1000, 1)
	headL := b.NewLabel()
	head := b.Block(8)
	b.Bind(headL, head)
	latch := b.Block(4)
	latch.Loop(3, headL)
	tail := b.Block(2)
	tail.Jump(headL)
	p, err := b.Build(head)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExec(p, 2)
	recs := drain(t, e, 100)
	checkProgramOrder(t, recs)

	// Count loop-branch outcomes: taken twice then not taken, repeating.
	var outcomes []bool
	for _, r := range recs {
		if r.Kind() == zarch.KindLoop {
			outcomes = append(outcomes, r.Taken())
		}
	}
	if len(outcomes) < 6 {
		t.Fatalf("only %d loop outcomes", len(outcomes))
	}
	for i, taken := range outcomes[:6] {
		want := (i+1)%3 != 0
		if taken != want {
			t.Errorf("loop outcome %d = %v, want %v", i, taken, want)
		}
	}
}

func TestBuilderFallthroughGapError(t *testing.T) {
	b := NewBuilder(0x1000, 1)
	blk := b.Block(8) // no branch: needs contiguous successor
	b.Gap(64)
	b.Block(4)
	tail := b.Block(2)
	tail.Jump(BlockRef{b: b, idx: 0})
	if _, err := b.Build(blk); err == nil {
		t.Fatal("Build accepted gapped fallthrough")
	}
}

func TestBuilderUnboundLabel(t *testing.T) {
	b := NewBuilder(0x1000, 1)
	l := b.NewLabel()
	blk := b.Block(4)
	blk.Jump(l)
	if _, err := b.Build(blk); err == nil {
		t.Fatal("Build accepted unbound label")
	}
}

func TestBuilderDoubleBranch(t *testing.T) {
	b := NewBuilder(0x1000, 1)
	blk := b.Block(4)
	blk.Jump(blk)
	blk.Jump(blk)
	if _, err := b.Build(blk); err == nil {
		t.Fatal("Build accepted double branch")
	}
}

func TestBuilderWireNonCurrent(t *testing.T) {
	b := NewBuilder(0x1000, 1)
	first := b.Block(4)
	second := b.Block(4)
	second.Jump(first)
	first.Jump(second) // first is no longer current: must fail
	if _, err := b.Build(first); err == nil {
		t.Fatal("Build accepted branch wired to non-current block")
	}
}

func TestBuilderCursorBackward(t *testing.T) {
	b := NewBuilder(0x1000, 1)
	blk := b.Block(4)
	blk.Jump(blk)
	b.Cursor(0x100)
	if _, err := b.Build(blk); err == nil {
		t.Fatal("Build accepted backward cursor")
	}
}

func TestCallReturnStack(t *testing.T) {
	b := NewBuilder(0x1000, 1)
	fnL := b.NewLabel()
	caller := b.Block(8)
	caller.Call(fnL)
	cont := b.Block(4)
	cont.Jump(caller)
	b.Gap(1 << 17)
	fn := b.Block(6)
	b.Bind(fnL, fn)
	ret := b.Block(2)
	ret.Return()
	p, err := b.Build(caller)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExec(p, 2)
	recs := drain(t, e, 60)
	checkProgramOrder(t, recs)

	// Every return must target the NSIA of the preceding call.
	var lastCallNSIA zarch.Addr
	returns := 0
	for _, r := range recs {
		if r.Kind() == zarch.KindUncondRel && r.Taken() && r.Target == fn.Addr() {
			lastCallNSIA = r.Addr + zarch.Addr(r.Len())
		}
		if r.Kind() == zarch.KindUncondInd && r.Taken() {
			returns++
			if r.Target != lastCallNSIA {
				t.Fatalf("return to %s, want %s", r.Target, lastCallNSIA)
			}
		}
	}
	if returns < 3 {
		t.Errorf("only %d returns observed", returns)
	}
}

func TestSwitchRoundRobin(t *testing.T) {
	b := NewBuilder(0x1000, 1)
	arms := []Target{b.NewLabel(), b.NewLabel(), b.NewLabel()}
	sw := b.Block(4)
	sw.Switch(arms, ChooseRoundRobin)
	swL := b.NewLabel()
	b.Bind(swL, BlockRef{b: b, idx: 0})
	for _, a := range arms {
		blk := b.Block(4)
		blk.Jump(swL)
		b.Bind(a.(*Label), blk)
	}
	p, err := b.Build(BlockRef{b: b, idx: 0})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExec(p, 2)
	recs := drain(t, e, 60)
	var targets []zarch.Addr
	for _, r := range recs {
		if r.Kind() == zarch.KindUncondInd {
			targets = append(targets, r.Target)
		}
	}
	if len(targets) < 6 {
		t.Fatal("too few switch executions")
	}
	for i := 3; i < len(targets); i++ {
		if targets[i] != targets[i-3] {
			t.Fatalf("round-robin violated at %d", i)
		}
	}
	if targets[0] == targets[1] {
		t.Error("round-robin did not advance")
	}
}

func TestCondPatternSequence(t *testing.T) {
	b := NewBuilder(0x1000, 1)
	afterL := b.NewLabel()
	blk := b.Block(4)
	blk.CondPattern([]bool{true, false, false}, afterL)
	island := b.Block(4)
	after := b.Block(4)
	b.Bind(afterL, after)
	after.Jump(BlockRef{b: b, idx: 0})
	_ = island
	p, err := b.Build(blk)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExec(p, 2)
	recs := drain(t, e, 60)
	var outcomes []bool
	for _, r := range recs {
		if r.Kind() == zarch.KindCondRel {
			outcomes = append(outcomes, r.Taken())
		}
	}
	want := []bool{true, false, false, true, false, false}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("pattern outcome %d = %v", i, outcomes[i])
		}
	}
}

func TestCondLagCorrelation(t *testing.T) {
	// A branch whose direction is the outcome of the previous
	// conditional: feed it with an alternating pattern and check.
	b := NewBuilder(0x1000, 1)
	after1L, after2L := b.NewLabel(), b.NewLabel()
	src := b.Block(4)
	src.CondPattern([]bool{true, false}, after1L)
	b.Block(2) // island
	after1 := b.Block(4)
	b.Bind(after1L, after1)
	after1.CondLag(1, after2L)
	b.Block(2) // island
	after2 := b.Block(4)
	b.Bind(after2L, after2)
	after2.Jump(BlockRef{b: b, idx: 0})
	p, err := b.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExec(p, 2)
	recs := drain(t, e, 200)
	checkProgramOrder(t, recs)
	// Branch pairs: the lag-1 branch must copy the pattern branch.
	var pat, lag []bool
	for _, r := range recs {
		if r.Kind() != zarch.KindCondRel {
			continue
		}
		if r.Addr == after1.Addr()+4 { // after1's branch is after its pads
			lag = append(lag, r.Taken())
		} else {
			pat = append(pat, r.Taken())
		}
	}
	if len(lag) < 10 {
		t.Fatalf("too few lag outcomes: %d", len(lag))
	}
	for i := range lag {
		if lag[i] != pat[i] {
			t.Fatalf("lag outcome %d = %v, want %v", i, lag[i], pat[i])
		}
	}
}

func TestMultiplexInterleavesAndStampsCtx(t *testing.T) {
	s1 := Loops(1)
	s2 := Loops(2)
	m := NewMultiplex([]trace.Source{s1, s2}, 10)
	recs := trace.Take(m, 100)
	if len(recs) != 100 {
		t.Fatalf("got %d records", len(recs))
	}
	for i := 0; i < 10; i++ {
		if recs[i].CtxID != 0 {
			t.Fatalf("record %d ctx %d, want 0", i, recs[i].CtxID)
		}
	}
	for i := 10; i < 20; i++ {
		if recs[i].CtxID != 1 {
			t.Fatalf("record %d ctx %d, want 1", i, recs[i].CtxID)
		}
	}
	checkProgramOrder(t, recs)
}

func TestProgramFootprint(t *testing.T) {
	b := NewBuilder(0x1000, 1)
	blk := b.Block(64)
	blk.Jump(blk)
	p := b.MustBuild(blk)
	if p.Blocks() != 1 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
	if fp := p.Footprint(); fp < 64 || fp > 72 {
		t.Errorf("Footprint = %d", fp)
	}
}
