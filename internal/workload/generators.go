package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"zbp/internal/hashx"
	"zbp/internal/trace"
)

// Maker constructs a fresh, deterministic trace source for a seed.
type Maker func(seed uint64) trace.Source

// Registry returns the named workloads used by the CLIs, experiments
// and benchmarks. Each entry is self-contained and seeded.
func Registry() map[string]Maker {
	return map[string]Maker{
		"loops":      Loops,
		"callret":    CallReturn,
		"indirect":   IndirectSwitch,
		"patterned":  Patterned,
		"lspr-small": func(seed uint64) trace.Source { return LSPR(seed, 400, 1.0) },
		"lspr":       func(seed uint64) trace.Source { return LSPR(seed, 2000, 1.0) },
		"lspr-large": func(seed uint64) trace.Source { return LSPR(seed, 6000, 0.9) },
		"micro":      Microservices,
		"interp":     Interpreter,
		"btree":      BTree,
		"mixed":      Mixed,
	}
}

// Names returns the registry keys in sorted order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Make builds the named workload or returns an error listing the
// available names. Besides the registered generators, a name can be a
// path-backed form: `file:<path>` replays a trace file, and
// `spec:<path>` builds the context-switching mix a workload-spec
// document describes (see file.go). File-backed sources ignore the
// seed — a trace's content is fixed.
func Make(name string, seed uint64) (trace.Source, error) {
	switch {
	case strings.HasPrefix(name, FilePrefix):
		return makeFile(name[len(FilePrefix):])
	case strings.HasPrefix(name, SpecPrefix):
		return makeSpec(name[len(SpecPrefix):], seed)
	}
	m, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return m(seed), nil
}

// Loops is a compute-intensive kernel: a three-deep loop nest with a
// strongly biased branch and a short repeating pattern in the inner
// body. Nearly every branch is predictable; this is the "small, hot"
// end of the spectrum the paper contrasts with large-footprint work.
func Loops(seed uint64) trace.Source {
	b := NewBuilder(0x10000, seed)

	outerHeadL, midHeadL, innerHeadL := b.NewLabel(), b.NewLabel(), b.NewLabel()
	afterRareL := b.NewLabel()

	outerHead := b.Block(24)
	b.Bind(outerHeadL, outerHead)
	midHead := b.Block(16)
	b.Bind(midHeadL, midHead)
	innerHead := b.Block(12)
	b.Bind(innerHeadL, innerHead)

	// Biased branch usually skips the rare block.
	biasBlk := b.Block(8)
	biasBlk.CondBias(0.95, afterRareL)
	b.Block(10) // rare path, fallthrough into afterRare
	afterRare := b.Block(6)
	b.Bind(afterRareL, afterRare)
	afterRare.CondPattern([]bool{true, true, false}, innerHeadL)

	innerLatch := b.Block(4)
	innerLatch.Loop(10, innerHeadL)
	midLatch := b.Block(4)
	midLatch.Loop(50, midHeadL)
	outerLatch := b.Block(4)
	outerLatch.Loop(1<<30, outerHeadL)
	end := b.Block(2)
	end.Jump(outerHeadL)

	return NewExec(b.MustBuild(outerHead), seed+1)
}

// CallReturn models shared utility functions invoked from many distant
// call sites -- the pattern the CRS distance heuristic detects (paper
// §VI). Call sites sit in a loop far (>64KB) from the callees, so taken
// call branches exceed the distance threshold, and each return targets
// a different NSIA.
func CallReturn(seed uint64) trace.Source {
	b := NewBuilder(0x40000, seed)
	rng := hashx.New(seed ^ 0xc0ffee)

	const nSites = 24
	const nFns = 3

	fnLabels := make([]*Label, nFns)
	for i := range fnLabels {
		fnLabels[i] = b.NewLabel()
	}
	headL := b.NewLabel()

	head := b.Block(12)
	b.Bind(headL, head)
	for i := 0; i < nSites; i++ {
		site := b.Block(10 + rng.Intn(4)*2)
		site.Call(fnLabels[i%nFns])
	}
	latch := b.Block(4)
	latch.Loop(1<<30, headL)
	tail := b.Block(2)
	tail.Jump(headL)

	// The functions live far away so taken call-branch distance exceeds
	// the CRS detection threshold.
	b.Gap(512 * 1024)
	for i := 0; i < nFns; i++ {
		entry := b.Block(20 + rng.Intn(10)*2)
		b.Bind(fnLabels[i], entry)
		bodyL := b.NewLabel()
		body := b.Block(10)
		b.Bind(bodyL, body)
		bodyLatch := b.Block(4)
		bodyLatch.Loop(3+i, bodyL)
		ret := b.Block(2)
		ret.Return()
		b.Gap(4096)
	}
	return NewExec(b.MustBuild(head), seed+1)
}

// IndirectSwitch stresses the CTB: a dispatch loop whose first switch
// rotates round-robin and whose second switch's target is a function of
// the first's choice two taken-branches earlier -- exactly the
// path-correlated changing-target behaviour a GPV-indexed CTB learns
// (§VI). A third, genuinely random switch runs on a rare path (1 in 16
// iterations) as the irreducible component.
func IndirectSwitch(seed uint64) trace.Source {
	b := NewBuilder(0x20000, seed)

	headL := b.NewLabel()
	head := b.Block(16)
	b.Bind(headL, head)

	mkArms := func(n int) []Target {
		ts := make([]Target, n)
		for i := range ts {
			ts[i] = b.NewLabel()
		}
		return ts
	}

	// Stage A: round-robin fanout 4. Its arm identity enters the GPV.
	armsA := mkArms(4)
	swA := b.Block(8)
	swA.Switch(armsA, ChooseRoundRobin)

	// Stage B: target correlated with stage A's arm (lag 2 in the
	// taken-target history).
	swBL := b.NewLabel()
	armsB := mkArms(4)
	swB := b.Block(8)
	b.Bind(swBL, swB)
	swB.Switch(armsB, ChoosePath)

	// Rare random stage: entered 1 of 16 iterations via the gate.
	gateL := b.NewLabel()
	rareSwL := b.NewLabel()
	latchL := b.NewLabel()
	gate := b.Block(6)
	b.Bind(gateL, gate)
	gate.CondPattern([]bool{
		false, false, false, false, false, false, false, false,
		false, false, false, false, false, false, false, true,
	}, rareSwL)
	fall := b.Block(2)
	fall.Jump(latchL)

	armsC := mkArms(4)
	rareSw := b.Block(4)
	b.Bind(rareSwL, rareSw)
	rareSw.Switch(armsC, ChooseRandom)

	latch := b.Block(4)
	b.Bind(latchL, latch)
	latch.Loop(1<<30, headL)
	fin := b.Block(2)
	fin.Jump(headL)

	bindArms := func(arms []Target, next Target) {
		for _, a := range arms {
			blk := b.Block(8)
			blk.Jump(next)
			b.Bind(a.(*Label), blk)
		}
	}
	bindArms(armsA, swBL)
	bindArms(armsB, gateL)
	bindArms(armsC, latchL)

	return NewExec(b.MustBuild(head), seed+1)
}

// Patterned isolates direction prediction: a tight loop over branches
// with repeating patterns of several lengths, single-lag correlations
// (sparse history bits, the perceptron's specialty, paper §V),
// XOR combinations and an irreducible 50/50 branch.
func Patterned(seed uint64) trace.Source {
	b := NewBuilder(0x30000, seed)

	headL := b.NewLabel()
	head := b.Block(8)
	b.Bind(headL, head)

	// Layout per branch: blk (cond, taken->island) | fall (jump after) |
	// island (falls into after) | after.
	wirePattern := func(wire func(blk BlockRef, tgt Target)) {
		islandL := b.NewLabel()
		afterL := b.NewLabel()
		blk := b.Block(6)
		wire(blk, islandL)
		fall := b.Block(4)
		fall.Jump(afterL)
		island := b.Block(6)
		b.Bind(islandL, island)
		after := b.Block(4)
		b.Bind(afterL, after)
	}

	wirePattern(func(blk BlockRef, t Target) { blk.CondPattern([]bool{true, false}, t) })
	wirePattern(func(blk BlockRef, t Target) { blk.CondPattern([]bool{true, true, false}, t) })
	wirePattern(func(blk BlockRef, t Target) {
		blk.CondPattern([]bool{true, true, true, true, false, false, true, false}, t)
	})
	wirePattern(func(blk BlockRef, t Target) {
		pat := make([]bool, 15)
		for i := range pat {
			pat[i] = i%3 != 0
		}
		blk.CondPattern(pat, t)
	})
	wirePattern(func(blk BlockRef, t Target) { blk.CondLag(4, t) })
	wirePattern(func(blk BlockRef, t Target) { blk.CondLag(14, t) })
	wirePattern(func(blk BlockRef, t Target) { blk.CondXOR([]int{2, 5}, t) })
	wirePattern(func(blk BlockRef, t Target) { blk.CondXOR([]int{3, 7, 11}, t) })
	wirePattern(func(blk BlockRef, t Target) { blk.CondBias(0.5, t) })  // irreducible
	wirePattern(func(blk BlockRef, t Target) { blk.CondBias(0.98, t) }) // BHT fodder

	latch := b.Block(4)
	latch.Loop(1<<30, headL)
	fin := b.Block(2)
	fin.Jump(headL)

	return NewExec(b.MustBuild(head), seed+1)
}

// LSPR approximates IBM's Large System Performance Reference profile
// (paper §I): a transaction dispatcher Zipf-selects among nFuncs
// functions whose bodies mix loops, patterned and biased conditionals,
// occasional multi-target switches, and calls into a pool of distant
// shared utilities. nFuncs scales the instruction footprint; ~2000
// functions is a few MB of code -- far more branches than a 16K-entry
// BTB1 tracks, the regime the multi-level BTB targets (§II.A, §III).
func LSPR(seed uint64, nFuncs int, zipfS float64) trace.Source {
	if nFuncs < 8 {
		panic("workload: LSPR needs at least 8 functions")
	}
	b := NewBuilder(0x100000, seed)
	rng := hashx.New(seed ^ 0x15b9)

	fnEntries := make([]*Label, nFuncs)
	for i := range fnEntries {
		fnEntries[i] = b.NewLabel()
	}
	const nUtil = 8
	utils := make([]*Label, nUtil)
	for i := range utils {
		utils[i] = b.NewLabel()
	}

	// Dispatcher: a Zipf-weighted switch selects a *transaction script*,
	// a fixed chain of function calls. The data-dependent (irreducible)
	// indirect dispatch happens once per transaction; within a script
	// the call sequence is deterministic warm code -- the shape of real
	// LSPR transactions.
	dispL := b.NewLabel()
	disp := b.Block(12)
	b.Bind(dispL, disp)
	nScripts := nFuncs/10 + 4
	scripts := make([]Target, nScripts)
	weights := make([]int, nScripts)
	for i := range scripts {
		scripts[i] = b.NewLabel()
		w := int(1e6 / math.Pow(float64(i+1), zipfS))
		if w < 1 {
			w = 1
		}
		weights[i] = w
	}
	sel := b.Block(6)
	sel.SwitchWeighted(scripts, weights)
	for i := range scripts {
		first := b.Block(4)
		b.Bind(scripts[i].(*Label), first)
		calls := 4 + rng.Intn(6)
		for c := 0; c < calls; c++ {
			// Scripts lean on the Zipf-popular low-index functions but
			// each has its own deterministic mix.
			fn := rng.Intn(nFuncs)
			if rng.Bool(0.5) {
				fn = rng.Intn(nFuncs/8 + 1)
			}
			blk := b.Block(4 + rng.Intn(4)*2)
			blk.Call(fnEntries[fn])
		}
		tail := b.Block(2)
		tail.Jump(dispL)
	}

	b.Gap(64 * 1024)
	for i := 0; i < nFuncs; i++ {
		buildLSPRFunc(b, rng, fnEntries[i], utils)
	}

	// Utility pool, far away so utility calls exceed the CRS distance
	// threshold.
	b.Gap(2 * 1024 * 1024)
	for i := 0; i < nUtil; i++ {
		entry := b.Block(24 + rng.Intn(12)*2)
		b.Bind(utils[i], entry)
		bodyL := b.NewLabel()
		body := b.Block(12)
		b.Bind(bodyL, body)
		latch := b.Block(4)
		latch.Loop(2+rng.Intn(6), bodyL)
		ret := b.Block(2)
		ret.Return()
		b.Gap(1024)
	}

	return NewExec(b.MustBuild(disp), seed+1)
}

// buildLSPRFunc lays out one LSPR function body with a randomized mix
// of branch idioms, ending in a Return.
func buildLSPRFunc(b *Builder, rng *hashx.Rand, entry *Label, utils []*Label) {
	first := b.Block(8 + rng.Intn(20)*2)
	b.Bind(entry, first)

	// Most functions begin with a small setup loop (initialization,
	// field copies). Its taken latches fill the shallow history window,
	// so a 9-deep path index sees function-local context for the
	// branches that follow, while a 17-deep index still carries caller
	// entropy -- the capacity-efficiency asymmetry between the z15 TAGE
	// short table and a single long-history PHT (§V).
	if rng.Bool(0.7) {
		headL := b.NewLabel()
		head := b.Block(6 + rng.Intn(6)*2)
		b.Bind(headL, head)
		latch := b.Block(4)
		latch.Loop(3+rng.Intn(3), headL)
	}

	condIsland := func(wire func(blk BlockRef, tgt Target)) {
		afterL := b.NewLabel()
		blk := b.Block(8)
		wire(blk, afterL)
		b.Block(6 + rng.Intn(8)*2) // island, executed on not-taken, falls into after
		after := b.Block(4)
		b.Bind(afterL, after)
	}

	nIdioms := 1 + rng.Intn(4)
	for k := 0; k < nIdioms; k++ {
		switch rng.Intn(10) {
		case 0, 1: // small loop
			headL := b.NewLabel()
			head := b.Block(6 + rng.Intn(10)*2)
			b.Bind(headL, head)
			latch := b.Block(4)
			latch.Loop(2+rng.Intn(12), headL)
		case 2, 3: // biased conditional
			p := []float64{0.02, 0.05, 0.1, 0.85, 0.9, 0.95}[rng.Intn(6)]
			condIsland(func(blk BlockRef, t Target) { blk.CondBias(p, t) })
		case 4: // hard conditional
			p := 0.35 + rng.Float64()*0.3
			condIsland(func(blk BlockRef, t Target) { blk.CondBias(p, t) })
		case 5, 6: // patterned conditional
			n := 2 + rng.Intn(12)
			pat := make([]bool, n)
			for i := range pat {
				pat[i] = rng.Bool(0.6)
			}
			condIsland(func(blk BlockRef, t Target) { blk.CondPattern(pat, t) })
		case 7: // lag-correlated conditional
			lag := 1 + rng.Intn(16)
			condIsland(func(blk BlockRef, t Target) { blk.CondLag(lag, t) })
		case 8: // utility call
			blk := b.Block(6)
			blk.Call(utils[rng.Intn(len(utils))])
			b.Block(4) // continuation after return
		case 9: // small switch
			fan := 2 + rng.Intn(6)
			arms := make([]Target, fan)
			for i := range arms {
				arms[i] = b.NewLabel()
			}
			joinL := b.NewLabel()
			blk := b.Block(6)
			// Mostly learnable multi-target behaviour, occasionally
			// data-dependent (irreducible) dispatch.
			ch := []TargetChooser{ChoosePath, ChoosePath, ChooseRoundRobin, ChooseRandom}[rng.Intn(4)]
			blk.Switch(arms, ch)
			for i := range arms {
				arm := b.Block(4 + rng.Intn(6)*2)
				arm.Jump(joinL)
				b.Bind(arms[i].(*Label), arm)
			}
			join := b.Block(4)
			b.Bind(joinL, join)
		}
	}
	ret := b.Block(2 + rng.Intn(4)*2)
	ret.Return()
	b.Gap(64 + rng.Intn(128)*2)
}

// Microservices models the "large quantity of smaller micro-services"
// transition the paper calls out (§II): a request dispatcher Zipf-
// selects among many small service handlers, each of which does a
// little local work and makes one or two calls into a distant pool of
// shared infrastructure routines (serialization, logging, RPC) -- the
// far call/return pairs the CRS heuristic detects. Each service is
// invoked from its own dispatch thunk, so service returns are
// single-target; the shared-pool returns are the multi-target ones.
func Microservices(seed uint64) trace.Source {
	b := NewBuilder(0x80000, seed)
	rng := hashx.New(seed ^ 0x5e11)

	const nSvc = 160
	const nLeaf = 32
	entries := make([]*Label, nSvc)
	for i := range entries {
		entries[i] = b.NewLabel()
	}
	leaves := make([]*Label, nLeaf)
	for i := range leaves {
		leaves[i] = b.NewLabel()
	}

	dispL := b.NewLabel()
	disp := b.Block(10)
	b.Bind(dispL, disp)
	roots := make([]Target, nSvc)
	weights := make([]int, nSvc)
	for i := 0; i < nSvc; i++ {
		roots[i] = b.NewLabel()
		weights[i] = int(1e6 / math.Pow(float64(i+1), 1.1))
		if weights[i] < 1 {
			weights[i] = 1
		}
	}
	sel := b.Block(4)
	sel.SwitchWeighted(roots, weights)
	for i := 0; i < nSvc; i++ {
		thunk := b.Block(2)
		thunk.Call(entries[i])
		back := b.Block(2)
		back.Jump(dispL)
		b.Bind(roots[i].(*Label), thunk)
	}

	b.Gap(32 * 1024)
	for i := 0; i < nSvc; i++ {
		entry := b.Block(16 + rng.Intn(16)*2)
		b.Bind(entries[i], entry)
		// Local work: a conditional or two.
		nConds := 1 + rng.Intn(2)
		for c := 0; c < nConds; c++ {
			afterL := b.NewLabel()
			blk := b.Block(6 + rng.Intn(6)*2)
			blk.CondBias([]float64{0.1, 0.9, 0.85, 0.95}[rng.Intn(4)], afterL)
			b.Block(4 + rng.Intn(4)*2) // island
			after := b.Block(4)
			b.Bind(afterL, after)
		}
		// One or two calls into the distant shared pool.
		nCalls := 1 + rng.Intn(2)
		for c := 0; c < nCalls; c++ {
			pre := b.Block(6 + rng.Intn(6)*2)
			if rng.Bool(0.3) {
				pre.CallInd(leaves[rng.Intn(nLeaf)])
			} else {
				pre.Call(leaves[rng.Intn(nLeaf)])
			}
			b.Block(4) // continuation after return
		}
		ret := b.Block(2)
		ret.Return()
		b.Gap(32 + rng.Intn(32)*2)
	}

	// The shared infrastructure pool lives far away, so calls into it
	// exceed the CRS distance threshold and its returns -- invoked from
	// every service -- are the classic call/return pattern.
	b.Gap(1 << 20)
	for i := 0; i < nLeaf; i++ {
		entry := b.Block(12 + rng.Intn(12)*2)
		b.Bind(leaves[i], entry)
		bodyL := b.NewLabel()
		body := b.Block(8)
		b.Bind(bodyL, body)
		latch := b.Block(4)
		// Long enough that the high-entropy dispatch history has
		// scrolled out of the 17-deep GPV by the time the return's
		// target is predicted.
		latch.Loop(6+rng.Intn(6), bodyL)
		ret := b.Block(2)
		ret.Return()
		b.Gap(256)
	}

	return NewExec(b.MustBuild(disp), seed+1)
}

// Mixed interleaves an LSPR context, a microservices context and a
// loops context in coarse time slices, generating the context switches
// that trigger proactive BTB2 searches and CTB tag mismatches.
func Mixed(seed uint64) trace.Source {
	return NewMultiplex([]trace.Source{
		LSPR(seed, 1200, 1.0),
		Microservices(seed + 7),
		Loops(seed + 13),
	}, 30000)
}
