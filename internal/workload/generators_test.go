package workload

import (
	"testing"

	"zbp/internal/trace"
	"zbp/internal/zarch"
)

func TestRegistryAllRunnable(t *testing.T) {
	for name, mk := range Registry() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			src := mk(42)
			recs := trace.Take(src, 20000)
			if len(recs) != 20000 {
				t.Fatalf("%s: produced only %d records", name, len(recs))
			}
			for i, r := range recs {
				if err := r.Validate(); err != nil {
					t.Fatalf("%s: record %d invalid: %v", name, i, err)
				}
			}
			checkProgramOrder(t, recs)
		})
	}
}

func TestRegistryDeterministic(t *testing.T) {
	for name, mk := range Registry() {
		a := trace.Take(mk(7), 5000)
		b := trace.Take(mk(7), 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: record %d differs between same-seed runs", name, i)
			}
		}
	}
}

func TestRegistrySeedSensitivity(t *testing.T) {
	// Different seeds must not produce identical branch outcome streams
	// for workloads with random behaviour.
	for _, name := range []string{"lspr-small", "micro"} {
		mk := Registry()[name]
		a := trace.Take(mk(1), 20000)
		b := trace.Take(mk(2), 20000)
		diff := false
		for i := range a {
			if a[i] != b[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Errorf("%s: seeds 1 and 2 produced identical traces", name)
		}
	}
}

func TestMakeUnknown(t *testing.T) {
	if _, err := Make("no-such-workload", 1); err == nil {
		t.Fatal("Make accepted unknown name")
	}
	if src, err := Make("loops", 1); err != nil || src == nil {
		t.Fatalf("Make(loops) = %v, %v", src, err)
	}
}

func TestNamesSortedComplete(t *testing.T) {
	names := Names()
	if len(names) != len(Registry()) {
		t.Fatalf("Names() has %d entries, registry %d", len(names), len(Registry()))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

// statsFor computes trace stats over n records of a fresh workload.
func statsFor(name string, n int) trace.Stats {
	src, err := Make(name, 99)
	if err != nil {
		panic(err)
	}
	return trace.Collect(src, n)
}

func TestLSPRShape(t *testing.T) {
	st := statsFor("lspr", 300000)
	// Paper rules of thumb (§II.A): a branch roughly every 4-6
	// instructions, average instruction length near 5 bytes, and a large
	// code footprint.
	if d := st.BranchDensity(); d < 2.5 || d > 9 {
		t.Errorf("branch density = %.2f instr/branch, want ~4-6", d)
	}
	if l := st.AvgInstrLen(); l < 3.4 || l > 5.6 {
		t.Errorf("avg instr len = %.2f, want ~4-5", l)
	}
	if st.Footprint < 2000 {
		t.Errorf("footprint = %d 64B lines, want large", st.Footprint)
	}
	if st.DistinctBr < 2000 {
		t.Errorf("distinct branches = %d, want thousands", st.DistinctBr)
	}
	if r := st.TakenRatio(); r < 0.35 || r > 0.95 {
		t.Errorf("taken ratio = %.2f", r)
	}
	if st.Indirect == 0 {
		t.Error("no indirect branches in LSPR")
	}
}

func TestLoopsShape(t *testing.T) {
	st := statsFor("loops", 100000)
	if st.Footprint > 10 {
		t.Errorf("loops footprint = %d lines, want tiny", st.Footprint)
	}
	if st.DistinctBr > 16 {
		t.Errorf("loops distinct branches = %d", st.DistinctBr)
	}
}

func TestLSPRFootprintScales(t *testing.T) {
	small := trace.Collect(LSPR(5, 64, 1.0), 200000)
	large := trace.Collect(LSPR(5, 1024, 1.0), 200000)
	if large.DistinctBr <= small.DistinctBr {
		t.Errorf("footprint did not scale: small=%d large=%d",
			small.DistinctBr, large.DistinctBr)
	}
}

func TestCallReturnHasFarCalls(t *testing.T) {
	src, _ := Make("callret", 3)
	recs := trace.Take(src, 50000)
	farCalls, rets := 0, 0
	for _, r := range recs {
		if !r.IsBranch() || !r.Taken() {
			continue
		}
		d := int64(r.Target) - int64(r.Addr)
		if d < 0 {
			d = -d
		}
		if r.Kind() == zarch.KindUncondRel && d > 64*1024 {
			farCalls++
		}
		if r.Kind() == zarch.KindUncondInd {
			rets++
		}
	}
	if farCalls < 100 {
		t.Errorf("far calls = %d, want many", farCalls)
	}
	if rets < 100 {
		t.Errorf("returns = %d, want many", rets)
	}
}

func TestMixedSwitchesContexts(t *testing.T) {
	src, _ := Make("mixed", 3)
	recs := trace.Take(src, 200000)
	seen := map[uint16]bool{}
	switches := 0
	for i, r := range recs {
		seen[r.CtxID] = true
		if i > 0 && r.CtxID != recs[i-1].CtxID {
			switches++
		}
	}
	if len(seen) != 3 {
		t.Errorf("contexts seen = %d, want 3", len(seen))
	}
	if switches < 5 {
		t.Errorf("context switches = %d", switches)
	}
}

func TestIndirectTargetsVary(t *testing.T) {
	src, _ := Make("indirect", 3)
	recs := trace.Take(src, 50000)
	targets := map[zarch.Addr]map[zarch.Addr]bool{}
	for _, r := range recs {
		if r.Kind() == zarch.KindUncondInd && r.Taken() {
			if targets[r.Addr] == nil {
				targets[r.Addr] = map[zarch.Addr]bool{}
			}
			targets[r.Addr][r.Target] = true
		}
	}
	multi := 0
	for _, m := range targets {
		if len(m) > 1 {
			multi++
		}
	}
	if multi < 3 {
		t.Errorf("multi-target indirect branches = %d, want >= 3", multi)
	}
}
