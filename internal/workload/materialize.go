package workload

import (
	"fmt"
	"sync"

	"zbp/internal/trace"
)

// MakePacked generates n instructions of the named workload once and
// packs them into an immutable trace.Packed for repeated replay. This
// is the materialize-once entry point sweep campaigns use: generation
// and validation are paid a single time, then every design point
// replays a zero-decode cursor over the shared buffer.
func MakePacked(name string, seed uint64, n int) (*trace.Packed, error) {
	src, err := Make(name, seed)
	if err != nil {
		return nil, err
	}
	p, err := trace.Pack(src, n)
	if err != nil {
		return nil, fmt.Errorf("workload: packing %s: %w", name, err)
	}
	return p, nil
}

// Materializer caches packed workload traces by (name, seed, budget),
// so a whole experiment campaign — many experiments sweeping many
// configurations over the same workloads — generates each workload
// exactly once for the entire run. The cache is safe for concurrent
// use; the cached buffers are immutable and shared by reference.
type Materializer struct {
	mu sync.Mutex
	m  map[matKey]*trace.Packed
}

type matKey struct {
	name string
	seed uint64
	n    int
}

// NewMaterializer returns an empty cache.
func NewMaterializer() *Materializer {
	return &Materializer{m: make(map[matKey]*trace.Packed)}
}

// Get returns the packed trace for (name, seed, n), materializing it
// on first use. Concurrent callers of the same key block until the
// single materialization finishes rather than duplicating the work.
func (mz *Materializer) Get(name string, seed uint64, n int) (*trace.Packed, error) {
	key := matKey{name, seed, n}
	mz.mu.Lock()
	defer mz.mu.Unlock()
	if p, ok := mz.m[key]; ok {
		return p, nil
	}
	p, err := MakePacked(name, seed, n)
	if err != nil {
		return nil, err
	}
	mz.m[key] = p
	return p, nil
}

// Count returns the number of distinct traces materialized so far.
func (mz *Materializer) Count() int {
	mz.mu.Lock()
	defer mz.mu.Unlock()
	return len(mz.m)
}

// FootprintBytes returns the total heap footprint of every cached
// buffer, for logging and capacity planning.
func (mz *Materializer) FootprintBytes() int {
	mz.mu.Lock()
	defer mz.mu.Unlock()
	total := 0
	for _, p := range mz.m {
		total += p.SizeBytes()
	}
	return total
}
