package workload

import (
	"fmt"
	"sync"
	"sync/atomic"

	"zbp/internal/trace"
)

// MakePacked generates n instructions of the named workload once and
// packs them into an immutable trace.Packed for repeated replay. This
// is the materialize-once entry point sweep campaigns use: generation
// and validation are paid a single time, then every design point
// replays a zero-decode cursor over the shared buffer.
func MakePacked(name string, seed uint64, n int) (*trace.Packed, error) {
	src, err := Make(name, seed)
	if err != nil {
		return nil, err
	}
	p, err := trace.Pack(src, n)
	if err != nil {
		return nil, fmt.Errorf("workload: packing %s: %w", name, err)
	}
	return p, nil
}

// Materializer caches packed workload traces by (name, seed, budget),
// so a whole experiment campaign — many experiments sweeping many
// configurations over the same workloads — generates each workload
// exactly once for the entire run. The cache is safe for concurrent
// use and uses per-key singleflight: concurrent callers of the same
// key share one materialization, while distinct keys materialize in
// parallel instead of serializing behind a cache-wide lock. The cached
// buffers are immutable and shared by reference.
type Materializer struct {
	mu sync.Mutex
	m  map[matKey]*matEntry
}

type matKey struct {
	name string
	seed uint64
	n    int
}

// matEntry is one key's singleflight slot. The entry is inserted into
// the map (under mu) before anything is generated; the expensive
// generation+pack runs inside once with mu released, so it only ever
// blocks callers of the same key. done publishes p/err to readers that
// did not run the Once body (Count, FootprintBytes).
type matEntry struct {
	once sync.Once
	done atomic.Bool
	p    *trace.Packed
	err  error
}

// NewMaterializer returns an empty cache.
func NewMaterializer() *Materializer {
	return &Materializer{m: make(map[matKey]*matEntry)}
}

// Get returns the packed trace for (name, seed, n), materializing it
// on first use. Concurrent callers of the same key block until the
// single materialization finishes rather than duplicating the work;
// callers of different keys do not block each other.
//
// The cache key uses the workload's content identity (SpecID), not its
// name: a file-backed workload whose bytes changed on disk is a
// different key and re-materializes instead of replaying the stale
// buffer.
func (mz *Materializer) Get(name string, seed uint64, n int) (*trace.Packed, error) {
	id, err := SpecID(name)
	if err != nil {
		return nil, err
	}
	key := matKey{id, seed, n}
	mz.mu.Lock()
	e, ok := mz.m[key]
	if !ok {
		e = &matEntry{}
		mz.m[key] = e
	}
	mz.mu.Unlock()
	e.once.Do(func() {
		if hook := materializeHook; hook != nil {
			hook(key.name, key.seed, key.n)
		}
		e.p, e.err = MakePacked(name, seed, n)
		e.done.Store(true)
	})
	return e.p, e.err
}

// materializeHook, when non-nil, is invoked once per actual
// materialization (not per Get). Tests use it to assert singleflight
// behaviour; it must be set before any Get runs.
var materializeHook func(name string, seed uint64, n int)

// Count returns the number of distinct traces successfully
// materialized so far. In-flight materializations are not counted.
func (mz *Materializer) Count() int {
	mz.mu.Lock()
	defer mz.mu.Unlock()
	count := 0
	for _, e := range mz.m {
		if e.done.Load() && e.err == nil {
			count++
		}
	}
	return count
}

// FootprintBytes returns the total heap footprint of every cached
// buffer, for logging and capacity planning.
func (mz *Materializer) FootprintBytes() int {
	mz.mu.Lock()
	defer mz.mu.Unlock()
	total := 0
	for _, e := range mz.m {
		if e.done.Load() && e.err == nil {
			total += e.p.SizeBytes()
		}
	}
	return total
}
