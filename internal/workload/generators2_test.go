package workload

import (
	"testing"

	"zbp/internal/trace"
	"zbp/internal/zarch"
)

func TestInterpreterDispatchIsPeriodic(t *testing.T) {
	src := Interpreter(7)
	recs := trace.Take(src, 120000)
	checkProgramOrder(t, recs)

	// The dispatch switch is the single hottest indirect branch.
	counts := map[zarch.Addr]int{}
	targets := map[zarch.Addr]map[zarch.Addr]bool{}
	for _, r := range recs {
		if r.Kind() == zarch.KindUncondInd && r.Taken() {
			counts[r.Addr]++
			if targets[r.Addr] == nil {
				targets[r.Addr] = map[zarch.Addr]bool{}
			}
			targets[r.Addr][r.Target] = true
		}
	}
	var hot zarch.Addr
	for a, c := range counts {
		if c > counts[hot] {
			hot = a
		}
	}
	if counts[hot] < 3000 {
		t.Fatalf("dispatch executed only %d times", counts[hot])
	}
	if len(targets[hot]) < 10 {
		t.Errorf("dispatch saw only %d handler targets", len(targets[hot]))
	}

	// The synthetic bytecode is a fixed looped program, so the target
	// sequence of the dispatch must be periodic with period 300.
	var seq []zarch.Addr
	for _, r := range recs {
		if r.Addr == hot && r.Taken() {
			seq = append(seq, r.Target)
		}
	}
	period := 300
	for i := period; i < len(seq); i++ {
		if seq[i] != seq[i-period] {
			t.Fatalf("dispatch sequence not periodic at %d", i)
		}
	}
}

func TestBTreeBimodalBranches(t *testing.T) {
	src := BTree(9)
	recs := trace.Take(src, 100000)
	checkProgramOrder(t, recs)

	// Key-compare branches are ~50/50; structural branches (loop latch,
	// call, return) are near-deterministic.
	dirs := map[zarch.Addr][2]int{} // [notTaken, taken]
	for _, r := range recs {
		if r.Kind() == zarch.KindCondRel {
			d := dirs[r.Addr]
			if r.Taken() {
				d[1]++
			} else {
				d[0]++
			}
			dirs[r.Addr] = d
		}
	}
	hard := 0
	for _, d := range dirs {
		total := d[0] + d[1]
		if total < 100 {
			continue
		}
		ratio := float64(d[1]) / float64(total)
		if ratio > 0.35 && ratio < 0.65 {
			hard++
		}
	}
	if hard < 4 {
		t.Errorf("hard compare branches = %d, want >= 4 (tree depth 6)", hard)
	}

	// Returns exist and pair with the far leaf call.
	rets := 0
	for _, r := range recs {
		if r.Kind() == zarch.KindUncondInd && r.Taken() {
			rets++
		}
	}
	if rets < 500 {
		t.Errorf("returns = %d", rets)
	}
}

func TestNewWorkloadsInRegistry(t *testing.T) {
	for _, name := range []string{"interp", "btree"} {
		src, err := Make(name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		recs := trace.Take(src, 5000)
		if len(recs) != 5000 {
			t.Fatalf("%s produced %d records", name, len(recs))
		}
		for i, r := range recs {
			if err := r.Validate(); err != nil {
				t.Fatalf("%s record %d: %v", name, i, err)
			}
		}
	}
}
