package workload

import (
	"testing"

	"zbp/internal/trace"
)

// TestResetReplaysIdenticalStream: for every registered workload, Reset
// must replay exactly the stream a fresh Make would produce.
func TestResetReplaysIdenticalStream(t *testing.T) {
	const n = 5000
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			src, err := Make(name, 99)
			if err != nil {
				t.Fatal(err)
			}
			r, ok := src.(trace.Resetter)
			if !ok {
				t.Fatalf("workload %s source %T is not resettable", name, src)
			}
			first := trace.Take(src, n)
			r.Reset()
			second := trace.Take(src, n)
			fresh, _ := Make(name, 99)
			ref := trace.Take(fresh, n)
			if len(first) != n || len(second) != n || len(ref) != n {
				t.Fatalf("short streams: %d %d %d", len(first), len(second), len(ref))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("record %d differs after Reset: %+v vs %+v", i, first[i], second[i])
				}
				if first[i] != ref[i] {
					t.Fatalf("record %d differs from fresh Make: %+v vs %+v", i, first[i], ref[i])
				}
			}
		})
	}
}
