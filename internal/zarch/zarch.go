// Package zarch models the subset of the z/Architecture instruction set
// that matters to a branch predictor: variable-length CISC instructions
// (2, 4 or 6 bytes), relative branches whose target is an offset from
// the branch's own address, and indirect branches whose target is
// computed late in the back end from base+index+displacement.
//
// The z/Architecture has no true call/return instructions (unlike Power
// or x86); call- and return-like behaviour is an emergent property of
// branch pairs, which is why the z15 call/return stack is a heuristic
// detector rather than an architectural structure (paper §VI).
package zarch

import "fmt"

// Addr is a virtual instruction address. z/Architecture instructions are
// halfword (2-byte) aligned, so the low bit of a valid Addr is zero.
type Addr uint64

// Line64 returns the address of the 64-byte line containing a, the
// granule of one z15 BTB1 search (paper §IV).
func (a Addr) Line64() Addr { return a &^ 63 }

// Line32 returns the 32-byte line containing a, the granule covered by
// each of the two search ports on z13/z14 and by one instruction fetch.
func (a Addr) Line32() Addr { return a &^ 31 }

// Offset64 returns the byte offset of a within its 64-byte line.
func (a Addr) Offset64() uint { return uint(a & 63) }

func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// HalfwordAligned reports whether a is a legal instruction address.
func (a Addr) HalfwordAligned() bool { return a&1 == 0 }

// BranchKind classifies the branch behaviour of an instruction.
//
// Relative branches carry their target as a signed halfword offset in
// the instruction text, so the front end can compute the target itself.
// Indirect branches compute their target from registers roughly a dozen
// cycles into the back end (paper §I), which is why an unpredicted
// taken indirect branch stalls the front end.
type BranchKind uint8

const (
	// KindNone marks a non-branch instruction.
	KindNone BranchKind = iota
	// KindCondRel is a conditional relative branch (BRC/BRCL-like).
	KindCondRel
	// KindUncondRel is an unconditional relative branch (BRU/J-like).
	KindUncondRel
	// KindCondInd is a conditional indirect branch (BCR-like with mask).
	KindCondInd
	// KindUncondInd is an unconditional indirect branch (BCR 15 / BR-like).
	KindUncondInd
	// KindLoop is a count-based loop-closing branch (BCT/BRCT-like):
	// taken until its counter reaches zero. Statically guessed taken.
	KindLoop

	numKinds
)

var kindNames = [numKinds]string{
	"none", "cond-rel", "uncond-rel", "cond-ind", "uncond-ind", "loop",
}

func (k BranchKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("BranchKind(%d)", uint8(k))
}

// IsBranch reports whether k denotes any branch instruction.
func (k BranchKind) IsBranch() bool { return k != KindNone && k < numKinds }

// Conditional reports whether the branch may resolve either direction.
func (k BranchKind) Conditional() bool {
	return k == KindCondRel || k == KindCondInd || k == KindLoop
}

// Indirect reports whether the target is register-computed.
func (k BranchKind) Indirect() bool {
	return k == KindCondInd || k == KindUncondInd
}

// Relative reports whether the target is encoded in the instruction text.
func (k BranchKind) Relative() bool {
	return k == KindCondRel || k == KindUncondRel || k == KindLoop
}

// StaticGuessTaken returns the IDU's static direction guess for a
// surprise branch of kind k (paper §IV): unconditional branches and
// loop branches are guessed taken; most conditional branches are
// guessed not-taken.
func (k BranchKind) StaticGuessTaken() bool {
	switch k {
	case KindUncondRel, KindUncondInd, KindLoop:
		return true
	default:
		return false
	}
}

// Instruction lengths in bytes. z/Architecture instructions are 2, 4 or
// 6 bytes; the average across commercial code is roughly 5 bytes
// (paper §II.A).
const (
	LenShort = 2
	LenMid   = 4
	LenLong  = 6
)

// ValidLen reports whether n is a legal z/Architecture instruction length.
func ValidLen(n uint8) bool { return n == LenShort || n == LenMid || n == LenLong }

// Instruction is one decoded instruction as seen by the front end.
type Instruction struct {
	Addr Addr
	Len  uint8 // 2, 4 or 6
	Kind BranchKind
}

// Next returns the next sequential instruction address (NSIA).
func (i Instruction) Next() Addr { return i.Addr + Addr(i.Len) }

// Validate checks structural invariants and returns a descriptive error
// for the first violation.
func (i Instruction) Validate() error {
	if !i.Addr.HalfwordAligned() {
		return fmt.Errorf("zarch: instruction address %s not halfword aligned", i.Addr)
	}
	if !ValidLen(i.Len) {
		return fmt.Errorf("zarch: invalid instruction length %d at %s", i.Len, i.Addr)
	}
	if i.Kind >= numKinds {
		return fmt.Errorf("zarch: invalid branch kind %d at %s", uint8(i.Kind), i.Addr)
	}
	return nil
}
