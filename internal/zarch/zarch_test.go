package zarch

import (
	"testing"
	"testing/quick"
)

func TestLineHelpers(t *testing.T) {
	cases := []struct {
		a              Addr
		line64, line32 Addr
		off64          uint
	}{
		{0, 0, 0, 0},
		{0x3e, 0, 0x20, 0x3e},
		{0x40, 0x40, 0x40, 0},
		{0x1234, 0x1200, 0x1220, 0x34},
		{0xfffffffffffffffe, 0xffffffffffffffc0, 0xffffffffffffffe0, 0x3e},
	}
	for _, c := range cases {
		if got := c.a.Line64(); got != c.line64 {
			t.Errorf("Line64(%s) = %s, want %s", c.a, got, c.line64)
		}
		if got := c.a.Line32(); got != c.line32 {
			t.Errorf("Line32(%s) = %s, want %s", c.a, got, c.line32)
		}
		if got := c.a.Offset64(); got != c.off64 {
			t.Errorf("Offset64(%s) = %d, want %d", c.a, got, c.off64)
		}
	}
}

func TestLine64Properties(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		l := addr.Line64()
		return l&63 == 0 && l <= addr && addr-l < 64 && l+Addr(addr.Offset64()) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBranchKindPredicates(t *testing.T) {
	cases := []struct {
		k                                 BranchKind
		isBr, cond, ind, rel, staticTaken bool
	}{
		{KindNone, false, false, false, false, false},
		{KindCondRel, true, true, false, true, false},
		{KindUncondRel, true, false, false, true, true},
		{KindCondInd, true, true, true, false, false},
		{KindUncondInd, true, false, true, false, true},
		{KindLoop, true, true, false, true, true},
	}
	for _, c := range cases {
		if got := c.k.IsBranch(); got != c.isBr {
			t.Errorf("%v.IsBranch() = %v, want %v", c.k, got, c.isBr)
		}
		if got := c.k.Conditional(); got != c.cond {
			t.Errorf("%v.Conditional() = %v, want %v", c.k, got, c.cond)
		}
		if got := c.k.Indirect(); got != c.ind {
			t.Errorf("%v.Indirect() = %v, want %v", c.k, got, c.ind)
		}
		if got := c.k.Relative(); got != c.rel {
			t.Errorf("%v.Relative() = %v, want %v", c.k, got, c.rel)
		}
		if got := c.k.StaticGuessTaken(); got != c.staticTaken {
			t.Errorf("%v.StaticGuessTaken() = %v, want %v", c.k, got, c.staticTaken)
		}
	}
}

func TestKindPartition(t *testing.T) {
	// Every branch kind is exactly one of relative or indirect.
	for k := KindNone; k < numKinds; k++ {
		if !k.IsBranch() {
			continue
		}
		if k.Relative() == k.Indirect() {
			t.Errorf("%v: Relative()=%v Indirect()=%v, want exactly one", k, k.Relative(), k.Indirect())
		}
	}
}

func TestInstructionValidate(t *testing.T) {
	good := Instruction{Addr: 0x1000, Len: 4, Kind: KindCondRel}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v, want nil", good, err)
	}
	bad := []Instruction{
		{Addr: 0x1001, Len: 4, Kind: KindNone},        // misaligned
		{Addr: 0x1000, Len: 3, Kind: KindNone},        // bad length
		{Addr: 0x1000, Len: 4, Kind: BranchKind(200)}, // bad kind
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", b)
		}
	}
}

func TestInstructionNext(t *testing.T) {
	for _, n := range []uint8{2, 4, 6} {
		i := Instruction{Addr: 0x2000, Len: n}
		if got := i.Next(); got != Addr(0x2000+uint64(n)) {
			t.Errorf("Next with len %d = %s", n, got)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindLoop.String() != "loop" {
		t.Errorf("KindLoop.String() = %q", KindLoop.String())
	}
	if s := BranchKind(99).String(); s != "BranchKind(99)" {
		t.Errorf("out-of-range String() = %q", s)
	}
}
