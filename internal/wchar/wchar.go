// Package wchar characterizes workload branch predictability: the
// metrics "Workload Characterization for Branch Predictability"
// (Vikas, Gratz & Jiménez) and "Branch Prediction Is Not a Solved
// Problem" (Lin & Tarsa) use to explain *why* a predictor scores what
// it scores on a trace — taken rate, transition rate, local-history
// conditional entropy, and the hard-to-predict (H2P) branch
// population: the handful of static branches contributing most of the
// mispredicts under a cheap reference predictor.
//
// Characterization is a sidecar, not part of the simulator's stats
// schema: reports carry their own schema version and serialize
// deterministically, so golden sidecars can be diffed in CI without
// ever perturbing the golden stats JSON.
package wchar

import (
	"encoding/json"
	"io"
	"math"
	"sort"

	"zbp/internal/trace"
	"zbp/internal/zarch"
)

// SchemaVersion identifies the report layout. Bump on any field
// change, exactly like metrics.SchemaVersion.
const SchemaVersion = 1

// Config sizes the characterization pass. The zero value gets
// production-lean defaults.
type Config struct {
	// TopN bounds the H2P list. Default: 20.
	TopN int
	// LocalHistBits is the per-branch local-history depth conditioning
	// the entropy estimate. Default: 8.
	LocalHistBits int
	// RefTableBits sizes the reference gshare predictor's counter
	// table. Default: 14 (16K two-bit counters).
	RefTableBits int
}

func (c Config) withDefaults() Config {
	if c.TopN <= 0 {
		c.TopN = 20
	}
	if c.LocalHistBits <= 0 {
		c.LocalHistBits = 8
	}
	if c.LocalHistBits > 16 {
		c.LocalHistBits = 16
	}
	if c.RefTableBits <= 0 {
		c.RefTableBits = 14
	}
	if c.RefTableBits > 24 {
		c.RefTableBits = 24
	}
	return c
}

// Report is the schema-versioned characterization sidecar.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Workload      string `json:"workload"`
	Seed          uint64 `json:"seed"`

	Instructions   int `json:"instructions"`
	Branches       int `json:"branches"`
	Conditional    int `json:"conditional"`
	Indirect       int `json:"indirect"`
	StaticBranches int `json:"static_branches"`
	FootprintLines int `json:"footprint_lines"`
	CtxSwitches    int `json:"ctx_switches"`

	// TakenRate is the fraction of branch executions resolved taken.
	TakenRate float64 `json:"taken_rate"`
	// TransitionRate is the fraction of conditional branch executions
	// whose outcome differs from the same static branch's previous
	// outcome — the bias-independent "how twitchy" measure.
	TransitionRate float64 `json:"transition_rate"`
	// HistoryEntropy is the exec-weighted mean, over static conditional
	// branches, of the branch's outcome entropy conditioned on its own
	// recent local history (bits of irreducible-looking randomness per
	// outcome; 0 = fully determined by local history).
	HistoryEntropy float64 `json:"history_entropy"`

	// RefPredictor names the cheap reference predictor the mispredict
	// attribution below uses.
	RefPredictor   string  `json:"ref_predictor"`
	RefMispredicts int     `json:"ref_mispredicts"`
	RefAccuracy    float64 `json:"ref_accuracy"`
	RefMPKI        float64 `json:"ref_mpki"`

	// H2P lists the top static branches by reference-predictor
	// mispredicts, most-damaging first.
	H2P []H2PEntry `json:"h2p"`
}

// H2PEntry is one hard-to-predict static branch.
type H2PEntry struct {
	Addr            string  `json:"addr"`
	Kind            string  `json:"kind"`
	Execs           int     `json:"execs"`
	TakenRate       float64 `json:"taken_rate"`
	Transitions     int     `json:"transitions"`
	Mispredicts     int     `json:"mispredicts"`
	Accuracy        float64 `json:"accuracy"`
	Entropy         float64 `json:"entropy"`
	MispredictShare float64 `json:"mispredict_share"`
}

// WriteJSON writes the report's canonical serialization (two-space
// indent, fixed field order, trailing newline) to w.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// bstate accumulates one static branch.
type bstate struct {
	kind    zarch.BranchKind
	execs   int
	taken   int
	trans   int
	misp    int
	predAt  int // predicted executions (conditional dir + indirect target)
	seen    bool
	lastOut bool
	lastTgt zarch.Addr
	hist    uint32
	buckets map[uint32]*[2]uint32
}

// Characterize consumes up to max records from src (max <= 0 means
// until exhaustion) and computes the characterization report. The
// caller stamps Workload/Seed before serializing.
//
// The reference predictor is deliberately cheap and fixed: a gshare
// direction predictor (2^RefTableBits two-bit counters indexed by
// PC xor global history) plus a per-branch last-target predictor for
// indirect targets. H2P identification needs a stable, simple
// yardstick — the z15 model itself is the thing whose accuracy the
// characterization explains, so it cannot also be the ruler.
func Characterize(src trace.Source, max int, cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{SchemaVersion: SchemaVersion}

	table := make([]uint8, 1<<cfg.RefTableBits)
	for i := range table {
		table[i] = 2 // weakly taken
	}
	mask := uint64(len(table) - 1)
	histMask := uint32(1)<<cfg.LocalHistBits - 1
	var ghist uint64

	branches := make(map[zarch.Addr]*bstate)
	lines := make(map[zarch.Addr]struct{})
	var lastCtx uint16
	first := true
	takenCount := 0

	for max <= 0 || rep.Instructions < max {
		r, ok := src.Next()
		if !ok {
			break
		}
		rep.Instructions++
		lines[r.Addr.Line64()] = struct{}{}
		if !first && r.CtxID != lastCtx {
			rep.CtxSwitches++
		}
		first, lastCtx = false, r.CtxID
		if !r.IsBranch() {
			continue
		}
		rep.Branches++
		out := r.Taken()
		if out {
			takenCount++
		}
		kind := r.Kind()
		b := branches[r.Addr]
		if b == nil {
			b = &bstate{kind: kind}
			branches[r.Addr] = b
		}
		b.execs++
		if out {
			b.taken++
		}
		if kind.Conditional() {
			rep.Conditional++
			// Local-history-conditioned outcome distribution.
			if b.buckets == nil {
				b.buckets = make(map[uint32]*[2]uint32)
			}
			bucket := b.buckets[b.hist]
			if bucket == nil {
				bucket = new([2]uint32)
				b.buckets[b.hist] = bucket
			}
			if out {
				bucket[1]++
			} else {
				bucket[0]++
			}
			if b.seen && out != b.lastOut {
				b.trans++
			}
			// Reference gshare direction prediction.
			idx := (uint64(r.Addr)>>1 ^ ghist) & mask
			pred := table[idx] >= 2
			b.predAt++
			if pred != out {
				b.misp++
			}
			if out && table[idx] < 3 {
				table[idx]++
			} else if !out && table[idx] > 0 {
				table[idx]--
			}
			ghist = ghist<<1 | btou(out)
			b.hist = (b.hist<<1 | uint32(btou(out))) & histMask
		}
		if kind.Indirect() {
			rep.Indirect++
			// Last-target reference prediction for taken indirects.
			if out {
				b.predAt++
				if b.seen && b.lastTgt != r.Target {
					b.misp++
				} else if !b.seen {
					b.misp++ // first sight is compulsory
				}
				b.lastTgt = r.Target
			}
		}
		b.seen, b.lastOut = true, out
	}

	rep.StaticBranches = len(branches)
	rep.FootprintLines = len(lines)
	rep.TakenRate = round6(ratio(takenCount, rep.Branches))

	// Fold per-branch accumulators into the aggregate rates and the
	// H2P ranking.
	totalTrans, totalMisp, totalPred := 0, 0, 0
	entropyWeighted, entropyWeight := 0.0, 0.0
	type ranked struct {
		addr zarch.Addr
		b    *bstate
		ent  float64
	}
	var rank []ranked
	for addr, b := range branches {
		totalTrans += b.trans
		totalMisp += b.misp
		totalPred += b.predAt
		ent := localEntropy(b.buckets)
		if b.buckets != nil {
			condExecs := 0
			for _, bucket := range b.buckets {
				condExecs += int(bucket[0] + bucket[1])
			}
			entropyWeighted += ent * float64(condExecs)
			entropyWeight += float64(condExecs)
		}
		if b.misp > 0 {
			rank = append(rank, ranked{addr, b, ent})
		}
	}
	rep.TransitionRate = round6(ratio(totalTrans, rep.Conditional))
	if entropyWeight > 0 {
		rep.HistoryEntropy = round6(entropyWeighted / entropyWeight)
	}
	rep.RefPredictor = refName(cfg)
	rep.RefMispredicts = totalMisp
	rep.RefAccuracy = round6(ratio(totalPred-totalMisp, totalPred))
	if rep.Instructions > 0 {
		rep.RefMPKI = round6(1000 * float64(totalMisp) / float64(rep.Instructions))
	}

	sort.Slice(rank, func(i, j int) bool {
		if rank[i].b.misp != rank[j].b.misp {
			return rank[i].b.misp > rank[j].b.misp
		}
		return rank[i].addr < rank[j].addr
	})
	if len(rank) > cfg.TopN {
		rank = rank[:cfg.TopN]
	}
	rep.H2P = make([]H2PEntry, len(rank))
	for i, rk := range rank {
		rep.H2P[i] = H2PEntry{
			Addr:            rk.addr.String(),
			Kind:            rk.b.kind.String(),
			Execs:           rk.b.execs,
			TakenRate:       round6(ratio(rk.b.taken, rk.b.execs)),
			Transitions:     rk.b.trans,
			Mispredicts:     rk.b.misp,
			Accuracy:        round6(ratio(rk.b.predAt-rk.b.misp, rk.b.predAt)),
			Entropy:         round6(rk.ent),
			MispredictShare: round6(ratio(rk.b.misp, totalMisp)),
		}
	}
	return rep
}

func refName(cfg Config) string {
	return "gshare-" + itoa(cfg.RefTableBits) + "+last-target"
}

// itoa avoids strconv for the one tiny formatting need here.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// localEntropy is the branch's outcome entropy conditioned on its own
// local history: the bucket-weighted mean of the per-history Bernoulli
// entropy, in bits per outcome.
func localEntropy(buckets map[uint32]*[2]uint32) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := 0.0
	acc := 0.0
	for _, b := range buckets {
		n := float64(b[0] + b[1])
		total += n
		acc += n * bernoulliEntropy(float64(b[1])/n)
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// bernoulliEntropy returns H(p) in bits, with H(0)=H(1)=0.
func bernoulliEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// ratio is the zero-guarded division every rate in the report goes
// through: branch-free and empty traces must serialize finite numbers.
func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// round6 rounds to 6 decimals so the serialized floats are stable
// across platforms' math-library ULP differences.
func round6(x float64) float64 {
	return math.Round(x*1e6) / 1e6
}

func btou(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
