package wchar_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"zbp/internal/wchar"
	"zbp/internal/workload"
)

// update rewrites the golden characterization sidecars instead of
// comparing:
//
//	go test ./internal/wchar -run Golden -update
//
// Review the diff like any golden change: a drifted metric means the
// workload generators or the characterization itself changed behavior.
var update = flag.Bool("update", false, "rewrite golden characterization sidecars")

const (
	goldenSeed  = 42
	goldenScale = 100_000
)

// TestGoldenCharacterization pins the characterization sidecar for
// every preset generator, byte-for-byte. Serialized floats are rounded
// to 6 decimals inside the report, so the bytes are stable across
// platforms.
func TestGoldenCharacterization(t *testing.T) {
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			src, err := workload.Make(name, goldenSeed)
			if err != nil {
				t.Fatal(err)
			}
			rep := wchar.Characterize(src, goldenScale, wchar.Config{})
			rep.Workload = name
			rep.Seed = goldenSeed
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			got := buf.Bytes()
			path := filepath.Join("testdata", "golden", name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("characterization drifted from golden %s;\nre-run with -update and review the diff", path)
			}
		})
	}
}

// TestCharacterizeDeterministic: two passes over the same workload
// serialize identically — the property the golden comparison rests on.
func TestCharacterizeDeterministic(t *testing.T) {
	render := func() []byte {
		src, err := workload.Make("mixed", 7)
		if err != nil {
			t.Fatal(err)
		}
		rep := wchar.Characterize(src, 50_000, wchar.Config{})
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("characterization is not deterministic")
	}
}
