package wchar

import (
	"math"
	"testing"

	"zbp/internal/trace"
	"zbp/internal/zarch"
)

// recSource replays a fixed record slice.
type recSource struct {
	recs []trace.Rec
	pos  int
}

func (s *recSource) Next() (trace.Rec, bool) {
	if s.pos >= len(s.recs) {
		return trace.Rec{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// TestCharacterizeEmpty: an empty source yields a report of finite
// zeros — the same zero-branch guard contract trace.Stats carries.
func TestCharacterizeEmpty(t *testing.T) {
	rep := Characterize(&recSource{}, 0, Config{})
	for name, v := range map[string]float64{
		"taken_rate":      rep.TakenRate,
		"transition_rate": rep.TransitionRate,
		"history_entropy": rep.HistoryEntropy,
		"ref_accuracy":    rep.RefAccuracy,
		"ref_mpki":        rep.RefMPKI,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s is non-finite on an empty trace: %v", name, v)
		}
		if v != 0 {
			t.Errorf("%s = %v on an empty trace, want 0", name, v)
		}
	}
	if len(rep.H2P) != 0 {
		t.Errorf("empty trace produced %d H2P entries", len(rep.H2P))
	}
}

// TestCharacterizeBranchFree: instructions without branches keep every
// rate at zero while still counting footprint.
func TestCharacterizeBranchFree(t *testing.T) {
	recs := []trace.Rec{
		trace.NewRec(0x1000, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x1004, 4, zarch.KindNone, false, 0, 0),
		trace.NewRec(0x1008, 4, zarch.KindNone, false, 0, 0),
	}
	rep := Characterize(&recSource{recs: recs}, 0, Config{})
	if rep.Instructions != 3 || rep.Branches != 0 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.TakenRate != 0 || rep.RefAccuracy != 0 || rep.RefMPKI != 0 {
		t.Fatalf("branch-free rates nonzero: %+v", rep)
	}
	if rep.FootprintLines == 0 {
		t.Fatal("footprint not counted")
	}
}

// TestCharacterizeBiasedVsAlternating: a perfectly alternating branch
// has transition rate ~1 and zero local-history entropy (its history
// fully determines the outcome); an always-taken branch has both at
// zero.
func TestCharacterizeBiasedVsAlternating(t *testing.T) {
	mk := func(pattern func(i int) bool, n int) *recSource {
		var recs []trace.Rec
		for i := 0; i < n; i++ {
			taken := pattern(i)
			target := zarch.Addr(0)
			if taken {
				target = 0x1000
			}
			recs = append(recs, trace.NewRec(0x1000, 4, zarch.KindCondRel, taken, target, 0))
			if !taken {
				// keep a contiguous shape irrelevant here; wchar does not
				// check contiguity, only outcomes.
				recs = append(recs, trace.NewRec(0x1004, 4, zarch.KindNone, false, 0, 0))
			}
		}
		return &recSource{recs: recs}
	}

	alt := Characterize(mk(func(i int) bool { return i%2 == 0 }, 4000), 0, Config{})
	if alt.TransitionRate < 0.99 {
		t.Errorf("alternating transition rate = %v, want ~1", alt.TransitionRate)
	}
	if alt.HistoryEntropy > 0.05 {
		t.Errorf("alternating history entropy = %v, want ~0 (history determines outcome)", alt.HistoryEntropy)
	}

	taken := Characterize(mk(func(int) bool { return true }, 4000), 0, Config{})
	if taken.TransitionRate != 0 {
		t.Errorf("always-taken transition rate = %v, want 0", taken.TransitionRate)
	}
	if taken.HistoryEntropy != 0 {
		t.Errorf("always-taken history entropy = %v, want 0", taken.HistoryEntropy)
	}
	if taken.TakenRate != 1 {
		t.Errorf("always-taken taken rate = %v, want 1", taken.TakenRate)
	}
}

// TestH2PRanking: the H2P list is ordered by mispredicts and its
// shares sum to at most 1.
func TestH2PRanking(t *testing.T) {
	var recs []trace.Rec
	// Branch A: random-looking (alternating at a prime stride), branch
	// B: always taken (easy). A must out-rank B.
	for i := 0; i < 3000; i++ {
		recs = append(recs, trace.NewRec(0x1000, 4, zarch.KindCondRel, i%3 == 0, 0x2000, 0))
		recs = append(recs, trace.NewRec(0x2000, 4, zarch.KindCondRel, true, 0x1000, 0))
	}
	rep := Characterize(&recSource{recs: recs}, 0, Config{TopN: 5})
	if len(rep.H2P) == 0 {
		t.Fatal("no H2P entries")
	}
	share := 0.0
	for i, e := range rep.H2P {
		share += e.MispredictShare
		if i > 0 && e.Mispredicts > rep.H2P[i-1].Mispredicts {
			t.Fatal("H2P list not sorted by mispredicts")
		}
	}
	if share > 1.0001 {
		t.Fatalf("mispredict shares sum to %v > 1", share)
	}
	if rep.H2P[0].Addr != zarch.Addr(0x1000).String() {
		t.Errorf("hardest branch = %s, want the twitchy one at 0x1000", rep.H2P[0].Addr)
	}
}
