module zbp

go 1.22
