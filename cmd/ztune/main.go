// Command ztune explores the predictor design space: the §VII
// "parameterizable performance modeling environment to evaluate the
// performance of different design options", as a CLI.
//
// Usage:
//
//	ztune -axes btb1,pht -workloads lspr,micro -n 300000
//	ztune -listaxes
//
// By default each workload is materialized once (generated, validated
// and packed) and every design point replays cursors over the shared
// buffer; -stream regenerates per point (identical results, more work).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"zbp/internal/metrics"
	"zbp/internal/sim"
	"zbp/internal/tune"
)

func main() {
	var (
		axesArg = flag.String("axes", "btb1,pht", "comma-separated axis names (see -listaxes)")
		wlArg   = flag.String("workloads", "lspr,micro", "comma-separated workload mix")
		n       = flag.Int("n", 200_000, "instructions per workload per design point")
		seed    = flag.Uint64("seed", 42, "workload seed")
		par     = flag.Int("p", 0, "parallel simulations (0 = GOMAXPROCS)")
		top     = flag.Int("top", 10, "show the best N points")
		stream  = flag.Bool("stream", false, "regenerate workloads per design point instead of replaying shared packed buffers")
		list    = flag.Bool("listaxes", false, "list axes and exit")
	)
	flag.Parse()

	std := tune.StandardAxes()
	if *list {
		names := make([]string, 0, len(std))
		for name := range std {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			a := std[name]
			vals := make([]string, len(a.Values))
			for i, v := range a.Values {
				vals[i] = v.Label
			}
			fmt.Printf("%-12s %s\n", name, strings.Join(vals, " | "))
		}
		return
	}

	var axes []tune.Axis
	for _, name := range strings.Split(*axesArg, ",") {
		a, ok := std[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "ztune: unknown axis %q (try -listaxes)\n", name)
			os.Exit(2)
		}
		axes = append(axes, a)
	}

	study := &tune.Study{
		Base:         sim.Z15(),
		Axes:         axes,
		Workloads:    strings.Split(*wlArg, ","),
		Instructions: *n,
		Seed:         *seed,
		Parallelism:  *par,
		Streaming:    *stream,
	}
	fmt.Printf("exploring %d design points over %v (%d instructions each)...\n",
		study.Size(), study.Workloads, *n)
	start := time.Now()
	out := study.Run()
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))

	tab := metrics.NewTable("rank", "design point", "avg MPKI", "avg IPC", "score")
	for i, o := range out {
		if i >= *top {
			break
		}
		tab.Row(i+1, o.Name(axes), fmt.Sprintf("%.2f", o.MPKI),
			fmt.Sprintf("%.2f", o.IPC), fmt.Sprintf("%.3f", o.Score))
	}
	tab.Render(os.Stdout)
}
