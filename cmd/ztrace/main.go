// Command ztrace generates, inspects and converts instruction traces.
//
// Usage:
//
//	ztrace -workload lspr -n 1000000 -o lspr.zbpt    # generate
//	ztrace -in lspr.zbpt                             # summarize
//	ztrace -in prog.champsim -o prog.zbpt            # convert (ingest)
//	ztrace -in lspr.zbpt -o lspr.champsim            # convert (export)
//
// Formats are inferred from file extensions (.zbpt is the native
// codec; .champsim/.champsimtrace is the ChampSim 64-byte record
// format); -format overrides the inference for the input. Conflicting
// flag sets — -in together with -workload or -seed — are rejected
// rather than silently resolved.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"zbp/internal/trace"
	"zbp/internal/workload"
)

// mode is what one ztrace invocation does; decideMode picks it from
// which flags the user actually set.
type mode int

const (
	modeInMemory  mode = iota // generate and summarize without a file
	modeGenerate              // workload -> trace file
	modeSummarize             // trace file -> stats
	modeConvert               // trace file -> trace file
)

// decideMode maps the set flags to a mode, rejecting conflicting
// combinations instead of letting one flag silently win (historically
// `-in a.zbpt -o b.zbpt` summarized a and wrote nothing).
func decideMode(inSet, outSet, wlSet, seedSet bool) (mode, error) {
	if inSet && (wlSet || seedSet) {
		return 0, fmt.Errorf("ztrace: -in reads an existing trace; it conflicts with -workload/-seed (drop one side)")
	}
	switch {
	case inSet && outSet:
		return modeConvert, nil
	case inSet:
		return modeSummarize, nil
	case outSet:
		return modeGenerate, nil
	default:
		return modeInMemory, nil
	}
}

func main() {
	var (
		wl     = flag.String("workload", "lspr", "workload name")
		n      = flag.Int("n", 1_000_000, "records to generate (or cap when reading)")
		out    = flag.String("o", "", "output trace file (generate/convert mode)")
		in     = flag.String("in", "", "input trace file (summarize/convert mode)")
		seed   = flag.Uint64("seed", 42, "workload seed")
		format = flag.String("format", "", "input format override: zbpt or champsim (default: by extension)")
	)
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	m, err := decideMode(set["in"], set["o"], set["workload"], set["seed"])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	// In the reading modes -n is a cap, applied only when explicitly
	// set: the generate-mode default of 1M must not silently truncate a
	// larger input file.
	readCap := 0
	if set["n"] {
		readCap = *n
	}
	switch m {
	case modeConvert:
		convert(*in, *out, *format, readCap)
	case modeSummarize:
		summarize(*in, *format, readCap)
	case modeGenerate:
		generate(*wl, *seed, *n, *out)
	default:
		// Generate and summarize in memory.
		src, err := workload.Make(*wl, *seed)
		if err != nil {
			fatal(err)
		}
		printStats(*wl, trace.Collect(src, *n))
	}
}

// inFormat resolves the input format from the override flag or the
// file extension.
func inFormat(path, override string) (string, error) {
	switch override {
	case "zbpt", "champsim":
		return override, nil
	case "":
	default:
		return "", fmt.Errorf("unknown -format %q (want zbpt or champsim)", override)
	}
	switch filepath.Ext(path) {
	case ".champsim", ".champsimtrace":
		return "champsim", nil
	default:
		return "zbpt", nil
	}
}

// loadInput decodes the input trace in either format into the packed
// form (every record validated once), capped at max records (<=0
// means all).
func loadInput(path, override string, max int) (*trace.Packed, error) {
	f, err := inFormat(path, override)
	if err != nil {
		return nil, err
	}
	if f == "champsim" {
		p, st, err := trace.IngestChampSimFile(path, max)
		if err != nil {
			return nil, err
		}
		fmt.Printf("ingested %d champsim records -> %d z records (%d pads, %d glue branches, %d dropped)\n",
			st.Records, st.Emitted, st.Pads, st.Glue, st.Dropped)
		return p, nil
	}
	p, err := trace.LoadPackedFile(path)
	if err != nil {
		return nil, err
	}
	if max > 0 && p.Len() > max {
		cur := p.CursorN(max)
		return trace.Pack(&cur, max)
	}
	return p, nil
}

// convert re-encodes the input trace into the format the output
// extension names.
func convert(in, out, format string, max int) {
	p, err := loadInput(in, format, max)
	if err != nil {
		fatal(err)
	}
	switch filepath.Ext(out) {
	case ".champsim", ".champsimtrace":
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		cur := p.Cursor()
		wrote, err := trace.ExportChampSim(f, &cur, 0)
		if err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d champsim records to %s\n", wrote, out)
	default:
		if err := p.WriteFile(out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d records to %s\n", p.Len(), out)
	}
}

// generate materializes the workload into a packed buffer (one
// generation pass, every record validated) and encodes it to path.
func generate(wl string, seed uint64, n int, path string) {
	p, err := workload.MakePacked(wl, seed, n)
	if err != nil {
		fatal(err)
	}
	if err := p.WriteFile(path); err != nil {
		fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	// Guard the per-record average: an empty trace (n=0, or a dry
	// source) must print 0, not +Inf.
	perRec := 0.0
	if p.Len() > 0 {
		perRec = float64(st.Size()) / float64(p.Len())
	}
	fmt.Printf("wrote %d records to %s (%.2f bytes/record, %.1f MB packed in memory)\n",
		p.Len(), path, perRec, float64(p.SizeBytes())/(1<<20))
}

// summarize round-trips the file through the packed form — a single
// sequential decode — and reports from the in-memory buffer.
func summarize(path, format string, max int) {
	p, err := loadInput(path, format, max)
	if err != nil {
		fatal(err)
	}
	printStats(path, p.Stats())
}

func printStats(name string, st trace.Stats) {
	fmt.Printf("trace %s:\n", name)
	fmt.Printf("  instructions     %d\n", st.Instructions)
	fmt.Printf("  avg instr length %.2f bytes\n", st.AvgInstrLen())
	fmt.Printf("  branches         %d (1 per %.2f instructions)\n", st.Branches, st.BranchDensity())
	fmt.Printf("  taken ratio      %.3f\n", st.TakenRatio())
	fmt.Printf("  conditional      %d, indirect %d\n", st.Conditional, st.Indirect)
	fmt.Printf("  distinct branches %d\n", st.DistinctBr)
	fmt.Printf("  code footprint   %d x 64B lines (~%.1f KB)\n", st.Footprint, float64(st.Footprint)*64/1024)
	fmt.Printf("  context switches %d\n", st.CtxSwitches)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ztrace:", err)
	os.Exit(1)
}
