// Command ztrace generates, inspects and converts instruction traces.
//
// Usage:
//
//	ztrace -workload lspr -n 1000000 -o lspr.zbpt   # generate
//	ztrace -in lspr.zbpt                            # summarize
package main

import (
	"flag"
	"fmt"
	"os"

	"zbp/internal/trace"
	"zbp/internal/workload"
)

func main() {
	var (
		wl   = flag.String("workload", "lspr", "workload name")
		n    = flag.Int("n", 1_000_000, "records to generate")
		out  = flag.String("o", "", "output trace file (generate mode)")
		in   = flag.String("in", "", "input trace file (summarize mode)")
		seed = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	switch {
	case *in != "":
		summarize(*in)
	case *out != "":
		generate(*wl, *seed, *n, *out)
	default:
		// Generate and summarize in memory.
		src, err := workload.Make(*wl, *seed)
		if err != nil {
			fatal(err)
		}
		printStats(*wl, trace.Collect(src, *n))
	}
}

// generate materializes the workload into a packed buffer (one
// generation pass, every record validated) and encodes it to path.
func generate(wl string, seed uint64, n int, path string) {
	p, err := workload.MakePacked(wl, seed, n)
	if err != nil {
		fatal(err)
	}
	if err := p.WriteFile(path); err != nil {
		fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d records to %s (%.2f bytes/record, %.1f MB packed in memory)\n",
		p.Len(), path, float64(st.Size())/float64(p.Len()),
		float64(p.SizeBytes())/(1<<20))
}

// summarize round-trips the file through the packed form — a single
// sequential decode — and reports from the in-memory buffer.
func summarize(path string) {
	p, err := trace.LoadPackedFile(path)
	if err != nil {
		fatal(err)
	}
	printStats(path, p.Stats())
}

func printStats(name string, st trace.Stats) {
	fmt.Printf("trace %s:\n", name)
	fmt.Printf("  instructions     %d\n", st.Instructions)
	fmt.Printf("  avg instr length %.2f bytes\n", st.AvgInstrLen())
	fmt.Printf("  branches         %d (1 per %.2f instructions)\n", st.Branches, st.BranchDensity())
	fmt.Printf("  taken ratio      %.3f\n", st.TakenRatio())
	fmt.Printf("  conditional      %d, indirect %d\n", st.Conditional, st.Indirect)
	fmt.Printf("  distinct branches %d\n", st.DistinctBr)
	fmt.Printf("  code footprint   %d x 64B lines (~%.1f KB)\n", st.Footprint, float64(st.Footprint)*64/1024)
	fmt.Printf("  context switches %d\n", st.CtxSwitches)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ztrace:", err)
	os.Exit(1)
}
