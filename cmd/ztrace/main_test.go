package main

import "testing"

// TestDecideMode pins the flag-conflict contract: -in with -workload
// or -seed is an error (historically -in silently won and the
// generation flags were ignored), and each unambiguous combination
// maps to its mode.
func TestDecideMode(t *testing.T) {
	cases := []struct {
		name                       string
		inSet, outSet, wlSet, seed bool
		want                       mode
		wantErr                    bool
	}{
		{name: "bare run", want: modeInMemory},
		{name: "workload only", wlSet: true, want: modeInMemory},
		{name: "generate", outSet: true, wlSet: true, seed: true, want: modeGenerate},
		{name: "summarize", inSet: true, want: modeSummarize},
		{name: "convert", inSet: true, outSet: true, want: modeConvert},
		{name: "in vs workload", inSet: true, wlSet: true, wantErr: true},
		{name: "in vs seed", inSet: true, seed: true, wantErr: true},
		{name: "convert vs workload", inSet: true, outSet: true, wlSet: true, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := decideMode(tc.inSet, tc.outSet, tc.wlSet, tc.seed)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("conflict accepted, resolved to mode %d", m)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if m != tc.want {
				t.Fatalf("mode = %d, want %d", m, tc.want)
			}
		})
	}
}

// TestInFormat pins extension inference and the override.
func TestInFormat(t *testing.T) {
	cases := []struct {
		path, override, want string
		wantErr              bool
	}{
		{path: "a.zbpt", want: "zbpt"},
		{path: "a.champsim", want: "champsim"},
		{path: "a.champsimtrace", want: "champsim"},
		{path: "a.bin", want: "zbpt"},
		{path: "a.bin", override: "champsim", want: "champsim"},
		{path: "a.champsim", override: "zbpt", want: "zbpt"},
		{path: "a.zbpt", override: "sqlite", wantErr: true},
	}
	for _, tc := range cases {
		got, err := inFormat(tc.path, tc.override)
		if tc.wantErr {
			if err == nil {
				t.Errorf("inFormat(%q, %q) accepted", tc.path, tc.override)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("inFormat(%q, %q) = %q, %v; want %q", tc.path, tc.override, got, err, tc.want)
		}
	}
}
