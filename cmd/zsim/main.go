// Command zsim runs one workload through one predictor configuration
// and prints the full metric set: the quick way to poke at the model.
//
// Usage:
//
//	zsim -workload lspr -config z15 -n 1000000
//	zsim -workload lspr -workload2 micro -config z15   # SMT2
//	zsim -trace path.zbpt -config z14                  # trace file input
//	zsim -stats-json out.json                          # schema-versioned stats snapshot
//	zsim -events run.jsonl                             # cycle-level event log (JSONL)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"zbp/internal/core"
	"zbp/internal/dirpred"
	"zbp/internal/metrics"
	"zbp/internal/sim"
	"zbp/internal/trace"
	"zbp/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "lspr", "workload name (see -listworkloads)")
		wl2     = flag.String("workload2", "", "second thread's workload (SMT2 mode)")
		tr      = flag.String("trace", "", "binary trace file instead of a generated workload")
		cfgN    = flag.String("config", "z15", "machine config: zEC12, z13, z14, z15")
		n       = flag.Int("n", 1_000_000, "instructions per thread")
		seed    = flag.Uint64("seed", 42, "workload seed")
		noIC    = flag.Bool("noicache", false, "disable the I-cache model")
		noPref  = flag.Bool("noprefetch", false, "disable BPL-driven prefetch")
		asJSON  = flag.Bool("json", false, "emit the full result as JSON")
		statsJS = flag.String("stats-json", "", "write the schema-versioned stats snapshot to this file (- for stdout)")
		events  = flag.String("events", "", "stream the cycle-level event log as JSONL to this file")
		lw      = flag.Bool("listworkloads", false, "list workloads and exit")
		runTO   = flag.Duration("timeout", 0, "abort the simulation after this wall-clock budget (0 = none); a timed-out run reports the truncated prefix")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "zsim:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "zsim:", err)
			}
		}()
	}

	if *lw {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		return
	}

	gen, err := core.ByName(*cfgN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsim:", err)
		os.Exit(2)
	}
	cfg := sim.ForGeneration(gen)
	if *noIC {
		cfg.ICache = nil
	}
	if *noPref {
		cfg.Prefetch = false
	}

	var srcs []trace.Source
	if *tr != "" {
		// Load the whole file into the packed form with one sequential
		// decode; the simulation then replays a pre-validated cursor
		// with no per-record decode in the hot loop.
		p, err := trace.LoadPackedFile(*tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		cur := p.CursorN(*n)
		srcs = append(srcs, &cur)
	} else {
		src, err := workload.Make(*wl, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(2)
		}
		srcs = append(srcs, trace.Limit(src, *n))
	}
	if *wl2 != "" {
		src2, err := workload.Make(*wl2, *seed+1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(2)
		}
		srcs = append(srcs, trace.Limit(src2, *n))
	}

	s := sim.New(cfg, srcs)
	var evSink *sim.JSONLSink
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		evSink = sim.NewJSONLSink(f)
		s.SetEventSink(evSink)
	}
	ctx := context.Background()
	if *runTO > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runTO)
		defer cancel()
	}
	res, err := s.RunCtx(ctx, 0)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		// The truncated prefix is still a valid report; say so and
		// keep going.
		fmt.Fprintf(os.Stderr, "zsim: timeout after %v, reporting truncated run (%d instructions)\n",
			*runTO, res.Instructions())
	case err != nil:
		fmt.Fprintln(os.Stderr, "zsim:", err)
		os.Exit(1)
	}
	if evSink != nil {
		if err := evSink.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "zsim: event log:", err)
			os.Exit(1)
		}
	}
	if *statsJS != "" {
		if err := writeStats(res, *statsJS); err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			sim.Result
			MPKI     float64
			IPC      float64
			Accuracy float64
		}{res, res.MPKI(), res.IPC(), res.Accuracy()}); err != nil {
			fmt.Fprintln(os.Stderr, "zsim:", err)
			os.Exit(1)
		}
		return
	}
	report(res)
}

// writeStats serializes the schema-versioned stats snapshot to path
// ("-" = stdout). The bytes are deterministic for a given run setup.
func writeStats(res sim.Result, path string) error {
	if path == "-" {
		return res.WriteStatsJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteStatsJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func report(res sim.Result) {
	fmt.Printf("config %s: %d instructions, %d cycles\n", res.Name, res.Instructions(), res.Cycles)
	fmt.Printf("IPC %.3f   MPKI %.3f   branch accuracy %.4f\n\n", res.IPC(), res.MPKI(), res.Accuracy())

	for i, t := range res.Threads {
		fmt.Printf("thread %d: %d instr, %d branches, %d dynamic (%.1f%% correct), %d surprises\n",
			i, t.Instructions, t.Branches, t.DynamicPredicted,
			100*metrics.Ratio(t.DynCorrect, t.DynamicPredicted), t.Surprises)
		fmt.Printf("  wrong: dir %d, target %d, static guess %d, bad predictions %d\n",
			t.DynWrongDir, t.DynWrongTarget, t.SurpriseWrong, t.BadPredictions)
		fmt.Printf("  stalls: restart %d, fetch %d, dispatch-sync %d cycles\n",
			t.RestartStall, t.FetchStall, t.DispatchSyncStall)
	}

	fmt.Printf("\ndirection providers (issued / accuracy):\n")
	tab := metrics.NewTable("provider", "issued", "accuracy")
	for p := dirpred.ProvNone; p <= dirpred.ProvPerceptron; p++ {
		if res.Dir.Issued[p] == 0 {
			continue
		}
		tab.Row(p.String(), res.Dir.Issued[p], metrics.Pct(res.Dir.Correct[p], res.Dir.Issued[p]))
	}
	tab.Render(os.Stdout)

	fmt.Printf("\ncore: %d searches (%d empty), %d predictions (%d taken), CPRED fast %d / slow %d, SKOOT lines %d\n",
		res.Core.Searches, res.Core.NoPredSearches, res.Core.Predictions,
		res.Core.TakenPredictions, res.Core.CPredFastRedirects, res.Core.CPredSlowRedirects,
		res.Core.SkootLinesSkipped)
	fmt.Printf("BTB2: %d backfill triggers, %d proactive, %d ctx prefetch, %d refresh writes\n",
		res.Core.BTB2MissTriggers, res.Core.BTB2Proactive, res.Core.BTB2CtxPrefetch, res.Core.RefreshWrites)
	fmt.Printf("icache: %s L1 hits, %d useful prefetches, %d demand-wait cycles\n",
		metrics.Pct(res.IC.L1Hits, res.IC.Accesses), res.IC.PrefetchUseful, res.IC.DemandWaitCycles)
}
