// Command zexp reproduces the paper's tables and figures: it runs the
// experiments indexed in DESIGN.md (E1..E12) and prints their reports.
//
// Usage:
//
//	zexp                     # run everything at default scale
//	zexp -exp mpki,fig4      # run selected experiments
//	zexp -scale 2000000      # instructions per simulation
//	zexp -parallel 4         # bound concurrent simulations (0 = all cores)
//	zexp -materialize=false  # regenerate workloads per job (streaming)
//	zexp -cpuprofile cpu.pb  # write a pprof CPU profile
//	zexp -list               # list experiment IDs
//
// Reports are byte-identical at every -parallel setting: the runner
// pool preserves job order and each simulation owns its own state.
// They are also byte-identical with and without -materialize: packed
// replay yields the exact record stream streaming generation would;
// materializing only trades memory (the packed buffers stay resident
// for the whole run) for a large cut in generation work and hot-loop
// cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"zbp/internal/exp"
	"zbp/internal/workload"
)

func main() {
	var (
		ids      = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scale    = flag.Int("scale", 1_000_000, "instructions per simulation run")
		seed     = flag.Uint64("seed", 42, "workload seed")
		seeds    = flag.Int("seeds", 1, "seeds to average in the mpki experiment")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = all cores); results are identical at any setting")
		mat      = flag.Bool("materialize", true, "materialize each workload once and replay packed buffers across all sweep points (identical results, less work)")
		statsDir = flag.String("stats-dir", "", "serialize every simulation's stats snapshot (JSON) into this directory")
		wls      = flag.String("workloads", "", "comma-separated workload override for the mpki experiment (names, file:<path>, spec:<path>)")
		list     = flag.Bool("list", false, "list experiments and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zexp:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "zexp:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "zexp:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "zexp:", err)
			}
		}()
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s (%s)\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var selected []exp.Experiment
	if *ids == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "zexp: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *statsDir != "" {
		if err := os.MkdirAll(*statsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "zexp:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("zbp experiment runner: %d experiment(s), scale %d instructions, seed %d\n",
		len(selected), *scale, *seed)
	// One materializer is shared across every selected experiment, so a
	// workload used by several experiments is generated exactly once
	// for the whole run.
	var mz *workload.Materializer
	if *mat {
		mz = workload.NewMaterializer()
	}
	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		opts := exp.Options{W: os.Stdout, Scale: *scale, Seed: *seed, Seeds: *seeds,
			Parallelism: *parallel, Mat: mz, Workloads: splitList(*wls)}
		if *statsDir != "" {
			opts = opts.WithStats(*statsDir, e.ID)
		}
		e.Run(opts)
		fmt.Printf("[%s done in %v]\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	if mz != nil && mz.Count() > 0 {
		fmt.Printf("\nmaterialized %d packed trace(s), %.1f MB shared across all sweep points\n",
			mz.Count(), float64(mz.FootprintBytes())/(1<<20))
	}
	fmt.Printf("\nall done in %v\n", time.Since(start).Round(time.Millisecond))
}

// splitList parses a comma-separated flag into its non-empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}
