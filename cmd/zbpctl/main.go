// Command zbpctl is a thin client for a zbpd service or coordinator:
// ad-hoc sweeps and simulations from the shell, without hand-writing
// request JSON or an event-stream reader.
//
// Usage:
//
//	zbpctl -addr http://localhost:8300 sweep -configs z14,z15 -workloads lspr,micro -seeds 1,2
//	zbpctl -addr http://localhost:8300 simulate -workload lspr -n 2000000
//	zbpctl -addr http://localhost:8300 health
//	zbpctl -addr http://coordinator:8300 backends list
//	zbpctl -addr http://coordinator:8300 backends add http://host3:8347
//	zbpctl -addr http://coordinator:8300 backends rm http://host2:8347
//
// sweep and simulate submit an async job, follow the JSONL event
// stream (one progress line per cell on stderr), and print the final
// result JSON on stdout — so `zbpctl sweep ... | jq .cells` composes.
// The exact same invocation works against a single box and against a
// coordinator fronting a fleet; the coordinator's cells additionally
// carry which backend served them and whether a hedge won.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"zbp/internal/server"
)

func main() {
	addr := flag.String("addr", "http://localhost:8347", "zbpd or coordinator base URL")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	base := strings.TrimRight(*addr, "/")
	var err error
	switch args[0] {
	case "sweep":
		err = runSweep(base, args[1:])
	case "simulate":
		err = runSimulate(base, args[1:])
	case "backends":
		err = runBackends(base, args[1:])
	case "health":
		err = get(base + "/healthz")
	case "metrics":
		err = get(base + "/metrics")
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zbpctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: zbpctl [-addr URL] <command> [flags]

commands:
  sweep     -configs a,b -workloads x,y -seeds 1,2 [-n N] [-no-cache] [-quiet]
  simulate  -workload x [-config a] [-seed N] [-n N] [-no-cache] [-quiet]
  backends  list | add <url> | rm <url>   (coordinator fleet membership)
  health    print the service /healthz JSON
  metrics   print the service /metrics exposition
`)
}

func runSweep(base string, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	configs := fs.String("configs", "z15", "comma-separated machine presets")
	workloads := fs.String("workloads", "", "comma-separated workloads (required)")
	seeds := fs.String("seeds", "42", "comma-separated seeds")
	n := fs.Int("n", 0, "per-thread instruction budget (0 = server default)")
	noCache := fs.Bool("no-cache", false, "force recomputation, skip the result cache")
	quiet := fs.Bool("quiet", false, "suppress per-cell progress lines")
	fs.Parse(args)

	seedVals, err := parseSeeds(*seeds)
	if err != nil {
		return err
	}
	req := server.JobRequest{
		Kind: "sweep",
		Sweep: &server.SweepRequest{
			Configs:      splitList(*configs),
			Workloads:    splitList(*workloads),
			Seeds:        seedVals,
			Instructions: *n,
		},
		NoCache: *noCache,
	}
	return submitAndFollow(base, req, *quiet)
}

func runSimulate(base string, args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	config := fs.String("config", "z15", "machine preset")
	wl := fs.String("workload", "", "workload (required)")
	wl2 := fs.String("workload2", "", "second-thread workload (SMT2)")
	seed := fs.Uint64("seed", 42, "generator seed")
	n := fs.Int("n", 0, "per-thread instruction budget (0 = server default)")
	noCache := fs.Bool("no-cache", false, "force recomputation, skip the result cache")
	quiet := fs.Bool("quiet", false, "suppress per-cell progress lines")
	fs.Parse(args)

	s := *seed
	req := server.JobRequest{
		Kind: "simulate",
		Simulate: &server.SimulateRequest{
			Config: *config, Workload: *wl, Workload2: *wl2,
			Seed: &s, Instructions: *n,
		},
		NoCache: *noCache,
	}
	return submitAndFollow(base, req, *quiet)
}

// runBackends drives a coordinator's /v1/backends admin surface:
// list the fleet, register a member, or deregister one (the removal
// drains the member's in-flight cells before forgetting it).
func runBackends(base string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("backends: need a subcommand: list, add <url>, rm <url>")
	}
	switch args[0] {
	case "list", "ls":
		return get(base + "/v1/backends")
	case "add", "register":
		if len(args) != 2 {
			return fmt.Errorf("backends add: need exactly one backend URL")
		}
		body, err := json.Marshal(map[string]string{"url": args[1]})
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/v1/backends", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("add: %s: %s", resp.Status, readBody(resp.Body))
		}
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	case "rm", "remove", "deregister":
		if len(args) != 2 {
			return fmt.Errorf("backends rm: need exactly one backend URL")
		}
		req, err := http.NewRequest(http.MethodDelete,
			base+"/v1/backends?url="+url.QueryEscape(args[1]), nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("rm: %s: %s", resp.Status, readBody(resp.Body))
		}
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	default:
		return fmt.Errorf("backends: unknown subcommand %q (have list, add, rm)", args[0])
	}
}

// submitAndFollow posts the job, mirrors its event stream to stderr,
// then prints the terminal result to stdout.
func submitAndFollow(base string, req server.JobRequest, quiet bool) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("submit: %s: %s", resp.Status, readBody(resp.Body))
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("submit: undecodable job status: %w", err)
	}

	ev, err := http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		return err
	}
	defer ev.Body.Close()
	if ev.StatusCode != http.StatusOK {
		return fmt.Errorf("events: %s: %s", ev.Status, readBody(ev.Body))
	}
	sc := bufio.NewScanner(ev.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		if !quiet {
			fmt.Fprintln(os.Stderr, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("events: %w", err)
	}

	// The stream ends only at a terminal state; fetch the result.
	deadline := time.Now().Add(5 * time.Second)
	for {
		final, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		var job struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		derr := json.NewDecoder(final.Body).Decode(&job)
		final.Body.Close()
		if derr != nil {
			return derr
		}
		switch job.State {
		case "done":
			os.Stdout.Write(job.Result)
			fmt.Println()
			return nil
		case "failed", "canceled":
			return fmt.Errorf("job %s: %s", job.State, job.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %q after its event stream ended", st.ID, job.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func get(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, readBody(resp.Body))
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func readBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	return strings.TrimSpace(string(b))
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, p := range splitList(s) {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
