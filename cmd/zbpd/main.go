// Command zbpd is the always-on simulation service: the predictor
// model behind an HTTP/JSON API with bounded-queue backpressure,
// per-request deadlines, async jobs over a content-addressed result
// cache, and graceful shutdown.
//
// Usage:
//
//	zbpd -addr :8347 -workers 4 -queue 16 -cache-dir /var/cache/zbpd
//	zbpd -trace-dir /data/traces   # allow {"workload":"file:prog.zbpt"} requests
//
//	curl -s localhost:8347/v1/simulate -d '{"workload":"lspr","config":"z15","instructions":1000000}'
//	curl -s localhost:8347/v1/sweep -d '{"configs":["z14","z15"],"workloads":["lspr","micro"]}'
//	curl -s localhost:8347/v1/jobs -d '{"sweep":{"workloads":["loops","micro"],"seeds":[1,2]}}'
//	curl -s localhost:8347/v1/jobs/<id>            # poll
//	curl -sN localhost:8347/v1/jobs/<id>/events    # JSONL progress stream
//	curl -s -X DELETE localhost:8347/v1/jobs/<id>  # cancel
//	curl -s localhost:8347/healthz
//	curl -s localhost:8347/metrics
//
// Job results are cached by content address (config + workload + seed
// + budget + schema version); identical resubmissions are served
// without simulating, and a background auditor recomputes sampled
// cache hits through the equivalence harness (-audit-every).
//
// Coordinator mode turns the same binary into a fleet front-end that
// serves the same API by sharding sweep grids across backends:
//
//	zbpd -coordinator -backends http://host1:8347,http://host2:8347 \
//	     -router rendezvous -hedge-delay 400ms
//
// On SIGINT/SIGTERM the listener stops, running jobs and their event
// streams are canceled, in-flight simulations drain (bounded by
// -grace), and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zbp/internal/cluster"
	"zbp/internal/server"
)

// drainer is the piece of graceful shutdown both roles share: stop
// admitting, cancel running jobs, then release resources.
type drainer interface {
	Drain()
	Close()
}

func main() {
	var (
		addr     = flag.String("addr", ":8347", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 16, "accepted requests waiting beyond the running ones before 429")
		maxN     = flag.Int("max-instructions", 20_000_000, "per-thread instruction cap per request")
		defN     = flag.Int("default-instructions", 1_000_000, "instruction budget when a request omits one")
		maxCells = flag.Int("max-sweep-cells", 64, "sweep grid size cap")
		timeout  = flag.Duration("timeout", 60*time.Second, "default per-request simulation deadline")
		maxTO    = flag.Duration("max-timeout", 5*time.Minute, "upper clamp on request-supplied deadlines")
		grace    = flag.Duration("grace", 30*time.Second, "shutdown drain budget for in-flight work")

		maxJobs    = flag.Int("max-jobs", 64, "async job table capacity (full table answers 429)")
		jobTTL     = flag.Duration("job-ttl", 15*time.Minute, "how long finished jobs stay pollable")
		cacheMem   = flag.Int64("cache-mem-bytes", 256<<20, "in-memory result cache bound")
		cacheDir   = flag.String("cache-dir", "", "directory for the persistent result cache (empty = memory only)")
		cacheDisk  = flag.Int64("cache-disk-bytes", 1<<30, "on-disk result cache bound")
		auditEvery = flag.Int("audit-every", 16, "recompute every Nth cache hit through the equiv auditor (negative disables)")
		traceDir   = flag.String("trace-dir", "", "allow file:/spec: workloads confined to this directory (empty disables)")

		coordinator  = flag.Bool("coordinator", false, "run as a fleet coordinator instead of a simulation backend")
		backends     = flag.String("backends", "", "comma-separated backend base URLs (coordinator mode)")
		backendsFile = flag.String("backends-file", "", "file with one backend URL per line, re-read on change (coordinator mode)")
		router       = flag.String("router", "rendezvous", "cell routing policy: rendezvous, least-loaded, round-robin")
		cellTO       = flag.Duration("cell-timeout", 60*time.Second, "per-attempt deadline for one dispatched cell (coordinator mode)")
		hedgeDelay   = flag.Duration("hedge-delay", 400*time.Millisecond, "straggler threshold before a duplicate dispatch (0 = the 400ms default, negative disables; coordinator mode)")
		maxAttempts  = flag.Int("max-attempts", 0, "dispatch attempts per cell incl. retries and the hedge (0 = max(3, #backends); coordinator mode)")
		perBackend   = flag.Int("inflight-per-backend", 4, "concurrent cells per backend (coordinator mode)")
		admitRate    = flag.Float64("admit-cells-per-sec", 256, "token-bucket admission refill, one token per cell (negative disables; coordinator mode)")
		admitBurst   = flag.Int("admit-burst", 1024, "token-bucket admission capacity (coordinator mode)")
	)
	flag.Parse()

	var (
		handler http.Handler
		svc     drainer
		role    = "zbpd"
	)
	if *coordinator {
		role = "zbpd coordinator"
		urls := strings.Split(*backends, ",")
		clean := urls[:0]
		for _, u := range urls {
			if u = strings.TrimSpace(u); u != "" {
				clean = append(clean, u)
			}
		}
		coord, err := cluster.New(cluster.Config{
			Backends:            clean,
			BackendsFile:        *backendsFile,
			Router:              *router,
			CellTimeout:         *cellTO,
			HedgeDelay:          *hedgeDelay,
			MaxAttempts:         *maxAttempts,
			InflightPerBackend:  *perBackend,
			AdmitCellsPerSec:    *admitRate,
			AdmitBurst:          *admitBurst,
			MaxInstructions:     *maxN,
			DefaultInstructions: *defN,
			DefaultTimeout:      *timeout,
			MaxTimeout:          *maxTO,
			MaxJobs:             *maxJobs,
			JobTTL:              *jobTTL,
			CacheMemBytes:       *cacheMem,
			CacheDir:            *cacheDir,
			CacheDiskBytes:      *cacheDisk,
			AuditEvery:          *auditEvery,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "zbpd:", err)
			os.Exit(1)
		}
		handler, svc = coord.Handler(), coord
		log.Printf("zbpd: coordinating %d backends (router %s)", len(coord.Backends()), *router)
	} else {
		srv, err := server.New(server.Config{
			Workers:             *workers,
			QueueDepth:          *queue,
			MaxInstructions:     *maxN,
			DefaultInstructions: *defN,
			MaxSweepCells:       *maxCells,
			DefaultTimeout:      *timeout,
			MaxTimeout:          *maxTO,
			MaxJobs:             *maxJobs,
			JobTTL:              *jobTTL,
			CacheMemBytes:       *cacheMem,
			CacheDir:            *cacheDir,
			CacheDiskBytes:      *cacheDisk,
			AuditEvery:          *auditEvery,
			TraceDir:            *traceDir,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "zbpd:", err)
			os.Exit(1)
		}
		handler, svc = srv.Handler(), srv
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("%s: listening on %s", role, *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "zbpd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("%s: signal received, draining (grace %v)", role, *grace)
		// Drain first: it cancels running async jobs and terminates
		// their event streams, so long-lived streaming connections do
		// not hold Shutdown open for the whole grace budget.
		svc.Drain()
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		// Shutdown stops the listener and waits for handlers — which
		// themselves wait on their queued simulations — up to the
		// grace budget; past it, Close force-drops connections, which
		// cancels the request contexts and stops the sims.
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("%s: grace expired, force closing: %v", role, err)
			hs.Close()
		}
		// With no handlers left there are no queue submitters; drain
		// whatever the workers still hold.
		svc.Close()
		log.Printf("%s: drained, exiting", role)
	}
}
