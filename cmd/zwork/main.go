// Command zwork characterizes workload branch predictability: taken
// rate, transition rate, local-history entropy, and the
// hard-to-predict (H2P) branch population under a cheap reference
// predictor. It accepts the same workload names the whole stack does —
// preset generators, `file:<path>` trace files (.zbpt or ChampSim
// format), and `spec:<path>` workload mixes.
//
// Usage:
//
//	zwork -workload lspr -n 1000000                 # one workload, table to stdout
//	zwork -workload file:payroll.zbpt -json out.json
//	zwork -all -json-dir charout/                   # every preset generator
//
// Reports are schema-versioned sidecar JSON (internal/wchar): the
// simulator's golden stats schema is untouched.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"zbp/internal/metrics"
	"zbp/internal/wchar"
	"zbp/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "lspr", "workload name, file:<path>, or spec:<path>")
		n       = flag.Int("n", 1_000_000, "records to characterize")
		seed    = flag.Uint64("seed", 42, "workload seed (ignored by file-backed workloads)")
		topN    = flag.Int("top", 20, "H2P list length")
		jsonOut = flag.String("json", "", "write the sidecar JSON report to this file (- for stdout)")
		jsonDir = flag.String("json-dir", "", "with -all, write one sidecar per workload into this directory")
		all     = flag.Bool("all", false, "characterize every preset generator")
	)
	flag.Parse()

	cfg := wchar.Config{TopN: *topN}
	if *all {
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fatal(err)
			}
		}
		tab := metrics.NewTable("workload", "branches", "taken", "transition", "entropy", "ref acc", "ref MPKI", "H2P share")
		for _, name := range workload.Names() {
			rep, err := characterize(name, *seed, *n, cfg)
			if err != nil {
				fatal(err)
			}
			tab.Row(name, rep.Branches,
				fmt.Sprintf("%.3f", rep.TakenRate),
				fmt.Sprintf("%.3f", rep.TransitionRate),
				fmt.Sprintf("%.3f", rep.HistoryEntropy),
				fmt.Sprintf("%.4f", rep.RefAccuracy),
				fmt.Sprintf("%.2f", rep.RefMPKI),
				fmt.Sprintf("%.2f", h2pShare(rep)))
			if *jsonDir != "" {
				if err := writeReport(rep, filepath.Join(*jsonDir, sanitize(name)+".json")); err != nil {
					fatal(err)
				}
			}
		}
		tab.Render(os.Stdout)
		return
	}

	rep, err := characterize(*wl, *seed, *n, cfg)
	if err != nil {
		fatal(err)
	}
	if *jsonOut != "" {
		if err := writeReport(rep, *jsonOut); err != nil {
			fatal(err)
		}
		if *jsonOut != "-" {
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return
	}
	printReport(rep)
}

// characterize runs the wchar pass over n records of the named
// workload and stamps the report's identity fields.
func characterize(name string, seed uint64, n int, cfg wchar.Config) (*wchar.Report, error) {
	src, err := workload.Make(name, seed)
	if err != nil {
		return nil, err
	}
	rep := wchar.Characterize(src, n, cfg)
	rep.Workload = name
	rep.Seed = seed
	return rep, nil
}

// h2pShare is the mispredict fraction concentrated in the H2P list —
// the "a few branches cause most of the damage" headline number.
func h2pShare(rep *wchar.Report) float64 {
	share := 0.0
	for _, e := range rep.H2P {
		share += e.MispredictShare
	}
	return share
}

func writeReport(rep *wchar.Report, path string) error {
	if path == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printReport(rep *wchar.Report) {
	fmt.Printf("workload %s (seed %d):\n", rep.Workload, rep.Seed)
	fmt.Printf("  instructions     %d\n", rep.Instructions)
	fmt.Printf("  branches         %d (%d conditional, %d indirect, %d static)\n",
		rep.Branches, rep.Conditional, rep.Indirect, rep.StaticBranches)
	fmt.Printf("  code footprint   %d x 64B lines\n", rep.FootprintLines)
	fmt.Printf("  context switches %d\n", rep.CtxSwitches)
	fmt.Printf("  taken rate       %.3f\n", rep.TakenRate)
	fmt.Printf("  transition rate  %.3f\n", rep.TransitionRate)
	fmt.Printf("  history entropy  %.3f bits/outcome\n", rep.HistoryEntropy)
	fmt.Printf("  reference        %s: accuracy %.4f, MPKI %.2f (%d mispredicts)\n",
		rep.RefPredictor, rep.RefAccuracy, rep.RefMPKI, rep.RefMispredicts)
	if len(rep.H2P) == 0 {
		fmt.Println("  no mispredicting branches under the reference predictor")
		return
	}
	fmt.Printf("\ntop %d hard-to-predict branches (%.1f%% of all mispredicts):\n",
		len(rep.H2P), 100*h2pShare(rep))
	tab := metrics.NewTable("addr", "kind", "execs", "taken", "transitions", "mispredicts", "accuracy", "entropy", "share")
	for _, e := range rep.H2P {
		tab.Row(e.Addr, e.Kind, e.Execs,
			fmt.Sprintf("%.3f", e.TakenRate), e.Transitions, e.Mispredicts,
			fmt.Sprintf("%.4f", e.Accuracy), fmt.Sprintf("%.3f", e.Entropy),
			fmt.Sprintf("%.3f", e.MispredictShare))
	}
	tab.Render(os.Stdout)
}

// sanitize maps a workload name to a filesystem-safe token (file: and
// spec: names contain separators).
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zwork:", err)
	os.Exit(1)
}
